package callgraph

import (
	"path/filepath"
	"testing"

	"repro/tools/analyzers/analysis"
	"repro/tools/analyzers/load"
)

func loadFixture(t *testing.T) *Graph {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src", "a"))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := load.LoadDir(dir)
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	return Build([]*analysis.PackageUnit{{
		ImportPath: pkg.ImportPath,
		Files:      pkg.Files,
		Pkg:        pkg.Types,
		TypesInfo:  pkg.Info,
	}})
}

// nodeByName finds a declared function node by its bare name.
func nodeByName(t *testing.T, g *Graph, name string) *Node {
	t.Helper()
	for fn, n := range g.Nodes {
		if fn.Name() == name {
			return n
		}
	}
	t.Fatalf("no node for %q", name)
	return nil
}

// calleeNames flattens a node's resolved callees.
func calleeNames(n *Node) map[string]bool {
	out := map[string]bool{}
	for _, c := range n.Calls {
		for _, callee := range c.Callees {
			if callee.Func != nil {
				out[callee.Func.Name()] = true
			} else {
				out["<literal>"] = true
			}
		}
	}
	return out
}

func TestDirectAndMethodCalls(t *testing.T) {
	g := loadFixture(t)
	if !calleeNames(nodeByName(t, g, "direct"))["leaf"] {
		t.Error("direct() should resolve its call to leaf")
	}
	if !calleeNames(nodeByName(t, g, "viaMethod"))["Do"] {
		t.Error("viaMethod() should resolve a.Do() statically")
	}
}

func TestLiteralBinding(t *testing.T) {
	g := loadFixture(t)
	n := nodeByName(t, g, "viaLiteral")
	if !calleeNames(n)["<literal>"] {
		t.Error("viaLiteral() should resolve f() to the bound func literal")
	}
	// The literal's own body resolves leaf().
	for _, c := range n.Calls {
		for _, callee := range c.Callees {
			if callee.Lit != nil && !calleeNames(callee)["leaf"] {
				t.Error("bound literal should resolve its call to leaf")
			}
		}
	}
}

func TestInterfaceCHA(t *testing.T) {
	g := loadFixture(t)
	names := calleeNames(nodeByName(t, g, "viaInterface"))
	if !names["Do"] {
		t.Fatal("viaInterface() should resolve d.Do() by CHA")
	}
	var targets int
	for _, c := range nodeByName(t, g, "viaInterface").Calls {
		targets += len(c.Callees)
	}
	if targets != 2 {
		t.Errorf("CHA should find both Do implementations, got %d targets", targets)
	}
}

func TestCallersAndSCCs(t *testing.T) {
	g := loadFixture(t)
	leaf := nodeByName(t, g, "leaf")
	callers := map[string]bool{}
	for _, c := range g.Callers(leaf) {
		callers[c.Name()] = true
	}
	if len(callers) < 2 {
		t.Errorf("leaf should have callers from direct and the literal, got %v", callers)
	}

	// cycleA <-> cycleB must share one SCC, emitted before (or with) any
	// caller, and leaf's SCC must precede direct's (reverse topological).
	pos := map[*Node]int{}
	for i, scc := range g.SCCs() {
		for _, n := range scc {
			pos[n] = i
		}
	}
	a, b := nodeByName(t, g, "cycleA"), nodeByName(t, g, "cycleB")
	if pos[a] != pos[b] {
		t.Errorf("cycleA and cycleB should share an SCC: %d vs %d", pos[a], pos[b])
	}
	if pos[leaf] > pos[nodeByName(t, g, "direct")] {
		t.Error("SCCs should be in reverse topological order (leaf before direct)")
	}
}
