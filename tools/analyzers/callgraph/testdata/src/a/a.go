// Fixture for the callgraph package: direct calls, method calls, func
// literals bound to locals, and interface dispatch.
package a

type Doer interface{ Do() int }

type A struct{ n int }

func (a *A) Do() int { return a.n }

type B struct{}

func (B) Do() int { return 2 }

func leaf() int { return 1 }

func direct() int { return leaf() }

func viaLiteral() int {
	f := func() int { return leaf() }
	return f()
}

func viaInterface(d Doer) int { return d.Do() }

func viaMethod(a *A) int { return a.Do() }

func cycleA(n int) int {
	if n == 0 {
		return 0
	}
	return cycleB(n - 1)
}

func cycleB(n int) int { return cycleA(n) }

var sink = []any{direct, viaLiteral, viaInterface, viaMethod, cycleB, A{}, B{}}
