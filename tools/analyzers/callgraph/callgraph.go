// Package callgraph builds a cross-package static call graph over the
// packages the export-data loader parsed from source. It is the backbone of
// the interprocedural analyzers (crossshard, clockdomain): a control closure
// in internal/chaos may leak shard state it obtained from a helper in
// internal/harness, and only a module-wide view can connect the capture to
// the allocation.
//
// Resolution is deliberately simple and deterministic:
//
//   - direct calls to package functions and methods resolve statically;
//   - calls through a local variable or value that the enclosing function
//     binds to exactly one func literal resolve to that literal;
//   - calls through an interface method resolve by class-hierarchy analysis
//     (CHA): every method of a concrete type in the loaded set whose type
//     implements the interface is a possible callee.
//
// Anything else (func-typed fields, funcs passed across packages, calls into
// packages loaded only as export data) stays unresolved; clients must treat
// unresolved calls conservatively for their own property.
package callgraph

import (
	"go/ast"
	"go/types"
	"sort"

	"repro/tools/analyzers/analysis"
)

// Node is one function (or method, or func literal) with a body.
type Node struct {
	// Func is the declared function object; nil for func literals.
	Func *types.Func
	// Lit is the literal for anonymous functions; nil for declarations.
	Lit *ast.FuncLit
	// Decl is the declaration for named functions; nil for literals.
	Decl *ast.FuncDecl
	// Body is the function body (never nil; bodiless declarations get no
	// node).
	Body *ast.BlockStmt
	// Unit is the package the body lives in.
	Unit *analysis.PackageUnit
	// Calls lists the node's call sites in source order.
	Calls []*Call
	// callers is populated by Build for Callers.
	callers []*Node
}

// Name returns a stable human-readable identifier for diagnostics.
func (n *Node) Name() string {
	if n.Func != nil {
		return n.Func.FullName()
	}
	return n.Unit.ImportPath + ".func literal"
}

// Call is one call site inside a node.
type Call struct {
	// Site is the call expression.
	Site *ast.CallExpr
	// Callees lists the possible targets with bodies, sorted by name.
	// Empty means the call is unresolved (export-data-only callee, func
	// value of unknown origin, builtin).
	Callees []*Node
}

// Graph is the module-wide call graph.
type Graph struct {
	// Nodes maps declared functions to their graph nodes.
	Nodes map[*types.Func]*Node
	// Lits maps func literals to their graph nodes.
	Lits map[*ast.FuncLit]*Node
	// bySite maps call expressions to their Call records.
	bySite map[*ast.CallExpr]*Call
}

// NodeOf returns the graph node for fn, or nil when fn has no body in the
// loaded set.
func (g *Graph) NodeOf(fn *types.Func) *Node { return g.Nodes[fn] }

// LitOf returns the graph node for a func literal.
func (g *Graph) LitOf(lit *ast.FuncLit) *Node { return g.Lits[lit] }

// CalleesAt returns the resolved targets of a call expression, or nil.
func (g *Graph) CalleesAt(call *ast.CallExpr) []*Node {
	if c := g.bySite[call]; c != nil {
		return c.Callees
	}
	return nil
}

// Callers returns the nodes holding a call site that may target n.
func (g *Graph) Callers(n *Node) []*Node { return n.callers }

// chaMethod is one concrete method candidate for interface-call resolution.
type chaMethod struct {
	recv types.Type
	fn   *types.Func
}

// Build constructs the call graph for the loaded units.
func Build(units []*analysis.PackageUnit) *Graph {
	g := &Graph{
		Nodes:  make(map[*types.Func]*Node),
		Lits:   make(map[*ast.FuncLit]*Node),
		bySite: make(map[*ast.CallExpr]*Call),
	}

	// Pass 1: create a node per function body and index concrete methods
	// for CHA.
	var concrete []chaMethod
	for _, u := range units {
		for _, f := range u.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncDecl:
					if n.Body == nil {
						return true
					}
					obj, _ := u.TypesInfo.Defs[n.Name].(*types.Func)
					if obj == nil {
						return true
					}
					g.Nodes[obj] = &Node{Func: obj, Decl: n, Body: n.Body, Unit: u}
				case *ast.FuncLit:
					g.Lits[n] = &Node{Lit: n, Body: n.Body, Unit: u}
				}
				return true
			})
		}
		// Concrete method sets of every named type in the unit.
		scope := u.Pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			for i := 0; i < named.NumMethods(); i++ {
				concrete = append(concrete, chaMethod{recv: named, fn: named.Method(i)})
			}
		}
	}

	// Pass 2: resolve call sites inside every body.
	for _, u := range units {
		for _, f := range u.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				var body *ast.BlockStmt
				var owner *Node
				switch n := n.(type) {
				case *ast.FuncDecl:
					if n.Body == nil {
						return true
					}
					obj, _ := u.TypesInfo.Defs[n.Name].(*types.Func)
					if obj == nil {
						return true
					}
					owner, body = g.Nodes[obj], n.Body
				case *ast.FuncLit:
					owner, body = g.Lits[n], n.Body
				default:
					return true
				}
				bindings := literalBindings(body, u.TypesInfo)
				ast.Inspect(body, func(m ast.Node) bool {
					// Stay out of nested function bodies: their calls
					// belong to their own nodes.
					if m != body {
						switch m.(type) {
						case *ast.FuncLit:
							return false
						}
					}
					call, ok := m.(*ast.CallExpr)
					if !ok {
						return true
					}
					c := &Call{Site: call}
					c.Callees = resolve(g, u, call, bindings, concrete)
					owner.Calls = append(owner.Calls, c)
					g.bySite[call] = c
					return true
				})
				// Keep descending: nested func literals are processed as
				// their own nodes when the outer walk reaches them.
				return true
			})
		}
	}

	// Pass 3: caller back-edges.
	forEachNode(g, func(n *Node) {
		for _, c := range n.Calls {
			for _, callee := range c.Callees {
				callee.callers = append(callee.callers, n)
			}
		}
	})
	return g
}

// literalBindings maps local objects bound to exactly one func literal in
// body (v := func(){...}; var v = func(){...}) so calls through them
// resolve. An object rebound to anything else is dropped.
func literalBindings(body *ast.BlockStmt, info *types.Info) map[types.Object]*ast.FuncLit {
	out := map[types.Object]*ast.FuncLit{}
	poisoned := map[types.Object]bool{}
	bind := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil {
			return
		}
		if lit, ok := ast.Unparen(rhs).(*ast.FuncLit); ok && out[obj] == nil && !poisoned[obj] {
			out[obj] = lit
			return
		}
		poisoned[obj] = true
		delete(out, obj)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					bind(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.GenDecl:
			for _, spec := range n.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != len(vs.Values) {
					continue
				}
				for i := range vs.Names {
					bind(vs.Names[i], vs.Values[i])
				}
			}
		}
		return true
	})
	return out
}

// resolve finds the possible targets of one call.
func resolve(g *Graph, u *analysis.PackageUnit, call *ast.CallExpr, bindings map[types.Object]*ast.FuncLit, concrete []chaMethod) []*Node {
	fun := ast.Unparen(call.Fun)

	// Immediate literal: (func(){...})().
	if lit, ok := fun.(*ast.FuncLit); ok {
		if n := g.Lits[lit]; n != nil {
			return []*Node{n}
		}
		return nil
	}

	switch fn := fun.(type) {
	case *ast.Ident:
		obj := u.TypesInfo.Uses[fn]
		if f, ok := obj.(*types.Func); ok {
			if n := g.Nodes[f]; n != nil {
				return []*Node{n}
			}
			return nil
		}
		// A local bound to one literal.
		if lit := bindings[obj]; lit != nil {
			if n := g.Lits[lit]; n != nil {
				return []*Node{n}
			}
		}
		return nil
	case *ast.SelectorExpr:
		sel, ok := u.TypesInfo.Selections[fn]
		if !ok {
			// Qualified package call: pkg.Fn.
			if f, ok := u.TypesInfo.Uses[fn.Sel].(*types.Func); ok {
				if n := g.Nodes[f]; n != nil {
					return []*Node{n}
				}
			}
			return nil
		}
		callee, ok := sel.Obj().(*types.Func)
		if !ok {
			return nil
		}
		recv := sel.Recv()
		if types.IsInterface(recv) {
			return chaTargets(g, recv, callee, concrete)
		}
		// Static dispatch on the concrete type: resolve through the
		// method set so promoted/embedded methods land on the declaring
		// type's func object.
		if n := g.Nodes[callee]; n != nil {
			return []*Node{n}
		}
		return nil
	}
	return nil
}

// chaTargets returns every concrete method implementing an interface call.
func chaTargets(g *Graph, iface types.Type, callee *types.Func, concrete []chaMethod) []*Node {
	it, ok := iface.Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []*Node
	seen := map[*Node]bool{}
	for _, m := range concrete {
		if m.fn.Name() != callee.Name() {
			continue
		}
		if !types.Implements(m.recv, it) && !types.Implements(types.NewPointer(m.recv), it) {
			continue
		}
		if n := g.Nodes[m.fn]; n != nil && !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// forEachNode visits every node (declared then literal) deterministically.
func forEachNode(g *Graph, visit func(*Node)) {
	var decls []*Node
	for _, n := range g.Nodes { //simlint:deterministic order restored by the position sort below
		decls = append(decls, n)
	}
	var lits []*Node
	for _, n := range g.Lits { //simlint:deterministic order restored by the position sort below
		lits = append(lits, n)
	}
	sort.Slice(decls, func(i, j int) bool { return decls[i].Body.Pos() < decls[j].Body.Pos() })
	sort.Slice(lits, func(i, j int) bool { return lits[i].Body.Pos() < lits[j].Body.Pos() })
	for _, n := range decls {
		visit(n)
	}
	for _, n := range lits {
		visit(n)
	}
}

// AllNodes returns every node in deterministic (position) order.
func (g *Graph) AllNodes() []*Node {
	var out []*Node
	forEachNode(g, func(n *Node) { out = append(out, n) })
	return out
}

// SCCs returns the strongly connected components of the graph in reverse
// topological order (callees before callers), so bottom-up summary fixpoints
// can run one component at a time. Tarjan's algorithm, iterative.
func (g *Graph) SCCs() [][]*Node {
	nodes := g.AllNodes()
	index := map[*Node]int{}
	low := map[*Node]int{}
	onStack := map[*Node]bool{}
	var stack []*Node
	var sccs [][]*Node
	next := 0

	type frame struct {
		n  *Node
		ci int // index into flattened callee list
	}
	callees := func(n *Node) []*Node {
		var out []*Node
		for _, c := range n.Calls {
			out = append(out, c.Callees...)
		}
		return out
	}
	for _, root := range nodes {
		if _, seen := index[root]; seen {
			continue
		}
		work := []frame{{n: root}}
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(work) > 0 {
			f := &work[len(work)-1]
			cs := callees(f.n)
			if f.ci < len(cs) {
				c := cs[f.ci]
				f.ci++
				if _, seen := index[c]; !seen {
					index[c], low[c] = next, next
					next++
					stack = append(stack, c)
					onStack[c] = true
					work = append(work, frame{n: c})
				} else if onStack[c] && index[c] < low[f.n] {
					low[f.n] = index[c]
				}
				continue
			}
			// All callees visited: close the frame.
			n := f.n
			work = work[:len(work)-1]
			if len(work) > 0 {
				p := work[len(work)-1].n
				if low[n] < low[p] {
					low[p] = low[n]
				}
			}
			if low[n] == index[n] {
				var scc []*Node
				for {
					m := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[m] = false
					scc = append(scc, m)
					if m == n {
						break
					}
				}
				sccs = append(sccs, scc)
			}
		}
	}
	return sccs
}
