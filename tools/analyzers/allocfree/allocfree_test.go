package allocfree_test

import (
	"testing"

	"repro/tools/analyzers/allocfree"
	"repro/tools/analyzers/analysistest"
)

func TestAllocFree(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), allocfree.Analyzer, "a")
}
