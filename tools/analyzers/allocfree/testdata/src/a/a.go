// Fixture for the allocfree analyzer: heap-allocating constructs inside
// //simlint:hotpath functions (and their intra-package callees) are flagged;
// the scratch-buffer idiom, justified sites, and cold functions are not.
package a

import "fmt"

type pkt struct {
	scratch []byte
	sink    []byte
	n       int
}

// root is the annotated hot entry point; step and logf are reached through
// the static call graph.
//
//simlint:hotpath
func root(p *pkt, b []byte, s string) {
	p.step(b)
	logf("drop", p.n)              // want `arguments boxed into \.\.\.any`
	_ = make([]byte, 8)            // want `make allocates`
	_ = new(pkt)                   // want `new allocates`
	_ = &pkt{}                     // want `&composite literal escapes`
	_ = []int{1, 2}                // want `slice literal allocates`
	_ = map[int]int{}              // want `map literal allocates`
	_ = string(b)                  // want `string/byte-slice conversion copies`
	_ = []byte(s)                  // want `string/byte-slice conversion copies`
	_ = s + "!"                    // want `string concatenation allocates`
	fmt.Println(p.n)               // want `fmt\.Println allocates`
	defer func() {}()              // want `function literal allocates`
	p.sink = append(p.sink, b...)  // want `append without preallocated-capacity evidence`
}

// step has no annotation of its own: it is hot because root calls it.
func (p *pkt) step(b []byte) {
	buf := p.scratch[:0]
	buf = append(buf, b...) // evidence: buf descends from a reslice
	grown := append(buf, 0) // evidence carries through append chains
	p.scratch = grown[:len(grown)]
	p.n = len(p.scratch)
	p.deeper()
}

// deeper is two call edges away from root: still hot, still checked.
func (p *pkt) deeper() {
	p.sink = append(p.sink, 1) // want `append without preallocated-capacity evidence`
}

// logf's ...any parameter makes every call site box its arguments.
func logf(format string, args ...any) {
	_ = format
	_ = args
}

// justified demonstrates the escape hatch: the marker with a reason keeps
// the site quiet, a bare marker is itself a finding.
//
//simlint:hotpath
func justified(p *pkt) {
	p.scratch = make([]byte, 64) //simlint:alloc boot-time warm-up, runs once per trial
	//simlint:alloc
	_ = make([]byte, 4) // want `requires a written justification`
}

// pruned demonstrates call-graph pruning: the justified call keeps coldInit
// out of the hot closure, so its allocations are not reported.
//
//simlint:hotpath
func pruned(p *pkt) {
	p.coldInit() //simlint:alloc cold slow path, amortized over the trial
}

func (p *pkt) coldInit() {
	p.scratch = make([]byte, 1024)
	p.sink = []byte("cold")
}

// cold carries no annotation and is called by nobody hot: anything goes.
func cold() *pkt {
	m := map[string]int{"x": 1}
	return &pkt{n: m["x"]}
}
