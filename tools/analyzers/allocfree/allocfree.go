// Package allocfree enforces the allocation discipline of the simulator's
// per-packet hot paths (DESIGN.md §9). A function whose doc comment carries
// the `//simlint:hotpath` directive is a hot-path root; the analyzer walks
// the static call graph from every root — within the package under analysis
// — and rejects heap-allocating constructs in any function it reaches:
//
//   - make, new, &T{…}, and slice/map composite literals
//   - append whose destination shows no preallocation evidence (the
//     destination must descend from a reslice such as `buf[:0]` or from a
//     make in the same function — the scratch-buffer idiom)
//   - string↔[]byte/[]rune conversions and string concatenation
//   - calls to the fmt package
//   - arguments boxed into a variadic ...any parameter
//   - function literals (closure captures escape)
//
// The escape hatch is a `//simlint:alloc <why>` comment on the offending
// line (or the line above). The justification text is mandatory: a bare
// marker is reported. A suppressed *call* additionally prunes the call graph
// — the justification is taken to cover the callee's subtree, which is how
// trace-only helpers stay out of the hot closure.
//
// Cross-package edges are not followed (the loader type-checks dependencies
// from export data only, without syntax); hot callees in other packages must
// carry their own //simlint:hotpath annotation, which the sweep in this repo
// does for the ethernet/ipv4/udp marshal layer.
package allocfree

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"repro/tools/analyzers/analysis"
)

// Analyzer is the hot-path allocation check.
var Analyzer = &analysis.Analyzer{
	Name: "allocfree",
	Doc:  "flags heap-allocating constructs in //simlint:hotpath functions and their intra-package callees",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	decls := map[*types.Func]*ast.FuncDecl{}
	var roots []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func); ok {
				decls[obj] = fn
			}
			if _, marked := analysis.FuncMarked(fn, analysis.HotPathComment); marked {
				roots = append(roots, fn)
			}
		}
	}

	// Breadth-first closure over intra-package static calls. hot maps each
	// reached function to the root it was first reached from, for
	// diagnostics.
	hot := map[*ast.FuncDecl]string{}
	var queue []*ast.FuncDecl
	for _, r := range roots {
		if _, seen := hot[r]; !seen {
			hot[r] = r.Name.Name
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		root := hot[fn]
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			// A justified call site covers its callee's subtree.
			if _, sup := pass.MarkedAt(call.Pos(), analysis.AllocComment); sup {
				return true
			}
			callee := calleeDecl(pass, call, decls)
			if callee == nil {
				return true
			}
			if _, seen := hot[callee]; !seen {
				hot[callee] = root
				queue = append(queue, callee)
			}
			return true
		})
	}

	for fn, root := range hot {
		checkFunc(pass, fn, root)
	}
	return nil, nil
}

// calleeDecl resolves a call expression to a function declared in the
// package under analysis, or nil (builtin, other package, interface method,
// or function value).
func calleeDecl(pass *analysis.Pass, call *ast.CallExpr, decls map[*types.Func]*ast.FuncDecl) *ast.FuncDecl {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	obj, ok := pass.TypesInfo.Uses[id].(*types.Func)
	if !ok {
		return nil
	}
	return decls[obj]
}

// checkFunc flags allocating constructs in one hot function.
func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl, root string) {
	prealloc := preallocatedVars(pass, fn)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, fn, n, prealloc, root)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					report(pass, n.Pos(), root, "&composite literal escapes to the heap")
					return false // the literal itself would double-report
				}
			}
		case *ast.CompositeLit:
			switch pass.TypesInfo.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				report(pass, n.Pos(), root, "slice literal allocates")
			case *types.Map:
				report(pass, n.Pos(), root, "map literal allocates")
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if t, ok := pass.TypesInfo.TypeOf(n).Underlying().(*types.Basic); ok && t.Info()&types.IsString != 0 {
					report(pass, n.Pos(), root, "string concatenation allocates")
				}
			}
		case *ast.FuncLit:
			report(pass, n.Pos(), root, "function literal allocates (closure capture)")
			return false // do not descend; one report per literal
		}
		return true
	})
}

// checkCall flags allocating call forms: make/new, unevidenced append,
// string↔bytes conversions, fmt calls, and ...any boxing.
func checkCall(pass *analysis.Pass, fn *ast.FuncDecl, call *ast.CallExpr, prealloc map[types.Object]bool, root string) {
	fun := ast.Unparen(call.Fun)

	if id, ok := fun.(*ast.Ident); ok {
		switch pass.TypesInfo.Uses[id] {
		case types.Universe.Lookup("make"):
			report(pass, call.Pos(), root, "make allocates")
			return
		case types.Universe.Lookup("new"):
			report(pass, call.Pos(), root, "new allocates")
			return
		case types.Universe.Lookup("append"):
			if !appendEvidence(pass, call, prealloc) {
				report(pass, call.Pos(), root, "append without preallocated-capacity evidence may grow the backing array")
			}
			return
		}
	}

	// Type conversions: string <-> []byte / []rune copy their operand.
	if tv, ok := pass.TypesInfo.Types[fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && stringBytesConv(pass.TypesInfo.TypeOf(call.Args[0]), tv.Type) {
			report(pass, call.Pos(), root, "string/byte-slice conversion copies its operand")
		}
		return
	}

	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if x, ok := sel.X.(*ast.Ident); ok {
			if pkg, ok := pass.TypesInfo.Uses[x].(*types.PkgName); ok && pkg.Imported().Path() == "fmt" {
				report(pass, call.Pos(), root, "fmt.%s allocates", sel.Sel.Name)
				return
			}
		}
	}

	// Boxing into a variadic ...any parameter allocates the slice and an
	// interface per argument.
	if sig, ok := pass.TypesInfo.TypeOf(fun).(*types.Signature); ok && sig.Variadic() {
		last := sig.Params().At(sig.Params().Len() - 1)
		if slice, ok := last.Type().(*types.Slice); ok {
			if iface, ok := slice.Elem().Underlying().(*types.Interface); ok && iface.Empty() {
				if len(call.Args) >= sig.Params().Len() && call.Ellipsis == 0 {
					report(pass, call.Pos(), root, "arguments boxed into ...any allocate")
				}
			}
		}
	}
}

// stringBytesConv reports whether a conversion between from and to copies
// string contents: string↔[]byte or string↔[]rune in either direction.
func stringBytesConv(from, to types.Type) bool {
	if from == nil || to == nil {
		return false
	}
	return (isString(from) && isCharSlice(to)) || (isCharSlice(from) && isString(to))
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isCharSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// preallocatedVars collects local variables whose backing array shows
// preallocation evidence: assigned from a reslice expression (`x[:0]`, the
// scratch-buffer idiom) or from a make call in the same function. append
// into these reuses capacity in the steady state.
func preallocatedVars(pass *analysis.Pass, fn *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	for {
		grew := false
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = pass.TypesInfo.Uses[id]
				}
				if obj == nil || out[obj] {
					continue
				}
				if preallocExpr(pass, as.Rhs[i], out) {
					out[obj] = true
					grew = true
				}
			}
			return true
		})
		if !grew {
			return out
		}
	}
}

// preallocExpr reports whether e evidences preallocated capacity: a reslice,
// a make, or an append to / reslice of an already-evidenced variable.
func preallocExpr(pass *analysis.Pass, e ast.Expr, known map[types.Object]bool) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.SliceExpr:
		return true
	case *ast.Ident:
		return known[pass.TypesInfo.Uses[e]]
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			switch pass.TypesInfo.Uses[id] {
			case types.Universe.Lookup("make"):
				return true
			case types.Universe.Lookup("append"):
				if len(e.Args) > 0 {
					return preallocExpr(pass, e.Args[0], known)
				}
			}
		}
	}
	return false
}

// appendEvidence reports whether the append destination descends from a
// preallocated variable or is itself a reslice.
func appendEvidence(pass *analysis.Pass, call *ast.CallExpr, prealloc map[types.Object]bool) bool {
	if len(call.Args) == 0 {
		return false
	}
	return preallocExpr(pass, call.Args[0], prealloc)
}

// report emits one diagnostic unless the site is justified; a marker with an
// empty justification is reported as such.
func report(pass *analysis.Pass, pos token.Pos, root string, format string, args ...any) {
	just, marked := pass.MarkedAt(pos, analysis.AllocComment)
	if marked {
		if just == "" {
			pass.Reportf(pos, "%s requires a written justification", analysis.AllocComment)
		}
		return
	}
	pass.Reportf(pos, "hot path (via %s): %s; remove the allocation or justify with %s <why>",
		root, fmt.Sprintf(format, args...), analysis.AllocComment)
}
