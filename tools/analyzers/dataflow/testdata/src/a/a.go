// Fixture for the dataflow alias analysis. The test anchors the type named
// Anchor; everything reachable from it by reference must be reported as
// aliased, and owned copies must not.
package a

type Anchor struct {
	buf   []byte
	stats []uint64
	n     int
}

// borrow returns a direct alias of anchored state through a helper.
func borrow(a *Anchor) []byte { return a.buf }

// borrowDeep launders the alias through a second hop.
func borrowDeep(a *Anchor) []byte { return borrow(a) }

// fresh returns an owned copy.
func fresh(a *Anchor) []byte {
	out := make([]byte, len(a.buf))
	copy(out, a.buf)
	return out
}

// scalar copies a value out of anchored memory: owned.
func scalar(a *Anchor) int { return a.n }

func user(a *Anchor) {
	aliased := borrowDeep(a)    // test: aliased
	owned := fresh(a)           // test: owned
	count := scalar(a)          // test: owned
	grown := append(aliased, 1) // test: aliased (append keeps the alias)
	stats := a.stats[1:]        // test: aliased (reslice)
	_ = aliased
	_ = owned
	_ = count
	_ = grown
	_ = stats
}

// handoff sends an alias through a channel; the receiver is tainted.
func handoff(a *Anchor, ch chan []byte) {
	ch <- a.buf
	got := <-ch // test: aliased
	_ = got
}

// paramFlow checks call-site argument propagation into parameters.
func sinkParam(b []byte) []byte { return b }

func paramUser(a *Anchor) {
	viaParam := sinkParam(a.buf) // test: aliased
	viaFresh := sinkParam(make([]byte, 4))
	_ = viaParam
	_ = viaFresh
}
