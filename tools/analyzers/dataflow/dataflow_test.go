package dataflow

import (
	"go/types"
	"path/filepath"
	"strings"
	"testing"

	"repro/tools/analyzers/analysis"
	"repro/tools/analyzers/callgraph"
	"repro/tools/analyzers/load"
)

// loadFixture builds the alias analysis over the fixture package, anchoring
// the type named Anchor.
func loadFixture(t *testing.T) (*Aliasing, *load.Package) {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src", "a"))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := load.LoadDir(dir)
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	g := callgraph.Build([]*analysis.PackageUnit{{
		ImportPath: pkg.ImportPath,
		Files:      pkg.Files,
		Pkg:        pkg.Types,
		TypesInfo:  pkg.Info,
	}})
	anchored := func(t types.Type) bool {
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		return ok && named.Obj().Name() == "Anchor"
	}
	return NewAliasing(g, anchored), pkg
}

// varByName finds the non-field variable object defined with the given name
// (the fixture reuses some names as struct fields, which the alias map does
// not track).
func varByName(t *testing.T, pkg *load.Package, name string) types.Object {
	t.Helper()
	for id, obj := range pkg.Info.Defs {
		if obj != nil && id.Name == name {
			if v, ok := obj.(*types.Var); ok && !v.IsField() {
				return obj
			}
		}
	}
	t.Fatalf("no var %q in fixture", name)
	return nil
}

func TestAliasPropagation(t *testing.T) {
	a, pkg := loadFixture(t)
	cases := []struct {
		name    string
		aliased bool
	}{
		{"aliased", true}, // borrowDeep: alias through two call hops
		{"grown", true},   // append keeps the alias
		{"stats", true},   // reslice of anchored field
		{"got", true},     // channel handoff
		{"viaParam", true},
		// Context-insensitive merge: sinkParam's parameter is tainted by
		// the aliased call site, so even the fresh-argument call site
		// returns aliased. Documented overtaint, pinned here.
		{"viaFresh", true},
		{"owned", false}, // copied into a fresh buffer
		{"count", false}, // scalar copy
	}
	for _, c := range cases {
		obj := varByName(t, pkg, c.name)
		if got := a.VarAliases(obj); got != c.aliased {
			t.Errorf("VarAliases(%s) = %v, want %v", c.name, got, c.aliased)
		}
	}
}

func TestReturnSummaries(t *testing.T) {
	a, pkg := loadFixture(t)
	g := a.graph
	for fn, n := range g.Nodes {
		if !strings.HasPrefix(fn.Name(), "borrow") && fn.Name() != "fresh" && fn.Name() != "scalar" {
			continue
		}
		wantAliased := strings.HasPrefix(fn.Name(), "borrow")
		if got := a.rets[n]; got != wantAliased {
			t.Errorf("return summary of %s = %v, want %v", fn.Name(), got, wantAliased)
		}
	}
	_ = pkg
}
