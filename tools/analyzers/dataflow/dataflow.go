// Package dataflow implements the interprocedural ownership analysis behind
// the partition-safety analyzers. Given a client predicate marking anchor
// types (for crossshard: the shard-resident simnet types), it computes which
// values in the module may alias memory reachable from an anchored value —
// tracking flow from the allocation site through assignments, struct fields,
// calls and returns, and channel handoffs.
//
// The analysis is deliberately coarse so it stays dependable and fast on a
// stdlib-only toolchain:
//
//   - flow-insensitive: one boolean per variable object, monotone under a
//     global fixpoint, no path or order sensitivity;
//   - context-insensitive: call edges from the callgraph package propagate
//     argument taint into parameter objects and return taint back to call
//     sites, merged over all callers;
//   - field-insensitive on writes: storing an aliased value into x.f taints
//     x, because a later read of any field of x may surface the alias;
//   - copy-aware: selecting or dereferencing a non-pointerish value out of
//     aliased memory produces an owned copy and drops the taint.
//
// Unresolved calls (no body in the loaded set) are handled conservatively:
// the result is treated as aliasing when the receiver or any argument is
// aliased/anchored and the result type can carry a reference.
package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/tools/analyzers/callgraph"
)

// Aliasing is the computed module-wide alias relation.
type Aliasing struct {
	graph    *callgraph.Graph
	anchored func(types.Type) bool
	// vars marks variable objects whose value may alias anchored memory.
	vars map[types.Object]bool
	// rets marks functions that may return such a value.
	rets map[*callgraph.Node]bool
	// chans marks channel-rooted objects through which such a value was
	// sent; receives from them are aliased.
	chans map[types.Object]bool
}

// NewAliasing runs the fixpoint over the graph's function bodies.
func NewAliasing(g *callgraph.Graph, anchored func(types.Type) bool) *Aliasing {
	a := &Aliasing{
		graph:    g,
		anchored: anchored,
		vars:     map[types.Object]bool{},
		rets:     map[*callgraph.Node]bool{},
		chans:    map[types.Object]bool{},
	}
	for a.sweep() {
	}
	return a
}

// VarAliases reports whether the variable object's value may alias anchored
// memory.
func (a *Aliasing) VarAliases(obj types.Object) bool { return a.vars[obj] }

// ExprAliases reports whether the expression's value may alias anchored
// memory, under the unit's type information.
func (a *Aliasing) ExprAliases(info *types.Info, e ast.Expr) bool {
	return a.aliasedExpr(info, e)
}

// Pointerish reports whether a value of type t can carry a reference into
// someone else's memory: pointers, slices, maps, and channels. Interfaces
// and funcs are excluded — the anchor predicate classifies those by type —
// and basics, strings, structs, and arrays are owned copies.
func Pointerish(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan:
		return true
	}
	return false
}

// sweep walks every function body once, propagating taint; it reports
// whether anything changed.
func (a *Aliasing) sweep() bool {
	changed := false
	taintVar := func(obj types.Object) {
		if obj != nil && !a.vars[obj] {
			a.vars[obj] = true
			changed = true
		}
	}
	for _, n := range a.graph.AllNodes() {
		info := n.Unit.TypesInfo
		namedResults := namedResultObjs(n, info)

		ast.Inspect(n.Body, func(m ast.Node) bool {
			// Nested literals are their own nodes.
			if lit, ok := m.(*ast.FuncLit); ok && lit.Body != n.Body {
				return false
			}
			switch m := m.(type) {
			case *ast.AssignStmt:
				a.bindAssign(info, m, taintVar)
			case *ast.GenDecl:
				if m.Tok != token.VAR {
					return true
				}
				for _, spec := range m.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					a.bindPairs(info, identExprs(vs.Names), vs.Values, taintVar)
				}
			case *ast.RangeStmt:
				if a.aliasedExpr(info, m.X) {
					for _, e := range []ast.Expr{m.Key, m.Value} {
						if e == nil {
							continue
						}
						if t := info.TypeOf(e); Pointerish(t) || a.anchored(t) {
							taintVar(rootObj(info, e))
						}
					}
				}
			case *ast.SendStmt:
				if a.aliasedExpr(info, m.Value) {
					if obj := rootObj(info, m.Chan); obj != nil && !a.chans[obj] {
						a.chans[obj] = true
						changed = true
					}
				}
			case *ast.ReturnStmt:
				aliased := false
				if len(m.Results) == 0 {
					for _, obj := range namedResults {
						if a.vars[obj] {
							aliased = true
						}
					}
				}
				for _, r := range m.Results {
					if a.aliasedExpr(info, r) {
						aliased = true
					}
				}
				if aliased && !a.rets[n] {
					a.rets[n] = true
					changed = true
				}
			case *ast.CallExpr:
				a.bindCallParams(info, m, taintVar)
			}
			return true
		})
	}
	return changed
}

// bindAssign propagates one assignment or short declaration.
func (a *Aliasing) bindAssign(info *types.Info, st *ast.AssignStmt, taintVar func(types.Object)) {
	a.bindPairs(info, st.Lhs, st.Rhs, taintVar)
}

// bindPairs handles lhs... = rhs..., including the 1-call multi-value form.
func (a *Aliasing) bindPairs(info *types.Info, lhs, rhs []ast.Expr, taintVar func(types.Object)) {
	if len(rhs) == 1 && len(lhs) > 1 {
		// x, y := f() — taint every reference-capable lhs when the call
		// may return aliased memory.
		if a.aliasedExpr(info, rhs[0]) {
			for _, l := range lhs {
				if t := info.TypeOf(l); Pointerish(t) || a.anchored(t) {
					taintVar(rootObj(info, l))
				}
			}
		}
		return
	}
	for i := range lhs {
		if i >= len(rhs) {
			break
		}
		if a.aliasedExpr(info, rhs[i]) {
			taintVar(rootObj(info, lhs[i]))
		}
	}
}

// bindCallParams propagates aliased arguments into the parameter objects of
// every resolved callee (context-insensitive: merged over all call sites).
func (a *Aliasing) bindCallParams(info *types.Info, call *ast.CallExpr, taintVar func(types.Object)) {
	callees := a.graph.CalleesAt(call)
	if len(callees) == 0 {
		return
	}
	var aliasedArgs []bool
	for _, arg := range call.Args {
		aliasedArgs = append(aliasedArgs, a.aliasedExpr(info, arg))
	}
	recvAliased := false
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if _, isSel := info.Selections[sel]; isSel {
			recvAliased = a.aliasedExpr(info, sel.X)
		}
	}
	for _, callee := range callees {
		params, recv := calleeParamObjs(callee)
		if recvAliased {
			taintVar(recv)
		}
		for i, aliased := range aliasedArgs {
			if !aliased {
				continue
			}
			if i < len(params) {
				taintVar(params[i])
			} else if len(params) > 0 {
				taintVar(params[len(params)-1]) // variadic tail
			}
		}
	}
}

// aliasedExpr reports whether e's value may alias anchored memory.
func (a *Aliasing) aliasedExpr(info *types.Info, e ast.Expr) bool {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		if obj == nil {
			return false
		}
		return a.vars[obj] || a.anchored(obj.Type())
	case *ast.SelectorExpr:
		if _, isSel := info.Selections[e]; !isSel {
			// Package-qualified reference pkg.V.
			if obj := info.Uses[e.Sel]; obj != nil {
				return a.vars[obj] || a.anchored(obj.Type())
			}
			return false
		}
		if t := info.TypeOf(e); a.anchored(t) {
			return true
		} else if !Pointerish(t) {
			return false // owned copy of a scalar/struct field
		}
		return a.aliasedExpr(info, e.X)
	case *ast.IndexExpr:
		if t := info.TypeOf(e); a.anchored(t) {
			return true
		} else if !Pointerish(t) {
			return false
		}
		return a.aliasedExpr(info, e.X)
	case *ast.SliceExpr:
		return a.aliasedExpr(info, e.X)
	case *ast.StarExpr:
		if t := info.TypeOf(e); a.anchored(t) {
			return true
		} else if !Pointerish(t) {
			return false
		}
		return a.aliasedExpr(info, e.X)
	case *ast.UnaryExpr:
		switch e.Op {
		case token.AND:
			return a.aliasedExpr(info, e.X)
		case token.ARROW:
			// Channel receive: aliased when something aliased was sent on
			// the channel object and the element can carry a reference.
			t := info.TypeOf(e)
			if !Pointerish(t) && !a.anchored(t) {
				return false
			}
			return a.chans[rootObj(info, e.X)]
		}
		return false
	case *ast.CallExpr:
		return a.aliasedCall(info, e)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if a.aliasedExpr(info, el) {
				return true
			}
		}
		return false
	case *ast.TypeAssertExpr:
		if !Pointerish(info.TypeOf(e)) && !a.anchored(info.TypeOf(e)) {
			return false
		}
		return a.aliasedExpr(info, e.X)
	}
	return false
}

// aliasedCall evaluates a call (or conversion) expression.
func (a *Aliasing) aliasedCall(info *types.Info, call *ast.CallExpr) bool {
	// Type conversion: T(x) keeps x's aliasing when T can carry it.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && (Pointerish(info.TypeOf(call)) || a.anchored(info.TypeOf(call))) {
			return a.aliasedExpr(info, call.Args[0])
		}
		return false
	}
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "append":
				// append extends its first argument's backing array, so
				// that aliasing persists; appended elements are copied, so
				// they matter only when the element type itself can carry
				// a reference (append([]int(nil), tainted...) is the
				// owned-copy idiom and stays clean).
				if len(call.Args) == 0 {
					return false
				}
				if a.aliasedExpr(info, call.Args[0]) {
					return true
				}
				if st, ok := info.TypeOf(call.Args[0]).Underlying().(*types.Slice); ok {
					if !Pointerish(st.Elem()) && !a.anchored(st.Elem()) {
						return false
					}
				}
				for _, arg := range call.Args[1:] {
					if a.aliasedExpr(info, arg) {
						return true
					}
				}
			}
			return false
		}
	}
	// Resolved callees: the summary of any target applies.
	if callees := a.graph.CalleesAt(call); len(callees) > 0 {
		for _, c := range callees {
			if a.rets[c] {
				return true
			}
		}
		return false
	}
	// Unresolved call (export-data-only, func value, interface with no CHA
	// target): conservative when anchored/aliased memory goes in and a
	// reference-capable value comes out.
	t := info.TypeOf(call)
	if !Pointerish(t) && !a.anchored(t) {
		return false
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if _, isSel := info.Selections[sel]; isSel && a.aliasedExpr(info, sel.X) {
			return true
		}
	}
	for _, arg := range call.Args {
		if a.aliasedExpr(info, arg) {
			return true
		}
	}
	return false
}

// rootObj returns the variable object at the root of an lvalue chain
// (x, x.f, x[i], *x, (x)), or nil.
func rootObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil {
				return obj
			}
			return info.Defs[x]
		case *ast.SelectorExpr:
			if _, isSel := info.Selections[x]; !isSel {
				return info.Uses[x.Sel] // pkg.V
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// identExprs widens a name list to an expression list.
func identExprs(names []*ast.Ident) []ast.Expr {
	out := make([]ast.Expr, len(names))
	for i, n := range names {
		out[i] = n
	}
	return out
}

// calleeParamObjs returns the parameter objects (and receiver, for methods)
// of a callee node, resolved through its declaration syntax.
func calleeParamObjs(n *callgraph.Node) (params []types.Object, recv types.Object) {
	info := n.Unit.TypesInfo
	var ft *ast.FuncType
	if n.Decl != nil {
		ft = n.Decl.Type
		if n.Decl.Recv != nil && len(n.Decl.Recv.List) == 1 && len(n.Decl.Recv.List[0].Names) == 1 {
			recv = info.Defs[n.Decl.Recv.List[0].Names[0]]
		}
	} else if n.Lit != nil {
		ft = n.Lit.Type
	}
	if ft == nil || ft.Params == nil {
		return nil, recv
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			params = append(params, info.Defs[name])
		}
	}
	return params, recv
}

// namedResultObjs returns the function's named result objects, if any.
func namedResultObjs(n *callgraph.Node, info *types.Info) []types.Object {
	var ft *ast.FuncType
	if n.Decl != nil {
		ft = n.Decl.Type
	} else if n.Lit != nil {
		ft = n.Lit.Type
	}
	if ft == nil || ft.Results == nil {
		return nil
	}
	var out []types.Object
	for _, field := range ft.Results.List {
		for _, name := range field.Names {
			out = append(out, info.Defs[name])
		}
	}
	return out
}
