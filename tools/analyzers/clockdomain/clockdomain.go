// Package clockdomain enforces the partitioned engine's time contract
// (DESIGN.md §13): a Sim.Now() reading belongs to the engine that produced
// it and must not meet time from another engine. Under space-parallel
// execution each shard's virtual clock advances independently between
// synchronization points, so subtracting a coordinator timestamp from a
// shard-local Now() (the PR 6 FCT bug) or scheduling a shard-local deadline
// on the coordinator silently mixes two clocks that only agree at barriers.
//
// The analysis assigns every engine expression a canonical identity:
//
//   - method-receiver chains canonicalize by type: e.sim inside
//     (*workload.Engine) methods is "(*workload.Engine).sim" in every
//     method, so stores and loads of the same field agree;
//   - parameters get a per-declaration identity, so an engine handed into a
//     callback is distinct from the engine stored in the receiver;
//   - package-level variables canonicalize by path.
//
// Duration values are then labeled with the clock domains that produced
// them: X.Now() yields {identity of X}, labels flow through assignment,
// struct fields (object-grained, module-wide), arithmetic, and resolved
// calls (return summaries with call-site parameter substitution via
// tools/analyzers/callgraph). Subtracting two readings of the same clock
// yields an unlabeled interval — elapsed times may cross shards freely; it
// is instants that must stay home.
//
// Two sites are flagged:
//
//   - arithmetic or comparison whose operands carry disjoint, known domain
//     sets (an instant from clock A meeting an instant from clock B);
//   - X.At(t, ...) where t's domains are known and do not include X.
//
// Unknown domains stay silent: the analysis only reports when both sides
// are traced to concrete, different engines. The escape hatch is
// `//simlint:clocksafe <why>` on the offending line (or the line above);
// the usual why is a quiesce barrier that aligns the clocks at that point.
package clockdomain

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"

	"repro/tools/analyzers/analysis"
	"repro/tools/analyzers/callgraph"
)

// Analyzer is the clock-domain check.
var Analyzer = &analysis.ModuleAnalyzer{
	Name: "clockdomain",
	Doc:  "flags time values crossing between engine clock domains",
	Run:  run,
}

// simnetPath is the package owning the engine types.
const simnetPath = "repro/internal/simnet"

// engineNames are the simnet types whose Now() defines a clock domain.
var engineNames = map[string]bool{
	"Sim":     true,
	"Engine":  true,
	"Cluster": true,
}

// sumKey is a domain key in a function summary: absolute, or rooted at one
// of the summarized function's parameters so call sites can substitute the
// argument's identity.
type sumKey struct {
	param int    // -1 when absolute
	key   string // absolute key, or the field path appended to the argument
}

type labelSet map[string]bool

type checker struct {
	pass  *analysis.ModulePass
	graph *callgraph.Graph

	// recvKey canonicalizes method receivers by receiver type.
	recvKey map[types.Object]string
	// paramKey gives every parameter a stable per-declaration identity.
	paramKey map[types.Object]string
	// paramIdx locates a parameter in its function's signature for summary
	// substitution.
	paramIdx map[types.Object]int
	// owner maps parameters to their function node, to scope substitution.
	owner map[types.Object]*callgraph.Node

	// paths propagates engine identities through local assignment.
	paths    map[types.Object]string
	poisoned map[types.Object]bool

	// clocks labels duration-typed locals; fields labels duration-typed
	// struct fields module-wide (object-grained, flow-insensitive).
	clocks map[types.Object]labelSet
	fields map[*types.Var]labelSet

	// retClock / retEngine are per-function return summaries.
	retClock     map[*callgraph.Node]map[sumKey]bool
	retEngine    map[*callgraph.Node]sumKey
	retEngineBad map[*callgraph.Node]bool

	changed bool
}

func run(pass *analysis.ModulePass) (any, error) {
	c := &checker{
		pass:         pass,
		graph:        callgraph.Build(pass.Units),
		recvKey:      map[types.Object]string{},
		paramKey:     map[types.Object]string{},
		paramIdx:     map[types.Object]int{},
		owner:        map[types.Object]*callgraph.Node{},
		paths:        map[types.Object]string{},
		poisoned:     map[types.Object]bool{},
		clocks:       map[types.Object]labelSet{},
		fields:       map[*types.Var]labelSet{},
		retClock:     map[*callgraph.Node]map[sumKey]bool{},
		retEngine:    map[*callgraph.Node]sumKey{},
		retEngineBad: map[*callgraph.Node]bool{},
	}
	c.indexIdentities()

	// Global monotone fixpoint: labels only grow, path identities only decay
	// toward unknown, so the sweep terminates.
	for {
		c.changed = false
		for _, n := range c.graph.AllNodes() {
			c.sweepNode(n)
		}
		if !c.changed {
			break
		}
	}

	for _, n := range c.graph.AllNodes() {
		c.reportNode(n)
	}
	return nil, nil
}

// indexIdentities assigns canonical keys to receivers and parameters.
func (c *checker) indexIdentities() {
	for _, n := range c.graph.AllNodes() {
		if n.Decl != nil && n.Decl.Recv != nil && len(n.Decl.Recv.List) > 0 {
			fld := n.Decl.Recv.List[0]
			if len(fld.Names) == 1 {
				if obj := n.Unit.TypesInfo.Defs[fld.Names[0]]; obj != nil {
					c.recvKey[obj] = "(" + typeString(obj.Type()) + ")"
				}
			}
		}
		var ftype *ast.FuncType
		if n.Decl != nil {
			ftype = n.Decl.Type
		} else {
			ftype = n.Lit.Type
		}
		i := 0
		for _, fld := range ftype.Params.List {
			for _, name := range fld.Names {
				obj := n.Unit.TypesInfo.Defs[name]
				if obj != nil {
					pos := c.pass.Fset.Position(obj.Pos())
					c.paramKey[obj] = fmt.Sprintf("%s (param %s:%d)",
						name.Name, filepath.Base(pos.Filename), pos.Line)
					c.paramIdx[obj] = i
					c.owner[obj] = n
				}
				i++
			}
			if len(fld.Names) == 0 {
				i++
			}
		}
	}
}

// sweepNode propagates labels through one function body.
func (c *checker) sweepNode(n *callgraph.Node) {
	info := n.Unit.TypesInfo
	inspectBody(n, func(m ast.Node) {
		switch m := m.(type) {
		case *ast.AssignStmt:
			if len(m.Lhs) == len(m.Rhs) && (m.Tok == token.ASSIGN || m.Tok == token.DEFINE) {
				for i := range m.Lhs {
					c.bind(info, m.Lhs[i], m.Rhs[i])
				}
			}
		case *ast.GenDecl:
			for _, spec := range m.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != len(vs.Values) {
					continue
				}
				for i := range vs.Names {
					c.bind(info, vs.Names[i], vs.Values[i])
				}
			}
		case *ast.ReturnStmt:
			c.summarize(n, m)
		}
	})
}

// bind records what one assignment teaches us: engine identities for path
// propagation, clock labels for duration values.
func (c *checker) bind(info *types.Info, lhs, rhs ast.Expr) {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return
		}
		obj := info.Defs[l]
		if obj == nil {
			obj = info.Uses[l]
		}
		if obj == nil {
			return
		}
		if rk := c.rootKeyOf(info, rhs); rk != "" && !c.poisoned[obj] {
			if prev, ok := c.paths[obj]; ok && prev != rk {
				c.poisoned[obj] = true
				delete(c.paths, obj)
				c.changed = true
			} else if !ok {
				c.paths[obj] = rk
				c.changed = true
			}
		}
		if isDuration(obj.Type()) {
			c.addLabels(c.lookupClock(obj), c.clockSetOf(info, rhs), func() labelSet {
				s := labelSet{}
				c.clocks[obj] = s
				return s
			})
		}
	case *ast.SelectorExpr:
		sel, ok := info.Selections[l]
		if !ok || sel.Kind() != types.FieldVal {
			return
		}
		fv, ok := sel.Obj().(*types.Var)
		if !ok || !isDuration(fv.Type()) {
			return
		}
		c.addLabels(c.fields[fv], c.clockSetOf(info, rhs), func() labelSet {
			s := labelSet{}
			c.fields[fv] = s
			return s
		})
	}
}

// addLabels unions src into dst (allocating via mk when dst is nil),
// flagging the fixpoint on growth.
func (c *checker) addLabels(dst labelSet, src labelSet, mk func() labelSet) {
	if len(src) == 0 {
		return
	}
	if dst == nil {
		dst = mk()
	}
	for k := range src {
		if !dst[k] {
			dst[k] = true
			c.changed = true
		}
	}
}

func (c *checker) lookupClock(obj types.Object) labelSet { return c.clocks[obj] }

// summarize folds a return statement into the function's summaries.
func (c *checker) summarize(n *callgraph.Node, ret *ast.ReturnStmt) {
	info := n.Unit.TypesInfo
	for _, res := range ret.Results {
		t := info.TypeOf(res)
		if t == nil {
			continue
		}
		switch {
		case isDuration(t):
			for k := range c.clockSetOf(info, res) {
				sk := c.toSumKey(n, k)
				m := c.retClock[n]
				if m == nil {
					m = map[sumKey]bool{}
					c.retClock[n] = m
				}
				if !m[sk] {
					m[sk] = true
					c.changed = true
				}
			}
		case isEngine(t):
			rk := c.rootKeyOf(info, res)
			if rk == "" || c.retEngineBad[n] {
				continue
			}
			sk := c.toSumKey(n, rk)
			if prev, ok := c.retEngine[n]; ok && prev != sk {
				c.retEngineBad[n] = true
				delete(c.retEngine, n)
				c.changed = true
			} else if !ok {
				c.retEngine[n] = sk
				c.changed = true
			}
		}
	}
}

// toSumKey rewrites a key rooted at one of n's own parameters into a
// substitutable form; other keys (receiver-canonical, package-level, foreign
// parameters) stay absolute.
func (c *checker) toSumKey(n *callgraph.Node, key string) sumKey {
	for obj, pk := range c.paramKey { //simlint:deterministic result independent of visit order: at most one param key prefixes a given identity
		if c.owner[obj] != n {
			continue
		}
		if key == pk {
			return sumKey{param: c.paramIdx[obj]}
		}
		if strings.HasPrefix(key, pk+".") {
			return sumKey{param: c.paramIdx[obj], key: key[len(pk):]}
		}
	}
	return sumKey{param: -1, key: key}
}

// expand resolves a summary key at a call site; "" when the argument's
// identity is unknown.
func (c *checker) expand(info *types.Info, sk sumKey, call *ast.CallExpr) string {
	if sk.param < 0 {
		return sk.key
	}
	if sk.param >= len(call.Args) {
		return ""
	}
	root := c.rootKeyOf(info, call.Args[sk.param])
	if root == "" {
		return ""
	}
	return root + sk.key
}

// rootKeyOf computes the canonical identity of an expression's storage
// location, or "" when unknown.
func (c *checker) rootKeyOf(info *types.Info, e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		if obj == nil {
			return ""
		}
		if k, ok := c.recvKey[obj]; ok {
			return k
		}
		if k, ok := c.paramKey[obj]; ok {
			return k
		}
		if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return shortPkg(v.Pkg().Path()) + "." + v.Name()
		}
		return c.paths[obj]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			root := c.rootKeyOf(info, e.X)
			if root == "" {
				return ""
			}
			return root + "." + e.Sel.Name
		}
		// Qualified package-level variable: pkg.Var.
		if v, ok := info.Uses[e.Sel].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return shortPkg(v.Pkg().Path()) + "." + v.Name()
		}
		return ""
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return c.rootKeyOf(info, e.X)
		}
		return ""
	case *ast.StarExpr:
		return c.rootKeyOf(info, e.X)
	case *ast.CallExpr:
		key := ""
		for _, callee := range c.graph.CalleesAt(e) {
			sk, ok := c.retEngine[callee]
			if !ok {
				return ""
			}
			k := c.expand(info, sk, e)
			if k == "" || (key != "" && key != k) {
				return ""
			}
			key = k
		}
		return key
	}
	return ""
}

// clockSetOf computes the clock domains an expression's value may carry.
func (c *checker) clockSetOf(info *types.Info, e ast.Expr) labelSet {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := info.Uses[e]; obj != nil {
			return c.clocks[obj]
		}
		return nil
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			if fv, ok := sel.Obj().(*types.Var); ok {
				return c.fields[fv]
			}
			return nil
		}
		if v, ok := info.Uses[e.Sel].(*types.Var); ok {
			return c.clocks[v]
		}
		return nil
	case *ast.BinaryExpr:
		x := c.clockSetOf(info, e.X)
		y := c.clockSetOf(info, e.Y)
		// Subtracting two readings of the same clock yields an elapsed
		// interval, which belongs to no domain.
		if e.Op == token.SUB && len(x) > 0 && setsEqual(x, y) {
			return nil
		}
		return union(x, y)
	case *ast.UnaryExpr:
		return c.clockSetOf(info, e.X)
	case *ast.CallExpr:
		// X.Now(): the reading belongs to X's clock.
		if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Now" {
			if rt := info.TypeOf(sel.X); rt != nil && isEngine(rt) {
				if k := c.rootKeyOf(info, sel.X); k != "" {
					return labelSet{k: true}
				}
				return nil
			}
		}
		// Conversion (time.Duration(x)) keeps the operand's labels.
		if tv, ok := info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return c.clockSetOf(info, e.Args[0])
		}
		// Resolved call: union of callee return summaries, parameters
		// substituted with this site's arguments.
		var out labelSet
		for _, callee := range c.graph.CalleesAt(e) {
			for sk := range c.retClock[callee] {
				if k := c.expand(info, sk, e); k != "" {
					if out == nil {
						out = labelSet{}
					}
					out[k] = true
				}
			}
		}
		return out
	}
	return nil
}

// mixOps are the operators where two instants meet.
var mixOps = map[token.Token]bool{
	token.SUB: true, token.ADD: true,
	token.LSS: true, token.GTR: true, token.LEQ: true, token.GEQ: true,
	token.EQL: true, token.NEQ: true,
}

// reportNode flags clock mixes and cross-engine scheduling in one body.
func (c *checker) reportNode(n *callgraph.Node) {
	info := n.Unit.TypesInfo
	inspectBody(n, func(m ast.Node) {
		switch m := m.(type) {
		case *ast.BinaryExpr:
			if !mixOps[m.Op] {
				return
			}
			if t := info.TypeOf(m.X); t == nil || !isDuration(t) {
				return
			}
			x := c.clockSetOf(info, m.X)
			y := c.clockSetOf(info, m.Y)
			if len(x) == 0 || len(y) == 0 || !disjoint(x, y) {
				return
			}
			c.report(n, m.Pos(),
				"expression mixes clocks from different engines: %s vs %s; keep shard time on its shard or justify with %s <why>",
				render(x), render(y), analysis.ClockSafeComment)
		case *ast.CallExpr:
			sel, ok := ast.Unparen(m.Fun).(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "At" || len(m.Args) == 0 {
				return
			}
			rt := info.TypeOf(sel.X)
			if rt == nil || !isEngine(rt) {
				return
			}
			key := c.rootKeyOf(info, sel.X)
			if key == "" {
				return
			}
			s := c.clockSetOf(info, m.Args[0])
			if len(s) == 0 || s[key] {
				return
			}
			c.report(n, m.Pos(),
				"schedules a time from clock %s on engine %s; keep shard time on its shard or justify with %s <why>",
				render(s), key, analysis.ClockSafeComment)
		}
	})
}

// report applies the clocksafe escape hatch, then emits.
func (c *checker) report(n *callgraph.Node, pos token.Pos, format string, args ...any) {
	unit := c.pass.UnitFor(pos)
	just, marked := n.Unit.MarkedAt(c.pass.Fset, pos, analysis.ClockSafeComment)
	if marked {
		if just == "" {
			c.pass.Reportf(unit, pos, "%s requires a written justification", analysis.ClockSafeComment)
		}
		return
	}
	c.pass.Reportf(unit, pos, format, args...)
}

// inspectBody walks a node's body, staying out of nested func literals
// (they are their own graph nodes).
func inspectBody(n *callgraph.Node, visit func(ast.Node)) {
	ast.Inspect(n.Body, func(m ast.Node) bool {
		if m != nil && m != n.Body {
			if _, ok := m.(*ast.FuncLit); ok {
				return false
			}
		}
		if m != nil {
			visit(m)
		}
		return true
	})
}

// isDuration reports whether t is time.Duration.
func isDuration(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "time" && obj.Name() == "Duration"
}

// isEngine reports whether t is an engine surface: simnet.Sim, simnet.Engine
// or simnet.Cluster, possibly behind a pointer.
func isEngine(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == simnetPath && engineNames[obj.Name()]
}

func setsEqual(a, b labelSet) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func disjoint(a, b labelSet) bool {
	for k := range a {
		if b[k] {
			return false
		}
	}
	return true
}

func union(a, b labelSet) labelSet {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := labelSet{}
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

// render prints a label set deterministically.
func render(s labelSet) string {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ", ")
}

// typeString renders a type tersely (drop the module prefix for width).
func typeString(t types.Type) string {
	return strings.ReplaceAll(t.String(), "repro/internal/", "")
}

// shortPkg drops the module prefix from a package path.
func shortPkg(p string) string {
	return strings.TrimPrefix(strings.TrimPrefix(p, "repro/internal/"), "repro/")
}
