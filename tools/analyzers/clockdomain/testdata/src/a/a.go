// Fixture for the clockdomain analyzer: Sim.Now() readings must stay within
// the engine that produced them.
package a

import (
	"time"

	"repro/internal/simnet"
)

// engine mirrors the workload shape: a control-plane clock stored in a
// field, stamped from the coordinator.
type engine struct {
	sim  simnet.Engine
	base time.Duration
}

type flow struct {
	launchedAt time.Duration
	fct        time.Duration
	start      time.Duration
}

func (e *engine) launch(f *flow) {
	e.base = e.sim.Now()
	f.launchedAt = e.sim.Now()
}

// onDatagram is the PR 6 FCT bug: launchedAt was stamped from the
// coordinator clock, Now() is the receiving shard's clock.
func (e *engine) onDatagram(local *simnet.Sim, f *flow) {
	f.fct = local.Now() - f.launchedAt // want `mixes clocks from different engines`
}

// sameDomain subtracts two readings of one clock: fine.
func (e *engine) sameDomain(f *flow) {
	f.fct = e.sim.Now() - f.launchedAt
}

// sameAt schedules with a deadline built from the scheduling engine's own
// clock: fine.
func (e *engine) sameAt(f *flow) {
	e.sim.At(e.base+f.start, func() {})
}

// crossAt schedules a shard-local deadline on the coordinator.
func crossAt(eng simnet.Engine, local *simnet.Sim) {
	deadline := local.Now() + time.Millisecond
	eng.At(deadline, func() {}) // want `schedules a time from clock`
}

// intervalsOK: elapsed times are domainless and may cross shards freely.
func intervalsOK(sa, sb *simnet.Sim) bool {
	startA := sa.Now()
	startB := sb.Now()
	elapsedA := sa.Now() - startA
	elapsedB := sb.Now() - startB
	return elapsedA > elapsedB
}

// carrier + clock() + stamp() exercise interprocedural engine-identity and
// clock-return summaries.
type carrier struct {
	sim *simnet.Sim
}

func (c *carrier) clock() *simnet.Sim { return c.sim }

func stamp(c *carrier) time.Duration { return c.clock().Now() }

func wrapperMix(c *carrier, other *simnet.Sim) time.Duration {
	t0 := stamp(c)
	return other.Now() - t0 // want `mixes clocks from different engines`
}

func wrapperSame(c *carrier) time.Duration {
	t0 := stamp(c)
	return c.clock().Now() - t0
}

// paramFlow: a clock reading handed through a parameter keeps the caller's
// domain via call-site substitution.
func since(s *simnet.Sim, t0 time.Duration) time.Duration { return s.Now() - t0 }

func paramFlowOK(s *simnet.Sim) time.Duration {
	return since(s, s.Now())
}

// justified sites pass with a reason and fail without one.
func justified(eng simnet.Engine, local *simnet.Sim, f *flow) {
	//simlint:clocksafe fixture: runs at the quiesce barrier where all clocks agree
	f.fct = local.Now() - f.launchedAt
	//simlint:clocksafe
	f.fct = local.Now() - f.launchedAt // want `requires a written justification`
}
