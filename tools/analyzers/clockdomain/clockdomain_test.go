package clockdomain_test

import (
	"testing"

	"repro/tools/analyzers/analysistest"
	"repro/tools/analyzers/clockdomain"
)

func TestClockDomain(t *testing.T) {
	analysistest.RunModule(t, analysistest.TestData(), clockdomain.Analyzer, "a")
}
