// Package load turns Go packages into type-checked syntax trees for the
// analyzers, using only the standard library and the go command.
//
// The usual driver for this job, golang.org/x/tools/go/packages, is not
// available in the build environment (no module proxy), so the loader does
// the same two steps by hand:
//
//  1. `go list -deps -export -json` enumerates the target packages and
//     compiles their dependency closure, yielding a compiler export-data
//     file per dependency.
//  2. Each target package is parsed with go/parser and checked with
//     go/types, resolving imports through the export data from step 1 via
//     go/importer's gc lookup mode — no source type-checking of
//     dependencies, which keeps a full-repo lint run fast.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
)

// Package is one type-checked target package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Export     string
	Incomplete bool
	Error      *struct{ Err string }
}

// goList runs the go command and decodes its JSON package stream.
func goList(dir string, args ...string) ([]listPkg, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %v: %v\n%s", args, err, stderr.String())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportLookup resolves import paths to export-data readers for the gc
// importer.
type exportLookup map[string]string

func (m exportLookup) open(path string) (io.ReadCloser, error) {
	f, ok := m[path]
	if !ok {
		return nil, fmt.Errorf("no export data for %q", path)
	}
	return os.Open(f)
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
}

// Load lists patterns from moduleDir, compiles their dependency closure for
// export data, and returns the matched (non-dependency, non-standard)
// packages parsed and type-checked, sorted by import path.
func Load(moduleDir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-deps", "-export",
		"-json=ImportPath,Dir,Name,GoFiles,Standard,DepOnly,Export,Incomplete,Error"}, patterns...)
	pkgs, err := goList(moduleDir, args...)
	if err != nil {
		return nil, err
	}
	exports := exportLookup{}
	var targets []listPkg
	for _, p := range pkgs {
		if p.Error != nil {
			return nil, fmt.Errorf("go list: package %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", exports.open)
	out := make([]*Package, 0, len(targets))
	for _, t := range targets {
		pkg, err := check(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// LoadDir parses and type-checks the non-test Go files of a single
// directory that is not a listable package (analysistest fixtures live in
// testdata, which the go tool ignores). Imports are resolved by compiling
// them with `go list -export`, so fixtures may import anything the module
// can.
func LoadDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var goFiles []string
	for _, e := range entries {
		name := e.Name()
		if filepath.Ext(name) == ".go" && !e.IsDir() {
			goFiles = append(goFiles, name)
		}
	}
	if len(goFiles) == 0 {
		return nil, fmt.Errorf("load: no Go files in %s", dir)
	}
	sort.Strings(goFiles)

	// A first parse pass discovers the fixture's imports.
	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(goFiles))
	importSet := map[string]bool{}
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, spec := range f.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				return nil, err
			}
			if path != "unsafe" {
				importSet[path] = true
			}
		}
	}
	exports := exportLookup{}
	if len(importSet) > 0 {
		args := []string{"list", "-deps", "-export", "-json=ImportPath,Export,Incomplete,Error"}
		for path := range importSet { //simlint:deterministic command-line argument order does not affect the result
			args = append(args, path)
		}
		pkgs, err := goList(dir, args...)
		if err != nil {
			return nil, err
		}
		for _, p := range pkgs {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	imp := importer.ForCompiler(fset, "gc", exports.open)
	info := newInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(filepath.Base(dir), fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("load: type-checking %s: %v", dir, err)
	}
	return &Package{
		ImportPath: filepath.Base(dir),
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// check parses and type-checks one package from source.
func check(fset *token.FileSet, imp types.Importer, importPath, dir string, goFiles []string) (*Package, error) {
	files := make([]*ast.File, 0, len(goFiles))
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("load: type-checking %s: %v", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}
