package justify

// The unusedmarker module pass closes the suppression loop. A justification
// marker earns its keep by being consulted: some analyzer looks at the site,
// finds the marker, and either suppresses its finding or anchors a
// bare-marker diagnostic. When refactoring moves the finding away — the
// allocation is gone, the clock mixing was restructured — the marker stays
// behind, silently ready to swallow the next genuine regression at that
// line. This pass runs after every other analyzer and reports justification
// markers nothing consulted.
//
// Declarative markers (//simlint:hotpath, //simlint:pool) label sites rather
// than suppress findings and are never reported.
//
// Consultations are recorded by the analysis package's marker accessors
// (Pass.SuppressedAt, Pass.MarkedAt, PackageUnit.MarkedAt), so any analyzer
// using them participates automatically. The driver must therefore run this
// pass LAST.

import (
	"strings"

	"repro/tools/analyzers/analysis"
)

// UnusedApplies, when set by the driver, restricts which markers are expected
// to be consulted in which packages: a //simlint:deterministic comment in a
// package the determinism analyzers never check is out of every analyzer's
// sight, not stale. The driver derives this from its own scope table.
var UnusedApplies func(importPath, marker string) bool

// UnusedMarkers is the stale-suppression audit.
var UnusedMarkers = &analysis.ModuleAnalyzer{
	Name: "unusedmarker",
	Doc:  "reports justification markers no analyzer consulted (stale suppressions)",
	Run:  runUnused,
}

func runUnused(pass *analysis.ModulePass) (any, error) {
	for _, u := range pass.Units {
		for _, f := range u.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					marker, ok := markerOf(c.Text)
					if !ok {
						continue
					}
					if UnusedApplies != nil && !UnusedApplies(u.ImportPath, marker) {
						continue
					}
					if analysis.MarkerUsedAt(pass.Fset, c.Pos(), marker) {
						continue
					}
					pass.Reportf(u, c.Pos(),
						"stale %s marker: no analyzer consulted it, so the finding it justified is gone — delete the marker",
						marker)
				}
			}
		}
	}
	return nil, nil
}

// markerOf matches a comment against the registered justification markers;
// declarative markers never count.
func markerOf(text string) (string, bool) {
	if !strings.HasPrefix(text, prefix) {
		return "", false
	}
	word := text
	if i := strings.IndexAny(text, " \t"); i >= 0 {
		word = text[:i]
	}
	for _, m := range analysis.Markers {
		if word == m.Comment {
			return word, !m.Declarative
		}
	}
	return "", false
}
