// Fixture for the unusedmarker pass: one suppression a real analyzer
// consults (walltime runs over this package first in the test), one left
// behind by a refactor with nothing to suppress.
package stale

import "time"

// live has a genuine walltime finding under a justified suppression: the
// consultation is recorded, so unusedmarker stays quiet.
func live() time.Time {
	//simlint:deterministic fixture: the wall-clock read is the point
	return time.Now()
}

// gone carries a suppression whose finding was refactored away.
func gone() int {
	//simlint:deterministic fixture: nothing here reads the clock anymore // want `stale //simlint:deterministic marker: no analyzer consulted it`
	return 1
}
