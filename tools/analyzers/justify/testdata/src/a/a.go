// Fixture for the justify analyzer: every suppression must say why, and
// directives must match a registered marker.
package a

//simlint:hotpath
func hot() {}

func reasoned() {
	//simlint:deterministic iteration order feeds the sort below
	m := map[int]int{}
	//simlint:alloc scratch buffer reused across frames
	_ = make([]byte, 0, len(m))
}

func bare() {
	//simlint:shared // want `requires a written justification`
	_ = 0
	//simlint:clocksafe // want `requires a written justification`
	_ = 1
	//simlint:shardsafe // want `requires a written justification`
	_ = 2
}

func typo() {
	//simlint:sharde grew by one letter // want `unknown simlint directive //simlint:sharde`
	_ = 3
}
