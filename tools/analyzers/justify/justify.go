// Package justify audits the suite's own escape hatches. Every
// `//simlint:*` justification marker silences some analyzer, and the whole
// point of the directive convention is that the silencing carries its reason
// in the source — a bare marker is an unexplained suppression that outlives
// whoever added it. This analyzer rejects:
//
//   - justification markers with no reason text (`//simlint:shared` alone;
//     a nested comment like `//simlint:shared // later` does not count);
//   - directives that match no registered marker (`//simlint:sharde`), which
//     would otherwise silence nothing and rot silently.
//
// Declarative markers (currently //simlint:hotpath) label a site for another
// analyzer rather than suppressing a finding, and need no reason.
//
// The per-site analyzers also reject bare markers they find attached to a
// real finding; this check additionally catches stale annotations whose
// finding has since moved or disappeared.
package justify

import (
	"go/ast"
	"strings"

	"repro/tools/analyzers/analysis"
)

// Analyzer is the escape-hatch audit.
var Analyzer = &analysis.Analyzer{
	Name: "justify",
	Doc:  "rejects bare simlint justification markers and unknown directives",
	Run:  run,
}

// prefix is the directive namespace shared by every marker.
const prefix = "//simlint:"

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				checkComment(pass, c)
			}
		}
	}
	return nil, nil
}

func checkComment(pass *analysis.Pass, c *ast.Comment) {
	text := c.Text
	if !strings.HasPrefix(text, prefix) {
		return
	}
	word := text
	if i := strings.IndexAny(text, " \t"); i >= 0 {
		word = text[:i]
	}
	for _, m := range analysis.Markers {
		if word != m.Comment {
			continue
		}
		if m.Declarative {
			return
		}
		reason := strings.TrimSpace(text[len(word):])
		if reason == "" || strings.HasPrefix(reason, "//") {
			pass.Reportf(c.Pos(), "%s requires a written justification; say why the site is safe", word)
		}
		return
	}
	pass.Reportf(c.Pos(), "unknown simlint directive %s (known: %s)", word, knownList())
}

// knownList renders the registered markers for the unknown-directive message.
func knownList() string {
	names := make([]string, len(analysis.Markers))
	for i, m := range analysis.Markers {
		names[i] = strings.TrimPrefix(m.Comment, prefix)
	}
	return strings.Join(names, ", ")
}
