package justify_test

import (
	"path/filepath"
	"testing"

	"repro/tools/analyzers/analysis"
	"repro/tools/analyzers/analysistest"
	"repro/tools/analyzers/justify"
	"repro/tools/analyzers/load"
	"repro/tools/analyzers/walltime"
)

// TestUnusedMarkers drives the full consultation loop: walltime runs first
// and consults the live suppression in the fixture (recording the use via
// the marker accessors), then the unusedmarker pass reports only the marker
// nothing consulted. The registry keys by file:line, so the two loads of the
// fixture (separate FileSets) still agree.
func TestUnusedMarkers(t *testing.T) {
	analysis.ResetMarkerUsage()

	pkg, err := load.LoadDir(filepath.Join(analysistest.TestData(), "src", "stale"))
	if err != nil {
		t.Fatal(err)
	}
	pass := &analysis.Pass{
		Analyzer:  walltime.Analyzer,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Report:    func(analysis.Diagnostic) {}, // suppressed sites report nothing anyway
	}
	if _, err := walltime.Analyzer.Run(pass); err != nil {
		t.Fatalf("walltime: %v", err)
	}

	analysistest.RunModule(t, analysistest.TestData(), justify.UnusedMarkers, "stale")
}
