package justify_test

import (
	"testing"

	"repro/tools/analyzers/analysistest"
	"repro/tools/analyzers/justify"
)

func TestJustify(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), justify.Analyzer, "a")
}
