// Fixture for the maporder analyzer: known-bad map ranges, the sorted-sink
// idiom, the suppression comment, and non-map ranges that must not fire.
package a

import (
	"sort"
)

// bad iterates a map directly: flagged.
func bad(m map[string]int) int {
	total := 0
	for _, v := range m { // want `range over map m has nondeterministic iteration order`
		total += v
	}
	return total
}

// badKeyOnly is flagged even without loop variables.
func badKeyOnly(m map[string]int) int {
	n := 0
	for range m { // want `range over map m`
		n++
	}
	return n
}

// collectNoSort accumulates but never sorts: still flagged.
func collectNoSort(m map[string]int) []string {
	var keys []string
	for k := range m { // want `range over map m`
		keys = append(keys, k)
	}
	return keys
}

// sortedSink is the collect-then-sort idiom: accepted.
func sortedSink(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sortedSinkGuarded accumulates under an if guard and sorts later in the
// block, with unrelated statements in between: accepted.
func sortedSinkGuarded(m map[string]int) []string {
	var keys []string
	for k, v := range m {
		if v > 0 {
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		return nil
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// justified carries the suppression comment: accepted.
func justified(m map[string]int) int {
	n := 0
	//simlint:deterministic counting map entries is order-independent
	for range m {
		n++
	}
	return n
}

// justifiedTrailing carries a same-line suppression comment: accepted.
func justifiedTrailing(m map[string]int) int {
	n := 0
	for range m { //simlint:deterministic counting map entries is order-independent
		n++
	}
	return n
}

// sliceRange must not fire: slices iterate in index order.
func sliceRange(s []int) int {
	total := 0
	for _, v := range s {
		total += v
	}
	return total
}

// namedMap ensures named map types are still caught.
type table map[int]string

func namedMap(t table) {
	for range t { // want `range over map t`
	}
}
