// Package maporder rejects `for … range` statements over map types in
// simulation code: Go randomizes map iteration order per run, so any map
// iteration on a path that schedules events, sends frames, or emits output
// silently breaks the repo's bit-identical determinism contract.
//
// Two escapes are recognized:
//
//   - The sorted-sink idiom: a loop whose body only accumulates keys or
//     values into slices with append, where a later statement in the same
//     block sorts one of those slices. This is the standard
//     collect-then-sort pattern and is deterministic by construction.
//   - An explicit `//simlint:deterministic <why>` comment on the range
//     statement (same line or the line above), for loops whose result is
//     genuinely independent of iteration order (e.g. accumulating into a
//     set or counter).
package maporder

import (
	"go/ast"
	"go/types"

	"repro/tools/analyzers/analysis"
)

// Analyzer is the maporder determinism check.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc:  "flags range statements over maps whose iteration order can leak into simulation results",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		checkStmtLists(pass, f)
	}
	return nil, nil
}

// checkStmtLists visits every statement list in the file so that a range
// statement can be inspected together with the statements that follow it
// (the sorted-sink idiom needs the trailing sort call).
func checkStmtLists(pass *analysis.Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		var list []ast.Stmt
		switch n := n.(type) {
		case *ast.BlockStmt:
			list = n.List
		case *ast.CaseClause:
			list = n.Body
		case *ast.CommClause:
			list = n.Body
		default:
			return true
		}
		for i, stmt := range list {
			rs, ok := unwrapLabels(stmt).(*ast.RangeStmt)
			if !ok {
				continue
			}
			checkRange(pass, rs, list[i+1:])
		}
		return true
	})
}

func unwrapLabels(s ast.Stmt) ast.Stmt {
	for {
		ls, ok := s.(*ast.LabeledStmt)
		if !ok {
			return s
		}
		s = ls.Stmt
	}
}

func checkRange(pass *analysis.Pass, rs *ast.RangeStmt, rest []ast.Stmt) {
	tv, ok := pass.TypesInfo.Types[rs.X]
	if !ok || tv.Type == nil {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if pass.SuppressedAt(rs.Pos()) {
		return
	}
	if sortedSink(rs.Body, rest) {
		return
	}
	pass.Reportf(rs.Pos(),
		"range over map %s has nondeterministic iteration order; iterate a sorted copy of the keys or justify the site with a %s comment",
		types.ExprString(rs.X), analysis.SuppressionComment)
}

// sortedSink reports whether the loop body only accumulates into slices via
// append (possibly under if guards) and a following statement in the same
// block sorts one of the accumulated slices.
func sortedSink(body *ast.BlockStmt, rest []ast.Stmt) bool {
	targets := map[string]bool{}
	if !collectAppendTargets(body.List, targets) || len(targets) == 0 {
		return false
	}
	for _, stmt := range rest {
		if sortsOneOf(stmt, targets) {
			return true
		}
	}
	return false
}

// collectAppendTargets records the rendered LHS of every `x = append(x, …)`
// in list, reporting false if the body contains anything else.
func collectAppendTargets(list []ast.Stmt, targets map[string]bool) bool {
	for _, stmt := range list {
		switch s := unwrapLabels(stmt).(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
				return false
			}
			call, ok := s.Rhs[0].(*ast.CallExpr)
			if !ok {
				return false
			}
			fn, ok := call.Fun.(*ast.Ident)
			if !ok || fn.Name != "append" {
				return false
			}
			targets[types.ExprString(s.Lhs[0])] = true
		case *ast.IfStmt:
			if s.Else != nil {
				return false
			}
			if !collectAppendTargets(s.Body.List, targets) {
				return false
			}
		case *ast.EmptyStmt:
		default:
			return false
		}
	}
	return true
}

// sortsOneOf reports whether stmt (or a statement nested in it) is a
// sort.Xxx or slices.SortXxx call whose first argument renders to one of
// the accumulation targets.
func sortsOneOf(stmt ast.Stmt, targets map[string]bool) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		isSort := pkg.Name == "sort" || (pkg.Name == "slices" && len(sel.Sel.Name) >= 4 && sel.Sel.Name[:4] == "Sort")
		if !isSort {
			return true
		}
		if targets[types.ExprString(call.Args[0])] {
			found = true
		}
		return true
	})
	return found
}
