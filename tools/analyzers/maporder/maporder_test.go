package maporder_test

import (
	"testing"

	"repro/tools/analyzers/analysistest"
	"repro/tools/analyzers/maporder"
)

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), maporder.Analyzer, "a")
}
