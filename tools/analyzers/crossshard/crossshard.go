// Package crossshard enforces the partitioned engine's ownership contract
// (DESIGN.md §13): anything that crosses a partition boundary must be owned
// by value. The checked boundary is the control-event surface — closures
// handed to At/After/Schedule on a simnet.Engine or *simnet.Cluster run on
// the coordinator, not on the shard that created them, so every reference
// they carry into shard-local mutable state is a data race the moment the
// global quiesce barrier is replaced by barrier-free conservative sync
// (the ROADMAP's next step).
//
// A capture is rejected when it is:
//
//   - shard-resident by type: *simnet.Sim, *simnet.Node, *simnet.Port,
//     *simnet.Link, *simnet.Timer, or any type that transitively reaches one
//     of them through fields, elements, or embedded types (a chaos target
//     holding a *Port, a workload flow holding its retransmit *Timer);
//   - shard-resident by flow: a plain slice, map, or pointer whose value the
//     interprocedural alias analysis (tools/analyzers/dataflow) traced back
//     to shard-resident memory — a router table borrowed from a node, a
//     telemetry cell slice returned by a helper.
//
// The coordinator's own surface stays usable: simnet.Engine and
// *simnet.Cluster captures are exempt, as are owned copies (scalars,
// strings, freshly allocated buffers). Method values passed as callbacks
// (eng.After(d, s.sample)) are checked through their receiver.
//
// The escape hatch is `//simlint:shardsafe <why>` on the scheduling call (or
// the line above). Today the usual why is "runs at the quiesce barrier with
// every shard idle"; each annotation marks a site the barrier-free engine
// must revisit.
package crossshard

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"repro/tools/analyzers/analysis"
	"repro/tools/analyzers/callgraph"
	"repro/tools/analyzers/dataflow"
)

// Analyzer is the cross-shard ownership check.
var Analyzer = &analysis.ModuleAnalyzer{
	Name: "crossshard",
	Doc:  "flags control-event closures capturing shard-local mutable state",
	Run:  run,
}

// simnetPath is the package owning the shard-resident anchor types.
const simnetPath = "repro/internal/simnet"

// anchorNames are the simnet types that live on exactly one shard.
var anchorNames = map[string]bool{
	"Sim":   true,
	"Node":  true,
	"Port":  true,
	"Link":  true,
	"Timer": true,
}

// coordNames are the simnet types forming the coordinator surface; values
// of these types are the cross-shard API itself, not shard state.
var coordNames = map[string]bool{
	"Engine":  true,
	"Cluster": true,
}

// schedNames are the Engine methods whose closure argument crosses to the
// coordinator.
var schedNames = map[string]bool{
	"At":       true,
	"After":    true,
	"Schedule": true,
}

func run(pass *analysis.ModulePass) (any, error) {
	graph := callgraph.Build(pass.Units)
	st := newShardTyper()
	aliasing := dataflow.NewAliasing(graph, st.resident)

	for _, u := range pass.Units {
		for _, f := range u.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					checkCall(pass, u, call, st, aliasing)
				}
				return true
			})
		}
	}
	return nil, nil
}

// checkCall inspects one potential control-scheduling call.
func checkCall(pass *analysis.ModulePass, u *analysis.PackageUnit, call *ast.CallExpr, st *shardTyper, aliasing *dataflow.Aliasing) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !schedNames[sel.Sel.Name] {
		return
	}
	recv := u.TypesInfo.TypeOf(sel.X)
	if recv == nil || !isCoordinator(recv) {
		return
	}

	var offending []string
	for _, arg := range call.Args {
		switch fn := ast.Unparen(arg).(type) {
		case *ast.FuncLit:
			offending = append(offending, capturedShardState(u, fn, st, aliasing)...)
		case *ast.SelectorExpr:
			// Method value callback: eng.After(d, s.sample) captures s.
			if msel, isSel := u.TypesInfo.Selections[fn]; isSel && msel.Kind() == types.MethodVal {
				rt := u.TypesInfo.TypeOf(fn.X)
				if st.resident(rt) {
					offending = append(offending, exprString(fn.X)+" (method receiver, "+typeString(rt)+")")
				} else if aliasing.ExprAliases(u.TypesInfo, fn.X) {
					offending = append(offending, exprString(fn.X)+" (method receiver aliasing shard state)")
				}
			}
		}
	}
	if len(offending) == 0 {
		return
	}
	sort.Strings(offending)
	offending = dedup(offending)

	unit := pass.UnitFor(call.Pos())
	just, marked := u.MarkedAt(pass.Fset, call.Pos(), analysis.ShardSafeComment)
	if marked {
		if just == "" {
			pass.Reportf(unit, call.Pos(), "%s requires a written justification", analysis.ShardSafeComment)
		}
		return
	}
	pass.Reportf(unit, call.Pos(),
		"control event on the coordinator captures shard-local mutable state (%s); pass an owned copy or justify with %s <why>",
		strings.Join(offending, ", "), analysis.ShardSafeComment)
}

// capturedShardState lists the closure's captured variables that carry
// references into shard-resident memory: anchored by type, or aliasing
// anchored memory per the dataflow analysis.
func capturedShardState(u *analysis.PackageUnit, lit *ast.FuncLit, st *shardTyper, aliasing *dataflow.Aliasing) []string {
	var out []string
	seen := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := u.TypesInfo.Uses[id]
		v, isVar := obj.(*types.Var)
		if !isVar || v.IsField() || seen[obj] {
			return true
		}
		// Captured means: declared outside the literal but not at package
		// scope (package-level state is the sharedstate analyzer's beat).
		if v.Parent() == nil || v.Parent() == types.Universe {
			return true
		}
		if v.Pkg() == nil || v.Parent() == v.Pkg().Scope() {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true // declared inside the closure
		}
		seen[obj] = true
		switch {
		case st.resident(v.Type()):
			out = append(out, v.Name()+" "+typeString(v.Type()))
		case dataflow.Pointerish(v.Type()) && aliasing.VarAliases(obj):
			out = append(out, v.Name()+" "+typeString(v.Type())+" aliasing shard state")
		}
		return true
	})
	return out
}

// shardTyper classifies types as shard-resident, memoized because the
// structural walk revisits the same named types constantly.
type shardTyper struct {
	memo map[types.Type]bool
}

func newShardTyper() *shardTyper { return &shardTyper{memo: map[types.Type]bool{}} }

// resident reports whether a value of type t carries references into
// shard-local mutable state.
func (s *shardTyper) resident(t types.Type) bool {
	return s.walk(t, map[types.Type]bool{})
}

func (s *shardTyper) walk(t types.Type, visiting map[types.Type]bool) bool {
	if t == nil || visiting[t] {
		return false
	}
	if v, done := s.memo[t]; done {
		return v
	}
	visiting[t] = true
	v := s.classify(t, visiting)
	delete(visiting, t)
	// Memoize only complete (non-cyclic) answers: a false computed while a
	// parent is mid-walk could be an artifact of the cycle guard.
	if len(visiting) == 0 || v {
		s.memo[t] = v
	}
	return v
}

func (s *shardTyper) classify(t types.Type, visiting map[types.Type]bool) bool {
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if pkg := obj.Pkg(); pkg != nil && pkg.Path() == simnetPath {
			if anchorNames[obj.Name()] {
				return true
			}
			if coordNames[obj.Name()] {
				return false
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer:
		return s.walk(u.Elem(), visiting)
	case *types.Slice:
		return s.walk(u.Elem(), visiting)
	case *types.Array:
		return s.walk(u.Elem(), visiting)
	case *types.Chan:
		return s.walk(u.Elem(), visiting)
	case *types.Map:
		return s.walk(u.Key(), visiting) || s.walk(u.Elem(), visiting)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if s.walk(u.Field(i).Type(), visiting) {
				return true
			}
		}
		return false
	default:
		// Basics, funcs, interfaces (opaque — the anchor check above
		// already handled the named coordinator surface).
		return false
	}
}

// isCoordinator reports whether t is the control-event surface.
func isCoordinator(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == simnetPath && coordNames[obj.Name()]
}

// exprString renders a short receiver expression for diagnostics.
func exprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	default:
		return "receiver"
	}
}

// typeString renders a type tersely (drop the module prefix for width).
func typeString(t types.Type) string {
	return strings.ReplaceAll(t.String(), "repro/internal/", "")
}

// dedup removes adjacent duplicates from a sorted slice.
func dedup(in []string) []string {
	out := in[:0]
	for i, s := range in {
		if i == 0 || s != in[i-1] {
			out = append(out, s)
		}
	}
	return out
}
