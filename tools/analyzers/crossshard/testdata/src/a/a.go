// Fixture for the crossshard analyzer: control events scheduled on the
// coordinator surface (simnet.Engine / *simnet.Cluster) must not capture
// shard-local mutable state.
package a

import (
	"time"

	"repro/internal/simnet"
)

// target mirrors a chaos-style carrier: a struct is shard-resident as soon
// as one field reaches an anchor type.
type target struct {
	name string
	port *simnet.Port
}

// router mirrors a protocol table owner: resident by its node reference.
type router struct {
	node *simnet.Node
	tbl  []uint32
}

// table borrows the router's live table — an alias into shard state even
// though the return type is a plain slice.
func (r *router) table() []uint32 { return r.tbl }

// tableCopy returns an owned snapshot.
func (r *router) tableCopy() []uint32 {
	return append([]uint32(nil), r.tbl...)
}

// sampler mirrors the telemetry shape: a method value used as a callback.
type sampler struct {
	link *simnet.Link
}

func (s *sampler) sample() {}

func directCapture(eng simnet.Engine, port *simnet.Port) {
	eng.Schedule(time.Second, func() { // want `captures shard-local mutable state \(port \*simnet\.Port\)`
		port.Fail()
	})
}

func carrierCapture(eng simnet.Engine, t target) {
	eng.After(time.Second, func() { // want `captures shard-local mutable state \(t a\.target\)`
		t.port.Restore()
	})
}

func aliasedSliceCapture(eng simnet.Engine, r *router) {
	tbl := r.table()
	eng.Schedule(time.Second, func() { // want `tbl \[\]uint32 aliasing shard state`
		_ = tbl[0]
	})
}

func clusterCapture(c *simnet.Cluster, link *simnet.Link) {
	c.At(time.Second, func() { // want `captures shard-local mutable state \(link \*simnet\.Link\)`
		_ = link.Lost()
	})
}

func methodValueCapture(eng simnet.Engine, s *sampler) {
	eng.After(time.Second, s.sample) // want `method receiver`
}

// ownedCopies cross the boundary by value: no findings.
func ownedCapture(eng simnet.Engine, r *router, port *simnet.Port) {
	snapshot := r.tableCopy()
	up := port.Up()
	name := port.Name()
	eng.Schedule(time.Second, func() {
		_ = snapshot[0]
		_ = up
		_ = name
	})
}

// The engine itself is the coordinator surface, not shard state.
func engineCapture(eng simnet.Engine) {
	eng.Schedule(time.Second, func() {
		eng.Schedule(time.Second, func() {})
	})
}

// Shard-local scheduling on a *Sim is the normal protocol timer path; only
// the coordinator surface is a boundary.
func shardLocal(sim *simnet.Sim, port *simnet.Port) {
	sim.Schedule(time.Second, func() {
		port.Fail()
	})
}

// Justified sites pass with a reason and fail without one.
func justified(eng simnet.Engine, port *simnet.Port) {
	//simlint:shardsafe fixture: runs at the quiesce barrier with every shard idle
	eng.Schedule(time.Second, func() {
		port.Fail()
	})
	//simlint:shardsafe
	eng.Schedule(time.Second, func() { // want `requires a written justification`
		port.Restore()
	})
}

// Transitive capture through a nested closure still reaches the coordinator.
func nestedCapture(eng simnet.Engine, port *simnet.Port) {
	eng.Schedule(time.Second, func() { // want `captures shard-local mutable state \(port \*simnet\.Port\)`
		inner := func() { port.Fail() }
		inner()
	})
}
