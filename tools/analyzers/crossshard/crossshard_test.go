package crossshard

import (
	"testing"

	"repro/tools/analyzers/analysistest"
)

// TestCrossShard runs the golden fixture: every seeded cross-shard capture
// (direct anchor, carrier struct, aliased slice through a helper, method
// value, nested closure, bare justification) must be reported, and owned
// copies, engine captures, shard-local timers, and justified sites must not.
func TestCrossShard(t *testing.T) {
	analysistest.RunModule(t, analysistest.TestData(), Analyzer, "a")
}
