// Package sharedstate enforces the parallel trial harness's purity contract
// (DESIGN.md §9): code that runs inside harness.runTrials workers must not
// reach package-level mutable state, so concurrent trials are data-race-free
// by construction rather than by -race luck. Because any internal package
// can be pulled into a trial, the rule is structural: a package-level var is
// rejected unless it is provably inert. Allowed are:
//
//   - error-typed vars (the sentinel-error idiom; errors are written once at
//     package init and only compared afterwards);
//   - unexported vars of deeply immutable type (basics, strings, arrays and
//     structs thereof) that the package never writes or takes the address
//     of.
//
// Everything else is flagged: exported vars (writable from any package),
// vars the package itself writes, and vars whose type carries mutable
// indirection — maps, slices, pointers, channels, interfaces, or anything
// from package sync (a sync.Once cache is still cross-trial state). The
// escape hatch is `//simlint:shared <why>` on the declaration (or the line
// above); the justification text is mandatory.
package sharedstate

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/tools/analyzers/analysis"
)

// Analyzer is the trial-purity check.
var Analyzer = &analysis.Analyzer{
	Name: "sharedstate",
	Doc:  "flags package-level mutable state reachable from parallel trial workers",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	// Collect the package-level vars.
	type pkgVar struct {
		obj  *types.Var
		name *ast.Ident
	}
	var vars []pkgVar
	byObj := map[types.Object]bool{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if name.Name == "_" {
						continue
					}
					obj, ok := pass.TypesInfo.Defs[name].(*types.Var)
					if !ok {
						continue
					}
					vars = append(vars, pkgVar{obj: obj, name: name})
					byObj[obj] = true
				}
			}
		}
	}
	if len(vars) == 0 {
		return nil, nil
	}

	// Find in-package writes and address-taking of those vars.
	written := map[types.Object]bool{}
	use := func(e ast.Expr) types.Object {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		return pass.TypesInfo.Uses[id]
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if obj := use(lhs); obj != nil && byObj[obj] {
						written[obj] = true
					}
				}
			case *ast.IncDecStmt:
				if obj := use(n.X); obj != nil && byObj[obj] {
					written[obj] = true
				}
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					if obj := use(n.X); obj != nil && byObj[obj] {
						written[obj] = true
					}
				}
			}
			return true
		})
	}

	errType := types.Universe.Lookup("error").Type()
	for _, v := range vars {
		if types.Identical(v.obj.Type(), errType) {
			continue // sentinel error
		}
		reason := ""
		switch {
		case v.name.IsExported():
			reason = "is exported, so any package can write it"
		case written[v.obj]:
			reason = "is written by this package"
		case mutableType(v.obj.Type(), nil):
			reason = "has a type with mutable indirection (" + v.obj.Type().String() + ")"
		}
		if reason == "" {
			continue
		}
		just, marked := pass.MarkedAt(v.name.Pos(), analysis.SharedComment)
		if marked {
			if just == "" {
				pass.Reportf(v.name.Pos(), "%s requires a written justification", analysis.SharedComment)
			}
			continue
		}
		pass.Reportf(v.name.Pos(),
			"package-level var %s %s; trial workers share it — move it into per-trial state or justify with %s <why>",
			v.name.Name, reason, analysis.SharedComment)
	}
	return nil, nil
}

// mutableType reports whether t carries mutable indirection: maps, slices,
// pointers, channels, interfaces, or any type from package sync. Basics,
// strings, funcs (calling one cannot mutate the var; reassignment is the
// write check's job), and arrays/structs of immutable types are inert.
func mutableType(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	if seen == nil {
		seen = map[types.Type]bool{}
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		if pkg := named.Obj().Pkg(); pkg != nil && pkg.Path() == "sync" {
			return true
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return false
	case *types.Array:
		return mutableType(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if mutableType(u.Field(i).Type(), seen) {
				return true
			}
		}
		return false
	case *types.Signature:
		return false
	default:
		// Map, slice, pointer, chan, interface.
		return true
	}
}
