// Fixture for the sharedstate analyzer: package-level mutable state is
// flagged; sentinel errors, inert unexported constants-in-spirit, and
// justified declarations are not.
package a

import (
	"errors"
	"sync"
)

// Sentinel errors are the one blessed package-level var idiom.
var ErrBad = errors.New("a: bad")

var counter int // want `package-level var counter is written by this package`

var addrTaken uint16 // want `package-level var addrTaken is written by this package`

var Exported = 3 // want `package-level var Exported is exported`

var table = map[string]int{} // want `package-level var table has a type with mutable indirection`

var once sync.Once // want `package-level var once has a type with mutable indirection`

var scratch []byte // want `package-level var scratch has a type with mutable indirection`

// Inert: unexported, never written, no indirection.
var limit = 64

var greeting = "hello"

var magic [4]uint16

//simlint:shared parallelism knob, set before any trial starts and never after
var TunedWorkers = 8

//simlint:shared
var bare = map[int]int{} // want `simlint:shared requires a written justification`

func bump() int {
	counter++
	p := &addrTaken
	*p = 7
	once.Do(func() {})
	return counter + len(table) + len(scratch) + limit + len(greeting) + int(magic[0]) + Exported + TunedWorkers
}

func ok() error { return ErrBad }

// --- space-parallel engine shapes (DESIGN.md §11) ---------------------------
//
// The partitioned engine's cross-shard outboxes are instance state: fields
// of an engine object, handed between goroutines at window barriers. The
// analyzer is structural about package-level vars only, so this idiom needs
// no suppression — which is exactly the point: shard state must live on the
// engine, never at package level.

type frameRef struct{ at int64 }

type outbox struct{ buf []frameRef }

type shard struct {
	inbox outbox
	heap  []frameRef
}

func (s *shard) push(f frameRef) { s.inbox.buf = append(s.inbox.buf, f) }

func (s *shard) pop() frameRef {
	f := s.heap[0]
	s.heap = s.heap[1:]
	return f
}

// A package-level event heap, by contrast, would be written by every shard
// worker that schedules into it: flagged.
var globalHeap []frameRef // want `package-level var globalHeap is written by this package`

func drainGlobal() frameRef {
	f := globalHeap[0]
	globalHeap = globalHeap[1:]
	return f
}

// --- observability-plane shapes (DESIGN.md §12) -----------------------------
//
// The path-tracing fleet follows the same rule: per-hop rolling statistics
// and the prober registry are fields of a tracer object owned by one
// campaign. Probers tick on shard-local queues, so any package-level rollup
// would be written from every shard at once.

type hopStat struct {
	sent, lost uint64
	lossEWMA   float64
}

type prober struct {
	id    int
	hops  []hopStat
	flows uint16
}

type tracer struct {
	probers []prober
	pending map[uint16]int
}

func (tr *tracer) add(p prober) int {
	p.id = len(tr.probers)
	tr.probers = append(tr.probers, p)
	return p.id
}

func (p *prober) record(ttl int, ok bool) {
	h := &p.hops[ttl-1]
	h.sent++
	if !ok {
		h.lost++
		h.lossEWMA += (1 - h.lossEWMA) * 0.25
	}
}

// Package-level prober bookkeeping is exactly the bug the rule exists for:
// a global ID well and a global reply-matching table would be racy under
// the partitioned engine and leak state between trials.
var nextProberID int // want `package-level var nextProberID is written by this package`

var replyTable = map[uint16]int{} // want `package-level var replyTable has a type with mutable indirection`

func register(tr *tracer, p prober) {
	nextProberID++
	replyTable[p.flows] = tr.add(p)
}

// --- fluid-engine shapes (DESIGN.md §15) ------------------------------------
//
// The flow-level solver's rate table and path-group index are instance
// state: fields of a solver owned by one trial. Rates are recomputed every
// epoch, so a package-level table would bleed allocations between trials
// and race under the partitioned engine.

type pathGroup struct {
	rate    float64
	service float64
	members []frameRef
}

type solver struct {
	groups []pathGroup
	index  map[string]int32
}

func (sv *solver) reallocate(capBps float64) {
	share := capBps / float64(len(sv.groups))
	for i := range sv.groups {
		sv.groups[i].rate = share
	}
}

// A package-level rate table or flow set is the anti-pattern: every shard's
// admission path would write it, and a second trial would inherit the first
// trial's allocations.
var rateTable = map[string]float64{} // want `package-level var rateTable has a type with mutable indirection`

var activeFlows []uint32 // want `package-level var activeFlows is written by this package`

func admitGlobal(key string, id uint32, bps float64) {
	rateTable[key] = bps
	activeFlows = append(activeFlows, id)
}
