// Fixture for the sharedstate analyzer: package-level mutable state is
// flagged; sentinel errors, inert unexported constants-in-spirit, and
// justified declarations are not.
package a

import (
	"errors"
	"sync"
)

// Sentinel errors are the one blessed package-level var idiom.
var ErrBad = errors.New("a: bad")

var counter int // want `package-level var counter is written by this package`

var addrTaken uint16 // want `package-level var addrTaken is written by this package`

var Exported = 3 // want `package-level var Exported is exported`

var table = map[string]int{} // want `package-level var table has a type with mutable indirection`

var once sync.Once // want `package-level var once has a type with mutable indirection`

var scratch []byte // want `package-level var scratch has a type with mutable indirection`

// Inert: unexported, never written, no indirection.
var limit = 64

var greeting = "hello"

var magic [4]uint16

//simlint:shared parallelism knob, set before any trial starts and never after
var TunedWorkers = 8

//simlint:shared
var bare = map[int]int{} // want `simlint:shared requires a written justification`

func bump() int {
	counter++
	p := &addrTaken
	*p = 7
	once.Do(func() {})
	return counter + len(table) + len(scratch) + limit + len(greeting) + int(magic[0]) + Exported + TunedWorkers
}

func ok() error { return ErrBad }
