// Fixture for the sharedstate analyzer: package-level mutable state is
// flagged; sentinel errors, inert unexported constants-in-spirit, and
// justified declarations are not.
package a

import (
	"errors"
	"sync"
)

// Sentinel errors are the one blessed package-level var idiom.
var ErrBad = errors.New("a: bad")

var counter int // want `package-level var counter is written by this package`

var addrTaken uint16 // want `package-level var addrTaken is written by this package`

var Exported = 3 // want `package-level var Exported is exported`

var table = map[string]int{} // want `package-level var table has a type with mutable indirection`

var once sync.Once // want `package-level var once has a type with mutable indirection`

var scratch []byte // want `package-level var scratch has a type with mutable indirection`

// Inert: unexported, never written, no indirection.
var limit = 64

var greeting = "hello"

var magic [4]uint16

//simlint:shared parallelism knob, set before any trial starts and never after
var TunedWorkers = 8

//simlint:shared
var bare = map[int]int{} // want `simlint:shared requires a written justification`

func bump() int {
	counter++
	p := &addrTaken
	*p = 7
	once.Do(func() {})
	return counter + len(table) + len(scratch) + limit + len(greeting) + int(magic[0]) + Exported + TunedWorkers
}

func ok() error { return ErrBad }

// --- space-parallel engine shapes (DESIGN.md §11) ---------------------------
//
// The partitioned engine's cross-shard outboxes are instance state: fields
// of an engine object, handed between goroutines at window barriers. The
// analyzer is structural about package-level vars only, so this idiom needs
// no suppression — which is exactly the point: shard state must live on the
// engine, never at package level.

type frameRef struct{ at int64 }

type outbox struct{ buf []frameRef }

type shard struct {
	inbox outbox
	heap  []frameRef
}

func (s *shard) push(f frameRef) { s.inbox.buf = append(s.inbox.buf, f) }

func (s *shard) pop() frameRef {
	f := s.heap[0]
	s.heap = s.heap[1:]
	return f
}

// A package-level event heap, by contrast, would be written by every shard
// worker that schedules into it: flagged.
var globalHeap []frameRef // want `package-level var globalHeap is written by this package`

func drainGlobal() frameRef {
	f := globalHeap[0]
	globalHeap = globalHeap[1:]
	return f
}
