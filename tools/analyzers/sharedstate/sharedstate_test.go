package sharedstate_test

import (
	"testing"

	"repro/tools/analyzers/analysistest"
	"repro/tools/analyzers/sharedstate"
)

func TestSharedState(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), sharedstate.Analyzer, "a")
}
