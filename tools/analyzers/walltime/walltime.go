// Package walltime forbids wall-clock and global-randomness APIs in
// simulation code. The simulator's virtual clock (simnet.Sim.Now) and the
// per-trial seeded *rand.Rand are the only legal sources of time and
// randomness: reading time.Now or the shared math/rand generator makes a
// run depend on the host machine and on whatever else touched the global
// source, destroying bit-identical reproducibility.
//
// Constructors that wrap an explicit seed (rand.New, rand.NewSource,
// rand.NewZipf and the v2 equivalents) are allowed, as are time.Duration
// arithmetic and constants — only the wall-clock entry points and the
// seed-less package-level generator functions are rejected. runtime.Gosched
// is banned for the same reason: a voluntary yield makes goroutine
// interleaving a host scheduling decision. A site can opt out with a
// `//simlint:deterministic <why>` comment.
package walltime

import (
	"go/ast"
	"go/types"

	"repro/tools/analyzers/analysis"
)

// Analyzer is the walltime determinism check.
var Analyzer = &analysis.Analyzer{
	Name: "walltime",
	Doc:  "flags wall-clock time and global math/rand use in simulation packages",
	Run:  run,
}

// deniedTime are the time package entry points that read or wait on the
// host's wall clock.
var deniedTime = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
	"Since":     true,
	"Until":     true,
}

// allowedRand are the math/rand package-level functions that take an
// explicit source or seed and therefore stay deterministic.
var allowedRand = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.TypesInfo.Uses[ident].(*types.PkgName)
			if !ok {
				return true
			}
			switch pkgName.Imported().Path() {
			case "runtime":
				// Gosched hands the scheduler a decision point: whether
				// another goroutine runs, and which, depends on the host.
				// Simulation code must not create host-visible interleaving
				// choices; event ordering belongs to the virtual clock.
				if sel.Sel.Name == "Gosched" && !pass.SuppressedAt(sel.Pos()) {
					pass.Reportf(sel.Pos(),
						"runtime.Gosched yields to the host scheduler and makes interleaving host-dependent; order work through the event queue or justify with a %s comment",
						analysis.SuppressionComment)
				}
			case "time":
				if deniedTime[sel.Sel.Name] && !pass.SuppressedAt(sel.Pos()) {
					pass.Reportf(sel.Pos(),
						"time.%s reads the host wall clock; use the simulation clock (simnet.Sim.Now / After / Schedule) or justify with a %s comment",
						sel.Sel.Name, analysis.SuppressionComment)
				}
			case "math/rand", "math/rand/v2":
				if _, isFunc := pass.TypesInfo.Uses[sel.Sel].(*types.Func); !isFunc {
					return true // types and constants are fine
				}
				if allowedRand[sel.Sel.Name] || pass.SuppressedAt(sel.Pos()) {
					return true
				}
				pass.Reportf(sel.Pos(),
					"rand.%s draws from the shared global generator; use an injected seeded *rand.Rand or justify with a %s comment",
					sel.Sel.Name, analysis.SuppressionComment)
			}
			return true
		})
	}
	return nil, nil
}
