package walltime_test

import (
	"testing"

	"repro/tools/analyzers/analysistest"
	"repro/tools/analyzers/walltime"
)

func TestWallTime(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), walltime.Analyzer, "a")
}
