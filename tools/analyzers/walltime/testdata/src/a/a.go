// Fixture for the walltime analyzer: wall-clock reads and global math/rand
// draws are flagged; Duration arithmetic, seeded generators, and justified
// sites are not.
package a

import (
	"math/rand"
	"runtime"
	"time"
)

func bad() {
	_ = time.Now()                     // want `time\.Now reads the host wall clock`
	time.Sleep(time.Second)            // want `time\.Sleep reads the host wall clock`
	_ = time.Since(time.Time{})        // want `time\.Since reads the host wall clock`
	_ = time.After(time.Second)        // want `time\.After reads the host wall clock`
	_ = time.Tick(time.Second)         // want `time\.Tick reads the host wall clock`
	runtime.Gosched()                  // want `runtime\.Gosched yields to the host scheduler`
	_ = rand.Intn(4)                   // want `rand\.Intn draws from the shared global generator`
	_ = rand.Float64()                 // want `rand\.Float64 draws from the shared global generator`
	rand.Shuffle(2, func(i, j int) {}) // want `rand\.Shuffle draws from the shared global generator`
}

func good(rng *rand.Rand, d time.Duration) time.Duration {
	_ = rng.Intn(4)
	_ = rng.ExpFloat64()
	_ = rand.New(rand.NewSource(7))
	_ = time.Millisecond
	var t time.Time
	_ = t
	return d * 2
}

func justified() {
	//simlint:deterministic wall clock only decorates operator log lines
	_ = time.Now()
	//simlint:deterministic spin-wait backoff in the host-side test harness
	runtime.Gosched()
}
