// Package analysistest runs an analyzer over golden fixture packages and
// checks its diagnostics against `// want "regexp"` expectations embedded in
// the fixture source — the same contract as
// golang.org/x/tools/go/analysis/analysistest, reimplemented on the
// standard library for this repo's offline build environment.
//
// Fixtures live in testdata/src/<pkg>/*.go under the analyzer's directory.
// A line expecting a diagnostic carries a trailing comment of the form
//
//	code() // want "regexp matching the message"
//
// Multiple expectations on one line are allowed (`// want "a" "b"`); a
// backquoted Go string may be used instead of a quoted one. Every reported
// diagnostic must match a same-line expectation and vice versa.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/tools/analyzers/analysis"
	"repro/tools/analyzers/load"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData() string {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return dir
}

// expectation is one `// want` entry.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

// Run loads each fixture package and applies the analyzer, failing t on any
// mismatch between diagnostics and expectations.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, name := range pkgs {
		pkg, err := load.LoadDir(filepath.Join(testdata, "src", name))
		if err != nil {
			t.Fatalf("loading fixture %s: %v", name, err)
		}
		runPackage(t, a, pkg)
	}
}

func runPackage(t *testing.T, a *analysis.Analyzer, pkg *load.Package) {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		wants = append(wants, parseExpectations(t, pkg.Fset, f)...)
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("%s: analyzer failed: %v", a.Name, err)
	}
	checkDiagnostics(t, a.Name, pkg.Fset, diags, wants)
}

// RunModule loads each fixture package and applies the module analyzer to it
// as a one-package module, failing t on any mismatch between diagnostics and
// `// want` expectations. Interprocedural behavior is exercised within the
// fixture package: its helpers, closures, and types are all the analyzer
// sees, plus the export data of anything the fixture imports.
func RunModule(t *testing.T, testdata string, a *analysis.ModuleAnalyzer, pkgs ...string) {
	t.Helper()
	for _, name := range pkgs {
		pkg, err := load.LoadDir(filepath.Join(testdata, "src", name))
		if err != nil {
			t.Fatalf("loading fixture %s: %v", name, err)
		}
		var wants []*expectation
		for _, f := range pkg.Files {
			wants = append(wants, parseExpectations(t, pkg.Fset, f)...)
		}
		var diags []analysis.Diagnostic
		pass := &analysis.ModulePass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Units: []*analysis.PackageUnit{{
				ImportPath: pkg.ImportPath,
				Files:      pkg.Files,
				Pkg:        pkg.Types,
				TypesInfo:  pkg.Info,
			}},
			Report: func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if _, err := a.Run(pass); err != nil {
			t.Fatalf("%s: analyzer failed: %v", a.Name, err)
		}
		checkDiagnostics(t, a.Name, pkg.Fset, diags, wants)
	}
}

// checkDiagnostics matches reported diagnostics against expectations
// one-to-one: every diagnostic must hit a same-line want and vice versa.
func checkDiagnostics(t *testing.T, name string, fset *token.FileSet, diags []analysis.Diagnostic, wants []*expectation) {
	t.Helper()
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if w.used || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s: %s", name, pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s: %s:%d: expected diagnostic matching %q, got none", name, w.file, w.line, w.re)
		}
	}
}

// parseExpectations extracts `// want` comments from one file.
func parseExpectations(t *testing.T, fset *token.FileSet, f *ast.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := wantText(c.Text)
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			patterns, err := splitPatterns(text)
			if err != nil {
				t.Fatalf("%s: bad want comment: %v", pos, err)
			}
			for _, p := range patterns {
				re, err := regexp.Compile(p)
				if err != nil {
					t.Fatalf("%s: bad want regexp %q: %v", pos, p, err)
				}
				out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return out
}

// wantText extracts the pattern list of a want expectation. The marker may
// open the comment (`// want "re"`) or trail other comment text at a space
// boundary (`//simlint:shared // want "re"`) — the latter lets fixtures
// expect diagnostics that analyzers anchor on a marker comment itself, where
// a second line comment cannot follow on the same line.
func wantText(text string) (string, bool) {
	if rest, ok := strings.CutPrefix(text, "// want "); ok {
		return rest, true
	}
	const embedded = " // want "
	if i := strings.Index(text, embedded); i >= 0 {
		return text[i+len(embedded):], true
	}
	return "", false
}

// splitPatterns parses a space-separated sequence of Go string literals.
func splitPatterns(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for len(s) > 0 {
		switch s[0] {
		case '"':
			end := -1
			for i := 1; i < len(s); i++ {
				if s[i] == '\\' {
					i++
					continue
				}
				if s[i] == '"' {
					end = i
					break
				}
			}
			if end < 0 {
				return nil, fmt.Errorf("unterminated pattern in %q", s)
			}
			unq, err := strconv.Unquote(s[:end+1])
			if err != nil {
				return nil, fmt.Errorf("bad pattern %q: %v", s[:end+1], err)
			}
			out = append(out, unq)
			s = strings.TrimSpace(s[end+1:])
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated pattern in %q", s)
			}
			out = append(out, s[1:1+end])
			s = strings.TrimSpace(s[2+end:])
		default:
			return nil, fmt.Errorf("expected quoted pattern, got %q", s)
		}
	}
	return out, nil
}
