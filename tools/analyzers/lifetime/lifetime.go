// Package lifetime is a module-wide interprocedural analyzer for pooled
// resource lifetimes. The simulator recycles two kinds of records on its
// hottest paths — event records through the Sim freelist and frame buffers
// through internal/simnet/framepool — and recycling is only sound while
// every buffer has exactly one owner: acquired once, used while held, then
// either released exactly once, stored somewhere that takes ownership, or
// returned to the caller. This analyzer enforces that discipline statically,
// reporting four defect classes:
//
//	(a) use-after-release: a variable read after it was released on some path;
//	(b) double-release:    a variable released twice on some path;
//	(c) leak-on-path:      a locally acquired resource that reaches a return
//	                       still held (neither released, escaped, nor returned);
//	(d) escape-into-event-capture: a held buffer captured by a closure handed
//	                       to At/After/Schedule, which may fire after the
//	                       buffer has been recycled.
//
// Pooled types are declared in source, not in the analyzer: a type whose doc
// comment carries
//
//	//simlint:pool acquire=Get release=Put
//
// registers its acquire/release method pair. Ownership transfer is tracked
// interprocedurally through per-function summaries: a parameter is consumed
// when every path through the callee releases it, escaped when any path
// stores it, and a result is fresh when every return hands back a held
// acquisition — so helpers like newIPFrame (fresh) and routeOut (escaping)
// compose without annotations.
//
// The tracking is deliberately conservative: aliasing a resource, passing it
// to an unresolved callee, or storing it anywhere moves it to an "escaped"
// state that suppresses all further reporting for that variable. The
// analyzer therefore never reports on code it cannot prove wrong; the
// runtime generation checks under -tags invariants (framepool's debug state)
// cover the escaped remainder. Sites the analyzer is wrong about carry a
// //simlint:lifetime marker with a written justification.
package lifetime

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"repro/tools/analyzers/analysis"
	"repro/tools/analyzers/callgraph"
)

// Analyzer is the pooled-resource lifetime check.
var Analyzer = &analysis.ModuleAnalyzer{
	Name: "lifetime",
	Doc:  "reports use-after-release, double-release, leaks and event-capture escapes of pooled resources",
	Run:  run,
}

// maxFixpointRounds bounds the interprocedural summary iteration. Summaries
// are a deterministic function of callee summaries, so real code converges in
// two or three rounds; the cap guards against oscillation through recursion.
const maxFixpointRounds = 20

// schedNames are the deferred-execution scheduling calls of class (d): a
// closure handed to one of these runs at a later virtual time, after the
// current owner may have released its buffers.
var schedNames = map[string]bool{"At": true, "After": true, "Schedule": true}

func run(pass *analysis.ModulePass) (any, error) {
	c := &checker{
		pass:     pass,
		pools:    collectPools(pass),
		sums:     map[*callgraph.Node]*summary{},
		reported: map[string]bool{},
	}
	if len(c.pools) == 0 {
		return nil, nil // nothing registers a pool: no resources to track
	}
	c.graph = callgraph.Build(pass.Units)

	// Phase 1: iterate ownership summaries to a fixpoint.
	for round := 0; round < maxFixpointRounds; round++ {
		changed := false
		for _, n := range c.graph.AllNodes() {
			if c.isPoolMethod(n) {
				continue
			}
			s := c.analyze(n, false)
			if !c.sums[n].equal(s) {
				c.sums[n] = s
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	// Phase 2: report with the final summaries.
	for _, n := range c.graph.AllNodes() {
		if c.isPoolMethod(n) {
			continue
		}
		c.analyze(n, true)
	}
	return nil, nil
}

// ---------------------------------------------------------------- registry

// poolSpec is one registered pooled type.
type poolSpec struct {
	name    string // short type name, for messages
	acquire string
	release string
}

// collectPools scans every unit for types whose doc comment carries the
// //simlint:pool marker and parses the acquire/release method names. The
// registry is keyed by "pkgpath.TypeName" so a pool declared in one package
// is recognized at call sites type-checked in another.
func collectPools(pass *analysis.ModulePass) map[string]poolSpec {
	pools := map[string]poolSpec{}
	for _, u := range pass.Units {
		for _, f := range u.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					just, ok := poolMarker(pass.Fset, f, gd, ts)
					if !ok {
						continue
					}
					acq, rel, ok := parsePoolSpec(just)
					if !ok {
						continue
					}
					key := u.Pkg.Path() + "." + ts.Name.Name
					pools[key] = poolSpec{name: ts.Name.Name, acquire: acq, release: rel}
				}
			}
		}
	}
	return pools
}

// poolMarker finds the //simlint:pool line in the type's doc comment (on the
// GenDecl or the TypeSpec) or attached directly above the declaration.
func poolMarker(fset *token.FileSet, f *ast.File, gd *ast.GenDecl, ts *ast.TypeSpec) (string, bool) {
	for _, doc := range []*ast.CommentGroup{gd.Doc, ts.Doc} {
		if doc == nil {
			continue
		}
		for _, line := range doc.List {
			if rest, ok := strings.CutPrefix(line.Text, analysis.PoolComment+" "); ok {
				return strings.TrimSpace(rest), true
			}
		}
	}
	return analysis.MarkerAt(fset, f, gd.Pos(), analysis.PoolComment)
}

// parsePoolSpec extracts "acquire=Get release=Put" from the marker text.
func parsePoolSpec(text string) (acquire, release string, ok bool) {
	for _, field := range strings.Fields(text) {
		if v, found := strings.CutPrefix(field, "acquire="); found {
			acquire = v
		}
		if v, found := strings.CutPrefix(field, "release="); found {
			release = v
		}
	}
	return acquire, release, acquire != "" && release != ""
}

// ---------------------------------------------------------------- states

// state is a variable's position in the ownership lattice.
type state uint8

const (
	stNone     state = iota // untracked
	stHeld                  // owns a live pooled resource
	stMaybe                 // held on some path, released/absent on others
	stReleased              // returned to the pool; any further use is a bug
	stEscaped               // ownership moved somewhere we cannot track; stop reporting
)

// mergeState joins two branch outcomes. Escape absorbs everything (give up);
// any other disagreement is the interesting "on some path" middle state.
func mergeState(a, b state) state {
	if a == b {
		return a
	}
	if a == stEscaped || b == stEscaped {
		return stEscaped
	}
	return stMaybe
}

// varInfo is everything tracked about one variable.
type varInfo struct {
	st     state
	local  bool // acquired inside this function: leak checking applies
	pool   string
	acqPos token.Pos
	relPos token.Pos
}

type env map[*types.Var]varInfo

func (e env) clone() env {
	out := make(env, len(e))
	for k, v := range e {
		out[k] = v
	}
	return out
}

// merge joins two branch environments key-by-key; a key absent on one side
// merges as untracked.
func mergeEnvs(a, b env) env {
	out := make(env, len(a))
	for k, av := range a {
		bv := b[k]
		out[k] = mergeInfo(av, bv)
	}
	for k, bv := range b {
		if _, seen := a[k]; !seen {
			out[k] = mergeInfo(varInfo{}, bv)
		}
	}
	return out
}

func mergeInfo(a, b varInfo) varInfo {
	out := a
	out.st = mergeState(a.st, b.st)
	out.local = a.local || b.local
	if out.pool == "" {
		out.pool = b.pool
	}
	if out.acqPos == token.NoPos {
		out.acqPos = b.acqPos
	}
	if out.relPos == token.NoPos {
		out.relPos = b.relPos
	}
	return out
}

// ---------------------------------------------------------------- summaries

// fate summarizes what a callee does with one parameter.
type fate uint8

const (
	fateBorrowed fate = iota // only read: the caller keeps ownership
	fateConsumed             // released on every path: the caller's variable dies
	fateEscaped              // stored or partially released: the caller gives up tracking
)

// summary is one function's interprocedural contract.
type summary struct {
	params []fate
	fresh  []bool // per result index: every return hands back a held acquisition
}

func (s *summary) equal(o *summary) bool {
	if s == nil || o == nil {
		return s == o
	}
	if len(s.params) != len(o.params) || len(s.fresh) != len(o.fresh) {
		return false
	}
	for i := range s.params {
		if s.params[i] != o.params[i] {
			return false
		}
	}
	for i := range s.fresh {
		if s.fresh[i] != o.fresh[i] {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------- checker

type checker struct {
	pass     *analysis.ModulePass
	graph    *callgraph.Graph
	pools    map[string]poolSpec
	sums     map[*callgraph.Node]*summary
	reported map[string]bool
}

const (
	roleNone = iota
	roleAcquire
	roleRelease
)

// methodRole classifies a callee as a registered acquire or release method.
func (c *checker) methodRole(fn *types.Func) (poolSpec, int) {
	if fn == nil {
		return poolSpec{}, roleNone
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return poolSpec{}, roleNone
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return poolSpec{}, roleNone
	}
	spec, ok := c.pools[named.Obj().Pkg().Path()+"."+named.Obj().Name()]
	if !ok {
		return poolSpec{}, roleNone
	}
	switch fn.Name() {
	case spec.acquire:
		return spec, roleAcquire
	case spec.release:
		return spec, roleRelease
	}
	return poolSpec{}, roleNone
}

// isPoolMethod reports whether the node IS a registered acquire or release
// method: their bodies implement the pool discipline rather than follow it.
func (c *checker) isPoolMethod(n *callgraph.Node) bool {
	_, role := c.methodRole(n.Func)
	return role != roleNone
}

// calleeFunc statically resolves the called function object for pool-role
// classification (direct and method calls only).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			f, _ := sel.Obj().(*types.Func)
			return f
		}
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// analyze walks one function body and returns its summary; with report set
// it also emits diagnostics.
func (c *checker) analyze(n *callgraph.Node, report bool) *summary {
	w := &walker{c: c, node: n, env: env{}, doReport: report}
	w.walkBody(n.Body.List)
	if !w.terminated {
		// Falling off the end is an exit too.
		w.leakCheck(n.Body.End(), nil)
		w.recordExit()
	}

	sum := &summary{}
	for _, p := range paramVars(n) {
		f := fateBorrowed
		if p != nil {
			switch w.exit[p].st {
			case stReleased:
				f = fateConsumed
			case stEscaped, stMaybe:
				f = fateEscaped
			}
		}
		sum.params = append(sum.params, f)
	}
	if w.returns > 0 {
		sum.fresh = w.freshVotes
	}
	return sum
}

// paramVars returns the function's parameter objects in declaration order
// (nil entries for unresolvable or blank parameters).
func paramVars(n *callgraph.Node) []*types.Var {
	var ft *ast.FuncType
	switch {
	case n.Decl != nil:
		ft = n.Decl.Type
	case n.Lit != nil:
		ft = n.Lit.Type
	}
	if ft == nil || ft.Params == nil {
		return nil
	}
	var out []*types.Var
	for _, field := range ft.Params.List {
		if len(field.Names) == 0 {
			out = append(out, nil) // unnamed parameter
			continue
		}
		for _, name := range field.Names {
			v, _ := n.Unit.TypesInfo.Defs[name].(*types.Var)
			out = append(out, v)
		}
	}
	return out
}

func (c *checker) shortPos(pos token.Pos) string {
	p := c.pass.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

// report emits one diagnostic unless the site carries a justified
// //simlint:lifetime marker. A bare marker anchors its own diagnostic, like
// every other justification marker in the suite.
func (c *checker) report(pos token.Pos, format string, args ...any) {
	unit := c.pass.UnitFor(pos)
	if unit == nil {
		return
	}
	msg := fmt.Sprintf(format, args...)
	key := fmt.Sprintf("%d:%s", pos, msg)
	if c.reported[key] {
		return
	}
	c.reported[key] = true
	if just, ok := unit.MarkedAt(c.pass.Fset, pos, analysis.LifetimeComment); ok {
		// A trailing comment is not a justification (matches justify's rule).
		if just == "" || strings.HasPrefix(just, "//") {
			c.pass.Reportf(unit, pos, "%s (bare //simlint:lifetime marker needs a justification)", msg)
		}
		return
	}
	c.pass.Reportf(unit, pos, "%s", msg)
}

// ---------------------------------------------------------------- walker

type walker struct {
	c        *checker
	node     *callgraph.Node
	env      env
	doReport bool

	// exit merges the environment at every function exit, for param fates.
	exit    env
	exited  bool
	returns int
	// freshVotes[i] stays true while every return's i-th result is a fresh
	// acquisition.
	freshVotes []bool

	terminated bool
}

func (w *walker) info() *types.Info { return w.node.Unit.TypesInfo }

func (w *walker) objOf(id *ast.Ident) *types.Var {
	info := w.info()
	if o, ok := info.Uses[id].(*types.Var); ok {
		return o
	}
	o, _ := info.Defs[id].(*types.Var)
	return o
}

func (w *walker) recordExit() {
	if !w.exited {
		w.exit = w.env.clone()
		w.exited = true
		return
	}
	w.exit = mergeEnvs(w.exit, w.env)
}

// leakCheck reports locally acquired resources still (maybe) held at an
// exit, excluding the ones being returned.
func (w *walker) leakCheck(pos token.Pos, returned map[*types.Var]bool) {
	if !w.doReport {
		return
	}
	for v, vi := range w.env {
		if !vi.local || returned[v] {
			continue
		}
		switch vi.st {
		case stHeld:
			w.c.report(vi.acqPos, "%s acquired from pool %s is never released, stored, or returned (leak at %s)",
				v.Name(), vi.pool, w.c.shortPos(pos))
		case stMaybe:
			w.c.report(vi.acqPos, "%s acquired from pool %s leaks on some path (reaches %s still held)",
				v.Name(), vi.pool, w.c.shortPos(pos))
		}
	}
}

// ---------------------------------------------------------------- statements

func (w *walker) walkBody(list []ast.Stmt) {
	for _, s := range list {
		if w.terminated {
			return
		}
		w.walkStmt(s)
	}
}

// inBranch runs f against a clone of the current environment and returns the
// resulting environment plus whether the branch terminated.
func (w *walker) inBranch(f func()) (env, bool) {
	savedEnv, savedT := w.env, w.terminated
	w.env, w.terminated = savedEnv.clone(), false
	f()
	resEnv, resT := w.env, w.terminated
	w.env, w.terminated = savedEnv, savedT
	return resEnv, resT
}

// joinBranches merges branch outcomes back into the walker. Terminated
// branches contribute nothing (their exits were already recorded); when every
// branch terminated and the set was exhaustive, the walker terminates too.
func (w *walker) joinBranches(results []env, terms []bool, exhaustive bool) {
	var live []env
	for i, e := range results {
		if !terms[i] {
			live = append(live, e)
		}
	}
	if !exhaustive {
		// Some execution may skip every branch: the pre-branch env survives.
		live = append(live, w.env)
	}
	if len(live) == 0 {
		w.terminated = true
		return
	}
	merged := live[0]
	for _, e := range live[1:] {
		merged = mergeEnvs(merged, e)
	}
	w.env = merged
}

func (w *walker) walkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		w.walkBody(s.List)
	case *ast.ExprStmt:
		w.use(s.X, false)
	case *ast.AssignStmt:
		w.assign(s)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, val := range vs.Values {
					w.use(val, false)
				}
			}
		}
	case *ast.ReturnStmt:
		w.ret(s)
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		w.use(s.Cond, false)
		thenEnv, thenT := w.inBranch(func() { w.walkStmt(s.Body) })
		elseEnv, elseT := w.env, false
		if s.Else != nil {
			elseEnv, elseT = w.inBranch(func() { w.walkStmt(s.Else) })
		}
		w.joinBranches([]env{thenEnv, elseEnv}, []bool{thenT, elseT}, true)
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		if s.Cond != nil {
			w.use(s.Cond, false)
		}
		bodyEnv, bodyT := w.inBranch(func() {
			w.walkStmt(s.Body)
			if !w.terminated && s.Post != nil {
				w.walkStmt(s.Post)
			}
		})
		// Zero or more iterations: merge the skip path with one pass.
		w.joinBranches([]env{bodyEnv}, []bool{bodyT}, false)
	case *ast.RangeStmt:
		w.use(s.X, false)
		bodyEnv, bodyT := w.inBranch(func() { w.walkStmt(s.Body) })
		w.joinBranches([]env{bodyEnv}, []bool{bodyT}, false)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		if s.Tag != nil {
			w.use(s.Tag, false)
		}
		w.walkClauses(s.Body)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		w.walkStmt(s.Assign)
		w.walkClauses(s.Body)
	case *ast.SelectStmt:
		w.walkClauses(s.Body)
	case *ast.DeferStmt:
		// A deferred release runs at the last possible moment: treat the
		// variable as escaped so neither the leak check nor later-use
		// checks misfire on the window in between.
		if id := w.releaseArgIdent(s.Call); id != nil {
			if v := w.objOf(id); v != nil {
				vi := w.env[v]
				vi.st = stEscaped
				w.env[v] = vi
				return
			}
		}
		w.use(s.Call, false)
	case *ast.GoStmt:
		w.use(s.Call, false)
	case *ast.SendStmt:
		w.use(s.Chan, false)
		w.use(s.Value, true)
	case *ast.IncDecStmt:
		w.use(s.X, false)
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt)
	case *ast.BranchStmt:
		// break/continue/goto: stop walking this branch. Conservative for
		// loops (a second iteration is not re-simulated), fine in practice.
		w.terminated = true
	}
}

// walkClauses handles the case bodies of switch/type-switch/select.
func (w *walker) walkClauses(body *ast.BlockStmt) {
	var results []env
	var terms []bool
	exhaustive := false
	for _, clause := range body.List {
		var stmts []ast.Stmt
		switch cl := clause.(type) {
		case *ast.CaseClause:
			for _, e := range cl.List {
				w.use(e, false)
			}
			if cl.List == nil {
				exhaustive = true // default clause
			}
			stmts = cl.Body
		case *ast.CommClause:
			stmts = cl.Body
			if cl.Comm != nil {
				comm := cl.Comm
				e, t := w.inBranch(func() {
					w.walkStmt(comm)
					w.walkBody(stmts)
				})
				results, terms = append(results, e), append(terms, t)
				continue
			}
			exhaustive = true
		}
		list := stmts
		e, t := w.inBranch(func() { w.walkBody(list) })
		results, terms = append(results, e), append(terms, t)
	}
	w.joinBranches(results, terms, exhaustive)
}

// releaseArgIdent returns the released identifier when call is a registered
// release taking a simple variable, else nil.
func (w *walker) releaseArgIdent(call *ast.CallExpr) *ast.Ident {
	_, role := w.c.methodRole(calleeFunc(w.info(), call))
	if role != roleRelease || len(call.Args) != 1 {
		return nil
	}
	id, _ := ast.Unparen(call.Args[0]).(*ast.Ident)
	return id
}

// ---------------------------------------------------------------- assignment

func (w *walker) assign(s *ast.AssignStmt) {
	// Multi-value call: x, y := f().
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
		if !ok {
			for _, r := range s.Rhs {
				w.use(r, false)
			}
			return
		}
		fresh := w.freshResults(call)
		w.use(call, false)
		for i, lh := range s.Lhs {
			id, ok := ast.Unparen(lh).(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			v := w.objOf(id)
			if v == nil {
				continue
			}
			if i < len(fresh) && fresh[i] {
				w.env[v] = w.heldInfo(call)
			} else {
				delete(w.env, v)
			}
		}
		return
	}

	for i := range s.Lhs {
		if i >= len(s.Rhs) {
			break
		}
		w.assignPair(s.Lhs[i], s.Rhs[i])
	}
}

// heldInfo builds the varInfo for a fresh acquisition at call.
func (w *walker) heldInfo(call *ast.CallExpr) varInfo {
	name := "pool"
	if spec, role := w.c.methodRole(calleeFunc(w.info(), call)); role == roleAcquire {
		name = spec.name
	}
	return varInfo{st: stHeld, local: true, pool: name, acqPos: call.Pos()}
}

func (w *walker) graphCallees(call *ast.CallExpr) []*callgraph.Node {
	return w.c.graph.CalleesAt(call)
}

func (w *walker) assignPair(lhs, rhs ast.Expr) {
	lhsID, lhsIsIdent := ast.Unparen(lhs).(*ast.Ident)

	// Fresh acquisition: b := pool.Get(n) or b := helperReturningFresh().
	if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
		fresh := w.freshResults(call)
		w.use(call, false)
		if lhsIsIdent && lhsID.Name != "_" {
			if v := w.objOf(lhsID); v != nil {
				if len(fresh) == 1 && fresh[0] {
					w.env[v] = w.heldInfo(call)
				} else {
					delete(w.env, v)
				}
			}
		} else if !lhsIsIdent {
			w.use(lhs, false)
		}
		return
	}

	// Alias of a tracked variable: give up on both sides.
	if rhsID, ok := ast.Unparen(rhs).(*ast.Ident); ok && lhsIsIdent {
		if v := w.objOf(rhsID); v != nil {
			if vi, tracked := w.env[v]; tracked && vi.st != stNone {
				w.useIdent(rhsID, true) // flags released-use, then escapes
				if lv := w.objOf(lhsID); lv != nil {
					delete(w.env, lv)
				}
				return
			}
		}
	}

	escaping := !lhsIsIdent // storing into a field/index/map escapes the value
	w.use(rhs, escaping)
	if lhsIsIdent {
		if lhsID.Name != "_" {
			if v := w.objOf(lhsID); v != nil {
				delete(w.env, v) // rebound to something untracked
			}
		}
	} else {
		w.use(lhs, false) // writing x.f or x[i] reads x
	}
}

// freshResults reports, per result index, whether call hands back a fresh
// acquisition: the registered acquire method itself, or a callee whose every
// return is fresh at that index.
func (w *walker) freshResults(call *ast.CallExpr) []bool {
	if _, role := w.c.methodRole(calleeFunc(w.info(), call)); role == roleAcquire {
		return []bool{true}
	}
	callees := w.graphCallees(call)
	if len(callees) == 0 {
		return nil
	}
	var fresh []bool
	for _, callee := range callees {
		sum := w.c.sums[callee]
		if sum == nil || sum.fresh == nil {
			return nil
		}
		if fresh == nil {
			fresh = append([]bool(nil), sum.fresh...)
			continue
		}
		if len(sum.fresh) != len(fresh) {
			return nil
		}
		for i := range fresh {
			fresh[i] = fresh[i] && sum.fresh[i]
		}
	}
	return fresh
}

// ---------------------------------------------------------------- return

func (w *walker) ret(s *ast.ReturnStmt) {
	returned := map[*types.Var]bool{}
	var votes []bool
	for _, res := range s.Results {
		isFresh := false
		switch e := ast.Unparen(res).(type) {
		case *ast.Ident:
			if v := w.objOf(e); v != nil {
				vi := w.env[v]
				if vi.st == stHeld && vi.local {
					isFresh = true
				}
				returned[v] = true
			}
		case *ast.CallExpr:
			if f := w.freshResults(e); len(f) == 1 && f[0] {
				isFresh = true
			}
		}
		votes = append(votes, isFresh)
	}

	w.leakCheck(s.Pos(), returned)

	for _, res := range s.Results {
		w.use(res, true) // ownership moves to the caller or escapes
	}

	if w.returns == 0 {
		w.freshVotes = votes
	} else {
		if len(votes) != len(w.freshVotes) {
			w.freshVotes = nil
		}
		for i := range w.freshVotes {
			if i < len(votes) {
				w.freshVotes[i] = w.freshVotes[i] && votes[i]
			} else {
				w.freshVotes[i] = false
			}
		}
	}
	w.returns++
	w.recordExit()
	w.terminated = true
}

// ---------------------------------------------------------------- expressions

// use walks an expression, flagging reads of released variables; escaping
// marks contexts that store the value somewhere beyond tracking.
func (w *walker) use(e ast.Expr, escaping bool) {
	switch e := e.(type) {
	case *ast.Ident:
		w.useIdent(e, escaping)
	case *ast.ParenExpr:
		w.use(e.X, escaping)
	case *ast.CallExpr:
		w.call(e)
	case *ast.UnaryExpr:
		w.use(e.X, e.Op == token.AND || escaping)
	case *ast.StarExpr:
		w.use(e.X, false)
	case *ast.SelectorExpr:
		w.use(e.X, false) // reading x.f does not move x
	case *ast.IndexExpr:
		w.use(e.X, false)
		w.use(e.Index, false)
	case *ast.SliceExpr:
		w.use(e.X, escaping) // a subslice shares the backing buffer
		for _, b := range []ast.Expr{e.Low, e.High, e.Max} {
			if b != nil {
				w.use(b, false)
			}
		}
	case *ast.BinaryExpr:
		w.use(e.X, false)
		w.use(e.Y, false)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				w.use(kv.Value, true)
				continue
			}
			w.use(el, true)
		}
	case *ast.TypeAssertExpr:
		w.use(e.X, escaping)
	case *ast.FuncLit:
		w.funcLit(e, false)
	case *ast.KeyValueExpr:
		w.use(e.Value, escaping)
	}
}

func (w *walker) useIdent(id *ast.Ident, escaping bool) {
	v := w.objOf(id)
	if v == nil {
		return
	}
	vi, tracked := w.env[v]
	if !tracked {
		return
	}
	switch vi.st {
	case stReleased:
		if w.doReport {
			w.c.report(id.Pos(), "use of %s after it was released to pool %s (released at %s)",
				id.Name, vi.pool, w.c.shortPos(vi.relPos))
		}
		vi.st = stEscaped // one report per variable, not per use
		w.env[v] = vi
	case stMaybe:
		if w.doReport {
			w.c.report(id.Pos(), "%s may be used after release: pool %s reclaims it on some path (released at %s)",
				id.Name, vi.pool, w.c.shortPos(vi.relPos))
		}
		vi.st = stEscaped
		w.env[v] = vi
	default:
		if escaping && vi.st != stNone {
			vi.st = stEscaped
			w.env[v] = vi
		}
	}
}

// call applies a call expression's effect on the environment.
func (w *walker) call(call *ast.CallExpr) {
	info := w.info()
	fn := calleeFunc(info, call)
	spec, role := w.c.methodRole(fn)

	// Receiver / callee expression chain.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		w.use(sel.X, false)
	}

	switch role {
	case roleRelease:
		if len(call.Args) == 1 {
			if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
				w.releaseIdent(id, spec, call.Pos())
				return
			}
		}
		for _, a := range call.Args {
			w.use(a, false) // releasing a non-ident: contents only
		}
		return
	case roleAcquire:
		for _, a := range call.Args {
			w.use(a, false)
		}
		return
	}

	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "append":
				if len(call.Args) > 0 {
					w.use(call.Args[0], false)
					for _, a := range call.Args[1:] {
						w.use(a, true) // stored into the slice
					}
				}
			case "panic":
				for _, a := range call.Args {
					w.use(a, false)
				}
				w.terminated = true
			default: // len, cap, copy, delete, print, make, new, min, max...
				for _, a := range call.Args {
					w.use(a, false)
				}
			}
			return
		}
	}

	sched := isSchedCall(call)
	callees := w.graphCallees(call)
	fates := w.mergedParamFates(callees, len(call.Args))

	for i, arg := range call.Args {
		if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
			w.funcLit(lit, sched)
			continue
		}
		f := fateEscaped // unresolved callee: give up on tracked args
		if fates != nil {
			f = fates[i]
		}
		if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
			switch f {
			case fateConsumed:
				w.consumeIdent(id, call.Pos())
			case fateEscaped:
				w.useIdent(id, true)
			default:
				w.useIdent(id, false)
			}
			continue
		}
		w.use(arg, f != fateBorrowed)
	}
}

// releaseIdent transitions a variable through a registered release call.
func (w *walker) releaseIdent(id *ast.Ident, spec poolSpec, pos token.Pos) {
	v := w.objOf(id)
	if v == nil {
		return
	}
	vi := w.env[v]
	switch vi.st {
	case stReleased:
		if w.doReport {
			w.c.report(pos, "%s released twice to pool %s (first released at %s)",
				id.Name, vi.pool, w.c.shortPos(vi.relPos))
		}
		vi.st = stEscaped
	case stMaybe:
		if w.doReport {
			w.c.report(pos, "%s may already be released: pool %s reclaimed it on some path (released at %s)",
				id.Name, vi.pool, w.c.shortPos(vi.relPos))
		}
		vi.st = stEscaped
	case stEscaped:
		// Ownership left our sight; trust the release.
	default:
		vi.st = stReleased
		vi.relPos = pos
		if vi.pool == "" {
			vi.pool = spec.name
		}
	}
	w.env[v] = vi
}

// consumeIdent transitions a variable passed to an all-paths-releasing callee.
func (w *walker) consumeIdent(id *ast.Ident, pos token.Pos) {
	v := w.objOf(id)
	if v == nil {
		return
	}
	vi := w.env[v]
	switch vi.st {
	case stReleased, stMaybe:
		w.useIdent(id, false) // flags the use-after-release
		return
	case stEscaped:
		return
	}
	vi.st = stReleased
	vi.relPos = pos
	if vi.pool == "" {
		vi.pool = "pool"
	}
	w.env[v] = vi
}

// mergedParamFates merges callee summaries; nil means unresolved.
func (w *walker) mergedParamFates(callees []*callgraph.Node, argc int) []fate {
	if len(callees) == 0 {
		return nil
	}
	var fates []fate
	for _, callee := range callees {
		sum := w.c.sums[callee]
		cur := make([]fate, argc)
		for i := 0; i < argc; i++ {
			cur[i] = fateBorrowed
			if sum != nil {
				switch {
				case i < len(sum.params):
					cur[i] = sum.params[i]
				case len(sum.params) > 0:
					cur[i] = sum.params[len(sum.params)-1] // variadic tail
				}
			}
		}
		if fates == nil {
			fates = cur
			continue
		}
		for i := range fates {
			fates[i] = mergeFates(fates[i], cur[i])
		}
	}
	return fates
}

// mergeFates joins fates across CHA candidates: any disagreement about
// ownership transfer is unsafe to act on, so it degrades to escape.
func mergeFates(a, b fate) fate {
	if a == b {
		return a
	}
	return fateEscaped
}

// isSchedCall reports whether the call's name is one of the deferred
// scheduling entry points (At/After/Schedule), by name so that both *Sim and
// the Engine interface match.
func isSchedCall(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return schedNames[fun.Name]
	case *ast.SelectorExpr:
		return schedNames[fun.Sel.Name]
	}
	return false
}

// funcLit handles a function literal appearing as a value: any held resource
// it captures escapes, and if the literal is handed to a scheduling call the
// capture is defect class (d) — the closure may run after the buffer has
// been recycled.
func (w *walker) funcLit(lit *ast.FuncLit, sched bool) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := w.info().Uses[id].(*types.Var)
		if !ok {
			return true
		}
		vi, tracked := w.env[v]
		if !tracked || vi.st == stNone {
			return true
		}
		if sched && (vi.st == stHeld || vi.st == stMaybe) {
			if w.doReport {
				w.c.report(id.Pos(), "pooled %s buffer %s captured by closure scheduled with At/After/Schedule: it may be recycled before the event fires",
					vi.pool, id.Name)
			}
			vi.st = stEscaped
			w.env[v] = vi
			return true
		}
		// A captured released buffer is a deferred use-after-release;
		// useIdent reports it and escapes the variable either way.
		w.useIdent(id, true)
		return true
	})
}
