// Fixture for the lifetime analyzer, defect class (c): a locally acquired
// buffer that reaches a function exit still held.
package leak

// Pool is a toy frame arena with the registered acquire/release pair.
//
//simlint:pool acquire=Get release=Put
type Pool struct{ free [][]byte }

func (p *Pool) Get(n int) []byte { return make([]byte, n) }
func (p *Pool) Put(b []byte)     { p.free = append(p.free, b) }

func leaks(p *Pool) {
	b := p.Get(16) // want `b acquired from pool Pool is never released, stored, or returned`
	b[0] = 1
}

func leaksOnPath(p *Pool, cond bool) {
	b := p.Get(16) // want `b acquired from pool Pool leaks on some path`
	if cond {
		p.Put(b)
	}
}

// newBuf hands ownership to the caller: a fresh result, not a leak.
func newBuf(p *Pool, n int) []byte {
	b := p.Get(n)
	b[0] = 0
	return b
}

// caller receives the fresh buffer through the summary and releases it.
func caller(p *Pool) {
	b := newBuf(p, 8)
	p.Put(b)
}

// callerLeaks receives the fresh buffer and drops it.
func callerLeaks(p *Pool) {
	b := newBuf(p, 8) // want `b acquired from pool pool is never released, stored, or returned`
	b[0] = 1
}

type stash struct{ bufs [][]byte }

// stores moves ownership into a longer-lived structure: not a leak.
func stores(p *Pool, s *stash) {
	b := p.Get(8)
	s.bufs = append(s.bufs, b)
}
