// Fixture for the lifetime analyzer, defect class (a): a pooled buffer read
// after it was returned to its pool.
package useafter

// Pool is a toy frame arena with the registered acquire/release pair.
//
//simlint:pool acquire=Get release=Put
type Pool struct{ free [][]byte }

func (p *Pool) Get(n int) []byte { return make([]byte, n) }
func (p *Pool) Put(b []byte)     { p.free = append(p.free, b) }

func use(b []byte) {}

func straightLine(p *Pool) byte {
	b := p.Get(64)
	b[0] = 1
	p.Put(b)
	return b[0] // want `use of b after it was released to pool Pool`
}

func conditional(p *Pool, drop bool) {
	b := p.Get(64)
	if drop {
		p.Put(b)
	}
	b[1] = 2 // want `b may be used after release`
	p.Put(b)
}

// spend consumes its argument: every path releases b.
func spend(p *Pool, b []byte) { p.Put(b) }

func useViaHelper(p *Pool) byte {
	b := p.Get(32)
	spend(p, b)
	return b[0] // want `use of b after it was released`
}

// hatchJustified shows the escape hatch: a justified //simlint:lifetime
// marker silences the finding.
func hatchJustified(p *Pool) {
	b := p.Get(64)
	p.Put(b)
	//simlint:lifetime generation-checked read: recycling is detected at fire time
	use(b)
}

func hatchBare(p *Pool) {
	b := p.Get(64)
	p.Put(b)
	use(b) //simlint:lifetime // want `bare //simlint:lifetime marker needs a justification`
}

// clean never misuses the buffer: acquire, fill, release.
func clean(p *Pool) {
	b := p.Get(64)
	b[0] = 1
	use(b)
	p.Put(b)
}
