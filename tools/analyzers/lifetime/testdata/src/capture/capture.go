// Fixture for the lifetime analyzer, defect class (d): a held pooled buffer
// captured by a closure handed to a scheduling call, which may fire after the
// buffer has been recycled.
package capture

// Pool is a toy frame arena with the registered acquire/release pair.
//
//simlint:pool acquire=Get release=Put
type Pool struct{ free [][]byte }

func (p *Pool) Get(n int) []byte { return make([]byte, n) }
func (p *Pool) Put(b []byte)     { p.free = append(p.free, b) }

func sink(b byte) {}

// Engine mirrors the simulator's scheduling surface.
type Engine struct{ pending []func() }

func (e *Engine) After(d int, fn func()) { e.pending = append(e.pending, fn) }
func (e *Engine) At(t int, fn func())    { e.pending = append(e.pending, fn) }

func captures(p *Pool, e *Engine) {
	b := p.Get(64)
	e.After(10, func() {
		sink(b[0]) // want `pooled Pool buffer b captured by closure scheduled with At/After/Schedule`
	})
}

func capturesReleased(p *Pool, e *Engine) {
	b := p.Get(64)
	p.Put(b)
	e.After(10, func() {
		sink(b[0]) // want `use of b after it was released`
	})
}

// storedCallback escapes the buffer into an unscheduled closure: conservative
// silence, not class (d) — nothing proves the callback outlives the buffer.
func storedCallback(p *Pool, cbs *[]func()) {
	b := p.Get(64)
	*cbs = append(*cbs, func() { sink(b[0]) })
}

// capturesCopy is clean: the closure captures a copied byte, not the buffer.
func capturesCopy(p *Pool, e *Engine) {
	b := p.Get(64)
	first := b[0]
	e.After(10, func() { sink(first) })
	p.Put(b)
}
