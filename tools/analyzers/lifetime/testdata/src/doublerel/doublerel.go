// Fixture for the lifetime analyzer, defect class (b): a pooled buffer
// released twice.
package doublerel

// Pool is a toy frame arena with the registered acquire/release pair.
//
//simlint:pool acquire=Get release=Put
type Pool struct{ free [][]byte }

func (p *Pool) Get(n int) []byte { return make([]byte, n) }
func (p *Pool) Put(b []byte)     { p.free = append(p.free, b) }

func double(p *Pool) {
	b := p.Get(32)
	p.Put(b)
	p.Put(b) // want `b released twice to pool Pool`
}

func maybeDouble(p *Pool, cond bool) {
	b := p.Get(32)
	if cond {
		p.Put(b)
	}
	p.Put(b) // want `b may already be released`
}

// spend consumes its argument: the caller's release is the second one.
func spend(p *Pool, b []byte) { p.Put(b) }

func doubleViaHelper(p *Pool) {
	b := p.Get(32)
	spend(p, b)
	p.Put(b) // want `b released twice to pool Pool`
}

// branchesBothRelease is clean: exactly one release on every path.
func branchesBothRelease(p *Pool, cond bool) {
	b := p.Get(32)
	if cond {
		p.Put(b)
		return
	}
	p.Put(b)
}
