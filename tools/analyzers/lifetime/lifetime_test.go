package lifetime_test

import (
	"testing"

	"repro/tools/analyzers/analysis"
	"repro/tools/analyzers/analysistest"
	"repro/tools/analyzers/lifetime"
)

func TestLifetime(t *testing.T) {
	analysis.ResetMarkerUsage()
	analysistest.RunModule(t, analysistest.TestData(), lifetime.Analyzer,
		"useafter", "doublerel", "leak", "capture")
}
