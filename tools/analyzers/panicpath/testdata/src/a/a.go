// Fixture for the panicpath analyzer: panic in wire-handling code is
// flagged; error returns are the accepted shape; shadowing the builtin is
// not confused with it.
package a

import "errors"

var errTruncated = errors.New("truncated")

// badMarshal panics on an unknown input: flagged.
func badMarshal(kind byte, b []byte) []byte {
	switch kind {
	case 1:
		return append(b, 1)
	}
	panic("unknown kind") // want `panic in packet-processing code`
}

// goodMarshal returns an error instead: accepted.
func goodMarshal(kind byte, b []byte) ([]byte, error) {
	switch kind {
	case 1:
		return append(b, 1), nil
	}
	return nil, errTruncated
}

// shadowed calls a local function named panic: not the builtin, accepted.
func shadowed() {
	panic := func(string) {}
	panic("fine")
}
