// Package panicpath forbids panic calls in packet-processing hot paths.
// Wire marshal/unmarshal and forwarding code runs on every simulated frame,
// often on attacker-shaped (fuzzed) input; a reachable panic there takes
// down the whole simulation instead of dropping one malformed packet.
// Hot-path code must return errors and let the caller count a drop.
//
// The driver applies this analyzer only to the wire-handling packages
// (mrmtp, ipstack, ethernet, ipv4, udp, tcp); constructors and test
// harnesses elsewhere may still panic on programmer error. There is
// deliberately no suppression comment: if a condition truly cannot happen,
// returning an error is still cheaper than proving the panic is safe.
package panicpath

import (
	"go/ast"
	"go/types"

	"repro/tools/analyzers/analysis"
)

// Analyzer is the panicpath check.
var Analyzer = &analysis.Analyzer{
	Name: "panicpath",
	Doc:  "flags panic calls in packet-processing hot paths; return an error instead",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			ident, ok := call.Fun.(*ast.Ident)
			if !ok || ident.Name != "panic" {
				return true
			}
			if _, isBuiltin := pass.TypesInfo.Uses[ident].(*types.Builtin); !isBuiltin {
				return true // a local function shadowing the builtin
			}
			pass.Reportf(call.Pos(),
				"panic in packet-processing code can take down the simulation on malformed input; return an error and let the caller drop the packet")
			return true
		})
	}
	return nil, nil
}
