package panicpath_test

import (
	"testing"

	"repro/tools/analyzers/analysistest"
	"repro/tools/analyzers/panicpath"
)

func TestPanicPath(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), panicpath.Analyzer, "a")
}
