// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis driver contract, shaped so that the repo's
// custom analyzers could be ported to the real framework by changing one
// import path. The container this repo builds in has no module proxy access,
// so the framework rides on the standard library only: packages are loaded
// with `go list -deps -export` and type-checked against compiler export data
// (see tools/analyzers/load).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -run filters.
	Name string
	// Doc is a one-paragraph description of what the analyzer rejects.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) (any, error)
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one package's worth of parsed and type-checked input to an
// analyzer, mirroring x/tools' analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// SuppressionComment is the in-source justification marker. A site carrying
// this comment (on its own line immediately above the statement, or trailing
// on the statement's first line) is exempt from the determinism analyzers;
// the text after the marker should say why the site is safe.
const SuppressionComment = "//simlint:deterministic"

// Markers understood by the hot-path contract analyzers (DESIGN.md §9). All
// follow the directive comment convention: no space after //, optional
// justification text after the marker word.
const (
	// HotPathComment marks a function as a hot-path root for the allocfree
	// analyzer. It must appear as a line of the function's doc comment.
	HotPathComment = "//simlint:hotpath"
	// AllocComment exempts one allocating site inside a hot path. The text
	// after the marker must justify the allocation; an empty justification
	// is itself a diagnostic.
	AllocComment = "//simlint:alloc"
	// FrameOwnComment exempts one frame retention or post-handoff mutation
	// site from the framealias analyzer, with a required justification.
	FrameOwnComment = "//simlint:frameown"
	// SharedComment exempts one package-level variable from the sharedstate
	// analyzer, with a required justification.
	SharedComment = "//simlint:shared"
	// ShardSafeComment exempts one partition-boundary crossing (a control
	// closure capturing shard-resident state, or an aliased payload) from
	// the crossshard analyzer, with a required justification. The usual
	// reason is that the site runs at a quiesce barrier with every shard
	// idle — a property the planned barrier-free sync will revoke, which is
	// why each site must say so explicitly.
	ShardSafeComment = "//simlint:shardsafe"
	// ClockSafeComment exempts one cross-domain clock mixing site from the
	// clockdomain analyzer, with a required justification (typically: both
	// clocks are provably equal because the site runs at a quiesce
	// barrier).
	ClockSafeComment = "//simlint:clocksafe"
	// LifetimeComment exempts one pooled-resource lifetime violation site
	// from the lifetime analyzer, with a required justification (typically:
	// the apparent use-after-release is guarded by a generation check, or
	// the leak is intentional warm-up).
	LifetimeComment = "//simlint:lifetime"
	// PoolComment declares a pooled-resource type for the lifetime
	// analyzer. It must appear in the type's doc comment, carrying the
	// acquire and release method names:
	//
	//	//simlint:pool acquire=Get release=Put
	//	type Pool struct { ... }
	PoolComment = "//simlint:pool"
)

// Markers is the registry of every directive the suite understands, used by
// the justify analyzer to reject bare justifications and typoed markers.
// Declarative markers label a site for another analyzer and need no reason;
// justification markers silence a diagnostic and must say why.
var Markers = []struct {
	Comment     string
	Declarative bool
}{
	{SuppressionComment, false},
	{HotPathComment, true},
	{AllocComment, false},
	{FrameOwnComment, false},
	{SharedComment, false},
	{ShardSafeComment, false},
	{ClockSafeComment, false},
	{LifetimeComment, false},
	{PoolComment, true},
}

// markerMatches reports whether comment text is marker, optionally followed
// by a space-separated justification. `//simlint:alloc` matches AllocComment;
// `//simlint:allocator` does not.
func markerMatches(text, marker string) (justification string, ok bool) {
	if text == marker {
		return "", true
	}
	if rest, found := strings.CutPrefix(text, marker+" "); found {
		return strings.TrimSpace(rest), true
	}
	return "", false
}

// MarkerAt looks for a marker comment attached to the node beginning at pos:
// trailing on the same line, or on the line directly above. It returns the
// justification text following the marker and whether the marker was found.
func MarkerAt(fset *token.FileSet, file *ast.File, pos token.Pos, marker string) (justification string, ok bool) {
	line := fset.Position(pos).Line
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			just, match := markerMatches(c.Text, marker)
			if !match {
				continue
			}
			cl := fset.Position(c.Pos()).Line
			if cl == line || cl == line-1 {
				return just, true
			}
		}
	}
	return "", false
}

// FuncMarked reports whether fn's doc comment contains marker as one of its
// lines (the directive must be part of the doc block — a detached comment
// separated by a blank line does not count), returning any justification.
func FuncMarked(fn *ast.FuncDecl, marker string) (justification string, ok bool) {
	if fn.Doc == nil {
		return "", false
	}
	for _, c := range fn.Doc.List {
		if just, match := markerMatches(c.Text, marker); match {
			return just, true
		}
	}
	return "", false
}

// Suppressed reports whether the node beginning at pos carries a
// SuppressionComment in file: either trailing on the same line or on the
// line directly above.
func Suppressed(fset *token.FileSet, file *ast.File, pos token.Pos) bool {
	_, ok := MarkerAt(fset, file, pos, SuppressionComment)
	return ok
}

// FileFor returns the *ast.File in the pass containing pos, or nil.
func (p *Pass) FileFor(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// SuppressedAt reports whether pos carries a suppression comment in its file.
// A found marker is recorded as consulted for the unusedmarker check.
func (p *Pass) SuppressedAt(pos token.Pos) bool {
	f := p.FileFor(pos)
	if f == nil || !Suppressed(p.Fset, f, pos) {
		return false
	}
	RecordMarkerUse(p.Fset, pos, SuppressionComment)
	return true
}

// MarkedAt looks for marker attached to pos in its file (same line or line
// above), returning the justification text and whether it was found. A found
// marker is recorded as consulted for the unusedmarker check.
func (p *Pass) MarkedAt(pos token.Pos, marker string) (justification string, ok bool) {
	f := p.FileFor(pos)
	if f == nil {
		return "", false
	}
	just, ok := MarkerAt(p.Fset, f, pos, marker)
	if ok {
		RecordMarkerUse(p.Fset, pos, marker)
	}
	return just, ok
}
