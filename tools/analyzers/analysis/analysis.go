// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis driver contract, shaped so that the repo's
// custom analyzers could be ported to the real framework by changing one
// import path. The container this repo builds in has no module proxy access,
// so the framework rides on the standard library only: packages are loaded
// with `go list -deps -export` and type-checked against compiler export data
// (see tools/analyzers/load).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -run filters.
	Name string
	// Doc is a one-paragraph description of what the analyzer rejects.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) (any, error)
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one package's worth of parsed and type-checked input to an
// analyzer, mirroring x/tools' analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// SuppressionComment is the in-source justification marker. A site carrying
// this comment (on its own line immediately above the statement, or trailing
// on the statement's first line) is exempt from the determinism analyzers;
// the text after the marker should say why the site is safe.
const SuppressionComment = "//simlint:deterministic"

// Suppressed reports whether the node beginning at pos carries a
// SuppressionComment in file: either trailing on the same line or on the
// line directly above.
func Suppressed(fset *token.FileSet, file *ast.File, pos token.Pos) bool {
	line := fset.Position(pos).Line
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, SuppressionComment) {
				continue
			}
			cl := fset.Position(c.Pos()).Line
			if cl == line || cl == line-1 {
				return true
			}
		}
	}
	return false
}

// FileFor returns the *ast.File in the pass containing pos, or nil.
func (p *Pass) FileFor(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// SuppressedAt reports whether pos carries a suppression comment in its file.
func (p *Pass) SuppressedAt(pos token.Pos) bool {
	f := p.FileFor(pos)
	return f != nil && Suppressed(p.Fset, f, pos)
}
