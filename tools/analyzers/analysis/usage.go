package analysis

import (
	"fmt"
	"go/token"
)

// This file tracks which justification markers actually suppressed (or
// anchored) a finding during a run. Every analyzer that honors a marker
// records the consultation here; the unusedmarker check then reports the
// markers nothing consulted — stale suppressions whose finding has moved or
// disappeared, which would otherwise silence future regressions unread.
//
// The registry is process-global because a driver run is single-threaded and
// analyzers have no shared pass state to thread it through; tests call
// ResetMarkerUsage to isolate themselves.

// markerUses keys are "file:line:marker" for the SITE line the analyzer
// consulted (the statement the marker is attached to).
var markerUses = map[string]bool{}

func usageKey(fset *token.FileSet, pos token.Pos, marker string) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d:%s", p.Filename, p.Line, marker)
}

// RecordMarkerUse notes that an analyzer consulted marker at the site
// beginning at pos — whether it suppressed a finding or anchored a
// bare-marker diagnostic, the marker is live, not stale.
func RecordMarkerUse(fset *token.FileSet, pos token.Pos, marker string) {
	markerUses[usageKey(fset, pos, marker)] = true
}

// MarkerUsedAt reports whether any analyzer consulted the marker comment
// whose own position is commentPos. MarkerAt attaches a comment to a site on
// the same line or the line below, so the comment was used if a consultation
// was recorded on either.
func MarkerUsedAt(fset *token.FileSet, commentPos token.Pos, marker string) bool {
	p := fset.Position(commentPos)
	if markerUses[fmt.Sprintf("%s:%d:%s", p.Filename, p.Line, marker)] {
		return true
	}
	return markerUses[fmt.Sprintf("%s:%d:%s", p.Filename, p.Line+1, marker)]
}

// ResetMarkerUsage clears the registry (test isolation).
func ResetMarkerUsage() {
	markerUses = map[string]bool{}
}
