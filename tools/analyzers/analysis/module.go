package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// This file extends the single-package driver contract with module-wide
// passes. The interprocedural analyzers (crossshard, clockdomain) need every
// loaded source package at once: a control closure in internal/chaos can
// capture a helper's return value whose allocation site lives in
// internal/simnet, and only a cross-package view can connect the two.

// PackageUnit is one loaded package inside a module pass. All units of a
// pass share a single token.FileSet (the loader parses every target into
// one), so positions are comparable across packages.
type PackageUnit struct {
	ImportPath string
	Files      []*ast.File
	Pkg        *types.Package
	TypesInfo  *types.Info
}

// ModuleAnalyzer is a static check that runs once over the whole loaded
// package set instead of once per package.
type ModuleAnalyzer struct {
	// Name identifies the analyzer in diagnostics and -run filters.
	Name string
	// Doc is a one-paragraph description of what the analyzer rejects.
	Doc string
	// Run applies the analyzer to the module.
	Run func(*ModulePass) (any, error)
}

// ModulePass carries every loaded package to a module analyzer.
type ModulePass struct {
	Analyzer *ModuleAnalyzer
	Fset     *token.FileSet
	Units    []*PackageUnit
	// ReportIn, when non-nil, restricts diagnostics: the driver sets it so
	// an analyzer only reports inside the packages it was asked to check,
	// even though it reads the whole module for call graphs and summaries.
	ReportIn func(importPath string) bool
	Report   func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos, attributed to the unit the
// position belongs to; it is dropped when ReportIn rejects that unit.
func (p *ModulePass) Reportf(unit *PackageUnit, pos token.Pos, format string, args ...any) {
	if p.ReportIn != nil && unit != nil && !p.ReportIn(unit.ImportPath) {
		return
	}
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// UnitFor returns the unit containing pos, or nil.
func (p *ModulePass) UnitFor(pos token.Pos) *PackageUnit {
	for _, u := range p.Units {
		if u.FileFor(pos) != nil {
			return u
		}
	}
	return nil
}

// FileFor returns the *ast.File in the unit containing pos, or nil.
func (u *PackageUnit) FileFor(pos token.Pos) *ast.File {
	for _, f := range u.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// MarkedAt looks for marker attached to pos (same line or the line above) in
// the unit's files, returning the justification text and whether it was
// found. A found marker is recorded as consulted for the unusedmarker check.
func (u *PackageUnit) MarkedAt(fset *token.FileSet, pos token.Pos, marker string) (justification string, ok bool) {
	f := u.FileFor(pos)
	if f == nil {
		return "", false
	}
	just, ok := MarkerAt(fset, f, pos, marker)
	if ok {
		RecordMarkerUse(fset, pos, marker)
	}
	return just, ok
}
