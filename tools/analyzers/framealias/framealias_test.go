package framealias_test

import (
	"testing"

	"repro/tools/analyzers/analysistest"
	"repro/tools/analyzers/framealias"
)

func TestFrameAlias(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), framealias.Analyzer, "a")
}
