// Package framealias enforces frame-buffer ownership at the simnet boundary
// (DESIGN.md §9). Port.Send takes ownership of its frame argument: the
// simulator holds the slice until delivery, so the sender must neither keep
// a second reference nor write through the buffer again. The analyzer is
// intra-procedural, the same altitude as maporder: within one function body
// it builds alias sets over []byte locals (assignments, reslices, and
// capacity-sharing appends alias; call results and `append([]byte(nil), …)`
// copies are fresh) and then checks every alias set handed to
// (*simnet.Port).Send for two violations:
//
//   - retention: a member of the set is stored into a struct field, map or
//     slice element, or appended into a collection, anywhere in the body
//     (flow-insensitive — conditional retention of a sent buffer is exactly
//     the aliasing bug this pass exists to catch);
//   - mutation after handoff: at a source position after the Send, a member
//     is written through — index assignment, copy destination, append
//     reuse, or an in-place marshal helper (PutHeader, ipv4.Forward).
//
// The escape hatch is `//simlint:frameown <why>` on the offending line (or
// the line above); the justification text is mandatory.
package framealias

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/tools/analyzers/analysis"
)

// Analyzer is the frame-ownership check.
var Analyzer = &analysis.Analyzer{
	Name: "framealias",
	Doc:  "flags frame buffers retained or mutated after being handed to simnet delivery",
	Run:  run,
}

// mutators are in-place marshal helpers that write through their first
// argument; calling one on a handed-off buffer is a mutation.
var mutators = map[string]bool{"PutHeader": true, "Forward": true}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fn, ok := d.(*ast.FuncDecl); ok && fn.Body != nil {
				checkFunc(pass, fn)
			}
		}
	}
	return nil, nil
}

// aliases is a union-find over the []byte objects of one function body.
type aliases struct{ parent map[types.Object]types.Object }

func (a *aliases) find(o types.Object) types.Object {
	p, ok := a.parent[o]
	if !ok || p == o {
		return o
	}
	r := a.find(p)
	a.parent[o] = r
	return r
}

func (a *aliases) union(x, y types.Object) {
	rx, ry := a.find(x), a.find(y)
	if rx != ry {
		a.parent[rx] = ry
	}
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	al := &aliases{parent: map[types.Object]types.Object{}}

	// Pass 1: build alias sets from assignments and declarations.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				lo := identObj(pass, lhs)
				ro := aliasBase(pass, n.Rhs[i])
				if lo != nil && ro != nil && isByteSlice(lo.Type()) {
					al.union(lo, ro)
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if i >= len(n.Values) {
					break
				}
				lo := identObj(pass, name)
				ro := aliasBase(pass, n.Values[i])
				if lo != nil && ro != nil && isByteSlice(lo.Type()) {
					al.union(lo, ro)
				}
			}
		}
		return true
	})

	// Pass 2: find handoffs — the earliest Send position per alias set.
	handedOff := map[types.Object]token.Pos{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isPortSend(pass, call) {
			return true
		}
		for _, arg := range call.Args {
			base := aliasBase(pass, arg)
			if base == nil {
				continue
			}
			root := al.find(base)
			if prev, ok := handedOff[root]; !ok || call.Pos() < prev {
				handedOff[root] = call.Pos()
			}
		}
		return true
	})
	if len(handedOff) == 0 {
		return
	}
	sent := func(e ast.Expr) (types.Object, token.Pos, bool) {
		base := aliasBase(pass, e)
		if base == nil {
			return nil, token.NoPos, false
		}
		pos, ok := handedOff[al.find(base)]
		return base, pos, ok
	}

	// Pass 3: violations.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				// Retention: member stored into a field, map, or slice
				// element (flow-insensitive).
				switch ast.Unparen(lhs).(type) {
				case *ast.SelectorExpr, *ast.IndexExpr:
					if obj, _, ok := sent(n.Rhs[i]); ok {
						report(pass, n.Pos(), "frame %s is handed to simnet but retained in %s",
							obj.Name(), types.ExprString(lhs))
					}
				}
				// Mutation after handoff: index assignment through a member.
				if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					if obj, sendPos, ok := sent(ix.X); ok && n.Pos() > sendPos {
						report(pass, n.Pos(), "frame %s is mutated after being handed to simnet", obj.Name())
					}
				}
			}
		case *ast.CallExpr:
			checkCall(pass, n, al, handedOff, sent)
		}
		return true
	})
}

// checkCall flags retention-by-append and mutation-by-call on handed-off
// buffers.
func checkCall(pass *analysis.Pass, call *ast.CallExpr, al *aliases, handedOff map[types.Object]token.Pos, sent func(ast.Expr) (types.Object, token.Pos, bool)) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch pass.TypesInfo.Uses[fun] {
		case types.Universe.Lookup("append"):
			if len(call.Args) == 0 {
				return
			}
			// append(container, member): retention unless the container is
			// the member's own set (that case is a post-handoff reuse,
			// checked below).
			containerBase := aliasBase(pass, call.Args[0])
			for _, arg := range call.Args[1:] {
				obj, _, ok := sent(arg)
				if !ok {
					continue
				}
				if containerBase != nil && al.find(containerBase) == al.find(obj) {
					continue
				}
				report(pass, call.Pos(), "frame %s is handed to simnet but appended into %s",
					obj.Name(), types.ExprString(call.Args[0]))
			}
			if obj, sendPos, ok := sent(call.Args[0]); ok && call.Pos() > sendPos {
				report(pass, call.Pos(), "frame %s is reused by append after being handed to simnet", obj.Name())
			}
		case types.Universe.Lookup("copy"):
			if len(call.Args) == 2 {
				if obj, sendPos, ok := sent(call.Args[0]); ok && call.Pos() > sendPos {
					report(pass, call.Pos(), "frame %s is overwritten by copy after being handed to simnet", obj.Name())
				}
			}
		}
	case *ast.SelectorExpr:
		if mutators[fun.Sel.Name] && len(call.Args) > 0 {
			if obj, sendPos, ok := sent(call.Args[0]); ok && call.Pos() > sendPos {
				report(pass, call.Pos(), "frame %s is rewritten by %s after being handed to simnet",
					obj.Name(), fun.Sel.Name)
			}
		}
	}
}

// identObj resolves a plain identifier expression to its object.
func identObj(pass *analysis.Pass, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Uses[id]
}

// aliasBase resolves an expression to the tracked []byte variable whose
// backing array it may share, or nil for fresh or untracked storage.
func aliasBase(pass *analysis.Pass, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := identObj(pass, e)
		if obj != nil && isByteSlice(obj.Type()) {
			if _, isVar := obj.(*types.Var); isVar {
				return obj
			}
		}
	case *ast.SliceExpr:
		return aliasBase(pass, e.X)
	case *ast.CallExpr:
		// append may return the first argument's backing array; every other
		// call result is fresh. append([]byte(nil), …) is the copy idiom.
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			if pass.TypesInfo.Uses[id] == types.Universe.Lookup("append") && len(e.Args) > 0 {
				return aliasBase(pass, e.Args[0])
			}
		}
	}
	return nil
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint8
}

// isPortSend reports whether call invokes (*simnet.Port).Send.
func isPortSend(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Name() != "Send" {
		return false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Name() != "Port" || named.Obj().Pkg() == nil {
		return false
	}
	return strings.HasSuffix(named.Obj().Pkg().Path(), "internal/simnet")
}

// report emits one diagnostic unless the site carries a justified
// //simlint:frameown marker.
func report(pass *analysis.Pass, pos token.Pos, format string, args ...any) {
	just, marked := pass.MarkedAt(pos, analysis.FrameOwnComment)
	if marked {
		if just == "" {
			pass.Reportf(pos, "%s requires a written justification", analysis.FrameOwnComment)
		}
		return
	}
	pass.Reportf(pos, format+"; hand off a copy or justify with "+analysis.FrameOwnComment+" <why>", args...)
}
