// Fixture for the framealias analyzer: buffers handed to
// (*simnet.Port).Send must not be retained elsewhere nor written after the
// handoff. Copies, pre-handoff writes, and justified sites pass.
package a

import "repro/internal/simnet"

type state struct {
	last    []byte
	pending [][]byte
	byDst   map[int][]byte
}

type hdr struct{}

func (hdr) PutHeader(b []byte) { _ = b }

func mutateAfter(p *simnet.Port, buf []byte) {
	p.Send(buf)
	buf[0] = 1 // want `frame buf is mutated after being handed to simnet`
}

func retainField(s *state, p *simnet.Port, buf []byte) {
	s.last = buf // want `frame buf is handed to simnet but retained in s\.last`
	p.Send(buf)
}

func retainMap(s *state, p *simnet.Port, buf []byte) {
	p.Send(buf)
	s.byDst[7] = buf // want `frame buf is handed to simnet but retained in s\.byDst\[7\]`
}

func retainAppend(s *state, p *simnet.Port, buf []byte) {
	s.pending = append(s.pending, buf) // want `frame buf is handed to simnet but appended into s\.pending`
	p.Send(buf)
}

func aliasThroughReslice(p *simnet.Port, buf []byte) {
	tail := buf[2:]
	p.Send(tail)
	buf[0] = 1 // want `frame buf is mutated after being handed to simnet`
}

func copyAfter(p *simnet.Port, buf, next []byte) {
	p.Send(buf)
	copy(buf, next) // want `frame buf is overwritten by copy after being handed to simnet`
}

func appendReuse(p *simnet.Port, buf []byte) {
	p.Send(buf)
	buf = append(buf, 0) // want `frame buf is reused by append after being handed to simnet`
	_ = buf
}

func marshalAfter(p *simnet.Port, buf []byte) {
	var h hdr
	p.Send(buf)
	h.PutHeader(buf) // want `frame buf is rewritten by PutHeader after being handed to simnet`
}

// sendCopy is the blessed pattern: the handed-off buffer is a fresh copy,
// so the original stays ours.
func sendCopy(p *simnet.Port, buf []byte) {
	p.Send(append([]byte(nil), buf...))
	buf[0] = 1
}

// writeThenSend composes the frame first — ownership transfers at Send, not
// before.
func writeThenSend(p *simnet.Port, buf []byte) {
	var h hdr
	h.PutHeader(buf)
	buf[0] = 5
	p.Send(buf)
}

func justified(s *state, p *simnet.Port, buf []byte) {
	//simlint:frameown queued and sent on exclusive branches; ownership moves with the branch
	s.last = buf
	p.Send(buf)
	//simlint:frameown
	buf[0] = 1 // want `simlint:frameown requires a written justification`
}
