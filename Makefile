# Developer entry points. The repo is pure Go with no generated code, so
# every target is a thin wrapper around the go tool.

GO ?= go

.PHONY: all build test vet race bench figures check

all: check

build:
	$(GO) build ./...

# test is the tier-1 gate: it must stay green on every commit.
test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race runs the full suite under the race detector. The parallel trial
# harness (internal/harness/pool.go) is the main concurrency in the repo;
# this target is what validates it.
race:
	$(GO) test -race ./...

# bench regenerates the paper's figures (one trial per cell; raise
# -benchtime for averaged numbers).
bench:
	$(GO) test -bench 'Fig|Ablation|Scale' -benchtime 1x -run '^$$' .

# figures prints the full evaluation grids via the CLI driver.
figures:
	$(GO) run ./cmd/closlab -experiment all

check: build vet test race
