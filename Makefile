# Developer entry points. The repo is pure Go with no generated code, so
# every target is a thin wrapper around the go tool.

GO ?= go

.PHONY: all build test vet lint analyzers invariants race bench bench-hotpath bench-partition bench-partition-smoke bench-fluid fluid-smoke figures fuzz-smoke chaos-smoke trace-smoke check

all: check

build:
	$(GO) build ./...

# test is the tier-1 gate: it must stay green on every commit.
test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint enforces the determinism contract (DESIGN.md §8), the hot-path
# contract (DESIGN.md §9), and the partition-safety contract (DESIGN.md
# §13) with the repo's own analyzers — map iteration order,
# wall-clock/global-rand use, panics in packet-processing code, hot-path
# allocation discipline, frame ownership, trial purity, justified escape
# hatches, cross-shard ownership, and clock-domain hygiene.
# staticcheck runs too when installed; it is not vendored, so a bare
# container skips it rather than failing.
lint:
	$(GO) run ./cmd/simlint ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./... ; \
	else \
		echo "staticcheck not installed; skipping" ; \
	fi

# analyzers runs everything under tools/ — the lint passes' golden-fixture
# suites plus the loader/callgraph/dataflow infrastructure tests — and the
# simlint driver's exit-status/schema tests (also covered by `make test`;
# this target is the fast inner loop when writing a pass).
analyzers:
	$(GO) test ./tools/... ./cmd/simlint/...

# invariants runs the suite with runtime assertions compiled in: event-heap
# ordering, MR-MTP VID-table consistency, and FIB next-hop validity panic on
# violation instead of silently corrupting a result.
invariants:
	$(GO) test -tags invariants ./...

# race runs the full suite under the race detector. The parallel trial
# harness (internal/harness/pool.go) is the main concurrency in the repo;
# this target is what validates it.
race:
	$(GO) test -race ./...

# bench regenerates the paper's figures (one trial per cell; raise
# -benchtime for averaged numbers).
bench:
	$(GO) test -bench 'Fig|Ablation|Scale' -benchtime 1x -run '^$$' .

# bench-hotpath records the frame arena's alloc win instead of asserting
# it from memory: the event-loop/delivery/timer benchmarks print ns/op and
# allocs/op for the hottest paths, and the AllocsPerRun budget tests (TX
# encap, IP ingress, RX decap, forwarding, keep-alive) pin the per-frame
# allocation counts the pooled buffers bought.
bench-hotpath:
	$(GO) test -bench 'EventLoop|FrameDelivery|TimerResetChurn' -benchtime 1000x -benchmem -run 'Allocs$$' ./internal/simnet ./internal/ipstack ./internal/mrmtp

# bench-partition times the space-parallel engine at 1/2/4/8 shards on an
# 8-PoD fabric and writes BENCH_partition.json (ns per simulated second,
# speedup vs sequential, GOMAXPROCS — speedup > 1 needs a multi-core host).
# Rows where shards exceed GOMAXPROCS are marked "degraded": true and warn
# on stderr — they measure synchronization overhead, not speedup.
bench-partition:
	$(GO) run ./cmd/closlab -experiment bench-partition -trials 3

# bench-partition-smoke is the one-iteration tripwire wired into `make
# check`: the sweep (including the 8-shard build) must run end to end, the
# numbers land in a scratch file.
bench-partition-smoke:
	$(GO) run ./cmd/closlab -experiment bench-partition -trials 1 -bench-out /tmp/closlab-bench-partition.json

# bench-fluid compares the packet engine against the hybrid flow-level
# engine at 10^3..10^6 flows on the 2-PoD fabric and writes
# BENCH_fluid.json (flows per wall-second, ns per simulated second; packet
# rows stop at 10^4 where per-packet event cost becomes the bottleneck the
# fluid engine removes).
bench-fluid:
	$(GO) run ./cmd/closlab -experiment bench-fluid -pods 2

# fluid-smoke is the race-enabled tripwire wired into `make check`: one
# hybrid workload trial end to end — path resolution, rate reallocation,
# demotion to the packet path, and the engine-tagged artifacts.
fluid-smoke:
	$(GO) run -race ./cmd/closlab -experiment workload -engine hybrid -pods 2 -trials 1 -flows 60 -out /tmp/closlab-fluid-smoke

# figures prints the full evaluation grids via the CLI driver.
figures:
	$(GO) run ./cmd/closlab -experiment all

# chaos-smoke runs one short fault-injection campaign per scenario class
# under the race detector: the full catalog on the 2-PoD fabric, one trial
# per cell, artifacts to a scratch directory. A tripwire for the injector
# and the per-direction impairment plumbing, not a statistics run.
chaos-smoke:
	$(GO) run -race ./cmd/closlab -experiment chaos -pods 2 -trials 1 -out /tmp/closlab-chaos-smoke

# trace-smoke runs the in-fabric observability campaign under the race
# detector: every trace-catalog gray-failure scenario against both
# protocols on the 2-PoD fabric, one trial per cell, artifacts to a
# scratch directory. A tripwire for the prober fleet, the localizer, and
# the trace artifact writers, not a statistics run.
trace-smoke:
	$(GO) run -race ./cmd/closlab -experiment trace -pods 2 -trials 1 -out /tmp/closlab-trace-smoke

# fuzz-smoke gives each wire-decoder fuzz target a short budget on top of
# its checked-in seed corpus — a regression tripwire, not a campaign.
FUZZ_TIME ?= 5s
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzUnmarshal -fuzztime $(FUZZ_TIME) ./internal/ethernet
	$(GO) test -run '^$$' -fuzz FuzzUnmarshal -fuzztime $(FUZZ_TIME) ./internal/ipv4
	$(GO) test -run '^$$' -fuzz FuzzUnmarshal -fuzztime $(FUZZ_TIME) ./internal/udp
	$(GO) test -run '^$$' -fuzz FuzzParseMessage -fuzztime $(FUZZ_TIME) ./internal/mrmtp
	$(GO) test -run '^$$' -fuzz FuzzParseMessage -fuzztime $(FUZZ_TIME) ./internal/bgp

check: build vet lint test race bench-partition-smoke trace-smoke fluid-smoke
