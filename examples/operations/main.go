// Operations: the day-2 tooling view of the fabric. Brings up MR-MTP,
// pings and traceroutes across it, dumps the operator tables
// (neighbors/VIDs/unreachable), injects a failure while journaling raw
// router logs, re-analyzes the logs offline, and writes a pcap any
// Wireshark can open.
//
//	go run ./examples/operations
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/capture"
	"repro/internal/harness"
	"repro/internal/routerlog"
	"repro/internal/topology"
)

func main() {
	journal := &routerlog.Journal{}
	opts := harness.DefaultOptions(topology.TwoPodSpec(), harness.ProtoMRMTP, 33)
	opts.Journal = journal
	fabric, err := harness.Build(opts)
	if err != nil {
		log.Fatal(err)
	}
	var pcap capture.Recorder
	pcap.TapAll(fabric.Sim)
	if err := fabric.WarmUp(harness.WarmupTime); err != nil {
		log.Fatal(err)
	}

	// Reachability checks, as an operator would run them.
	res, _ := harness.Ping(fabric, 11, 14, time.Second)
	fmt.Printf("ping 192.168.11.1 -> 192.168.14.1: ok=%v rtt=%v\n", res.OK, res.RTT)
	hops, _ := harness.Traceroute(fabric, 11, 14, 8)
	fmt.Printf("traceroute (the fabric is one IP hop under MR-MTP):\n%s\n", harness.RenderHops(hops))

	// The operator tables.
	fmt.Println(fabric.Routers["S-1-1"].Summary())
	fmt.Print(fabric.Routers["S-1-1"].RenderNeighbors())
	fmt.Println()

	// Journal a failure and re-derive the metrics from the raw logs —
	// exactly the paper's §VI.B measurement pipeline.
	journal.Lines = nil
	failAt, _ := fabric.Fail(topology.TC1)
	fabric.Sim.RunFor(2 * time.Second)
	lines, err := routerlog.Parse(journal.Render())
	if err != nil {
		log.Fatal(err)
	}
	a, err := routerlog.Analyze(lines)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("from raw logs: failure at %v, convergence %v, %d B in %d updates, blast %d\n",
		a.FailureAt, a.Convergence, a.ControlBytes, a.ControlMsgs, a.BlastRadius)
	mem := fabric.Log.Analyze(failAt)
	fmt.Printf("in-memory:     convergence %v, %d B in %d updates, blast %d (must match)\n",
		mem.Convergence, mem.ControlBytes, mem.ControlMessages, mem.BlastRadius)

	// Export everything that crossed the wires.
	out, err := os.CreateTemp("", "mrmtp-*.pcap")
	if err != nil {
		log.Fatal(err)
	}
	if err := pcap.WritePCAP(out); err != nil {
		log.Fatal(err)
	}
	out.Close()
	fmt.Printf("\nwrote %d frames to %s (open it in Wireshark; MR-MTP is ethertype 0x8850)\n",
		pcap.Count(), out.Name())
}
