// Failover: inject the paper's TC1 interface failure into an MR-MTP fabric
// while traffic flows, and watch Quick-to-Detect / Slow-to-Accept at work —
// detection inside one dead-timer period, a handful of 18-byte LOST
// updates, and dampened re-admission after the interface returns.
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/harness"
	"repro/internal/topology"
	"repro/internal/trafficgen"
)

func main() {
	fabric, err := harness.Build(harness.DefaultOptions(topology.TwoPodSpec(), harness.ProtoMRMTP, 7))
	if err != nil {
		log.Fatal(err)
	}
	if err := fabric.WarmUp(harness.WarmupTime); err != nil {
		log.Fatal(err)
	}

	// Traffic from the server at ToR 11 to the server at ToR 14, steered
	// across the L-1-1 / S-1-1 / T-1 column that the failure will hit.
	src, srcDev, _ := fabric.ServerStack(11, 1)
	dst, dstDev, _ := fabric.ServerStack(14, 1)
	cfg := trafficgen.DefaultConfig(srcDev.IP, dstDev.IP)
	cfg.SrcPort = harness.PickFlowPort(fabric, cfg)
	sender := trafficgen.NewSender(src, cfg)
	receiver := trafficgen.NewReceiver(dst, cfg.DstPort)
	sender.Start()
	fabric.Sim.RunFor(time.Second)

	fp, _ := fabric.Topo.FailurePoint(topology.TC1)
	fmt.Printf("t=%v  failing %s port %d (TC1: the ToR's own uplink — the ToR sees\n"+
		"        carrier loss instantly; S-1-1 only finds out via the 100 ms dead timer)\n",
		fabric.Sim.Now(), fp.Device, fp.Port)
	failAt, _ := fabric.Fail(topology.TC1)
	fabric.Sim.RunFor(2 * time.Second)

	a := fabric.Log.Analyze(failAt)
	fmt.Printf("\nconvergence:      %v after the failure\n", a.Convergence)
	fmt.Printf("blast radius:     %d routers updated their tables: %v\n", a.BlastRadius, a.UpdatedNodes)
	fmt.Printf("control overhead: %d bytes in %d LOST updates\n", a.ControlBytes, a.ControlMessages)
	fmt.Println("\npost-failure update timeline:")
	for _, e := range fabric.Log.Timeline(failAt) {
		fmt.Printf("  +%8v  %s\n", e.At-failAt, e.What)
	}

	// The other ToRs have recorded "this port cannot be used for traffic
	// destined to VID 11" — the paper's §VII.B description.
	for _, name := range []string{"L-1-2", "L-2-1", "L-2-2"} {
		r := fabric.Routers[name]
		fmt.Printf("%s: uplink 1 unreachable for VID 11? %v\n", name, r.UnreachableVia(1, 11))
	}

	fmt.Println("\nrestoring the interface; Slow-to-Accept requires three clean hellos")
	fabric.Sim.Node(fp.Device).Port(fp.Port).Restore()
	fabric.Sim.RunFor(3 * time.Second)
	if err := fabric.CheckConverged(); err != nil {
		log.Fatalf("fabric did not re-form: %v", err)
	}
	fmt.Println("meshed trees re-formed; fabric converged")

	sender.Stop()
	fabric.Sim.RunFor(100 * time.Millisecond)
	rep := receiver.Report(sender)
	fmt.Printf("\ntraffic report: sent=%d received=%d lost=%d duplicated=%d out-of-order=%d\n",
		rep.Sent, rep.Received, rep.Lost, rep.Duplicated, rep.OutOfOrder)
	fmt.Println("(near-zero loss is the paper's Fig. 7 point for TC1: the sending ToR saw the")
	fmt.Println(" carrier drop itself and rehashed the flow instantly; a TC2 failure instead")
	fmt.Println(" costs roughly rate × dead timer ≈ 333 pps × 100 ms ≈ 33 packets — see")
	fmt.Println(" examples/protocol-compare)")
}
