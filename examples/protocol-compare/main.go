// Protocol comparison: run the paper's headline experiment head-to-head —
// a TC2 interface failure under MR-MTP, BGP/ECMP, and BGP/ECMP/BFD — and
// print the Figs. 4-7 metrics side by side. TC2 is the case where the
// traffic-forwarding neighbor is unaware of the failure, so the dead timers
// (100 ms vs 3 s vs 300 ms) show up directly as packet loss.
//
//	go run ./examples/protocol-compare
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/harness"
	"repro/internal/topology"
)

func main() {
	type row struct {
		proto       harness.Protocol
		convergence time.Duration
		blast       int
		control     int
		lost        uint64
	}
	var rows []row
	for _, proto := range []harness.Protocol{harness.ProtoMRMTP, harness.ProtoBGP, harness.ProtoBGPBFD} {
		opts := harness.DefaultOptions(topology.TwoPodSpec(), proto, 21)
		fr, err := harness.RunFailure(opts, topology.TC2)
		if err != nil {
			log.Fatalf("%v: %v", proto, err)
		}
		lr, err := harness.RunLoss(opts, topology.TC2, false)
		if err != nil {
			log.Fatalf("%v: %v", proto, err)
		}
		rows = append(rows, row{proto, fr.Convergence, fr.BlastRadius, fr.ControlBytes, lr.Report.Lost})
	}

	fmt.Println("TC2 interface failure (S-1-1's downlink to ToR 11), 2-PoD fabric:")
	fmt.Printf("%-14s %14s %8s %12s %10s\n", "protocol", "convergence", "blast", "ctl bytes", "pkts lost")
	for _, r := range rows {
		fmt.Printf("%-14s %14v %8d %12d %10d\n", r.proto, r.convergence, r.blast, r.control, r.lost)
	}

	// The Fig.-1 protocol-stack difference, made visible: traceroute.
	fmt.Println("\ntraceroute 192.168.11.1 -> 192.168.14.1:")
	for _, proto := range []harness.Protocol{harness.ProtoBGP, harness.ProtoMRMTP} {
		f, err := harness.Build(harness.DefaultOptions(topology.TwoPodSpec(), proto, 21))
		if err != nil {
			log.Fatal(err)
		}
		if err := f.WarmUp(harness.WarmupTime); err != nil {
			log.Fatal(err)
		}
		hops, err := harness.Traceroute(f, 11, 14, 10)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--- %s ---\n%s", proto, harness.RenderHops(hops))
	}
	fmt.Println("(the MR-MTP fabric carries IP opaquely: five routers appear as one hop)")

	fmt.Println(`
Reading the table the way the paper does:
  - Packet loss tracks the detection timer of whoever keeps forwarding into
    the dead interface: MR-MTP's 100 ms dead timer loses ~30 packets at
    333 pps, BFD's 300 ms loses ~100, and plain BGP's 3 s hold timer loses
    the better part of a thousand.
  - Convergence at TC2 is tiny for every protocol because the router owning
    the failed interface disseminates updates immediately.
  - Blast radius is protocol-determined, not timer-determined: BFD changes
    nothing there, while MR-MTP touches only the ToRs that must stop using
    one uplink for one destination VID.
  - Control overhead: a handful of 18-byte MR-MTP LOST frames versus BGP
    withdrawals wrapped in TCP/IP.`)
}
