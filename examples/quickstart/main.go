// Quickstart: bring up the paper's 2-PoD folded-Clos fabric under MR-MTP,
// watch the meshed trees form, and send traffic between servers.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/harness"
	"repro/internal/netaddr"
	"repro/internal/topology"
	"repro/internal/udp"
)

func main() {
	// The entire MR-MTP configuration is the paper's Listing-2 JSON:
	// device tiers plus each ToR's rack-facing port.
	spec := topology.TwoPodSpec()
	fabric, err := harness.Build(harness.DefaultOptions(spec, harness.ProtoMRMTP, 1))
	if err != nil {
		log.Fatal(err)
	}
	cfg, _ := fabric.Topo.MRMTPConfig().Render()
	fmt.Println("MR-MTP fabric-wide configuration (paper Listing 2):")
	fmt.Println(string(cfg))

	// Let the meshed trees form. MR-MTP needs no routing protocol: VIDs
	// propagate root-to-top in a few round trips.
	fabric.Start()
	fabric.Sim.RunFor(time.Second)
	if err := fabric.CheckConverged(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("VID tables after convergence (paper Fig. 2):")
	for _, name := range []string{"S-1-1", "S-1-2", "T-1", "T-4"} {
		fmt.Printf("--- %s ---\n%s", name, fabric.Routers[name].RenderVIDTable())
	}

	// Send IP packets between the paper's example servers: 192.168.11.1
	// behind ToR VID 11 and 192.168.14.1 behind ToR VID 14. The servers
	// speak plain IP; the fabric carries MR-MTP encapsulation.
	src, srcDev, _ := fabric.ServerStack(11, 1)
	dst, dstDev, _ := fabric.ServerStack(14, 1)
	delivered := 0
	dst.ListenUDP(7, func(from, _ netaddr.IPv4, dg udp.Datagram) {
		delivered++
		fmt.Printf("  %s received %q from %s\n", dstDev.IP, dg.Payload, from)
	})
	for i := 0; i < 3; i++ {
		src.SendUDP(srcDev.IP, dstDev.IP, 9000+uint16(i), 7, []byte(fmt.Sprintf("hello #%d", i)))
	}
	fabric.Sim.RunFor(100 * time.Millisecond)
	fmt.Printf("\ndelivered %d/3 packets across the fabric (src ToR encapsulates, "+
		"spines forward by VID, dst ToR decapsulates)\n", delivered)
}
