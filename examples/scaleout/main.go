// Scale-out: the paper's §IX future work asks how MR-MTP behaves as the
// DCN grows beyond 4 PoDs. This example sweeps fabric sizes, measuring
// convergence after a TC1-style failure, control overhead, and per-router
// state — the auto-assigned VIDs need no extra configuration at any size
// (the paper's "benefits increase multiplicatively as the DCN size
// increases" claim, checked).
//
//	go run ./examples/scaleout
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/harness"
	"repro/internal/topology"
)

func main() {
	fmt.Printf("%5s %8s %8s %14s %10s %12s %12s\n",
		"pods", "routers", "servers", "convergence", "blast", "ctl bytes", "topVIDs")
	for _, pods := range []int{2, 4, 8, 12, 16} {
		spec := topology.Spec{
			Pods:            pods,
			LeavesPerPod:    2,
			SpinesPerPod:    2,
			UplinksPerSpine: 2,
			ServersPerLeaf:  1,
		}
		opts := harness.DefaultOptions(spec, harness.ProtoMRMTP, 5)
		r, err := harness.RunFailure(opts, topology.TC1)
		if err != nil {
			log.Fatalf("%d pods: %v", pods, err)
		}
		// Rebuild to inspect steady-state table sizes.
		f, err := harness.Build(opts)
		if err != nil {
			log.Fatal(err)
		}
		if err := f.WarmUp(harness.WarmupTime); err != nil {
			log.Fatal(err)
		}
		topVIDs := f.Routers["T-1"].TableSize()
		fmt.Printf("%5d %8d %8d %14s %10d %12d %12d\n",
			pods, len(f.Topo.Routers()), len(f.Topo.Servers),
			r.Convergence.Round(100*time.Microsecond), r.BlastRadius, r.ControlBytes, topVIDs)
	}
	// The paper's other scaling axis: more tiers. A 4-tier fabric (2
	// zones x 2 pods, super spines above zone spines) runs the identical
	// protocol code; VIDs just grow one element deeper.
	mt := topology.MultiTierSpec{
		Zones: 2, PodsPerZone: 2, LeavesPerPod: 2,
		SpinesPerPod: 2, UplinksPerSpine: 2, UplinksPerZone: 2,
		ServersPerLeaf: 1,
	}
	mtOpts := harness.DefaultOptions(topology.Spec{}, harness.ProtoMRMTP, 5)
	mtOpts.MultiTier = &mt
	f, err := harness.Build(mtOpts)
	if err != nil {
		log.Fatal(err)
	}
	if err := f.WarmUp(harness.WarmupTime); err != nil {
		log.Fatal(err)
	}
	f.Log.Reset()
	failAt := f.Sim.Now()
	f.Sim.Node("A-1-1").Port(1).Fail()
	f.Sim.RunFor(2 * time.Second)
	a := f.Log.Analyze(failAt)
	fmt.Printf("\n4-tier fabric (2 zones, %d routers): zone-spine uplink failure -> convergence %v, blast %d, %d B\n",
		len(f.Topo.Routers()), a.Convergence.Round(100*time.Microsecond), a.BlastRadius, a.ControlBytes)
	fmt.Printf("super-spine VID depth: %v (one port number per tier crossed)\n", f.Routers["T-1"].VIDs()[0])

	fmt.Println(`
Observations:
  - Convergence stays pinned at the 100 ms dead timer: failure recovery
    never recomputes routes, it only deletes VID-table port entries.
  - Blast radius grows only with the number of ToRs that must stop using
    one uplink for the lost VID (all other routers merely relay).
  - Control overhead grows linearly in fabric size — each LOST update is a
    fixed 18-byte Ethernet frame.
  - A top spine's whole routing state is one VID per ToR; spines still need
    zero configured addresses at every size.
  - Adding a fourth tier changes nothing structurally: the same tier-number
    configuration, one more element in each VID.`)
}
