package harness

import (
	"strings"
	"testing"
	"time"

	"repro/internal/netaddr"
	"repro/internal/topology"
	"repro/internal/udp"
)

// fourTier is a 2-zone, 2-pods-per-zone, four-tier fabric: 8 leaves,
// 8 pod spines, 8 zone spines, 8 super spines = 32 routers.
func fourTier() topology.MultiTierSpec {
	return topology.MultiTierSpec{
		Zones: 2, PodsPerZone: 2, LeavesPerPod: 2,
		SpinesPerPod: 2, UplinksPerSpine: 2, UplinksPerZone: 2,
		ServersPerLeaf: 1,
	}
}

func buildMultiTier(t *testing.T, proto Protocol) *Fabric {
	t.Helper()
	opts := DefaultOptions(topology.Spec{}, proto, 42)
	mt := fourTier()
	opts.MultiTier = &mt
	f, err := Build(opts)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := f.WarmUp(WarmupTime); err != nil {
		t.Fatalf("WarmUp: %v", err)
	}
	return f
}

func TestMultiTierTopologyShape(t *testing.T) {
	topo, err := topology.BuildMultiTier(fourTier())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(topo.Routers()); got != 32 {
		t.Errorf("routers = %d, want 32", got)
	}
	if got := len(topo.Aggs); got != 8 {
		t.Errorf("zone spines = %d, want 8", got)
	}
	// Plane wiring spot checks: pod spine S-1-1-1 uplinks to A-1-1, A-1-3;
	// zone spine A-1-1 uplinks to T-1, T-5.
	sp := topo.Device("S-1-1-1")
	if sp.Ports[1].Peer.Device.Name != "A-1-1" || sp.Ports[2].Peer.Device.Name != "A-1-3" {
		t.Errorf("S-1-1-1 uplinks: %s, %s", sp.Ports[1].Peer.Device.Name, sp.Ports[2].Peer.Device.Name)
	}
	agg := topo.Device("A-1-1")
	if agg.Ports[1].Peer.Device.Name != "T-1" || agg.Ports[2].Peer.Device.Name != "T-5" {
		t.Errorf("A-1-1 uplinks: %s, %s", agg.Ports[1].Peer.Device.Name, agg.Ports[2].Peer.Device.Name)
	}
	// Level sequence along a path: 1,2,3,4.
	leaf := topo.Device("L-1-1-1")
	if leaf.Level != 1 || sp.Level != 2 || agg.Level != 3 || topo.Device("T-1").Level != 4 {
		t.Error("levels wrong along the column")
	}
}

func TestMultiTierSpecValidation(t *testing.T) {
	bad := fourTier()
	bad.Zones = 1
	if _, err := topology.BuildMultiTier(bad); err == nil {
		t.Error("single-zone multi-tier accepted")
	}
	bad = fourTier()
	bad.UplinksPerZone = 0
	if _, err := topology.BuildMultiTier(bad); err == nil {
		t.Error("zero zone uplinks accepted")
	}
}

func TestMultiTierMRMTPConverges(t *testing.T) {
	f := buildMultiTier(t, ProtoMRMTP)
	if err := f.CheckConverged(); err != nil {
		t.Fatal(err)
	}
	// VIDs at the super spines are four elements deep: root.port.port.port
	// — the paper's "scale to any number of spine tiers" claim in action.
	vids := f.Routers["T-1"].VIDs()
	if len(vids) != 8 {
		t.Fatalf("T-1 holds %d VIDs, want one per leaf (8): %v", len(vids), vids)
	}
	for _, v := range vids {
		if got := strings.Count(v, ".") + 1; got != 4 {
			t.Errorf("VID %s has %d elements, want 4 in a 4-tier fabric", v, got)
		}
	}
}

func TestMultiTierMRMTPCrossZoneTraffic(t *testing.T) {
	f := buildMultiTier(t, ProtoMRMTP)
	// VID 11 is in zone 1; VID 18 (the last leaf) is in zone 2.
	src, srcDev, err := f.ServerStack(11, 1)
	if err != nil {
		t.Fatal(err)
	}
	dst, dstDev, err := f.ServerStack(18, 1)
	if err != nil {
		t.Fatal(err)
	}
	var got int
	dst.ListenUDP(7, func(_, _ netaddr.IPv4, dg udp.Datagram) { got++ })
	for i := 0; i < 10; i++ {
		src.SendUDP(srcDev.IP, dstDev.IP, 9500+uint16(i), 7, []byte("cross-zone"))
	}
	f.Sim.RunFor(100 * time.Millisecond)
	if got != 10 {
		t.Fatalf("delivered %d/10 across zones", got)
	}
}

func TestMultiTierBGPConverges(t *testing.T) {
	f := buildMultiTier(t, ProtoBGP)
	if err := f.CheckConverged(); err != nil {
		t.Fatal(err)
	}
	// Cross-zone data path.
	src, srcDev, _ := f.ServerStack(11, 1)
	dst, dstDev, _ := f.ServerStack(18, 1)
	var got int
	dst.ListenUDP(7, func(_, _ netaddr.IPv4, dg udp.Datagram) { got++ })
	for i := 0; i < 10; i++ {
		src.SendUDP(srcDev.IP, dstDev.IP, 9600+uint16(i), 7, []byte("cross-zone"))
	}
	f.Sim.RunFor(100 * time.Millisecond)
	if got != 10 {
		t.Fatalf("BGP delivered %d/10 across zones", got)
	}
}

func TestMultiTierFailureRecovery(t *testing.T) {
	// Fail a zone spine's uplink (the 4-tier analogue of TC3) and verify
	// MR-MTP reconverges with the same dead-timer characteristics.
	f := buildMultiTier(t, ProtoMRMTP)
	f.Log.Reset()
	failAt := f.Sim.Now()
	f.Sim.Node("A-1-1").Port(1).Fail() // A-1-1's uplink to T-1
	f.Sim.RunFor(2 * time.Second)
	a := f.Log.Analyze(failAt)
	if a.Convergence > 150*time.Millisecond {
		t.Errorf("4-tier convergence = %v, want <= dead timer + dissemination", a.Convergence)
	}
	// T-1 lost its zone-1 VIDs; cross-zone traffic to zone 1 must avoid
	// it and still flow.
	src, srcDev, _ := f.ServerStack(18, 1)
	dst, dstDev, _ := f.ServerStack(11, 1)
	var got int
	dst.ListenUDP(7, func(_, _ netaddr.IPv4, dg udp.Datagram) { got++ })
	for i := 0; i < 20; i++ {
		src.SendUDP(srcDev.IP, dstDev.IP, 9700+uint16(i), 7, []byte("avoid-T-1"))
	}
	f.Sim.RunFor(100 * time.Millisecond)
	if got != 20 {
		t.Errorf("delivered %d/20 after zone-spine uplink failure", got)
	}
}

func TestMultiTierListing2Config(t *testing.T) {
	topo, err := topology.BuildMultiTier(fourTier())
	if err != nil {
		t.Fatal(err)
	}
	cfg := topo.MRMTPConfig()
	if len(cfg.Topology.Leaves) != 8 || len(cfg.Topology.Pods) != 4 {
		t.Errorf("config: %d leaves, %d pods", len(cfg.Topology.Leaves), len(cfg.Topology.Pods))
	}
	blob, err := cfg.Render()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := topology.ParseConfig(blob); err != nil {
		t.Errorf("multi-tier config does not round-trip: %v", err)
	}
}
