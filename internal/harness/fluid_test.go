package harness

import (
	"os"
	"reflect"
	"testing"
	"time"

	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/workload"
)

// hybridWorkload is the small hybrid cell the quick tests run: a websearch
// mix (so both mice below the cutoff and elephants above it appear) on a
// shaped 2-PoD fabric.
func hybridWorkload() WorkloadConfig {
	w := DefaultWorkloadConfig()
	w.Engine = workload.ModeHybrid
	w.Flows = 40
	w.MeanArrival = 2 * time.Millisecond
	w.MaxRun = 20 * time.Second
	return w
}

func TestHybridWorkloadSplitsEngines(t *testing.T) {
	res, err := RunWorkload(DefaultOptions(topology.TwoPodSpec(), ProtoMRMTP, 42), hybridWorkload())
	if err != nil {
		t.Fatal(err)
	}
	if res.Engine != "hybrid" {
		t.Errorf("engine = %q, want hybrid", res.Engine)
	}
	r := res.Report
	if r.Completed != r.Flows {
		t.Fatalf("completed %d/%d flows, want all", r.Completed, r.Flows)
	}
	if r.FluidFlows == 0 || r.FluidFlows == r.Flows {
		t.Errorf("fluid flows = %d of %d: hybrid must split the mix across both engines", r.FluidFlows, r.Flows)
	}
	if r.PeakConcurrent <= 0 {
		t.Error("peak concurrency not measured")
	}
	if r.PacketsSent == 0 {
		t.Error("packet-path mice sent no packets")
	}
	for _, b := range r.Buckets {
		for _, ms := range b.FCTms {
			if ms <= 0 {
				t.Fatalf("bucket %s has non-positive FCT %v ms", b.Label, ms)
			}
		}
	}
}

func TestFluidModeCarriesEverything(t *testing.T) {
	w := hybridWorkload()
	w.Engine = workload.ModeFluid
	res, err := RunWorkload(DefaultOptions(topology.TwoPodSpec(), ProtoBGP, 42), w)
	if err != nil {
		t.Fatal(err)
	}
	r := res.Report
	if r.Completed != r.Flows || r.FluidFlows != r.Flows {
		t.Fatalf("completed %d/%d, fluid %d: pure fluid mode must carry every flow", r.Completed, r.Flows, r.FluidFlows)
	}
	if r.PacketsSent != 0 {
		t.Errorf("fluid mode sent %d data packets, want 0", r.PacketsSent)
	}
	// The reservation shows up in telemetry even though no packets flew.
	var fluidBytes uint64
	for _, sr := range res.Series {
		for _, smp := range sr.Samples {
			fluidBytes += smp.FluidBytes
		}
	}
	if fluidBytes == 0 {
		t.Error("no fluid bytes carried in any link series")
	}
	if res.PeakUtil <= 0 {
		t.Error("fluid reservation should register link utilization")
	}
}

func TestFluidRequiresShapedLinks(t *testing.T) {
	w := hybridWorkload()
	w.LinkBps = 0
	if _, err := RunWorkload(DefaultOptions(topology.TwoPodSpec(), ProtoMRMTP, 1), w); err == nil {
		t.Fatal("fluid engine on unshaped links must fail loudly, not allocate from nothing")
	}
}

// Same seed, same engine — byte-identical results, in both fluid modes.
func TestFluidDeterministicReplay(t *testing.T) {
	for _, mode := range []workload.Mode{workload.ModeFluid, workload.ModeHybrid} {
		w := hybridWorkload()
		w.Engine = mode
		opts := DefaultOptions(topology.TwoPodSpec(), ProtoMRMTP, 99)
		a, err := RunWorkload(opts, w)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunWorkload(opts, w)
		if err != nil {
			t.Fatal(err)
		}
		compareWorkloadResults(t, mode.String(), a, b)
	}
}

// compareWorkloadResults asserts two results are observably identical,
// handling LinkSeries' unexported engine-graph pointers like the
// partitioned-identity tests do.
func compareWorkloadResults(t *testing.T, label string, a, b WorkloadResult) {
	t.Helper()
	if len(a.Series) != len(b.Series) {
		t.Fatalf("%s: %d series vs %d", label, len(a.Series), len(b.Series))
	}
	for i := range a.Series {
		if a.Series[i].Name != b.Series[i].Name {
			t.Errorf("%s: series %d named %q vs %q", label, i, a.Series[i].Name, b.Series[i].Name)
		} else if !reflect.DeepEqual(a.Series[i].Samples, b.Series[i].Samples) {
			t.Errorf("%s: series %s samples differ", label, a.Series[i].Name)
		}
	}
	a.Series, b.Series = nil, nil
	if !reflect.DeepEqual(a, b) {
		t.Errorf("%s: results differ:\n%+v\n%+v", label, a, b)
	}
}

// The hybrid engine must agree with the packet engine where they overlap:
// steady-state FCT distributions on the published mixes, within 5% at the
// median and the tail. This is the fidelity regression gate — if the fluid
// model's rate cap, latency offset or share computation drifts from what
// the packet path actually delivers, it trips here.
func TestHybridMatchesPacketFCT(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-flow regression gate skipped in -short")
	}
	mixes := []struct {
		name  string
		sizes workload.SizeDist
	}{
		{"websearch", workload.WebSearchMix()},
		{"cache", workload.CacheMix()},
	}
	for _, mix := range mixes {
		w := DefaultWorkloadConfig()
		w.Flows = 1000
		w.Sizes = mix.sizes
		// The published arrival rate: a busy-but-stable fabric. The gate
		// compares the engines in the steady-state regime where the
		// packet engine is not loss-driven — a lossless fluid model has
		// no analogue of RTO-quantized repair tails (DESIGN.md §15).
		w.MaxRun = 60 * time.Second
		opts := DefaultOptions(topology.TwoPodSpec(), ProtoMRMTP, 7)

		w.Engine = workload.ModePacket
		pkt, err := RunWorkload(opts, w)
		if err != nil {
			t.Fatal(err)
		}
		w.Engine = workload.ModeHybrid
		hyb, err := RunWorkload(opts, w)
		if err != nil {
			t.Fatal(err)
		}
		ps := pooledFCT(pkt)
		hs := pooledFCT(hyb)
		if ps.N != 1000 || hs.N != 1000 {
			t.Fatalf("%s: completed %d packet / %d hybrid FCTs, want 1000 each", mix.name, ps.N, hs.N)
		}
		checkDivergence(t, mix.name+" P50", ps.P50, hs.P50)
		checkDivergence(t, mix.name+" P99", ps.P99, hs.P99)
	}
}

func pooledFCT(r WorkloadResult) stats.Summary {
	var all []float64
	for _, b := range r.Report.Buckets {
		all = append(all, b.FCTms...)
	}
	return stats.Summarize(all)
}

func checkDivergence(t *testing.T, what string, pkt, hyb float64) {
	t.Helper()
	if pkt <= 0 {
		t.Fatalf("%s: packet baseline %v", what, pkt)
	}
	rel := (hyb - pkt) / pkt
	if rel < 0 {
		rel = -rel
	}
	t.Logf("%s: packet %.3f ms, hybrid %.3f ms (%.2f%% divergence)", what, pkt, hyb, 100*rel)
	if rel > 0.05 {
		t.Errorf("%s diverges %.2f%%: packet %.3f ms vs hybrid %.3f ms (gate: 5%%)", what, 100*rel, pkt, hyb)
	}
}

// Hybrid trials are bit-identical at any shard count, including across a
// mid-run failure with its Repath control events.
func TestFluidPartitionedIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("full fabric trials in -short mode")
	}
	opts := DefaultOptions(topology.FourPodSpec(), ProtoMRMTP, 17)
	w := DefaultWorkloadConfig()
	w.Engine = workload.ModeHybrid
	w.Flows = 60
	w.MaxRun = 10 * time.Second
	w.MidFailure = true
	seq, err := RunWorkload(withPartitions(opts, 1), w)
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	for _, shards := range partitionCounts {
		par, err := RunWorkload(withPartitions(opts, shards), w)
		if err != nil {
			t.Fatalf("%d shards: %v", shards, err)
		}
		compareWorkloadResults(t, "shards", seq, par)
	}
}

// The scale target: a million concurrent fluid flows in one hybrid trial.
// Gated behind CLOSLAB_MILLION=1 — it allocates ~a GB and runs minutes.
func TestMillionFlowHybrid(t *testing.T) {
	if os.Getenv("CLOSLAB_MILLION") == "" {
		t.Skip("set CLOSLAB_MILLION=1 to run the million-flow trial")
	}
	w := DefaultWorkloadConfig()
	w.Engine = workload.ModeHybrid
	w.Flows = 1_000_000
	w.Sizes = workload.FixedSize(100_000)
	w.MeanArrival = time.Microsecond
	w.RateInterval = 50 * time.Millisecond
	w.MaxRun = 1200 * time.Second
	res, err := RunWorkload(DefaultOptions(topology.TwoPodSpec(), ProtoMRMTP, 3), w)
	if err != nil {
		t.Fatal(err)
	}
	r := res.Report
	if r.Completed != r.Flows {
		t.Fatalf("completed %d/%d", r.Completed, r.Flows)
	}
	if r.PeakConcurrent < 900_000 {
		t.Errorf("peak concurrency %d, want ~10^6: arrivals outpace a congested drain", r.PeakConcurrent)
	}
}
