package harness

import (
	"testing"
	"time"

	"repro/internal/tcp"
	"repro/internal/topology"
	"repro/internal/trafficgen"
)

func TestTCPConnectionAcrossMRMTPFabric(t *testing.T) {
	// The paper's backward-compatibility claim: servers keep ordinary
	// IP/TCP stacks while the fabric replaces TCP/IP entirely. A TCP
	// connection between servers must work unchanged over MR-MTP
	// encapsulation.
	f := buildAndWarm(t, topology.TwoPodSpec(), ProtoMRMTP)
	src, srcDev, _ := f.ServerStack(11, 1)
	dst, dstDev, _ := f.ServerStack(14, 1)
	var got []byte
	dst.TCP.Listen(8080, func(c *tcp.Conn) {
		c.OnData(func(d []byte) { got = append(got, d...) })
	})
	conn := src.TCP.Dial(srcDev.IP, dstDev.IP, 8080)
	conn.Send([]byte("GET / HTTP/1.1\r\n\r\n"))
	f.Sim.RunFor(time.Second)
	if conn.State() != tcp.StateEstablished {
		t.Fatalf("TCP over MR-MTP: state = %v", conn.State())
	}
	if string(got) != "GET / HTTP/1.1\r\n\r\n" {
		t.Errorf("payload corrupted across the fabric: %q", got)
	}
}

func TestTCPSurvivesFailoverAcrossMRMTPFabric(t *testing.T) {
	// A TCP connection must survive a TC1 interface failure: the fabric
	// reroutes within the dead timer and TCP retransmission covers the
	// gap — no connection reset.
	f := buildAndWarm(t, topology.TwoPodSpec(), ProtoMRMTP)
	src, srcDev, _ := f.ServerStack(11, 1)
	dst, dstDev, _ := f.ServerStack(14, 1)
	var got int
	dst.TCP.Listen(8080, func(c *tcp.Conn) {
		c.OnData(func(d []byte) { got += len(d) })
	})
	conn := src.TCP.Dial(srcDev.IP, dstDev.IP, 8080)
	f.Sim.RunFor(time.Second)
	sent := 0
	stop := false
	var pump func()
	pump = func() {
		if stop {
			return
		}
		conn.Send(make([]byte, 100))
		sent += 100
		f.Sim.After(10*time.Millisecond, pump)
	}
	pump()
	f.Sim.RunFor(500 * time.Millisecond)
	if _, err := f.Fail(topology.TC1); err != nil {
		t.Fatal(err)
	}
	f.Sim.RunFor(3 * time.Second)
	stop = true
	f.Sim.RunFor(2 * time.Second) // drain retransmissions
	if conn.State() != tcp.StateEstablished {
		t.Fatalf("connection died across the failover: %v", conn.State())
	}
	if got != sent {
		t.Errorf("stream gap across failover: sent %d, delivered %d", sent, got)
	}
}

func TestLossTrialsAverage(t *testing.T) {
	avg, err := RunLossTrials(DefaultOptions(topology.TwoPodSpec(), ProtoMRMTP, 31), topology.TC2, false, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Dead timer 100ms at ~333pps: per-trial loss in [17, 40] depending
	// on phase; the average must stay in that band.
	if avg < 10 || avg > 45 {
		t.Errorf("averaged TC2 loss = %.1f, want dead-timer band", avg)
	}
}

func TestFailureTrialsAverage(t *testing.T) {
	s, err := RunFailureTrials(DefaultOptions(topology.TwoPodSpec(), ProtoMRMTP, 7), topology.TC1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s.Trials != 4 {
		t.Errorf("trials = %d", s.Trials)
	}
	if s.Convergence < 50*time.Millisecond || s.Convergence > 110*time.Millisecond {
		t.Errorf("mean TC1 convergence = %v, want within the dead-timer phase band", s.Convergence)
	}
	if s.BlastRadius != 3 {
		t.Errorf("mean blast = %.1f, want exactly 3 across seeds", s.BlastRadius)
	}
}

func TestGridRender(t *testing.T) {
	g := NewGrid("test grid", []string{"A", "B"})
	g.Set("TC1", "A", "1")
	g.Set("TC1", "B", "2")
	g.Set("TC2", "A", "3")
	out := g.Render()
	for _, want := range []string{"test grid", "TC1", "TC2", "A", "B"} {
		if !containsStr(out, want) {
			t.Errorf("grid missing %q:\n%s", want, out)
		}
	}
}

func containsStr(h, n string) bool { return indexOf(h, n) >= 0 }

func TestKeepAliveSuppressionUnderLoad(t *testing.T) {
	// Quantified version of the paper's §IX note: the hello share of
	// wire traffic collapses when data flows.
	f := buildAndWarm(t, topology.TwoPodSpec(), ProtoMRMTP)
	src, srcDev, _ := f.ServerStack(11, 1)
	_, dstDev, _ := f.ServerStack(14, 1)
	cfg := trafficgen.DefaultConfig(srcDev.IP, dstDev.IP)
	cfg.Interval = time.Millisecond // 1000 pps: saturate the keep-alive window
	cfg.SrcPort = PickFlowPort(f, cfg)
	sender := trafficgen.NewSender(src, cfg)
	leaf := f.Routers["L-1-1"]
	idleStart := leaf.Stats.HellosSent
	f.Sim.RunFor(5 * time.Second)
	idle := leaf.Stats.HellosSent - idleStart
	sender.Start()
	busyStart := leaf.Stats.HellosSent
	f.Sim.RunFor(5 * time.Second)
	busy := leaf.Stats.HellosSent - busyStart
	sender.Stop()
	// The flow rides one uplink; that port's hellos vanish, the other
	// port's continue: expect roughly half the idle rate.
	if busy >= idle*3/4 {
		t.Errorf("hello count under load = %d, idle = %d; data should suppress keep-alives", busy, idle)
	}
}
