package harness

import (
	"fmt"
	"time"

	"repro/internal/topology"
)

// This file extends the paper's four interface-failure cases (§IX:
// "Extended failure test cases") with whole-node failures and interface
// flapping, using the same measurement pipeline.

// FailNode fails every interface of a device at once (a crash or power
// event). The node itself sees all ports down; every neighbor discovers
// through its own timers, exactly as with single-interface failures.
func (f *Fabric) FailNode(name string) (time.Duration, error) {
	node := f.Sim.Node(name)
	if node == nil {
		return 0, fmt.Errorf("harness: no node %s", name)
	}
	at := f.Sim.Now()
	for _, p := range node.Ports[1:] {
		p.Fail()
	}
	return at, nil
}

// RestoreNode brings every interface of a device back up.
func (f *Fabric) RestoreNode(name string) error {
	node := f.Sim.Node(name)
	if node == nil {
		return fmt.Errorf("harness: no node %s", name)
	}
	for _, p := range node.Ports[1:] {
		p.Restore()
	}
	return nil
}

// RunNodeFailure measures convergence/blast/overhead when a whole device
// dies (default: the pod spine S-1-1, the worst single-router loss for the
// monitored column).
func RunNodeFailure(opts Options, victim string) (FailureResult, error) {
	f, err := Build(opts)
	if err != nil {
		return FailureResult{}, err
	}
	if err := f.WarmUp(WarmupTime); err != nil {
		return FailureResult{}, err
	}
	phase := time.Duration(f.Sim.Rand().Int63n(int64(time.Second)))
	f.Sim.RunFor(phase)
	f.Log.Reset()
	failAt, err := f.FailNode(victim)
	if err != nil {
		return FailureResult{}, err
	}
	f.Sim.RunFor(SettleTime)
	a := f.Log.Analyze(failAt)
	return FailureResult{
		Protocol:     opts.Protocol,
		Pods:         opts.Spec.Pods,
		Convergence:  a.Convergence,
		BlastRadius:  a.BlastRadius,
		ControlBytes: a.ControlBytes,
		ControlMsgs:  a.ControlMessages,
		UpdatedNodes: a.UpdatedNodes,
	}, nil
}

// FlapResult summarizes a flapping-interface run: how much control-plane
// churn the fabric suffered while one interface bounced.
type FlapResult struct {
	Protocol     Protocol
	Flaps        int
	ControlMsgs  int
	ControlBytes int
	RouteEvents  int
	// Recovered reports whether the fabric was converged again at the end.
	Recovered bool
}

// RunFlap bounces the TC1 interface (down downTime, up upTime) `flaps`
// times and measures the churn. With MR-MTP's Slow-to-Accept, up periods
// shorter than three hello intervals never re-admit the neighbor, so churn
// stays bounded; protocols that re-establish eagerly pay a full
// reconvergence per flap. The interface is finally left up and the fabric
// given time to stabilize.
func RunFlap(opts Options, flaps int, downTime, upTime time.Duration) (FlapResult, error) {
	f, err := Build(opts)
	if err != nil {
		return FlapResult{}, err
	}
	if err := f.WarmUp(WarmupTime); err != nil {
		return FlapResult{}, err
	}
	fp, err := f.Topo.FailurePoint(topology.TC1)
	if err != nil {
		return FlapResult{}, err
	}
	port := f.Sim.Node(fp.Device).Port(fp.Port)
	f.Log.Reset()
	for i := 0; i < flaps; i++ {
		port.Fail()
		f.Sim.RunFor(downTime)
		port.Restore()
		f.Sim.RunFor(upTime)
	}
	// Count churn during the flapping window only.
	msgs, bytes, routes := 0, 0, 0
	for _, e := range f.Log.Events {
		switch e.Kind {
		case "control":
			msgs++
			bytes += e.Bytes
		case "route":
			routes++
		}
	}
	// Let the final up period stick and verify recovery.
	f.Sim.RunFor(30 * time.Second)
	return FlapResult{
		Protocol:     opts.Protocol,
		Flaps:        flaps,
		ControlMsgs:  msgs,
		ControlBytes: bytes,
		RouteEvents:  routes,
		Recovered:    f.CheckConverged() == nil,
	}, nil
}
