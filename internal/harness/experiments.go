package harness

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/capture"
	"repro/internal/flowhash"
	"repro/internal/ipv4"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/trafficgen"
)

// WarmupTime is long enough for every configuration to reach steady state
// (BGP sessions need a few keepalive intervals; MR-MTP converges in
// milliseconds).
const WarmupTime = 15 * time.Second

// SettleTime bounds the post-failure observation window. The slowest
// reconvergence in the paper's configurations is plain BGP's 3 s hold
// timer; 10 s leaves room for dissemination.
const SettleTime = 10 * time.Second

// FailureResult is one trial of the Fig. 4/5/6 experiments.
type FailureResult struct {
	Protocol     Protocol
	Pods         int
	Case         topology.FailureCase
	Convergence  time.Duration
	BlastRadius  int
	ControlBytes int
	ControlMsgs  int
	UpdatedNodes []string
}

// RunFailure measures convergence time, blast radius and control overhead
// for one failure case (Figs. 4, 5, 6). The failure instant is offset by a
// random fraction of a keep-alive period so trial averages sample timer
// phase like the paper's repeated runs.
func RunFailure(opts Options, tc topology.FailureCase) (FailureResult, error) {
	f, err := Build(opts)
	if err != nil {
		return FailureResult{}, err
	}
	if err := f.WarmUp(WarmupTime); err != nil {
		return FailureResult{}, err
	}
	phase := time.Duration(f.Sim.Rand().Int63n(int64(time.Second)))
	f.Sim.RunFor(phase)
	f.Log.Reset()
	failAt, err := f.Fail(tc)
	if err != nil {
		return FailureResult{}, err
	}
	f.Sim.RunFor(SettleTime)
	a := f.Log.Analyze(failAt)
	return FailureResult{
		Protocol:     opts.Protocol,
		Pods:         opts.Spec.Pods,
		Case:         tc,
		Convergence:  a.Convergence,
		BlastRadius:  a.BlastRadius,
		ControlBytes: a.ControlBytes,
		ControlMsgs:  a.ControlMessages,
		UpdatedNodes: a.UpdatedNodes,
	}, nil
}

// LossResult is one trial of the Fig. 7/8 experiments.
type LossResult struct {
	Protocol Protocol
	Pods     int
	Case     topology.FailureCase
	Report   trafficgen.Report
}

// RunLoss measures packet loss across a failure. Traffic flows between the
// server at ToR VID 11 and the server at ToR VID 14 (paper §VI.D); reverse
// selects the far-from-failure sender of Fig. 8. The flow's source port is
// chosen so both protocols hash it across the monitored TC1–TC4 column.
func RunLoss(opts Options, tc topology.FailureCase, reverse bool) (LossResult, error) {
	f, err := Build(opts)
	if err != nil {
		return LossResult{}, err
	}
	srcStack, srcDev, err := f.ServerStack(11, 1)
	if err != nil {
		return LossResult{}, err
	}
	dstStack, dstDev, err := f.ServerStack(14, 1)
	if err != nil {
		return LossResult{}, err
	}
	if reverse {
		srcStack, dstStack = dstStack, srcStack
		srcDev, dstDev = dstDev, srcDev
	}
	cfg := trafficgen.DefaultConfig(srcDev.IP, dstDev.IP)
	cfg.SrcPort = PickFlowPort(f, cfg)
	sender := trafficgen.NewSender(srcStack, cfg)
	receiver := trafficgen.NewReceiver(dstStack, cfg.DstPort)

	if err := f.WarmUp(WarmupTime); err != nil {
		return LossResult{}, err
	}
	sender.Start()
	// Lead-in so the flow is established (and ARP resolved) pre-failure,
	// with a random phase offset as in RunFailure.
	lead := time.Second + time.Duration(f.Sim.Rand().Int63n(int64(time.Second)))
	f.Sim.RunFor(lead)
	preLoss := sender.Sent() - receiver.Report(sender).Received
	if preLoss > 2 { // ARP warm-up may cost a packet at the margins
		return LossResult{}, fmt.Errorf("harness: flow lossy before failure (%d lost)", preLoss)
	}
	if _, err := f.Fail(tc); err != nil {
		return LossResult{}, err
	}
	f.Sim.RunFor(SettleTime)
	sender.Stop()
	f.Sim.RunFor(time.Second) // drain in-flight packets
	return LossResult{
		Protocol: opts.Protocol,
		Pods:     opts.Spec.Pods,
		Case:     tc,
		Report:   receiver.Report(sender),
	}, nil
}

// PickFlowPort finds a UDP source port whose flow hash selects the first
// uplink at every branching tier, steering the probe flow across the
// monitored L-1-1/S-1-1/T-1 column for both protocols (which share the
// flowhash function).
func PickFlowPort(f *Fabric, cfg trafficgen.Config) uint16 {
	s := f.Opts.Spec.SpinesPerPod
	u := f.Opts.Spec.UplinksPerSpine
	for port := cfg.SrcPort; port < cfg.SrcPort+4096; port++ {
		k := flowhash.Key{
			Src: cfg.Src, Dst: cfg.Dst,
			Proto:   ipv4.ProtoUDP,
			SrcPort: port, DstPort: cfg.DstPort,
		}
		h := int(k.Hash())
		if h%s == 0 && h%u == 0 {
			return port
		}
	}
	return cfg.SrcPort
}

// KeepAliveResult summarizes idle-fabric wire traffic on one link over a
// window (Figs. 9 and 10).
type KeepAliveResult struct {
	Protocol Protocol
	Window   time.Duration
	Summary  map[capture.Class]capture.ClassStats
}

// TotalKeepAliveBytes sums the liveness-related classes.
func (k KeepAliveResult) TotalKeepAliveBytes() int {
	total := 0
	for _, cl := range []capture.Class{
		capture.ClassBGPKeepalive, capture.ClassBFD, capture.ClassTCPAck, capture.ClassMTPHello,
	} {
		total += k.Summary[cl].Bytes
	}
	return total
}

// RunKeepAlive captures an idle fabric's keep-alive traffic on the
// L-1-1 ↔ S-1-1 link for the window.
func RunKeepAlive(opts Options, window time.Duration) (KeepAliveResult, error) {
	f, err := Build(opts)
	if err != nil {
		return KeepAliveResult{}, err
	}
	if err := f.WarmUp(WarmupTime); err != nil {
		return KeepAliveResult{}, err
	}
	fp, err := f.Topo.FailurePoint(topology.TC1)
	if err != nil {
		return KeepAliveResult{}, err
	}
	var cap capture.Capture
	cap.Tap(f.Sim.Node(fp.Device).Port(fp.Port).Link)
	start := f.Sim.Now()
	f.Sim.RunFor(window)
	return KeepAliveResult{
		Protocol: opts.Protocol,
		Window:   window,
		Summary:  cap.Summary(start, start+window),
	}, nil
}

// --- multi-trial averaging -------------------------------------------------

// FailureSummary averages FailureResult trials and keeps the per-trial
// spread (the paper plots run averages; the spread shows how much the
// timer phase mattered).
type FailureSummary struct {
	Protocol     Protocol
	Pods         int
	Case         topology.FailureCase
	Trials       int
	Convergence  time.Duration // mean
	BlastRadius  float64       // mean
	ControlBytes float64       // mean
	// ConvergenceMS summarizes per-trial convergence in milliseconds.
	ConvergenceMS stats.Summary
}

// SummarizeFailures averages per-trial results (all trials must share the
// protocol/pods/case).
func SummarizeFailures(rs []FailureResult) FailureSummary {
	if len(rs) == 0 {
		return FailureSummary{}
	}
	s := FailureSummary{Protocol: rs[0].Protocol, Pods: rs[0].Pods, Case: rs[0].Case, Trials: len(rs)}
	convMS := make([]float64, 0, len(rs))
	var conv time.Duration
	for _, r := range rs {
		conv += r.Convergence
		convMS = append(convMS, float64(r.Convergence)/float64(time.Millisecond))
		s.BlastRadius += float64(r.BlastRadius)
		s.ControlBytes += float64(r.ControlBytes)
	}
	s.Convergence = conv / time.Duration(len(rs))
	s.BlastRadius /= float64(len(rs))
	s.ControlBytes /= float64(len(rs))
	s.ConvergenceMS = stats.Summarize(convMS)
	return s
}

// RunFailureTrials runs n seeds of one configuration and averages, like the
// paper's "values averaged over multiple runs". Trials fan out over the
// runTrials worker pool; the summary is identical to a sequential run.
func RunFailureTrials(opts Options, tc topology.FailureCase, n int) (FailureSummary, error) {
	rs, err := runTrials(opts, n, func(o Options) (FailureResult, error) {
		return RunFailure(o, tc)
	})
	if err != nil {
		return FailureSummary{}, err
	}
	return SummarizeFailures(rs), nil
}

// RunLossTrials averages packet loss over n seeds.
func RunLossTrials(opts Options, tc topology.FailureCase, reverse bool, n int) (float64, error) {
	rs, err := runTrials(opts, n, func(o Options) (LossResult, error) {
		return RunLoss(o, tc, reverse)
	})
	if err != nil {
		return 0, err
	}
	var total float64
	for _, r := range rs {
		total += float64(r.Report.Lost)
	}
	return total / float64(n), nil
}

// FlapSummary averages FlapResult trials.
type FlapSummary struct {
	Protocol     Protocol
	Trials       int
	ControlMsgs  float64 // mean
	ControlBytes float64 // mean
	RouteEvents  float64 // mean
	// Recovered reports whether every trial's fabric reconverged.
	Recovered bool
}

// RunFlapTrials averages flap churn over n seeds.
func RunFlapTrials(opts Options, flaps int, downTime, upTime time.Duration, n int) (FlapSummary, error) {
	rs, err := runTrials(opts, n, func(o Options) (FlapResult, error) {
		return RunFlap(o, flaps, downTime, upTime)
	})
	if err != nil {
		return FlapSummary{}, err
	}
	s := FlapSummary{Protocol: opts.Protocol, Trials: n, Recovered: true}
	for _, r := range rs {
		s.ControlMsgs += float64(r.ControlMsgs)
		s.ControlBytes += float64(r.ControlBytes)
		s.RouteEvents += float64(r.RouteEvents)
		s.Recovered = s.Recovered && r.Recovered
	}
	s.ControlMsgs /= float64(n)
	s.ControlBytes /= float64(n)
	s.RouteEvents /= float64(n)
	return s, nil
}

// --- table rendering --------------------------------------------------------

// Grid renders experiment values as the paper's figure grids: one row per
// test case, one column per protocol configuration.
type Grid struct {
	Title   string
	Columns []string
	Rows    map[string]map[string]string // row -> column -> value
	order   []string
}

// NewGrid creates a grid with the protocol columns.
func NewGrid(title string, columns []string) *Grid {
	return &Grid{Title: title, Columns: columns, Rows: make(map[string]map[string]string)}
}

// Set stores a cell.
func (g *Grid) Set(row, col, value string) {
	if g.Rows[row] == nil {
		g.Rows[row] = make(map[string]string)
		g.order = append(g.order, row)
	}
	g.Rows[row][col] = value
}

// Render prints the grid.
func (g *Grid) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", g.Title)
	fmt.Fprintf(&b, "%-8s", "case")
	for _, c := range g.Columns {
		fmt.Fprintf(&b, " %16s", c)
	}
	b.WriteByte('\n')
	rows := append([]string(nil), g.order...)
	sort.Strings(rows)
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s", r)
		for _, c := range g.Columns {
			fmt.Fprintf(&b, " %16s", g.Rows[r][c])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
