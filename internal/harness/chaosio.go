package harness

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"repro/internal/chaos"
)

// This file renders chaos campaign artifacts. The renderers are exported
// (rather than living in cmd/closlab) so the byte-identity acceptance test
// — same seed, byte-identical artifacts — runs against the exact bytes the
// CLI writes.

// ChaosRun pairs one cell's summary with its per-trial results, the unit
// the artifact writers consume.
type ChaosRun struct {
	Summary ChaosSummary
	Trials  []ChaosResult
}

// timelineHeader is the shared event-timeline CSV schema: injector fault
// actions and localizer accusation events interleave in the same rows, with
// accused_link filled only on accusation events.
const timelineHeader = "protocol,pods,scenario,trial,t_us,kind,action,target,detail,accused_link\n"

// writeTimelineRows renders one trial's event log.
func writeTimelineRows(b *strings.Builder, proto Protocol, pods int, scenario string, trial int, events []chaos.Event) {
	for _, ev := range events {
		accused := ""
		if ev.Kind == AccusationEventKind {
			accused = ev.Target
		}
		// strings.Builder writes cannot fail; the blank assignment makes
		// the discarded result explicit rather than accidental.
		_, _ = fmt.Fprintf(b, "%s,%d,%s,%d,%d,%s,%s,%s,%s,%s\n",
			proto, pods, scenario, trial,
			ev.At/time.Microsecond, ev.Kind, ev.Action, ev.Target, ev.Detail, accused)
	}
}

// RenderChaosTimelineCSV renders every trial's injector log as CSV:
// one row per fault action actually executed, in virtual-time order.
func RenderChaosTimelineCSV(runs []ChaosRun) []byte {
	var b strings.Builder
	_, _ = b.WriteString(timelineHeader)
	for _, r := range runs {
		s := r.Summary
		for ti, tr := range r.Trials {
			writeTimelineRows(&b, s.Protocol, s.Pods, s.Scenario, ti, tr.Events)
		}
	}
	return []byte(b.String())
}

// chaosJSONSummary is the machine-readable form of one cell.
type chaosJSONSummary struct {
	Protocol     string `json:"protocol"`
	Pods         int    `json:"pods"`
	Scenario     string `json:"scenario"`
	Trials       int    `json:"trials"`
	FaultActions int    `json:"fault_actions"`

	ProbeLossRateMean float64 `json:"probe_loss_rate_mean"`
	BlackholeMsMean   float64 `json:"blackhole_ms_mean"`
	BlackholeMsMax    float64 `json:"blackhole_ms_max"`
	MaxOutageMsMean   float64 `json:"max_outage_ms_mean"`
	MaxOutageMsMax    float64 `json:"max_outage_ms_max"`

	RouteUpdatesMean   float64 `json:"route_updates_mean"`
	ReconvergencesMean float64 `json:"reconvergences_mean"`
	ReconvergencesMax  int     `json:"reconvergences_max"`
	ControlMsgsMean    float64 `json:"control_msgs_mean"`
	ControlBytesMean   float64 `json:"control_bytes_mean"`

	NeighborsLostMean     float64 `json:"neighbors_lost_mean"`
	NeighborsAcceptedMean float64 `json:"neighbors_accepted_mean"`
	HellosDampenedMean    float64 `json:"hellos_dampened_mean"`
	AcceptResetsMean      float64 `json:"accept_resets_mean"`

	SessionResetsMean       float64 `json:"session_resets_mean"`
	SessionsEstablishedMean float64 `json:"sessions_established_mean"`
	BFDDownMean             float64 `json:"bfd_down_transitions_mean"`
	BFDUpMean               float64 `json:"bfd_up_transitions_mean"`

	ReconvPerUp float64 `json:"reconvergences_per_up_transition"`
}

// RenderChaosSummaryJSON renders every cell's summary as indented JSON.
func RenderChaosSummaryJSON(runs []ChaosRun) ([]byte, error) {
	var out []chaosJSONSummary
	for _, r := range runs {
		s := r.Summary
		out = append(out, chaosJSONSummary{
			Protocol:     s.Protocol.String(),
			Pods:         s.Pods,
			Scenario:     s.Scenario,
			Trials:       s.Trials,
			FaultActions: s.FaultActions,

			ProbeLossRateMean: s.ProbeLossRateMean,
			BlackholeMsMean:   s.BlackholeMsMean,
			BlackholeMsMax:    s.BlackholeMsMax,
			MaxOutageMsMean:   s.MaxOutageMsMean,
			MaxOutageMsMax:    s.MaxOutageMsMax,

			RouteUpdatesMean:   s.RouteUpdatesMean,
			ReconvergencesMean: s.ReconvergencesMean,
			ReconvergencesMax:  s.ReconvergencesMax,
			ControlMsgsMean:    s.ControlMsgsMean,
			ControlBytesMean:   s.ControlBytesMean,

			NeighborsLostMean:     s.NeighborsLostMean,
			NeighborsAcceptedMean: s.NeighborsAcceptedMean,
			HellosDampenedMean:    s.HellosDampenedMean,
			AcceptResetsMean:      s.AcceptResetsMean,

			SessionResetsMean:       s.SessionResetsMean,
			SessionsEstablishedMean: s.SessionsEstablishedMean,
			BFDDownMean:             s.BFDDownMean,
			BFDUpMean:               s.BFDUpMean,

			ReconvPerUp: s.ReconvPerUp,
		})
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// RenderChaos formats one cell's summary as the experiment's text block.
func RenderChaos(s ChaosSummary) string {
	out := fmt.Sprintf("%s %dP %s: %d trials, %d fault actions, blackhole mean %.0fms (max %.0fms), max outage mean %.0fms, probe loss %.2f%%\n",
		s.Protocol, s.Pods, s.Scenario, s.Trials, s.FaultActions,
		s.BlackholeMsMean, s.BlackholeMsMax, s.MaxOutageMsMean, 100*s.ProbeLossRateMean)
	out += fmt.Sprintf("  churn: %.1f reconvergence waves (max %d), %.0f route updates, %.0f control msgs (%.0f B), %.2f waves/up-transition\n",
		s.ReconvergencesMean, s.ReconvergencesMax, s.RouteUpdatesMean,
		s.ControlMsgsMean, s.ControlBytesMean, s.ReconvPerUp)
	if s.Protocol == ProtoMRMTP {
		out += fmt.Sprintf("  qdsa: %.1f lost, %.1f accepted, %.1f hellos dampened, %.1f accept resets\n",
			s.NeighborsLostMean, s.NeighborsAcceptedMean, s.HellosDampenedMean, s.AcceptResetsMean)
	} else {
		out += fmt.Sprintf("  bgp: %.1f session resets, %.1f established; bfd: %.1f down, %.1f up\n",
			s.SessionResetsMean, s.SessionsEstablishedMean, s.BFDDownMean, s.BFDUpMean)
	}
	return out
}
