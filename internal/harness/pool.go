package harness

import (
	"runtime"
	"sync"
)

// Workers is the number of concurrent trials the multi-trial runners use.
// Trials are independent simulations, so they scale out to physical
// parallelism; set 1 to force sequential execution. The figures are
// identical either way: each trial's seed is a pure function of its index
// (TrialSeed) and results are collected by index, so a parallel run and a
// sequential run of the same configuration summarize bit-identically.
var Workers = runtime.GOMAXPROCS(0) //simlint:shared parallelism knob set by main before trials start, read-only inside runTrials

// TrialSeed derives trial i's seed from the base seed. The stride is a
// prime, so that trials sample distinct timer phases instead of clustering,
// while staying a pure function of (base, i) — the property the parallel
// runner's determinism rests on.
func TrialSeed(base int64, i int) int64 { return base + int64(i)*7919 }

// runTrials evaluates fn for trial indices [0, n) on a bounded worker pool
// and returns the results ordered by index. Each invocation receives a copy
// of opts with the trial's derived seed. Trials run sequentially on the
// calling goroutine when the pool is sized out (Workers <= 1) or when a
// journal is attached: a journal is shared mutable state, and interleaving
// trials would scramble its event order.
//
// On error the lowest-indexed failure is returned, which is the one a
// sequential stop-at-first-failure loop would have seen.
func runTrials[T any](opts Options, n int, fn func(o Options) (T, error)) ([]T, error) {
	results := make([]T, n)
	errs := make([]error, n)
	run := func(i int) {
		o := opts
		o.Seed = TrialSeed(opts.Seed, i)
		results[i], errs[i] = fn(o)
	}

	workers := Workers
	if workers > n {
		workers = n
	}
	if workers <= 1 || opts.Journal != nil {
		for i := 0; i < n; i++ {
			run(i)
			if errs[i] != nil {
				return nil, errs[i]
			}
		}
		return results, nil
	}

	var wg sync.WaitGroup
	idx := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				run(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			return nil, errs[i]
		}
	}
	return results, nil
}
