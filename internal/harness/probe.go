package harness

import (
	"fmt"
	"time"

	"repro/internal/icmp"
	"repro/internal/ipv4"
	"repro/internal/netaddr"
)

// This file provides ping and traceroute across a running fabric — the
// operator-facing reachability tools, and a crisp demonstration of the
// architectural difference the paper's Fig. 1 draws: the BGP fabric is a
// chain of IP routers (each hop answers traceroute), while the MR-MTP
// fabric carries IP opaquely and appears as a single routed hop between
// the rack gateways.

// PingResult is one echo exchange.
type PingResult struct {
	OK  bool
	RTT time.Duration
}

// Ping sends one ICMP echo from the server behind srcVID to the server
// behind dstVID, running the simulation up to timeout.
func Ping(f *Fabric, srcVID, dstVID int, timeout time.Duration) (PingResult, error) {
	src, srcDev, err := f.ServerStack(srcVID, 1)
	if err != nil {
		return PingResult{}, err
	}
	_, dstDev, err := f.ServerStack(dstVID, 1)
	if err != nil {
		return PingResult{}, err
	}
	id := f.nextProbeID()
	var res PingResult
	start := f.Sim.Now()
	src.ListenICMP(func(from netaddr.IPv4, m icmp.Message) {
		if m.Type == icmp.TypeEchoReply && m.ID == id && !res.OK {
			res.OK = true
			res.RTT = f.Sim.Now() - start
		}
	})
	src.SendICMP(srcDev.IP, dstDev.IP, icmp.EchoRequest(id, 1, []byte("mrmtp-ping")))
	f.Sim.RunFor(timeout)
	return res, nil
}

// Hop is one traceroute step.
type Hop struct {
	TTL     int
	Addr    netaddr.IPv4
	Reached bool // true when this hop is the destination itself
}

// Traceroute probes the path from the server behind srcVID to the server
// behind dstVID, TTL by TTL (classic ICMP traceroute).
func Traceroute(f *Fabric, srcVID, dstVID int, maxTTL int) ([]Hop, error) {
	src, srcDev, err := f.ServerStack(srcVID, 1)
	if err != nil {
		return nil, err
	}
	_, dstDev, err := f.ServerStack(dstVID, 1)
	if err != nil {
		return nil, err
	}
	id := f.nextProbeID()
	type answer struct {
		from    netaddr.IPv4
		seq     uint16
		reached bool
	}
	var answers []answer
	src.ListenICMP(func(from netaddr.IPv4, m icmp.Message) {
		switch m.Type {
		case icmp.TypeEchoReply:
			if m.ID == id {
				answers = append(answers, answer{from: from, seq: m.Seq, reached: true})
			}
		case icmp.TypeTimeExceeded:
			if qid, qseq, ok := icmp.QuotedEcho(m); ok && qid == id {
				answers = append(answers, answer{from: from, seq: qseq})
			}
		}
	})
	var hops []Hop
	for ttl := 1; ttl <= maxTTL; ttl++ {
		probe := icmp.EchoRequest(id, uint16(ttl), []byte("trace"))
		src.SendIPTTL(srcDev.IP, dstDev.IP, ipv4.ProtoICMP, byte(ttl), probe.Marshal())
		f.Sim.RunFor(50 * time.Millisecond)
		hop := Hop{TTL: ttl}
		for _, a := range answers {
			if int(a.seq) == ttl {
				hop.Addr = a.from
				hop.Reached = a.reached
				break
			}
		}
		hops = append(hops, hop)
		if hop.Reached {
			return hops, nil
		}
	}
	return hops, nil
}

// RenderHops prints a traceroute in the familiar layout.
func RenderHops(hops []Hop) string {
	out := ""
	for _, h := range hops {
		addr := "*"
		if !h.Addr.IsZero() {
			addr = h.Addr.String()
		}
		mark := ""
		if h.Reached {
			mark = "  (destination)"
		}
		out += fmt.Sprintf("%2d  %s%s\n", h.TTL, addr, mark)
	}
	return out
}
