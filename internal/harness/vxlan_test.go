package harness

import (
	"testing"
	"time"

	"repro/internal/ethernet"
	"repro/internal/netaddr"
	"repro/internal/topology"
	"repro/internal/vxlan"
)

func TestVXLANOverMRMTPFabric(t *testing.T) {
	// The paper's §III.A scenario end to end: VMs on servers in
	// different racks exchange Ethernet frames through VXLAN tunnels
	// whose outer IP addresses are the *servers'* addresses — which is
	// precisely what lets the ingress ToR derive the destination ToR VID
	// (14) from the outer destination IP (192.168.14.1). The wire stack
	// inside the fabric is therefore:
	//
	//   VM eth frame | VXLAN | UDP | outer IP | MR-MTP | fabric Ethernet
	f := buildAndWarm(t, topology.TwoPodSpec(), ProtoMRMTP)
	srcStack, srcDev, _ := f.ServerStack(11, 1)
	dstStack, dstDev, _ := f.ServerStack(14, 1)

	const vni = 5001
	vmA := netaddr.MAC{0x02, 0xaa, 0, 0, 0, 1}
	vmB := netaddr.MAC{0x02, 0xbb, 0, 0, 0, 2}

	vtepA := vxlan.NewVTEP(srcStack, srcDev.IP, vni)
	vtepB := vxlan.NewVTEP(dstStack, dstDev.IP, vni)
	// Static FDB, as an SDN controller would program it.
	vtepA.Learn(vmB, dstDev.IP)
	vtepB.Learn(vmA, srcDev.IP)

	var gotPayloads [][]byte
	vtepB.OnInnerFrame = func(inner ethernet.Frame) {
		if inner.Dst == vmB && inner.Src == vmA {
			gotPayloads = append(gotPayloads, append([]byte(nil), inner.Payload...))
		}
	}
	var replies int
	vtepA.OnInnerFrame = func(inner ethernet.Frame) {
		if inner.Dst == vmA {
			replies++
		}
	}

	for i := 0; i < 5; i++ {
		ok := vtepA.SendInner(ethernet.Frame{
			Dst: vmB, Src: vmA, EtherType: 0x0800,
			Payload: []byte{byte(i), 0xde, 0xad},
		})
		if !ok {
			t.Fatal("FDB miss for a learned MAC")
		}
	}
	f.Sim.RunFor(100 * time.Millisecond)
	if len(gotPayloads) != 5 {
		t.Fatalf("VM B received %d frames, want 5", len(gotPayloads))
	}
	if gotPayloads[2][0] != 2 {
		t.Error("inner payload corrupted through the double encapsulation")
	}

	// And the reverse direction.
	vtepB.SendInner(ethernet.Frame{Dst: vmA, Src: vmB, EtherType: 0x0800, Payload: []byte("pong")})
	f.Sim.RunFor(100 * time.Millisecond)
	if replies != 1 {
		t.Errorf("VM A received %d replies, want 1", replies)
	}
	if vtepA.Stats.Encapsulated != 5 || vtepB.Stats.Decapsulated != 5 {
		t.Errorf("VTEP stats: %+v / %+v", vtepA.Stats, vtepB.Stats)
	}
}

func TestVXLANUnknownMACDropsLocally(t *testing.T) {
	f := buildAndWarm(t, topology.TwoPodSpec(), ProtoMRMTP)
	srcStack, srcDev, _ := f.ServerStack(11, 1)
	vtep := vxlan.NewVTEP(srcStack, srcDev.IP, 7)
	if vtep.SendInner(ethernet.Frame{Dst: netaddr.MAC{9, 9, 9, 9, 9, 9}}) {
		t.Error("send to unlearned MAC claimed success")
	}
	if vtep.Stats.Unknown != 1 {
		t.Errorf("Unknown = %d", vtep.Stats.Unknown)
	}
}
