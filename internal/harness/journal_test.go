package harness

import (
	"testing"
	"time"

	"repro/internal/routerlog"
	"repro/internal/topology"
)

func TestLogPipelineCrossValidatesMetrics(t *testing.T) {
	// Run a TC1 failure with the raw-log journal attached, then recompute
	// the §VI metrics *from the rendered text logs* and compare with the
	// in-memory measurement. This validates the whole methodology chain
	// the paper used: script-stamped failure time, print-statement update
	// records, offline parsing.
	journal := &routerlog.Journal{}
	opts := DefaultOptions(topology.TwoPodSpec(), ProtoMRMTP, 19)
	opts.Journal = journal
	f, err := Build(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.WarmUp(WarmupTime); err != nil {
		t.Fatal(err)
	}
	journal.Lines = nil // start the "log collection" at steady state
	failAt, err := f.Fail(topology.TC1)
	if err != nil {
		t.Fatal(err)
	}
	f.Sim.RunFor(SettleTime)

	mem := f.Log.Analyze(failAt)

	lines, err := routerlog.Parse(journal.Render())
	if err != nil {
		t.Fatal(err)
	}
	fromLogs, err := routerlog.Analyze(lines)
	if err != nil {
		t.Fatal(err)
	}
	if fromLogs.FailureAt != failAt {
		t.Errorf("log failure time %v != injected %v", fromLogs.FailureAt, failAt)
	}
	// Text logs carry microsecond precision; allow a 1µs rounding skew.
	diff := fromLogs.Convergence - mem.Convergence
	if diff < -time.Microsecond || diff > time.Microsecond {
		t.Errorf("convergence from logs %v != in-memory %v", fromLogs.Convergence, mem.Convergence)
	}
	if fromLogs.ControlBytes != mem.ControlBytes || fromLogs.ControlMsgs != mem.ControlMessages {
		t.Errorf("control from logs %d B/%d != in-memory %d B/%d",
			fromLogs.ControlBytes, fromLogs.ControlMsgs, mem.ControlBytes, mem.ControlMessages)
	}
	if fromLogs.BlastRadius != mem.BlastRadius {
		t.Errorf("blast from logs %d != in-memory %d", fromLogs.BlastRadius, mem.BlastRadius)
	}
}

func TestJournalBGP(t *testing.T) {
	journal := &routerlog.Journal{}
	opts := DefaultOptions(topology.TwoPodSpec(), ProtoBGP, 23)
	opts.Journal = journal
	f, err := Build(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.WarmUp(WarmupTime); err != nil {
		t.Fatal(err)
	}
	journal.Lines = nil
	if _, err := f.Fail(topology.TC2); err != nil {
		t.Fatal(err)
	}
	f.Sim.RunFor(SettleTime)
	lines, err := routerlog.Parse(journal.Render())
	if err != nil {
		t.Fatal(err)
	}
	a, err := routerlog.Analyze(lines)
	if err != nil {
		t.Fatal(err)
	}
	if a.ControlMsgs == 0 || a.BlastRadius == 0 {
		t.Errorf("BGP log analysis empty: %+v", a)
	}
}
