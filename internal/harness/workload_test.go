package harness

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/topology"
	"repro/internal/workload"
)

// smallWorkload keeps harness-level workload tests fast: few fixed-size
// flows, arrivals compressed into ~50ms.
func smallWorkload() WorkloadConfig {
	w := DefaultWorkloadConfig()
	w.Flows = 24
	w.Sizes = workload.FixedSize(4000)
	w.MeanArrival = 2 * time.Millisecond
	w.MaxRun = 10 * time.Second
	return w
}

func TestRunWorkloadSteadyState(t *testing.T) {
	res, err := RunWorkload(DefaultOptions(topology.TwoPodSpec(), ProtoMRMTP, 42), smallWorkload())
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Completed != res.Report.Flows || res.Report.Flows != 24 {
		t.Fatalf("completed %d/%d flows, want all 24", res.Report.Completed, res.Report.Flows)
	}
	if res.Report.Incomplete != 0 || res.Report.Abandoned != 0 {
		t.Errorf("incomplete=%d abandoned=%d, want 0/0", res.Report.Incomplete, res.Report.Abandoned)
	}
	// 4000-byte flows land in the small bucket with real FCTs.
	if got := res.Report.Buckets[0].Completed; got != 24 {
		t.Errorf("small bucket completed = %d, want 24", got)
	}
	for _, ms := range res.Report.Buckets[0].FCTms {
		if ms <= 0 {
			t.Fatalf("non-positive FCT %v ms", ms)
		}
	}
	// Every leaf and pod spine forwarded something, so the imbalance view
	// must have busy groups with sane indices.
	if res.Imbalance.N == 0 {
		t.Fatal("no busy uplink groups measured")
	}
	if res.Imbalance.Min < 1 {
		t.Errorf("max/mean ratio %v < 1 is impossible", res.Imbalance.Min)
	}
	if res.JainMean <= 0 || res.JainMean > 1 {
		t.Errorf("Jain mean %v outside (0,1]", res.JainMean)
	}
	if res.PeakUtil <= 0 {
		t.Error("shaped links should report nonzero utilization")
	}
	if len(res.Series) == 0 {
		t.Error("no telemetry series recorded")
	}
}

func TestRunWorkloadMidFailureRepairs(t *testing.T) {
	w := smallWorkload()
	w.MidFailure = true
	// Fail TC2 while arrivals are still in flight so some flows lose
	// packets mid-transfer and must be repaired after reconvergence.
	w.FailAfter = 20 * time.Millisecond
	w.MeanArrival = 10 * time.Millisecond
	res, err := RunWorkload(DefaultOptions(topology.TwoPodSpec(), ProtoMRMTP, 42), w)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scenario != "midfail" {
		t.Errorf("scenario = %q, want midfail", res.Scenario)
	}
	if res.Report.Completed != res.Report.Flows {
		t.Fatalf("completed %d/%d flows across the failure, want all",
			res.Report.Completed, res.Report.Flows)
	}
	if res.Report.Retransmits == 0 {
		t.Error("expected retransmits repairing packets lost to the failure")
	}
}

func TestRunWorkloadUnderChaos(t *testing.T) {
	w := smallWorkload()
	// A compressed flap-burst on L-1-1's uplink, timed to overlap the
	// arrival window (the catalog's 500 ms lead-in would outlive these
	// short flows).
	w.Chaos = &chaos.Spec{Name: "flap-burst", Faults: []chaos.Fault{{
		Kind: chaos.FlapStorm, Link: chaos.LinkRef{Device: "L-1-1", Peer: "S-1-1"},
		Start: chaos.Duration(10 * time.Millisecond), Flaps: 4,
		Period: chaos.Duration(100 * time.Millisecond), Duty: 0.5,
	}}}
	w.MeanArrival = 10 * time.Millisecond
	w.FailAfter = 20 * time.Millisecond
	res, err := RunWorkload(DefaultOptions(topology.TwoPodSpec(), ProtoMRMTP, 42), w)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scenario != "chaos:flap-burst" {
		t.Errorf("scenario = %q, want chaos:flap-burst", res.Scenario)
	}
	// The storm takes one of two equal-cost uplinks in and out; the
	// engine's retransmission machinery must still land every flow.
	if res.Report.Completed != res.Report.Flows {
		t.Fatalf("completed %d/%d flows under the flap storm, want all",
			res.Report.Completed, res.Report.Flows)
	}
	if res.Report.Retransmits == 0 {
		t.Error("expected retransmits repairing packets lost to the storm")
	}
}

func TestWorkloadTrialsDeterministicAcrossPool(t *testing.T) {
	opts := DefaultOptions(topology.TwoPodSpec(), ProtoBGP, 7)
	w := smallWorkload()
	w.Flows = 12
	var seq, par WorkloadSummary
	withWorkers(t, 1, func() {
		s, _, err := RunWorkloadTrials(opts, w, 2)
		if err != nil {
			t.Fatal(err)
		}
		seq = s
	})
	withWorkers(t, 4, func() {
		s, _, err := RunWorkloadTrials(opts, w, 2)
		if err != nil {
			t.Fatal(err)
		}
		par = s
	})
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("summary differs between sequential and parallel pools:\n%+v\n%+v", seq, par)
	}
	if seq.Trials != 2 || seq.Flows != 24 {
		t.Errorf("pooled %d trials / %d flows, want 2 / 24", seq.Trials, seq.Flows)
	}
}

func TestSummarizeWorkloadPoolsBuckets(t *testing.T) {
	mk := func(fct float64) WorkloadResult {
		return WorkloadResult{
			Protocol: ProtoMRMTP,
			Pods:     2,
			Scenario: "steady",
			Report: workload.Report{
				Flows: 1, Completed: 1, PacketsSent: 4,
				Buckets: []workload.BucketReport{{Label: "S", Flows: 1, Completed: 1, FCTms: []float64{fct}}},
			},
			GroupLoads: []workload.GroupLoad{
				{Name: "L-1-1", Bytes: []uint64{3, 1}, MaxOverMean: 1.5, Jain: 0.8},
				{Name: "L-1-2", Bytes: []uint64{0, 0}, MaxOverMean: 1, Jain: 1},
			},
			JainMean: 0.8,
			Drops:    2,
		}
	}
	s := SummarizeWorkload([]WorkloadResult{mk(1), mk(3)})
	if s.Flows != 2 || s.Completed != 2 || s.CompletionRate != 1 {
		t.Errorf("flows=%d completed=%d rate=%v", s.Flows, s.Completed, s.CompletionRate)
	}
	if s.Buckets[0].FCT.N != 2 || s.Buckets[0].FCT.Mean != 2 {
		t.Errorf("pooled FCT summary = %+v, want n=2 mean=2", s.Buckets[0].FCT)
	}
	// Idle groups are excluded from the pooled imbalance sample.
	if s.Imbalance.N != 2 || s.Imbalance.Mean != 1.5 {
		t.Errorf("imbalance = %+v, want n=2 mean=1.5", s.Imbalance)
	}
	if s.Drops != 2 {
		t.Errorf("drops = %v, want mean 2", s.Drops)
	}
	if out := RenderWorkload(s); len(out) == 0 {
		t.Error("empty render")
	}
}
