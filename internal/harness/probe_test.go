package harness

import (
	"testing"
	"time"

	"repro/internal/topology"
)

func TestPingBothFabrics(t *testing.T) {
	for _, proto := range []Protocol{ProtoMRMTP, ProtoBGP} {
		f := buildAndWarm(t, topology.TwoPodSpec(), proto)
		res, err := Ping(f, 11, 14, time.Second)
		if err != nil {
			t.Fatalf("%v: %v", proto, err)
		}
		if !res.OK {
			t.Fatalf("%v: ping got no reply", proto)
		}
		// RTT = 2 × (hops × link latency + processing); sub-millisecond.
		if res.RTT <= 0 || res.RTT > 10*time.Millisecond {
			t.Errorf("%v: RTT = %v", proto, res.RTT)
		}
		t.Logf("%v: ping 192.168.11.1 -> 192.168.14.1: %v", proto, res.RTT)
	}
}

func TestPingFailsAcrossPartition(t *testing.T) {
	f := buildAndWarm(t, topology.TwoPodSpec(), ProtoMRMTP)
	// Cut both of L-2-2's uplinks: VID 14 becomes unreachable.
	leaf := f.Sim.Node("L-2-2")
	leaf.Port(1).Fail()
	leaf.Port(2).Fail()
	f.Sim.RunFor(time.Second)
	res, err := Ping(f, 11, 14, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK {
		t.Error("ping succeeded across a fully partitioned rack")
	}
}

func TestTracerouteBGPShowsEveryRouter(t *testing.T) {
	// The BGP fabric is a chain of IP hops: leaf gateway, spine, top,
	// spine, leaf, destination = 6 probes.
	f := buildAndWarm(t, topology.TwoPodSpec(), ProtoBGP)
	hops, err := Traceroute(f, 11, 14, 10)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("BGP traceroute:\n%s", RenderHops(hops))
	if len(hops) != 6 {
		t.Fatalf("BGP path = %d hops, want 6 (5 routers + destination)", len(hops))
	}
	for i, h := range hops {
		if h.Addr.IsZero() {
			t.Errorf("hop %d unanswered", i+1)
		}
	}
	if !hops[len(hops)-1].Reached {
		t.Error("destination never reached")
	}
	// First hop is the rack gateway.
	if got := hops[0].Addr.String(); got != "192.168.11.254" {
		t.Errorf("first hop = %s, want the rack gateway", got)
	}
}

func TestTracerouteMRMTPShowsOneHop(t *testing.T) {
	// The MR-MTP fabric is invisible to IP: one gateway hop, then the
	// destination.
	f := buildAndWarm(t, topology.TwoPodSpec(), ProtoMRMTP)
	hops, err := Traceroute(f, 11, 14, 10)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("MR-MTP traceroute:\n%s", RenderHops(hops))
	if len(hops) != 2 {
		t.Fatalf("MR-MTP path = %d hops, want 2 (gateway + destination)", len(hops))
	}
	if got := hops[0].Addr.String(); got != "192.168.11.254" {
		t.Errorf("first hop = %s, want the ingress ToR gateway", got)
	}
	if !hops[1].Reached {
		t.Error("destination never reached")
	}
}
