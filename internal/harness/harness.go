// Package harness orchestrates the paper's experiments: it realizes a
// folded-Clos topology in the simulator, deploys one of the three protocol
// configurations (MR-MTP, BGP/ECMP, BGP/ECMP/BFD), injects interface
// failures at the paper's TC1–TC4 points, and collects the metrics of
// Figs. 4–10. It is the in-process equivalent of the paper's FABRIC
// automation scripts (topology bring-up, software deployment, failure
// injection, log collection and parsing).
package harness

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/bfd"
	"repro/internal/bgp"
	"repro/internal/ipstack"
	"repro/internal/metrics"
	"repro/internal/mrmtp"
	"repro/internal/netaddr"
	"repro/internal/routerlog"
	"repro/internal/simnet"
	"repro/internal/topology"
)

// Protocol selects the routing configuration under test.
type Protocol int

// The paper's three configurations.
const (
	ProtoMRMTP Protocol = iota
	ProtoBGP
	ProtoBGPBFD
)

func (p Protocol) String() string {
	switch p {
	case ProtoMRMTP:
		return "MR-MTP"
	case ProtoBGP:
		return "BGP/ECMP"
	case ProtoBGPBFD:
		return "BGP/ECMP/BFD"
	}
	return fmt.Sprintf("Protocol(%d)", int(p))
}

// Options configures a fabric build.
type Options struct {
	Spec topology.Spec
	// MultiTier, when non-nil, selects the four-tier fabric of the
	// paper's §IX scaling study instead of Spec.
	MultiTier *topology.MultiTierSpec
	Protocol  Protocol
	Seed      int64

	// Partitions selects the space-parallel engine: the fabric is split
	// across this many shards (PoDs must divide evenly; tops round-robin,
	// see topology.PartitionByPod) and run under conservative lookahead
	// synchronization. 0 or 1 means the sequential engine. Results are
	// bit-identical either way (DESIGN.md §11).
	Partitions int

	// BGPTimers defaults to the paper's 1 s/3 s with MRAI 0.
	BGPTimers bgp.Timers
	// BFD defaults to 100 ms × 3.
	BFD bfd.Config
	// MTPHello/MTPDead default to 50 ms/100 ms.
	MTPHello time.Duration
	MTPDead  time.Duration
	// MTPAccept is the Slow-to-Accept threshold (3 in the paper; 1
	// disables dampening, for the ablation benchmarks).
	MTPAccept int
	// BGPNoFastFailover disables interface tracking in the BGP speakers
	// (`no bgp fast-external-failover`), for the ablation benchmarks.
	BGPNoFastFailover bool
	// Journal, when non-nil, additionally records raw text logs of every
	// protocol event and failure injection — the paper's log-collection
	// methodology (§VI.B), re-analyzable with the routerlog package.
	Journal *routerlog.Journal
}

// DefaultOptions returns the paper's configuration for a protocol/topology.
func DefaultOptions(spec topology.Spec, proto Protocol, seed int64) Options {
	return Options{
		Spec:       spec,
		Protocol:   proto,
		Seed:       seed,
		BGPTimers:  bgp.DefaultTimers(),
		BFD:        bfd.DefaultConfig(),
		MTPHello:   50 * time.Millisecond,
		MTPDead:    100 * time.Millisecond,
		MTPAccept:  3,
		Partitions: DefaultPartitions,
	}
}

// DefaultPartitions is the shard count DefaultOptions picks up; closlab's
// -shards flag sets it before any fabric is built.
var DefaultPartitions = 1 //simlint:shared parallelism knob set by main before trials start, read-only afterwards

// Fabric is a realized, running testbed.
type Fabric struct {
	Opts Options
	// Sim is the event engine driving the fabric: a sequential *simnet.Sim,
	// or a *simnet.Cluster when Opts.Partitions > 1.
	Sim simnet.Engine
	// Cluster is the partitioned engine (nil when sequential).
	Cluster *simnet.Cluster
	// Part is the device→shard assignment (nil when sequential).
	Part *topology.Partition
	Topo *topology.Topology
	Log  *metrics.Log

	// shardLogs buffer protocol events per shard during parallel windows;
	// mergeShardLogs drains them into Log at every quiesce.
	shardLogs []*metrics.Log

	Speakers map[string]*bgp.Speaker   // BGP modes
	BFDs     map[string]*bfd.Manager   // BGP/BFD mode
	Routers  map[string]*mrmtp.Router  // MR-MTP mode
	Stacks   map[string]*ipstack.Stack // servers always; routers in BGP modes

	started  bool
	probeSeq uint16 // last ICMP probe ID handed out (Ping/Traceroute)
}

// nextProbeID issues a fresh ICMP echo ID. The counter lives on the fabric
// rather than at package level so concurrent trials — each with its own
// Fabric — never share state (the sharedstate lint rule, DESIGN.md §9).
func (f *Fabric) nextProbeID() uint16 {
	f.probeSeq++
	return f.probeSeq
}

// Build realizes the fabric. Call Start (or WarmUp) before experiments.
func Build(opts Options) (*Fabric, error) {
	var topo *topology.Topology
	var err error
	if opts.MultiTier != nil {
		topo, err = topology.BuildMultiTier(*opts.MultiTier)
	} else {
		topo, err = topology.Build(opts.Spec)
	}
	if err != nil {
		return nil, err
	}
	f := &Fabric{
		Opts:     opts,
		Topo:     topo,
		Log:      &metrics.Log{},
		Speakers: make(map[string]*bgp.Speaker),
		BFDs:     make(map[string]*bfd.Manager),
		Routers:  make(map[string]*mrmtp.Router),
		Stacks:   make(map[string]*ipstack.Stack),
		probeSeq: 0x4d54, // "MT": probe IDs stay recognizable in captures
	}

	var addNode func(name string) *simnet.Node
	var connect func(a, b *simnet.Port)
	if opts.Partitions > 1 {
		if opts.Journal != nil {
			return nil, fmt.Errorf("harness: Journal capture requires the sequential engine (Partitions=1): raw-log appends from parallel shards would race")
		}
		part, perr := topology.PartitionByPod(topo, opts.Partitions)
		if perr != nil {
			return nil, perr
		}
		cl := simnet.NewCluster(opts.Seed, opts.Partitions)
		cl.OnQuiesce = f.mergeShardLogs
		f.Sim, f.Cluster, f.Part = cl, cl, part
		f.shardLogs = make([]*metrics.Log, opts.Partitions)
		for i := range f.shardLogs {
			f.shardLogs[i] = &metrics.Log{}
		}
		addNode = func(name string) *simnet.Node {
			shard, _ := part.Shard(name)
			return cl.AddNode(name, shard)
		}
		connect = func(a, b *simnet.Port) { cl.Connect(a, b) }
	} else {
		seq := simnet.New(opts.Seed)
		f.Sim = seq
		addNode = seq.AddNode
		connect = func(a, b *simnet.Port) { seq.Connect(a, b) }
	}

	// Nodes and ports, in sorted-name order: Devices is a map, and letting
	// its iteration order pick node indices (and so MAC addresses) would
	// make wire captures differ between otherwise identical runs.
	names := make([]string, 0, len(topo.Devices))
	for name := range topo.Devices {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		dev := topo.Devices[name]
		n := addNode(name)
		for range dev.Ports[1:] {
			n.AddPort()
		}
		n.Meta["tier"] = dev.Tier.String()
	}
	for _, l := range topo.Links {
		connect(
			f.Sim.Node(l.A.Device.Name).Port(l.A.Index),
			f.Sim.Node(l.B.Device.Name).Port(l.B.Index),
		)
	}

	// Servers always run the plain IP stack with a default route at the
	// rack gateway; both fabrics present the same .254 gateway.
	for _, srv := range topo.Servers {
		node := f.Sim.Node(srv.Name)
		stack := ipstack.New(node)
		leafPort := srv.Ports[1].Peer // the ToR end of the rack link
		subnet := srv.Ports[1].Subnet
		ifc := stack.AddIface(node.Port(1), srv.IP, subnet)
		stack.AddDefaultRoute(topology.LeafGatewayIP(leafPort.Device), ifc)
		f.Stacks[srv.Name] = stack
	}

	switch opts.Protocol {
	case ProtoMRMTP:
		f.buildMRMTP()
	case ProtoBGP, ProtoBGPBFD:
		f.buildBGP(opts.Protocol == ProtoBGPBFD)
	default:
		return nil, fmt.Errorf("harness: unknown protocol %d", int(opts.Protocol))
	}
	return f, nil
}

func (f *Fabric) buildMRMTP() {
	top := 1
	for _, d := range f.Topo.Routers() {
		if d.Level > top {
			top = d.Level
		}
	}
	for _, d := range f.Topo.Routers() {
		cfg := mrmtp.DefaultConfig(d.Level, top)
		cfg.HelloInterval = f.Opts.MTPHello
		cfg.DeadInterval = f.Opts.MTPDead
		// Give every router a trace identity so TTL-expired probes earn a
		// time-exceeded reply attributable to this hop (same ID space as
		// the BGP fabric's router IDs).
		cfg.Identity = routerID(d)
		if f.Opts.MTPAccept > 0 {
			cfg.AcceptHellos = f.Opts.MTPAccept
		}
		if d.Tier == topology.TierLeaf {
			cfg.ServerPort = d.ServerPort
			cfg.RackSubnet = d.ServerSubnet
		}
		f.Routers[d.Name] = mrmtp.New(f.Sim.Node(d.Name), cfg, f.recorderFor(d.Name))
	}
}

func (f *Fabric) buildBGP(withBFD bool) {
	for _, d := range f.Topo.Routers() {
		node := f.Sim.Node(d.Name)
		stack := ipstack.New(node)
		f.Stacks[d.Name] = stack
		cfg := bgp.Config{
			ASN:                 uint16(d.ASN),
			RouterID:            routerID(d),
			Timers:              f.Opts.BGPTimers,
			ECMP:                true,
			DisableFastFailover: f.Opts.BGPNoFastFailover,
		}
		if d.Tier == topology.TierLeaf {
			cfg.Networks = []netaddr.Prefix{d.ServerSubnet}
		}
		sp := bgp.New(stack, cfg, f.recorderFor(d.Name))
		f.Speakers[d.Name] = sp
		var mgr *bfd.Manager
		if withBFD {
			mgr = bfd.NewManager(stack)
			f.BFDs[d.Name] = mgr
		}
		for _, p := range d.Ports[1:] {
			peerDev := p.Peer.Device
			if peerDev.Tier == topology.TierServer {
				// Rack interface: address only (the connected route
				// makes the subnet reachable and advertisable).
				stack.AddIface(node.Port(p.Index), topology.LeafGatewayIP(d), d.ServerSubnet)
				continue
			}
			ifc := stack.AddIface(node.Port(p.Index), p.IP, p.Subnet)
			peer := sp.AddPeer(ifc, p.Peer.IP, uint16(peerDev.ASN))
			if withBFD {
				sess := mgr.Add(p.IP, p.Peer.IP, f.Opts.BFD)
				sess.OnDown = peer.BFDDown
			}
		}
	}
}

// routerID derives a unique BGP identifier per device.
func routerID(d *topology.Device) netaddr.IPv4 {
	return netaddr.MakeIPv4(10, byte(d.Tier), byte(d.Pod), byte(d.Index))
}

// recorderFor returns the metrics sink for one device, teeing into the
// raw-log journal when one is configured. Under the partitioned engine each
// device records into its shard's private log (appending to the shared Log
// from parallel windows would race); mergeShardLogs recombines them
// deterministically at every quiesce.
func (f *Fabric) recorderFor(device string) metrics.Recorder {
	sink := metrics.Recorder(f.Log)
	if f.Cluster != nil {
		shard, _ := f.Part.Shard(device)
		sink = f.shardLogs[shard]
	}
	if f.Opts.Journal != nil {
		return metrics.Tee{sink, f.Opts.Journal}
	}
	return sink
}

// mergeShardLogs drains the per-shard event buffers into Log, merging by
// timestamp (each shard's buffer is already time-ordered because a shard
// processes its heap monotonically). Ties at one instant break by shard
// index; every downstream computation (Analyze, Timeline) is
// order-insensitive within an instant, so the merged log is equivalent to a
// sequential run's. Runs via Cluster.OnQuiesce with all workers idle.
func (f *Fabric) mergeShardLogs() {
	idx := make([]int, len(f.shardLogs))
	for {
		best := -1
		var at time.Duration
		for s, l := range f.shardLogs {
			if idx[s] < len(l.Events) && (best < 0 || l.Events[idx[s]].At < at) {
				best, at = s, l.Events[idx[s]].At
			}
		}
		if best < 0 {
			break
		}
		f.Log.Events = append(f.Log.Events, f.shardLogs[best].Events[idx[best]])
		idx[best]++
	}
	for _, l := range f.shardLogs {
		l.Reset()
	}
}

// Start launches every protocol daemon.
func (f *Fabric) Start() {
	if f.started {
		return
	}
	f.started = true
	f.Sim.Start()
}

// WarmUp starts the fabric and runs it to steady state, then clears the
// metrics log so only post-failure events are analyzed (the paper likewise
// measures from the failure instant). It returns an error if the fabric did
// not converge, so experiments never run on a half-built network.
func (f *Fabric) WarmUp(d time.Duration) error {
	f.Start()
	f.Sim.RunFor(d)
	if err := f.CheckConverged(); err != nil {
		return err
	}
	f.Log.Reset()
	return nil
}

// CheckConverged verifies steady state: all BGP sessions established and
// every router holding a route to every rack subnet, or every MR-MTP top
// spine holding one VID per ToR (the paper's Fig. 2 end state).
func (f *Fabric) CheckConverged() error {
	if f.Opts.Protocol == ProtoMRMTP {
		leaves := len(f.Topo.Leaves)
		for _, d := range f.Topo.Tops {
			r := f.Routers[d.Name]
			if r.TableSize() != leaves {
				return fmt.Errorf("harness: %s holds %d VIDs, want %d (one per ToR)", d.Name, r.TableSize(), leaves)
			}
		}
		leavesPerPod := f.Opts.Spec.LeavesPerPod
		if f.Opts.MultiTier != nil {
			leavesPerPod = f.Opts.MultiTier.LeavesPerPod
		}
		for _, d := range f.Topo.Spines {
			r := f.Routers[d.Name]
			if r.TableSize() != leavesPerPod {
				return fmt.Errorf("harness: %s holds %d VIDs, want %d", d.Name, r.TableSize(), leavesPerPod)
			}
		}
		if f.Opts.MultiTier != nil {
			// Zone spines hold one VID per leaf in their zone.
			perZone := f.Opts.MultiTier.PodsPerZone * f.Opts.MultiTier.LeavesPerPod
			for _, d := range f.Topo.Aggs {
				r := f.Routers[d.Name]
				if r.TableSize() != perZone {
					return fmt.Errorf("harness: %s holds %d VIDs, want %d", d.Name, r.TableSize(), perZone)
				}
			}
		}
		return nil
	}
	for _, d := range f.Topo.Routers() {
		sp := f.Speakers[d.Name]
		if got, want := sp.EstablishedCount(), len(sp.Peers()); got != want {
			return fmt.Errorf("harness: %s has %d/%d BGP sessions", d.Name, got, want)
		}
		stack := f.Stacks[d.Name]
		for _, leaf := range f.Topo.Leaves {
			if leaf.Name == d.Name {
				continue
			}
			if _, ok := stack.FIB.Lookup(leaf.ServerSubnet.Host(1)); !ok {
				return fmt.Errorf("harness: %s has no route to %s", d.Name, leaf.ServerSubnet)
			}
		}
	}
	return nil
}

// Fail injects the interface failure for a test case and returns the
// virtual time of the event.
func (f *Fabric) Fail(tc topology.FailureCase) (time.Duration, error) {
	fp, err := f.Topo.FailurePoint(tc)
	if err != nil {
		return 0, err
	}
	at := f.Sim.Now()
	f.Sim.Node(fp.Device).Port(fp.Port).Fail()
	if f.Opts.Journal != nil {
		f.Opts.Journal.FailureInjected(at, fp.Device, fp.Port)
	}
	return at, nil
}

// ServerStack returns the IP stack of the n-th server behind the ToR with
// the given VID.
func (f *Fabric) ServerStack(vid int, n int) (*ipstack.Stack, *topology.Device, error) {
	leaf := f.Topo.LeafByVID(vid)
	if leaf == nil {
		return nil, nil, fmt.Errorf("harness: no leaf with VID %d", vid)
	}
	count := 0
	for _, srv := range f.Topo.Servers {
		if srv.Ports[1].Peer.Device == leaf {
			count++
			if count == n {
				return f.Stacks[srv.Name], srv, nil
			}
		}
	}
	return nil, nil, fmt.Errorf("harness: leaf %s has no server #%d", leaf.Name, n)
}
