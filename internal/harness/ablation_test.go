package harness

import (
	"testing"
	"time"

	"repro/internal/topology"
	"repro/internal/trafficgen"
)

func TestAblationFastFailoverOff(t *testing.T) {
	// With fast-external-failover disabled, even a *local* carrier loss
	// waits for the hold timer: TC2's convergence degrades from
	// milliseconds to seconds. This is why RFC 7938 fabrics keep
	// interface tracking on.
	fast, err := RunFailure(DefaultOptions(topology.TwoPodSpec(), ProtoBGP, 3), topology.TC2)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions(topology.TwoPodSpec(), ProtoBGP, 3)
	opts.BGPNoFastFailover = true
	slow, err := RunFailure(opts, topology.TC2)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("TC2 convergence: fast-failover=%v, disabled=%v", fast.Convergence, slow.Convergence)
	if fast.Convergence > 100*time.Millisecond {
		t.Errorf("fast failover TC2 convergence = %v, want ms scale", fast.Convergence)
	}
	if slow.Convergence < time.Second {
		t.Errorf("disabled failover TC2 convergence = %v, want hold-timer scale", slow.Convergence)
	}
}

func TestECMPBalancesFlowsAcrossPlanes(t *testing.T) {
	// Many flows from one rack must split roughly evenly across the two
	// uplink planes, for both protocols (they share the flow hash).
	for _, proto := range []Protocol{ProtoMRMTP, ProtoBGP} {
		f := buildAndWarm(t, topology.TwoPodSpec(), proto)
		src, srcDev, _ := f.ServerStack(11, 1)
		_, dstDev, _ := f.ServerStack(14, 1)
		// 64 flows with distinct source ports.
		for i := 0; i < 64; i++ {
			cfg := trafficgen.DefaultConfig(srcDev.IP, dstDev.IP)
			cfg.SrcPort = 41000 + uint16(i)
			cfg.Interval = 10 * time.Millisecond
			trafficgen.NewSender(src, cfg).Start()
		}
		leaf := f.Sim.Node("L-1-1")
		before1 := leaf.Port(1).Counters.TxFrames
		before2 := leaf.Port(2).Counters.TxFrames
		f.Sim.RunFor(2 * time.Second)
		up1 := float64(leaf.Port(1).Counters.TxFrames - before1)
		up2 := float64(leaf.Port(2).Counters.TxFrames - before2)
		total := up1 + up2
		if total == 0 {
			t.Fatalf("%v: no uplink traffic", proto)
		}
		share := up1 / total
		t.Logf("%v: plane split %.0f/%.0f (%.2f)", proto, up1, up2, share)
		if share < 0.3 || share > 0.7 {
			t.Errorf("%v: plane-1 share = %.2f, want balanced (0.3..0.7)", proto, share)
		}
	}
}

func TestECMPFlowAffinity(t *testing.T) {
	// A single flow must never be re-pathed while the fabric is healthy:
	// zero out-of-order delivery across 5 seconds.
	f := buildAndWarm(t, topology.TwoPodSpec(), ProtoMRMTP)
	src, srcDev, _ := f.ServerStack(11, 1)
	dst, dstDev, _ := f.ServerStack(14, 1)
	cfg := trafficgen.DefaultConfig(srcDev.IP, dstDev.IP)
	sender := trafficgen.NewSender(src, cfg)
	receiver := trafficgen.NewReceiver(dst, cfg.DstPort)
	sender.Start()
	f.Sim.RunFor(5 * time.Second)
	sender.Stop()
	f.Sim.RunFor(100 * time.Millisecond)
	rep := receiver.Report(sender)
	if rep.OutOfOrder != 0 || rep.Duplicated != 0 || rep.Lost != 0 {
		t.Errorf("healthy-fabric flow disturbed: %+v", rep)
	}
}
