package harness

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/topology"
)

func catalogSpec(t *testing.T, name string) chaos.Spec {
	t.Helper()
	for _, s := range ChaosCatalog() {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("no catalog scenario %q", name)
	return chaos.Spec{}
}

func runChaosCell(t *testing.T, name string, proto Protocol) ChaosResult {
	t.Helper()
	r, err := RunChaos(DefaultOptions(topology.TwoPodSpec(), proto, 42), catalogSpec(t, name))
	if err != nil {
		t.Fatalf("%s %s: %v", name, proto, err)
	}
	return r
}

func TestChaosCatalogValidatesAndApplies(t *testing.T) {
	specs := ChaosCatalog()
	if len(specs) < 6 {
		t.Fatalf("catalog has %d scenarios, want one per scenario class", len(specs))
	}
	seen := map[string]bool{}
	f, err := Build(DefaultOptions(topology.TwoPodSpec(), ProtoMRMTP, 1))
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range specs {
		if spec.Name == "" || seen[spec.Name] {
			t.Errorf("scenario name %q empty or duplicated", spec.Name)
		}
		seen[spec.Name] = true
		if err := spec.Validate(); err != nil {
			t.Errorf("%s: %v", spec.Name, err)
		}
		if spec.Horizon() <= 0 {
			t.Errorf("%s: non-positive horizon", spec.Name)
		}
		// Every catalog target must resolve on the standard fabric.
		if _, err := chaos.Apply(f.Sim, spec); err != nil {
			t.Errorf("%s does not apply to TwoPodSpec: %v", spec.Name, err)
		}
	}
}

// TestChaosFlapStormDampening is the dampening acceptance claim: under a
// slow flap storm MR-MTP performs at most one reconvergence wave per
// accepted up-transition, while BGP+BFD resets a session on every flap.
func TestChaosFlapStormDampening(t *testing.T) {
	spec := catalogSpec(t, "flap-storm")
	flaps := spec.Faults[0].Flaps

	mr := runChaosCell(t, "flap-storm", ProtoMRMTP)
	if mr.NeighborsAccepted == 0 {
		t.Fatal("storm produced no accepted up-transitions")
	}
	if uint64(mr.Reconvergences) > mr.NeighborsAccepted {
		t.Errorf("MR-MTP reconverged %d times for %d accepted up-transitions (want ≤1 per accept)",
			mr.Reconvergences, mr.NeighborsAccepted)
	}
	if mr.HellosDampened == 0 {
		t.Error("Slow-to-Accept dampened no hellos during the storm")
	}

	bgp := runChaosCell(t, "flap-storm", ProtoBGPBFD)
	if bgp.SessionResets < uint64(flaps) {
		t.Errorf("BGP reset %d sessions over %d flaps, want per-flap churn (≥%d)",
			bgp.SessionResets, flaps, flaps)
	}
	// Both protocols ride out a slow storm without touching the probe:
	// the faulted leaf uplink is one of two equal-cost paths.
	if mr.BlackholeTime != 0 || bgp.BlackholeTime != 0 {
		t.Errorf("slow storm blackholed traffic: mrmtp=%v bgp=%v", mr.BlackholeTime, bgp.BlackholeTime)
	}
}

// TestChaosFlapBurstDampening: when the up-windows are shorter than the
// Slow-to-Accept window, MR-MTP keeps the adjacency out for the whole storm
// instead of chasing each flap.
func TestChaosFlapBurstDampening(t *testing.T) {
	spec := catalogSpec(t, "flap-burst")
	flaps := uint64(spec.Faults[0].Flaps)

	mr := runChaosCell(t, "flap-burst", ProtoMRMTP)
	if mr.NeighborsAccepted >= flaps {
		t.Errorf("MR-MTP accepted %d up-transitions over %d burst flaps, want dampening", mr.NeighborsAccepted, flaps)
	}
	if uint64(mr.Reconvergences) > mr.NeighborsAccepted+1 {
		t.Errorf("MR-MTP reconverged %d times for %d accepts", mr.Reconvergences, mr.NeighborsAccepted)
	}
	if mr.HellosDampened < flaps {
		t.Errorf("only %d hellos dampened over %d flaps", mr.HellosDampened, flaps)
	}

	bgp := runChaosCell(t, "flap-burst", ProtoBGPBFD)
	if mr.RouteUpdates >= bgp.RouteUpdates {
		t.Errorf("MR-MTP churned %d route updates vs BGP's %d, want fewer", mr.RouteUpdates, bgp.RouteUpdates)
	}
}

// TestChaosOneWayFault: a one-way fiber cut is the scenario hello-based
// QDSA cannot heal — the victim tears its adjacency but the unaffected
// direction keeps refreshing the peer's dead timer, so the peer hashes
// flows into the dark receiver for the whole fault. BFD's three-way state
// signaling closes the loop and reroutes in milliseconds.
func TestChaosOneWayFault(t *testing.T) {
	spec := catalogSpec(t, "oneway-top")
	faultLen := spec.Faults[0].Duration.D()

	mr := runChaosCell(t, "oneway-top", ProtoMRMTP)
	if mr.BlackholeTime < faultLen-500*time.Millisecond {
		t.Errorf("MR-MTP blackhole %v under a %v one-way fault, expected near-total loss", mr.BlackholeTime, faultLen)
	}
	bgp := runChaosCell(t, "oneway-top", ProtoBGPBFD)
	if bgp.BlackholeTime > 100*time.Millisecond {
		t.Errorf("BGP+BFD blackhole %v, want BFD to heal a one-way fault in ms", bgp.BlackholeTime)
	}
}

// TestChaosCorrelatedWithdrawal: losing both plane uplinks of one spine
// leaves it unable to name any remote root — the DefaultRoot withdrawal
// must still get the leaves off it within milliseconds.
func TestChaosCorrelatedWithdrawal(t *testing.T) {
	mr := runChaosCell(t, "correlated-uplinks", ProtoMRMTP)
	if mr.BlackholeTime > 100*time.Millisecond {
		t.Errorf("MR-MTP blackhole %v after correlated uplink loss, want ms-scale via DefaultRoot withdrawal", mr.BlackholeTime)
	}
	bgp := runChaosCell(t, "correlated-uplinks", ProtoBGPBFD)
	if mr.RouteUpdates >= bgp.RouteUpdates {
		t.Errorf("MR-MTP route updates %d vs BGP %d, want cheaper convergence", mr.RouteUpdates, bgp.RouteUpdates)
	}
}

func TestChaosGrayLossHitsBothProtocols(t *testing.T) {
	// Neither protocol detects 30% one-way loss (hellos and keepalives
	// mostly survive): the campaign must show comparable probe damage and
	// zero reconvergence — the honest gray-failure result.
	for _, proto := range []Protocol{ProtoMRMTP, ProtoBGPBFD} {
		r := runChaosCell(t, "gray-spine", proto)
		if r.BlackholeTime < 500*time.Millisecond {
			t.Errorf("%s: gray loss cost only %v of probe traffic", proto, r.BlackholeTime)
		}
		if r.MaxOutage > 200*time.Millisecond {
			t.Errorf("%s: gray loss produced a hard outage (%v), expected scattered drops", proto, r.MaxOutage)
		}
	}
}

func TestChaosResultDeterminism(t *testing.T) {
	spec := catalogSpec(t, "flap-burst")
	opts := DefaultOptions(topology.TwoPodSpec(), ProtoMRMTP, 7)
	a, err := RunChaos(opts, spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunChaos(opts, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Events) == 0 || len(a.Events) != len(b.Events) {
		t.Fatalf("injector logs differ in length: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a.Events[i], b.Events[i])
		}
	}
	a.Events, b.Events = nil, nil
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same-seed results differ:\n%+v\n%+v", a, b)
	}
}

func TestChaosParallelMatchesSequential(t *testing.T) {
	spec := catalogSpec(t, "flap-burst")
	opts := DefaultOptions(topology.TwoPodSpec(), ProtoMRMTP, 3)

	old := Workers
	defer func() { Workers = old }()

	Workers = 1
	seq, seqTrials, err := RunChaosTrials(opts, spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	Workers = 4
	par, parTrials, err := RunChaosTrials(opts, spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	// ChaosSummary is flat and comparable by design, so bit-identity is
	// a single ==.
	if seq != par {
		t.Errorf("parallel summary differs from sequential:\nseq: %+v\npar: %+v", seq, par)
	}
	if len(seqTrials) != len(parTrials) {
		t.Fatalf("trial counts differ: %d vs %d", len(seqTrials), len(parTrials))
	}
}

func TestChaosArtifactsByteIdentical(t *testing.T) {
	spec := catalogSpec(t, "correlated-uplinks")
	render := func() ([]byte, []byte) {
		var runs []ChaosRun
		for _, proto := range []Protocol{ProtoMRMTP, ProtoBGPBFD} {
			sum, trials, err := RunChaosTrials(DefaultOptions(topology.TwoPodSpec(), proto, 11), spec, 2)
			if err != nil {
				t.Fatal(err)
			}
			runs = append(runs, ChaosRun{Summary: sum, Trials: trials})
		}
		csv := RenderChaosTimelineCSV(runs)
		js, err := RenderChaosSummaryJSON(runs)
		if err != nil {
			t.Fatal(err)
		}
		return csv, js
	}
	csv1, js1 := render()
	csv2, js2 := render()
	if !bytes.Equal(csv1, csv2) {
		t.Error("same-seed timeline CSVs differ")
	}
	if !bytes.Equal(js1, js2) {
		t.Error("same-seed summary JSONs differ")
	}
	if !strings.HasPrefix(string(csv1), "protocol,pods,scenario,trial,t_us,kind,action,target,detail,accused_link\n") {
		t.Errorf("unexpected CSV header: %q", strings.SplitN(string(csv1), "\n", 2)[0])
	}
	if !strings.Contains(string(js1), `"reconvergences_per_up_transition"`) {
		t.Error("summary JSON lacks the dampening ratio")
	}
	// The timeline must contain each trial's injector rows.
	if got := bytes.Count(csv1, []byte("\n")); got < 1+2*2*4 {
		t.Errorf("timeline CSV has %d rows, want ≥ header + 4 actions × 2 trials × 2 protocols", got)
	}
}
