package harness

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/capture"
	"repro/internal/ipstack"
	"repro/internal/netaddr"
	"repro/internal/topology"
	"repro/internal/trafficgen"
	"repro/internal/udp"
)

func buildAndWarm(t *testing.T, spec topology.Spec, proto Protocol) *Fabric {
	t.Helper()
	f, err := Build(DefaultOptions(spec, proto, 42))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := f.WarmUp(WarmupTime); err != nil {
		t.Fatalf("WarmUp: %v", err)
	}
	return f
}

func TestMRMTPFabricConverges(t *testing.T) {
	f := buildAndWarm(t, topology.TwoPodSpec(), ProtoMRMTP)
	if err := f.CheckConverged(); err != nil {
		t.Fatal(err)
	}
}

func TestFig2VIDTables(t *testing.T) {
	// The paper's Fig. 2: S1_1 acquires 11.1 and 12.1; the top spines
	// acquire one VID per ToR with the plane-1/plane-2 suffixes.
	f := buildAndWarm(t, topology.TwoPodSpec(), ProtoMRMTP)
	want := map[string][]string{
		"S-1-1": {"11.1", "12.1"},
		"S-1-2": {"11.2", "12.2"},
		"S-2-1": {"13.1", "14.1"},
		"T-1":   {"11.1.1", "12.1.1", "13.1.1", "14.1.1"},
		"T-3":   {"11.1.2", "12.1.2", "13.1.2", "14.1.2"},
		"T-4":   {"11.2.2", "12.2.2", "13.2.2", "14.2.2"},
	}
	for name, vids := range want {
		got := f.Routers[name].VIDs()
		if !reflect.DeepEqual(got, vids) {
			t.Errorf("%s VIDs = %v, want %v", name, got, vids)
		}
	}
	// VIDs' acquisition ports point toward the roots.
	if port := f.Routers["T-1"].EntryPort("11.1.1"); port != 1 {
		t.Errorf("T-1 acquired 11.1.1 on port %d, want 1 (toward pod 1)", port)
	}
}

func TestListing5VIDTableRender(t *testing.T) {
	f := buildAndWarm(t, topology.FourPodSpec(), ProtoMRMTP)
	out := f.Routers["T-1"].RenderVIDTable()
	// Listing 5 shape: one line per pod-facing port, two root VIDs each.
	for _, want := range []string{"eth1\t11.1.1, 12.1.1", "eth2\t13.1.1, 14.1.1", "eth3\t15.1.1, 16.1.1", "eth4\t17.1.1, 18.1.1"} {
		if !contains(out, want) {
			t.Errorf("VID table missing %q:\n%s", want, out)
		}
	}
}

func contains(haystack, needle string) bool {
	return len(haystack) >= len(needle) && (haystack == needle || len(haystack) > 0 && indexOf(haystack, needle) >= 0)
}

func indexOf(h, n string) int {
	for i := 0; i+len(n) <= len(h); i++ {
		if h[i:i+len(n)] == n {
			return i
		}
	}
	return -1
}

func TestBGPFabricConverges(t *testing.T) {
	for _, spec := range []topology.Spec{topology.TwoPodSpec(), topology.FourPodSpec()} {
		f := buildAndWarm(t, spec, ProtoBGP)
		if err := f.CheckConverged(); err != nil {
			t.Fatalf("%d pods: %v", spec.Pods, err)
		}
	}
}

func TestBGPBFDFabricConverges(t *testing.T) {
	f := buildAndWarm(t, topology.TwoPodSpec(), ProtoBGPBFD)
	if err := f.CheckConverged(); err != nil {
		t.Fatal(err)
	}
}

func TestListing3SpineRoutingTable(t *testing.T) {
	// A tier-2 spine's kernel table: connected link routes, single-path
	// routes to its own pod's leaves, ECMP pairs to remote pods.
	f := buildAndWarm(t, topology.FourPodSpec(), ProtoBGP)
	fib := &f.Stacks["S-1-1"].FIB
	out := fib.Render()
	for _, want := range []string{
		"proto kernel scope link",
		"192.168.11.0/24 via",
		"192.168.13.0/24 proto bgp metric 20",
		"nexthop via",
	} {
		if !contains(out, want) {
			t.Errorf("spine table missing %q:\n%s", want, out)
		}
	}
	// Remote-pod prefixes must be 2-way ECMP.
	r := fib.Get(netaddr.MakePrefix(netaddr.MakeIPv4(192, 168, 13, 0), 24), ipstack.ProtoBGP)
	if r == nil || len(r.NextHops) != 2 {
		t.Fatalf("remote prefix route = %+v, want 2-way ECMP", r)
	}
}

func TestMRMTPDataPath(t *testing.T) {
	f := buildAndWarm(t, topology.TwoPodSpec(), ProtoMRMTP)
	src, srcDev, err := f.ServerStack(11, 1)
	if err != nil {
		t.Fatal(err)
	}
	dst, dstDev, err := f.ServerStack(14, 1)
	if err != nil {
		t.Fatal(err)
	}
	var got int
	dst.ListenUDP(7, func(_, _ netaddr.IPv4, dg udp.Datagram) { got++ })
	for i := 0; i < 10; i++ {
		src.SendUDP(srcDev.IP, dstDev.IP, 9000+uint16(i), 7, []byte("cross-fabric"))
	}
	f.Sim.RunFor(100 * time.Millisecond)
	if got != 10 {
		t.Fatalf("delivered %d/10 packets across the MR-MTP fabric", got)
	}
}

func TestBGPDataPath(t *testing.T) {
	f := buildAndWarm(t, topology.TwoPodSpec(), ProtoBGP)
	src, srcDev, err := f.ServerStack(11, 1)
	if err != nil {
		t.Fatal(err)
	}
	dst, dstDev, err := f.ServerStack(14, 1)
	if err != nil {
		t.Fatal(err)
	}
	var got int
	dst.ListenUDP(7, func(_, _ netaddr.IPv4, dg udp.Datagram) { got++ })
	for i := 0; i < 10; i++ {
		src.SendUDP(srcDev.IP, dstDev.IP, 9000+uint16(i), 7, []byte("cross-fabric"))
	}
	f.Sim.RunFor(100 * time.Millisecond)
	if got != 10 {
		t.Fatalf("delivered %d/10 packets across the BGP fabric", got)
	}
}

func TestFig5MRMTPBlastRadius(t *testing.T) {
	// Paper §VII.B: MR-MTP blast radius 2-PoD: 3 (TC1/TC2), 1 (TC3/TC4);
	// 4-PoD: 7 and 3.
	want := map[int]map[topology.FailureCase]int{
		2: {topology.TC1: 3, topology.TC2: 3, topology.TC3: 1, topology.TC4: 1},
		4: {topology.TC1: 7, topology.TC2: 7, topology.TC3: 3, topology.TC4: 3},
	}
	for pods, cases := range want {
		spec := topology.TwoPodSpec()
		if pods == 4 {
			spec = topology.FourPodSpec()
		}
		for tc, wantBlast := range cases {
			r, err := RunFailure(DefaultOptions(spec, ProtoMRMTP, 1), tc)
			if err != nil {
				t.Fatalf("%d-pod %v: %v", pods, tc, err)
			}
			if r.BlastRadius != wantBlast {
				t.Errorf("%d-pod %v blast = %d (%v), want %d", pods, tc, r.BlastRadius, r.UpdatedNodes, wantBlast)
			}
		}
	}
}

func TestFig5BGPBlastRadiusTC3TC4(t *testing.T) {
	// Paper §VII.B: BGP blast radius for TC3/TC4 is 3 in the 2-PoD
	// topology and 5 in the 4-PoD topology.
	for _, c := range []struct {
		spec topology.Spec
		want int
	}{
		{topology.TwoPodSpec(), 3},
		{topology.FourPodSpec(), 5},
	} {
		for _, tc := range []topology.FailureCase{topology.TC3, topology.TC4} {
			r, err := RunFailure(DefaultOptions(c.spec, ProtoBGP, 1), tc)
			if err != nil {
				t.Fatalf("%v: %v", tc, err)
			}
			if r.BlastRadius != c.want {
				t.Errorf("%d-pod %v blast = %d (%v), want %d", c.spec.Pods, tc, r.BlastRadius, r.UpdatedNodes, c.want)
			}
		}
	}
}

func TestFig5BGPBlastRadiusLargerAtTC1(t *testing.T) {
	// The qualitative contrast of Fig. 5: for BGP a leaf-adjacent failure
	// touches most of the fabric, far more than a top-adjacent one.
	r1, err := RunFailure(DefaultOptions(topology.TwoPodSpec(), ProtoBGP, 1), topology.TC1)
	if err != nil {
		t.Fatal(err)
	}
	r3, err := RunFailure(DefaultOptions(topology.TwoPodSpec(), ProtoBGP, 1), topology.TC3)
	if err != nil {
		t.Fatal(err)
	}
	if r1.BlastRadius <= r3.BlastRadius {
		t.Errorf("TC1 blast (%d) should exceed TC3 blast (%d)", r1.BlastRadius, r3.BlastRadius)
	}
	if r1.BlastRadius < 7 {
		t.Errorf("TC1 blast = %d (%v), want most of the 12 routers", r1.BlastRadius, r1.UpdatedNodes)
	}
}

func TestFig4ConvergenceOrdering(t *testing.T) {
	// Fig. 4 at TC1: detection is remote, so convergence is dominated by
	// the dead timer: MR-MTP (100 ms) < BGP/BFD (300 ms) < BGP (3 s).
	conv := make(map[Protocol]time.Duration)
	for _, proto := range []Protocol{ProtoMRMTP, ProtoBGP, ProtoBGPBFD} {
		r, err := RunFailure(DefaultOptions(topology.TwoPodSpec(), proto, 7), topology.TC1)
		if err != nil {
			t.Fatalf("%v: %v", proto, err)
		}
		conv[proto] = r.Convergence
	}
	if !(conv[ProtoMRMTP] < conv[ProtoBGPBFD] && conv[ProtoBGPBFD] < conv[ProtoBGP]) {
		t.Errorf("convergence ordering violated: MR-MTP=%v BFD=%v BGP=%v",
			conv[ProtoMRMTP], conv[ProtoBGPBFD], conv[ProtoBGP])
	}
	if conv[ProtoMRMTP] > 150*time.Millisecond {
		t.Errorf("MR-MTP TC1 convergence = %v, want ~dead timer (<=150ms)", conv[ProtoMRMTP])
	}
	if conv[ProtoBGP] < time.Second {
		t.Errorf("plain BGP TC1 convergence = %v, want hold-timer scale", conv[ProtoBGP])
	}
}

func TestFig4TC2FasterThanTC1(t *testing.T) {
	// Fig. 4: at TC2 the update originator detects the failure locally,
	// so convergence is far below the detection-dominated TC1.
	for _, proto := range []Protocol{ProtoMRMTP, ProtoBGP} {
		r1, err := RunFailure(DefaultOptions(topology.TwoPodSpec(), proto, 3), topology.TC1)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := RunFailure(DefaultOptions(topology.TwoPodSpec(), proto, 3), topology.TC2)
		if err != nil {
			t.Fatal(err)
		}
		if r2.Convergence >= r1.Convergence {
			t.Errorf("%v: TC2 convergence %v should beat TC1 %v", proto, r2.Convergence, r1.Convergence)
		}
	}
}

func TestFig6ControlOverhead(t *testing.T) {
	// Fig. 6: MR-MTP's update bytes are far below BGP's, and the 4-PoD
	// overhead is roughly double the 2-PoD overhead for both.
	get := func(spec topology.Spec, proto Protocol) int {
		t.Helper()
		r, err := RunFailure(DefaultOptions(spec, proto, 5), topology.TC1)
		if err != nil {
			t.Fatal(err)
		}
		return r.ControlBytes
	}
	m2 := get(topology.TwoPodSpec(), ProtoMRMTP)
	m4 := get(topology.FourPodSpec(), ProtoMRMTP)
	b2 := get(topology.TwoPodSpec(), ProtoBGP)
	b4 := get(topology.FourPodSpec(), ProtoBGP)
	t.Logf("control overhead bytes: MR-MTP %d->%d, BGP %d->%d (paper: 120->264, 1023->2139)", m2, m4, b2, b4)
	if b2 <= 3*m2 || b4 <= 3*m4 {
		t.Errorf("BGP overhead (%d, %d) should be several times MR-MTP's (%d, %d)", b2, b4, m2, m4)
	}
	if m4 <= m2 || b4 <= b2 {
		t.Error("4-PoD overhead should exceed 2-PoD overhead for both protocols")
	}
	if m2 < 100 || m2 > 200 {
		t.Errorf("MR-MTP 2-PoD overhead = %d bytes, want ~120 (paper)", m2)
	}
}

func TestFig7PacketLossNearSender(t *testing.T) {
	// Fig. 7: sender at ToR 11 (close to the failures). TC1/TC3 are
	// detected locally by the forwarding node => tiny loss; TC2/TC4 wait
	// for the dead timer => loss scales with the timer.
	opts := DefaultOptions(topology.TwoPodSpec(), ProtoMRMTP, 11)
	near := func(proto Protocol, tc topology.FailureCase) uint64 {
		t.Helper()
		o := opts
		o.Protocol = proto
		r, err := RunLoss(o, tc, false)
		if err != nil {
			t.Fatalf("%v %v: %v", proto, tc, err)
		}
		return r.Report.Lost
	}
	mtpTC1, mtpTC2 := near(ProtoMRMTP, topology.TC1), near(ProtoMRMTP, topology.TC2)
	bgpTC2 := near(ProtoBGP, topology.TC2)
	bfdTC2 := near(ProtoBGPBFD, topology.TC2)
	t.Logf("near-sender loss: MR-MTP TC1=%d TC2=%d, BGP TC2=%d, BFD TC2=%d", mtpTC1, mtpTC2, bgpTC2, bfdTC2)
	if mtpTC1 > 5 {
		t.Errorf("MR-MTP TC1 loss = %d, want ~0 (local detection)", mtpTC1)
	}
	if mtpTC2 > 60 {
		t.Errorf("MR-MTP TC2 loss = %d, want ~dead-timer worth (<60)", mtpTC2)
	}
	if bgpTC2 < 300 {
		t.Errorf("BGP TC2 loss = %d, want hold-timer scale (>300)", bgpTC2)
	}
	if !(mtpTC2 < bfdTC2 && bfdTC2 < bgpTC2) {
		t.Errorf("loss ordering violated: MR-MTP %d, BFD %d, BGP %d", mtpTC2, bfdTC2, bgpTC2)
	}
}

func TestFig8PacketLossFarSender(t *testing.T) {
	// Fig. 8: sender at ToR 14 (far side). Now TC1/TC3 are the lossy
	// cases because the node forwarding into the failure is unaware.
	lossFor := func(proto Protocol, tc topology.FailureCase) uint64 {
		t.Helper()
		r, err := RunLoss(DefaultOptions(topology.TwoPodSpec(), proto, 13), tc, true)
		if err != nil {
			t.Fatalf("%v %v: %v", proto, tc, err)
		}
		return r.Report.Lost
	}
	mtpTC1 := lossFor(ProtoMRMTP, topology.TC1)
	mtpTC2 := lossFor(ProtoMRMTP, topology.TC2)
	bgpTC1 := lossFor(ProtoBGP, topology.TC1)
	t.Logf("far-sender loss: MR-MTP TC1=%d TC2=%d, BGP TC1=%d", mtpTC1, mtpTC2, bgpTC1)
	if mtpTC1 <= mtpTC2 {
		t.Errorf("far sender: TC1 loss (%d) should exceed TC2 loss (%d)", mtpTC1, mtpTC2)
	}
	if bgpTC1 < 300 {
		t.Errorf("BGP far-sender TC1 loss = %d, want hold-timer scale", bgpTC1)
	}
	if mtpTC1 > 60 {
		t.Errorf("MR-MTP far-sender TC1 loss = %d, want dead-timer scale (<60)", mtpTC1)
	}
}

func TestFig9KeepAliveBGPBFD(t *testing.T) {
	r, err := RunKeepAlive(DefaultOptions(topology.TwoPodSpec(), ProtoBGPBFD, 3), 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	bfdStats := r.Summary[capture.ClassBFD]
	kaStats := r.Summary[capture.ClassBGPKeepalive]
	if bfdStats.Count < 100 {
		t.Errorf("BFD frames in 10s = %d, want ~150+ (100ms interval, both directions)", bfdStats.Count)
	}
	if got := bfdStats.Bytes / max(bfdStats.Count, 1); got != 66 {
		t.Errorf("BFD frame size = %d bytes, want 66 (Fig. 9)", got)
	}
	if kaStats.Count < 10 {
		t.Errorf("BGP keepalives in 10s = %d, want ~20", kaStats.Count)
	}
	if got := kaStats.Bytes / max(kaStats.Count, 1); got != 85 {
		t.Errorf("BGP keepalive frame size = %d bytes, want 85 (Fig. 9)", got)
	}
	if r.Summary[capture.ClassTCPAck].Count == 0 {
		t.Error("no TCP acknowledgements captured; the paper counts them as BGP overhead")
	}
}

func TestFig10KeepAliveMRMTP(t *testing.T) {
	r, err := RunKeepAlive(DefaultOptions(topology.TwoPodSpec(), ProtoMRMTP, 3), 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	hello := r.Summary[capture.ClassMTPHello]
	if hello.Count < 300 {
		t.Errorf("MR-MTP hellos in 10s = %d, want ~400 (50ms both directions)", hello.Count)
	}
	if got := hello.Bytes / max(hello.Count, 1); got != 15 {
		t.Errorf("hello frame size = %d bytes, want 15 (Fig. 10)", got)
	}
	// No IP-world liveness machinery in the MR-MTP fabric.
	for _, cl := range []capture.Class{capture.ClassBFD, capture.ClassBGPKeepalive, capture.ClassTCPAck} {
		if r.Summary[cl].Count != 0 {
			t.Errorf("unexpected %s frames in MR-MTP fabric", cl)
		}
	}
}

func TestDataSuppressesKeepAlives(t *testing.T) {
	// Paper §IV.B/§IX: every MR-MTP message serves as a keep-alive, so a
	// busy link carries fewer explicit hellos than an idle one.
	f := buildAndWarm(t, topology.TwoPodSpec(), ProtoMRMTP)
	src, srcDev, _ := f.ServerStack(11, 1)
	_, dstDev, _ := f.ServerStack(12, 1) // same pod: crosses L-1-1's uplinks
	cfg := trafficgen.DefaultConfig(srcDev.IP, dstDev.IP)
	cfg.Interval = 5 * time.Millisecond
	cfg.SrcPort = PickFlowPort(f, cfg)
	sender := trafficgen.NewSender(src, cfg)
	leaf := f.Routers["L-1-1"]
	before := leaf.Stats.HellosSent
	f.Sim.RunFor(5 * time.Second)
	idleRate := float64(leaf.Stats.HellosSent-before) / 5
	sender.Start()
	before = leaf.Stats.HellosSent
	f.Sim.RunFor(5 * time.Second)
	busyRate := float64(leaf.Stats.HellosSent-before) / 5
	sender.Stop()
	if busyRate >= idleRate {
		t.Errorf("hello rate under load (%v/s) should drop below idle rate (%v/s)", busyRate, idleRate)
	}
}

func TestMRMTPRecovery(t *testing.T) {
	// Slow-to-Accept: after the failed interface is restored, the fabric
	// re-forms the meshed trees and end-to-end delivery resumes.
	f := buildAndWarm(t, topology.TwoPodSpec(), ProtoMRMTP)
	fp, _ := f.Topo.FailurePoint(topology.TC1)
	port := f.Sim.Node(fp.Device).Port(fp.Port)
	port.Fail()
	f.Sim.RunFor(2 * time.Second)
	port.Restore()
	f.Sim.RunFor(5 * time.Second)
	if err := f.CheckConverged(); err != nil {
		t.Fatalf("fabric did not recover: %v", err)
	}
	// The restored path must carry traffic again.
	src, srcDev, _ := f.ServerStack(11, 1)
	dst, dstDev, _ := f.ServerStack(14, 1)
	var got int
	dst.ListenUDP(8, func(_, _ netaddr.IPv4, dg udp.Datagram) { got++ })
	for i := 0; i < 20; i++ {
		src.SendUDP(srcDev.IP, dstDev.IP, 9100+uint16(i), 8, []byte("post-recovery"))
	}
	f.Sim.RunFor(200 * time.Millisecond)
	if got != 20 {
		t.Errorf("delivered %d/20 after recovery", got)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
