package harness

import (
	"testing"
	"time"

	"repro/internal/netaddr"
	"repro/internal/topology"
	"repro/internal/trafficgen"
	"repro/internal/udp"
)

func TestIntraRackSwitching(t *testing.T) {
	// Two servers behind one ToR talk through the ToR's local switching
	// path (proxy-ARP + gateway forwarding) — no fabric, no encapsulation
	// (paper §III.D handles only inter-rack traffic; intra-rack stays in
	// the IP world). Both protocol stacks must support it.
	for _, proto := range []Protocol{ProtoMRMTP, ProtoBGP} {
		spec := topology.TwoPodSpec()
		spec.ServersPerLeaf = 2
		f, err := Build(DefaultOptions(spec, proto, 61))
		if err != nil {
			t.Fatal(err)
		}
		if err := f.WarmUp(WarmupTime); err != nil {
			t.Fatal(err)
		}
		s1, d1, _ := f.ServerStack(11, 1)
		s2, d2, _ := f.ServerStack(11, 2)
		var got int
		s2.ListenUDP(7, func(_, _ netaddr.IPv4, dg udp.Datagram) { got++ })
		uplinkBefore := f.Sim.Node("L-1-1").Port(1).Counters.TxFrames +
			f.Sim.Node("L-1-1").Port(2).Counters.TxFrames
		for i := 0; i < 10; i++ {
			s1.SendUDP(d1.IP, d2.IP, 9800+uint16(i), 7, []byte("same rack"))
		}
		f.Sim.RunFor(100 * time.Millisecond)
		if got != 10 {
			t.Fatalf("%v: intra-rack delivered %d/10", proto, got)
		}
		uplinkAfter := f.Sim.Node("L-1-1").Port(1).Counters.TxFrames +
			f.Sim.Node("L-1-1").Port(2).Counters.TxFrames
		// Allow the odd hello/keepalive, but no data may leave the rack.
		if uplinkAfter-uplinkBefore > 6 {
			t.Errorf("%v: intra-rack traffic leaked onto %d uplink frames", proto, uplinkAfter-uplinkBefore)
		}
	}
}

func TestMultiServerRackAcrossFabric(t *testing.T) {
	// Both servers of one rack talk to both servers of a remote rack.
	spec := topology.TwoPodSpec()
	spec.ServersPerLeaf = 2
	for _, proto := range []Protocol{ProtoMRMTP, ProtoBGP} {
		f, err := Build(DefaultOptions(spec, proto, 62))
		if err != nil {
			t.Fatal(err)
		}
		if err := f.WarmUp(WarmupTime); err != nil {
			t.Fatal(err)
		}
		var got int
		for _, dstN := range []int{1, 2} {
			dst, _, _ := f.ServerStack(14, dstN)
			dst.ListenUDP(7, func(_, _ netaddr.IPv4, dg udp.Datagram) { got++ })
		}
		for _, srcN := range []int{1, 2} {
			src, srcDev, _ := f.ServerStack(11, srcN)
			for _, dstN := range []int{1, 2} {
				_, dstDev, _ := f.ServerStack(14, dstN)
				src.SendUDP(srcDev.IP, dstDev.IP, 9900+uint16(srcN*2+dstN), 7, []byte("x"))
			}
		}
		f.Sim.RunFor(100 * time.Millisecond)
		if got != 4 {
			t.Fatalf("%v: delivered %d/4 across multi-server racks", proto, got)
		}
	}
}

// setFabricBandwidth applies a rate limit to every router-router link,
// leaving rack links ideal so the bottleneck is the fabric.
func setFabricBandwidth(f *Fabric, bps int64, queue int) {
	for _, link := range f.Sim.Links() {
		// Rack links carry a server on one side.
		if link.A.Node.Meta["tier"] == "server" || link.B.Node.Meta["tier"] == "server" {
			continue
		}
		link.SetBandwidth(bps, queue)
	}
}

func TestCongestionLoadBalancingUsesBothPlanes(t *testing.T) {
	// Oversubscription: 32 flows at ~21 Mb/s aggregate offered into
	// 8 Mb/s links. With hashing across both planes the rack's egress
	// capacity is 16 Mb/s; delivered goodput must exceed what a single
	// plane could carry — proof the load balancing actually spreads load,
	// under both protocols (paper §III.C's stated purpose).
	for _, proto := range []Protocol{ProtoMRMTP, ProtoBGP} {
		f, err := Build(DefaultOptions(topology.TwoPodSpec(), proto, 63))
		if err != nil {
			t.Fatal(err)
		}
		if err := f.WarmUp(WarmupTime); err != nil {
			t.Fatal(err)
		}
		setFabricBandwidth(f, 8_000_000, 64)
		src, srcDev, _ := f.ServerStack(11, 1)
		dst, dstDev, _ := f.ServerStack(14, 1)
		var senders []*trafficgen.Sender
		var receivers []*trafficgen.Receiver
		for i := 0; i < 32; i++ {
			cfg := trafficgen.DefaultConfig(srcDev.IP, dstDev.IP)
			cfg.SrcPort = 42000 + uint16(i)
			cfg.DstPort = 47000 + uint16(i)
			cfg.Interval = 1200 * time.Microsecond
			cfg.Size = 1000
			receivers = append(receivers, trafficgen.NewReceiver(dst, cfg.DstPort))
			s := trafficgen.NewSender(src, cfg)
			senders = append(senders, s)
			s.Start()
		}
		f.Sim.RunFor(3 * time.Second)
		var sent, recv uint64
		for i, s := range senders {
			s.Stop()
			rep := receivers[i].Report(s)
			sent += rep.Sent
			recv += rep.Received
		}
		// Offered ≈ 32 × (1000B / 1.2ms) ≈ 21 Mb/s. One 8 Mb/s plane
		// could deliver at most ~1000 pkt/s per second of the run; both
		// planes roughly double that.
		singlePlaneCap := uint64(3100) // ~1000 pkt/s × 3s + slack
		t.Logf("%v: offered %d, delivered %d packets", proto, sent, recv)
		if recv <= singlePlaneCap {
			t.Errorf("%v: delivered %d packets <= single-plane capacity %d; load balancing is not using both planes",
				proto, recv, singlePlaneCap)
		}
	}
}

func TestCongestionQueueOverflowCounted(t *testing.T) {
	f, err := Build(DefaultOptions(topology.TwoPodSpec(), ProtoMRMTP, 64))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.WarmUp(WarmupTime); err != nil {
		t.Fatal(err)
	}
	setFabricBandwidth(f, 1_000_000, 8) // 1 Mb/s, tiny queues
	src, srcDev, _ := f.ServerStack(11, 1)
	_, dstDev, _ := f.ServerStack(14, 1)
	cfg := trafficgen.DefaultConfig(srcDev.IP, dstDev.IP)
	cfg.Interval = 500 * time.Microsecond // 16 Mb/s offered
	cfg.Size = 1000
	trafficgen.NewSender(src, cfg).Start()
	f.Sim.RunFor(2 * time.Second)
	var overflowed uint64
	for _, link := range f.Sim.Links() {
		overflowed += link.Overflowed()
	}
	if overflowed == 0 {
		t.Error("16x oversubscription with 8-frame queues overflowed nothing")
	}
}
