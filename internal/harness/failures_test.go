package harness

import (
	"testing"
	"time"

	"repro/internal/netaddr"
	"repro/internal/topology"
	"repro/internal/udp"
)

func TestNodeFailureSpine(t *testing.T) {
	// Losing a whole pod spine must converge and keep the fabric usable:
	// every prefix stays reachable through the surviving plane.
	for _, proto := range []Protocol{ProtoMRMTP, ProtoBGP} {
		r, err := RunNodeFailure(DefaultOptions(topology.TwoPodSpec(), proto, 9), "S-1-1")
		if err != nil {
			t.Fatalf("%v: %v", proto, err)
		}
		if r.BlastRadius == 0 {
			t.Errorf("%v: spine crash affected nobody", proto)
		}
		t.Logf("%v S-1-1 crash: convergence=%v blast=%d control=%dB", proto, r.Convergence, r.BlastRadius, r.ControlBytes)
	}
}

func TestNodeFailureTopSpineTrafficSurvives(t *testing.T) {
	// Crash T-1 and verify cross-pod traffic still flows after
	// reconvergence (over T-2..T-4).
	f := buildAndWarm(t, topology.TwoPodSpec(), ProtoMRMTP)
	if _, err := f.FailNode("T-1"); err != nil {
		t.Fatal(err)
	}
	f.Sim.RunFor(2 * time.Second)
	src, srcDev, _ := f.ServerStack(11, 1)
	dst, dstDev, _ := f.ServerStack(14, 1)
	var got int
	dst.ListenUDP(9, func(_, _ netaddr.IPv4, dg udp.Datagram) { got++ })
	for i := 0; i < 40; i++ {
		src.SendUDP(srcDev.IP, dstDev.IP, 9300+uint16(i), 9, []byte("survivor"))
	}
	f.Sim.RunFor(200 * time.Millisecond)
	if got != 40 {
		t.Errorf("delivered %d/40 after top-spine crash", got)
	}
}

func TestNodeCrashAndRebootRecovers(t *testing.T) {
	f := buildAndWarm(t, topology.TwoPodSpec(), ProtoMRMTP)
	if _, err := f.FailNode("S-1-1"); err != nil {
		t.Fatal(err)
	}
	f.Sim.RunFor(2 * time.Second)
	if err := f.RestoreNode("S-1-1"); err != nil {
		t.Fatal(err)
	}
	f.Sim.RunFor(5 * time.Second)
	if err := f.CheckConverged(); err != nil {
		t.Fatalf("fabric did not recover from node reboot: %v", err)
	}
}

func TestFlapDampeningMRMTPvsBGP(t *testing.T) {
	// A slowly bouncing interface: down 500 ms, up 4 s — long enough for
	// both protocols to re-engage each cycle, so each flap costs a full
	// lose-and-relearn round. MR-MTP's rounds are 18-byte LOST/FOUND
	// frames; BGP pays withdrawals plus a whole-table resync per session
	// re-establishment.
	mtp, err := RunFlap(DefaultOptions(topology.TwoPodSpec(), ProtoMRMTP, 3), 5, 500*time.Millisecond, 4*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !mtp.Recovered {
		t.Error("MR-MTP fabric did not recover after flapping stopped")
	}
	t.Logf("MR-MTP flap churn: %d msgs / %d bytes / %d route events", mtp.ControlMsgs, mtp.ControlBytes, mtp.RouteEvents)

	bgp, err := RunFlap(DefaultOptions(topology.TwoPodSpec(), ProtoBGP, 3), 5, 500*time.Millisecond, 4*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !bgp.Recovered {
		t.Error("BGP fabric did not recover after flapping stopped")
	}
	t.Logf("BGP flap churn: %d msgs / %d bytes / %d route events", bgp.ControlMsgs, bgp.ControlBytes, bgp.RouteEvents)
	if bgp.ControlBytes <= mtp.ControlBytes {
		t.Errorf("BGP churn (%d B) should exceed MR-MTP churn (%d B)", bgp.ControlBytes, mtp.ControlBytes)
	}
}

func TestFlapAblationNoDampening(t *testing.T) {
	// A rapidly toggling interface: up only 120 ms at a time, enough for
	// at most two consecutive hellos. Slow-to-Accept (3 hellos) never
	// re-admits the neighbor, so churn is bounded by the first LOST
	// round; with dampening disabled (accept after 1 hello) the fabric
	// re-forms and re-breaks every cycle — the §IV.B design choice.
	damped, err := RunFlap(DefaultOptions(topology.TwoPodSpec(), ProtoMRMTP, 5), 8, 150*time.Millisecond, 120*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions(topology.TwoPodSpec(), ProtoMRMTP, 5)
	opts.MTPAccept = 1
	eager, err := RunFlap(opts, 8, 150*time.Millisecond, 120*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("flap churn: damped=%dB eager=%dB", damped.ControlBytes, eager.ControlBytes)
	if eager.ControlBytes <= damped.ControlBytes {
		t.Errorf("eager acceptance (%d B) should churn more than Slow-to-Accept (%d B)",
			eager.ControlBytes, damped.ControlBytes)
	}
}

func TestChaosMRMTP(t *testing.T) {
	// Property: after any sequence of interface failures and restores,
	// once all interfaces are up again the fabric re-converges and
	// delivers traffic. This is the randomized stress version of the
	// paper's single-failure experiments.
	f := buildAndWarm(t, topology.FourPodSpec(), ProtoMRMTP)
	rng := f.Sim.Rand()
	routers := f.Topo.Routers()
	var downed []*topology.Device
	for round := 0; round < 30; round++ {
		if len(downed) > 0 && rng.Intn(2) == 0 {
			i := rng.Intn(len(downed))
			d := downed[i]
			downed = append(downed[:i], downed[i+1:]...)
			port := rng.Intn(len(d.Ports)-1) + 1
			f.Sim.Node(d.Name).Port(port).Restore()
		} else {
			d := routers[rng.Intn(len(routers))]
			port := rng.Intn(len(d.Ports)-1) + 1
			if d.Ports[port].Peer.Device.Tier == topology.TierServer {
				continue
			}
			f.Sim.Node(d.Name).Port(port).Fail()
			downed = append(downed, d)
		}
		f.Sim.RunFor(time.Duration(rng.Intn(400)) * time.Millisecond)
	}
	// Restore everything.
	for _, d := range routers {
		for _, p := range d.Ports[1:] {
			f.Sim.Node(d.Name).Port(p.Index).Restore()
		}
	}
	f.Sim.RunFor(10 * time.Second)
	if err := f.CheckConverged(); err != nil {
		t.Fatalf("fabric did not heal after chaos: %v", err)
	}
	// Every rack pair still reachable.
	checkAllPairs(t, f)
}

func TestChaosBGP(t *testing.T) {
	f := buildAndWarm(t, topology.TwoPodSpec(), ProtoBGP)
	rng := f.Sim.Rand()
	routers := f.Topo.Routers()
	for round := 0; round < 15; round++ {
		d := routers[rng.Intn(len(routers))]
		port := rng.Intn(len(d.Ports)-1) + 1
		if d.Ports[port].Peer.Device.Tier == topology.TierServer {
			continue
		}
		node := f.Sim.Node(d.Name)
		node.Port(port).Fail()
		f.Sim.RunFor(time.Duration(rng.Intn(2000)) * time.Millisecond)
		node.Port(port).Restore()
		f.Sim.RunFor(time.Duration(rng.Intn(1000)) * time.Millisecond)
	}
	f.Sim.RunFor(30 * time.Second)
	if err := f.CheckConverged(); err != nil {
		t.Fatalf("BGP fabric did not heal after chaos: %v", err)
	}
	checkAllPairs(t, f)
}

// checkAllPairs sends a probe between every ordered pair of rack servers.
func checkAllPairs(t *testing.T, f *Fabric) {
	t.Helper()
	type probe struct{ want, got int }
	results := make(map[string]*probe)
	port := uint16(12000)
	for _, src := range f.Topo.Leaves {
		for _, dst := range f.Topo.Leaves {
			if src == dst {
				continue
			}
			srcStack, srcDev, err := f.ServerStack(src.VID, 1)
			if err != nil {
				t.Fatal(err)
			}
			dstStack, dstDev, err := f.ServerStack(dst.VID, 1)
			if err != nil {
				t.Fatal(err)
			}
			key := src.Name + ">" + dst.Name
			pr := &probe{want: 1}
			results[key] = pr
			port++
			dstStack.ListenUDP(port, func(_, _ netaddr.IPv4, dg udp.Datagram) { pr.got++ })
			srcStack.SendUDP(srcDev.IP, dstDev.IP, port, port, []byte(key))
		}
	}
	f.Sim.RunFor(500 * time.Millisecond)
	for key, pr := range results {
		if pr.got != pr.want {
			t.Errorf("pair %s: delivered %d/%d", key, pr.got, pr.want)
		}
	}
}
