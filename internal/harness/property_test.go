package harness

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/topology"
)

func TestPropertyAnyFabricConvergesAndDelivers(t *testing.T) {
	// Build pseudo-random fabric shapes and require, for both protocols:
	// convergence, then all-pairs server reachability. This generalizes
	// the paper's two fixed topologies to the whole family.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 6; trial++ {
		spec := topology.Spec{
			Pods:            rng.Intn(3) + 2, // 2..4
			LeavesPerPod:    rng.Intn(2) + 1, // 1..2
			SpinesPerPod:    rng.Intn(2) + 1, // 1..2
			UplinksPerSpine: rng.Intn(2) + 1, // 1..2
			ServersPerLeaf:  1,
		}
		for _, proto := range []Protocol{ProtoMRMTP, ProtoBGP} {
			f, err := Build(DefaultOptions(spec, proto, int64(trial)+101))
			if err != nil {
				t.Fatalf("%+v %v: %v", spec, proto, err)
			}
			if err := f.WarmUp(WarmupTime); err != nil {
				t.Fatalf("%+v %v: %v", spec, proto, err)
			}
			checkAllPairs(t, f)
			if t.Failed() {
				t.Fatalf("fabric %+v under %v failed all-pairs delivery", spec, proto)
			}
		}
	}
}

func TestPropertyFailureNeverPartitionsRedundantFabric(t *testing.T) {
	// With >= 2 spines per pod and >= 2 uplinks per spine, any single
	// interface failure leaves every rack pair connected once the fabric
	// reconverges — for both protocols.
	spec := topology.FourPodSpec()
	for _, proto := range []Protocol{ProtoMRMTP, ProtoBGP} {
		for _, tc := range topology.AllFailureCases() {
			f, err := Build(DefaultOptions(spec, proto, int64(tc)*31))
			if err != nil {
				t.Fatal(err)
			}
			if err := f.WarmUp(WarmupTime); err != nil {
				t.Fatal(err)
			}
			if _, err := f.Fail(tc); err != nil {
				t.Fatal(err)
			}
			f.Sim.RunFor(SettleTime)
			checkAllPairs(t, f)
			if t.Failed() {
				t.Fatalf("%v under %v partitioned the fabric", tc, proto)
			}
		}
	}
}

func TestPropertyRandomDoubleFailuresMatchOracle(t *testing.T) {
	// Two random simultaneous interface failures, then compare actual
	// delivery per rack pair against a valley-free reachability oracle
	// computed over the surviving links. (A Clos fabric can be *logically*
	// partitioned by two failures even when physically connected —
	// valley-free routing never transits a leaf — so the oracle, not
	// blanket connectivity, is the correct specification for both
	// protocols.)
	rng := rand.New(rand.NewSource(7))
	spec := topology.FourPodSpec()
	for trial := 0; trial < 5; trial++ {
		for _, proto := range []Protocol{ProtoMRMTP, ProtoBGP} {
			f, err := Build(DefaultOptions(spec, proto, int64(trial)+500))
			if err != nil {
				t.Fatal(err)
			}
			if err := f.WarmUp(WarmupTime); err != nil {
				t.Fatal(err)
			}
			routers := f.Topo.Routers()
			victims := map[string]int{}
			for len(victims) < 2 {
				d := routers[rng.Intn(len(routers))]
				port := rng.Intn(len(d.Ports)-1) + 1
				if d.Ports[port].Peer.Device.Tier == topology.TierServer {
					continue
				}
				if _, dup := victims[d.Name]; dup {
					continue
				}
				victims[d.Name] = port
			}
			for name, port := range victims {
				f.Sim.Node(name).Port(port).Fail()
			}
			f.Sim.RunFor(5 * time.Second)
			checkPairsAgainstOracle(t, f, victims)
		}
	}
}

// linkAlive reports whether the link between two devices survives (neither
// end's port failed).
func linkAlive(f *Fabric, a *topology.Device, b *topology.Device) bool {
	for _, p := range a.Ports[1:] {
		if p.Peer.Device == b {
			return f.Sim.Node(a.Name).Port(p.Index).Up() &&
				f.Sim.Node(b.Name).Port(p.Peer.Index).Up()
		}
	}
	return false
}

// oracleReachable computes valley-free reachability between two leaves:
// up through a pod spine (and top spine for cross-pod pairs), down the far
// side, never transiting a leaf.
func oracleReachable(f *Fabric, src, dst *topology.Device) bool {
	for _, s := range f.Topo.Spines {
		if s.Pod != src.Pod || !linkAlive(f, src, s) {
			continue
		}
		if src.Pod == dst.Pod {
			if linkAlive(f, s, dst) {
				return true
			}
			// fall through: the up-over-top detour inside a pod also
			// counts (hash may use it when the direct spine link died).
		}
		for _, top := range f.Topo.Tops {
			if !linkAlive(f, s, top) {
				continue
			}
			for _, d := range f.Topo.Spines {
				if d.Pod != dst.Pod {
					continue
				}
				if linkAlive(f, top, d) && linkAlive(f, d, dst) {
					return true
				}
			}
		}
	}
	return false
}

// checkPairsAgainstOracle probes every ordered rack pair and compares
// delivery with the valley-free oracle.
func checkPairsAgainstOracle(t *testing.T, f *Fabric, victims map[string]int) {
	t.Helper()
	for _, src := range f.Topo.Leaves {
		for _, dst := range f.Topo.Leaves {
			if src == dst {
				continue
			}
			want := oracleReachable(f, src, dst)
			res, err := Ping(f, src.VID, dst.VID, 200*time.Millisecond)
			if err != nil {
				t.Fatal(err)
			}
			if res.OK != want {
				t.Errorf("%v: %s->%s delivered=%v oracle=%v (failures %v)",
					f.Opts.Protocol, src.Name, dst.Name, res.OK, want, victims)
			}
		}
	}
}
