package harness

import (
	"fmt"
	"time"

	"repro/internal/chaos"
	"repro/internal/trafficgen"
)

// This file runs fault-injection campaigns: a chaos.Spec is applied to a
// warm fabric while a probe flow crosses the monitored column, and the
// result captures what the paper's clean `ip link set down` methodology
// cannot — blackhole time under gray failures, reconvergence churn under
// flap storms, and the QDSA accept/reject transitions that show whether
// Slow-to-Accept actually dampens.

// ChaosSettleTime bounds the post-campaign observation window, matching
// SettleTime's rationale: plain BGP's 3 s hold timer is the slowest
// detector, and dissemination needs headroom after the last fault clears.
const ChaosSettleTime = SettleTime

// reconvergenceGap separates reconvergence waves: route events closer
// together than this belong to one convergence episode, a larger gap
// starts a new one. A quarter second sits well above any single episode's
// internal spacing (update fan-out is sub-millisecond on an idle fabric)
// and well below the campaign's fault spacing.
const reconvergenceGap = 250 * time.Millisecond

// ChaosResult is one campaign trial. Counter fields are deltas over the
// campaign window (injection through settle), not process lifetimes.
type ChaosResult struct {
	Protocol Protocol
	Pods     int
	Scenario string

	// FaultActions is the number of injector actions executed.
	FaultActions int

	// Probe-flow loss: the probe sends every ProbeInterval, so missing
	// packets convert directly to blackhole time; MaxOutage is the
	// longest consecutive missing run.
	ProbeSent     uint64
	ProbeLost     uint64
	BlackholeTime time.Duration
	MaxOutage     time.Duration

	// Control-plane churn from the metrics log.
	RouteUpdates   int
	Reconvergences int
	ControlMsgs    int
	ControlBytes   int

	// QDSA transitions summed over all MR-MTP routers (zero in BGP modes).
	NeighborsLost     uint64
	NeighborsAccepted uint64
	HellosDampened    uint64
	AcceptResets      uint64

	// BGP session churn summed over all speakers (zero in MR-MTP mode).
	SessionResets       uint64
	SessionsEstablished uint64
	BFDDownTransitions  uint64
	BFDUpTransitions    uint64

	// Events is the injector log (virtual-time ordered).
	Events []chaos.Event
}

// chaosCounters is a snapshot of every cumulative protocol counter the
// campaign reports as a delta.
type chaosCounters struct {
	neighborsLost, neighborsAccepted, hellosDampened, acceptResets uint64
	sessionResets, sessionsEstablished                             uint64
	bfdDown, bfdUp                                                 uint64
}

// snapshotCounters sweeps the fabric's protocol state in the topology's
// deterministic router order.
func snapshotCounters(f *Fabric) chaosCounters {
	var c chaosCounters
	for _, d := range f.Topo.Routers() {
		if r := f.Routers[d.Name]; r != nil {
			c.neighborsLost += r.Stats.NeighborsLost
			c.neighborsAccepted += r.Stats.NeighborsAccepted
			c.hellosDampened += r.Stats.HellosDampened
			c.acceptResets += r.Stats.AcceptResets
		}
		if sp := f.Speakers[d.Name]; sp != nil {
			c.sessionResets += sp.Stats.SessionResets
			c.sessionsEstablished += sp.Stats.SessionsEstablished
		}
		if mgr := f.BFDs[d.Name]; mgr != nil {
			for _, s := range mgr.Sessions() {
				c.bfdDown += s.Stats.DownTransitions
				c.bfdUp += s.Stats.UpTransitions
			}
		}
	}
	return c
}

// countReconvergences clusters post-injection route events into waves: a
// gap longer than reconvergenceGap starts a new episode. The count is the
// "how many times did the network have to re-decide" number the flap-storm
// dampening claim is about.
func countReconvergences(f *Fabric, startAt time.Duration) int {
	waves := 0
	var last time.Duration
	have := false
	for _, e := range f.Log.Events {
		if e.Kind != "route" || e.At < startAt {
			continue
		}
		if !have || e.At-last > reconvergenceGap {
			waves++
		}
		last = e.At
		have = true
	}
	return waves
}

// RunChaos executes one campaign trial: warm up, start the probe flow,
// apply the spec, run to the horizon plus settle, and report loss, churn
// and transition deltas. The probe crosses the monitored L-1-1/S-1-1/T-1
// column (VID 11 → VID 14, port picked by PickFlowPort), the same path the
// catalog's faults target.
func RunChaos(opts Options, spec chaos.Spec) (ChaosResult, error) {
	f, err := Build(opts)
	if err != nil {
		return ChaosResult{}, err
	}
	srcStack, srcDev, err := f.ServerStack(11, 1)
	if err != nil {
		return ChaosResult{}, err
	}
	dstStack, dstDev, err := f.ServerStack(14, 1)
	if err != nil {
		return ChaosResult{}, err
	}
	cfg := trafficgen.DefaultConfig(srcDev.IP, dstDev.IP)
	cfg.SrcPort = PickFlowPort(f, cfg)
	sender := trafficgen.NewSender(srcStack, cfg)
	receiver := trafficgen.NewReceiver(dstStack, cfg.DstPort)

	if err := f.WarmUp(WarmupTime); err != nil {
		return ChaosResult{}, err
	}
	sender.Start()
	// Lead-in so the flow is established pre-campaign, with a random
	// phase offset so trials sample timer phase (as in RunLoss).
	lead := time.Second + time.Duration(f.Sim.Rand().Int63n(int64(time.Second)))
	f.Sim.RunFor(lead)
	preLoss := sender.Sent() - receiver.Report(sender).Received
	if preLoss > 2 { // ARP warm-up may cost a packet at the margins
		return ChaosResult{}, fmt.Errorf("harness: probe lossy before campaign (%d lost)", preLoss)
	}

	before := snapshotCounters(f)
	f.Log.Reset()
	startAt := f.Sim.Now()
	startSeq := sender.Seq()
	inj, err := chaos.Apply(f.Sim, spec)
	if err != nil {
		return ChaosResult{}, err
	}
	f.Sim.RunFor(spec.Horizon() + ChaosSettleTime)
	endSeq := sender.Seq()
	sender.Stop()
	f.Sim.RunFor(time.Second) // drain in-flight packets

	after := snapshotCounters(f)
	a := f.Log.Analyze(startAt)
	missing, longest := receiver.Missing(startSeq, endSeq)
	res := ChaosResult{
		Protocol:            opts.Protocol,
		Pods:                opts.Spec.Pods,
		Scenario:            spec.Name,
		FaultActions:        len(inj.Events()),
		ProbeSent:           endSeq - startSeq,
		ProbeLost:           missing,
		BlackholeTime:       time.Duration(missing) * cfg.Interval,
		MaxOutage:           time.Duration(longest) * cfg.Interval,
		RouteUpdates:        countRouteUpdates(f, startAt),
		Reconvergences:      countReconvergences(f, startAt),
		ControlMsgs:         a.ControlMessages,
		ControlBytes:        a.ControlBytes,
		NeighborsLost:       after.neighborsLost - before.neighborsLost,
		NeighborsAccepted:   after.neighborsAccepted - before.neighborsAccepted,
		HellosDampened:      after.hellosDampened - before.hellosDampened,
		AcceptResets:        after.acceptResets - before.acceptResets,
		SessionResets:       after.sessionResets - before.sessionResets,
		SessionsEstablished: after.sessionsEstablished - before.sessionsEstablished,
		BFDDownTransitions:  after.bfdDown - before.bfdDown,
		BFDUpTransitions:    after.bfdUp - before.bfdUp,
		Events:              inj.Events(),
	}
	return res, nil
}

func countRouteUpdates(f *Fabric, startAt time.Duration) int {
	n := 0
	for _, e := range f.Log.Events {
		if e.Kind == "route" && e.At >= startAt {
			n++
		}
	}
	return n
}

// ChaosSummary aggregates trials of one (protocol, pods, scenario) cell.
// It is a flat comparable struct on purpose: the parallel-vs-sequential
// determinism test compares summaries with ==.
type ChaosSummary struct {
	Protocol Protocol
	Pods     int
	Scenario string
	Trials   int

	FaultActions int // per trial (identical across trials by construction)

	ProbeLossRateMean float64
	BlackholeMsMean   float64
	BlackholeMsMax    float64
	MaxOutageMsMean   float64
	MaxOutageMsMax    float64

	RouteUpdatesMean   float64
	ReconvergencesMean float64
	ReconvergencesMax  int
	ControlMsgsMean    float64
	ControlBytesMean   float64

	NeighborsLostMean     float64
	NeighborsAcceptedMean float64
	HellosDampenedMean    float64
	AcceptResetsMean      float64

	SessionResetsMean       float64
	SessionsEstablishedMean float64
	BFDDownMean             float64
	BFDUpMean               float64

	// ReconvPerUp is the dampening headline: reconvergence episodes per
	// accepted up-transition (MR-MTP neighbors accepted, or BGP sessions
	// re-established). ≤1 means each readmission cost at most one
	// convergence episode; flap-chasing protocols exceed it.
	ReconvPerUp float64
}

// upTransitions is the protocol-appropriate "accepted an adjacency back"
// count for one trial.
func (r ChaosResult) upTransitions() uint64 {
	if r.NeighborsAccepted > 0 {
		return r.NeighborsAccepted
	}
	return r.SessionsEstablished
}

// SummarizeChaos pools per-trial results in trial order, so parallel and
// sequential runs summarize bit-identically.
func SummarizeChaos(rs []ChaosResult) ChaosSummary {
	if len(rs) == 0 {
		return ChaosSummary{}
	}
	s := ChaosSummary{
		Protocol:     rs[0].Protocol,
		Pods:         rs[0].Pods,
		Scenario:     rs[0].Scenario,
		Trials:       len(rs),
		FaultActions: rs[0].FaultActions,
	}
	n := float64(len(rs))
	var ups, reconv float64
	for _, r := range rs {
		if r.ProbeSent > 0 {
			s.ProbeLossRateMean += float64(r.ProbeLost) / float64(r.ProbeSent) / n
		}
		bh := float64(r.BlackholeTime) / float64(time.Millisecond)
		mo := float64(r.MaxOutage) / float64(time.Millisecond)
		s.BlackholeMsMean += bh / n
		s.MaxOutageMsMean += mo / n
		if bh > s.BlackholeMsMax {
			s.BlackholeMsMax = bh
		}
		if mo > s.MaxOutageMsMax {
			s.MaxOutageMsMax = mo
		}
		s.RouteUpdatesMean += float64(r.RouteUpdates) / n
		s.ReconvergencesMean += float64(r.Reconvergences) / n
		if r.Reconvergences > s.ReconvergencesMax {
			s.ReconvergencesMax = r.Reconvergences
		}
		s.ControlMsgsMean += float64(r.ControlMsgs) / n
		s.ControlBytesMean += float64(r.ControlBytes) / n
		s.NeighborsLostMean += float64(r.NeighborsLost) / n
		s.NeighborsAcceptedMean += float64(r.NeighborsAccepted) / n
		s.HellosDampenedMean += float64(r.HellosDampened) / n
		s.AcceptResetsMean += float64(r.AcceptResets) / n
		s.SessionResetsMean += float64(r.SessionResets) / n
		s.SessionsEstablishedMean += float64(r.SessionsEstablished) / n
		s.BFDDownMean += float64(r.BFDDownTransitions) / n
		s.BFDUpMean += float64(r.BFDUpTransitions) / n
		ups += float64(r.upTransitions())
		reconv += float64(r.Reconvergences)
	}
	if ups > 0 {
		s.ReconvPerUp = reconv / ups
	}
	return s
}

// RunChaosTrials fans n seeds of one campaign cell over the trial pool and
// pools the results. Per-trial results are returned in trial order so
// callers can export a representative injector timeline.
func RunChaosTrials(opts Options, spec chaos.Spec, n int) (ChaosSummary, []ChaosResult, error) {
	rs, err := runTrials(opts, n, func(o Options) (ChaosResult, error) {
		return RunChaos(o, spec)
	})
	if err != nil {
		return ChaosSummary{}, nil, err
	}
	return SummarizeChaos(rs), rs, nil
}

// ChaosCatalog returns the named scenario campaigns, one per scenario
// class, all targeting the monitored L-1-1/S-1-1/T-1 column the probe
// flow crosses (present in every standard spec). Timings are chosen
// against the paper's timer constants: QDSA hello 50 ms / dead 100 ms /
// accept 3, BGP hold 3 s, BFD 100 ms × 3.
func ChaosCatalog() []chaos.Spec {
	const start = chaos.Duration(500 * time.Millisecond)
	return []chaos.Spec{
		{
			// Slow storm: 200 ms down / 800 ms up. Every down exceeds the
			// dead interval and every up exceeds the accept window, so
			// both protocols see (and should survive) six clean cycles.
			Name: "flap-storm",
			Faults: []chaos.Fault{{
				Kind: chaos.FlapStorm, Link: chaos.LinkRef{Device: "L-1-1", Peer: "S-1-1"},
				Start: start, Flaps: 6, Period: chaos.Duration(time.Second), Duty: 0.8,
			}},
		},
		{
			// Burst storm: 150 ms down / 100 ms up. The up window is too
			// short for three consecutive hellos, so Slow-to-Accept keeps
			// the adjacency out for the whole storm (one loss episode, one
			// readmission at the end) while interface-tracking BGP chases
			// every single flap.
			Name: "flap-burst",
			Faults: []chaos.Fault{{
				Kind: chaos.FlapStorm, Link: chaos.LinkRef{Device: "L-1-1", Peer: "S-1-1"},
				Start: start, Flaps: 8, Period: chaos.Duration(250 * time.Millisecond), Duty: 0.4,
			}},
		},
		{
			// Gray spine uplink: 30% loss on S-1-1 → T-1 only. Hellos and
			// keepalives cross a sometimes-silent wire; the reverse
			// direction stays clean.
			Name: "gray-spine",
			Faults: []chaos.Fault{{
				Kind: chaos.GrayLoss, Link: chaos.LinkRef{Device: "S-1-1", Peer: "T-1"},
				Start: start, Duration: chaos.Duration(4 * time.Second), LossRate: 0.3,
			}},
		},
		{
			// Corrupted and delayed hellos on the leaf uplink: a quarter
			// of frames take a flipped byte, everything rides 30 ms extra
			// latency with up to 30 ms jitter.
			Name: "hello-impair",
			Faults: []chaos.Fault{{
				Kind: chaos.LinkImpair, Link: chaos.LinkRef{Device: "L-1-1", Peer: "S-1-1"},
				Start: start, Duration: chaos.Duration(4 * time.Second),
				CorruptRate: 0.25, ExtraLatency: chaos.Duration(30 * time.Millisecond),
				Jitter: chaos.Duration(30 * time.Millisecond),
			}},
		},
		{
			// One-way fiber cut at the top tier: T-1's receiver from
			// S-1-1 goes dark (T-1 alarms, S-1-1 keeps hearing T-1).
			Name: "oneway-top",
			Faults: []chaos.Fault{{
				Kind: chaos.OneWay, Link: chaos.LinkRef{Device: "T-1", Peer: "S-1-1"},
				Start: start, Duration: chaos.Duration(3 * time.Second),
			}},
		},
		{
			// Shared-risk group: both plane uplinks of S-1-1 die 2 ms
			// apart (S-1-1 reaches T-1 and T-3 in the Fig. 2 wiring).
			Name: "correlated-uplinks",
			Faults: []chaos.Fault{{
				Kind: chaos.Correlated,
				Links: []chaos.LinkRef{
					{Device: "S-1-1", Peer: "T-1"},
					{Device: "S-1-1", Peer: "T-3"},
				},
				Start: start, Duration: chaos.Duration(2 * time.Second),
				Stagger: chaos.Duration(2 * time.Millisecond),
			}},
		},
		{
			// Rolling maintenance: drain pod 1's spines one at a time,
			// with enough stagger that the second starts after the first
			// is back.
			Name: "rolling-drain",
			Faults: []chaos.Fault{{
				Kind: chaos.Drain, Nodes: []string{"S-1-1", "S-1-2"},
				Start: start, Duration: chaos.Duration(1500 * time.Millisecond),
				Stagger: chaos.Duration(3 * time.Second),
			}},
		},
	}
}
