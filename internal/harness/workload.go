package harness

import (
	"fmt"
	"time"

	"repro/internal/chaos"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/workload"
)

// This file runs the flow-level workload experiment: a heavy-tailed traffic
// mix offered to a rate-limited fabric, measuring flow completion time and
// per-uplink load balance for MR-MTP's hash versus BGP/ECMP — in steady
// state and with a failure injected while flows are in flight. It is the
// stress test the paper's single-probe methodology (§VI.D) does not cover.

// WorkloadConfig parameterizes a workload run on a fabric.
type WorkloadConfig struct {
	Flows          int
	Pattern        workload.Pattern
	Sizes          workload.SizeDist
	MeanArrival    time.Duration
	PacketSize     int
	PacketInterval time.Duration

	// LinkBps rate-limits every link (0 leaves links ideal); LinkQueue
	// bounds each egress queue in frames.
	LinkBps   int64
	LinkQueue int

	// MidFailure injects FailCase once FailAfter of traffic has run.
	MidFailure bool
	FailCase   topology.FailureCase
	FailAfter  time.Duration

	// Chaos, when set, applies a fault-injection campaign FailAfter into
	// the run instead of the single clean FailCase — flows under flap
	// storms, gray loss or drains rather than one `ip link set down`.
	// It takes precedence over MidFailure.
	Chaos *chaos.Spec

	// MaxRun caps the virtual time spent waiting for flows to finish.
	MaxRun time.Duration
	// SampleInterval is the telemetry cadence.
	SampleInterval time.Duration

	// Engine selects the flow transport: the packet engine (default), the
	// analytic fluid model, or the hybrid split — short flows and flows
	// overlapping the fault window on packets, the rest fluid.
	Engine workload.Mode
	// FluidCutoff demotes flows below this many bytes to the packet path
	// in hybrid mode (default 10 kB: the websearch mix's mice).
	FluidCutoff int
	// RateInterval is the fluid rate-recomputation cadence (default 5 ms).
	RateInterval time.Duration
}

// DefaultWorkloadConfig is the published experiment: a websearch mix on the
// random pattern, links at 200 Mb/s with 64-frame queues, and (mid-failure
// scenario) the TC2 failure — the case where the paper measures the largest
// packet-loss gap between the protocols.
func DefaultWorkloadConfig() WorkloadConfig {
	return WorkloadConfig{
		Flows:          160,
		Pattern:        workload.PatternRandom,
		Sizes:          workload.WebSearchMix(),
		MeanArrival:    8 * time.Millisecond,
		PacketSize:     1000,
		PacketInterval: 120 * time.Microsecond,
		LinkBps:        200_000_000,
		LinkQueue:      64,
		FailCase:       topology.TC2,
		FailAfter:      400 * time.Millisecond,
		MaxRun:         30 * time.Second,
		SampleInterval: 10 * time.Millisecond,
	}
}

// Scenario names the workload scenario, e.g. "steady", "midfail" or
// "chaos:flap-storm".
func (w WorkloadConfig) Scenario() string {
	if w.Chaos != nil {
		return "chaos:" + w.Chaos.Name
	}
	if w.MidFailure {
		return "midfail"
	}
	return "steady"
}

// WorkloadResult is one trial's outcome.
type WorkloadResult struct {
	Protocol Protocol
	Pods     int
	Scenario string
	Engine   string

	Report workload.Report
	// GroupLoads is the per-uplink byte spread of every router's
	// equal-cost uplink group over the run.
	GroupLoads []workload.GroupLoad
	// Imbalance summarizes max/mean ratios across busy groups; JainMean
	// averages their Jain fairness indices.
	Imbalance stats.Summary
	JainMean  float64

	Drops     uint64 // egress tail-drops across all links
	PeakQueue int
	PeakUtil  float64
	// Series is the sampled per-link-direction telemetry.
	Series []*workload.LinkSeries
	// PoolSamples is the sampled frame-pool occupancy: a monotonic InUse
	// climb here means a pooled buffer leaked on some path.
	PoolSamples []workload.PoolSample
}

// WorkloadHosts lists every server as a workload endpoint, racks labelled
// by their ToR, in the topology's deterministic server order.
func (f *Fabric) WorkloadHosts() []workload.Host {
	hosts := make([]workload.Host, 0, len(f.Topo.Servers))
	for _, srv := range f.Topo.Servers {
		hosts = append(hosts, workload.Host{
			Stack: f.Stacks[srv.Name],
			IP:    srv.IP,
			Name:  srv.Name,
			Rack:  srv.Ports[1].Peer.Device.Name,
		})
	}
	return hosts
}

// UplinkGroups returns each router's equal-cost uplink set — the groups a
// flow hash is supposed to spread load across.
func (f *Fabric) UplinkGroups() []workload.Group {
	var groups []workload.Group
	for _, d := range f.Topo.Routers() {
		var ports []*simnet.Port
		for _, p := range d.Ports[1:] {
			if p.IsUplink() {
				ports = append(ports, f.Sim.Node(d.Name).Port(p.Index))
			}
		}
		if len(ports) > 1 {
			groups = append(groups, workload.Group{Name: d.Name, Ports: ports})
		}
	}
	return groups
}

// RunWorkload drives one workload trial over a warm fabric.
func RunWorkload(opts Options, w WorkloadConfig) (WorkloadResult, error) {
	f, err := Build(opts)
	if err != nil {
		return WorkloadResult{}, err
	}
	if err := f.WarmUp(WarmupTime); err != nil {
		return WorkloadResult{}, err
	}
	// Sample timer phase like the other experiments, then shape the links
	// only after the fabric is converged so warm-up stays cheap.
	phase := time.Duration(f.Sim.Rand().Int63n(int64(time.Second)))
	f.Sim.RunFor(phase)
	if w.LinkBps > 0 {
		for _, link := range f.Sim.Links() {
			link.SetBandwidth(w.LinkBps, w.LinkQueue)
		}
	}

	cfg := workload.Config{
		Pattern:        w.Pattern,
		Sizes:          w.Sizes,
		Flows:          w.Flows,
		MeanArrival:    w.MeanArrival,
		PacketSize:     w.PacketSize,
		PacketInterval: w.PacketInterval,
		DstPort:        49000,
		RTO:            100 * time.Millisecond,
		MaxRounds:      60,
		Seed:           opts.Seed,
		Mode:           w.Engine,
	}
	if w.Engine != workload.ModePacket {
		plan, perr := f.buildFluidPlan(w)
		if perr != nil {
			return WorkloadResult{}, perr
		}
		cfg.Solver = plan.solver
		cfg.PathOf = f.pathFunc(plan, cfg.DstPort)
		cfg.FluidCutoff = w.FluidCutoff
		if cfg.FluidCutoff <= 0 {
			cfg.FluidCutoff = 10_000
		}
		cfg.RateInterval = w.RateInterval
		if w.MidFailure || w.Chaos != nil {
			// Flows predicted to straddle the fault keep packet fidelity:
			// demote from injection until reconvergence has settled.
			cfg.DemoteFrom = w.FailAfter
			cfg.DemoteUntil = w.FailAfter + 3*time.Second
		}
	}
	engine, err := workload.New(f.Sim, f.WorkloadHosts(), cfg)
	if err != nil {
		return WorkloadResult{}, err
	}
	sampler := workload.NewSampler(f.Sim, w.SampleInterval)
	for _, link := range f.Sim.Links() {
		sampler.Watch(link)
	}
	meter := workload.NewLoadMeter(f.Sim, f.UplinkGroups())

	engine.Start()
	sampler.Start()
	start := f.Sim.Now()
	switch {
	case w.Chaos != nil:
		f.Sim.RunFor(w.FailAfter)
		if _, err := chaos.Apply(f.Sim, *w.Chaos); err != nil {
			return WorkloadResult{}, err
		}
		f.repathFluid(w, engine)
	case w.MidFailure:
		f.Sim.RunFor(w.FailAfter)
		if _, err := f.Fail(w.FailCase); err != nil {
			return WorkloadResult{}, err
		}
		f.repathFluid(w, engine)
	}
	maxRun := w.MaxRun
	if maxRun <= 0 {
		maxRun = 30 * time.Second
	}
	for !engine.Done() && f.Sim.Now()-start < maxRun {
		f.Sim.RunFor(50 * time.Millisecond)
	}
	sampler.Stop()

	loads := meter.Read()
	imb, jain := workload.ImbalanceSummary(loads)
	res := WorkloadResult{
		Protocol:    opts.Protocol,
		Pods:        opts.Spec.Pods,
		Scenario:    w.Scenario(),
		Engine:      w.Engine.String(),
		Report:      engine.Report(nil),
		GroupLoads:  loads,
		Imbalance:   imb,
		JainMean:    jain,
		Drops:       sampler.TotalDrops(),
		PeakQueue:   sampler.PeakQueue(),
		PeakUtil:    sampler.PeakUtil(),
		Series:      sampler.Series(),
		PoolSamples: sampler.PoolSeries(),
	}
	return res, nil
}

// repathFluid re-resolves live fluid reservations against the post-fault
// forwarding state: once immediately after injection, and once more a second
// later when the protocols' reconvergence has settled onto surviving paths.
// Packet mode schedules nothing, keeping its artifacts byte-identical.
func (f *Fabric) repathFluid(w WorkloadConfig, engine *workload.Engine) {
	if w.Engine == workload.ModePacket {
		return
	}
	engine.Repath()
	//simlint:shardsafe Repath runs as a control event at the quiesce barrier with every shard idle
	f.Sim.After(time.Second, engine.Repath)
}

// WorkloadBucket aggregates one flow-size class across trials.
type WorkloadBucket struct {
	Label     string
	Flows     int
	Completed int
	// FCT summarizes the pooled per-flow completion times (ms).
	FCT stats.Summary
}

// WorkloadSummary aggregates trials of one (protocol, pods, scenario) cell.
type WorkloadSummary struct {
	Protocol Protocol
	Pods     int
	Scenario string
	Engine   string
	Trials   int

	Flows          int // across all trials
	Completed      int
	Abandoned      int
	Incomplete     int
	CompletionRate float64
	PacketsSent    uint64
	Retransmits    uint64
	// FluidFlows counts flows routed through the fluid model (0 in packet
	// mode); PeakConcurrent is the largest in-flight flow count of any
	// trial, the scale axis of the million-flow experiment.
	FluidFlows     int
	PeakConcurrent int

	Buckets []WorkloadBucket
	// Imbalance pools every busy uplink group's max/mean ratio from every
	// trial; JainMean averages the per-trial Jain means.
	Imbalance stats.Summary
	JainMean  float64
	Drops     float64 // mean per trial
	PeakQueue int     // max across trials
	PeakUtil  float64 // max across trials
}

// SummarizeWorkload pools per-trial results (all trials must share the
// protocol/pods/scenario). Pooling is in trial order, so parallel and
// sequential runs summarize bit-identically.
func SummarizeWorkload(rs []WorkloadResult) WorkloadSummary {
	if len(rs) == 0 {
		return WorkloadSummary{}
	}
	s := WorkloadSummary{
		Protocol: rs[0].Protocol,
		Pods:     rs[0].Pods,
		Scenario: rs[0].Scenario,
		Engine:   rs[0].Engine,
		Trials:   len(rs),
	}
	nBuckets := len(rs[0].Report.Buckets)
	fcts := make([][]float64, nBuckets)
	var ratios []float64
	var jain float64
	var drops float64
	for _, r := range rs {
		s.Flows += r.Report.Flows
		s.Completed += r.Report.Completed
		s.Abandoned += r.Report.Abandoned
		s.Incomplete += r.Report.Incomplete
		s.PacketsSent += r.Report.PacketsSent
		s.Retransmits += r.Report.Retransmits
		s.FluidFlows += r.Report.FluidFlows
		if r.Report.PeakConcurrent > s.PeakConcurrent {
			s.PeakConcurrent = r.Report.PeakConcurrent
		}
		for i, b := range r.Report.Buckets {
			fcts[i] = append(fcts[i], b.FCTms...)
		}
		for _, gl := range r.GroupLoads {
			busy := false
			for _, b := range gl.Bytes {
				if b > 0 {
					busy = true
					break
				}
			}
			if busy {
				ratios = append(ratios, gl.MaxOverMean)
			}
		}
		jain += r.JainMean
		drops += float64(r.Drops)
		if r.PeakQueue > s.PeakQueue {
			s.PeakQueue = r.PeakQueue
		}
		if r.PeakUtil > s.PeakUtil {
			s.PeakUtil = r.PeakUtil
		}
	}
	for i := 0; i < nBuckets; i++ {
		b := WorkloadBucket{Label: rs[0].Report.Buckets[i].Label, FCT: stats.Summarize(fcts[i])}
		for _, r := range rs {
			b.Flows += r.Report.Buckets[i].Flows
			b.Completed += r.Report.Buckets[i].Completed
		}
		s.Buckets = append(s.Buckets, b)
	}
	if s.Flows > 0 {
		s.CompletionRate = float64(s.Completed) / float64(s.Flows)
	}
	s.Imbalance = stats.Summarize(ratios)
	s.JainMean = jain / float64(len(rs))
	s.Drops = drops / float64(len(rs))
	return s
}

// RunWorkloadTrials fans n seeds of one workload cell over the trial pool
// and pools the results. The per-trial results are returned too (in trial
// order) so callers can export telemetry from a representative run.
func RunWorkloadTrials(opts Options, w WorkloadConfig, n int) (WorkloadSummary, []WorkloadResult, error) {
	rs, err := runTrials(opts, n, func(o Options) (WorkloadResult, error) {
		return RunWorkload(o, w)
	})
	if err != nil {
		return WorkloadSummary{}, nil, err
	}
	return SummarizeWorkload(rs), rs, nil
}

// RenderWorkload formats a summary as the experiment's text block.
func RenderWorkload(s WorkloadSummary) string {
	out := fmt.Sprintf("%s %dP %s: completed %d/%d (%.1f%%), abandoned %d, incomplete %d, retx %d, drops %.0f, peak queue %d, peak util %.2f\n",
		s.Protocol, s.Pods, s.Scenario, s.Completed, s.Flows, 100*s.CompletionRate,
		s.Abandoned, s.Incomplete, s.Retransmits, s.Drops, s.PeakQueue, s.PeakUtil)
	if s.Engine != "" && s.Engine != "packet" {
		out += fmt.Sprintf("  engine %s: %d fluid flows, peak concurrency %d\n",
			s.Engine, s.FluidFlows, s.PeakConcurrent)
	}
	out += fmt.Sprintf("  %-10s %6s %6s %9s %9s %9s %9s\n", "bucket", "flows", "done", "mean(ms)", "p50", "p95", "p99")
	for _, b := range s.Buckets {
		out += fmt.Sprintf("  %-10s %6d %6d %9.2f %9.2f %9.2f %9.2f\n",
			b.Label, b.Flows, b.Completed, b.FCT.Mean, b.FCT.P50, b.FCT.P95, b.FCT.P99)
	}
	out += fmt.Sprintf("  uplink imbalance max/mean: mean=%.3f p95=%.3f worst=%.3f (n=%d groups), jain=%.3f\n",
		s.Imbalance.Mean, s.Imbalance.P95, s.Imbalance.Max, s.Imbalance.N, s.JainMean)
	return out
}
