package harness

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/topology"
)

// The partitioned engine's acceptance bar: running any existing experiment
// on a sharded fabric must produce output bit-identical to the sequential
// engine. Ties at one virtual instant break by the deterministic
// (time, class, device, tie, seq) key, never by arrival order, so the shard
// count must be invisible in every result.

// partitionCounts are the shard counts the identity tests sweep. The
// 4-PoD fabric divides evenly by both.
var partitionCounts = []int{2, 4}

func withPartitions(opts Options, p int) Options {
	opts.Partitions = p
	return opts
}

func TestPartitionedFailureIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("full fabric trials in -short mode")
	}
	for _, proto := range []Protocol{ProtoMRMTP, ProtoBGP} {
		for _, tc := range []topology.FailureCase{topology.TC1, topology.TC3} {
			opts := DefaultOptions(topology.FourPodSpec(), proto, 11)
			seq, err := RunFailure(withPartitions(opts, 1), tc)
			if err != nil {
				t.Fatalf("%v/%v sequential: %v", proto, tc, err)
			}
			for _, shards := range partitionCounts {
				par, err := RunFailure(withPartitions(opts, shards), tc)
				if err != nil {
					t.Fatalf("%v/%v %d shards: %v", proto, tc, shards, err)
				}
				if !reflect.DeepEqual(seq, par) {
					t.Errorf("%v/%v: %d-shard result differs from sequential:\nsequential: %+v\npartitioned: %+v",
						proto, tc, shards, seq, par)
				}
			}
		}
	}
}

func TestPartitionedLossIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("full fabric trials in -short mode")
	}
	for _, proto := range []Protocol{ProtoMRMTP, ProtoBGPBFD} {
		opts := DefaultOptions(topology.FourPodSpec(), proto, 13)
		seq, err := RunLoss(withPartitions(opts, 1), topology.TC2, false)
		if err != nil {
			t.Fatalf("%v sequential: %v", proto, err)
		}
		for _, shards := range partitionCounts {
			par, err := RunLoss(withPartitions(opts, shards), topology.TC2, false)
			if err != nil {
				t.Fatalf("%v %d shards: %v", proto, shards, err)
			}
			if !reflect.DeepEqual(seq, par) {
				t.Errorf("%v: %d-shard loss result differs from sequential:\nsequential: %+v\npartitioned: %+v",
					proto, shards, seq, par)
			}
		}
	}
}

func TestPartitionedWorkloadIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("full fabric trials in -short mode")
	}
	opts := DefaultOptions(topology.FourPodSpec(), ProtoMRMTP, 17)
	w := DefaultWorkloadConfig()
	w.Flows = 60
	w.MaxRun = 8 * time.Second
	w.MidFailure = true
	seq, err := RunWorkload(withPartitions(opts, 1), w)
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	for _, shards := range partitionCounts {
		par, err := RunWorkload(withPartitions(opts, shards), w)
		if err != nil {
			t.Fatalf("%d shards: %v", shards, err)
		}
		// LinkSeries carries unexported engine-graph pointers that can
		// never be equal across two fabric builds; compare the telemetry
		// by its observable data and everything else structurally.
		if len(seq.Series) != len(par.Series) {
			t.Fatalf("%d shards: %d series vs %d sequential", shards, len(par.Series), len(seq.Series))
		}
		for i := range seq.Series {
			a, b := seq.Series[i], par.Series[i]
			if a.Name != b.Name {
				t.Errorf("%d shards: series %d named %q, sequential %q", shards, i, b.Name, a.Name)
			} else if !reflect.DeepEqual(a.Samples, b.Samples) {
				t.Errorf("%d shards: series %s samples differ from sequential", shards, a.Name)
			}
		}
		seqCopy, parCopy := seq, par
		seqCopy.Series, parCopy.Series = nil, nil
		if !reflect.DeepEqual(seqCopy, parCopy) {
			t.Errorf("%d-shard workload result differs from sequential:\nsequential: %+v\npartitioned: %+v",
				shards, seqCopy, parCopy)
		}
	}
}

func TestPartitionedChaosIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("full fabric trials in -short mode")
	}
	// gray-spine impairs a spine→top link (cross-partition under the
	// by-PoD policy) and oneway-top chaos-Downs the reverse direction of
	// one — exactly the "impaired lookahead link" edge cases.
	byName := make(map[string]chaos.Spec)
	for _, s := range ChaosCatalog() {
		byName[s.Name] = s
	}
	for _, name := range []string{"gray-spine", "oneway-top", "flap-burst"} {
		spec, ok := byName[name]
		if !ok {
			t.Fatalf("catalog scenario %q missing", name)
		}
		opts := DefaultOptions(topology.FourPodSpec(), ProtoMRMTP, 19)
		seq, err := RunChaos(withPartitions(opts, 1), spec)
		if err != nil {
			t.Fatalf("%s sequential: %v", name, err)
		}
		for _, shards := range partitionCounts {
			par, err := RunChaos(withPartitions(opts, shards), spec)
			if err != nil {
				t.Fatalf("%s %d shards: %v", name, shards, err)
			}
			if !reflect.DeepEqual(seq, par) {
				t.Errorf("%s: %d-shard chaos result differs from sequential:\nsequential: %+v\npartitioned: %+v",
					name, shards, seq, par)
			}
		}
	}
}

// TestPartitionedBuildRejectsBadCounts pins the divisibility contract: a
// shard count that does not divide the PoD count must fail loudly at Build,
// never fall back to a silent remainder shard.
func TestPartitionedBuildRejectsBadCounts(t *testing.T) {
	opts := DefaultOptions(topology.FourPodSpec(), ProtoMRMTP, 1)
	opts.Partitions = 3
	if _, err := Build(opts); err == nil {
		t.Error("Build accepted 3 partitions over a 4-PoD fabric")
	}
}
