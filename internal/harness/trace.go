package harness

import (
	"fmt"
	"time"

	"repro/internal/chaos"
	"repro/internal/flowhash"
	"repro/internal/icmp"
	"repro/internal/ipstack"
	"repro/internal/ipv4"
	"repro/internal/mrmtp"
	"repro/internal/netaddr"
	"repro/internal/pathtrace"
	"repro/internal/topology"
)

// This file runs the observability-plane campaigns (DESIGN.md §12): a fleet
// of mtr-style probers walks every ordered leaf pair of a warm fabric at
// several ECMP flow variants, a localizer sweeps the resulting coverage
// matrix on the virtual clock, and a gray failure from the trace catalog is
// scored by time-to-localization — the virtual time from fault injection to
// the first accusation of the faulted directed link — plus the count of
// false accusals. The harness owns all topology knowledge: it predicts each
// probe's hop sequence by composing the protocols' own next-hop decisions
// (mrmtp.NextDataHop, ipstack.NextHopFor), so the coverage matrix tracks
// reroutes as they happen.

// AccusationEventKind tags localizer verdicts merged into a campaign's
// event timeline alongside the injector's fault actions.
const AccusationEventKind = chaos.Kind("accusation")

// TraceConfig parameterizes a trace campaign.
type TraceConfig struct {
	// Flows is the number of ECMP flow variants probed per ordered leaf
	// pair (each pins one source port, and so one hashed path).
	Flows int
	// Round is one prober's probe interval (every TTL is probed once per
	// round).
	Round time.Duration
	// SweepPeriod is the localizer's sweep interval.
	SweepPeriod time.Duration
	// LeadIn is how long probers run before the localizer is armed and the
	// faults are injected — long enough to fill RTT baselines (MinSent).
	LeadIn time.Duration
	// Settle extends the observation window past the campaign horizon.
	Settle time.Duration
	// HopSamplePeriod spaces the per-hop statistic samples exported to
	// trace-hops.csv.
	HopSamplePeriod time.Duration
	// CoverMemory is how long a cell's past covers stay in its blame set,
	// so a fault that already triggered rerouting is still blamed on the
	// path the lost probes actually took.
	CoverMemory time.Duration
	// Localizer carries the accusation thresholds.
	Localizer pathtrace.LocalizerConfig
}

// DefaultTraceConfig returns the campaign parameters the trace experiment
// runs with.
func DefaultTraceConfig() TraceConfig {
	return TraceConfig{
		Flows:           4,
		Round:           50 * time.Millisecond,
		SweepPeriod:     100 * time.Millisecond,
		LeadIn:          2 * time.Second,
		Settle:          2 * time.Second,
		HopSamplePeriod: time.Second,
		CoverMemory:     time.Second,
		Localizer:       pathtrace.DefaultLocalizerConfig(),
	}
}

// TraceScenario is one catalog entry: a gray-failure campaign plus the
// directed links a correct localization may accuse.
type TraceScenario struct {
	Spec   chaos.Spec
	Accept []pathtrace.DirectedLink
}

// TraceCatalog returns the gray-failure scenarios the trace experiment
// scores, all targeting the monitored L-1-1/S-1-1/T-1 column (present in
// every standard spec). Loss rates sit well above the localizer's
// LossThreshold so the signal clears detection within a few EWMA rounds;
// horizons leave room for the persistence streak to mature before scoring
// ends.
func TraceCatalog() []TraceScenario {
	const start = chaos.Duration(500 * time.Millisecond)
	return []TraceScenario{
		{
			// Gray spine uplink: 30% loss on S-1-1 → T-1 only.
			Spec: chaos.Spec{
				Name: "trace-gray-spine",
				Faults: []chaos.Fault{{
					Kind: chaos.GrayLoss, Link: chaos.LinkRef{Device: "S-1-1", Peer: "T-1"},
					Start: start, Duration: chaos.Duration(6 * time.Second), LossRate: 0.3,
				}},
			},
			Accept: []pathtrace.DirectedLink{{From: "S-1-1", To: "T-1"}},
		},
		{
			// Gray leaf uplink: the same loss one tier down.
			Spec: chaos.Spec{
				Name: "trace-gray-leaf",
				Faults: []chaos.Fault{{
					Kind: chaos.GrayLoss, Link: chaos.LinkRef{Device: "L-1-1", Peer: "S-1-1"},
					Start: start, Duration: chaos.Duration(6 * time.Second), LossRate: 0.3,
				}},
			},
			Accept: []pathtrace.DirectedLink{{From: "L-1-1", To: "S-1-1"}},
		},
		{
			// Gray downlink: loss on the top spine's transmit side, hitting
			// reply paths and cross-pod down-traffic instead of the uplink
			// direction.
			Spec: chaos.Spec{
				Name: "trace-gray-down",
				Faults: []chaos.Fault{{
					Kind: chaos.GrayLoss, Link: chaos.LinkRef{Device: "T-1", Peer: "S-1-1"},
					Start: start, Duration: chaos.Duration(6 * time.Second), LossRate: 0.3,
				}},
			},
			Accept: []pathtrace.DirectedLink{{From: "T-1", To: "S-1-1"}},
		},
		{
			// Corrupted and delayed frames on the leaf uplink: the latency
			// anomaly path (corruption shows as loss, the added latency as
			// RTT inflation).
			Spec: chaos.Spec{
				Name: "trace-hello-impair",
				Faults: []chaos.Fault{{
					Kind: chaos.LinkImpair, Link: chaos.LinkRef{Device: "L-1-1", Peer: "S-1-1"},
					Start: start, Duration: chaos.Duration(6 * time.Second),
					CorruptRate: 0.25, ExtraLatency: chaos.Duration(30 * time.Millisecond),
					Jitter: chaos.Duration(30 * time.Millisecond),
				}},
			},
			Accept: []pathtrace.DirectedLink{{From: "L-1-1", To: "S-1-1"}},
		},
		{
			// Silent one-way blackhole at the top tier: every S-1-1 → T-1
			// frame vanishes with no carrier alarm. (chaos.OneWay raises an
			// optics alarm, which plain BGP's fast-external-failover heals
			// in milliseconds — not a gray failure; the silent variant is
			// what tracing is for.) MR-MTP's hello asymmetry keeps S-1-1
			// hashing into the dark link for the whole fault, while BGP
			// stays dark until T-1's hold timer expires, so both protocols
			// expose a localizable window.
			Spec: chaos.Spec{
				Name: "trace-blackhole-up",
				Faults: []chaos.Fault{{
					Kind: chaos.GrayLoss, Link: chaos.LinkRef{Device: "S-1-1", Peer: "T-1"},
					Start: start, Duration: chaos.Duration(6 * time.Second), LossRate: 1.0,
				}},
			},
			Accept: []pathtrace.DirectedLink{{From: "S-1-1", To: "T-1"}},
		},
	}
}

// mrmtpProbeTransport injects probes at an MR-MTP ToR: the hop limit rides
// the encapsulation TTL.
type mrmtpProbeTransport struct{ r *mrmtp.Router }

func (t mrmtpProbeTransport) SendProbe(ipWire []byte, hopLimit int) {
	t.r.InjectData(ipWire, byte(hopLimit))
}

// bgpProbeTransport injects probes at a BGP leaf: the hop limit is already
// the probe's IP TTL, so the raw send carries it as-is.
type bgpProbeTransport struct{ s *ipstack.Stack }

func (t bgpProbeTransport) SendProbe(ipWire []byte, _ int) {
	t.s.SendIPRaw(ipWire)
}

// traceVantage binds one prober to its topology endpoints.
type traceVantage struct {
	src, dst *topology.Device
}

// tracePathHop is one predicted hop: the device a TTL-limited probe expires
// at, and the address its reply will carry.
type tracePathHop struct {
	dev  *topology.Device
	addr netaddr.IPv4
}

// stampedCover is one sweep's predicted cover for a cell.
type stampedCover struct {
	at    time.Duration
	links []pathtrace.DirectedLink
}

// TraceHopSample is one exported per-hop statistics row.
type TraceHopSample struct {
	At time.Duration
	pathtrace.HopSnapshot
}

// traceRun owns one campaign's prober fleet, coverage history, and
// localizer.
type traceRun struct {
	f          *Fabric
	cfg        TraceConfig
	tracer     *pathtrace.Tracer
	loc        *pathtrace.Localizer
	vants      []traceVantage // by prober ID
	history    map[int][]stampedCover
	samples    []TraceHopSample
	lastSample time.Duration
}

// newTraceRun registers the prober fleet on a built (not yet warm) fabric:
// every ordered leaf pair at cfg.Flows ECMP variants, probing from the
// source ToR's gateway address with a TTL budget matching the pair's hop
// distance (2 intra-pod, 4 cross-pod).
func newTraceRun(f *Fabric, cfg TraceConfig) *traceRun {
	run := &traceRun{
		f:       f,
		cfg:     cfg,
		tracer:  &pathtrace.Tracer{},
		loc:     pathtrace.NewLocalizer(cfg.Localizer),
		history: make(map[int][]stampedCover),
	}
	for _, src := range f.Topo.Leaves {
		node := f.Sim.Node(src.Name)
		var tr pathtrace.Transport
		if f.Opts.Protocol == ProtoMRMTP {
			tr = mrmtpProbeTransport{f.Routers[src.Name]}
		} else {
			tr = bgpProbeTransport{f.Stacks[src.Name]}
		}
		for _, dst := range f.Topo.Leaves {
			if dst == src {
				continue
			}
			maxTTL := 4
			if dst.Pod == src.Pod {
				maxTTL = 2
			}
			for flow := 0; flow < cfg.Flows; flow++ {
				run.tracer.AddProber(pathtrace.ProberConfig{
					Src:    topology.LeafGatewayIP(src),
					Dst:    topology.LeafGatewayIP(dst),
					Flow:   flow,
					MaxTTL: maxTTL,
				}, node.Sim, tr)
				run.vants = append(run.vants, traceVantage{src: src, dst: dst})
			}
		}
		// Replies arrive as ICMP addressed to the vantage: the ToR's
		// gateway in both planes.
		dispatch := func(from netaddr.IPv4, m icmp.Message) { run.tracer.Dispatch(from, m) }
		if f.Opts.Protocol == ProtoMRMTP {
			f.Routers[src.Name].ListenICMP(dispatch)
		} else {
			f.Stacks[src.Name].ListenICMP(dispatch)
		}
	}
	return run
}

// start schedules every prober's self-rearming tick on its own node's
// event queue (shard-local under the partitioned engine, like trafficgen),
// phase-staggered across one round so the fleet does not fire in lockstep.
func (run *traceRun) start() {
	probers := run.tracer.Probers()
	n := len(probers)
	for i, p := range probers {
		sim := run.f.Sim.Node(run.vants[i].src.Name).Sim
		p := p
		var tick func()
		tick = func() {
			p.Tick()
			sim.Schedule(run.cfg.Round, tick)
		}
		offset := run.cfg.Round * time.Duration(i) / time.Duration(n)
		sim.Schedule(offset, tick)
	}
}

// probeKey is the fabric flow key of prober i's probes.
func (run *traceRun) probeKey(i int) flowhash.Key {
	p := run.tracer.Probers()[i]
	return flowhash.Key{
		Src: p.Cfg.Src, Dst: p.Cfg.Dst, Proto: ipv4.ProtoUDP,
		SrcPort: p.SrcPort(), DstPort: pathtrace.TracePort,
	}
}

// nextHop replicates one device's forwarding decision for a flow — the
// shared nextHopPort helper mapped back onto the topology.
func (run *traceRun) nextHop(dev *topology.Device, dstRoot byte, dstIP netaddr.IPv4, key flowhash.Key) (next *topology.Device, ingressIP netaddr.IPv4, ok bool) {
	port, ok := run.f.nextHopPort(dev, dstRoot, dstIP, key)
	if !ok {
		return nil, netaddr.IPv4{}, false
	}
	tp := dev.Ports[port]
	if tp == nil || tp.Peer == nil || tp.Peer.Device.Tier == topology.TierServer {
		return nil, netaddr.IPv4{}, false
	}
	return tp.Peer.Device, tp.Peer.IP, true
}

// hopAddr is the address the probe reply from this hop will carry:
// intermediate MR-MTP devices answer from their trace Identity, BGP routers
// from the ingress interface, and the destination ToR from its gateway in
// both planes.
func (run *traceRun) hopAddr(v traceVantage, dev *topology.Device, ingressIP netaddr.IPv4) netaddr.IPv4 {
	if dev == v.dst {
		return topology.LeafGatewayIP(dev)
	}
	if run.f.Opts.Protocol == ProtoMRMTP {
		return routerID(dev)
	}
	return ingressIP
}

// forwardWalk predicts prober i's current forward path up to maxTTL hops:
// the hop sequence (device plus reply address) and the directed links
// crossed. The walk truncates where the fabric would drop the probe.
func (run *traceRun) forwardWalk(i, maxTTL int) (hops []tracePathHop, links []pathtrace.DirectedLink) {
	v := run.vants[i]
	key := run.probeKey(i)
	dstRoot := byte(v.dst.VID)
	dev := v.src
	for step := 0; step < maxTTL; step++ {
		next, inIP, ok := run.nextHop(dev, dstRoot, key.Dst, key)
		if !ok {
			return hops, links
		}
		links = append(links, pathtrace.DirectedLink{From: dev.Name, To: next.Name})
		hops = append(hops, tracePathHop{dev: next, addr: run.hopAddr(v, next, inIP)})
		dev = next
		if dev == v.dst {
			break
		}
	}
	return hops, links
}

// replyWalk predicts the links a reply from the given hop crosses on its
// way back to prober i's vantage. The reply is a fresh ICMP flow — hashed
// on (replier address, vantage address, ICMP) — so its path is independent
// of the probe's.
func (run *traceRun) replyWalk(i int, hop tracePathHop) []pathtrace.DirectedLink {
	v := run.vants[i]
	vantage := topology.LeafGatewayIP(v.src)
	key := flowhash.Key{Src: hop.addr, Dst: vantage, Proto: ipv4.ProtoICMP}
	srcRoot := byte(v.src.VID)
	dev := hop.dev
	var links []pathtrace.DirectedLink
	for steps := 0; dev != v.src && steps < pathtrace.MaxTTL; steps++ {
		next, _, ok := run.nextHop(dev, srcRoot, vantage, key)
		if !ok {
			return links
		}
		links = append(links, pathtrace.DirectedLink{From: dev.Name, To: next.Name})
		dev = next
	}
	return links
}

// coverFor assembles one cell's current cover from the prober's forward
// walk: the forward links up to the probed TTL plus the reply path from
// that hop. A probe whose TTL exceeds a walk that reached the destination
// clamps there (the destination answers before checking TTL); one whose
// walk truncated earlier covers only the forward prefix — it is dropped,
// no reply exists.
func (run *traceRun) coverFor(i, ttl int, hops []tracePathHop, links []pathtrace.DirectedLink) []pathtrace.DirectedLink {
	n := ttl
	if n > len(hops) {
		if len(hops) == 0 || hops[len(hops)-1].dev != run.vants[i].dst {
			return append([]pathtrace.DirectedLink(nil), links...)
		}
		n = len(hops)
	}
	cover := append([]pathtrace.DirectedLink(nil), links[:n]...)
	return append(cover, run.replyWalk(i, hops[n-1])...)
}

// updateHistory folds a cell's current cover into its rolling cover
// history (pruned to CoverMemory) and returns the union — the cell's blame
// set — in first-seen order.
func (run *traceRun) updateHistory(key int, now time.Duration, cover []pathtrace.DirectedLink) []pathtrace.DirectedLink {
	hist := append(run.history[key], stampedCover{at: now, links: cover})
	cut := 0
	for cut < len(hist)-1 && now-hist[cut].at > run.cfg.CoverMemory {
		cut++
	}
	hist = hist[cut:]
	run.history[key] = hist
	var blame []pathtrace.DirectedLink
	seen := make(map[pathtrace.DirectedLink]bool)
	for _, h := range hist {
		for _, l := range h.links {
			if !seen[l] {
				seen[l] = true
				blame = append(blame, l)
			}
		}
	}
	return blame
}

// collectCells builds the coverage matrix: every prober's per-TTL rollups
// joined with the predicted covers, in deterministic prober-major order.
// It runs on the driver clock (coordinator context under the partitioned
// engine, where every shard is quiesced), so the cross-shard reads of
// router and prober state are safe.
func (run *traceRun) collectCells(now time.Duration) []pathtrace.Cell {
	var cells []pathtrace.Cell
	for i, p := range run.tracer.Probers() {
		hops, links := run.forwardWalk(i, p.Cfg.MaxTTL)
		for _, s := range p.Snapshot() {
			cover := run.coverFor(i, s.TTL, hops, links)
			blame := run.updateHistory(s.Prober<<5|s.TTL, now, cover)
			cells = append(cells, pathtrace.Cell{HopSnapshot: s, Cover: cover, Blame: blame})
		}
	}
	return cells
}

// arm baselines the localizer on the healthy fabric and takes the first
// hop-statistics sample.
func (run *traceRun) arm() {
	now := run.f.Sim.Now()
	cells := run.collectCells(now)
	run.loc.Arm(now, cells)
	run.sample(now, cells)
}

// sweep is one localization pass: rebuild the coverage matrix, let the
// localizer judge it, and log any accusation as a metrics event.
func (run *traceRun) sweep() {
	now := run.f.Sim.Now()
	cells := run.collectCells(now)
	for _, a := range run.loc.Sweep(now, cells) {
		run.f.Log.Accusation(a.At, "localizer", a.Link.String())
	}
	if now-run.lastSample >= run.cfg.HopSamplePeriod {
		run.sample(now, cells)
	}
}

func (run *traceRun) sample(now time.Duration, cells []pathtrace.Cell) {
	run.lastSample = now
	for i := range cells {
		run.samples = append(run.samples, TraceHopSample{At: now, HopSnapshot: cells[i].HopSnapshot})
	}
}

// TraceAccusation is one localizer verdict scored against the scenario.
type TraceAccusation struct {
	At      time.Duration
	Link    string
	Cells   int
	Ratio   float64
	Latency bool
	Correct bool
}

// TraceResult is one campaign trial.
type TraceResult struct {
	Protocol Protocol
	Pods     int
	Scenario string

	Probers int
	Cells   int

	// Probe-fleet totals over the whole run.
	ProbesSent      uint64
	ProbesLost      uint64
	RepliesReceived uint64
	// TraceReplies counts time-exceeded answers from MR-MTP fabric
	// devices (zero in the BGP plane, where the IP stack answers).
	TraceReplies uint64

	// InjectedAt is the virtual time of the first fault action.
	InjectedAt time.Duration

	Accusations []TraceAccusation
	// Localized reports whether an accepted link was accused;
	// TimeToLocalize is then the delay from InjectedAt to that verdict.
	Localized      bool
	TimeToLocalize time.Duration
	FalseAccusals  int

	// Samples is the per-hop statistics export (trace-hops.csv).
	Samples []TraceHopSample
	// Events merges the injector log with accusation pseudo-events, in
	// virtual-time order.
	Events []chaos.Event
}

// RunTrace executes one trace campaign trial with the default config.
func RunTrace(opts Options, sc TraceScenario) (TraceResult, error) {
	return RunTraceCfg(opts, sc, DefaultTraceConfig())
}

// RunTraceCfg executes one trace campaign trial: build, register the
// prober fleet, warm up, probe through a lead-in, arm the localizer,
// inject the scenario, sweep to the horizon plus settle, and score.
func RunTraceCfg(opts Options, sc TraceScenario, cfg TraceConfig) (TraceResult, error) {
	if opts.MultiTier != nil {
		return TraceResult{}, fmt.Errorf("harness: trace campaigns support the standard three-tier specs only")
	}
	f, err := Build(opts)
	if err != nil {
		return TraceResult{}, err
	}
	run := newTraceRun(f, cfg)
	if err := f.WarmUp(WarmupTime); err != nil {
		return TraceResult{}, err
	}
	run.start()
	f.Sim.RunFor(cfg.LeadIn)
	run.arm()
	var sweep func()
	sweep = func() {
		run.sweep()
		f.Sim.Schedule(cfg.SweepPeriod, sweep)
	}
	f.Sim.Schedule(cfg.SweepPeriod, sweep)

	applyAt := f.Sim.Now()
	inj, err := chaos.Apply(f.Sim, sc.Spec)
	if err != nil {
		return TraceResult{}, err
	}
	f.Sim.RunFor(sc.Spec.Horizon() + cfg.Settle)

	firstStart := sc.Spec.Faults[0].Start.D()
	for _, fault := range sc.Spec.Faults[1:] {
		if s := fault.Start.D(); s < firstStart {
			firstStart = s
		}
	}
	res := TraceResult{
		Protocol:   opts.Protocol,
		Pods:       opts.Spec.Pods,
		Scenario:   sc.Spec.Name,
		Probers:    len(run.tracer.Probers()),
		InjectedAt: applyAt + firstStart,
		Samples:    run.samples,
	}
	snaps := run.tracer.Snapshot()
	res.Cells = len(snaps)
	for _, s := range snaps {
		res.ProbesSent += s.Sent
		res.ProbesLost += s.Lost
		res.RepliesReceived += s.Received
	}
	for _, d := range f.Topo.Routers() {
		if r := f.Routers[d.Name]; r != nil {
			res.TraceReplies += r.Stats.TraceReplies
		}
	}
	accept := make(map[string]bool, len(sc.Accept))
	for _, l := range sc.Accept {
		accept[l.String()] = true
	}
	for _, a := range run.loc.Accusations() {
		ta := TraceAccusation{
			At: a.At, Link: a.Link.String(), Cells: a.Cells,
			Ratio: a.Ratio, Latency: a.Latency, Correct: accept[a.Link.String()],
		}
		if ta.Correct {
			if !res.Localized {
				res.Localized = true
				res.TimeToLocalize = ta.At - res.InjectedAt
			}
		} else {
			res.FalseAccusals++
		}
		res.Accusations = append(res.Accusations, ta)
	}
	res.Events = mergeTraceEvents(inj.Events(), res.Accusations)
	return res, nil
}

// mergeTraceEvents interleaves the injector log with accusation
// pseudo-events by virtual time (fault actions first on ties, matching
// their scheduling precedence).
func mergeTraceEvents(faults []chaos.Event, accs []TraceAccusation) []chaos.Event {
	out := make([]chaos.Event, 0, len(faults)+len(accs))
	j := 0
	for _, ev := range faults {
		for j < len(accs) && accs[j].At < ev.At {
			out = append(out, accusationEvent(accs[j]))
			j++
		}
		out = append(out, ev)
	}
	for ; j < len(accs); j++ {
		out = append(out, accusationEvent(accs[j]))
	}
	return out
}

func accusationEvent(a TraceAccusation) chaos.Event {
	detail := "false"
	if a.Correct {
		detail = "correct"
	}
	return chaos.Event{
		At: a.At, Kind: AccusationEventKind, Action: "accuse",
		Target: a.Link, Detail: detail,
	}
}

// TraceSummary aggregates trials of one (protocol, pods, scenario) cell.
// It is a flat comparable struct on purpose, like ChaosSummary: the
// pooling determinism test compares summaries with ==.
type TraceSummary struct {
	Protocol Protocol
	Pods     int
	Scenario string
	Trials   int

	Probers int // per trial (identical across trials by construction)

	// Localized counts trials whose accepted link was accused;
	// FalseAccusals sums wrong verdicts across all trials.
	Localized     int
	FalseAccusals int

	// Time-to-localization over the localized trials, in milliseconds.
	TTLocMsMean float64
	TTLocMsMax  float64

	AccusationsMean   float64
	ProbeLossRateMean float64
	TraceRepliesMean  float64
}

// SummarizeTrace pools per-trial results in trial order, so parallel and
// sequential runs summarize bit-identically.
func SummarizeTrace(rs []TraceResult) TraceSummary {
	if len(rs) == 0 {
		return TraceSummary{}
	}
	s := TraceSummary{
		Protocol: rs[0].Protocol,
		Pods:     rs[0].Pods,
		Scenario: rs[0].Scenario,
		Trials:   len(rs),
		Probers:  rs[0].Probers,
	}
	n := float64(len(rs))
	var ttlSum float64
	for _, r := range rs {
		if r.Localized {
			s.Localized++
			ms := float64(r.TimeToLocalize) / float64(time.Millisecond)
			ttlSum += ms
			if ms > s.TTLocMsMax {
				s.TTLocMsMax = ms
			}
		}
		s.FalseAccusals += r.FalseAccusals
		s.AccusationsMean += float64(len(r.Accusations)) / n
		if r.ProbesSent > 0 {
			s.ProbeLossRateMean += float64(r.ProbesLost) / float64(r.ProbesSent) / n
		}
		s.TraceRepliesMean += float64(r.TraceReplies) / n
	}
	if s.Localized > 0 {
		s.TTLocMsMean = ttlSum / float64(s.Localized)
	}
	return s
}

// RunTraceTrials fans n seeds of one campaign cell over the trial pool and
// pools the results, returning per-trial results in trial order.
func RunTraceTrials(opts Options, sc TraceScenario, n int) (TraceSummary, []TraceResult, error) {
	rs, err := runTrials(opts, n, func(o Options) (TraceResult, error) {
		return RunTrace(o, sc)
	})
	if err != nil {
		return TraceSummary{}, nil, err
	}
	return SummarizeTrace(rs), rs, nil
}
