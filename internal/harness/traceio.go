package harness

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"
)

// This file renders trace campaign artifacts, mirroring chaosio.go: the
// renderers are exported so the byte-identity acceptance test runs against
// the exact bytes the CLI writes.

// TraceRun pairs one cell's summary with its per-trial results.
type TraceRun struct {
	Summary TraceSummary
	Trials  []TraceResult
}

// RenderTraceHopsCSV renders every trial's per-hop statistic samples:
// one row per (sample time, prober, TTL) cell.
func RenderTraceHopsCSV(runs []TraceRun) []byte {
	var b strings.Builder
	_, _ = b.WriteString("protocol,pods,scenario,trial,t_us,prober,flow,src,dst,ttl,addr,seen,reached,sent,lost,received,loss_ewma,rtt_p50_us,rtt_p95_us,last_seen_us\n")
	for _, r := range runs {
		s := r.Summary
		for ti, tr := range r.Trials {
			for _, h := range tr.Samples {
				_, _ = fmt.Fprintf(&b, "%s,%d,%s,%d,%d,%d,%d,%s,%s,%d,%s,%t,%t,%d,%d,%d,%.4f,%d,%d,%d\n",
					s.Protocol, s.Pods, s.Scenario, ti,
					h.At/time.Microsecond, h.Prober, h.Flow, h.Src, h.Dst, h.TTL,
					h.Addr, h.Seen, h.Reached, h.Sent, h.Lost, h.Received,
					h.LossEWMA, h.RTTP50/time.Microsecond, h.RTTP95/time.Microsecond,
					h.LastSeen/time.Microsecond)
			}
		}
	}
	return []byte(b.String())
}

// RenderTraceAccusationsCSV renders every trial's localization verdicts.
func RenderTraceAccusationsCSV(runs []TraceRun) []byte {
	var b strings.Builder
	_, _ = b.WriteString("protocol,pods,scenario,trial,t_us,link,cells,ratio,latency,correct,t_to_localize_us\n")
	for _, r := range runs {
		s := r.Summary
		for ti, tr := range r.Trials {
			for _, a := range tr.Accusations {
				_, _ = fmt.Fprintf(&b, "%s,%d,%s,%d,%d,%s,%d,%.3f,%t,%t,%d\n",
					s.Protocol, s.Pods, s.Scenario, ti,
					a.At/time.Microsecond, a.Link, a.Cells, a.Ratio, a.Latency, a.Correct,
					(a.At-tr.InjectedAt)/time.Microsecond)
			}
		}
	}
	return []byte(b.String())
}

// RenderTraceTimelineCSV renders every trial's merged event log — injector
// fault actions and accusation events — in the shared timeline schema.
func RenderTraceTimelineCSV(runs []TraceRun) []byte {
	var b strings.Builder
	_, _ = b.WriteString(timelineHeader)
	for _, r := range runs {
		s := r.Summary
		for ti, tr := range r.Trials {
			writeTimelineRows(&b, s.Protocol, s.Pods, s.Scenario, ti, tr.Events)
		}
	}
	return []byte(b.String())
}

// traceJSONSummary is the machine-readable form of one cell.
type traceJSONSummary struct {
	Protocol string `json:"protocol"`
	Pods     int    `json:"pods"`
	Scenario string `json:"scenario"`
	Trials   int    `json:"trials"`
	Probers  int    `json:"probers"`

	Localized     int `json:"localized_trials"`
	FalseAccusals int `json:"false_accusals"`

	TTLocMsMean float64 `json:"time_to_localize_ms_mean"`
	TTLocMsMax  float64 `json:"time_to_localize_ms_max"`

	AccusationsMean   float64 `json:"accusations_mean"`
	ProbeLossRateMean float64 `json:"probe_loss_rate_mean"`
	TraceRepliesMean  float64 `json:"trace_replies_mean"`
}

// RenderTraceSummaryJSON renders every cell's summary as indented JSON.
func RenderTraceSummaryJSON(runs []TraceRun) ([]byte, error) {
	var out []traceJSONSummary
	for _, r := range runs {
		s := r.Summary
		out = append(out, traceJSONSummary{
			Protocol: s.Protocol.String(),
			Pods:     s.Pods,
			Scenario: s.Scenario,
			Trials:   s.Trials,
			Probers:  s.Probers,

			Localized:     s.Localized,
			FalseAccusals: s.FalseAccusals,

			TTLocMsMean: s.TTLocMsMean,
			TTLocMsMax:  s.TTLocMsMax,

			AccusationsMean:   s.AccusationsMean,
			ProbeLossRateMean: s.ProbeLossRateMean,
			TraceRepliesMean:  s.TraceRepliesMean,
		})
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// RenderTrace formats one cell's summary as the experiment's text block.
func RenderTrace(s TraceSummary) string {
	out := fmt.Sprintf("%s %dP %s: %d trials, %d probers, localized %d/%d, %d false accusals\n",
		s.Protocol, s.Pods, s.Scenario, s.Trials, s.Probers,
		s.Localized, s.Trials, s.FalseAccusals)
	out += fmt.Sprintf("  time-to-localize mean %.0fms (max %.0fms), %.1f accusations/trial, probe loss %.2f%%, %.0f trace replies\n",
		s.TTLocMsMean, s.TTLocMsMax, s.AccusationsMean,
		100*s.ProbeLossRateMean, s.TraceRepliesMean)
	return out
}
