package harness

import (
	"testing"
	"time"

	"repro/internal/topology"
)

// setLoss applies a frame loss probability to every fabric link (the rack
// links stay clean so convergence checks are not confused by probe loss).
func setLoss(f *Fabric, rate float64) {
	for _, link := range f.Sim.Links() {
		link.SetLossRate(rate)
	}
}

// lossyMTPOptions widens the dead timer for lossy substrates. The paper
// observed exactly this sensitivity ("further reduction of the keep-alive
// interval resulted in false failure detection", §VI.F): a 100 ms dead
// timer misses a neighbor after two lost hellos, which at 5-10% frame loss
// happens every few seconds somewhere in the fabric. Five hello intervals
// make a false detection a once-per-hour event.
func lossyMTPOptions(proto Protocol, seed int64) Options {
	opts := DefaultOptions(topology.TwoPodSpec(), proto, seed)
	opts.MTPDead = 250 * time.Millisecond
	return opts
}

func TestMRMTPConvergesOverLossyLinks(t *testing.T) {
	// The paper's §III.C claim: reliability is built into the message
	// exchanges. With 10% random frame loss on every link, the meshed
	// trees must still form — JOIN retransmission and periodic
	// re-advertisement recover every lost handshake step.
	f, err := Build(lossyMTPOptions(ProtoMRMTP, 77))
	if err != nil {
		t.Fatal(err)
	}
	setLoss(f, 0.10)
	f.Start()
	f.Sim.RunFor(30 * time.Second)
	if err := f.CheckConverged(); err != nil {
		t.Fatalf("MR-MTP did not converge over 10%% lossy links: %v", err)
	}
}

func TestBGPConvergesOverLossyLinks(t *testing.T) {
	// BGP rides TCP: retransmission recovers lost segments, so the
	// fabric converges over a 5% lossy substrate (more slowly).
	f, err := Build(DefaultOptions(topology.TwoPodSpec(), ProtoBGP, 77))
	if err != nil {
		t.Fatal(err)
	}
	setLoss(f, 0.05)
	f.Start()
	f.Sim.RunFor(60 * time.Second)
	if err := f.CheckConverged(); err != nil {
		t.Fatalf("BGP did not converge over 5%% lossy links: %v", err)
	}
}

func TestMRMTPLossyFailureRecovery(t *testing.T) {
	// Failure handling must also survive loss: LOST updates are sent on
	// multiple tree branches, so a single dropped frame cannot hide the
	// failure from the rest of the fabric forever (the periodic
	// advertise/dead-timer machinery catches stragglers).
	f, err := Build(lossyMTPOptions(ProtoMRMTP, 78))
	if err != nil {
		t.Fatal(err)
	}
	setLoss(f, 0.05)
	f.Start()
	f.Sim.RunFor(30 * time.Second)
	if err := f.CheckConverged(); err != nil {
		t.Fatalf("setup: %v", err)
	}
	if _, err := f.Fail(topology.TC1); err != nil {
		t.Fatal(err)
	}
	f.Sim.RunFor(5 * time.Second)
	// The surviving plane must still deliver: probe with ping (rack
	// links are lossy too here, so allow retries).
	ok := false
	for attempt := 0; attempt < 10 && !ok; attempt++ {
		res, err := Ping(f, 11, 14, 500*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		ok = res.OK
	}
	if !ok {
		t.Error("no ping made it across after failure on a lossy fabric")
	}
}

func TestQuickToDetectFalseFailuresUnderLoss(t *testing.T) {
	// The flip side, reproduced deliberately: with the paper's 100 ms
	// dead timer, a 10% lossy fabric *does* suffer false failure
	// detections — the reason the paper could not shrink its timers
	// further on the shared FABRIC testbed.
	f, err := Build(DefaultOptions(topology.TwoPodSpec(), ProtoMRMTP, 80))
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	f.Sim.RunFor(5 * time.Second) // converge cleanly first
	setLoss(f, 0.10)
	var before uint64
	for _, r := range f.Routers {
		before += r.Stats.NeighborsLost
	}
	f.Sim.RunFor(60 * time.Second)
	var after uint64
	for _, r := range f.Routers {
		after += r.Stats.NeighborsLost
	}
	if after == before {
		t.Error("expected false failure detections at 10% loss with a 100ms dead timer")
	}
	t.Logf("false neighbor-down events in 60s at 10%% loss: %d", after-before)
}

func TestLossInjectionActuallyDrops(t *testing.T) {
	f, err := Build(DefaultOptions(topology.TwoPodSpec(), ProtoMRMTP, 79))
	if err != nil {
		t.Fatal(err)
	}
	setLoss(f, 0.5)
	f.Start()
	f.Sim.RunFor(5 * time.Second)
	var lost uint64
	for _, l := range f.Sim.Links() {
		lost += l.Lost()
	}
	if lost == 0 {
		t.Error("50% loss rate dropped nothing")
	}
}
