package harness

import (
	"fmt"
	"time"

	"repro/internal/fluid"
	"repro/internal/flowhash"
	"repro/internal/ipstack"
	"repro/internal/ipv4"
	"repro/internal/netaddr"
	"repro/internal/simnet"
	"repro/internal/topology"
	"repro/internal/workload"
)

// This file couples the fluid solver to a built fabric: every directed link
// becomes a registered solver capacity whose committed share squeezes the
// packet serializer, and flow paths are resolved by replaying the routers'
// own forwarding decisions — no packets sent, but the same MR-MTP VID walk
// or ECMP FIB lookup the packet path would hash through.

// fluidPlan is the per-trial binding of solver links to fabric ports.
type fluidPlan struct {
	solver *fluid.Solver
	// ids maps each transmit direction (keyed by its from-port) to the
	// solver link reserved for it. Lookup-only after construction.
	ids map[*simnet.Port]fluid.LinkID
	// serial is the one-packet store-and-forward delay per hop, part of
	// each path's fixed latency offset.
	serial time.Duration
}

// buildFluidPlan registers both directions of every fabric link with a fresh
// solver. The apply hooks reserve the committed share on the wire, so packet
// and fluid traffic compete for the same capacity. The per-flow rate cap
// mirrors the packet engine's pacing (one packet per PacketInterval), which
// is what keeps uncongested-path FCTs comparable across engines.
func (f *Fabric) buildFluidPlan(w WorkloadConfig) (*fluidPlan, error) {
	if w.LinkBps <= 0 {
		return nil, fmt.Errorf("fluid engine needs rate-limited links (LinkBps > 0): an unshaped fabric has no capacities to allocate")
	}
	if w.PacketSize <= 0 || w.PacketInterval <= 0 {
		return nil, fmt.Errorf("fluid engine needs PacketSize and PacketInterval for the pacing-equivalent rate cap")
	}
	capBps := float64(w.PacketSize*8) / w.PacketInterval.Seconds()
	plan := &fluidPlan{
		solver: fluid.New(fluid.Config{RateCapBps: capBps}),
		ids:    make(map[*simnet.Port]fluid.LinkID),
		serial: time.Duration(int64(w.PacketSize) * 8 * int64(time.Second) / w.LinkBps),
	}
	for _, link := range f.Sim.Links() {
		link := link
		for _, from := range []*simnet.Port{link.A, link.B} {
			from := from
			plan.ids[from] = plan.solver.AddLink(w.LinkBps, func(bps int64, at time.Duration) {
				link.SetFluidLoad(from, bps, at)
			})
		}
	}
	return plan, nil
}

// pathFunc resolves a flow onto the solver's directed links by walking the
// fabric's forwarding state: server access link, then nextHopPort decisions
// leaf-to-leaf, then the destination access link. The returned slice is
// reused across calls (the solver copies on group creation). Resolution
// fails — demoting the flow's group to its stale path, or abandoning an
// unlaunched flow — when a forwarding table has no next hop, e.g. mid-fault.
func (f *Fabric) pathFunc(plan *fluidPlan, dstPort uint16) workload.PathFunc {
	servers := f.Topo.Servers
	path := make([]fluid.LinkID, 0, 8)
	return func(fl *workload.Flow) ([]fluid.LinkID, time.Duration, bool) {
		src, dst := servers[fl.Src], servers[fl.Dst]
		key := flowhash.Key{
			Src: src.IP, Dst: dst.IP, Proto: ipv4.ProtoUDP,
			SrcPort: fl.SrcPort, DstPort: dstPort,
		}
		path = path[:0]
		var latency time.Duration
		add := func(from *simnet.Port) bool {
			id, ok := plan.ids[from]
			if !ok {
				return false
			}
			path = append(path, id)
			latency += from.Link.Latency + plan.serial
			return true
		}
		if !add(f.Sim.Node(src.Name).Port(1)) {
			return nil, 0, false
		}
		dstLeaf := dst.Ports[1].Peer.Device
		dstRoot := byte(dstLeaf.VID)
		dev := src.Ports[1].Peer.Device
		for hop := 0; dev != dstLeaf; hop++ {
			if hop >= 6 { // longest valid folded-Clos walk is leaf-spine-root-spine-leaf
				return nil, 0, false
			}
			port, ok := f.nextHopPort(dev, dstRoot, dst.IP, key)
			if !ok {
				return nil, 0, false
			}
			tp := dev.Ports[port]
			if tp == nil || tp.Peer == nil || tp.Peer.Device.Tier == topology.TierServer {
				return nil, 0, false
			}
			if !add(f.Sim.Node(dev.Name).Port(port)) {
				return nil, 0, false
			}
			dev = tp.Peer.Device
		}
		if !add(f.Sim.Node(dstLeaf.Name).Port(dst.Ports[1].Peer.Index)) {
			return nil, 0, false
		}
		return path, latency, true
	}
}

// nextHopPort replicates one router's forwarding decision for a flow: the
// protocol's own next-hop selection, returned as the egress port index.
// dstRoot drives the MR-MTP VID walk, dstIP the BGP FIB lookup; both planes
// hash the same flow key their data path would.
func (f *Fabric) nextHopPort(dev *topology.Device, dstRoot byte, dstIP netaddr.IPv4, key flowhash.Key) (int, bool) {
	if f.Opts.Protocol == ProtoMRMTP {
		return f.Routers[dev.Name].NextDataHop(dstRoot, key)
	}
	var nh ipstack.NextHop
	nh, ok := f.Stacks[dev.Name].NextHopFor(dstIP, key)
	if !ok {
		return 0, false
	}
	return nh.Iface.Port.Index, true
}
