package harness

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/pathtrace"
	"repro/internal/simnet"
	"repro/internal/topology"
)

// traceTestCfg probes one flow per leaf pair: hop-attribution assertions
// want a small deterministic fleet, not ECMP sweep width.
func traceTestCfg() TraceConfig {
	cfg := DefaultTraceConfig()
	cfg.Flows = 1
	return cfg
}

// buildTraceRun builds a warm fabric with the prober fleet started and two
// seconds of probing behind it.
func buildTraceRun(t *testing.T, proto Protocol, seed int64) (*Fabric, *traceRun) {
	t.Helper()
	f, err := Build(DefaultOptions(topology.TwoPodSpec(), proto, seed))
	if err != nil {
		t.Fatal(err)
	}
	run := newTraceRun(f, traceTestCfg())
	if err := f.WarmUp(WarmupTime); err != nil {
		t.Fatal(err)
	}
	run.start()
	f.Sim.RunFor(2 * time.Second)
	return f, run
}

// wantTiers is the tier sequence a probe walks leaf-to-leaf: up to a spine
// and back down intra-pod, over the top tier cross-pod.
func wantTiers(intraPod bool) []topology.Tier {
	if intraPod {
		return []topology.Tier{topology.TierSpine, topology.TierLeaf}
	}
	return []topology.Tier{topology.TierSpine, topology.TierTop, topology.TierSpine, topology.TierLeaf}
}

// TestTraceHopAttribution is the end-to-end time-exceeded contract: for
// every prober, the per-TTL reply addresses observed on the wire match the
// walk predicted from the protocol's own forwarding state — MR-MTP VID
// paths answer from router identities, BGP ECMP paths from ingress
// interfaces, and the destination ToR from its gateway in both planes.
func TestTraceHopAttribution(t *testing.T) {
	for _, proto := range []Protocol{ProtoMRMTP, ProtoBGP} {
		t.Run(proto.String(), func(t *testing.T) {
			_, run := buildTraceRun(t, proto, 21)
			cells := 0
			for i, p := range run.tracer.Probers() {
				v := run.vants[i]
				hops, _ := run.forwardWalk(i, p.Cfg.MaxTTL)
				if len(hops) != p.Cfg.MaxTTL {
					t.Fatalf("prober %d (%s->%s): walk length %d, want %d",
						i, v.src.Name, v.dst.Name, len(hops), p.Cfg.MaxTTL)
				}
				for h, tier := range wantTiers(v.src.Pod == v.dst.Pod) {
					if hops[h].dev.Tier != tier {
						t.Fatalf("prober %d hop %d is %s (tier %v), want tier %v",
							i, h+1, hops[h].dev.Name, hops[h].dev.Tier, tier)
					}
				}
				for _, s := range p.Snapshot() {
					hop := hops[s.TTL-1]
					if !s.Seen {
						t.Errorf("prober %d TTL %d: no reply seen", i, s.TTL)
						continue
					}
					if s.Addr != hop.addr {
						t.Errorf("prober %d (%s->%s) TTL %d: replied from %s, walk predicts %s (%s)",
							i, v.src.Name, v.dst.Name, s.TTL, s.Addr, hop.addr, hop.dev.Name)
					}
					if want := hop.dev == v.dst; s.Reached != want {
						t.Errorf("prober %d TTL %d: Reached=%t, want %t", i, s.TTL, s.Reached, want)
					}
					if s.Lost != 0 {
						t.Errorf("prober %d TTL %d: %d probes lost on a healthy fabric", i, s.TTL, s.Lost)
					}
					// Pin the per-plane address scheme, not just walk
					// self-consistency.
					if hop.dev == v.dst {
						if s.Addr != topology.LeafGatewayIP(v.dst) {
							t.Errorf("prober %d TTL %d: destination replied from %s, want gateway", i, s.TTL, s.Addr)
						}
					} else if proto == ProtoMRMTP && s.Addr != routerID(hop.dev) {
						t.Errorf("prober %d TTL %d: hop replied from %s, want router identity %s",
							i, s.TTL, s.Addr, routerID(hop.dev))
					}
					cells++
				}
			}
			if cells == 0 {
				t.Fatal("no cells verified")
			}
		})
	}
}

// TestTraceHopAttributionUnderOneWayDown drops one transmit direction of a
// walked spine→top link mid-run: cells probing at or past the dark link
// record loss while the TTL-1 cell keeps exact attribution — the per-hop
// statistics isolate the failing hop.
func TestTraceHopAttributionUnderOneWayDown(t *testing.T) {
	for _, proto := range []Protocol{ProtoMRMTP, ProtoBGP} {
		t.Run(proto.String(), func(t *testing.T) {
			f, run := buildTraceRun(t, proto, 23)
			target := -1
			for i, p := range run.tracer.Probers() {
				if p.Cfg.MaxTTL == 4 {
					target = i
					break
				}
			}
			if target < 0 {
				t.Fatal("no cross-pod prober")
			}
			hops, _ := run.forwardWalk(target, 4)
			if len(hops) != 4 {
				t.Fatalf("walk length %d, want 4", len(hops))
			}
			// The spine→top TX port from the walked path, impaired one-way:
			// the reverse direction and the spine's reply path stay clean.
			spine := hops[0].dev
			var port *simnet.Port
			for _, p := range f.Sim.Node(spine.Name).Ports[1:] {
				if p.Link != nil && p.Peer().Node.Name == hops[1].dev.Name {
					port = p
					break
				}
			}
			if port == nil {
				t.Fatalf("no port %s->%s", spine.Name, hops[1].dev.Name)
			}

			before := map[int]pathtrace.HopSnapshot{}
			for _, s := range run.tracer.Probers()[target].Snapshot() {
				before[s.TTL] = s
			}
			port.Link.Impair(port, simnet.Impairment{Down: true})
			f.Sim.RunFor(time.Second)

			for _, s := range run.tracer.Probers()[target].Snapshot() {
				b := before[s.TTL]
				if s.TTL == 1 {
					if s.Lost != b.Lost {
						t.Errorf("TTL 1 lost %d probes behind an impairment past its hop", s.Lost-b.Lost)
					}
					if s.Addr != hops[0].addr {
						t.Errorf("TTL 1 attribution moved to %s under the impairment", s.Addr)
					}
					continue
				}
				if s.Lost <= b.Lost {
					t.Errorf("TTL %d recorded no loss across the dark %s->%s link",
						s.TTL, spine.Name, hops[1].dev.Name)
				}
			}
		})
	}
}

// TestTraceCampaignLocalizesCatalog runs every catalog scenario end to end
// on both protocols: each must localize an accepted link with zero false
// accusals, and the verdict must land after injection.
func TestTraceCampaignLocalizesCatalog(t *testing.T) {
	if testing.Short() {
		t.Skip("full trace campaigns in -short mode")
	}
	for _, proto := range []Protocol{ProtoMRMTP, ProtoBGP} {
		for _, sc := range TraceCatalog() {
			r, err := RunTrace(DefaultOptions(topology.TwoPodSpec(), proto, 31), sc)
			if err != nil {
				t.Fatalf("%s %s: %v", proto, sc.Spec.Name, err)
			}
			if !r.Localized {
				t.Errorf("%s %s: not localized (accusations: %+v)", proto, sc.Spec.Name, r.Accusations)
			}
			if r.FalseAccusals != 0 {
				t.Errorf("%s %s: %d false accusals: %+v", proto, sc.Spec.Name, r.FalseAccusals, r.Accusations)
			}
			if r.Localized && r.TimeToLocalize <= 0 {
				t.Errorf("%s %s: non-positive time-to-localize %v", proto, sc.Spec.Name, r.TimeToLocalize)
			}
			if r.ProbesSent == 0 || r.RepliesReceived == 0 {
				t.Errorf("%s %s: probe fleet idle (sent %d, received %d)",
					proto, sc.Spec.Name, r.ProbesSent, r.RepliesReceived)
			}
		}
	}
}

// TestPartitionedTraceIdentity pins the campaign's bit-identity across the
// space-parallel engine: the catalog's spine fault crosses the by-PoD shard
// boundary, and probe ticks ride shard-local queues.
func TestPartitionedTraceIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("full fabric trials in -short mode")
	}
	sc := TraceCatalog()[0] // trace-gray-spine: a cross-shard S→T fault
	cfg := traceTestCfg()
	opts := DefaultOptions(topology.FourPodSpec(), ProtoMRMTP, 19)
	seq, err := RunTraceCfg(withPartitions(opts, 1), sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !seq.Localized || seq.FalseAccusals != 0 {
		t.Fatalf("sequential reference run did not localize cleanly: %+v", seq.Accusations)
	}
	for _, shards := range partitionCounts {
		par, err := RunTraceCfg(withPartitions(opts, shards), sc, cfg)
		if err != nil {
			t.Fatalf("%d shards: %v", shards, err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("%d-shard trace result differs from sequential:\nsequential: %+v\npartitioned: %+v",
				shards, seq, par)
		}
	}
}

// TestTraceParallelMatchesSequential pins trial pooling: worker count must
// not leak into summaries or rendered artifacts.
func TestTraceParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("full fabric trials in -short mode")
	}
	sc := TraceCatalog()[1] // trace-gray-leaf
	opts := DefaultOptions(topology.TwoPodSpec(), ProtoMRMTP, 3)

	old := Workers
	defer func() { Workers = old }()

	render := func(s TraceSummary, rs []TraceResult) [][]byte {
		runs := []TraceRun{{Summary: s, Trials: rs}}
		js, err := RenderTraceSummaryJSON(runs)
		if err != nil {
			t.Fatal(err)
		}
		return [][]byte{
			RenderTraceHopsCSV(runs), RenderTraceAccusationsCSV(runs),
			RenderTraceTimelineCSV(runs), js,
		}
	}

	Workers = 1
	seq, seqTrials, err := RunTraceTrials(opts, sc, 3)
	if err != nil {
		t.Fatal(err)
	}
	Workers = 4
	par, parTrials, err := RunTraceTrials(opts, sc, 3)
	if err != nil {
		t.Fatal(err)
	}
	// TraceSummary is flat and comparable by design, like ChaosSummary.
	if seq != par {
		t.Errorf("parallel summary differs from sequential:\nseq: %+v\npar: %+v", seq, par)
	}
	seqArts, parArts := render(seq, seqTrials), render(par, parTrials)
	for i := range seqArts {
		if !bytes.Equal(seqArts[i], parArts[i]) {
			t.Errorf("artifact %d differs between worker counts", i)
		}
	}
	if !strings.HasPrefix(string(seqArts[1]), "protocol,pods,scenario,trial,t_us,link,cells,ratio,latency,correct,t_to_localize_us\n") {
		t.Errorf("unexpected accusations header: %q", strings.SplitN(string(seqArts[1]), "\n", 2)[0])
	}
}
