package harness

import (
	"time"

	"repro/internal/trafficgen"
)

// CongestionResult summarizes an oversubscription run: many flows from one
// rack offered into rate-limited fabric links.
type CongestionResult struct {
	Protocol  Protocol
	Flows     int
	Offered   uint64 // packets sent
	Delivered uint64 // packets received
	Overflow  uint64 // frames tail-dropped at fabric queues
}

// RunCongestion drives `flows` parallel flows from the rack at VID 11 to
// the rack at VID 14 for the duration, with every fabric link limited to
// linkBps (64-frame queues). The delivered fraction measures how well the
// protocol's load balancing uses the fabric's parallel capacity — the
// purpose the paper assigns to MR-MTP's hash (§III.C) and to ECMP.
func RunCongestion(opts Options, flows int, linkBps int64, duration time.Duration) (CongestionResult, error) {
	f, err := Build(opts)
	if err != nil {
		return CongestionResult{}, err
	}
	if err := f.WarmUp(WarmupTime); err != nil {
		return CongestionResult{}, err
	}
	for _, link := range f.Sim.Links() {
		if link.A.Node.Meta["tier"] == "server" || link.B.Node.Meta["tier"] == "server" {
			continue
		}
		link.SetBandwidth(linkBps, 64)
	}
	src, srcDev, err := f.ServerStack(11, 1)
	if err != nil {
		return CongestionResult{}, err
	}
	dst, dstDev, err := f.ServerStack(14, 1)
	if err != nil {
		return CongestionResult{}, err
	}
	var senders []*trafficgen.Sender
	var receivers []*trafficgen.Receiver
	for i := 0; i < flows; i++ {
		cfg := trafficgen.DefaultConfig(srcDev.IP, dstDev.IP)
		cfg.SrcPort = 42000 + uint16(i)
		cfg.DstPort = 47000 + uint16(i)
		cfg.Interval = 1200 * time.Microsecond
		cfg.Size = 1000
		receivers = append(receivers, trafficgen.NewReceiver(dst, cfg.DstPort))
		s := trafficgen.NewSender(src, cfg)
		senders = append(senders, s)
		s.Start()
	}
	f.Sim.RunFor(duration)
	res := CongestionResult{Protocol: opts.Protocol, Flows: flows}
	for i, s := range senders {
		s.Stop()
		rep := receivers[i].Report(s)
		res.Offered += rep.Sent
		res.Delivered += rep.Received
	}
	for _, link := range f.Sim.Links() {
		res.Overflow += link.Overflowed()
	}
	return res, nil
}
