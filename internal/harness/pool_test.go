package harness

import (
	"errors"
	"testing"

	"repro/internal/topology"
)

// withWorkers runs fn with the pool width pinned, restoring it afterwards.
func withWorkers(t *testing.T, n int, fn func()) {
	t.Helper()
	old := Workers
	Workers = n
	defer func() { Workers = old }()
	fn()
}

func TestTrialSeedDerivation(t *testing.T) {
	if TrialSeed(10, 0) != 10 {
		t.Errorf("TrialSeed(10, 0) = %d, want 10", TrialSeed(10, 0))
	}
	if TrialSeed(10, 3) != 10+3*7919 {
		t.Errorf("TrialSeed(10, 3) = %d, want %d", TrialSeed(10, 3), 10+3*7919)
	}
	// Seeds must be a pure function of (base, index): this is what makes
	// the parallel runner's output independent of scheduling order.
	if TrialSeed(10, 2) != TrialSeed(10, 2) {
		t.Error("TrialSeed is not deterministic")
	}
}

func TestRunTrialsOrdersResultsByIndex(t *testing.T) {
	opts := Options{Seed: 5}
	withWorkers(t, 4, func() {
		rs, err := runTrials(opts, 8, func(o Options) (int64, error) {
			return o.Seed, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, got := range rs {
			if want := TrialSeed(5, i); got != want {
				t.Errorf("trial %d saw seed %d, want %d", i, got, want)
			}
		}
	})
}

func TestRunTrialsReturnsLowestIndexedError(t *testing.T) {
	errA, errB := errors.New("a"), errors.New("b")
	withWorkers(t, 4, func() {
		_, err := runTrials(Options{}, 6, func(o Options) (int, error) {
			switch o.Seed {
			case TrialSeed(0, 4):
				return 0, errB
			case TrialSeed(0, 2):
				return 0, errA
			}
			return 0, nil
		})
		if err != errA {
			t.Errorf("got error %v, want the lowest-indexed error %v", err, errA)
		}
	})
}

// TestParallelTrialsDeterministic is the acceptance check for the parallel
// harness: a parallel run and a forced-sequential run of the same
// configuration must produce bit-identical summaries.
func TestParallelTrialsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full fabric trials in -short mode")
	}
	opts := DefaultOptions(topology.TwoPodSpec(), ProtoMRMTP, 7)
	const n = 4

	var seq, par FailureSummary
	var err error
	withWorkers(t, 1, func() {
		seq, err = RunFailureTrials(opts, topology.TC1, n)
	})
	if err != nil {
		t.Fatal(err)
	}
	withWorkers(t, 4, func() {
		par, err = RunFailureTrials(opts, topology.TC1, n)
	})
	if err != nil {
		t.Fatal(err)
	}
	if seq != par {
		t.Errorf("parallel summary differs from sequential:\nsequential: %+v\nparallel:   %+v", seq, par)
	}

	var seqLoss, parLoss float64
	withWorkers(t, 1, func() {
		seqLoss, err = RunLossTrials(opts, topology.TC2, false, 2)
	})
	if err != nil {
		t.Fatal(err)
	}
	withWorkers(t, 2, func() {
		parLoss, err = RunLossTrials(opts, topology.TC2, false, 2)
	})
	if err != nil {
		t.Fatal(err)
	}
	if seqLoss != parLoss {
		t.Errorf("parallel loss %v differs from sequential %v", parLoss, seqLoss)
	}
}
