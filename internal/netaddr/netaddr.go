// Package netaddr provides the MAC and IPv4 address types shared by every
// protocol stack in the repository. It is a small, allocation-free subset of
// what net/netip offers, tailored to the simulator: addresses are comparable
// array values so they can key maps, and parsing is strict.
package netaddr

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// MAC is a 48-bit Ethernet hardware address.
type MAC [6]byte

// Broadcast is the all-ones MAC address. MR-MTP uses it as the destination
// of every frame (links are point-to-point, so no ARP is needed).
var Broadcast = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff} //simlint:shared effectively const; a [6]byte value nothing writes

// String renders the address in the canonical aa:bb:cc:dd:ee:ff form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IsBroadcast reports whether m is the all-ones broadcast address.
func (m MAC) IsBroadcast() bool { return m == Broadcast }

// ParseMAC parses the aa:bb:cc:dd:ee:ff form.
func ParseMAC(s string) (MAC, error) {
	var m MAC
	parts := strings.Split(s, ":")
	if len(parts) != 6 {
		return m, fmt.Errorf("netaddr: malformed MAC %q", s)
	}
	for i, p := range parts {
		v, err := strconv.ParseUint(p, 16, 8)
		if err != nil {
			return m, fmt.Errorf("netaddr: malformed MAC %q: %v", s, err)
		}
		m[i] = byte(v)
	}
	return m, nil
}

// IPv4 is a 32-bit IP address stored in network byte order.
type IPv4 [4]byte

// IPv4Zero is the unspecified address 0.0.0.0.
var IPv4Zero IPv4 //simlint:shared effectively const; the zero [4]byte value nothing writes

// MakeIPv4 assembles an address from its four dotted-quad octets.
func MakeIPv4(a, b, c, d byte) IPv4 { return IPv4{a, b, c, d} }

// IPv4FromUint32 converts a host-order uint32 into an address.
func IPv4FromUint32(v uint32) IPv4 {
	return IPv4{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}
}

// Uint32 returns the address as a host-order uint32.
func (ip IPv4) Uint32() uint32 {
	return uint32(ip[0])<<24 | uint32(ip[1])<<16 | uint32(ip[2])<<8 | uint32(ip[3])
}

// String renders the dotted-quad form.
func (ip IPv4) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", ip[0], ip[1], ip[2], ip[3])
}

// IsZero reports whether ip is the unspecified address.
func (ip IPv4) IsZero() bool { return ip == IPv4Zero }

// ParseIPv4 parses a dotted-quad string.
func ParseIPv4(s string) (IPv4, error) {
	var ip IPv4
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return ip, fmt.Errorf("netaddr: malformed IPv4 %q", s)
	}
	for i, p := range parts {
		if p == "" || (len(p) > 1 && p[0] == '0') {
			return ip, fmt.Errorf("netaddr: malformed IPv4 %q", s)
		}
		v, err := strconv.ParseUint(p, 10, 8)
		if err != nil {
			return ip, fmt.Errorf("netaddr: malformed IPv4 %q: %v", s, err)
		}
		ip[i] = byte(v)
	}
	return ip, nil
}

// Prefix is an IPv4 CIDR prefix.
type Prefix struct {
	IP   IPv4 // network address (low bits zero)
	Bits int  // prefix length, 0..32
}

// MakePrefix builds a prefix, masking ip down to its network address.
func MakePrefix(ip IPv4, bits int) Prefix {
	return Prefix{IP: IPv4FromUint32(ip.Uint32() & maskFor(bits)), Bits: bits}
}

func maskFor(bits int) uint32 {
	if bits <= 0 {
		return 0
	}
	if bits >= 32 {
		return ^uint32(0)
	}
	return ^uint32(0) << (32 - bits)
}

// Contains reports whether ip falls inside the prefix.
func (p Prefix) Contains(ip IPv4) bool {
	return ip.Uint32()&maskFor(p.Bits) == p.IP.Uint32()
}

// String renders the a.b.c.d/len form.
func (p Prefix) String() string { return fmt.Sprintf("%s/%d", p.IP, p.Bits) }

// Overlaps reports whether the two prefixes share any address.
func (p Prefix) Overlaps(q Prefix) bool {
	return p.Contains(q.IP) || q.Contains(p.IP)
}

// ParsePrefix parses the a.b.c.d/len form.
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("netaddr: malformed prefix %q", s)
	}
	ip, err := ParseIPv4(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	bits, err := strconv.Atoi(s[slash+1:])
	if err != nil || bits < 0 || bits > 32 {
		return Prefix{}, fmt.Errorf("netaddr: malformed prefix length in %q", s)
	}
	if ip.Uint32()&^maskFor(bits) != 0 {
		return Prefix{}, errors.New("netaddr: prefix has host bits set: " + s)
	}
	return Prefix{IP: ip, Bits: bits}, nil
}

// Host returns the n-th host address inside the prefix (n=1 is the first
// usable address). It panics if n does not fit in the host part; topology
// construction is static, so a bad call is a programming error.
func (p Prefix) Host(n uint32) IPv4 {
	host := ^maskFor(p.Bits)
	if n > host {
		panic(fmt.Sprintf("netaddr: host %d out of range for %s", n, p))
	}
	return IPv4FromUint32(p.IP.Uint32() | n)
}
