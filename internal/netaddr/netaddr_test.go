package netaddr

import (
	"testing"
	"testing/quick"
)

func TestMACString(t *testing.T) {
	m := MAC{0x6a, 0x4a, 0xd1, 0x8d, 0xcd, 0x8b}
	if got, want := m.String(), "6a:4a:d1:8d:cd:8b"; got != want {
		t.Errorf("MAC.String() = %q, want %q", got, want)
	}
}

func TestParseMACRoundTrip(t *testing.T) {
	f := func(m MAC) bool {
		got, err := ParseMAC(m.String())
		return err == nil && got == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseMACErrors(t *testing.T) {
	for _, s := range []string{"", "aa:bb:cc:dd:ee", "aa:bb:cc:dd:ee:ff:00", "zz:bb:cc:dd:ee:ff", "aabbccddeeff"} {
		if _, err := ParseMAC(s); err == nil {
			t.Errorf("ParseMAC(%q) succeeded, want error", s)
		}
	}
}

func TestBroadcast(t *testing.T) {
	if !Broadcast.IsBroadcast() {
		t.Error("Broadcast.IsBroadcast() = false")
	}
	if (MAC{}).IsBroadcast() {
		t.Error("zero MAC reported as broadcast")
	}
}

func TestIPv4RoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		ip := IPv4FromUint32(v)
		if ip.Uint32() != v {
			return false
		}
		got, err := ParseIPv4(ip.String())
		return err == nil && got == ip
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseIPv4Errors(t *testing.T) {
	for _, s := range []string{"", "1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", "01.2.3.4", "1..2.3"} {
		if _, err := ParseIPv4(s); err == nil {
			t.Errorf("ParseIPv4(%q) succeeded, want error", s)
		}
	}
}

func TestPrefixContains(t *testing.T) {
	p := MakePrefix(MakeIPv4(192, 168, 11, 0), 24)
	cases := []struct {
		ip   IPv4
		want bool
	}{
		{MakeIPv4(192, 168, 11, 1), true},
		{MakeIPv4(192, 168, 11, 255), true},
		{MakeIPv4(192, 168, 12, 1), false},
		{MakeIPv4(10, 0, 0, 1), false},
	}
	for _, c := range cases {
		if got := p.Contains(c.ip); got != c.want {
			t.Errorf("%s.Contains(%s) = %v, want %v", p, c.ip, got, c.want)
		}
	}
}

func TestMakePrefixMasks(t *testing.T) {
	p := MakePrefix(MakeIPv4(192, 168, 11, 37), 24)
	if p.IP != MakeIPv4(192, 168, 11, 0) {
		t.Errorf("MakePrefix did not mask host bits: %s", p)
	}
}

func TestPrefixString(t *testing.T) {
	p := MakePrefix(MakeIPv4(172, 16, 0, 0), 31)
	if got, want := p.String(), "172.16.0.0/31"; got != want {
		t.Errorf("Prefix.String() = %q, want %q", got, want)
	}
}

func TestParsePrefix(t *testing.T) {
	p, err := ParsePrefix("192.168.11.0/24")
	if err != nil {
		t.Fatalf("ParsePrefix: %v", err)
	}
	if p != MakePrefix(MakeIPv4(192, 168, 11, 0), 24) {
		t.Errorf("ParsePrefix = %v", p)
	}
	for _, s := range []string{"192.168.11.0", "192.168.11.0/33", "192.168.11.0/-1", "192.168.11.1/24", "x/24"} {
		if _, err := ParsePrefix(s); err == nil {
			t.Errorf("ParsePrefix(%q) succeeded, want error", s)
		}
	}
}

func TestPrefixHost(t *testing.T) {
	p := MakePrefix(MakeIPv4(192, 168, 14, 0), 24)
	if got, want := p.Host(1), MakeIPv4(192, 168, 14, 1); got != want {
		t.Errorf("Host(1) = %s, want %s", got, want)
	}
	defer func() {
		if recover() == nil {
			t.Error("Host(256) on /24 did not panic")
		}
	}()
	p.Host(256)
}

func TestPrefixContainsMasksQuery(t *testing.T) {
	// Contains must compare the query under the prefix mask, not literally.
	f := func(v uint32, bits uint8) bool {
		b := int(bits % 33)
		p := MakePrefix(IPv4FromUint32(v), b)
		return p.Contains(IPv4FromUint32(v))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPrefixOverlaps(t *testing.T) {
	a := MakePrefix(MakeIPv4(10, 0, 0, 0), 8)
	b := MakePrefix(MakeIPv4(10, 1, 0, 0), 16)
	c := MakePrefix(MakeIPv4(192, 168, 0, 0), 16)
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("nested prefixes should overlap")
	}
	if a.Overlaps(c) {
		t.Error("disjoint prefixes should not overlap")
	}
}
