package ipv4

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/netaddr"
)

func TestRoundTrip(t *testing.T) {
	f := func(tos byte, id uint16, ttl, proto byte, src, dst netaddr.IPv4, payload []byte) bool {
		if ttl == 0 {
			ttl = DefaultTTL
		}
		in := Packet{Header: Header{TOS: tos, ID: id, TTL: ttl, Protocol: proto, Src: src, Dst: dst}, Payload: payload}
		out, err := Unmarshal(in.Marshal())
		if err != nil {
			return false
		}
		h := out.Header
		return h.TOS == tos && h.ID == id && h.TTL == ttl && h.Protocol == proto &&
			h.Src == src && h.Dst == dst && bytes.Equal(out.Payload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChecksumValidates(t *testing.T) {
	p := Packet{Header: Header{Protocol: ProtoUDP, Src: netaddr.MakeIPv4(10, 0, 0, 1), Dst: netaddr.MakeIPv4(10, 0, 0, 2)}}
	b := p.Marshal()
	if Checksum(b[:HeaderLen]) != 0 {
		t.Error("checksum over marshalled header is not zero")
	}
	b[16] ^= 0xff // corrupt destination
	if _, err := Unmarshal(b); err != ErrBadChecksum {
		t.Errorf("corrupted packet err = %v, want ErrBadChecksum", err)
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// Classic example from RFC 1071 materials.
	b := []byte{0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11,
		0x00, 0x00, 0xc0, 0xa8, 0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7}
	if got := Checksum(b); got != 0xb861 {
		t.Errorf("Checksum = %#04x, want 0xb861", got)
	}
}

func TestChecksumOddLength(t *testing.T) {
	// Odd-length buffers are padded with a zero byte.
	if Checksum([]byte{0x01}) != Checksum([]byte{0x01, 0x00}) {
		t.Error("odd-length checksum disagrees with zero-padded even length")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal(make([]byte, 10)); err != ErrTruncated {
		t.Errorf("short buffer err = %v, want ErrTruncated", err)
	}
	b := (&Packet{Header: Header{TTL: 64}}).Marshal()
	b[0] = 0x65 // version 6
	if _, err := Unmarshal(b); err != ErrBadVersion {
		t.Errorf("bad version err = %v, want ErrBadVersion", err)
	}
	b = (&Packet{Header: Header{TTL: 64}, Payload: []byte("abcdef")}).Marshal()
	if _, err := Unmarshal(b[:len(b)-3]); err != ErrTruncated {
		t.Errorf("truncated payload err = %v, want ErrTruncated", err)
	}
}

func TestForwardDecrementsTTLAndKeepsChecksumValid(t *testing.T) {
	f := func(ttl byte, id uint16, src, dst netaddr.IPv4) bool {
		if ttl < 2 {
			ttl = 2
		}
		p := Packet{Header: Header{TTL: ttl, ID: id, Protocol: ProtoTCP, Src: src, Dst: dst}}
		b := p.Marshal()
		if err := Forward(b); err != nil {
			return false
		}
		out, err := Unmarshal(b) // re-validates the checksum
		return err == nil && out.Header.TTL == ttl-1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestForwardManyHops(t *testing.T) {
	p := Packet{Header: Header{TTL: 64, Src: netaddr.MakeIPv4(192, 168, 11, 1), Dst: netaddr.MakeIPv4(192, 168, 14, 1)}}
	b := p.Marshal()
	for hop := 0; hop < 63; hop++ {
		if err := Forward(b); err != nil {
			t.Fatalf("hop %d: %v", hop, err)
		}
		if _, err := Unmarshal(b); err != nil {
			t.Fatalf("hop %d: checksum broke: %v", hop, err)
		}
	}
	if err := Forward(b); err != ErrTTLExceeded {
		t.Errorf("TTL=1 Forward err = %v, want ErrTTLExceeded", err)
	}
}

func TestForwardTruncated(t *testing.T) {
	if err := Forward(make([]byte, 5)); err != ErrTruncated {
		t.Errorf("err = %v, want ErrTruncated", err)
	}
}

func TestHeaderString(t *testing.T) {
	h := Header{Src: netaddr.MakeIPv4(10, 0, 0, 1), Dst: netaddr.MakeIPv4(10, 0, 0, 2), Protocol: 6, TTL: 64}
	if got, want := h.String(), "10.0.0.1 > 10.0.0.2 proto=6 ttl=64"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestMarshalDefaultTTL(t *testing.T) {
	p := Packet{Header: Header{Protocol: ProtoUDP}}
	out, err := Unmarshal(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if out.Header.TTL != DefaultTTL {
		t.Errorf("TTL = %d, want default %d", out.Header.TTL, DefaultTTL)
	}
}
