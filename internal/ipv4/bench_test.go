package ipv4

import (
	"testing"

	"repro/internal/netaddr"
)

func BenchmarkMarshal(b *testing.B) {
	p := Packet{
		Header: Header{TTL: 64, Protocol: ProtoUDP,
			Src: netaddr.MakeIPv4(192, 168, 11, 1), Dst: netaddr.MakeIPv4(192, 168, 14, 1)},
		Payload: make([]byte, 64),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = p.Marshal()
	}
}

func BenchmarkUnmarshal(b *testing.B) {
	p := Packet{Header: Header{TTL: 64, Protocol: ProtoUDP}, Payload: make([]byte, 64)}
	wire := p.Marshal()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(wire); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkForward(b *testing.B) {
	// The incremental-checksum hot path every simulated router runs per
	// packet.
	p := Packet{Header: Header{TTL: 255, Protocol: ProtoUDP}, Payload: make([]byte, 64)}
	wire := p.Marshal()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if wire[8] <= 1 {
			wire[8] = 255 // reset TTL without re-marshalling
			ck := Checksum(wire[:HeaderLen])
			_ = ck
			wire = p.Marshal()
		}
		if err := Forward(wire); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChecksum(b *testing.B) {
	buf := make([]byte, 20)
	b.SetBytes(int64(len(buf)))
	for i := 0; i < b.N; i++ {
		_ = Checksum(buf)
	}
}
