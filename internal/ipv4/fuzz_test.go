package ipv4

import (
	"bytes"
	"testing"

	"repro/internal/netaddr"
)

func FuzzUnmarshal(f *testing.F) {
	p := Packet{Header: Header{TTL: 64, Protocol: ProtoUDP}, Payload: []byte("payload")}
	f.Add(p.Marshal())
	valid := Packet{
		Header: Header{
			ID: 7, TTL: 17, Protocol: ProtoICMP,
			Src: netaddr.MakeIPv4(10, 0, 0, 1),
			Dst: netaddr.MakeIPv4(10, 0, 1, 1),
		},
		Payload: []byte{0xde, 0xad},
	}
	f.Add(valid.Marshal())
	f.Add([]byte{})
	f.Add(make([]byte, HeaderLen-1))
	f.Fuzz(func(t *testing.T, data []byte) {
		pkt, err := Unmarshal(data)
		if err != nil {
			return
		}
		// A valid packet must survive Forward (TTL permitting) with its
		// checksum intact.
		buf := append([]byte(nil), data...)
		if err := Forward(buf); err == nil {
			if _, err := Unmarshal(buf); err != nil {
				t.Fatalf("Forward broke the checksum: %v", err)
			}
		}
		// Marshal emits the canonical option-less form, so compare parsed
		// fields after a re-parse instead of raw bytes (the input may have
		// carried IP options, and a zero TTL remarshals as DefaultTTL).
		q, err := Unmarshal(pkt.Marshal())
		if err != nil {
			t.Fatalf("re-parse of remarshalled packet failed: %v", err)
		}
		wantTTL := pkt.Header.TTL
		if wantTTL == 0 {
			wantTTL = DefaultTTL
		}
		if q.Header.TOS != pkt.Header.TOS || q.Header.ID != pkt.Header.ID ||
			q.Header.TTL != wantTTL || q.Header.Protocol != pkt.Header.Protocol ||
			q.Header.Src != pkt.Header.Src || q.Header.Dst != pkt.Header.Dst {
			t.Fatalf("round trip changed the header: %+v -> %+v", pkt.Header, q.Header)
		}
		if !bytes.Equal(q.Payload, pkt.Payload) {
			t.Fatal("round trip corrupted the payload")
		}
	})
}
