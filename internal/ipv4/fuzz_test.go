package ipv4

import "testing"

func FuzzUnmarshal(f *testing.F) {
	p := Packet{Header: Header{TTL: 64, Protocol: ProtoUDP}, Payload: []byte("payload")}
	f.Add(p.Marshal())
	f.Fuzz(func(t *testing.T, data []byte) {
		pkt, err := Unmarshal(data)
		if err != nil {
			return
		}
		// A valid packet must survive Forward (TTL permitting) with its
		// checksum intact.
		buf := append([]byte(nil), data...)
		if err := Forward(buf); err == nil {
			if _, err := Unmarshal(buf); err != nil {
				t.Fatalf("Forward broke the checksum: %v", err)
			}
		}
		_ = pkt
	})
}
