// Package ipv4 implements the IPv4 header used by the BGP/ECMP/BFD stack
// and by server traffic entering the fabric.
//
// MR-MTP itself never parses past the ToR: the fabric carries server IP
// packets opaquely inside MR-MTP encapsulation (paper §III.D), so only the
// ToRs and servers need this package in the MR-MTP configurations, while
// every BGP router forwards with it.
package ipv4

import (
	"errors"
	"fmt"

	"repro/internal/netaddr"
)

// HeaderLen is the size of an option-less IPv4 header.
const HeaderLen = 20

// IP protocol numbers used in the reproduction.
const (
	ProtoICMP byte = 1
	ProtoTCP  byte = 6
	ProtoUDP  byte = 17
)

// DefaultTTL matches the Linux default.
const DefaultTTL = 64

// Header is an option-less IPv4 header.
type Header struct {
	TOS      byte
	ID       uint16
	TTL      byte
	Protocol byte
	Src, Dst netaddr.IPv4
	// TotalLen is filled in by Marshal from the payload length and
	// verified by Unmarshal.
	TotalLen uint16
}

// Packet couples a header with its payload.
type Packet struct {
	Header  Header
	Payload []byte
}

var (
	// ErrTruncated reports a buffer shorter than the header claims.
	ErrTruncated = errors.New("ipv4: truncated packet")
	// ErrBadVersion reports a non-IPv4 version nibble.
	ErrBadVersion = errors.New("ipv4: bad version")
	// ErrBadChecksum reports a header checksum mismatch.
	ErrBadChecksum = errors.New("ipv4: bad header checksum")
	// ErrTTLExceeded is returned by Forward when the TTL hits zero.
	ErrTTLExceeded = errors.New("ipv4: TTL exceeded")
)

// Checksum computes the RFC 1071 internet checksum over b.
//
//simlint:hotpath
func Checksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(b[i])<<8 | uint32(b[i+1])
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// Marshal renders the packet to wire format, computing TotalLen and the
// header checksum.
//
//simlint:hotpath
func (p *Packet) Marshal() []byte {
	b := make([]byte, HeaderLen+len(p.Payload)) //simlint:alloc standalone packet buffer; the TX fast path composes via PutHeader instead
	p.Header.PutHeader(b, len(p.Payload))
	copy(b[HeaderLen:], p.Payload)
	return b
}

// PutHeader writes an option-less header for a payload of payloadLen bytes
// into b[:HeaderLen], computing TotalLen and the checksum. It lets callers
// compose the packet directly inside a larger frame buffer.
//
//simlint:hotpath
func (h *Header) PutHeader(b []byte, payloadLen int) {
	b[0] = 0x45 // version 4, IHL 5
	b[1] = h.TOS
	total := uint16(HeaderLen + payloadLen)
	b[2] = byte(total >> 8)
	b[3] = byte(total)
	b[4] = byte(h.ID >> 8)
	b[5] = byte(h.ID)
	// flags/fragment offset zero: the simulated fabric never fragments.
	b[6], b[7] = 0, 0
	ttl := h.TTL
	if ttl == 0 {
		ttl = DefaultTTL
	}
	b[8] = ttl
	b[9] = h.Protocol
	b[10], b[11] = 0, 0
	copy(b[12:16], h.Src[:])
	copy(b[16:20], h.Dst[:])
	ck := Checksum(b[:HeaderLen])
	b[10] = byte(ck >> 8)
	b[11] = byte(ck)
}

// Unmarshal parses and validates a wire-format packet. The payload aliases b.
//
//simlint:hotpath
func Unmarshal(b []byte) (Packet, error) {
	if len(b) < HeaderLen {
		return Packet{}, ErrTruncated
	}
	if b[0]>>4 != 4 {
		return Packet{}, ErrBadVersion
	}
	ihl := int(b[0]&0x0f) * 4
	if ihl < HeaderLen || len(b) < ihl {
		return Packet{}, ErrTruncated
	}
	if Checksum(b[:ihl]) != 0 {
		return Packet{}, ErrBadChecksum
	}
	var p Packet
	h := &p.Header
	h.TOS = b[1]
	h.TotalLen = uint16(b[2])<<8 | uint16(b[3])
	if int(h.TotalLen) > len(b) || int(h.TotalLen) < ihl {
		return Packet{}, ErrTruncated
	}
	h.ID = uint16(b[4])<<8 | uint16(b[5])
	h.TTL = b[8]
	h.Protocol = b[9]
	copy(h.Src[:], b[12:16])
	copy(h.Dst[:], b[16:20])
	p.Payload = b[ihl:h.TotalLen]
	return p, nil
}

// Forward decrements the TTL in a wire-format packet in place, fixing up the
// checksum incrementally (RFC 1141). It returns ErrTTLExceeded when the
// packet must be dropped.
//
//simlint:hotpath
func Forward(b []byte) error {
	if len(b) < HeaderLen {
		return ErrTruncated
	}
	if b[8] <= 1 {
		return ErrTTLExceeded
	}
	b[8]--
	// Incremental checksum update: TTL lives in the high byte of word 4.
	sum := uint32(b[10])<<8 | uint32(b[11])
	sum += 0x0100 // adding 1 to the one's-complement sum == subtracting 0x0100 from the field
	sum = (sum & 0xffff) + (sum >> 16)
	b[10] = byte(sum >> 8)
	b[11] = byte(sum)
	return nil
}

// String renders a short summary of the header.
func (h Header) String() string {
	return fmt.Sprintf("%s > %s proto=%d ttl=%d", h.Src, h.Dst, h.Protocol, h.TTL)
}
