// Package arp implements the Address Resolution Protocol used by the
// IP/BGP stack to resolve next-hop MAC addresses on point-to-point links.
//
// MR-MTP deliberately avoids ARP by addressing every frame to the Ethernet
// broadcast address (paper §VII.F); the protocol-stack comparison in Fig. 1
// counts ARP among the machinery MR-MTP removes, so the baseline must
// actually carry it.
package arp

import (
	"errors"

	"repro/internal/netaddr"
)

// Operation codes.
const (
	OpRequest uint16 = 1
	OpReply   uint16 = 2
)

// PacketLen is the size of an IPv4-over-Ethernet ARP packet.
const PacketLen = 28

// Packet is an IPv4-over-Ethernet ARP packet.
type Packet struct {
	Op        uint16
	SenderMAC netaddr.MAC
	SenderIP  netaddr.IPv4
	TargetMAC netaddr.MAC
	TargetIP  netaddr.IPv4
}

// ErrMalformed reports an undecodable ARP packet.
var ErrMalformed = errors.New("arp: malformed packet")

// Marshal renders the packet to wire format.
func (p *Packet) Marshal() []byte {
	b := make([]byte, PacketLen)
	b[0], b[1] = 0, 1 // hardware type: Ethernet
	b[2], b[3] = 0x08, 0x00
	b[4], b[5] = 6, 4 // hlen, plen
	b[6] = byte(p.Op >> 8)
	b[7] = byte(p.Op)
	copy(b[8:14], p.SenderMAC[:])
	copy(b[14:18], p.SenderIP[:])
	copy(b[18:24], p.TargetMAC[:])
	copy(b[24:28], p.TargetIP[:])
	return b
}

// Unmarshal parses a wire-format ARP packet.
func Unmarshal(b []byte) (Packet, error) {
	if len(b) < PacketLen {
		return Packet{}, ErrMalformed
	}
	if b[0] != 0 || b[1] != 1 || b[2] != 0x08 || b[3] != 0x00 || b[4] != 6 || b[5] != 4 {
		return Packet{}, ErrMalformed
	}
	var p Packet
	p.Op = uint16(b[6])<<8 | uint16(b[7])
	copy(p.SenderMAC[:], b[8:14])
	copy(p.SenderIP[:], b[14:18])
	copy(p.TargetMAC[:], b[18:24])
	copy(p.TargetIP[:], b[24:28])
	if p.Op != OpRequest && p.Op != OpReply {
		return Packet{}, ErrMalformed
	}
	return p, nil
}
