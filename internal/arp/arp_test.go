package arp

import (
	"testing"
	"testing/quick"

	"repro/internal/netaddr"
)

func TestRoundTrip(t *testing.T) {
	f := func(op bool, sm, tm netaddr.MAC, si, ti netaddr.IPv4) bool {
		p := Packet{Op: OpRequest, SenderMAC: sm, SenderIP: si, TargetMAC: tm, TargetIP: ti}
		if op {
			p.Op = OpReply
		}
		out, err := Unmarshal(p.Marshal())
		return err == nil && out == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPacketLen(t *testing.T) {
	p := Packet{Op: OpRequest}
	if got := len(p.Marshal()); got != PacketLen {
		t.Errorf("marshalled length = %d, want %d", got, PacketLen)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal(make([]byte, 10)); err != ErrMalformed {
		t.Errorf("short: err = %v, want ErrMalformed", err)
	}
	good := (&Packet{Op: OpRequest}).Marshal()
	bad := append([]byte(nil), good...)
	bad[1] = 9 // bogus hardware type
	if _, err := Unmarshal(bad); err != ErrMalformed {
		t.Errorf("bad htype: err = %v, want ErrMalformed", err)
	}
	bad = append([]byte(nil), good...)
	bad[7] = 7 // bogus op
	if _, err := Unmarshal(bad); err != ErrMalformed {
		t.Errorf("bad op: err = %v, want ErrMalformed", err)
	}
}
