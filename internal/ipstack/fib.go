// Package ipstack is the host/router IP stack of the BGP baseline: Ethernet
// demux, ARP resolution, IPv4 forwarding with an ECMP-capable FIB, and
// UDP/TCP delivery. It plays the role of the Linux kernel networking that
// the paper's FRR routers sat on, including the behaviour the experiments
// depend on: when a local interface dies, next hops through it become
// unusable immediately (the kernel's dead-nexthop handling), which is why
// BGP packet loss is small when the failure is adjacent to the traffic
// source (Fig. 7, TC1/TC3).
package ipstack

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/flowhash"
	"repro/internal/netaddr"
)

// Route protocol tags, mirroring `ip route` output (Listing 3).
const (
	ProtoKernel = "kernel"
	ProtoBGP    = "bgp"
	ProtoStatic = "static"
)

// NextHop is one way out of the router for a route.
type NextHop struct {
	Via   netaddr.IPv4 // gateway; zero for directly connected routes
	Iface *Iface
}

// Route is a FIB entry. Multiple next hops form an ECMP group.
type Route struct {
	Prefix   netaddr.Prefix
	NextHops []NextHop
	Proto    string
	Metric   int
}

// FIB is a longest-prefix-match forwarding table.
type FIB struct {
	routes []Route
	live   []NextHop // Lookup's scratch: reused so per-packet lookups do not allocate
}

// Replace installs a route, replacing any same-prefix route from the same
// protocol.
func (f *FIB) Replace(r Route) {
	for i := range f.routes {
		if f.routes[i].Prefix == r.Prefix && f.routes[i].Proto == r.Proto {
			f.routes[i] = r
			return
		}
	}
	f.routes = append(f.routes, r)
}

// Remove deletes the route for prefix installed by proto. It reports
// whether a route was removed.
func (f *FIB) Remove(prefix netaddr.Prefix, proto string) bool {
	for i := range f.routes {
		if f.routes[i].Prefix == prefix && f.routes[i].Proto == proto {
			f.routes = append(f.routes[:i], f.routes[i+1:]...)
			return true
		}
	}
	return false
}

// Get returns the route for an exact prefix+proto, or nil.
func (f *FIB) Get(prefix netaddr.Prefix, proto string) *Route {
	for i := range f.routes {
		if f.routes[i].Prefix == prefix && f.routes[i].Proto == proto {
			return &f.routes[i]
		}
	}
	return nil
}

// Len returns the number of routes: the "routing table size" metric of the
// paper's §VII.H comparison.
func (f *FIB) Len() int { return len(f.routes) }

// Lookup performs longest-prefix-match for dst, preferring more-specific
// prefixes, then lower metrics. Next hops whose interface is down are
// filtered out (kernel dead-nexthop behaviour); a route with no usable next
// hops is skipped entirely.
//
// The returned route's NextHops slice is scratch space owned by the FIB: it
// is valid until the next Lookup call. Per-packet callers (routeOut) consume
// it immediately; anyone who needs to keep it must copy.
//
//simlint:hotpath
func (f *FIB) Lookup(dst netaddr.IPv4) (Route, bool) {
	best := -1
	for i, r := range f.routes {
		if !r.Prefix.Contains(dst) {
			continue
		}
		if !r.usable() {
			continue
		}
		if best < 0 ||
			r.Prefix.Bits > f.routes[best].Prefix.Bits ||
			(r.Prefix.Bits == f.routes[best].Prefix.Bits && r.Metric < f.routes[best].Metric) {
			best = i
		}
	}
	if best < 0 {
		return Route{}, false
	}
	r := f.routes[best]
	live := f.live[:0]
	for _, nh := range r.NextHops {
		if nh.Iface.Usable() {
			live = append(live, nh)
		}
	}
	f.live = live
	r.NextHops = live
	return r, true
}

func (r Route) usable() bool {
	for _, nh := range r.NextHops {
		if nh.Iface.Usable() {
			return true
		}
	}
	return false
}

// FlowKey is the 5-tuple ECMP hashes on. It is shared with MR-MTP's uplink
// load balancing (paper §III.C mentions "a hash algorithm to load balance
// traffic from a downstream router to upstream routers") via flowhash.
type FlowKey = flowhash.Key

// Pick selects a next hop for the flow from an ECMP group.
func (r Route) Pick(k FlowKey) NextHop {
	return r.NextHops[int(k.Hash())%len(r.NextHops)]
}

// Render prints the FIB in `ip route` style, matching the paper's
// Listing 3 (kernel routing table at a tier-2 spine).
func (f *FIB) Render() string {
	routes := append([]Route(nil), f.routes...)
	sort.Slice(routes, func(i, j int) bool {
		if routes[i].Prefix.IP != routes[j].Prefix.IP {
			return routes[i].Prefix.IP.Uint32() < routes[j].Prefix.IP.Uint32()
		}
		return routes[i].Prefix.Bits < routes[j].Prefix.Bits
	})
	var b strings.Builder
	for _, r := range routes {
		switch {
		case r.Proto == ProtoKernel:
			fmt.Fprintf(&b, "%s dev eth%d proto kernel scope link src %s\n",
				r.Prefix, r.NextHops[0].Iface.Port.Index, r.NextHops[0].Iface.IP)
		case len(r.NextHops) == 1:
			fmt.Fprintf(&b, "%s via %s dev eth%d proto %s metric %d\n",
				r.Prefix, r.NextHops[0].Via, r.NextHops[0].Iface.Port.Index, r.Proto, r.Metric)
		default:
			fmt.Fprintf(&b, "%s proto %s metric %d\n", r.Prefix, r.Proto, r.Metric)
			for _, nh := range r.NextHops {
				fmt.Fprintf(&b, "\tnexthop via %s dev eth%d weight 1\n", nh.Via, nh.Iface.Port.Index)
			}
		}
	}
	return b.String()
}
