package ipstack

import (
	"testing"
	"time"

	"repro/internal/ethernet"
	"repro/internal/ipv4"
	"repro/internal/netaddr"
	"repro/internal/udp"
)

// rxFrame builds a wire-format Ethernet+IPv4+UDP frame addressed to dstMAC.
func rxFrame(t *testing.T, dstMAC netaddr.MAC, src, dst netaddr.IPv4, payload []byte) []byte {
	t.Helper()
	dg := udp.Datagram{SrcPort: 5555, DstPort: 7777, Payload: payload}
	ip := ipv4.Packet{
		Header:  ipv4.Header{TTL: ipv4.DefaultTTL, Protocol: ipv4.ProtoUDP, Src: src, Dst: dst},
		Payload: dg.Marshal(src, dst),
	}
	f := ethernet.Frame{Dst: dstMAC, Src: netaddr.MAC{0xaa, 0, 0, 0, 0, 1}, EtherType: ethernet.TypeIPv4, Payload: ip.Marshal()}
	return f.Marshal()
}

// TestHandleFrameRxAllocs pins the local-delivery RX budget: Ethernet, IPv4
// and UDP parsing all alias the received frame, so handing a datagram to a
// listener allocates nothing. A defensive copy anywhere in the demux chain
// shows up here as a fraction of an allocation per op.
func TestHandleFrameRxAllocs(t *testing.T) {
	l := newLAN(t)
	var delivered int
	l.h2.ListenUDP(7777, func(src, dst netaddr.IPv4, dg udp.Datagram) { delivered++ })
	frame := rxFrame(t, l.h2.Node.Port(1).MAC, l.sub2.Host(9), l.sub2.Host(1), []byte("ka"))
	port := l.h2.Node.Port(1)
	avg := testing.AllocsPerRun(200, func() {
		l.h2.HandleFrame(port, frame)
	})
	if delivered == 0 {
		t.Fatal("test frame never reached the UDP listener")
	}
	if avg > 0 {
		t.Errorf("RX local delivery allocates %.1f/op, want 0 (parsers alias the frame)", avg)
	}
}

// TestHandleFrameForwardAllocs pins the router forwarding RX budget: one
// allocation for the fresh outbound frame buffer (the received frame belongs
// to its own delivery), plus transmit-side event bookkeeping that amortizes
// to zero once the simulator freelists warm up.
func TestHandleFrameForwardAllocs(t *testing.T) {
	l := newLAN(t)
	// Sink the probe datagrams so h2 consumes them instead of answering
	// port-unreachable inside the timed loop.
	l.h2.ListenUDP(7777, func(src, dst netaddr.IPv4, dg udp.Datagram) {})
	// Prime ARP on the router's h2-side interface so transmit takes the
	// fast path, then drain the warm-up traffic.
	l.h1.SendUDP(l.sub1.Host(1), l.sub2.Host(1), 9, 7, []byte("prime"))
	l.sim.RunFor(10 * time.Millisecond)
	frame := rxFrame(t, l.r.Node.Port(1).MAC, l.sub1.Host(1), l.sub2.Host(1), []byte("fw"))
	port := l.r.Node.Port(1)
	forwarded := l.r.Stats.IPForwarded
	avg := testing.AllocsPerRun(200, func() {
		l.r.HandleFrame(port, frame)
		// Drain the delivery events so the sim's event freelist recycles
		// instead of growing with the queue.
		for l.sim.Step() {
		}
	})
	if l.r.Stats.IPForwarded == forwarded {
		t.Fatal("test frame was never forwarded")
	}
	if avg > 2 {
		t.Errorf("RX forward allocates %.1f/op, want <= 2 (frame copy + delivery slack)", avg)
	}
}
