package ipstack

import (
	"testing"
	"time"

	"repro/internal/icmp"
	"repro/internal/ipv4"
	"repro/internal/netaddr"
	"repro/internal/udp"
)

// probeWire builds the wire-format IP+UDP probe a path tracer emits: the
// caller controls the IP ID (probe slot) and TTL.
func probeWire(src, dst netaddr.IPv4, id uint16, ttl byte, srcPort, dstPort uint16) []byte {
	b := make([]byte, ipv4.HeaderLen+udp.HeaderLen)
	h := ipv4.Header{ID: id, TTL: ttl, Protocol: ipv4.ProtoUDP, Src: src, Dst: dst}
	h.PutHeader(b, udp.HeaderLen)
	dg := udp.Datagram{SrcPort: srcPort, DstPort: dstPort}
	dg.PutHeader(src, dst, b[ipv4.HeaderLen:])
	return b
}

// TestSendIPRawPreservesID pins the property the tracer depends on: a raw
// probe crosses the router with its caller-chosen IP ID intact, and the
// closed destination port answers port-unreachable quoting that ID.
func TestSendIPRawPreservesID(t *testing.T) {
	l := newLAN(t)
	var got []icmp.Message
	l.h1.ListenICMP(func(src netaddr.IPv4, m icmp.Message) { got = append(got, m) })
	wire := probeWire(l.sub1.Host(1), l.sub2.Host(1), 0xbeef, ipv4.DefaultTTL, 33501, 33434)
	l.h1.SendIPRaw(wire)
	l.sim.RunFor(10 * time.Millisecond)
	if len(got) != 1 {
		t.Fatalf("h1 got %d ICMP messages, want 1 port-unreachable", len(got))
	}
	m := got[0]
	if m.Type != icmp.TypeDestUnreach || m.Code != icmp.CodePortUnreach {
		t.Fatalf("reply = type %d code %d, want dest-unreach/port", m.Type, m.Code)
	}
	ipID, srcPort, dstPort, ok := icmp.QuotedUDPProbe(m)
	if !ok || ipID != 0xbeef || srcPort != 33501 || dstPort != 33434 {
		t.Errorf("quoted probe = %#x,%d,%d,%v", ipID, srcPort, dstPort, ok)
	}
}

// TestSendIPRawTTLExpiry: a TTL-1 raw probe dies at the router, which
// answers time-exceeded from its receiving interface, quoting the probe.
func TestSendIPRawTTLExpiry(t *testing.T) {
	l := newLAN(t)
	var gotSrc netaddr.IPv4
	var got []icmp.Message
	l.h1.ListenICMP(func(src netaddr.IPv4, m icmp.Message) { gotSrc, got = src, append(got, m) })
	wire := probeWire(l.sub1.Host(1), l.sub2.Host(1), 7, 1, 33502, 33434)
	l.h1.SendIPRaw(wire)
	l.sim.RunFor(10 * time.Millisecond)
	if len(got) != 1 || got[0].Type != icmp.TypeTimeExceeded {
		t.Fatalf("h1 got %v, want one time-exceeded", got)
	}
	if gotSrc != l.sub1.Host(254) {
		t.Errorf("time-exceeded from %s, want router iface %s", gotSrc, l.sub1.Host(254))
	}
	if ipID, _, _, ok := icmp.QuotedUDPProbe(got[0]); !ok || ipID != 7 {
		t.Errorf("quoted ID = %d,%v, want 7", ipID, ok)
	}
}

// TestUnhandledUDPSilentForHandledPort: datagrams that do find a listener
// must not trigger port-unreachable.
func TestUnhandledUDPPortUnreachable(t *testing.T) {
	l := newLAN(t)
	var errs, data int
	l.h1.ListenICMP(func(src netaddr.IPv4, m icmp.Message) { errs++ })
	l.h2.ListenUDP(7777, func(src, dst netaddr.IPv4, dg udp.Datagram) { data++ })
	l.h1.SendUDP(l.sub1.Host(1), l.sub2.Host(1), 5555, 7777, []byte("ok"))
	l.sim.RunFor(10 * time.Millisecond)
	if data != 1 || errs != 0 {
		t.Fatalf("handled port: data=%d errs=%d, want 1,0", data, errs)
	}
	l.h1.SendUDP(l.sub1.Host(1), l.sub2.Host(1), 5555, 9999, []byte("nope"))
	l.sim.RunFor(10 * time.Millisecond)
	if errs != 1 {
		t.Fatalf("closed port: errs=%d, want 1 port-unreachable", errs)
	}
}

// TestNextHopFor mirrors routeOut's selection and copies the scratch entry.
func TestNextHopFor(t *testing.T) {
	l := newLAN(t)
	k := FlowKey{Src: l.sub1.Host(1), Dst: l.sub2.Host(1), Proto: ipv4.ProtoUDP, SrcPort: 1, DstPort: 2}
	nh, ok := l.h1.NextHopFor(l.sub2.Host(1), k)
	if !ok || nh.Via != l.sub1.Host(254) {
		t.Fatalf("NextHopFor = %+v,%v, want via %s", nh, ok, l.sub1.Host(254))
	}
	// The router reaches h2's subnet via a connected route (no gateway).
	rnh, ok := l.r.NextHopFor(l.sub2.Host(1), k)
	if !ok || !rnh.Via.IsZero() || rnh.Iface == nil {
		t.Fatalf("router NextHopFor = %+v,%v, want connected iface", rnh, ok)
	}
	if _, ok := l.h1.NextHopFor(netaddr.IPv4{}, k); ok {
		// The default route covers everything, so use a stack with no FIB.
		t.Log("default route matched the zero address (expected)")
	}
}
