package ipstack

import (
	"fmt"
	"sort"

	"repro/internal/arp"
	"repro/internal/ethernet"
	"repro/internal/icmp"
	"repro/internal/ipv4"
	"repro/internal/netaddr"
	"repro/internal/simnet"
	"repro/internal/simnet/framepool"
	"repro/internal/tcp"
	"repro/internal/udp"
)

// Iface is one configured IP interface.
type Iface struct {
	Port   *simnet.Port
	IP     netaddr.IPv4
	Subnet netaddr.Prefix
}

// Usable reports whether the interface can carry traffic.
func (i *Iface) Usable() bool { return i.Port.Up() }

// Stats counts stack-level events for the experiments.
type Stats struct {
	IPDelivered  uint64
	IPForwarded  uint64
	NoRoute      uint64
	TTLExpired   uint64
	ARPRequests  uint64
	ARPReplies   uint64
	BlackholedTx uint64 // packets that died because the chosen port was down
}

// UDPHandler receives a delivered datagram.
type UDPHandler func(src, dst netaddr.IPv4, dg udp.Datagram)

// ICMPHandler receives a delivered (non-echo-request) ICMP message.
type ICMPHandler func(src netaddr.IPv4, m icmp.Message)

// Stack is the per-node IP stack. It implements simnet.Handler.
type Stack struct {
	Node *simnet.Node
	FIB  FIB
	TCP  *tcp.Endpoint

	ifaces map[int]*Iface // by port index
	// ifaceList holds the same interfaces in ascending port order. Sweeps
	// that emit frames (the ARP fan-out in transmit) iterate this slice so
	// wire order never depends on map iteration order.
	ifaceList []*Iface
	localIPs  map[netaddr.IPv4]*Iface

	arpTable   map[netaddr.IPv4]arpEntry
	arpPending map[netaddr.IPv4][][]byte // queued frames (see routeOut) awaiting resolution

	udpHandlers  map[uint16]UDPHandler
	icmpHandlers []ICMPHandler

	// OnPortDown/OnPortUp forward local carrier events to the routing
	// daemons (BGP reacts to them like FRR reacts to netlink link state).
	OnPortDown func(p *simnet.Port)
	OnPortUp   func(p *simnet.Port)

	// OnStart is invoked when the simulation starts (daemons begin
	// dialing peers here).
	OnStart func()

	Stats Stats
	ipID  uint16

	// frames is the owning simulation's frame-buffer pool: TX buffers come
	// from it, and received or dropped buffers that are provably dead go
	// back. Locally delivered packets are NOT recycled — their payload
	// slices alias into the UDP/TCP handlers, which may retain them.
	frames *framepool.Pool
}

// arpEntry records a resolved neighbor and the interface it answered on —
// necessary when several interfaces share a subnet (a multi-server rack).
type arpEntry struct {
	mac netaddr.MAC
	ifc *Iface
}

// New attaches a fresh stack to the node as its handler.
func New(node *simnet.Node) *Stack {
	s := &Stack{
		Node:        node,
		ifaces:      make(map[int]*Iface),
		localIPs:    make(map[netaddr.IPv4]*Iface),
		arpTable:    make(map[netaddr.IPv4]arpEntry),
		arpPending:  make(map[netaddr.IPv4][][]byte),
		udpHandlers: make(map[uint16]UDPHandler),
		frames:      node.Sim.Frames(),
	}
	s.TCP = tcp.NewEndpoint(node.Sim, node.Rand(), s.sendTCPSegment)
	node.Handler = s
	return s
}

// AddIface configures an IP address on a port.
func (s *Stack) AddIface(port *simnet.Port, ip netaddr.IPv4, subnet netaddr.Prefix) *Iface {
	ifc := &Iface{Port: port, IP: ip, Subnet: subnet}
	s.ifaces[port.Index] = ifc
	i := sort.Search(len(s.ifaceList), func(i int) bool {
		return s.ifaceList[i].Port.Index >= port.Index
	})
	s.ifaceList = append(s.ifaceList, nil)
	copy(s.ifaceList[i+1:], s.ifaceList[i:])
	s.ifaceList[i] = ifc
	s.localIPs[ip] = ifc
	// Connected route, like the kernel installs on address assignment.
	s.FIB.Replace(Route{Prefix: subnet, NextHops: []NextHop{{Iface: ifc}}, Proto: ProtoKernel})
	return ifc
}

// Iface returns the interface on a port index, or nil.
func (s *Stack) Iface(index int) *Iface { return s.ifaces[index] }

// Ifaces returns all interfaces in ascending port order. Callers must not
// mutate the returned slice.
func (s *Stack) Ifaces() []*Iface { return s.ifaceList }

// IsLocal reports whether ip is one of the stack's addresses.
func (s *Stack) IsLocal(ip netaddr.IPv4) bool { return s.localIPs[ip] != nil }

// AddDefaultRoute points 0.0.0.0/0 at a gateway (used by servers).
func (s *Stack) AddDefaultRoute(via netaddr.IPv4, ifc *Iface) {
	s.FIB.Replace(Route{
		Prefix:   netaddr.Prefix{},
		NextHops: []NextHop{{Via: via, Iface: ifc}},
		Proto:    ProtoStatic, Metric: 100,
	})
}

// ListenUDP registers a datagram handler on a local port.
func (s *Stack) ListenUDP(port uint16, h UDPHandler) { s.udpHandlers[port] = h }

// ListenICMP registers a handler for delivered ICMP messages (echo
// requests are answered by the stack itself and not dispatched).
func (s *Stack) ListenICMP(h ICMPHandler) { s.icmpHandlers = append(s.icmpHandlers, h) }

// SendICMP emits an ICMP message from a local address.
func (s *Stack) SendICMP(src, dst netaddr.IPv4, m icmp.Message) {
	s.sendIP(src, dst, ipv4.ProtoICMP, m.Marshal())
}

// SendUDP emits a datagram from a local address. The Ethernet, IPv4, and
// UDP layers are composed into a single buffer: per-packet cost is one
// allocation, which keeps the hot BFD/traffic-generator paths cheap.
//
//simlint:hotpath
func (s *Stack) SendUDP(src, dst netaddr.IPv4, srcPort, dstPort uint16, payload []byte) {
	h, frame := s.newIPFrame(src, dst, ipv4.ProtoUDP, ipv4.DefaultTTL, udp.HeaderLen+len(payload))
	dgm := frame[ethernet.HeaderLen+ipv4.HeaderLen:]
	copy(dgm[udp.HeaderLen:], payload)
	dg := udp.Datagram{SrcPort: srcPort, DstPort: dstPort}
	dg.PutHeader(src, dst, dgm)
	s.routeOut(h, frame)
}

// Start implements simnet.Handler.
func (s *Stack) Start() {
	if s.OnStart != nil {
		s.OnStart()
	}
}

// PortDown implements simnet.Handler: local carrier loss.
func (s *Stack) PortDown(p *simnet.Port) {
	if s.OnPortDown != nil {
		s.OnPortDown(p)
	}
}

// PortUp implements simnet.Handler.
func (s *Stack) PortUp(p *simnet.Port) {
	if s.OnPortUp != nil {
		s.OnPortUp(p)
	}
}

// HandleFrame implements simnet.Handler.
//
//simlint:hotpath
func (s *Stack) HandleFrame(p *simnet.Port, frame []byte) {
	f, err := ethernet.Unmarshal(frame)
	if err != nil {
		return
	}
	if f.Dst != p.MAC && !f.Dst.IsBroadcast() {
		return // not for us
	}
	switch f.EtherType {
	case ethernet.TypeARP:
		// ARP packets are fully decoded into value types; the frame is dead
		// once handleARP returns.
		s.handleARP(p, f)
		s.frames.Put(frame)
	case ethernet.TypeIPv4:
		if s.handleIPv4(p, f.Payload) {
			// Forwarded, errored or expired: every byte the stack needed has
			// been copied out, so the received buffer can be recycled.
			s.frames.Put(frame)
		}
	}
}

func (s *Stack) handleARP(p *simnet.Port, f ethernet.Frame) {
	pkt, err := arp.Unmarshal(f.Payload)
	if err != nil {
		return
	}
	ifc := s.ifaces[p.Index]
	if ifc == nil {
		return
	}
	// Learn the sender either way (gratuitous and request learning).
	s.arpTable[pkt.SenderIP] = arpEntry{mac: pkt.SenderMAC, ifc: ifc}
	s.flushARPPending(pkt.SenderIP)
	if pkt.Op != arp.OpRequest {
		return
	}
	answer := pkt.TargetIP == ifc.IP
	if !answer && !s.IsLocal(pkt.TargetIP) && pkt.TargetIP != pkt.SenderIP {
		// Proxy-ARP: answer for a target we route toward a *different*
		// interface, so hosts on separate ports of a shared subnet (a
		// multi-server rack behind an L3 ToR) can reach each other
		// through us.
		if r, ok := s.FIB.Lookup(pkt.TargetIP); ok && len(r.NextHops) > 0 && r.NextHops[0].Iface != ifc {
			answer = true
		}
	}
	if answer {
		s.Stats.ARPReplies++
		reply := arp.Packet{
			Op:        arp.OpReply,
			SenderMAC: p.MAC, SenderIP: pkt.TargetIP,
			TargetMAC: pkt.SenderMAC, TargetIP: pkt.SenderIP,
		}
		out := ethernet.Frame{Dst: pkt.SenderMAC, Src: p.MAC, EtherType: ethernet.TypeARP, Payload: reply.Marshal()}
		p.Send(out.Marshal())
	}
}

// handleIPv4 consumes a received IPv4 payload (aliasing into the delivered
// frame). It reports whether the frame is spent — no live alias remains, so
// the caller may recycle the buffer. Local delivery returns false: payload
// slices flow into the UDP/TCP handlers, which may retain them.
func (s *Stack) handleIPv4(p *simnet.Port, payload []byte) bool {
	pkt, err := ipv4.Unmarshal(payload)
	if err != nil {
		return true
	}
	if s.IsLocal(pkt.Header.Dst) {
		s.deliver(pkt, payload)
		return false
	}
	// Forward: copy into a fresh frame buffer (the received frame belongs
	// to its own delivery) and decrement the TTL in place.
	buf := s.frames.Get(ethernet.HeaderLen + len(payload))
	copy(buf[ethernet.HeaderLen:], payload)
	if err := ipv4.Forward(buf[ethernet.HeaderLen:]); err != nil {
		s.Stats.TTLExpired++
		// Tell the source, like a router does (traceroute depends on
		// this); the reply originates from the receiving interface. The
		// ICMP quote copies out of payload before we return.
		if ifc := s.ifaces[p.Index]; ifc != nil && !pkt.Header.Src.IsZero() {
			s.SendICMP(ifc.IP, pkt.Header.Src, icmp.TimeExceeded(payload))
		}
		s.frames.Put(buf)
		return true
	}
	s.Stats.IPForwarded++
	s.routeOut(pkt.Header, buf)
	return true
}

// deliver consumes a locally destined packet. wire holds the original
// wire-format bytes so error replies (port-unreachable) can quote them.
func (s *Stack) deliver(pkt ipv4.Packet, wire []byte) {
	s.Stats.IPDelivered++
	switch pkt.Header.Protocol {
	case ipv4.ProtoTCP:
		s.TCP.Input(pkt.Header.Src, pkt.Header.Dst, pkt.Payload)
	case ipv4.ProtoUDP:
		dg, err := udp.Unmarshal(pkt.Header.Src, pkt.Header.Dst, pkt.Payload)
		if err != nil {
			return
		}
		if h := s.udpHandlers[dg.DstPort]; h != nil {
			h(pkt.Header.Src, pkt.Header.Dst, dg)
		} else if !pkt.Header.Src.IsZero() {
			// Closed port: answer port-unreachable like a real host. A UDP
			// traceroute probe reads this as "destination reached".
			s.SendICMP(pkt.Header.Dst, pkt.Header.Src, icmp.PortUnreachable(wire))
		}
	case ipv4.ProtoICMP:
		m, err := icmp.Unmarshal(pkt.Payload)
		if err != nil {
			return
		}
		if m.Type == icmp.TypeEchoRequest {
			s.SendICMP(pkt.Header.Dst, pkt.Header.Src, icmp.EchoReplyTo(m))
			return
		}
		for _, h := range s.icmpHandlers {
			h(pkt.Header.Src, m)
		}
	}
}

// sendTCPSegment is the TCP endpoint's output path.
//
//simlint:hotpath
func (s *Stack) sendTCPSegment(src, dst netaddr.IPv4, segment []byte) {
	s.sendIP(src, dst, ipv4.ProtoTCP, segment)
}

// SendIP emits a locally originated IP packet.
func (s *Stack) SendIP(src, dst netaddr.IPv4, proto byte, payload []byte) {
	s.SendIPTTL(src, dst, proto, ipv4.DefaultTTL, payload)
}

// SendIPTTL emits a locally originated IP packet with an explicit TTL
// (traceroute probes).
//
//simlint:hotpath
func (s *Stack) SendIPTTL(src, dst netaddr.IPv4, proto, ttl byte, payload []byte) {
	h, frame := s.newIPFrame(src, dst, proto, ttl, len(payload))
	copy(frame[ethernet.HeaderLen+ipv4.HeaderLen:], payload)
	s.routeOut(h, frame)
}

func (s *Stack) sendIP(src, dst netaddr.IPv4, proto byte, payload []byte) {
	s.SendIPTTL(src, dst, proto, ipv4.DefaultTTL, payload)
}

// SendIPRaw emits a caller-built wire-format IPv4 packet through the normal
// FIB route-out path. Unlike SendIPTTL the caller controls every header
// field — the path tracer encodes its probe slot in the IP ID, which the
// stack's own ipID counter would clobber.
func (s *Stack) SendIPRaw(ipWire []byte) {
	pkt, err := ipv4.Unmarshal(ipWire)
	if err != nil {
		return
	}
	frame := s.frames.Get(ethernet.HeaderLen + len(ipWire))
	copy(frame[ethernet.HeaderLen:], ipWire)
	s.routeOut(pkt.Header, frame)
}

// NextHopFor returns the next hop routeOut would choose for a packet to dst
// carrying flow key k: the sole next hop when the route has one, the
// hash-picked member otherwise (Pick over a single entry is that entry, so
// the two forms agree). The returned value is a copy, safe to retain across
// FIB lookups.
func (s *Stack) NextHopFor(dst netaddr.IPv4, k FlowKey) (NextHop, bool) {
	r, ok := s.FIB.Lookup(dst)
	if !ok || len(r.NextHops) == 0 {
		return NextHop{}, false
	}
	if len(r.NextHops) == 1 {
		return r.NextHops[0], true
	}
	return r.Pick(k), true
}

// newIPFrame allocates the single buffer carrying a locally originated
// packet — Ethernet header room, IPv4 header, transportLen transport bytes —
// and fills in the IP header. transmit writes the Ethernet header in place
// once the next hop's MAC is known, so the whole TX path costs this one
// allocation.
func (s *Stack) newIPFrame(src, dst netaddr.IPv4, proto, ttl byte, transportLen int) (ipv4.Header, []byte) {
	s.ipID++
	h := ipv4.Header{ID: s.ipID, TTL: ttl, Protocol: proto, Src: src, Dst: dst}
	// Drawn from the frame pool: in steady state the TX path allocates
	// nothing at all (DESIGN.md §7, §14).
	frame := s.frames.Get(ethernet.HeaderLen + ipv4.HeaderLen + transportLen)
	h.PutHeader(frame[ethernet.HeaderLen:], transportLen)
	return h, frame
}

// routeOut forwards an outbound frame buffer: the wire-format IP packet
// described by h starts at frame[ethernet.HeaderLen:], and the Ethernet
// header room in front is filled by transmit.
func (s *Stack) routeOut(h ipv4.Header, frame []byte) {
	r, ok := s.FIB.Lookup(h.Dst)
	if !ok {
		s.Stats.NoRoute++
		s.frames.Put(frame) // the packet dies here; reclaim its buffer
		return
	}
	nh := r.NextHops[0]
	if len(r.NextHops) > 1 {
		nh = r.Pick(flowKeyOf(h, frame[ethernet.HeaderLen:]))
	}
	gw := nh.Via
	if gw.IsZero() {
		gw = h.Dst // directly connected: resolve the final destination
	}
	s.transmit(nh.Iface, gw, frame)
}

// flowKeyOf extracts the ECMP 5-tuple. Port numbers live at the same offset
// in TCP and UDP headers.
func flowKeyOf(h ipv4.Header, wire []byte) FlowKey {
	k := FlowKey{Src: h.Src, Dst: h.Dst, Proto: h.Protocol}
	tl := wire[ipv4.HeaderLen:]
	if (h.Protocol == ipv4.ProtoTCP || h.Protocol == ipv4.ProtoUDP) && len(tl) >= 4 {
		k.SrcPort = uint16(tl[0])<<8 | uint16(tl[1])
		k.DstPort = uint16(tl[2])<<8 | uint16(tl[3])
	}
	return k
}

func (s *Stack) transmit(ifc *Iface, nextHop netaddr.IPv4, frame []byte) {
	e, ok := s.arpTable[nextHop]
	if !ok {
		// Queue behind an ARP request on every interface whose subnet
		// covers the target (a rack subnet can span several ports).
		//simlint:frameown ARP miss returns before the Send below; ownership moves to arpPending until flushARPPending hands it off
		s.arpPending[nextHop] = append(s.arpPending[nextHop], frame) //simlint:alloc ARP-miss slow path; the queue drains at resolution
		asked := false
		for _, cand := range s.ifaceList {
			if cand.Subnet.Contains(nextHop) && cand.Usable() {
				s.sendARPRequest(cand, nextHop)
				asked = true
			}
		}
		if !asked && ifc.Usable() {
			s.sendARPRequest(ifc, nextHop)
		}
		return
	}
	out := e.ifc
	if out == nil || !out.Usable() {
		out = ifc
	}
	if !out.Usable() {
		s.Stats.BlackholedTx++
		s.frames.Put(frame)
		return
	}
	ethernet.PutHeader(frame, e.mac, out.Port.MAC, ethernet.TypeIPv4)
	out.Port.Send(frame)
}

func (s *Stack) sendARPRequest(ifc *Iface, target netaddr.IPv4) {
	s.Stats.ARPRequests++
	req := arp.Packet{Op: arp.OpRequest, SenderMAC: ifc.Port.MAC, SenderIP: ifc.IP, TargetIP: target}
	f := ethernet.Frame{Dst: netaddr.Broadcast, Src: ifc.Port.MAC, EtherType: ethernet.TypeARP, Payload: req.Marshal()}
	ifc.Port.Send(f.Marshal())
}

func (s *Stack) flushARPPending(ip netaddr.IPv4) {
	pending := s.arpPending[ip]
	if pending == nil {
		return
	}
	delete(s.arpPending, ip)
	e := s.arpTable[ip]
	if e.ifc == nil || !e.ifc.Usable() {
		return
	}
	for _, frame := range pending {
		ethernet.PutHeader(frame, e.mac, e.ifc.Port.MAC, ethernet.TypeIPv4)
		e.ifc.Port.Send(frame)
	}
}

// String identifies the stack in logs.
func (s *Stack) String() string { return fmt.Sprintf("ipstack(%s)", s.Node.Name) }
