package ipstack

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/ipv4"
	"repro/internal/netaddr"
	"repro/internal/simnet"
	"repro/internal/tcp"
	"repro/internal/udp"
)

// lan builds: h1 --- r --- h2 with /24 link subnets, static routes on the
// hosts and connected routes on the router.
type lan struct {
	sim        *simnet.Sim
	h1, r, h2  *Stack
	sub1, sub2 netaddr.Prefix
}

func newLAN(t *testing.T) *lan {
	t.Helper()
	l := &lan{sim: simnet.New(3)}
	n1, nr, n2 := l.sim.AddNode("h1"), l.sim.AddNode("r"), l.sim.AddNode("h2")
	l.h1, l.r, l.h2 = New(n1), New(nr), New(n2)
	l.sim.Connect(n1.AddPort(), nr.AddPort())
	l.sim.Connect(nr.AddPort(), n2.AddPort())
	l.sub1 = netaddr.MakePrefix(netaddr.MakeIPv4(10, 0, 1, 0), 24)
	l.sub2 = netaddr.MakePrefix(netaddr.MakeIPv4(10, 0, 2, 0), 24)
	if1 := l.h1.AddIface(n1.Port(1), l.sub1.Host(1), l.sub1)
	l.r.AddIface(nr.Port(1), l.sub1.Host(254), l.sub1)
	l.r.AddIface(nr.Port(2), l.sub2.Host(254), l.sub2)
	if2 := l.h2.AddIface(n2.Port(1), l.sub2.Host(1), l.sub2)
	l.h1.AddDefaultRoute(l.sub1.Host(254), if1)
	l.h2.AddDefaultRoute(l.sub2.Host(254), if2)
	return l
}

func TestUDPAcrossRouter(t *testing.T) {
	l := newLAN(t)
	var got []byte
	var gotSrc netaddr.IPv4
	l.h2.ListenUDP(7777, func(src, dst netaddr.IPv4, dg udp.Datagram) {
		got = append([]byte(nil), dg.Payload...)
		gotSrc = src
	})
	l.h1.SendUDP(l.sub1.Host(1), l.sub2.Host(1), 5555, 7777, []byte("ping"))
	l.sim.RunFor(10 * time.Millisecond)
	if string(got) != "ping" {
		t.Fatalf("h2 got %q, want ping", got)
	}
	if gotSrc != l.sub1.Host(1) {
		t.Errorf("src = %s, want %s", gotSrc, l.sub1.Host(1))
	}
	if l.r.Stats.IPForwarded == 0 {
		t.Error("router forwarded nothing")
	}
	if l.h1.Stats.ARPRequests == 0 || l.r.Stats.ARPReplies == 0 {
		t.Error("ARP resolution did not happen")
	}
}

func TestARPQueueDrainsWithoutLoss(t *testing.T) {
	// Multiple packets sent before resolution completes must all arrive.
	l := newLAN(t)
	var count int
	l.h2.ListenUDP(7, func(src, dst netaddr.IPv4, dg udp.Datagram) { count++ })
	for i := 0; i < 5; i++ {
		l.h1.SendUDP(l.sub1.Host(1), l.sub2.Host(1), 9, 7, []byte{byte(i)})
	}
	l.sim.RunFor(10 * time.Millisecond)
	if count != 5 {
		t.Errorf("delivered %d datagrams, want 5", count)
	}
}

func TestTCPOverStack(t *testing.T) {
	l := newLAN(t)
	var got []byte
	l.h2.TCP.Listen(179, func(c *tcp.Conn) {
		c.OnData(func(d []byte) { got = append(got, d...) })
	})
	conn := l.h1.TCP.Dial(l.sub1.Host(1), l.sub2.Host(1), 179)
	conn.Send([]byte("BGP OPEN"))
	l.sim.RunFor(50 * time.Millisecond)
	if conn.State() != tcp.StateEstablished {
		t.Fatalf("conn state = %v, want established (across a router with ARP)", conn.State())
	}
	if string(got) != "BGP OPEN" {
		t.Errorf("server got %q", got)
	}
}

func TestNoRouteCounted(t *testing.T) {
	l := newLAN(t)
	l.r.SendIP(l.sub1.Host(254), netaddr.MakeIPv4(99, 99, 99, 99), ipv4.ProtoUDP, []byte("x"))
	l.sim.RunFor(time.Millisecond)
	if l.r.Stats.NoRoute != 1 {
		t.Errorf("NoRoute = %d, want 1", l.r.Stats.NoRoute)
	}
}

func TestTTLExpiry(t *testing.T) {
	// Two routers pointing default routes at each other loop a packet
	// until TTL dies.
	sim := simnet.New(4)
	na, nb := sim.AddNode("a"), sim.AddNode("b")
	sa, sb := New(na), New(nb)
	sim.Connect(na.AddPort(), nb.AddPort())
	sub := netaddr.MakePrefix(netaddr.MakeIPv4(10, 9, 0, 0), 24)
	ia := sa.AddIface(na.Port(1), sub.Host(1), sub)
	ib := sb.AddIface(nb.Port(1), sub.Host(2), sub)
	sa.AddDefaultRoute(sub.Host(2), ia)
	sb.AddDefaultRoute(sub.Host(1), ib)
	sa.SendIP(sub.Host(1), netaddr.MakeIPv4(99, 0, 0, 1), ipv4.ProtoUDP, []byte("loop"))
	sim.RunFor(time.Second)
	if sa.Stats.TTLExpired+sb.Stats.TTLExpired != 1 {
		t.Errorf("TTL expiries = %d, want exactly 1", sa.Stats.TTLExpired+sb.Stats.TTLExpired)
	}
}

func TestDownIfaceBlackholes(t *testing.T) {
	l := newLAN(t)
	// Prime ARP.
	l.h1.SendUDP(l.sub1.Host(1), l.sub2.Host(1), 9, 7, []byte("prime"))
	l.sim.RunFor(10 * time.Millisecond)
	l.r.Node.Port(2).Fail()
	l.sim.RunFor(10 * time.Millisecond)
	before := l.r.Stats.BlackholedTx + l.r.Stats.NoRoute
	l.h1.SendUDP(l.sub1.Host(1), l.sub2.Host(1), 9, 7, []byte("lost"))
	l.sim.RunFor(10 * time.Millisecond)
	if l.r.Stats.BlackholedTx+l.r.Stats.NoRoute == before {
		t.Error("packet through dead interface not accounted")
	}
}

func TestPortDownCallback(t *testing.T) {
	l := newLAN(t)
	var downs []int
	l.r.OnPortDown = func(p *simnet.Port) { downs = append(downs, p.Index) }
	l.r.Node.Port(1).Fail()
	l.sim.RunFor(10 * time.Millisecond)
	if len(downs) != 1 || downs[0] != 1 {
		t.Errorf("downs = %v, want [1]", downs)
	}
}

func TestFIBReplaceRemove(t *testing.T) {
	var f FIB
	ifc := &Iface{Port: &simnet.Port{Index: 1}}
	p := netaddr.MakePrefix(netaddr.MakeIPv4(192, 168, 11, 0), 24)
	f.Replace(Route{Prefix: p, NextHops: []NextHop{{Iface: ifc}}, Proto: ProtoBGP, Metric: 20})
	f.Replace(Route{Prefix: p, NextHops: []NextHop{{Iface: ifc}, {Iface: ifc}}, Proto: ProtoBGP, Metric: 20})
	if f.Len() != 1 {
		t.Fatalf("Replace duplicated: len=%d", f.Len())
	}
	if got := f.Get(p, ProtoBGP); got == nil || len(got.NextHops) != 2 {
		t.Fatal("Get did not see replacement")
	}
	if !f.Remove(p, ProtoBGP) || f.Len() != 0 {
		t.Fatal("Remove failed")
	}
	if f.Remove(p, ProtoBGP) {
		t.Error("second Remove reported success")
	}
}

func TestFIBLongestPrefixMatch(t *testing.T) {
	var f FIB
	up := &Iface{Port: &simnet.Port{Index: 1}}
	ifc24 := &Iface{Port: &simnet.Port{Index: 2}}
	// Fabricate port state: zero-value ports report down, so flip with a
	// real node.
	sim := simnet.New(1)
	n := sim.AddNode("x")
	up.Port = n.AddPort()
	ifc24.Port = n.AddPort()
	f.Replace(Route{Prefix: netaddr.Prefix{}, NextHops: []NextHop{{Iface: up}}, Proto: ProtoStatic, Metric: 100})
	f.Replace(Route{Prefix: netaddr.MakePrefix(netaddr.MakeIPv4(192, 168, 11, 0), 24), NextHops: []NextHop{{Iface: ifc24}}, Proto: ProtoBGP, Metric: 20})
	r, ok := f.Lookup(netaddr.MakeIPv4(192, 168, 11, 5))
	if !ok || r.Prefix.Bits != 24 {
		t.Errorf("LPM chose %v, want the /24", r.Prefix)
	}
	r, ok = f.Lookup(netaddr.MakeIPv4(8, 8, 8, 8))
	if !ok || r.Prefix.Bits != 0 {
		t.Errorf("default lookup chose %v", r.Prefix)
	}
}

func TestFIBDeadNexthopFiltering(t *testing.T) {
	sim := simnet.New(1)
	n := sim.AddNode("x")
	i1 := &Iface{Port: n.AddPort()}
	i2 := &Iface{Port: n.AddPort()}
	var f FIB
	p := netaddr.MakePrefix(netaddr.MakeIPv4(192, 168, 14, 0), 24)
	f.Replace(Route{Prefix: p, NextHops: []NextHop{{Iface: i1}, {Iface: i2}}, Proto: ProtoBGP, Metric: 20})
	r, ok := f.Lookup(p.Host(1))
	if !ok || len(r.NextHops) != 2 {
		t.Fatalf("want 2 live next hops, got %v %v", r.NextHops, ok)
	}
	i1.Port.Fail()
	r, ok = f.Lookup(p.Host(1))
	if !ok || len(r.NextHops) != 1 || r.NextHops[0].Iface != i2 {
		t.Fatalf("dead next hop not filtered: %v", r.NextHops)
	}
	i2.Port.Fail()
	if _, ok := f.Lookup(p.Host(1)); ok {
		t.Error("route with all next hops dead still resolves")
	}
}

func TestECMPPickDeterministicAndBalanced(t *testing.T) {
	sim := simnet.New(1)
	n := sim.AddNode("x")
	i1 := &Iface{Port: n.AddPort()}
	i2 := &Iface{Port: n.AddPort()}
	r := Route{NextHops: []NextHop{{Iface: i1}, {Iface: i2}}}
	counts := map[int]int{}
	for port := 0; port < 1000; port++ {
		k := FlowKey{
			Src: netaddr.MakeIPv4(192, 168, 11, 1), Dst: netaddr.MakeIPv4(192, 168, 14, 1),
			Proto: ipv4.ProtoUDP, SrcPort: uint16(port), DstPort: 7,
		}
		nh := r.Pick(k)
		if again := r.Pick(k); again != nh {
			t.Fatal("Pick not deterministic for a flow")
		}
		counts[nh.Iface.Port.Index]++
	}
	if counts[1] < 300 || counts[2] < 300 {
		t.Errorf("ECMP badly imbalanced: %v", counts)
	}
}

func TestFlowKeyHashProperty(t *testing.T) {
	f := func(a, b FlowKey) bool {
		if a == b {
			return a.Hash() == b.Hash()
		}
		return true // different keys may collide; only equal keys must agree
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFIBRenderListing3Style(t *testing.T) {
	sim := simnet.New(1)
	n := sim.AddNode("x")
	eth1 := &Iface{Port: n.AddPort(), IP: netaddr.MakeIPv4(172, 16, 0, 2)}
	eth2 := &Iface{Port: n.AddPort(), IP: netaddr.MakeIPv4(172, 16, 8, 2)}
	var f FIB
	f.Replace(Route{
		Prefix:   netaddr.MakePrefix(netaddr.MakeIPv4(172, 16, 0, 0), 24),
		NextHops: []NextHop{{Iface: eth1}}, Proto: ProtoKernel,
	})
	f.Replace(Route{
		Prefix: netaddr.MakePrefix(netaddr.MakeIPv4(192, 168, 2, 0), 24),
		NextHops: []NextHop{
			{Via: netaddr.MakeIPv4(172, 16, 0, 1), Iface: eth1},
			{Via: netaddr.MakeIPv4(172, 16, 8, 1), Iface: eth2},
		},
		Proto: ProtoBGP, Metric: 20,
	})
	out := f.Render()
	for _, want := range []string{
		"172.16.0.0/24 dev eth1 proto kernel scope link src 172.16.0.2",
		"192.168.2.0/24 proto bgp metric 20",
		"nexthop via 172.16.0.1 dev eth1 weight 1",
		"nexthop via 172.16.8.1 dev eth2 weight 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
}
