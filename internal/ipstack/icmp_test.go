package ipstack

import (
	"testing"
	"time"

	"repro/internal/icmp"
	"repro/internal/netaddr"
	"repro/internal/simnet"
	"repro/internal/udp"
)

func TestEchoRequestAnswered(t *testing.T) {
	l := newLAN(t)
	var got []icmp.Message
	l.h1.ListenICMP(func(src netaddr.IPv4, m icmp.Message) { got = append(got, m) })
	l.h1.SendICMP(l.sub1.Host(1), l.sub2.Host(1), icmp.EchoRequest(42, 7, []byte("hi")))
	l.sim.RunFor(10 * time.Millisecond)
	if len(got) != 1 || got[0].Type != icmp.TypeEchoReply || got[0].ID != 42 || got[0].Seq != 7 {
		t.Fatalf("echo reply = %+v", got)
	}
	if string(got[0].Payload) != "hi" {
		t.Errorf("payload not echoed: %q", got[0].Payload)
	}
}

func TestTTLExpiryGeneratesTimeExceeded(t *testing.T) {
	l := newLAN(t)
	var got []icmp.Message
	var from netaddr.IPv4
	l.h1.ListenICMP(func(src netaddr.IPv4, m icmp.Message) {
		got = append(got, m)
		from = src
	})
	probe := icmp.EchoRequest(9, 1, nil)
	l.h1.SendIPTTL(l.sub1.Host(1), l.sub2.Host(1), 1, 1, probe.Marshal())
	l.sim.RunFor(10 * time.Millisecond)
	if len(got) != 1 || got[0].Type != icmp.TypeTimeExceeded {
		t.Fatalf("got %+v, want a time-exceeded", got)
	}
	// The router answers from the interface the probe arrived on.
	if from != l.sub1.Host(254) {
		t.Errorf("time-exceeded from %s, want the router's near interface", from)
	}
	if id, seq, ok := icmp.QuotedEcho(got[0]); !ok || id != 9 || seq != 1 {
		t.Errorf("quoted echo = %d,%d,%v", id, seq, ok)
	}
}

func TestProxyARPBridgesRackPorts(t *testing.T) {
	// Two hosts on separate router ports share one /24 (the multi-server
	// rack of a BGP leaf). h1 ARPs for h2 directly; the router must
	// proxy-answer and then forward h1's packets to h2's port.
	sim := simnet.New(21)
	n1, nr, n2 := sim.AddNode("h1"), sim.AddNode("r"), sim.AddNode("h2")
	h1, r, h2 := New(n1), New(nr), New(n2)
	sim.Connect(n1.AddPort(), nr.AddPort())
	sim.Connect(nr.AddPort(), n2.AddPort())
	rack := netaddr.MakePrefix(netaddr.MakeIPv4(192, 168, 11, 0), 24)
	h1.AddIface(n1.Port(1), rack.Host(1), rack)
	r.AddIface(nr.Port(1), rack.Host(254), rack)
	r.AddIface(nr.Port(2), rack.Host(254), rack)
	h2.AddIface(n2.Port(1), rack.Host(2), rack)
	var got int
	h2.ListenUDP(7, func(_, _ netaddr.IPv4, dg udp.Datagram) { got++ })
	for i := 0; i < 3; i++ {
		h1.SendUDP(rack.Host(1), rack.Host(2), 9000+uint16(i), 7, []byte("sibling"))
	}
	sim.RunFor(50 * time.Millisecond)
	if got != 3 {
		t.Fatalf("delivered %d/3 through the proxy-ARP path", got)
	}
	if r.Stats.ARPReplies == 0 {
		t.Error("router never proxy-answered")
	}
}

func TestNoProxyARPForOwnAddressOfRequester(t *testing.T) {
	// The router must never answer an ARP probe for the sender's own
	// address (that would break duplicate-address detection).
	l := newLAN(t)
	before := l.r.Stats.ARPReplies
	// h1 probes for its own IP (gratuitous-style probe).
	req := make([]byte, 28)
	req[1] = 1
	req[2] = 0x08
	req[4], req[5] = 6, 4
	req[7] = 1 // request
	copy(req[8:14], l.h1.Node.Port(1).MAC[:])
	ip := l.sub1.Host(1)
	copy(req[14:18], ip[:])
	copy(req[24:28], ip[:]) // target = own address
	f := frameARP(l.h1.Node.Port(1).MAC, req)
	l.h1.Node.Port(1).Send(f)
	l.sim.RunFor(10 * time.Millisecond)
	if l.r.Stats.ARPReplies != before {
		t.Error("router proxy-answered a duplicate-address probe")
	}
}

func frameARP(src netaddr.MAC, payload []byte) []byte {
	b := make([]byte, 14+len(payload))
	for i := 0; i < 6; i++ {
		b[i] = 0xff
	}
	copy(b[6:12], src[:])
	b[12], b[13] = 0x08, 0x06
	copy(b[14:], payload)
	return b
}
