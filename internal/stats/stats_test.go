package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 {
		t.Errorf("N=%d mean=%v, want 8 and 5", s.N, s.Mean)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("min=%v max=%v", s.Min, s.Max)
	}
	// Sample standard deviation of this classic set is ~2.138.
	if math.Abs(s.StdDev-2.138) > 0.01 {
		t.Errorf("stddev = %v, want ~2.138", s.StdDev)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s != (Summary{}) {
		t.Errorf("empty summary = %+v", s)
	}
	if Percentile(nil, 50) != 0 || Mean(nil) != 0 {
		t.Error("empty-sample helpers not zero")
	}
}

func TestPercentileEndpoints(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if Percentile(xs, 0) != 1 || Percentile(xs, 100) != 5 {
		t.Error("endpoint percentiles wrong")
	}
	if got := Percentile(xs, 50); got != 3 {
		t.Errorf("P50 = %v, want 3", got)
	}
	if got := Percentile(xs, 25); got != 2 {
		t.Errorf("P25 = %v, want 2", got)
	}
}

func TestQuantilesKnownSample(t *testing.T) {
	// 1..100: linear interpolation between closest ranks gives exact
	// closed-form values for every quantile the harness reports.
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	s := Summarize(xs)
	for _, tc := range []struct {
		name      string
		got, want float64
	}{
		{"P50", s.P50, 50.5},
		{"P95", s.P95, 95.05},
		{"P99", s.P99, 99.01},
		{"P999", s.P999, 99.901},
	} {
		if math.Abs(tc.got-tc.want) > 1e-9 {
			t.Errorf("%s = %v, want %v", tc.name, tc.got, tc.want)
		}
	}
	// A single-element sample pins every percentile to that element.
	one := Summarize([]float64{7})
	if one.P50 != 7 || one.P95 != 7 || one.P99 != 7 || one.P999 != 7 {
		t.Errorf("single-sample percentiles = %v/%v/%v/%v, want 7", one.P50, one.P95, one.P99, one.P999)
	}
}

// TestP99UnchangedByP999 pins the regression contract for adding P999:
// every previously-reported quantile must stay bit-identical to the direct
// Percentile computation it has always used — adding a field must not
// perturb existing figure values.
func TestP99UnchangedByP999(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		s := Summarize(xs)
		return s.P50 == Percentile(xs, 50) &&
			s.P95 == Percentile(xs, 95) &&
			s.P99 == Percentile(xs, 99) &&
			s.P999 == Percentile(xs, 99.9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// One pinned literal so a change to Percentile itself also trips.
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Summarize(xs).P99; got != Percentile(xs, 99) || math.Abs(got-8.86) > 1e-9 {
		t.Errorf("P99 = %v, want 8.86 exactly", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 3}
	Percentile(xs, 50)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Error("Percentile sorted the caller's slice")
	}
}

func TestSummaryProperties(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		s := Summarize(xs)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		return s.Min == sorted[0] &&
			s.Max == sorted[len(sorted)-1] &&
			s.Min <= s.Mean && s.Mean <= s.Max &&
			s.Min <= s.P50 && s.P50 <= s.P95 && s.P95 <= s.P99 && s.P99 <= s.P999 && s.P999 <= s.Max &&
			s.StdDev >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestString(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if got := s.String(); got == "" {
		t.Error("empty String()")
	}
}

// A single sample pins every percentile: with one closest rank there is
// nothing to interpolate toward, so P50 through P999 all answer the sample.
func TestSummarizeSingleSample(t *testing.T) {
	s := Summarize([]float64{42.5})
	if s.N != 1 {
		t.Fatalf("n=%d, want 1", s.N)
	}
	for name, got := range map[string]float64{
		"mean": s.Mean, "min": s.Min, "max": s.Max,
		"p50": s.P50, "p95": s.P95, "p99": s.P99, "p999": s.P999,
	} {
		if got != 42.5 {
			t.Errorf("%s = %v, want 42.5", name, got)
		}
	}
	if s.StdDev != 0 {
		t.Errorf("stddev = %v, want 0 for n=1", s.StdDev)
	}
}

// Tail percentiles on tiny samples (n < 10) must stay within the observed
// range and keep their ordering — the closest-rank interpolation has fewer
// points than the percentile resolution implies.
func TestSummarizeTinySamples(t *testing.T) {
	for n := 2; n < 10; n++ {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(i + 1)
		}
		s := Summarize(xs)
		if s.P99 < s.P95 || s.P999 < s.P99 || s.P999 > s.Max {
			t.Errorf("n=%d: percentile ordering broken: p95=%v p99=%v p999=%v max=%v",
				n, s.P95, s.P99, s.P999, s.Max)
		}
		// With n points the top percentiles interpolate inside the last
		// inter-sample gap: strictly above the second-largest sample.
		if s.P999 <= float64(n-1) {
			t.Errorf("n=%d: p999 = %v, want inside the top gap (%d, %d]", n, s.P999, n-1, n)
		}
	}
}

// Constant samples collapse the whole summary to the constant with zero
// spread, regardless of sample count.
func TestSummarizeConstantSamples(t *testing.T) {
	for _, n := range []int{3, 7, 100} {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = 6.25
		}
		s := Summarize(xs)
		for name, got := range map[string]float64{
			"mean": s.Mean, "min": s.Min, "max": s.Max,
			"p50": s.P50, "p95": s.P95, "p99": s.P99, "p999": s.P999,
		} {
			if got != 6.25 {
				t.Errorf("n=%d: %s = %v, want the constant 6.25", n, name, got)
			}
		}
		if s.StdDev != 0 {
			t.Errorf("n=%d: stddev = %v, want exactly 0", n, s.StdDev)
		}
	}
}
