package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestFixedHistogramCounts(t *testing.T) {
	h := NewFixedHistogram(0, 10, 10)
	h.ObserveAll([]float64{-1, 0, 0.5, 5, 9.999, 10, 42})
	if h.Under != 1 || h.Over != 2 || h.N != 7 {
		t.Fatalf("under=%d over=%d n=%d, want 1,2,7", h.Under, h.Over, h.N)
	}
	if h.Counts[0] != 2 || h.Counts[5] != 1 || h.Counts[9] != 1 {
		t.Errorf("counts = %v", h.Counts)
	}
}

func TestFixedHistogramCDF(t *testing.T) {
	h := NewFixedHistogram(0, 4, 4)
	h.ObserveAll([]float64{0.5, 1.5, 2.5, 3.5})
	cdf := h.CDF()
	want := []float64{0.25, 0.5, 0.75, 1}
	for i, p := range cdf {
		if p.Fraction != want[i] {
			t.Errorf("cdf[%d] = %+v, want fraction %f", i, p, want[i])
		}
		if p.Value != float64(i+1) {
			t.Errorf("cdf[%d].Value = %f, want %d", i, p.Value, i+1)
		}
	}
}

func TestFixedHistogramQuantileBrackets(t *testing.T) {
	// The histogram quantile is nearest-rank at bucket granularity, while
	// Percentile interpolates between ranks: the two must agree to within
	// two bucket widths (one for the bucket rounding, one for the
	// interpolation step between adjacent samples).
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.Float64() * 100
	}
	h := NewFixedHistogram(0, 100, 200)
	h.ObserveAll(xs)
	width := 100.0 / 200
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := Percentile(xs, q*100)
		est := h.Quantile(q)
		if math.Abs(est-exact) > 2*width+1e-9 {
			t.Errorf("q=%f: histogram %f vs exact %f (width %f)", q, est, exact, width)
		}
	}
}

// TestHistogramPercentileBitIdentity is the regression gate the satellite
// task demands: feeding the same samples through the histogram must leave
// the existing P99/P999 computation bit-for-bit unchanged (the histogram
// neither mutates nor reorders caller samples).
func TestHistogramPercentileBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.ExpFloat64() * 10
	}
	before := Summarize(xs)
	b99, b999 := math.Float64bits(before.P99), math.Float64bits(before.P999)

	h := NewFixedHistogram(0, 100, 64)
	h.ObserveAll(xs)
	_ = h.CDF()
	_ = h.Quantile(0.99)

	after := Summarize(xs)
	if math.Float64bits(after.P99) != b99 || math.Float64bits(after.P999) != b999 {
		t.Fatalf("P99/P999 bits changed after histogram use: %x/%x vs %x/%x",
			math.Float64bits(after.P99), math.Float64bits(after.P999), b99, b999)
	}
	for i, x := range xs {
		if math.Float64bits(x) != math.Float64bits(append([]float64(nil), xs...)[i]) {
			t.Fatalf("sample %d mutated", i)
		}
	}
}

// Boundary arithmetic: the lower bound is inclusive, the upper bound
// exclusive, and the float edge just below Max clamps into the last bucket
// rather than indexing past it.
func TestFixedHistogramBoundaryBuckets(t *testing.T) {
	h := NewFixedHistogram(0, 1, 3)
	h.Observe(0) // exactly Min: first bucket, not underflow
	if h.Under != 0 || h.Counts[0] != 1 {
		t.Fatalf("Min-valued sample: under=%d counts=%v, want bucket 0", h.Under, h.Counts)
	}
	h.Observe(math.Nextafter(0, -1)) // just below Min
	if h.Under != 1 {
		t.Fatalf("sample below Min not counted as underflow: under=%d", h.Under)
	}
	h.Observe(1) // exactly Max: overflow, [Min, Max) is half-open
	if h.Over != 1 {
		t.Fatalf("Max-valued sample not counted as overflow: over=%d", h.Over)
	}
	// Just below Max: (x-Min)/width can round to len(Counts) in floats;
	// the clamp must land it in the final bucket.
	h.Observe(math.Nextafter(1, 0))
	if h.Counts[2] != 1 {
		t.Fatalf("just-below-Max sample missed the last bucket: counts=%v over=%d", h.Counts, h.Over)
	}
	if h.N != 4 {
		t.Fatalf("n=%d, want 4", h.N)
	}
}

// Underflow and overflow shape Quantile and CDF at the extremes: mass below
// Min answers Min, mass beyond Max leaves the CDF short of 1 and makes tail
// quantiles answer Max.
func TestFixedHistogramOverflowQuantiles(t *testing.T) {
	h := NewFixedHistogram(0, 10, 5)
	h.ObserveAll([]float64{-5, -1, 3, 12, 100, 1000})
	if got := h.Quantile(0.1); got != 0 {
		t.Errorf("Quantile(0.1) = %v, want Min with a third of the mass underflowed", got)
	}
	if got := h.Quantile(0.99); got != 10 {
		t.Errorf("Quantile(0.99) = %v, want Max with half the mass overflowed", got)
	}
	cdf := h.CDF()
	last := cdf[len(cdf)-1].Fraction
	if want := 0.5; math.Abs(last-want) > 1e-12 {
		t.Errorf("final CDF fraction = %v, want %v (overflow mass never accumulates)", last, want)
	}
}
