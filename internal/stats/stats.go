// Package stats provides the small set of descriptive statistics the
// experiment harness reports: the paper plots values "averaged over
// multiple runs", and per-trial spread (min/max/percentiles) is what tells
// a reader whether a mean is trustworthy.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample of measurements.
type Summary struct {
	N      int
	Mean   float64
	Min    float64
	Max    float64
	StdDev float64
	P50    float64
	P95    float64
	P99    float64
	// P999 resolves the extreme tail: chaos campaigns produce
	// distributions whose interesting mass (blackhole outliers, dampened
	// reconvergence stragglers) sits beyond the 99th percentile.
	P999 float64
}

// Summarize computes a Summary. An empty sample yields the zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	for _, x := range xs {
		s.Mean += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean /= float64(len(xs))
	var sq float64
	for _, x := range xs {
		d := x - s.Mean
		sq += d * d
	}
	if len(xs) > 1 {
		s.StdDev = math.Sqrt(sq / float64(len(xs)-1))
	}
	s.P50 = Percentile(xs, 50)
	s.P95 = Percentile(xs, 95)
	s.P99 = Percentile(xs, 99)
	s.P999 = Percentile(xs, 99.9)
	return s
}

// Percentile returns the p-th percentile (0..100) using linear
// interpolation between closest ranks. It does not modify xs.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean (0 for an empty sample).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// String renders "mean=… [min=…, p50=…, p95=…, p99=…, p999=…, max=…] n=…".
func (s Summary) String() string {
	return fmt.Sprintf("mean=%.2f [min=%.2f p50=%.2f p95=%.2f p99=%.2f p999=%.2f max=%.2f] n=%d",
		s.Mean, s.Min, s.P50, s.P95, s.P99, s.P999, s.Max, s.N)
}
