package stats

// FixedHistogram is a fixed-bucket histogram over [Min, Max): `buckets`
// equal-width bins plus underflow/overflow counters. The localization-time
// reporting uses it to export CDFs without shipping raw samples, and its
// Observe path never mutates or retains caller data — the exact-percentile
// path (Summarize/Percentile) over the same samples stays bit-identical.
type FixedHistogram struct {
	Min, Max float64
	Counts   []uint64
	Under    uint64
	Over     uint64
	N        uint64
}

// NewFixedHistogram builds a histogram with the given bounds and bucket
// count (at least 1; max must exceed min).
func NewFixedHistogram(min, max float64, buckets int) *FixedHistogram {
	if buckets < 1 {
		buckets = 1
	}
	if max <= min {
		max = min + 1
	}
	return &FixedHistogram{Min: min, Max: max, Counts: make([]uint64, buckets)}
}

// width returns one bucket's span.
func (h *FixedHistogram) width() float64 {
	return (h.Max - h.Min) / float64(len(h.Counts))
}

// Observe adds one sample.
func (h *FixedHistogram) Observe(x float64) {
	h.N++
	switch {
	case x < h.Min:
		h.Under++
	case x >= h.Max:
		h.Over++
	default:
		i := int((x - h.Min) / h.width())
		if i >= len(h.Counts) { // float edge at the upper bound
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// ObserveAll adds every sample; xs is read-only.
func (h *FixedHistogram) ObserveAll(xs []float64) {
	for _, x := range xs {
		h.Observe(x)
	}
}

// CDFPoint is one step of the exported cumulative distribution: Fraction of
// samples were at or below Value (a bucket's upper edge).
type CDFPoint struct {
	Value    float64
	Fraction float64
}

// CDF exports the cumulative distribution at every bucket upper edge. The
// underflow count is folded into the first point; overflow shows up as the
// final fraction falling short of 1.
func (h *FixedHistogram) CDF() []CDFPoint {
	out := make([]CDFPoint, len(h.Counts))
	if h.N == 0 {
		for i := range out {
			out[i] = CDFPoint{Value: h.Min + float64(i+1)*h.width()}
		}
		return out
	}
	cum := h.Under
	for i, c := range h.Counts {
		cum += c
		out[i] = CDFPoint{
			Value:    h.Min + float64(i+1)*h.width(),
			Fraction: float64(cum) / float64(h.N),
		}
	}
	return out
}

// Quantile returns the upper edge of the first bucket whose cumulative
// fraction reaches q (0..1) — the nearest-rank percentile rounded up to
// bucket granularity, within one bucket width of it. Returns Min with no
// samples; Max when only the overflow region reaches q.
func (h *FixedHistogram) Quantile(q float64) float64 {
	if h.N == 0 {
		return h.Min
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	need := q * float64(h.N)
	cum := float64(h.Under)
	if cum >= need && h.Under > 0 {
		return h.Min
	}
	for i, c := range h.Counts {
		cum += float64(c)
		if cum >= need {
			return h.Min + float64(i+1)*h.width()
		}
	}
	return h.Max
}
