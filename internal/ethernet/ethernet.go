// Package ethernet implements Ethernet II framing.
//
// Every byte that crosses a simulated link is a well-formed Ethernet frame
// produced by this package, so the byte counts reported by the control- and
// keep-alive-overhead experiments match what tshark showed the paper's
// authors: a BFD keep-alive is 66 bytes at layer 2, a BGP keep-alive 85
// bytes, and an MR-MTP keep-alive 15 bytes (a 1-byte payload behind the
// 14-byte header; the experiments count frame bytes as captured, without
// padding or FCS, exactly as Wireshark displays them).
package ethernet

import (
	"errors"
	"fmt"

	"repro/internal/netaddr"
)

// EtherType values used in the reproduction.
const (
	TypeIPv4  uint16 = 0x0800
	TypeARP   uint16 = 0x0806
	TypeMRMTP uint16 = 0x8850 // unused type claimed by the paper for MR-MTP
)

// HeaderLen is the Ethernet II header size (dst + src + ethertype).
const HeaderLen = 14

// Frame is a parsed Ethernet II frame.
type Frame struct {
	Dst       netaddr.MAC
	Src       netaddr.MAC
	EtherType uint16
	Payload   []byte
}

// ErrTruncated reports a frame shorter than the Ethernet header.
var ErrTruncated = errors.New("ethernet: truncated frame")

// Marshal renders the frame to wire format.
//
//simlint:hotpath
func (f *Frame) Marshal() []byte {
	b := make([]byte, HeaderLen+len(f.Payload)) //simlint:alloc this IS the frame buffer; ownership passes to Port.Send
	PutHeader(b, f.Dst, f.Src, f.EtherType)
	copy(b[HeaderLen:], f.Payload)
	return b
}

// PutHeader writes the Ethernet II header into b[:HeaderLen]. It lets
// callers that pre-allocated header room in front of a payload frame it
// without another allocation and copy.
//
//simlint:hotpath
func PutHeader(b []byte, dst, src netaddr.MAC, etherType uint16) {
	copy(b[0:6], dst[:])
	copy(b[6:12], src[:])
	b[12] = byte(etherType >> 8)
	b[13] = byte(etherType)
}

// Unmarshal parses a wire-format frame. The payload aliases b.
//
//simlint:hotpath
func Unmarshal(b []byte) (Frame, error) {
	if len(b) < HeaderLen {
		return Frame{}, ErrTruncated
	}
	var f Frame
	copy(f.Dst[:], b[0:6])
	copy(f.Src[:], b[6:12])
	f.EtherType = uint16(b[12])<<8 | uint16(b[13])
	f.Payload = b[HeaderLen:]
	return f, nil
}

// String renders a short tshark-like summary.
func (f *Frame) String() string {
	var proto string
	switch f.EtherType {
	case TypeIPv4:
		proto = "IPv4"
	case TypeARP:
		proto = "ARP"
	case TypeMRMTP:
		proto = "MR-MTP"
	default:
		proto = fmt.Sprintf("0x%04x", f.EtherType)
	}
	return fmt.Sprintf("%s > %s %s len=%d", f.Src, f.Dst, proto, HeaderLen+len(f.Payload))
}
