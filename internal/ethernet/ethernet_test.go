package ethernet

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/netaddr"
)

func TestRoundTrip(t *testing.T) {
	f := func(dst, src netaddr.MAC, et uint16, payload []byte) bool {
		in := Frame{Dst: dst, Src: src, EtherType: et, Payload: payload}
		out, err := Unmarshal(in.Marshal())
		return err == nil &&
			out.Dst == dst && out.Src == src && out.EtherType == et &&
			bytes.Equal(out.Payload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnmarshalTruncated(t *testing.T) {
	for n := 0; n < HeaderLen; n++ {
		if _, err := Unmarshal(make([]byte, n)); err != ErrTruncated {
			t.Errorf("Unmarshal(%d bytes) err = %v, want ErrTruncated", n, err)
		}
	}
}

func TestMRMTPKeepAliveFrameSize(t *testing.T) {
	// Paper §VII.F / Fig. 10: an MR-MTP keep-alive is a broadcast frame
	// with ethertype 0x8850 and a single data byte — 15 bytes on the wire.
	f := Frame{Dst: netaddr.Broadcast, Src: netaddr.MAC{0x6a}, EtherType: TypeMRMTP, Payload: []byte{0x06}}
	if got := len(f.Marshal()); got != 15 {
		t.Errorf("MR-MTP keep-alive frame = %d bytes, want 15", got)
	}
}

func TestString(t *testing.T) {
	f := Frame{Dst: netaddr.Broadcast, EtherType: TypeMRMTP, Payload: []byte{0x06}}
	want := "00:00:00:00:00:00 > ff:ff:ff:ff:ff:ff MR-MTP len=15"
	if got := f.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	f.EtherType = 0x1234
	if got := f.String(); got != "00:00:00:00:00:00 > ff:ff:ff:ff:ff:ff 0x1234 len=15" {
		t.Errorf("String() = %q", got)
	}
}

func TestEtherTypeEncoding(t *testing.T) {
	f := Frame{EtherType: TypeMRMTP}
	b := f.Marshal()
	if b[12] != 0x88 || b[13] != 0x50 {
		t.Errorf("ethertype bytes = %02x%02x, want 8850", b[12], b[13])
	}
}
