package ethernet

import (
	"bytes"
	"testing"

	"repro/internal/netaddr"
)

func FuzzUnmarshal(f *testing.F) {
	seed := Frame{
		Dst:       netaddr.MAC{0x02, 0, 0, 0, 0, 1},
		Src:       netaddr.MAC{0x02, 0, 0, 0, 0, 2},
		EtherType: TypeIPv4,
		Payload:   []byte{0x45, 0, 0, 20},
	}
	f.Add(seed.Marshal())
	f.Add((&Frame{Dst: netaddr.Broadcast, EtherType: TypeMRMTP, Payload: []byte{0x06}}).Marshal())
	f.Add([]byte{})
	f.Add(make([]byte, HeaderLen-1))
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := Unmarshal(data)
		if err != nil {
			if len(data) >= HeaderLen {
				t.Fatalf("header-sized frame rejected: %v", err)
			}
			return
		}
		// Every parseable frame must re-marshal byte-identically: the
		// header captures all fourteen bytes and the payload aliases the
		// rest.
		if out := fr.Marshal(); !bytes.Equal(out, data) {
			t.Fatalf("round trip diverged:\n in  % x\n out % x", data, out)
		}
	})
}
