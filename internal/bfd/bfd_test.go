package bfd

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/ipstack"
	"repro/internal/netaddr"
	"repro/internal/simnet"
)

func TestControlPacketRoundTrip(t *testing.T) {
	f := func(state byte, mult byte, my, your, tx, rx uint32) bool {
		if mult == 0 {
			mult = 3
		}
		in := ControlPacket{
			State: State(state % 4), DetectMult: mult,
			MyDisc: my, YourDisc: your, DesiredMinTx: tx, RequiredMinRx: rx,
		}
		out, err := Unmarshal(in.Marshal())
		return err == nil && out == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPacketLen(t *testing.T) {
	p := ControlPacket{State: StateUp, DetectMult: 3, MyDisc: 1}
	if got := len(p.Marshal()); got != 24 {
		t.Errorf("control packet = %d bytes, want 24 (66 at L2 per Fig. 9)", got)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal(make([]byte, 10)); err != ErrMalformed {
		t.Errorf("short: %v", err)
	}
	good := (&ControlPacket{State: StateUp, DetectMult: 3}).Marshal()
	bad := append([]byte(nil), good...)
	bad[0] = 0 // version 0
	if _, err := Unmarshal(bad); err != ErrMalformed {
		t.Errorf("version: %v", err)
	}
	bad = append([]byte(nil), good...)
	bad[2] = 0 // detect mult 0
	if _, err := Unmarshal(bad); err != ErrMalformed {
		t.Errorf("mult: %v", err)
	}
}

// pairNet wires two stacks on one link with BFD managers.
type pairNet struct {
	sim    *simnet.Sim
	a, b   *ipstack.Stack
	ma, mb *Manager
	sa, sb *Session
}

func newPair(t *testing.T) *pairNet {
	t.Helper()
	pn := &pairNet{sim: simnet.New(5)}
	na, nb := pn.sim.AddNode("a"), pn.sim.AddNode("b")
	pn.a, pn.b = ipstack.New(na), ipstack.New(nb)
	pn.sim.Connect(na.AddPort(), nb.AddPort())
	sub := netaddr.MakePrefix(netaddr.MakeIPv4(172, 16, 0, 0), 24)
	pn.a.AddIface(na.Port(1), sub.Host(1), sub)
	pn.b.AddIface(nb.Port(1), sub.Host(2), sub)
	pn.ma, pn.mb = NewManager(pn.a), NewManager(pn.b)
	pn.sa = pn.ma.Add(sub.Host(1), sub.Host(2), DefaultConfig())
	pn.sb = pn.mb.Add(sub.Host(2), sub.Host(1), DefaultConfig())
	return pn
}

func TestSessionComesUp(t *testing.T) {
	pn := newPair(t)
	pn.sim.RunFor(2 * time.Second)
	if pn.sa.State() != StateUp || pn.sb.State() != StateUp {
		t.Fatalf("states: a=%v b=%v, want Up/Up", pn.sa.State(), pn.sb.State())
	}
}

func TestDetectionWithin300ms(t *testing.T) {
	pn := newPair(t)
	pn.sim.RunFor(2 * time.Second)
	var downAt time.Duration
	pn.sb.OnDown = func() { downAt = pn.sim.Now() }
	failAt := pn.sim.Now()
	// Fail a's interface: b stops hearing control packets and must
	// detect within DetectMult × TxInterval (plus scheduling slack).
	pn.a.Node.Port(1).Fail()
	pn.sim.RunFor(time.Second)
	if downAt == 0 {
		t.Fatal("b never detected the failure")
	}
	detect := downAt - failAt
	if detect > 400*time.Millisecond {
		t.Errorf("detection took %v, want <= ~300ms (+jitter slack)", detect)
	}
	if detect < 100*time.Millisecond {
		t.Errorf("detection after %v is implausibly fast for a remote failure", detect)
	}
}

func TestTxRate(t *testing.T) {
	pn := newPair(t)
	pn.sim.RunFor(10 * time.Second)
	// 100ms interval with up to 25% jitter: roughly 100-134 packets in 10s.
	if pn.sa.Stats.Sent < 90 || pn.sa.Stats.Sent > 140 {
		t.Errorf("a sent %d control packets in 10s, want ~100-134", pn.sa.Stats.Sent)
	}
}

func TestSessionRecovers(t *testing.T) {
	pn := newPair(t)
	pn.sim.RunFor(2 * time.Second)
	pn.a.Node.Port(1).Fail()
	pn.sim.RunFor(2 * time.Second)
	if pn.sb.State() == StateUp {
		t.Fatal("b still Up during outage")
	}
	var upAgain bool
	pn.sb.OnUp = func() { upAgain = true }
	pn.a.Node.Port(1).Restore()
	pn.sim.RunFor(2 * time.Second)
	if !upAgain || pn.sb.State() != StateUp || pn.sa.State() != StateUp {
		t.Errorf("session did not recover: a=%v b=%v", pn.sa.State(), pn.sb.State())
	}
}

func TestLocalFailureAlsoDetected(t *testing.T) {
	// The side owning the failed interface stops receiving too; its BFD
	// session must drop even though its OS saw the carrier loss first.
	pn := newPair(t)
	pn.sim.RunFor(2 * time.Second)
	var down bool
	pn.sa.OnDown = func() { down = true }
	pn.a.Node.Port(1).Fail()
	pn.sim.RunFor(time.Second)
	if !down {
		t.Error("a's own session did not time out")
	}
}

// TestTransmitAllocs pins the keep-alive TX budget. Each control packet
// costs the 24-byte marshal buffer plus the stack's single TX-path frame
// allocation; event bookkeeping amortizes to zero once the simulator
// freelists warm up (DESIGN.md §9). The 100ms-interval BFD churn dominates
// the BGP/BFD configuration's event count, so a regression here slows every
// figure run.
func TestTransmitAllocs(t *testing.T) {
	pn := newPair(t)
	pn.sim.RunFor(2 * time.Second) // sessions Up, ARP resolved, freelists warm
	avg := testing.AllocsPerRun(200, func() {
		pn.sa.transmit()
		// Run past the link latency so the delivery fires and its event
		// record recycles instead of queueing. (A full drain would never
		// return: the periodic timers re-arm forever.)
		pn.sim.RunFor(300 * time.Microsecond)
	})
	if avg > 3 {
		t.Errorf("BFD transmit allocates %.1f/op, want <= 3 (control packet + frame + delivery slack)", avg)
	}
}
