// Package bfd implements Bidirectional Forwarding Detection (RFC 5880)
// in asynchronous mode over single-hop UDP (RFC 5881), as the paper enables
// it for BGP: transmit interval 100 ms, detect multiplier 3, giving the
// 300 ms failure detection that dominates the BGP/BFD curves in Figs. 4,
// 7 and 8. Each control packet is 24 bytes — 66 bytes on the wire with
// UDP, IP and Ethernet, the frame size in the paper's Fig. 9 capture.
package bfd

import (
	"errors"
	"time"

	"repro/internal/ipstack"
	"repro/internal/netaddr"
	"repro/internal/simnet"
	"repro/internal/udp"
)

// PacketLen is the mandatory-section size of a control packet.
const PacketLen = 24

// State is a BFD session state (RFC 5880 §6.8.1).
type State byte

// Session states.
const (
	StateAdminDown State = 0
	StateDown      State = 1
	StateInit      State = 2
	StateUp        State = 3
)

func (s State) String() string {
	switch s {
	case StateAdminDown:
		return "AdminDown"
	case StateDown:
		return "Down"
	case StateInit:
		return "Init"
	case StateUp:
		return "Up"
	}
	return "Unknown"
}

// ControlPacket is the decoded mandatory section.
type ControlPacket struct {
	State         State
	DetectMult    byte
	MyDisc        uint32
	YourDisc      uint32
	DesiredMinTx  uint32 // microseconds, per RFC 5880
	RequiredMinRx uint32
}

// ErrMalformed reports an undecodable control packet.
var ErrMalformed = errors.New("bfd: malformed control packet")

// Marshal renders the packet.
func (p *ControlPacket) Marshal() []byte {
	b := make([]byte, PacketLen)
	b[0] = 1 << 5 // version 1, no diagnostic
	b[1] = byte(p.State) << 6
	b[2] = p.DetectMult
	b[3] = PacketLen
	be32(b[4:], p.MyDisc)
	be32(b[8:], p.YourDisc)
	be32(b[12:], p.DesiredMinTx)
	be32(b[16:], p.RequiredMinRx)
	// Required Min Echo RX = 0 (no echo function).
	return b
}

// Unmarshal parses a control packet.
func Unmarshal(b []byte) (ControlPacket, error) {
	if len(b) < PacketLen || b[3] != PacketLen || b[0]>>5 != 1 {
		return ControlPacket{}, ErrMalformed
	}
	var p ControlPacket
	p.State = State(b[1] >> 6)
	p.DetectMult = b[2]
	p.MyDisc = u32(b[4:])
	p.YourDisc = u32(b[8:])
	p.DesiredMinTx = u32(b[12:])
	p.RequiredMinRx = u32(b[16:])
	if p.DetectMult == 0 {
		return ControlPacket{}, ErrMalformed
	}
	return p, nil
}

func be32(b []byte, v uint32) {
	b[0] = byte(v >> 24)
	b[1] = byte(v >> 16)
	b[2] = byte(v >> 8)
	b[3] = byte(v)
}
func u32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

// Config parameterizes a session. The paper's profile: TxInterval 100 ms,
// DetectMult 3 (a 300 ms detection time).
type Config struct {
	TxInterval time.Duration
	DetectMult int
}

// DefaultConfig returns the paper's lowerIntervals profile.
func DefaultConfig() Config { return Config{TxInterval: 100 * time.Millisecond, DetectMult: 3} }

// Session is one BFD adjacency. Create with NewSession; it starts
// transmitting when the stack starts (or immediately if already running).
type Session struct {
	stack  *ipstack.Stack
	sim    *simnet.Sim
	cfg    Config
	local  netaddr.IPv4
	remote netaddr.IPv4

	state       State
	myDisc      uint32
	yourDisc    uint32
	txTimer     *simnet.Timer
	detectTimer *simnet.Timer

	// OnDown fires when an Up session falls to Down (detect timeout or
	// remote signaling); BGP's Peer.BFDDown is wired here.
	OnDown func()
	// OnUp fires when the session reaches Up.
	OnUp func()

	// Stats for the keep-alive overhead experiment. UpTransitions and
	// DownTransitions count entries into/out of the Up state (chaos
	// campaigns use them to measure per-flap detection churn).
	Stats struct {
		Sent            uint64
		Recv            uint64
		UpTransitions   uint64
		DownTransitions uint64
	}
}

// Manager multiplexes all BFD sessions of one stack on the control port.
type Manager struct {
	stack    *ipstack.Stack
	sessions map[netaddr.IPv4]*Session
	// order keeps sessions in creation order so sweeps over them (chaos
	// telemetry sums) are deterministic without sorting map keys.
	order    []*Session
	nextDisc uint32
}

// NewManager attaches a BFD manager to a stack.
func NewManager(stack *ipstack.Stack) *Manager {
	m := &Manager{stack: stack, sessions: make(map[netaddr.IPv4]*Session)}
	stack.ListenUDP(udp.PortBFDControl, m.input)
	return m
}

// Add creates (and starts) a session toward remote from local.
func (m *Manager) Add(local, remote netaddr.IPv4, cfg Config) *Session {
	m.nextDisc++
	s := &Session{
		stack:  m.stack,
		sim:    m.stack.Node.Sim,
		cfg:    cfg,
		local:  local,
		remote: remote,
		state:  StateDown,
		myDisc: m.nextDisc,
	}
	m.sessions[remote] = s
	m.order = append(m.order, s)
	s.scheduleTx()
	s.armDetect()
	return s
}

// Session returns the session toward remote, or nil.
func (m *Manager) Session(remote netaddr.IPv4) *Session { return m.sessions[remote] }

// Sessions returns every session in creation order.
func (m *Manager) Sessions() []*Session { return append([]*Session(nil), m.order...) }

func (m *Manager) input(src, dst netaddr.IPv4, dg udp.Datagram) {
	s := m.sessions[src]
	if s == nil {
		return
	}
	pkt, err := Unmarshal(dg.Payload)
	if err != nil {
		return
	}
	s.handle(pkt)
}

// State returns the current session state.
func (s *Session) State() State { return s.state }

func (s *Session) detectTime() time.Duration {
	return time.Duration(s.cfg.DetectMult) * s.cfg.TxInterval
}

func (s *Session) scheduleTx() {
	// RFC 5880 §6.8.7 requires jitter (75-100% of the interval) to avoid
	// self-synchronization; the node's seeded stream keeps it deterministic
	// per run and independent of which engine (sequential or partitioned)
	// interleaves the other nodes' draws.
	jitter := time.Duration(s.stack.Node.Rand().Int63n(int64(s.cfg.TxInterval / 4)))
	d := s.cfg.TxInterval - jitter
	if s.txTimer != nil {
		s.txTimer.Reset(d)
		return
	}
	s.txTimer = s.sim.After(d, func() {
		s.transmit()
		s.scheduleTx()
	})
}

func (s *Session) transmit() {
	pkt := ControlPacket{
		State:         s.state,
		DetectMult:    byte(s.cfg.DetectMult),
		MyDisc:        s.myDisc,
		YourDisc:      s.yourDisc,
		DesiredMinTx:  uint32(s.cfg.TxInterval / time.Microsecond),
		RequiredMinRx: uint32(s.cfg.TxInterval / time.Microsecond),
	}
	s.Stats.Sent++
	s.stack.SendUDP(s.local, s.remote, 49152, udp.PortBFDControl, pkt.Marshal())
}

func (s *Session) armDetect() {
	if s.detectTimer != nil {
		s.detectTimer.Reset(s.detectTime())
		return
	}
	s.detectTimer = s.sim.After(s.detectTime(), s.timeout)
}

func (s *Session) timeout() {
	was := s.state
	s.state = StateDown
	s.yourDisc = 0
	if was == StateUp {
		s.Stats.DownTransitions++
		if s.OnDown != nil {
			s.OnDown()
		}
	}
	// Keep polling for liveness; detection re-arms on the next packet.
}

func (s *Session) handle(pkt ControlPacket) {
	s.Stats.Recv++
	s.yourDisc = pkt.MyDisc
	s.armDetect()
	was := s.state
	switch s.state {
	case StateDown:
		if pkt.State == StateDown {
			s.state = StateInit
		} else if pkt.State == StateInit {
			s.state = StateUp
		}
	case StateInit:
		if pkt.State == StateInit || pkt.State == StateUp {
			s.state = StateUp
		}
	case StateUp:
		if pkt.State == StateDown {
			s.state = StateDown
			s.Stats.DownTransitions++
			if s.OnDown != nil {
				s.OnDown()
			}
		}
	}
	if was != StateUp && s.state == StateUp {
		s.Stats.UpTransitions++
		if s.OnUp != nil {
			s.OnUp()
		}
	}
}
