// Package workload drives a flow-level traffic mix through the simulator
// and measures what the DCN load-balancing literature (FatPaths and the
// multipathing surveys in PAPERS.md) judges routing designs by: per-flow
// completion time and the balance of bytes across equal-cost uplinks.
//
// The generator is open-loop: flows arrive by a Poisson process whether or
// not the fabric keeps up, sized by a heavy-tailed distribution, and each
// flow's packets are paced independently. Loss repair is a deliberately
// idealized SACK — the sender re-offers exactly the missing sequences one
// RTO after its last transmission, with zero feedback traffic — so flow
// completion times measure the *fabric's* recovery (hashing, reconvergence,
// queueing), not a transport implementation's.
package workload

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/ipstack"
	"repro/internal/netaddr"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/udp"
)

// Magic identifies workload data packets ("FLOW").
const Magic uint32 = 0x464c4f57

// wireHeaderLen is the data-packet header: magic + flow ID + sequence +
// total packet count, all big-endian u32.
const wireHeaderLen = 16

// Host is one traffic endpoint: a server's stack plus the labels the
// pairing patterns need.
type Host struct {
	Stack *ipstack.Stack
	IP    netaddr.IPv4
	Name  string
	Rack  string // hosts sharing a ToR; cross-rack patterns never pair within one
}

// Config parameterizes a workload run.
type Config struct {
	Pattern Pattern
	Sizes   SizeDist
	// Flows is the total number of flows to launch.
	Flows int
	// MeanArrival is the mean inter-arrival gap of the Poisson process.
	MeanArrival time.Duration
	// PacketSize is the UDP payload carried per data packet.
	PacketSize int
	// PacketInterval paces consecutive packets of one flow.
	PacketInterval time.Duration
	// DstPort is the well-known workload port every host listens on.
	DstPort uint16
	// RTO is the repair-round timer: one RTO after its last transmission
	// an incomplete flow re-offers its missing sequences.
	RTO time.Duration
	// MaxRounds bounds repair rounds before a flow is abandoned.
	MaxRounds int
	// Seed drives every random choice (arrivals, sizes, pairing).
	Seed int64
}

// DefaultConfig is the mix the harness experiments run: websearch sizes on
// the random pattern at a load that keeps a 2-PoD fabric busy but stable.
func DefaultConfig(seed int64) Config {
	return Config{
		Pattern:        PatternRandom,
		Sizes:          WebSearchMix(),
		Flows:          160,
		MeanArrival:    8 * time.Millisecond,
		PacketSize:     1000,
		PacketInterval: 120 * time.Microsecond,
		DstPort:        49000,
		RTO:            100 * time.Millisecond,
		MaxRounds:      60,
		Seed:           1,
	}
}

// Flow is one generated transfer. Schedule fields are fixed at generation;
// runtime fields fill in as the simulation runs.
type Flow struct {
	ID       uint32
	Src, Dst int // host indices
	SrcPort  uint16
	Bytes    int
	Packets  int
	Start    time.Duration // offset from Engine.Start

	launchedAt time.Duration
	pending    []uint32 // sequences queued for (re)transmission
	rounds     int
	retx       int
	received   int
	dups       int // arrivals of sequences already delivered
	gotMask    []uint64
	timer      *simnet.Timer

	Done      bool
	Abandoned bool
	FCT       time.Duration // valid when Done
}

func (f *Flow) got(seq uint32) bool { return f.gotMask[seq/64]&(1<<(seq%64)) != 0 }
func (f *Flow) mark(seq uint32)     { f.gotMask[seq/64] |= 1 << (seq % 64) }

// Engine generates, transmits and accounts a workload over one simulation.
type Engine struct {
	sim   simnet.Engine
	hosts []Host
	cfg   Config
	flows []*Flow
	byID  map[uint32]*Flow

	base    time.Duration // virtual time of Start
	started bool

	// PacketsSent counts data transmissions including repairs;
	// Retransmits the repair subset. Both are written only from the
	// send path (control events), never from receive handlers —
	// per-flow receive accounting lives on the Flow so that hosts on
	// different shards of a partitioned engine never share a counter.
	PacketsSent uint64
	Retransmits uint64
}

// New generates the full flow schedule deterministically from cfg.Seed and
// registers the receive path on every host. sim is the engine driving the
// hosts' fabric — flow launches and repair timers are control events on it
// (on a partitioned Cluster they must not live on any one shard's heap). A
// nil sim defaults to the first host's own simulator, which is only valid
// sequentially.
func New(sim simnet.Engine, hosts []Host, cfg Config) (*Engine, error) {
	if len(hosts) < 2 {
		return nil, fmt.Errorf("workload: need at least 2 hosts, got %d", len(hosts))
	}
	if cfg.Flows < 1 || cfg.PacketSize < wireHeaderLen || cfg.Sizes == nil {
		return nil, fmt.Errorf("workload: bad config: %d flows, %dB packets", cfg.Flows, cfg.PacketSize)
	}
	if sim == nil {
		sim = hosts[0].Stack.Node.Sim
	}
	e := &Engine{
		sim:   sim,
		hosts: hosts,
		cfg:   cfg,
		byID:  make(map[uint32]*Flow, cfg.Flows),
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	pair := e.pairer(rng)
	var at time.Duration
	for i := 0; i < cfg.Flows; i++ {
		at += time.Duration(rng.ExpFloat64() * float64(cfg.MeanArrival))
		src, dst := pair(i)
		bytes := cfg.Sizes.Sample(rng.Float64())
		if bytes < 1 {
			bytes = 1
		}
		pkts := (bytes + cfg.PacketSize - 1) / cfg.PacketSize
		f := &Flow{
			ID:      uint32(i + 1),
			Src:     src,
			Dst:     dst,
			SrcPort: uint16(20000 + i%40000),
			Bytes:   bytes,
			Packets: pkts,
			Start:   at,
			gotMask: make([]uint64, (pkts+63)/64),
		}
		e.flows = append(e.flows, f)
		e.byID[f.ID] = f
	}
	seen := make(map[*ipstack.Stack]bool)
	for _, h := range hosts {
		if seen[h.Stack] {
			continue
		}
		seen[h.Stack] = true
		// The receive path runs inside the host's own event loop; it must
		// read that node's clock, not the engine-wide one (on a
		// partitioned Cluster the control clock lags mid-window).
		local := h.Stack.Node.Sim
		h.Stack.ListenUDP(cfg.DstPort, func(_, _ netaddr.IPv4, dg udp.Datagram) {
			e.onDatagram(local, dg)
		})
	}
	return e, nil
}

// pairer returns the pattern's (src, dst) chooser. All random draws happen
// through rng in flow order, keeping the schedule a pure function of the
// seed.
func (e *Engine) pairer(rng *rand.Rand) func(i int) (int, int) {
	n := len(e.hosts)
	switch e.cfg.Pattern {
	case PatternPermutation:
		// Shift far enough to leave the source's rack: with hosts
		// grouped by rack, the first index in a different rack is the
		// rack size.
		shift := 1
		for shift < n && e.hosts[shift].Rack == e.hosts[0].Rack {
			shift++
		}
		if shift == n {
			shift = 1
		}
		return func(i int) (int, int) { return i % n, (i%n + shift) % n }
	case PatternIncast:
		return func(i int) (int, int) { return 1 + i%(n-1), 0 }
	default: // PatternRandom
		return func(int) (int, int) {
			src := rng.Intn(n)
			for attempt := 0; attempt < 8*n; attempt++ {
				dst := rng.Intn(n)
				if dst != src && e.hosts[dst].Rack != e.hosts[src].Rack {
					return src, dst
				}
			}
			return src, (src + 1) % n // single-rack fallback
		}
	}
}

// Start schedules every flow launch. Call once, before running the
// simulation forward.
func (e *Engine) Start() {
	if e.started {
		panic("workload: Engine started twice")
	}
	e.started = true
	e.base = e.sim.Now()
	for _, f := range e.flows {
		f := f
		//simlint:shardsafe launch mutates flow state at the quiesce barrier with every shard idle; revisit under barrier-free sync
		e.sim.At(e.base+f.Start, func() { e.launch(f) })
	}
}

func (e *Engine) launch(f *Flow) {
	f.launchedAt = e.sim.Now()
	f.pending = f.pending[:0]
	for seq := 0; seq < f.Packets; seq++ {
		f.pending = append(f.pending, uint32(seq))
	}
	e.tick(f)
}

// tick is the per-flow sender: while sequences are pending it transmits one
// per PacketInterval; once drained it waits an RTO and re-offers whatever
// the receiver is still missing, up to MaxRounds.
func (e *Engine) tick(f *Flow) {
	if f.Done || f.Abandoned {
		return
	}
	if len(f.pending) == 0 {
		missing := f.missing()
		if len(missing) == 0 {
			return // completion races the check; the receive path recorded it
		}
		if f.rounds >= e.cfg.MaxRounds {
			f.Abandoned = true

			return
		}
		f.rounds++
		f.retx += len(missing)
		e.Retransmits += uint64(len(missing))
		f.pending = missing
	}
	seq := f.pending[0]
	f.pending = f.pending[1:]
	e.sendData(f, seq)
	wait := e.cfg.PacketInterval
	if len(f.pending) == 0 {
		wait = e.cfg.RTO
	}
	if f.timer != nil {
		f.timer.Reset(wait)
	} else {
		//simlint:shardsafe retransmit tick runs at the quiesce barrier with every shard idle; revisit under barrier-free sync
		f.timer = e.sim.After(wait, func() { e.tick(f) })
	}
}

// missing lists the sequences the receiver has not delivered, in order. The
// sender reading receiver state directly is the idealized-SACK shortcut
// documented in the package comment.
func (f *Flow) missing() []uint32 {
	var out []uint32
	for seq := uint32(0); seq < uint32(f.Packets); seq++ {
		if !f.got(seq) {
			out = append(out, seq)
		}
	}
	return out
}

func (e *Engine) sendData(f *Flow, seq uint32) {
	e.PacketsSent++
	payload := make([]byte, e.cfg.PacketSize)
	putU32(payload[0:], Magic)
	putU32(payload[4:], f.ID)
	putU32(payload[8:], seq)
	putU32(payload[12:], uint32(f.Packets))
	src, dst := e.hosts[f.Src], e.hosts[f.Dst]
	src.Stack.SendUDP(src.IP, dst.IP, f.SrcPort, e.cfg.DstPort, payload)
}

// onDatagram is the receive path, running on the destination host's event
// loop. local is that host's simulator: its clock is the arrival instant.
// Only per-flow state is touched here — a flow's packets all land on one
// host, so no two shards of a partitioned engine ever write the same Flow.
func (e *Engine) onDatagram(local *simnet.Sim, dg udp.Datagram) {
	p := dg.Payload
	if len(p) < wireHeaderLen || u32(p) != Magic {
		return
	}
	f := e.byID[u32(p[4:])]
	seq := u32(p[8:])
	if f == nil || seq >= uint32(f.Packets) {
		return
	}
	if f.got(seq) {
		f.dups++
		return
	}
	f.mark(seq)
	f.received++
	if f.received == f.Packets && !f.Done {
		f.Done = true
		//simlint:clocksafe launchedAt was stamped by a control event at a quiesce barrier, where the coordinator and shard clocks agree
		f.FCT = local.Now() - f.launchedAt
	}
}

// Done reports whether every flow has finished (completed or abandoned).
// Callers run at quiescent points, so reading flow flags written by other
// shards' receive handlers is safe.
func (e *Engine) Done() bool {
	for _, f := range e.flows {
		if !f.Done && !f.Abandoned {
			return false
		}
	}
	return true
}

// Flows exposes the schedule in generation order (read-only by convention).
func (e *Engine) Flows() []*Flow { return e.flows }

// --- reporting --------------------------------------------------------------

// Bucket is one flow-size class of the FCT report.
type Bucket struct {
	Label    string
	MaxBytes int // inclusive upper bound; flows above all buckets land in the last
}

// DefaultBuckets are the size classes of the harness tables: short queries,
// mid-size responses, heavy-tail bulk.
func DefaultBuckets() []Bucket {
	return []Bucket{
		{"S<=10KB", 10_000},
		{"M<=100KB", 100_000},
		{"L>100KB", 1 << 62},
	}
}

// BucketReport is the FCT sample of one size class, in milliseconds, in
// flow-generation order (deterministic run to run).
type BucketReport struct {
	Label     string
	Flows     int // flows of this size class launched
	Completed int
	FCTms     []float64
}

// Report is the engine's final accounting.
type Report struct {
	Flows       int
	Completed   int
	Abandoned   int
	Incomplete  int // launched or scheduled but neither completed nor abandoned at report time
	PacketsSent uint64
	Retransmits uint64
	Duplicates  uint64
	Buckets     []BucketReport
}

// CompletionRate is the completed fraction of all generated flows.
func (r Report) CompletionRate() float64 {
	if r.Flows == 0 {
		return 0
	}
	return float64(r.Completed) / float64(r.Flows)
}

// Report assembles the final accounting against the given size buckets
// (DefaultBuckets when nil).
func (e *Engine) Report(buckets []Bucket) Report {
	if buckets == nil {
		buckets = DefaultBuckets()
	}
	r := Report{
		Flows:       len(e.flows),
		PacketsSent: e.PacketsSent,
		Retransmits: e.Retransmits,
	}
	for _, f := range e.flows {
		switch {
		case f.Done:
			r.Completed++
		case f.Abandoned:
			r.Abandoned++
		}
		r.Duplicates += uint64(f.dups)
	}
	r.Incomplete = r.Flows - r.Completed - r.Abandoned
	for _, b := range buckets {
		r.Buckets = append(r.Buckets, BucketReport{Label: b.Label})
	}
	for _, f := range e.flows {
		idx := len(buckets) - 1
		for i, b := range buckets {
			if f.Bytes <= b.MaxBytes {
				idx = i
				break
			}
		}
		br := &r.Buckets[idx]
		br.Flows++
		if f.Done {
			br.Completed++
			br.FCTms = append(br.FCTms, float64(f.FCT)/float64(time.Millisecond))
		}
	}
	return r
}

// Summaries reduces each bucket's FCT sample to descriptive statistics.
func (r Report) Summaries() []stats.Summary {
	out := make([]stats.Summary, len(r.Buckets))
	for i, b := range r.Buckets {
		out[i] = stats.Summarize(b.FCTms)
	}
	return out
}

func putU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
}

func u32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}
