// Package workload drives a flow-level traffic mix through the simulator
// and measures what the DCN load-balancing literature (FatPaths and the
// multipathing surveys in PAPERS.md) judges routing designs by: per-flow
// completion time and the balance of bytes across equal-cost uplinks.
//
// The generator is open-loop: flows arrive by a Poisson process whether or
// not the fabric keeps up, sized by a heavy-tailed distribution, and each
// flow's packets are paced independently. Loss repair is a deliberately
// idealized SACK — the sender re-offers exactly the missing sequences one
// RTO after its last transmission, with zero feedback traffic — so flow
// completion times measure the *fabric's* recovery (hashing, reconvergence,
// queueing), not a transport implementation's.
package workload

import (
	"fmt"
	"math/rand"
	"slices"
	"time"

	"repro/internal/fluid"
	"repro/internal/ipstack"
	"repro/internal/netaddr"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/udp"
)

// Magic identifies workload data packets ("FLOW").
const Magic uint32 = 0x464c4f57

// wireHeaderLen is the data-packet header: magic + flow ID + sequence +
// total packet count, all big-endian u32.
const wireHeaderLen = 16

// Mode selects how generated flows are simulated.
type Mode int

const (
	// ModePacket sends every packet of every flow through the fabric —
	// full fidelity, bounded scale.
	ModePacket Mode = iota
	// ModeFluid models every flow analytically with max-min fair-share
	// rates — flow counts far beyond the packet engine's reach, no
	// per-packet effects.
	ModeFluid
	// ModeHybrid routes each flow by fidelity need: short flows (below
	// Config.FluidCutoff) and flows predicted to overlap the fault
	// window ride the packet path; the long tail goes fluid, with the
	// two coupled through shared link capacity.
	ModeHybrid
)

// String names the mode as the CLI flag spells it.
func (m Mode) String() string {
	switch m {
	case ModeFluid:
		return "fluid"
	case ModeHybrid:
		return "hybrid"
	default:
		return "packet"
	}
}

// ModeByName parses a CLI mode name.
func ModeByName(name string) (Mode, bool) {
	switch name {
	case "packet":
		return ModePacket, true
	case "fluid":
		return ModeFluid, true
	case "hybrid":
		return ModeHybrid, true
	}
	return ModePacket, false
}

// PathFunc resolves a flow's current forwarding path without sending a
// packet: the directed fluid links it crosses and the path's fixed latency
// offset (propagation plus per-hop store-and-forward of one packet). The
// harness implements it by replaying the protocols' own next-hop decisions.
type PathFunc func(f *Flow) (path []fluid.LinkID, latency time.Duration, ok bool)

// Host is one traffic endpoint: a server's stack plus the labels the
// pairing patterns need.
type Host struct {
	Stack *ipstack.Stack
	IP    netaddr.IPv4
	Name  string
	Rack  string // hosts sharing a ToR; cross-rack patterns never pair within one
}

// Config parameterizes a workload run.
type Config struct {
	Pattern Pattern
	Sizes   SizeDist
	// Flows is the total number of flows to launch.
	Flows int
	// MeanArrival is the mean inter-arrival gap of the Poisson process.
	MeanArrival time.Duration
	// PacketSize is the UDP payload carried per data packet.
	PacketSize int
	// PacketInterval paces consecutive packets of one flow.
	PacketInterval time.Duration
	// DstPort is the well-known workload port every host listens on.
	DstPort uint16
	// RTO is the repair-round timer: one RTO after its last transmission
	// an incomplete flow re-offers its missing sequences.
	RTO time.Duration
	// MaxRounds bounds repair rounds before a flow is abandoned.
	MaxRounds int
	// Seed drives every random choice (arrivals, sizes, pairing).
	Seed int64

	// Mode selects the engine; the fields below only matter outside
	// ModePacket.
	Mode Mode
	// FluidCutoff demotes flows smaller than this many bytes to the
	// packet path (ModeHybrid).
	FluidCutoff int
	// RateInterval is the fluid solver's rate-recomputation cadence
	// (default 5ms).
	RateInterval time.Duration
	// DemoteFrom/DemoteUntil bound the fault window as offsets from
	// Start: ModeHybrid demotes flows whose predicted lifetime overlaps
	// it, keeping packet fidelity where reconvergence dynamics matter.
	// Zero values mean no window.
	DemoteFrom   time.Duration
	DemoteUntil  time.Duration
	// Solver is the shared fluid rate allocator, its links pre-registered
	// by the harness; PathOf resolves flow paths onto those links. Both
	// are required outside ModePacket.
	Solver *fluid.Solver
	PathOf PathFunc
}

// DefaultConfig is the mix the harness experiments run: websearch sizes on
// the random pattern at a load that keeps a 2-PoD fabric busy but stable.
func DefaultConfig(seed int64) Config {
	return Config{
		Pattern:        PatternRandom,
		Sizes:          WebSearchMix(),
		Flows:          160,
		MeanArrival:    8 * time.Millisecond,
		PacketSize:     1000,
		PacketInterval: 120 * time.Microsecond,
		DstPort:        49000,
		RTO:            100 * time.Millisecond,
		MaxRounds:      60,
		Seed:           1,
	}
}

// Flow is one generated transfer. Schedule fields are fixed at generation;
// runtime fields fill in as the simulation runs.
type Flow struct {
	ID       uint32
	Src, Dst int // host indices
	SrcPort  uint16
	Bytes    int
	Packets  int
	Start    time.Duration // offset from Engine.Start

	launchedAt time.Duration
	launched   bool
	fluid      bool     // routed through the fluid model (decided at generation)
	pending    []uint32 // sequences queued for (re)transmission
	rounds     int
	retx       int
	received   int
	dups       int // arrivals of sequences already delivered
	// gotMask allocates lazily at launch, and only on the packet path —
	// a million fluid flows carry no packet-runtime state.
	gotMask []uint64
	timer   *simnet.Timer

	Done      bool
	Abandoned bool
	FCT       time.Duration // valid when Done
}

// Fluid reports whether the flow was routed through the fluid model.
func (f *Flow) Fluid() bool { return f.fluid }

func (f *Flow) got(seq uint32) bool { return f.gotMask[seq/64]&(1<<(seq%64)) != 0 }
func (f *Flow) mark(seq uint32)     { f.gotMask[seq/64] |= 1 << (seq % 64) }

// Engine generates, transmits and accounts a workload over one simulation.
type Engine struct {
	sim   simnet.Engine
	hosts []Host
	cfg   Config
	flows []*Flow
	byID  map[uint32]*Flow

	base    time.Duration // virtual time of Start
	started bool

	// Fluid-engine state, all touched only from control events at the
	// quiesce barrier. cursor walks the Start-sorted schedule so fluid
	// arrivals are consumed per rate epoch instead of costing a timer
	// each; phantoms tracks packet-path flows whose demand the solver
	// models.
	cursor     int
	fluidTimer *simnet.Timer
	phantoms   []phantomFlow

	// PacketsSent counts data transmissions including repairs;
	// Retransmits the repair subset. Both are written only from the
	// send path (control events), never from receive handlers —
	// per-flow receive accounting lives on the Flow so that hosts on
	// different shards of a partitioned engine never share a counter.
	PacketsSent uint64
	Retransmits uint64
}

// New generates the full flow schedule deterministically from cfg.Seed and
// registers the receive path on every host. sim is the engine driving the
// hosts' fabric — flow launches and repair timers are control events on it
// (on a partitioned Cluster they must not live on any one shard's heap). A
// nil sim defaults to the first host's own simulator, which is only valid
// sequentially.
func New(sim simnet.Engine, hosts []Host, cfg Config) (*Engine, error) {
	if len(hosts) < 2 {
		return nil, fmt.Errorf("workload: need at least 2 hosts, got %d", len(hosts))
	}
	if cfg.Flows < 1 || cfg.PacketSize < wireHeaderLen || cfg.Sizes == nil {
		return nil, fmt.Errorf("workload: bad config: %d flows, %dB packets", cfg.Flows, cfg.PacketSize)
	}
	if cfg.Mode != ModePacket {
		if cfg.Solver == nil || cfg.PathOf == nil {
			return nil, fmt.Errorf("workload: %s mode needs Solver and PathOf wired", cfg.Mode)
		}
		if cfg.RateInterval <= 0 {
			cfg.RateInterval = 5 * time.Millisecond
		}
	}
	if sim == nil {
		sim = hosts[0].Stack.Node.Sim
	}
	e := &Engine{
		sim:   sim,
		hosts: hosts,
		cfg:   cfg,
		byID:  make(map[uint32]*Flow, cfg.Flows),
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	pair := e.pairer(rng)
	var at time.Duration
	for i := 0; i < cfg.Flows; i++ {
		at += time.Duration(rng.ExpFloat64() * float64(cfg.MeanArrival))
		src, dst := pair(i)
		bytes := cfg.Sizes.Sample(rng.Float64())
		if bytes < 1 {
			bytes = 1
		}
		pkts := (bytes + cfg.PacketSize - 1) / cfg.PacketSize
		f := &Flow{
			ID:      uint32(i + 1),
			Src:     src,
			Dst:     dst,
			SrcPort: uint16(20000 + i%40000),
			Bytes:   bytes,
			Packets: pkts,
			Start:   at,
		}
		f.fluid = e.routeFluid(f)
		e.flows = append(e.flows, f)
		if !f.fluid {
			// The receive path only ever looks up packet flows; keeping
			// fluid flows out of the map keeps its footprint bounded by
			// packet-path concurrency, not total flow count.
			e.byID[f.ID] = f
		}
	}
	seen := make(map[*ipstack.Stack]bool)
	for _, h := range hosts {
		if seen[h.Stack] {
			continue
		}
		seen[h.Stack] = true
		// The receive path runs inside the host's own event loop; it must
		// read that node's clock, not the engine-wide one (on a
		// partitioned Cluster the control clock lags mid-window).
		local := h.Stack.Node.Sim
		h.Stack.ListenUDP(cfg.DstPort, func(_, _ netaddr.IPv4, dg udp.Datagram) {
			e.onDatagram(local, dg)
		})
	}
	return e, nil
}

// pairer returns the pattern's (src, dst) chooser. All random draws happen
// through rng in flow order, keeping the schedule a pure function of the
// seed.
func (e *Engine) pairer(rng *rand.Rand) func(i int) (int, int) {
	n := len(e.hosts)
	switch e.cfg.Pattern {
	case PatternPermutation:
		// Shift far enough to leave the source's rack: with hosts
		// grouped by rack, the first index in a different rack is the
		// rack size.
		shift := 1
		for shift < n && e.hosts[shift].Rack == e.hosts[0].Rack {
			shift++
		}
		if shift == n {
			shift = 1
		}
		return func(i int) (int, int) { return i % n, (i%n + shift) % n }
	case PatternIncast:
		return func(i int) (int, int) { return 1 + i%(n-1), 0 }
	default: // PatternRandom
		return func(int) (int, int) {
			src := rng.Intn(n)
			for attempt := 0; attempt < 8*n; attempt++ {
				dst := rng.Intn(n)
				if dst != src && e.hosts[dst].Rack != e.hosts[src].Rack {
					return src, dst
				}
			}
			return src, (src + 1) % n // single-rack fallback
		}
	}
}

// routeFluid is the generation-time dispatch: which engine simulates this
// flow. Pure modes are trivial; hybrid demotes for fidelity — small flows
// (queueing and incast dynamics dominate their FCT) and flows whose
// predicted lifetime overlaps the fault window (reconvergence behavior is
// the whole point of those) take the packet path.
func (e *Engine) routeFluid(f *Flow) bool {
	switch e.cfg.Mode {
	case ModePacket:
		return false
	case ModeFluid:
		return true
	}
	if f.Bytes < e.cfg.FluidCutoff {
		return false
	}
	if e.cfg.DemoteUntil > e.cfg.DemoteFrom {
		if f.Start < e.cfg.DemoteUntil && f.Start+e.estimateDuration(f) > e.cfg.DemoteFrom {
			return false
		}
	}
	return true
}

// estimateDuration pessimistically predicts a flow's lifetime for the
// fault-window overlap test: twice the pacing-bound transfer time (the
// packet sender cannot beat one packet per PacketInterval, and the fluid
// cap matches it). Without pacing there is no sound a-priori bound, so
// everything near the window demotes.
func (e *Engine) estimateDuration(f *Flow) time.Duration {
	if e.cfg.PacketInterval > 0 && e.cfg.PacketSize > 0 {
		per := float64(f.Bytes) / float64(e.cfg.PacketSize)
		return time.Duration(2 * per * float64(e.cfg.PacketInterval))
	}
	return 1 << 62
}

// Start schedules every packet flow's launch and, outside ModePacket, the
// fluid solver's rate-epoch tick. Call once, before running the simulation
// forward.
func (e *Engine) Start() {
	if e.started {
		panic("workload: Engine started twice")
	}
	e.started = true
	e.base = e.sim.Now()
	for _, f := range e.flows {
		if f.fluid {
			continue // admitted by the tick's schedule cursor, no per-flow event
		}
		f := f
		//simlint:shardsafe launch mutates flow state at the quiesce barrier with every shard idle; revisit under barrier-free sync
		e.sim.At(e.base+f.Start, func() { e.launch(f) })
	}
	if e.cfg.Mode != ModePacket {
		//simlint:shardsafe the fluid tick reads flow flags and writes link reservations at the quiesce barrier with every shard idle; revisit under barrier-free sync
		e.fluidTimer = e.sim.After(e.cfg.RateInterval, e.fluidTick)
	}
}

// phantomFlow tracks one packet-path flow admitted to the solver as pure
// demand (hybrid mode), until its packet engine finishes it.
type phantomFlow struct {
	f *Flow
	h fluid.Handle
}

// fluidTick is the rate epoch, a control event at the quiesce barrier:
// integrate service and pop completions, consume newly arrived flows from
// the schedule cursor, release finished phantom demand, then recompute
// max-min rates and push the changed reservations onto the links.
func (e *Engine) fluidTick() {
	now := e.sim.Now()
	e.applyCompletions(e.cfg.Solver.Advance(now))
	for e.cursor < len(e.flows) && e.base+e.flows[e.cursor].Start <= now {
		f := e.flows[e.cursor]
		e.cursor++
		if f.fluid {
			e.admitFluid(f, e.base+f.Start)
		}
	}
	keep := e.phantoms[:0]
	for _, ph := range e.phantoms {
		if ph.f.Done || ph.f.Abandoned {
			e.cfg.Solver.Leave(ph.h)
		} else {
			keep = append(keep, ph)
		}
	}
	e.phantoms = keep
	e.applyCompletions(e.cfg.Solver.Reallocate(now))
	if e.cursor < len(e.flows) || e.cfg.Solver.Active() > 0 || len(e.phantoms) > 0 {
		e.fluidTimer.Reset(e.cfg.RateInterval)
	}
}

// applyCompletions marks flows the solver reports finished.
func (e *Engine) applyCompletions(cs []fluid.Completion) {
	for _, c := range cs {
		f := e.flows[c.ID-1]
		f.Done = true
		f.FCT = c.FCT
	}
}

// admitFluid hands one flow to the solver at its exact arrival instant
// (service credit is backdated to it by the epoch's Reallocate, so FCT
// loses nothing to the tick cadence). A flow with no resolvable path — a
// blackhole window — is abandoned, the analytic analogue of the packet
// sender exhausting MaxRounds into a void.
func (e *Engine) admitFluid(f *Flow, at time.Duration) {
	f.launchedAt = at
	f.launched = true
	path, lat, ok := e.cfg.PathOf(f)
	if !ok {
		f.Abandoned = true
		return
	}
	e.cfg.Solver.Admit(f.ID, int64(f.Bytes), path, lat, at)
}

// Repath re-resolves every fluid group's path against the current routing
// state. The harness calls it after injecting a topology event so standing
// reservations follow the reroute.
func (e *Engine) Repath() {
	if e.cfg.Mode == ModePacket || !e.started {
		return
	}
	e.cfg.Solver.Repath(func(id uint32) ([]fluid.LinkID, time.Duration, bool) {
		return e.cfg.PathOf(e.flows[id-1])
	})
	e.applyCompletions(e.cfg.Solver.Reallocate(e.sim.Now()))
}

func (e *Engine) launch(f *Flow) {
	f.launchedAt = e.sim.Now()
	f.launched = true
	f.gotMask = make([]uint64, (f.Packets+63)/64)
	f.pending = f.pending[:0]
	for seq := 0; seq < f.Packets; seq++ {
		f.pending = append(f.pending, uint32(seq))
	}
	if e.cfg.Mode == ModeHybrid {
		// The flow's real packets ride the residual serializer; its fair
		// share must still squeeze the fluid allocation, so the solver
		// models it as phantom demand until it finishes.
		if path, _, ok := e.cfg.PathOf(f); ok {
			e.phantoms = append(e.phantoms, phantomFlow{f: f, h: e.cfg.Solver.AdmitPhantom(path)})
		}
	}
	e.tick(f)
}

// tick is the per-flow sender: while sequences are pending it transmits one
// per PacketInterval; once drained it waits an RTO and re-offers whatever
// the receiver is still missing, up to MaxRounds.
func (e *Engine) tick(f *Flow) {
	if f.Done || f.Abandoned {
		return
	}
	if len(f.pending) == 0 {
		missing := f.missing()
		if len(missing) == 0 {
			return // completion races the check; the receive path recorded it
		}
		if f.rounds >= e.cfg.MaxRounds {
			f.Abandoned = true

			return
		}
		f.rounds++
		f.retx += len(missing)
		e.Retransmits += uint64(len(missing))
		f.pending = missing
	}
	seq := f.pending[0]
	f.pending = f.pending[1:]
	e.sendData(f, seq)
	wait := e.cfg.PacketInterval
	if len(f.pending) == 0 {
		wait = e.cfg.RTO
	}
	if f.timer != nil {
		f.timer.Reset(wait)
	} else {
		//simlint:shardsafe retransmit tick runs at the quiesce barrier with every shard idle; revisit under barrier-free sync
		f.timer = e.sim.After(wait, func() { e.tick(f) })
	}
}

// missing lists the sequences the receiver has not delivered, in order. The
// sender reading receiver state directly is the idealized-SACK shortcut
// documented in the package comment.
func (f *Flow) missing() []uint32 {
	var out []uint32
	for seq := uint32(0); seq < uint32(f.Packets); seq++ {
		if !f.got(seq) {
			out = append(out, seq)
		}
	}
	return out
}

func (e *Engine) sendData(f *Flow, seq uint32) {
	e.PacketsSent++
	payload := make([]byte, e.cfg.PacketSize)
	putU32(payload[0:], Magic)
	putU32(payload[4:], f.ID)
	putU32(payload[8:], seq)
	putU32(payload[12:], uint32(f.Packets))
	src, dst := e.hosts[f.Src], e.hosts[f.Dst]
	src.Stack.SendUDP(src.IP, dst.IP, f.SrcPort, e.cfg.DstPort, payload)
}

// onDatagram is the receive path, running on the destination host's event
// loop. local is that host's simulator: its clock is the arrival instant.
// Only per-flow state is touched here — a flow's packets all land on one
// host, so no two shards of a partitioned engine ever write the same Flow.
func (e *Engine) onDatagram(local *simnet.Sim, dg udp.Datagram) {
	p := dg.Payload
	if len(p) < wireHeaderLen || u32(p) != Magic {
		return
	}
	f := e.byID[u32(p[4:])]
	seq := u32(p[8:])
	if f == nil || seq >= uint32(f.Packets) {
		return
	}
	if f.got(seq) {
		f.dups++
		return
	}
	f.mark(seq)
	f.received++
	if f.received == f.Packets && !f.Done {
		f.Done = true
		//simlint:clocksafe launchedAt was stamped by a control event at a quiesce barrier, where the coordinator and shard clocks agree
		f.FCT = local.Now() - f.launchedAt
	}
}

// Done reports whether every flow has finished (completed or abandoned).
// Callers run at quiescent points, so reading flow flags written by other
// shards' receive handlers is safe.
func (e *Engine) Done() bool {
	for _, f := range e.flows {
		if !f.Done && !f.Abandoned {
			return false
		}
	}
	return true
}

// Flows exposes the schedule in generation order (read-only by convention).
func (e *Engine) Flows() []*Flow { return e.flows }

// --- reporting --------------------------------------------------------------

// Bucket is one flow-size class of the FCT report.
type Bucket struct {
	Label    string
	MaxBytes int // inclusive upper bound; flows above all buckets land in the last
}

// DefaultBuckets are the size classes of the harness tables: short queries,
// mid-size responses, heavy-tail bulk.
func DefaultBuckets() []Bucket {
	return []Bucket{
		{"S<=10KB", 10_000},
		{"M<=100KB", 100_000},
		{"L>100KB", 1 << 62},
	}
}

// BucketReport is the FCT sample of one size class, in milliseconds, in
// flow-generation order (deterministic run to run).
type BucketReport struct {
	Label     string
	Flows     int // flows of this size class launched
	Completed int
	FCTms     []float64
}

// Report is the engine's final accounting.
type Report struct {
	Flows       int
	Completed   int
	Abandoned   int
	Incomplete  int // launched or scheduled but neither completed nor abandoned at report time
	PacketsSent uint64
	Retransmits uint64
	Duplicates  uint64
	// FluidFlows counts flows routed through the fluid model (0 in
	// ModePacket).
	FluidFlows int
	// PeakConcurrent is the maximum number of flows in flight at once:
	// launched but not yet completed (abandoned and incomplete flows
	// count as in flight until the end of the run).
	PeakConcurrent int
	Buckets        []BucketReport
}

// CompletionRate is the completed fraction of all generated flows.
func (r Report) CompletionRate() float64 {
	if r.Flows == 0 {
		return 0
	}
	return float64(r.Completed) / float64(r.Flows)
}

// Report assembles the final accounting against the given size buckets
// (DefaultBuckets when nil).
func (e *Engine) Report(buckets []Bucket) Report {
	if buckets == nil {
		buckets = DefaultBuckets()
	}
	r := Report{
		Flows:       len(e.flows),
		PacketsSent: e.PacketsSent,
		Retransmits: e.Retransmits,
	}
	for _, f := range e.flows {
		switch {
		case f.Done:
			r.Completed++
		case f.Abandoned:
			r.Abandoned++
		}
		r.Duplicates += uint64(f.dups)
		if f.fluid {
			r.FluidFlows++
		}
	}
	r.Incomplete = r.Flows - r.Completed - r.Abandoned
	r.PeakConcurrent = e.peakConcurrent()
	for _, b := range buckets {
		r.Buckets = append(r.Buckets, BucketReport{Label: b.Label})
	}
	for _, f := range e.flows {
		idx := len(buckets) - 1
		for i, b := range buckets {
			if f.Bytes <= b.MaxBytes {
				idx = i
				break
			}
		}
		br := &r.Buckets[idx]
		br.Flows++
		if f.Done {
			br.Completed++
			br.FCTms = append(br.FCTms, float64(f.FCT)/float64(time.Millisecond))
		}
	}
	return r
}

// peakConcurrent sweeps launch/completion instants to find the maximum
// overlap. Flows that never finished keep their slot to the end of the run
// (their launch still counts; nothing ever releases it), which makes the
// figure an honest concurrency high-water mark even on overloaded runs.
func (e *Engine) peakConcurrent() int {
	starts := make([]time.Duration, 0, len(e.flows))
	ends := make([]time.Duration, 0, len(e.flows))
	for _, f := range e.flows {
		if !f.launched {
			continue
		}
		starts = append(starts, f.launchedAt)
		if f.Done {
			ends = append(ends, f.launchedAt+f.FCT)
		}
	}
	slices.Sort(starts)
	slices.Sort(ends)
	cur, peak, j := 0, 0, 0
	for _, s := range starts {
		for j < len(ends) && ends[j] <= s {
			cur--
			j++
		}
		cur++
		if cur > peak {
			peak = cur
		}
	}
	return peak
}

// Summaries reduces each bucket's FCT sample to descriptive statistics.
func (r Report) Summaries() []stats.Summary {
	out := make([]stats.Summary, len(r.Buckets))
	for i, b := range r.Buckets {
		out[i] = stats.Summarize(b.FCTms)
	}
	return out
}

func putU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
}

func u32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}
