package workload

import (
	"fmt"
	"time"

	"repro/internal/simnet"
	"repro/internal/stats"
)

// LinkSample is one observation of one transmit direction of a link.
type LinkSample struct {
	At time.Duration
	// TxBytes accepted into the serializer in the interval ending at At:
	// bytes offered by the sender minus egress tail-drops.
	TxBytes uint64
	// Util is TxBytes as a fraction of what the direction could carry in
	// the interval (0 when the link is unshaped, i.e. infinite capacity).
	Util float64
	// Queued is the egress-queue depth at sampling time.
	Queued int
	// Drops is the cumulative overflow-drop count for this direction.
	Drops uint64
	// Lost is the cumulative count of frames dropped in this direction by
	// loss injection (link loss, impairments, one-way faults).
	Lost uint64
	// Corrupted is the cumulative count of frames corrupted in this
	// direction by impairment injection.
	Corrupted uint64
	// FluidBytes is the bytes the fluid engine's reservation carried on
	// this direction in the interval (0 in packet mode). Util already
	// includes them.
	FluidBytes uint64
}

// LinkSeries is the time series of one link direction.
type LinkSeries struct {
	Name    string // "L-1-1:eth1->S-1-1:eth3"
	Samples []LinkSample

	from      *simnet.Port
	link      *simnet.Link
	lastTx    uint64
	lastDropB uint64
	lastFluid uint64
}

// PoolSample is one observation of the engine's frame-pool occupancy:
// the runtime counterpart of the lifetime analyzer's leak-on-path check.
// A monotonic InUse climb on a closed workload is a leaked buffer.
//
// Every field is invariant under the shard count: samples are taken at the
// quiesce barrier where the summed InUse is schedule-independent, Peak is
// the running maximum of those sampled values (not the pools' internal
// high-water marks, which depend on per-shard interleaving), and Recycled
// counts buffers returned for reuse (the pools' bucket-hit counters depend
// on per-shard locality). Workload artifacts stay bit-identical at any
// shard count.
type PoolSample struct {
	At time.Duration
	// InUse is the number of lent pool buffers not yet returned.
	InUse int
	// Peak is the high-water mark of sampled InUse.
	Peak int
	// Recycled is the cumulative count of buffers returned to the pool
	// for reuse.
	Recycled uint64
}

// Sampler polls link counters on a fixed virtual-time cadence: the
// utilization / queue-depth / drop telemetry a production fabric would
// scrape from switch ASICs. It also snapshots frame-pool occupancy each
// tick so buffer leaks show up in the same time series.
type Sampler struct {
	sim      simnet.Engine
	interval time.Duration
	series   []*LinkSeries
	pool     []PoolSample
	poolPeak int
	timer    *simnet.Timer
}

// NewSampler creates a sampler polling every interval once started.
func NewSampler(sim simnet.Engine, interval time.Duration) *Sampler {
	if interval <= 0 {
		interval = 10 * time.Millisecond
	}
	return &Sampler{sim: sim, interval: interval}
}

// Watch adds both directions of a link to the sample set.
func (s *Sampler) Watch(l *simnet.Link) {
	add := func(from, to *simnet.Port) {
		s.series = append(s.series, &LinkSeries{
			Name: fmt.Sprintf("%s->%s", from.Name(), to.Name()),
			from: from,
			link: l,
		})
	}
	add(l.A, l.B)
	add(l.B, l.A)
}

// Start records the baseline and begins sampling. Call after Watch.
func (s *Sampler) Start() {
	for _, sr := range s.series {
		sr.lastTx = sr.from.Counters.TxBytes
		sr.lastDropB = s.link(sr).OverflowBytes
		sr.lastFluid = sr.link.FluidBytes(sr.from, s.sim.Now())
	}
	//simlint:shardsafe sampler reads link counters at the quiesce barrier with every shard idle; revisit under barrier-free sync
	s.timer = s.sim.After(s.interval, s.sample)
}

// Stop ends sampling.
func (s *Sampler) Stop() {
	if s.timer != nil {
		s.timer.Stop()
	}
}

func (s *Sampler) sample() {
	now := s.sim.Now()
	for _, sr := range s.series {
		tx := sr.from.Counters.TxBytes
		ls := s.link(sr)
		fluid := sr.link.FluidBytes(sr.from, now)
		smp := LinkSample{
			At:         now,
			TxBytes:    (tx - sr.lastTx) - (ls.OverflowBytes - sr.lastDropB),
			Queued:     ls.Queued,
			Drops:      ls.Overflows,
			Lost:       ls.Lost,
			Corrupted:  ls.Corrupted,
			FluidBytes: fluid - sr.lastFluid,
		}
		if bps := sr.link.Bandwidth(); bps > 0 {
			// Utilization counts both engines' traffic: real packet
			// bytes plus the fluid reservation's carried bytes.
			capacity := float64(bps) / 8 * s.interval.Seconds()
			smp.Util = float64(smp.TxBytes+smp.FluidBytes) / capacity
		}
		sr.lastTx = tx
		sr.lastDropB = ls.OverflowBytes
		sr.lastFluid = fluid
		sr.Samples = append(sr.Samples, smp)
	}
	fs := s.sim.FrameStats()
	if len(s.pool) == 0 || fs.InUse > s.poolPeak {
		s.poolPeak = fs.InUse
	}
	s.pool = append(s.pool, PoolSample{At: now, InUse: fs.InUse, Peak: s.poolPeak, Recycled: fs.Returned})
	s.timer.Reset(s.interval)
}

func (s *Sampler) link(sr *LinkSeries) simnet.LinkStats {
	return sr.link.Stats(sr.from)
}

// Series returns every watched direction's time series.
func (s *Sampler) Series() []*LinkSeries { return s.series }

// PoolSeries returns the sampled frame-pool occupancy over the run.
func (s *Sampler) PoolSeries() []PoolSample { return s.pool }

// PeakQueue returns the deepest egress queue observed across all series.
func (s *Sampler) PeakQueue() int {
	peak := 0
	for _, sr := range s.series {
		for _, smp := range sr.Samples {
			if smp.Queued > peak {
				peak = smp.Queued
			}
		}
	}
	return peak
}

// PeakUtil returns the highest per-interval utilization observed.
func (s *Sampler) PeakUtil() float64 {
	peak := 0.0
	for _, sr := range s.series {
		for _, smp := range sr.Samples {
			if smp.Util > peak {
				peak = smp.Util
			}
		}
	}
	return peak
}

// TotalDrops sums the final cumulative overflow drops across all series.
func (s *Sampler) TotalDrops() uint64 {
	var total uint64
	for _, sr := range s.series {
		if n := len(sr.Samples); n > 0 {
			total += sr.Samples[n-1].Drops
		}
	}
	return total
}

// --- uplink load balance ----------------------------------------------------

// Group is one set of equal-cost uplinks (a device's uplink ports): the
// unit over which hashing is supposed to spread load.
type Group struct {
	Name  string
	Ports []*simnet.Port
}

// GroupLoad is the measured spread of one group.
type GroupLoad struct {
	Name  string
	Bytes []uint64 // per uplink, since the meter's baseline
	// MaxOverMean is the classic imbalance index: 1.0 is perfect. Groups
	// that carried nothing report 1.0.
	MaxOverMean float64
	// Jain is Jain's fairness index: 1.0 is perfect, 1/n is worst.
	Jain float64
}

// LoadMeter measures per-uplink byte spread between two instants: it
// snapshots TxBytes (and fluid-reservation) baselines at creation and
// computes indices at Read, so the balance indices see both engines'
// traffic.
type LoadMeter struct {
	sim    simnet.Engine
	groups []Group
	base   [][]uint64
}

// NewLoadMeter snapshots the baseline transmit counters of every group.
// sim supplies the control clock the fluid byte integrals are read at;
// call from quiescent points only.
func NewLoadMeter(sim simnet.Engine, groups []Group) *LoadMeter {
	m := &LoadMeter{sim: sim, groups: groups}
	now := sim.Now()
	for _, g := range groups {
		base := make([]uint64, len(g.Ports))
		for i, p := range g.Ports {
			base[i] = p.Counters.TxBytes + p.Link.FluidBytes(p, now)
		}
		m.base = append(m.base, base)
	}
	return m
}

// Read computes each group's byte spread since the baseline, in group
// order.
func (m *LoadMeter) Read() []GroupLoad {
	now := m.sim.Now()
	out := make([]GroupLoad, 0, len(m.groups))
	for gi, g := range m.groups {
		gl := GroupLoad{Name: g.Name, Bytes: make([]uint64, len(g.Ports))}
		var total, max uint64
		var sumSq float64
		for i, p := range g.Ports {
			b := p.Counters.TxBytes + p.Link.FluidBytes(p, now) - m.base[gi][i]
			gl.Bytes[i] = b
			total += b
			if b > max {
				max = b
			}
			sumSq += float64(b) * float64(b)
		}
		if total == 0 || len(g.Ports) == 0 {
			gl.MaxOverMean, gl.Jain = 1, 1
		} else {
			mean := float64(total) / float64(len(g.Ports))
			gl.MaxOverMean = float64(max) / mean
			gl.Jain = float64(total) * float64(total) / (float64(len(g.Ports)) * sumSq)
		}
		out = append(out, gl)
	}
	return out
}

// ImbalanceSummary reduces group imbalance indices to descriptive
// statistics, ignoring idle groups (they carry no signal).
func ImbalanceSummary(loads []GroupLoad) (maxOverMean stats.Summary, jainMean float64) {
	var ratios []float64
	var jains float64
	n := 0
	for _, gl := range loads {
		idle := true
		for _, b := range gl.Bytes {
			if b > 0 {
				idle = false
				break
			}
		}
		if idle {
			continue
		}
		ratios = append(ratios, gl.MaxOverMean)
		jains += gl.Jain
		n++
	}
	if n > 0 {
		jainMean = jains / float64(n)
	}
	return stats.Summarize(ratios), jainMean
}
