package workload

import (
	"fmt"
	"math"
)

// SizeDist draws flow sizes. Sample is an inverse-CDF transform: the caller
// supplies u ∈ [0,1) from its own random source, so a distribution is pure
// data and every draw is reproducible from the generator's seed.
type SizeDist interface {
	Name() string
	// Sample returns a flow size in bytes for the quantile u.
	Sample(u float64) int
}

// FixedSize is the degenerate distribution: every flow carries the same
// number of bytes. Used by tests and the incast pattern's classic form.
type FixedSize int

// Name implements SizeDist.
func (f FixedSize) Name() string { return fmt.Sprintf("fixed-%dB", int(f)) }

// Sample implements SizeDist.
func (f FixedSize) Sample(float64) int { return int(f) }

// cdfPoint anchors an empirical CDF: cum of the flows are at most bytes.
type cdfPoint struct {
	bytes float64
	cum   float64
}

// empirical interpolates log-linearly between anchor points, the standard
// way DCN studies (DCTCP, FatPaths) encode measured flow-size mixes. Flow
// sizes below the first anchor start at minBytes.
type empirical struct {
	name     string
	minBytes float64
	points   []cdfPoint
}

func (e empirical) Name() string { return e.name }

func (e empirical) Sample(u float64) int {
	if u < 0 {
		u = 0
	}
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	prev := cdfPoint{bytes: e.minBytes, cum: 0}
	for _, p := range e.points {
		if u <= p.cum {
			frac := (u - prev.cum) / (p.cum - prev.cum)
			b := math.Exp(math.Log(prev.bytes) + frac*(math.Log(p.bytes)-math.Log(prev.bytes)))
			return int(math.Ceil(b))
		}
		prev = p
	}
	return int(e.points[len(e.points)-1].bytes)
}

// WebSearchMix approximates the web-search workload shape every DCN
// load-balancing study stresses: most flows are short queries, a heavy tail
// of multi-hundred-KB responses carries most of the bytes. The anchors are
// scaled so a simulated run stays in the tens of thousands of packets while
// keeping ~50% of bytes in the top decile of flows.
func WebSearchMix() SizeDist {
	return empirical{
		name:     "websearch",
		minBytes: 200,
		points: []cdfPoint{
			{1_000, 0.15},
			{5_000, 0.35},
			{10_000, 0.55},
			{30_000, 0.75},
			{100_000, 0.90},
			{300_000, 0.97},
			{1_000_000, 1.0},
		},
	}
}

// CacheMix approximates a cache-follower workload: overwhelmingly tiny
// object reads with rare large fills.
func CacheMix() SizeDist {
	return empirical{
		name:     "cache",
		minBytes: 128,
		points: []cdfPoint{
			{512, 0.40},
			{1_000, 0.60},
			{2_000, 0.75},
			{5_000, 0.85},
			{20_000, 0.93},
			{100_000, 0.98},
			{500_000, 1.0},
		},
	}
}

// MixByName resolves a distribution name for CLI flags.
func MixByName(name string) (SizeDist, error) {
	switch name {
	case "websearch":
		return WebSearchMix(), nil
	case "cache":
		return CacheMix(), nil
	default:
		return nil, fmt.Errorf("workload: unknown size mix %q (want websearch or cache)", name)
	}
}

// Pattern selects how flow endpoints are paired.
type Pattern int

// Traffic patterns from the DCN load-balancing literature.
const (
	// PatternRandom pairs a uniformly random source with a uniformly
	// random destination in a different rack — the all-to-all mix.
	PatternRandom Pattern = iota
	// PatternPermutation fixes a rack-shifting derangement and cycles
	// sources through it: every host sends to one fixed partner, the
	// worst case for a static hash with few flows.
	PatternPermutation
	// PatternIncast points every flow at one victim host, the
	// many-to-one pattern that stresses the victim's rack egress queue.
	PatternIncast
)

func (p Pattern) String() string {
	switch p {
	case PatternRandom:
		return "random"
	case PatternPermutation:
		return "permutation"
	case PatternIncast:
		return "incast"
	}
	return fmt.Sprintf("Pattern(%d)", int(p))
}

// PatternByName resolves a pattern name for CLI flags.
func PatternByName(name string) (Pattern, error) {
	switch name {
	case "random":
		return PatternRandom, nil
	case "permutation":
		return PatternPermutation, nil
	case "incast":
		return PatternIncast, nil
	default:
		return 0, fmt.Errorf("workload: unknown pattern %q (want random, permutation or incast)", name)
	}
}
