package workload

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"time"

	"repro/internal/ipstack"
	"repro/internal/netaddr"
	"repro/internal/simnet"
)

func TestSizeDistBoundedAndMonotonic(t *testing.T) {
	for _, dist := range []SizeDist{WebSearchMix(), CacheMix()} {
		prev := 0
		for i := 0; i <= 1000; i++ {
			u := float64(i) / 1000
			b := dist.Sample(u)
			if b < prev {
				t.Fatalf("%s: Sample not monotonic at u=%.3f: %d < %d", dist.Name(), u, b, prev)
			}
			prev = b
		}
		if min := dist.Sample(0); min < 64 {
			t.Errorf("%s: Sample(0) = %d, implausibly small", dist.Name(), min)
		}
		if max := dist.Sample(0.9999999); max > 1_000_001 {
			t.Errorf("%s: Sample(~1) = %d, above the top anchor", dist.Name(), max)
		}
	}
	if got := FixedSize(5000).Sample(0.7); got != 5000 {
		t.Errorf("FixedSize sample = %d", got)
	}
}

func TestSizeDistHeavyTail(t *testing.T) {
	// The websearch mix must put the majority of bytes in the large
	// minority of flows — the property that makes hashing collisions
	// visible in byte imbalance.
	dist := WebSearchMix()
	rng := rand.New(rand.NewSource(7))
	var total, topDecile float64
	var sizes []float64
	for i := 0; i < 20000; i++ {
		sizes = append(sizes, float64(dist.Sample(rng.Float64())))
	}
	for _, s := range sizes {
		total += s
	}
	sorted := append([]float64(nil), sizes...)
	sort.Float64s(sorted)
	cut := sorted[len(sorted)*9/10]
	for _, s := range sizes {
		if s >= cut {
			topDecile += s
		}
	}
	if frac := topDecile / total; frac < 0.4 {
		t.Errorf("top-decile flows carry %.2f of bytes, want heavy tail (>0.4)", frac)
	}
}

// rig is a minimal two-rack testbed: two hosts joined by one router.
type rig struct {
	sim    *simnet.Sim
	hosts  []Host
	router *simnet.Node
}

func newRig(t *testing.T, seed int64) *rig {
	t.Helper()
	sim := simnet.New(seed)
	a, r, b := sim.AddNode("h-a"), sim.AddNode("router"), sim.AddNode("h-b")
	sa, sr, sb := ipstack.New(a), ipstack.New(r), ipstack.New(b)
	sim.Connect(a.AddPort(), r.AddPort())
	sim.Connect(r.AddPort(), b.AddPort())
	s1 := netaddr.MakePrefix(netaddr.MakeIPv4(10, 1, 0, 0), 24)
	s2 := netaddr.MakePrefix(netaddr.MakeIPv4(10, 2, 0, 0), 24)
	i1 := sa.AddIface(a.Port(1), s1.Host(1), s1)
	sr.AddIface(r.Port(1), s1.Host(254), s1)
	sr.AddIface(r.Port(2), s2.Host(254), s2)
	i2 := sb.AddIface(b.Port(1), s2.Host(1), s2)
	sa.AddDefaultRoute(s1.Host(254), i1)
	sb.AddDefaultRoute(s2.Host(254), i2)
	return &rig{
		sim: sim,
		hosts: []Host{
			{Stack: sa, IP: s1.Host(1), Name: "h-a", Rack: "ra"},
			{Stack: sb, IP: s2.Host(1), Name: "h-b", Rack: "rb"},
		},
		router: r,
	}
}

func smallConfig(seed int64) Config {
	cfg := DefaultConfig(seed)
	cfg.Flows = 12
	cfg.Sizes = FixedSize(4000)
	cfg.MeanArrival = 2 * time.Millisecond
	return cfg
}

func TestEngineCompletesAllFlows(t *testing.T) {
	w := newRig(t, 1)
	e, err := New(nil, w.hosts, smallConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	w.sim.RunFor(2 * time.Second)
	if !e.Done() {
		t.Fatal("engine not done after 2s of virtual time")
	}
	r := e.Report(nil)
	if r.Completed != r.Flows || r.Abandoned != 0 || r.Incomplete != 0 {
		t.Fatalf("report %+v, want all %d complete", r, r.Flows)
	}
	if r.Retransmits != 0 {
		t.Errorf("lossless path needed %d retransmits", r.Retransmits)
	}
	if r.CompletionRate() != 1 {
		t.Errorf("completion rate = %v", r.CompletionRate())
	}
	// 4000B at 1000B packets = 4 packets per flow.
	if want := uint64(12 * 4); r.PacketsSent != want {
		t.Errorf("packets sent = %d, want %d", r.PacketsSent, want)
	}
	var fct int
	for _, b := range r.Buckets {
		fct += len(b.FCTms)
		for _, ms := range b.FCTms {
			if ms <= 0 {
				t.Errorf("bucket %s has non-positive FCT %v", b.Label, ms)
			}
		}
	}
	if fct != r.Completed {
		t.Errorf("bucketed FCT count %d != completed %d", fct, r.Completed)
	}
}

func TestEngineDeterministic(t *testing.T) {
	run := func() Report {
		w := newRig(t, 1)
		cfg := smallConfig(5)
		cfg.Sizes = WebSearchMix()
		e, err := New(nil, w.hosts, cfg)
		if err != nil {
			t.Fatal(err)
		}
		e.Start()
		w.sim.RunFor(5 * time.Second)
		return e.Report(nil)
	}
	r1, r2 := run(), run()
	if !reflect.DeepEqual(r1, r2) {
		t.Errorf("same seed, different reports:\n%+v\n%+v", r1, r2)
	}
}

func TestEngineRepairsAcrossOutage(t *testing.T) {
	// Black-hole the path while flows are in flight; the repair rounds
	// must finish every flow once the path heals, with the stall visible
	// in the FCT tail.
	w := newRig(t, 1)
	cfg := smallConfig(7)
	cfg.Flows = 6
	cfg.MeanArrival = 5 * time.Millisecond
	e, err := New(nil, w.hosts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	w.sim.RunFor(10 * time.Millisecond)
	w.router.Port(2).Fail()
	w.sim.RunFor(300 * time.Millisecond)
	w.router.Port(2).Restore()
	w.sim.RunFor(5 * time.Second)
	if !e.Done() {
		t.Fatal("flows not repaired after the outage healed")
	}
	r := e.Report(nil)
	if r.Completed != r.Flows {
		t.Fatalf("completed %d/%d", r.Completed, r.Flows)
	}
	if r.Retransmits == 0 {
		t.Error("outage produced no retransmits")
	}
	maxFCT := 0.0
	for _, b := range r.Buckets {
		for _, ms := range b.FCTms {
			if ms > maxFCT {
				maxFCT = ms
			}
		}
	}
	if maxFCT < 250 {
		t.Errorf("max FCT %.1fms does not reflect the ~300ms outage", maxFCT)
	}
}

func TestPatternPairing(t *testing.T) {
	hosts := []Host{
		{Name: "a1", Rack: "a"}, {Name: "a2", Rack: "a"},
		{Name: "b1", Rack: "b"}, {Name: "b2", Rack: "b"},
	}
	e := &Engine{hosts: hosts, cfg: Config{Pattern: PatternPermutation}}
	pair := e.pairer(rand.New(rand.NewSource(1)))
	for i := 0; i < 8; i++ {
		src, dst := pair(i)
		if hosts[src].Rack == hosts[dst].Rack {
			t.Errorf("permutation paired %s with %s (same rack)", hosts[src].Name, hosts[dst].Name)
		}
	}
	e.cfg.Pattern = PatternIncast
	pair = e.pairer(rand.New(rand.NewSource(1)))
	for i := 0; i < 8; i++ {
		src, dst := pair(i)
		if dst != 0 || src == 0 {
			t.Errorf("incast flow %d: src=%d dst=%d, want all into host 0", i, src, dst)
		}
	}
	e.cfg.Pattern = PatternRandom
	pair = e.pairer(rand.New(rand.NewSource(1)))
	for i := 0; i < 32; i++ {
		src, dst := pair(i)
		if src == dst || hosts[src].Rack == hosts[dst].Rack {
			t.Errorf("random pairing %d: %d->%d not cross-rack", i, src, dst)
		}
	}
}

func TestSamplerSeriesAndDrops(t *testing.T) {
	sim := simnet.New(1)
	a, b := sim.AddNode("a"), sim.AddNode("b")
	b.Handler = ipstack.New(b)
	a.Handler = ipstack.New(a)
	link := sim.ConnectLatency(a.AddPort(), b.AddPort(), 0)
	link.SetBandwidth(8_000_000, 4) // 1 MB/s, 4-frame queue

	s := NewSampler(sim, 10*time.Millisecond)
	s.Watch(link)
	s.Start()

	// Offer 2x capacity for 100 ms: utilization should pin near 1 and the
	// queue must overflow. Send takes ownership of its buffer (frames that
	// tail-drop are recycled into the pool), so each call gets a fresh one.
	var offer func()
	n := 0
	offer = func() {
		a.Port(1).Send(make([]byte, 1000))
		a.Port(1).Send(make([]byte, 1000))
		if n++; n < 100 {
			sim.After(time.Millisecond, offer)
		}
	}
	offer()
	sim.RunFor(200 * time.Millisecond)
	s.Stop()

	if len(s.Series()) != 2 {
		t.Fatalf("series count = %d, want both directions", len(s.Series()))
	}
	fwd := s.Series()[0]
	if len(fwd.Samples) < 15 {
		t.Fatalf("only %d samples over 200ms at 10ms cadence", len(fwd.Samples))
	}
	// The first interval can exceed 1.0 by the queue growth it absorbed;
	// steady-state intervals must sit at the wire rate.
	if peak := s.PeakUtil(); peak < 0.9 || peak > 1.5 {
		t.Errorf("peak utilization %.2f, want ~1.0-1.4 on a saturated link", peak)
	}
	for i := 2; i < 9; i++ {
		if u := fwd.Samples[i].Util; u < 0.95 || u > 1.05 {
			t.Errorf("steady-state sample %d utilization %.2f, want ~1.0", i, u)
		}
	}
	if s.PeakQueue() == 0 {
		t.Error("saturated link never showed a queued frame")
	}
	if s.TotalDrops() == 0 {
		t.Error("2x overload never dropped at a 4-frame queue")
	}
	// Reverse direction is idle.
	rev := s.Series()[1]
	for _, smp := range rev.Samples {
		if smp.TxBytes != 0 || smp.Drops != 0 {
			t.Fatalf("idle direction recorded traffic: %+v", smp)
		}
	}
	// Frame-pool occupancy is sampled on the same ticks as the links.
	pool := s.PoolSeries()
	if len(pool) != len(fwd.Samples) {
		t.Fatalf("pool samples = %d, want %d (one per tick)", len(pool), len(fwd.Samples))
	}
	for i, ps := range pool {
		if ps.At != fwd.Samples[i].At {
			t.Fatalf("pool sample %d at %v, link sample at %v", i, ps.At, fwd.Samples[i].At)
		}
		if ps.Peak < ps.InUse {
			t.Fatalf("pool sample %d: peak %d below in-use %d", i, ps.Peak, ps.InUse)
		}
	}
	if last := pool[len(pool)-1]; last.Recycled == 0 {
		t.Error("a saturated link tail-dropping frames never returned a buffer to the pool")
	}
}

func TestSamplerSurfacesImpairmentCounters(t *testing.T) {
	// Lost/Corrupted from the link's impairment state must reach the
	// telemetry samples, per direction, so the workload CSV can show
	// where a gray failure sat.
	sim := simnet.New(3)
	a, b := sim.AddNode("a"), sim.AddNode("b")
	a.Handler, b.Handler = ipstack.New(a), ipstack.New(b)
	link := sim.ConnectLatency(a.AddPort(), b.AddPort(), 0)
	link.Impair(a.Port(1), simnet.Impairment{LossRate: 0.5, CorruptRate: 0.5})

	s := NewSampler(sim, 10*time.Millisecond)
	s.Watch(link)
	s.Start()
	// Fresh buffer per Send: ownership passes to the simulator, and lost
	// frames are recycled into the pool.
	for i := 0; i < 50; i++ {
		sim.After(time.Duration(i)*time.Millisecond, func() { a.Port(1).Send(make([]byte, 100)) })
	}
	sim.RunFor(100 * time.Millisecond)
	s.Stop()

	fwd := s.Series()[0]
	last := fwd.Samples[len(fwd.Samples)-1]
	if last.Lost == 0 {
		t.Error("50% loss on 50 frames surfaced no Lost count")
	}
	if last.Corrupted == 0 {
		t.Error("50% corruption on 50 frames surfaced no Corrupted count")
	}
	rev := s.Series()[1]
	for _, smp := range rev.Samples {
		if smp.Lost != 0 || smp.Corrupted != 0 {
			t.Fatalf("clean reverse direction recorded impairments: %+v", smp)
		}
	}
}

func TestLoadMeterIndices(t *testing.T) {
	sim := simnet.New(1)
	a, b, c := sim.AddNode("a"), sim.AddNode("b"), sim.AddNode("c")
	b.Handler = ipstack.New(b)
	c.Handler = ipstack.New(c)
	sim.Connect(a.AddPort(), b.AddPort())
	sim.Connect(a.AddPort(), c.AddPort())
	g := Group{Name: "a-uplinks", Ports: []*simnet.Port{a.Port(1), a.Port(2)}}
	idle := Group{Name: "idle", Ports: []*simnet.Port{b.Port(1)}}
	m := NewLoadMeter(sim, []Group{g, idle})

	a.Port(1).Send(make([]byte, 3000))
	a.Port(2).Send(make([]byte, 1000))
	sim.RunFor(time.Millisecond)

	loads := m.Read()
	if got := loads[0].MaxOverMean; got != 1.5 {
		t.Errorf("max/mean = %v, want 1.5 (3000 vs mean 2000)", got)
	}
	// Jain for (3000,1000): 16e6/(2*10e6) = 0.8.
	if got := loads[0].Jain; got < 0.799 || got > 0.801 {
		t.Errorf("jain = %v, want 0.8", got)
	}
	if loads[1].MaxOverMean != 1 || loads[1].Jain != 1 {
		t.Errorf("idle group = %+v, want neutral indices", loads[1])
	}
	summary, jain := ImbalanceSummary(loads)
	if summary.N != 1 {
		t.Errorf("idle group included in summary: %+v", summary)
	}
	if jain < 0.799 || jain > 0.801 {
		t.Errorf("jain mean = %v", jain)
	}
}
