package pathtrace

import (
	"testing"
	"time"

	"repro/internal/icmp"
	"repro/internal/ipv4"
	"repro/internal/netaddr"
)

type fakeClock struct{ now time.Duration }

func (c *fakeClock) Now() time.Duration { return c.now }

// fakeFabric answers probes like a linear path of routers: hop i replies
// time-exceeded from 10.0.0.i, the destination (hop == pathLen) replies
// port-unreachable. Setting drop[ttl] swallows that hop's probes.
type fakeFabric struct {
	tracer  *Tracer
	pathLen int
	drop    map[int]bool
	sent    int
}

func (f *fakeFabric) SendProbe(ipWire []byte, hopLimit int) {
	f.sent++
	if f.drop[hopLimit] {
		return
	}
	wire := append([]byte(nil), ipWire...)
	var m icmp.Message
	var from netaddr.IPv4
	if hopLimit >= f.pathLen {
		m = icmp.PortUnreachable(wire)
		from = netaddr.MakeIPv4(10, 0, 0, byte(f.pathLen))
	} else {
		m = icmp.TimeExceeded(wire)
		from = netaddr.MakeIPv4(10, 0, 0, byte(hopLimit))
	}
	// Round-trip through marshalling, as a real reply would.
	reply, err := icmp.Unmarshal(m.Marshal())
	if err != nil {
		panic(err)
	}
	f.tracer.Dispatch(from, reply)
}

func newFakeTrace(pathLen, maxTTL int) (*Tracer, *Prober, *fakeFabric, *fakeClock) {
	tr := &Tracer{}
	clock := &fakeClock{}
	fab := &fakeFabric{tracer: tr, pathLen: pathLen, drop: map[int]bool{}}
	p := tr.AddProber(ProberConfig{
		Src:    netaddr.MakeIPv4(192, 168, 11, 254),
		Dst:    netaddr.MakeIPv4(192, 168, 14, 254),
		MaxTTL: maxTTL,
	}, clock, fab)
	return tr, p, fab, clock
}

func TestProberHopAttribution(t *testing.T) {
	_, p, _, clock := newFakeTrace(3, 4)
	for i := 0; i < 10; i++ {
		p.Tick()
		clock.now += 50 * time.Millisecond
	}
	snap := p.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("got %d cells, want 4", len(snap))
	}
	for ttl := 1; ttl <= 3; ttl++ {
		c := snap[ttl-1]
		if !c.Seen || c.Addr != netaddr.MakeIPv4(10, 0, 0, byte(ttl)) {
			t.Errorf("ttl %d: addr = %s seen=%v, want 10.0.0.%d", ttl, c.Addr, c.Seen, ttl)
		}
		wantReached := ttl == 3
		if c.Reached != wantReached {
			t.Errorf("ttl %d: reached = %v, want %v", ttl, c.Reached, wantReached)
		}
		if c.LossEWMA != 0 || c.Lost != 0 {
			t.Errorf("ttl %d: loss %d ewma %f on a clean path", ttl, c.Lost, c.LossEWMA)
		}
	}
	// TTL 4 walks past the destination: port-unreachable again (the fake
	// keeps answering), mirroring how real traceroute clamps at the target.
	if snap[3].Addr != netaddr.MakeIPv4(10, 0, 0, 3) {
		t.Errorf("ttl 4 addr = %s, want destination", snap[3].Addr)
	}
}

func TestProberLossAccounting(t *testing.T) {
	_, p, fab, clock := newFakeTrace(3, 3)
	fab.drop[2] = true
	rounds := 12
	for i := 0; i < rounds; i++ {
		p.Tick()
		clock.now += 50 * time.Millisecond
	}
	snap := p.Snapshot()
	if snap[0].Lost != 0 || snap[2].Lost != 0 {
		t.Errorf("healthy hops recorded loss: %d %d", snap[0].Lost, snap[2].Lost)
	}
	// Hop 2 drops everything; all but the last `grace` probes have been
	// finalized as lost.
	wantLost := uint64(rounds - grace)
	if snap[1].Lost != wantLost {
		t.Errorf("hop 2 lost = %d, want %d", snap[1].Lost, wantLost)
	}
	if snap[1].LossEWMA < 0.8 {
		t.Errorf("hop 2 loss EWMA = %f, want near 1", snap[1].LossEWMA)
	}
	if snap[1].Seen {
		t.Error("hop 2 marked seen with every probe dropped")
	}
}

func TestProberRTTQuantiles(t *testing.T) {
	tr := &Tracer{}
	clock := &fakeClock{}
	// Answer after advancing the clock, simulating a 7ms RTT.
	var prober *Prober
	lag := 7 * time.Millisecond
	fab := &deferredFabric{tracer: tr, clock: clock, lag: lag}
	prober = tr.AddProber(ProberConfig{MaxTTL: 1,
		Src: netaddr.MakeIPv4(1, 1, 1, 1), Dst: netaddr.MakeIPv4(2, 2, 2, 2)}, clock, fab)
	_ = prober
	for i := 0; i < 10; i++ {
		tr.Probers()[0].Tick()
		clock.now += 50 * time.Millisecond
	}
	snap := tr.Snapshot()
	if got := snap[0].RTTP50; got != lag {
		t.Errorf("RTT P50 = %v, want %v", got, lag)
	}
	if got := snap[0].RTTP95; got != lag {
		t.Errorf("RTT P95 = %v, want %v", got, lag)
	}
}

// deferredFabric advances the clock before answering, so replies carry a
// nonzero RTT.
type deferredFabric struct {
	tracer *Tracer
	clock  *fakeClock
	lag    time.Duration
}

func (f *deferredFabric) SendProbe(ipWire []byte, hopLimit int) {
	wire := append([]byte(nil), ipWire...)
	f.clock.now += f.lag
	m := icmp.PortUnreachable(wire)
	reply, err := icmp.Unmarshal(m.Marshal())
	if err != nil {
		panic(err)
	}
	f.tracer.Dispatch(netaddr.MakeIPv4(2, 2, 2, 2), reply)
	f.clock.now -= f.lag // Tick's send loop continues at the send time
}

func TestDispatchIgnoresForeignICMP(t *testing.T) {
	tr, _, _, _ := newFakeTrace(3, 3)
	// Echo replies and unrelated errors must not be claimed.
	if tr.Dispatch(netaddr.MakeIPv4(1, 2, 3, 4), icmp.Message{Type: icmp.TypeEchoReply}) {
		t.Error("claimed an echo reply")
	}
	pkt := ipv4.Packet{Header: ipv4.Header{Protocol: ipv4.ProtoUDP, TTL: 1,
		Src: netaddr.MakeIPv4(9, 9, 9, 9), Dst: netaddr.MakeIPv4(8, 8, 8, 8)},
		Payload: []byte{0x12, 0x34, 0x00, 0x35, 0, 8, 0, 0}}
	teMsg := icmp.TimeExceeded(pkt.Marshal())
	te, _ := icmp.Unmarshal(teMsg.Marshal())
	if tr.Dispatch(netaddr.MakeIPv4(1, 2, 3, 4), te) {
		t.Error("claimed a quote for a foreign UDP flow")
	}
}

func mkCell(prober, ttl int, sent uint64, loss float64, cover ...DirectedLink) Cell {
	c := Cell{Cover: cover}
	c.Prober = prober
	c.TTL = ttl
	c.Sent = sent
	c.LossEWMA = loss
	c.Seen = true
	return c
}

func TestLocalizerIsolatesLossyLink(t *testing.T) {
	l := NewLocalizer(DefaultLocalizerConfig())
	bad := DirectedLink{"S-1-1", "T-1"}
	down := DirectedLink{"T-1", "S-1-1"}
	up2 := DirectedLink{"S-1-2", "T-2"}
	leaf := DirectedLink{"L-1-1", "S-1-1"}

	healthy := func(now time.Duration) []Cell {
		return []Cell{
			mkCell(0, 1, 40, 0, leaf),
			mkCell(0, 2, 40, 0, leaf, bad, down),
			mkCell(1, 2, 40, 0, up2),
			mkCell(2, 2, 40, 0, down), // cross-traffic over the reverse direction
		}
	}
	l.Arm(0, healthy(0))
	if acc := l.Sweep(100*time.Millisecond, healthy(100*time.Millisecond)); acc != nil {
		t.Fatalf("healthy sweep accused %v", acc)
	}

	// Fault: cells crossing S-1-1->T-1 go lossy; the reverse direction
	// stays covered by a healthy cross-traffic cell (purity 1/2 under
	// MinPurity), while leaf is half-exonerated by the clean TTL-1 cell —
	// only the lossy direction survives the candidate filter.
	lossy := []Cell{
		mkCell(0, 1, 60, 0, leaf),
		mkCell(0, 2, 60, 0.9, leaf, bad, down),
		mkCell(1, 2, 60, 0.85, bad),
		mkCell(2, 2, 60, 0, down),
	}
	// The leader must persist for PersistSweeps consecutive sweeps before
	// it is accused.
	now := 200 * time.Millisecond
	for i := 1; i < DefaultLocalizerConfig().PersistSweeps; i++ {
		if acc := l.Sweep(now, lossy); acc != nil {
			t.Fatalf("sweep %d accused %v before the streak matured", i, acc)
		}
		now += 100 * time.Millisecond
	}
	acc := l.Sweep(now, lossy)
	if len(acc) != 1 || acc[0].Link != bad {
		t.Fatalf("accused %v, want %v", acc, bad)
	}
	if acc[0].Cells != 2 || acc[0].Latency {
		t.Errorf("accusation detail = %+v", acc[0])
	}
	// The same link is never accused twice.
	if acc := l.Sweep(now+100*time.Millisecond, lossy); acc != nil {
		t.Errorf("re-accused %v", acc)
	}
	if got := l.Accusations(); len(got) != 1 || got[0].Link != bad {
		t.Errorf("Accusations() = %v", got)
	}
}

func TestLocalizerAmbiguityDefers(t *testing.T) {
	l := NewLocalizer(DefaultLocalizerConfig())
	a := DirectedLink{"S-1-1", "T-1"}
	b := DirectedLink{"T-1", "S-2-1"}
	l.Arm(0, nil)
	// Two anomalous cells blame the same pair: neither link dominates, so
	// no accusation, no matter how many sweeps the tie persists.
	tied := []Cell{mkCell(0, 2, 60, 0.9, a, b), mkCell(1, 2, 60, 0.9, a, b)}
	for i := 0; i < 2*DefaultLocalizerConfig().PersistSweeps; i++ {
		if acc := l.Sweep(time.Duration(i+1)*100*time.Millisecond, tied); acc != nil {
			t.Fatalf("ambiguous evidence accused %v", acc)
		}
	}
	// A third cell crossing only `a` breaks the tie; the new leader still
	// has to hold its lead for PersistSweeps sweeps.
	split := append(tied, mkCell(2, 2, 60, 0.9, a))
	var acc []Accusation
	for i := 0; i < DefaultLocalizerConfig().PersistSweeps; i++ {
		if acc = l.Sweep(time.Duration(i+30)*100*time.Millisecond, split); acc != nil {
			break
		}
	}
	if len(acc) != 1 || acc[0].Link != a {
		t.Fatalf("accused %v, want %v", acc, a)
	}
}

func TestLocalizerBlameOutlivesReroute(t *testing.T) {
	// A protocol that reroutes before the loss EWMA crosses threshold
	// leaves anomalous cells whose *current* cover no longer contains the
	// faulty link. Blame (the recent-cover union) keeps the faulty link in
	// the running; the detour ties it on blame but collects healthy votes
	// from the clean cells now crossing it, so the faulty link ranks purer
	// and wins.
	l := NewLocalizer(DefaultLocalizerConfig())
	faulty := DirectedLink{"S-1-1", "T-1"}
	detour := DirectedLink{"S-1-2", "T-2"}
	l.Arm(0, []Cell{mkCell(0, 2, 40, 0, faulty), mkCell(1, 2, 40, 0, faulty)})

	mk := func(prober int, loss float64) Cell {
		c := mkCell(prober, 2, 60, loss, detour)
		c.Blame = []DirectedLink{faulty, detour}
		return c
	}
	cells := []Cell{mk(0, 0.6), mk(1, 0.55), mkCell(2, 2, 60, 0, detour)}
	var acc []Accusation
	for i := 0; i < DefaultLocalizerConfig().PersistSweeps; i++ {
		if acc = l.Sweep(time.Duration(i+10)*100*time.Millisecond, cells); acc != nil {
			break
		}
	}
	if len(acc) != 1 || acc[0].Link != faulty {
		t.Fatalf("accused %v, want %v", acc, faulty)
	}
}

func TestLocalizerLatencyAnomaly(t *testing.T) {
	cfg := DefaultLocalizerConfig()
	l := NewLocalizer(cfg)
	link := DirectedLink{"L-1-1", "S-1-1"}
	base := []Cell{mkCell(0, 1, 40, 0, link), mkCell(1, 1, 40, 0, link)}
	base[0].RTTP50 = 200 * time.Microsecond
	base[1].RTTP50 = 200 * time.Microsecond
	l.Arm(0, base)

	slow := []Cell{mkCell(0, 1, 80, 0, link), mkCell(1, 1, 80, 0, link)}
	slow[0].RTTP50 = 30 * time.Millisecond
	slow[1].RTTP50 = 32 * time.Millisecond
	var acc []Accusation
	for i := 0; i < cfg.PersistSweeps; i++ {
		if acc = l.Sweep(time.Duration(i+10)*100*time.Millisecond, slow); acc != nil {
			break
		}
	}
	if len(acc) != 1 || acc[0].Link != link || !acc[0].Latency {
		t.Fatalf("latency sweep accused %+v, want latency accusation of %v", acc, link)
	}
}

func TestLocalizerThresholds(t *testing.T) {
	cfg := DefaultLocalizerConfig()
	l := NewLocalizer(cfg)
	a := DirectedLink{"A", "B"}
	// One anomalous cell is below MinCells: no accusation ever.
	cells := []Cell{mkCell(0, 1, 100, 0.9, a)}
	l.Arm(0, nil)
	if acc := l.Sweep(2*time.Second, cells); acc != nil {
		t.Errorf("single-cell evidence accused %v", acc)
	}
	// Under MinSent the cell is ignored entirely.
	young := []Cell{mkCell(0, 1, 2, 1, a), mkCell(1, 1, 2, 1, a)}
	if acc := l.Sweep(3*time.Second, young); acc != nil {
		t.Errorf("under-sampled evidence accused %v", acc)
	}
}
