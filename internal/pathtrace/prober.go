package pathtrace

import (
	"time"

	"repro/internal/icmp"
	"repro/internal/ipv4"
	"repro/internal/netaddr"
	"repro/internal/stats"
	"repro/internal/udp"
)

// grace is how many rounds a probe may stay outstanding before it is
// finalized as lost — long enough for any plausible fabric RTT (including
// impairment-injected latency), short enough that loss shows up within a
// few probe intervals.
const grace = 4

// rttWindow bounds the rolling RTT sample ring per hop.
const rttWindow = 64

// ewmaAlpha weights each finalized probe into the loss EWMA: heavy enough
// that persistent loss crosses detection thresholds within ~half a dozen
// probes, light enough that one stray drop does not.
const ewmaAlpha = 0.25

// ProberConfig parameterizes one prober: a (source, destination, flow)
// vantage walked at every TTL up to MaxTTL.
type ProberConfig struct {
	// ID is the tracer-assigned index; it selects the UDP source port
	// (BaseSrcPort+ID), so it must be unique fabric-wide.
	ID int
	// Src is the prober's own address (probe source, reply destination).
	Src netaddr.IPv4
	// Dst is the probed destination address.
	Dst netaddr.IPv4
	// Flow labels the ECMP variant this prober pins; informational (the
	// source port already encodes it) but carried into snapshots.
	Flow int
	// MaxTTL is the number of hops walked per round (1..MaxTTL).
	MaxTTL int
}

// pending tracks one in-flight probe of a hop cell.
type pending struct {
	round    uint16
	sentAt   time.Duration
	used     bool
	answered bool
}

// hopState is the mutable per-TTL rollup.
type hopState struct {
	addr     netaddr.IPv4
	reached  bool
	seen     bool
	sent     uint64
	lost     uint64
	received uint64
	lossEWMA float64
	lastSeen time.Duration
	pend     [grace]pending
	rtts     [rttWindow]float64 // seconds
	rttN     int                // total samples ever; ring fill = min(rttN, rttWindow)
}

// Prober walks one (src, dst, flow) path. Tick sends one probe per TTL and
// finalizes probes that aged out; HandleReply folds an ICMP answer into the
// matching cell. Both run on the prober's own node in virtual time, so the
// rollups need no locking.
type Prober struct {
	Cfg   ProberConfig
	clock Clock
	tr    Transport
	hops  []hopState
	round uint16
	wire  []byte // scratch probe buffer, rewritten per send
}

// NewProber builds a prober; cfg.MaxTTL is clamped to [1, MaxTTL].
func NewProber(cfg ProberConfig, clock Clock, tr Transport) *Prober {
	if cfg.MaxTTL < 1 {
		cfg.MaxTTL = 1
	}
	if cfg.MaxTTL > MaxTTL {
		cfg.MaxTTL = MaxTTL
	}
	return &Prober{
		Cfg:   cfg,
		clock: clock,
		tr:    tr,
		hops:  make([]hopState, cfg.MaxTTL),
		wire:  make([]byte, ipv4.HeaderLen+udp.HeaderLen),
	}
}

// SrcPort returns the UDP source port this prober stamps on probes.
func (p *Prober) SrcPort() uint16 { return uint16(BaseSrcPort + p.Cfg.ID) }

// probeID encodes (round, ttl) into the IP ID quoted back by replies.
func probeID(round uint16, ttl int) uint16 { return round<<5 | uint16(ttl) }

// decodeProbeID splits an IP ID back into (round, ttl).
func decodeProbeID(id uint16) (round uint16, ttl int) { return id >> 5, int(id & 31) }

// Tick runs one probe round: finalize the slot each new probe reuses
// (counting it lost if unanswered), then send a fresh probe per TTL.
func (p *Prober) Tick() {
	now := p.clock.Now()
	for ttl := 1; ttl <= p.Cfg.MaxTTL; ttl++ {
		h := &p.hops[ttl-1]
		slot := &h.pend[int(p.round)%grace]
		if slot.used && !slot.answered {
			h.lost++
			h.lossEWMA = (1-ewmaAlpha)*h.lossEWMA + ewmaAlpha
		}
		*slot = pending{round: p.round, sentAt: now, used: true}
		h.sent++
		p.send(ttl)
	}
	p.round++
}

// send builds and transmits the probe for one TTL. The wire scratch is
// rewritten in place: transports copy it into their own frame buffers.
func (p *Prober) send(ttl int) {
	h := ipv4.Header{
		ID:       probeID(p.round, ttl),
		TTL:      byte(ttl),
		Protocol: ipv4.ProtoUDP,
		Src:      p.Cfg.Src,
		Dst:      p.Cfg.Dst,
	}
	h.PutHeader(p.wire, udp.HeaderLen)
	dg := udp.Datagram{SrcPort: p.SrcPort(), DstPort: TracePort}
	dg.PutHeader(p.Cfg.Src, p.Cfg.Dst, p.wire[ipv4.HeaderLen:])
	p.tr.SendProbe(p.wire, ttl)
}

// HandleReply folds an ICMP reply into the cell the quoted IP ID names.
// from is the replying hop's address; reached reports a port-unreachable
// (destination) rather than a time-exceeded (intermediate hop).
func (p *Prober) HandleReply(from netaddr.IPv4, ipID uint16, reached bool) {
	round, ttl := decodeProbeID(ipID)
	if ttl < 1 || ttl > p.Cfg.MaxTTL {
		return
	}
	h := &p.hops[ttl-1]
	slot := &h.pend[int(round)%grace]
	if !slot.used || slot.answered || slot.round != round {
		return // aged out or duplicate
	}
	slot.answered = true
	now := p.clock.Now()
	h.received++
	h.lossEWMA = (1 - ewmaAlpha) * h.lossEWMA
	h.addr = from
	h.reached = reached
	h.seen = true
	h.lastSeen = now
	h.rtts[h.rttN%rttWindow] = (now - slot.sentAt).Seconds()
	h.rttN++
}

// Snapshot renders the rolling rollups of every hop cell at the current
// virtual time. RTT quantiles are computed over the rolling window.
func (p *Prober) Snapshot() []HopSnapshot {
	out := make([]HopSnapshot, len(p.hops))
	for i := range p.hops {
		h := &p.hops[i]
		s := HopSnapshot{
			Prober: p.Cfg.ID, Src: p.Cfg.Src, Dst: p.Cfg.Dst,
			Flow: p.Cfg.Flow, TTL: i + 1,
			Addr: h.addr, Reached: h.reached, Seen: h.seen,
			Sent: h.sent, Lost: h.lost, Received: h.received,
			LossEWMA: h.lossEWMA, LastSeen: h.lastSeen,
		}
		n := h.rttN
		if n > rttWindow {
			n = rttWindow
		}
		if n > 0 {
			window := h.rtts[:n]
			s.RTTP50 = time.Duration(stats.Percentile(window, 50) * float64(time.Second))
			s.RTTP95 = time.Duration(stats.Percentile(window, 95) * float64(time.Second))
		}
		out[i] = s
	}
	return out
}

// icmpReplyKind classifies an ICMP message as a trace reply.
func icmpReplyKind(m icmp.Message) (reached, ok bool) {
	switch {
	case m.Type == icmp.TypeTimeExceeded:
		return false, true
	case m.Type == icmp.TypeDestUnreach && m.Code == icmp.CodePortUnreach:
		return true, true
	}
	return false, false
}
