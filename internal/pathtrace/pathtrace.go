// Package pathtrace is the in-fabric observability plane (DESIGN.md §12):
// mtr-style per-hop probers that walk MR-MTP VID paths and ECMP hop sets
// with TTL-stepped UDP probes, rolling per-hop statistics (loss EWMA, RTT
// quantiles, last-seen) sampled on the virtual clock, and a localization
// engine that turns the anomaly pattern across probe paths into accusations
// of individual directed links.
//
// The package is deliberately fabric-agnostic: a Transport injects a
// caller-built wire-format IP probe with a hop limit (the BGP stack maps it
// to the IP TTL, the MR-MTP ToR to the encapsulation TTL), and replies come
// back as ICMP messages whose quoted bytes carry the probe's IP ID and UDP
// ports. The harness owns topology knowledge — which links a probe path
// covers — and hands the localizer one coverage matrix per sweep.
package pathtrace

import (
	"time"

	"repro/internal/netaddr"
)

// TracePort is the UDP destination port probes aim at — chosen, like
// classic traceroute, to be unclaimed so the destination answers
// port-unreachable ("reached").
const TracePort = 33434

// BaseSrcPort is the first UDP source port the tracer hands out. Each
// prober owns one source port (BaseSrcPort + prober ID): the fabric hashes
// flows on the port, so one port pins one path, and a reply's quoted source
// port identifies the prober that sent the probe.
const BaseSrcPort = 33500

// MaxTTL bounds the hop distance a prober walks; the IP ID encodes the TTL
// in 5 bits, so probes can step at most 31 hops.
const MaxTTL = 31

// DirectedLink names one direction of a fabric link by device names, the
// unit the localizer accuses (chaos impairs per direction, so the accusable
// unit must be per direction too).
type DirectedLink struct {
	From, To string
}

// String renders the link in the chaos LinkRef style.
func (l DirectedLink) String() string { return l.From + "->" + l.To }

// Clock supplies virtual time; *simnet.Sim satisfies it.
type Clock interface {
	Now() time.Duration
}

// Transport injects a probe into the fabric from the prober's vantage.
type Transport interface {
	// SendProbe emits a wire-format IPv4+UDP probe. hopLimit selects the
	// hop under test: 1 expires at the first fabric device past the
	// vantage.
	SendProbe(ipWire []byte, hopLimit int)
}

// HopSnapshot is the rolled-up state of one (prober, TTL) cell.
type HopSnapshot struct {
	Prober int
	Src    netaddr.IPv4
	Dst    netaddr.IPv4
	Flow   int
	TTL    int

	Addr    netaddr.IPv4 // last replier; zero until first reply
	Reached bool         // last reply was port-unreachable (destination)
	Seen    bool

	Sent     uint64
	Lost     uint64
	Received uint64
	LossEWMA float64

	RTTP50   time.Duration
	RTTP95   time.Duration
	LastSeen time.Duration
}
