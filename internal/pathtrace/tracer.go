package pathtrace

import (
	"repro/internal/icmp"
	"repro/internal/netaddr"
)

// Tracer owns a fabric's probers and dispatches trace replies to them. The
// harness creates one Tracer per fabric, registers one prober per
// (source, destination, flow) tuple, schedules each prober's Tick on its
// own node's virtual clock, and wires every vantage's ICMP listener to
// Dispatch.
type Tracer struct {
	probers []*Prober
}

// AddProber registers a prober; the tracer assigns the next free ID (and
// with it the UDP source port).
func (t *Tracer) AddProber(cfg ProberConfig, clock Clock, tr Transport) *Prober {
	cfg.ID = len(t.probers)
	p := NewProber(cfg, clock, tr)
	t.probers = append(t.probers, p)
	return p
}

// Probers returns the registered probers in ID order.
func (t *Tracer) Probers() []*Prober { return t.probers }

// Dispatch routes a received ICMP message to the prober its quoted source
// port names. It reports whether the message was a trace reply for one of
// the tracer's probers; unrelated ICMP is left for other listeners.
func (t *Tracer) Dispatch(from netaddr.IPv4, m icmp.Message) bool {
	reached, ok := icmpReplyKind(m)
	if !ok {
		return false
	}
	ipID, srcPort, dstPort, ok := icmp.QuotedUDPProbe(m)
	if !ok || dstPort != TracePort {
		return false
	}
	id := int(srcPort) - BaseSrcPort
	if id < 0 || id >= len(t.probers) {
		return false
	}
	t.probers[id].HandleReply(from, ipID, reached)
	return true
}

// Snapshot samples every prober's rollups, concatenated in prober-ID order
// (so TTL cells stay grouped and the output order is deterministic).
func (t *Tracer) Snapshot() []HopSnapshot {
	var out []HopSnapshot
	for _, p := range t.probers {
		out = append(out, p.Snapshot()...)
	}
	return out
}
