package pathtrace

import (
	"sort"
	"time"
)

// This file is the localization engine. Each sweep receives the coverage
// matrix — every probe cell's rolled-up health plus the directed links its
// probe and reply currently traverse — and accuses the link that the
// anomaly pattern isolates. Isolation is a purity vote: under a sustained
// partial loss the per-cell EWMAs straddle the anomaly threshold, so no
// single clean observation can exonerate a link; instead each link is
// scored by how many anomalous cells blame it against how many currently
// healthy cells cross it, and the top-scored link must hold its lead for
// several consecutive sweeps before it is accused.

// Cell is one row of the coverage matrix: a (prober, TTL) rollup plus the
// directed links its probe covers — the forward hops up to the probed TTL
// and the reply path back from that hop.
type Cell struct {
	HopSnapshot
	// Cover is the set of directed links the cell's probes cross right now;
	// a healthy cell exonerates exactly these.
	Cover []DirectedLink
	// Blame, when non-nil, is the suspicion set an anomalous cell accuses —
	// typically the union of its recent covers, so a fault that already
	// triggered rerouting still blames the path the lost probes actually
	// took. Nil means Cover.
	Blame []DirectedLink
}

// blame returns the suspicion set.
func (c *Cell) blame() []DirectedLink {
	if c.Blame != nil {
		return c.Blame
	}
	return c.Cover
}

// Accusation is one localization verdict.
type Accusation struct {
	At   time.Duration
	Link DirectedLink
	// Cells is how many anomalous cells blamed the link; Ratio is that
	// count over all anomalous cells.
	Cells int
	Ratio float64
	// Latency marks an accusation driven by RTT inflation with little or
	// no loss.
	Latency bool
}

// LocalizerConfig tunes the accusation thresholds.
type LocalizerConfig struct {
	// LossThreshold is the loss EWMA at which a cell turns anomalous.
	LossThreshold float64
	// LatencyThreshold is the RTT-P50 inflation over the armed baseline at
	// which a cell turns anomalous.
	LatencyThreshold time.Duration
	// HealthyLoss is the loss EWMA at or below which a cell casts a healthy
	// vote for the links it covers.
	HealthyLoss float64
	// MinSent is the probe count a cell needs before its stats are
	// believed in either direction.
	MinSent uint64
	// MinCells is the number of distinct anomalous cells that must blame a
	// link before it is accusable.
	MinCells int
	// MinRatio is the fraction of all anomalous cells a link must explain.
	MinRatio float64
	// MinPurity is the minimum anomalous share of a link's votes,
	// blame/(blame+healthy). A link most of whose crossers are clean is
	// exonerated however much absolute blame it carries; a dip from a few
	// noisy EWMAs is not enough to clear a link every lossy cell accuses.
	MinPurity float64
	// PersistSweeps is how many consecutive sweeps the same link must top
	// the ranking before it is accused. It absorbs the window where a
	// fresh fault flips formerly healthy cells one sweep at a time.
	PersistSweeps int
}

// DefaultLocalizerConfig returns thresholds tuned for the repo's probe
// cadence (50 ms rounds, EWMA alpha 0.25): a sustained one-way gray loss
// well above LossThreshold crosses it within a few rounds, while one-off
// drops during reconvergence stay below it.
func DefaultLocalizerConfig() LocalizerConfig {
	return LocalizerConfig{
		LossThreshold:    0.15,
		LatencyThreshold: 10 * time.Millisecond,
		HealthyLoss:      0.08,
		MinSent:          8,
		MinCells:         2,
		MinRatio:         0.5,
		MinPurity:        0.6,
		PersistSweeps:    3,
	}
}

// Localizer accumulates sweep-to-sweep state: RTT baselines armed before
// the campaign, the current leader's streak, and links already accused
// (each link is accused at most once until cleared).
type Localizer struct {
	cfg         LocalizerConfig
	baseline    map[int]time.Duration // prober<<5|ttl -> armed RTT P50
	streakLink  DirectedLink
	streak      int
	accusedSet  map[DirectedLink]bool
	accusations []Accusation
}

// NewLocalizer builds a localizer with the given thresholds.
func NewLocalizer(cfg LocalizerConfig) *Localizer {
	return &Localizer{
		cfg:        cfg,
		baseline:   make(map[int]time.Duration),
		accusedSet: make(map[DirectedLink]bool),
	}
}

func cellKey(c *Cell) int { return c.Prober<<5 | c.TTL }

// Arm records the healthy baseline: per-cell RTT P50s for the latency
// anomaly test. Call it after warm-up, before fault injection.
func (l *Localizer) Arm(now time.Duration, cells []Cell) {
	for i := range cells {
		c := &cells[i]
		if c.Seen {
			l.baseline[cellKey(c)] = c.RTTP50
		}
	}
}

// anomalous classifies a cell against the thresholds.
func (l *Localizer) anomalous(c *Cell) (anom, latency bool) {
	if c.Sent < l.cfg.MinSent {
		return false, false
	}
	if c.LossEWMA >= l.cfg.LossThreshold {
		return true, false
	}
	if base, ok := l.baseline[cellKey(c)]; ok && c.Seen && c.RTTP50-base >= l.cfg.LatencyThreshold {
		return true, true
	}
	return false, false
}

func (l *Localizer) resetStreak() {
	l.streakLink = DirectedLink{}
	l.streak = 0
}

// Sweep evaluates one coverage-matrix snapshot and returns the newly
// accused link, if the matrix isolates one. Every anomalous cell blames
// its suspicion set; every healthy cell votes for its current cover. A
// link is a candidate when it carries MinCells of blame and its purity —
// blame over blame-plus-healthy — clears MinPurity. Candidates rank by
// blame desc, then healthy votes asc (purer first), then name; the leader
// must explain MinRatio of all anomalous cells and keep its lead for
// PersistSweeps consecutive sweeps. Anything short of that — an exact tie
// between the top two, a weak or flapping leader — defers to a later
// sweep rather than risking a false accusal. Cells must arrive in a
// deterministic order; everything else in here is collect-then-sort, so
// the verdict is a pure function of the sweep sequence.
func (l *Localizer) Sweep(now time.Duration, cells []Cell) []Accusation {
	suspicion := make(map[DirectedLink]int)
	healthy := make(map[DirectedLink]int)
	latencyVotes := make(map[DirectedLink]int)
	anomCount := 0
	for i := range cells {
		c := &cells[i]
		anom, latency := l.anomalous(c)
		if anom {
			anomCount++
			for _, link := range c.blame() {
				suspicion[link]++
				if latency {
					latencyVotes[link]++
				}
			}
			continue
		}
		if c.Sent >= l.cfg.MinSent && c.LossEWMA <= l.cfg.HealthyLoss {
			for _, link := range c.Cover {
				healthy[link]++
			}
		}
	}
	if anomCount < l.cfg.MinCells {
		l.resetStreak()
		return nil
	}

	candidates := make([]DirectedLink, 0, len(suspicion))
	//simlint:deterministic collect-then-sort: candidates are fully ordered below before any use
	for link, n := range suspicion {
		if n < l.cfg.MinCells {
			continue
		}
		if purity := float64(n) / float64(n+healthy[link]); purity < l.cfg.MinPurity {
			continue
		}
		candidates = append(candidates, link)
	}
	sort.Slice(candidates, func(i, j int) bool {
		si, sj := suspicion[candidates[i]], suspicion[candidates[j]]
		if si != sj {
			return si > sj
		}
		hi, hj := healthy[candidates[i]], healthy[candidates[j]]
		if hi != hj {
			return hi < hj
		}
		return candidates[i].String() < candidates[j].String()
	})
	if len(candidates) == 0 {
		l.resetStreak()
		return nil
	}
	top := candidates[0]
	if len(candidates) > 1 &&
		suspicion[candidates[1]] == suspicion[top] && healthy[candidates[1]] == healthy[top] {
		// The matrix has not isolated a single link yet.
		l.resetStreak()
		return nil
	}
	n := suspicion[top]
	ratio := float64(n) / float64(anomCount)
	if ratio < l.cfg.MinRatio {
		l.resetStreak()
		return nil
	}
	if top != l.streakLink {
		l.streakLink, l.streak = top, 1
	} else {
		l.streak++
	}
	if l.streak < l.cfg.PersistSweeps {
		return nil
	}
	if l.accusedSet[top] {
		// The dominant explanation is already accused; runner-up links
		// must not inherit its evidence.
		return nil
	}
	a := Accusation{
		At: now, Link: top, Cells: n, Ratio: ratio,
		Latency: latencyVotes[top]*2 > n,
	}
	l.accusedSet[top] = true
	l.accusations = append(l.accusations, a)
	return []Accusation{a}
}

// Accusations returns every accusation made so far, in order.
func (l *Localizer) Accusations() []Accusation {
	return append([]Accusation(nil), l.accusations...)
}
