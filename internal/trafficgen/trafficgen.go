// Package trafficgen reimplements the paper's custom traffic generator
// (github.com/pjw7904/Basic-Traffic-Generator): a sender transmits
// sequence-numbered packets back-to-back between two servers, and an
// analyzer at the receiver counts lost, duplicated and out-of-sequence
// packets — the packet-loss methodology of §VI.D used for Figs. 7 and 8.
package trafficgen

import (
	"time"

	"repro/internal/ipstack"
	"repro/internal/netaddr"
	"repro/internal/simnet"
	"repro/internal/udp"
)

// Magic identifies generator packets.
const Magic uint32 = 0x4d545047 // "MTPG"

// headerLen is the generator payload header: magic + 8-byte sequence.
const headerLen = 12

// Config parameterizes a flow.
type Config struct {
	Src, Dst         netaddr.IPv4
	SrcPort, DstPort uint16
	// Interval between packets. The paper's generator sends back-to-back;
	// ~3 ms spacing (≈333 pps) reproduces its loss counts against the
	// 3 s / 300 ms / 100 ms detection timers.
	Interval time.Duration
	// Size is the UDP payload size (>= 12; padded with zeros).
	Size int
}

// DefaultConfig returns the rate used across the packet-loss experiments.
func DefaultConfig(src, dst netaddr.IPv4) Config {
	return Config{
		Src: src, Dst: dst,
		SrcPort: 40000, DstPort: 47000,
		Interval: 3 * time.Millisecond,
		Size:     64,
	}
}

// Sender emits the flow from a server's IP stack.
type Sender struct {
	stack *ipstack.Stack
	cfg   Config
	seq   uint64
	sent  uint64
	stop  bool
	timer *simnet.Timer
}

// NewSender binds a sender to a server stack.
func NewSender(stack *ipstack.Stack, cfg Config) *Sender {
	if cfg.Size < headerLen {
		cfg.Size = headerLen
	}
	return &Sender{stack: stack, cfg: cfg}
}

// Start begins transmitting until Stop.
func (s *Sender) Start() {
	s.stop = false
	s.tick()
}

// Stop halts transmission after the current packet.
func (s *Sender) Stop() { s.stop = true }

// Sent returns the number of packets transmitted so far.
func (s *Sender) Sent() uint64 { return s.sent }

func (s *Sender) tick() {
	if s.stop {
		return
	}
	payload := make([]byte, s.cfg.Size)
	be32(payload[0:], Magic)
	be64(payload[4:], s.seq)
	s.seq++
	s.sent++
	s.stack.SendUDP(s.cfg.Src, s.cfg.Dst, s.cfg.SrcPort, s.cfg.DstPort, payload)
	if s.timer != nil {
		s.timer.Reset(s.cfg.Interval)
	} else {
		s.timer = s.stack.Node.Sim.After(s.cfg.Interval, s.tick)
	}
}

// Receiver analyzes the flow at the destination server.
type Receiver struct {
	received   uint64
	duplicates uint64
	outOfOrder uint64
	seen       map[uint64]bool
	lastSeq    uint64
	haveLast   bool
}

// NewReceiver registers the analyzer on the destination stack and port.
func NewReceiver(stack *ipstack.Stack, port uint16) *Receiver {
	r := &Receiver{seen: make(map[uint64]bool)}
	stack.ListenUDP(port, func(src, dst netaddr.IPv4, dg udp.Datagram) {
		r.packet(dg.Payload)
	})
	return r
}

func (r *Receiver) packet(payload []byte) {
	if len(payload) < headerLen || u32(payload) != Magic {
		return
	}
	seq := u64(payload[4:])
	if r.seen[seq] {
		r.duplicates++
		return
	}
	r.seen[seq] = true
	r.received++
	if r.haveLast && seq < r.lastSeq {
		r.outOfOrder++
	}
	if !r.haveLast || seq > r.lastSeq {
		r.lastSeq = seq
		r.haveLast = true
	}
}

// Seq returns the next sequence number the sender will transmit; a probe
// window is the half-open range [Seq at start, Seq at end).
func (s *Sender) Seq() uint64 { return s.seq }

// Missing scans the half-open sequence window [from, to) and returns how
// many of those packets never arrived plus the length of the longest
// consecutive missing run. Against a fixed-interval sender the product of
// either count with the interval gives blackhole time and maximum outage
// for the window — the chaos campaign's loss metrics.
func (r *Receiver) Missing(from, to uint64) (total, longest uint64) {
	var run uint64
	for seq := from; seq < to; seq++ {
		if r.seen[seq] {
			run = 0
			continue
		}
		total++
		run++
		if run > longest {
			longest = run
		}
	}
	return total, longest
}

// Report is the analyzer's verdict, comparable to the paper's loss counts.
type Report struct {
	Sent       uint64
	Received   uint64
	Lost       uint64
	Duplicated uint64
	OutOfOrder uint64
}

// Report computes the final counts against the sender's transmit count.
func (r *Receiver) Report(s *Sender) Report {
	rep := Report{
		Sent:       s.Sent(),
		Received:   r.received,
		Duplicated: r.duplicates,
		OutOfOrder: r.outOfOrder,
	}
	if rep.Sent > rep.Received {
		rep.Lost = rep.Sent - rep.Received
	}
	return rep
}

func be32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
}
func be64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (56 - 8*i))
	}
}
func u32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}
func u64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v = v<<8 | uint64(b[i])
	}
	return v
}
