package trafficgen

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/ipstack"
	"repro/internal/netaddr"
	"repro/internal/simnet"
)

// wire builds sender-host --- router --- receiver-host.
type wire struct {
	sim      *simnet.Sim
	src, dst *ipstack.Stack
	router   *ipstack.Stack
	srcIP    netaddr.IPv4
	dstIP    netaddr.IPv4
}

func newWire(t *testing.T) *wire {
	t.Helper()
	w := &wire{sim: simnet.New(9)}
	a, r, b := w.sim.AddNode("a"), w.sim.AddNode("r"), w.sim.AddNode("b")
	w.src, w.router, w.dst = ipstack.New(a), ipstack.New(r), ipstack.New(b)
	w.sim.Connect(a.AddPort(), r.AddPort())
	w.sim.Connect(r.AddPort(), b.AddPort())
	s1 := netaddr.MakePrefix(netaddr.MakeIPv4(10, 1, 0, 0), 24)
	s2 := netaddr.MakePrefix(netaddr.MakeIPv4(10, 2, 0, 0), 24)
	i1 := w.src.AddIface(a.Port(1), s1.Host(1), s1)
	w.router.AddIface(r.Port(1), s1.Host(254), s1)
	w.router.AddIface(r.Port(2), s2.Host(254), s2)
	i2 := w.dst.AddIface(b.Port(1), s2.Host(1), s2)
	w.src.AddDefaultRoute(s1.Host(254), i1)
	w.dst.AddDefaultRoute(s2.Host(254), i2)
	w.srcIP, w.dstIP = s1.Host(1), s2.Host(1)
	return w
}

func TestLosslessPath(t *testing.T) {
	w := newWire(t)
	cfg := DefaultConfig(w.srcIP, w.dstIP)
	s := NewSender(w.src, cfg)
	r := NewReceiver(w.dst, cfg.DstPort)
	s.Start()
	w.sim.RunFor(3 * time.Second)
	s.Stop()
	w.sim.RunFor(100 * time.Millisecond)
	rep := r.Report(s)
	if rep.Sent == 0 || rep.Lost != 0 || rep.Duplicated != 0 || rep.OutOfOrder != 0 {
		t.Fatalf("lossless path report: %+v", rep)
	}
	// ~333 pps for 3 s.
	if rep.Sent < 900 || rep.Sent > 1100 {
		t.Errorf("sent %d packets in 3s at 3ms interval, want ~1000", rep.Sent)
	}
}

func TestLossWindowCounted(t *testing.T) {
	w := newWire(t)
	cfg := DefaultConfig(w.srcIP, w.dstIP)
	s := NewSender(w.src, cfg)
	r := NewReceiver(w.dst, cfg.DstPort)
	s.Start()
	w.sim.RunFor(time.Second)
	// Black-hole the path for ~300ms by failing the router's egress.
	w.router.Node.Port(2).Fail()
	w.sim.RunFor(300 * time.Millisecond)
	w.router.Node.Port(2).Restore()
	w.sim.RunFor(time.Second)
	s.Stop()
	w.sim.RunFor(100 * time.Millisecond)
	rep := r.Report(s)
	// ≈ 300ms × 333pps = ~100 packets.
	if rep.Lost < 80 || rep.Lost > 120 {
		t.Errorf("lost %d packets across a 300ms outage, want ~100", rep.Lost)
	}
}

func TestDuplicateDetection(t *testing.T) {
	var r Receiver
	r.seen = make(map[uint64]bool)
	pkt := func(seq uint64) []byte {
		b := make([]byte, headerLen)
		be32(b, Magic)
		be64(b[4:], seq)
		return b
	}
	r.packet(pkt(0))
	r.packet(pkt(1))
	r.packet(pkt(1)) // dup
	r.packet(pkt(3))
	r.packet(pkt(2)) // out of order
	if r.received != 4 {
		t.Errorf("received = %d, want 4", r.received)
	}
	if r.duplicates != 1 {
		t.Errorf("duplicates = %d, want 1", r.duplicates)
	}
	if r.outOfOrder != 1 {
		t.Errorf("outOfOrder = %d, want 1", r.outOfOrder)
	}
}

func TestReorderedDeliveryAccounting(t *testing.T) {
	// A fixed delivery permutation with duplicates interleaved: every
	// class of packet must land in exactly one counter. Sequence 1 and 2
	// are each delivered twice; the late copies arrive after higher
	// sequences, which must count them as duplicates, not out-of-order.
	var r Receiver
	r.seen = make(map[uint64]bool)
	pkt := func(seq uint64) []byte {
		b := make([]byte, headerLen)
		be32(b, Magic)
		be64(b[4:], seq)
		return b
	}
	for _, seq := range []uint64{0, 2, 1, 1, 4, 3, 5, 2} {
		r.packet(pkt(seq))
	}
	if r.received != 6 {
		t.Errorf("received = %d, want 6 unique", r.received)
	}
	if r.duplicates != 2 {
		t.Errorf("duplicates = %d, want 2 (late copies of 1 and 2)", r.duplicates)
	}
	// First deliveries below the running max: 1 (after 2) and 3 (after 4).
	if r.outOfOrder != 2 {
		t.Errorf("outOfOrder = %d, want 2", r.outOfOrder)
	}
	s := &Sender{sent: 6}
	rep := r.Report(s)
	if rep.Lost != 0 {
		t.Errorf("Lost = %d, want 0: every sequence was delivered", rep.Lost)
	}
}

func TestShuffledDeliveryProperty(t *testing.T) {
	// Deliver every sequence of a run exactly once in random order: the
	// analyzer must count each first delivery, report zero duplicates and
	// loss, and flag exactly the arrivals that undercut the running max.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(200)
		perm := rng.Perm(n)
		var r Receiver
		r.seen = make(map[uint64]bool)
		wantOOO := uint64(0)
		max := -1
		for _, seq := range perm {
			b := make([]byte, headerLen)
			be32(b, Magic)
			be64(b[4:], uint64(seq))
			r.packet(b)
			if seq < max {
				wantOOO++
			} else {
				max = seq
			}
		}
		if r.received != uint64(n) || r.duplicates != 0 {
			t.Fatalf("n=%d: received=%d duplicates=%d", n, r.received, r.duplicates)
		}
		if r.outOfOrder != wantOOO {
			t.Fatalf("n=%d perm=%v: outOfOrder=%d, want %d", n, perm, r.outOfOrder, wantOOO)
		}
		if rep := r.Report(&Sender{sent: uint64(n)}); rep.Lost != 0 {
			t.Fatalf("n=%d: Lost=%d, want 0", n, rep.Lost)
		}
	}
}

func TestNonGeneratorTrafficIgnored(t *testing.T) {
	var r Receiver
	r.seen = make(map[uint64]bool)
	r.packet([]byte("not a generator packet"))
	r.packet([]byte{1, 2})
	if r.received != 0 {
		t.Errorf("received = %d, want 0", r.received)
	}
}

func TestSeqEncodingRoundTrip(t *testing.T) {
	f := func(seq uint64) bool {
		b := make([]byte, 8)
		be64(b, seq)
		return u64(b) == seq
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReportLostNeverNegative(t *testing.T) {
	// If the analyzer somehow sees more than sent (e.g. duplicates of a
	// short run), Lost must clamp at zero.
	var r Receiver
	r.seen = make(map[uint64]bool)
	r.received = 10
	s := &Sender{sent: 5}
	if rep := r.Report(s); rep.Lost != 0 {
		t.Errorf("Lost = %d, want 0", rep.Lost)
	}
}

func TestPayloadPadding(t *testing.T) {
	w := newWire(t)
	cfg := DefaultConfig(w.srcIP, w.dstIP)
	cfg.Size = 4 // below the header floor
	s := NewSender(w.src, cfg)
	if s.cfg.Size != headerLen {
		t.Errorf("size = %d, want clamped to %d", s.cfg.Size, headerLen)
	}
}
