package fluid

import (
	"math"
	"testing"
	"time"
)

func approx(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s = %g, want %g (±%g)", what, got, want, tol)
	}
}

// One flow on one link, no cap: the flow gets the whole link and finishes
// at bytes*8/cap plus the path latency offset, at the exact crossing
// instant inside an epoch.
func TestSingleFlowExactFCT(t *testing.T) {
	s := New(Config{})
	l := s.AddLink(100_000_000, nil) // 100 Mb/s
	path := []LinkID{l}
	lat := 500 * time.Microsecond

	s.Advance(0)
	s.Admit(1, 1_250_000, path, lat, 0) // 0.1 s at 100 Mb/s
	if cs := s.Reallocate(0); len(cs) != 0 {
		t.Fatal("flow completed at admission: nothing has been served yet")
	}

	var got []Completion
	for now := 5 * time.Millisecond; now <= 200*time.Millisecond; now += 5 * time.Millisecond {
		got = append(got, s.Advance(now)...)
		got = append(got, s.Reallocate(now)...)
	}
	if len(got) != 1 {
		t.Fatalf("completions = %d, want 1", len(got))
	}
	want := 100*time.Millisecond + lat
	if got[0].FCT != want {
		t.Fatalf("FCT = %v, want %v", got[0].FCT, want)
	}
	if got[0].At != 100*time.Millisecond {
		t.Fatalf("At = %v, want %v", got[0].At, 100*time.Millisecond)
	}
	if s.Active() != 0 || s.Peak() != 1 {
		t.Fatalf("active=%d peak=%d, want 0/1", s.Active(), s.Peak())
	}
}

// Two flows sharing a bottleneck split it evenly; a third flow on a
// disjoint link is unaffected. The classic progressive-filling example.
func TestMaxMinShares(t *testing.T) {
	s := New(Config{})
	shared := s.AddLink(100_000_000, nil)
	private := s.AddLink(40_000_000, nil)

	s.Advance(0)
	s.Admit(1, 1<<30, []LinkID{shared}, 0, 0)
	s.Admit(2, 1<<30, []LinkID{shared}, 0, 0)
	s.Admit(3, 1<<30, []LinkID{private}, 0, 0)
	s.Reallocate(0)

	approx(t, s.groups[0].rate, 50e6, 1, "shared per-flow rate")
	approx(t, s.groups[1].rate, 40e6, 1, "private flow rate")
}

// A flow crossing both a wide and a narrow link is frozen at the narrow
// link's share, and the wide link's leftover goes to its other flows —
// the second filling iteration.
func TestProgressiveFillingSecondIteration(t *testing.T) {
	s := New(Config{})
	narrow := s.AddLink(10_000_000, nil)
	wide := s.AddLink(100_000_000, nil)

	s.Advance(0)
	s.Admit(1, 1<<30, []LinkID{narrow, wide}, 0, 0) // bottlenecked at 10M
	s.Admit(2, 1<<30, []LinkID{wide}, 0, 0)         // gets the 90M leftover
	s.Reallocate(0)

	approx(t, s.groups[0].rate, 10e6, 1, "narrow-path rate")
	approx(t, s.groups[1].rate, 90e6, 1, "wide-path leftover rate")
}

// The per-flow cap binds before the link does.
func TestRateCap(t *testing.T) {
	s := New(Config{RateCapBps: 5e6})
	l := s.AddLink(100_000_000, nil)
	s.Advance(0)
	s.Admit(1, 1 << 30, []LinkID{l}, 0, 0)
	s.Reallocate(0)
	approx(t, s.groups[0].rate, 5e6, 1, "capped rate")
}

// A flow admitted between epochs gets retroactive service credit: its FCT
// is measured from its own arrival instant, not the next epoch boundary.
func TestMidEpochAdmissionExact(t *testing.T) {
	s := New(Config{})
	l := s.AddLink(80_000_000, nil) // 10 MB/s
	path := []LinkID{l}

	s.Advance(0)
	s.Admit(1, 10_000_000, path, 0, 0) // keeps the group's rate warm for 1 s
	s.Reallocate(0)

	// Arrives 3 ms into the [0, 10ms] epoch; its credit backdates service
	// at its post-allocation share from exactly 3 ms.
	s.Advance(10 * time.Millisecond)
	s.Admit(2, 1_000_000, path, 0, 3*time.Millisecond)
	var got []Completion
	got = append(got, s.Reallocate(10*time.Millisecond)...)

	for now := 20 * time.Millisecond; now <= 3*time.Second; now += 10 * time.Millisecond {
		got = append(got, s.Advance(now)...)
		got = append(got, s.Reallocate(now)...)
	}
	if len(got) != 2 {
		t.Fatalf("completions = %d, want 2", len(got))
	}
	// Hand integration: service(10ms) = 100 KB (flow 1 alone at 10 MB/s).
	// From 10 ms both flows share 80 Mb/s at 5 MB/s each; flow 2's credit
	// is 7 ms * 5 MB/s = 35 KB, so its threshold is 100KB - 35KB + 1MB =
	// 1.065 MB, reached at 10ms + (1.065MB-0.1MB)/5MBps = 203 ms — i.e. a
	// 1 MB transfer at its 5 MB/s share measured from its own 3 ms start.
	want2 := 203 * time.Millisecond
	var c2 Completion
	for _, c := range got {
		if c.ID == 2 {
			c2 = c
		}
	}
	if c2.ID != 2 {
		t.Fatal("flow 2 never completed")
	}
	if c2.At != want2 {
		t.Fatalf("flow 2 At = %v, want %v", c2.At, want2)
	}
	if c2.FCT != 200*time.Millisecond {
		t.Fatalf("flow 2 FCT = %v, want %v", c2.FCT, 200*time.Millisecond)
	}
}

// A flow small enough to finish before the epoch it is resolved in ends is
// reported done by Reallocate with its exact analytic FCT.
func TestImmediateCompletion(t *testing.T) {
	s := New(Config{})
	l := s.AddLink(80_000_000, nil)
	path := []LinkID{l}
	// Latency is a property of the path group: both flows share it.
	s.Advance(0)
	s.Admit(1, 1<<30, path, 100*time.Microsecond, 0)
	s.Reallocate(0)
	s.Advance(10 * time.Millisecond)
	// Arrives 2 ms into the epoch; its share is 40 Mb/s = 5 MB/s beside
	// the long flow, so 10 KB takes 2 ms: done by 4 ms, before the 10 ms
	// boundary.
	s.Admit(2, 10_000, path, 100*time.Microsecond, 2*time.Millisecond)
	cs := s.Reallocate(10 * time.Millisecond)
	if len(cs) != 1 || cs[0].ID != 2 {
		t.Fatalf("completions = %+v, want exactly flow 2", cs)
	}
	if want := 2*time.Millisecond + 100*time.Microsecond; cs[0].FCT != want {
		t.Fatalf("immediate FCT = %v, want %v", cs[0].FCT, want)
	}
	if cs[0].At != 4*time.Millisecond {
		t.Fatalf("immediate At = %v, want 4ms", cs[0].At)
	}
	if s.Active() != 1 {
		t.Fatalf("active = %d, want 1 (only the long flow)", s.Active())
	}
}

// Phantom demand halves the fluid flow's share but never reserves wire
// capacity itself; Leave restores the full share.
func TestPhantomDemand(t *testing.T) {
	var applied int64
	s := New(Config{})
	l := s.AddLink(100_000_000, func(bps int64, _ time.Duration) { applied = bps })
	path := []LinkID{l}

	s.Advance(0)
	s.Admit(1, 1<<30, path, 0, 0)
	h := s.AdmitPhantom(path)
	s.Reallocate(0)
	approx(t, s.groups[0].rate, 50e6, 1, "fluid share beside phantom")
	if applied != 50_000_000 {
		t.Fatalf("applied fluid load = %d, want 50M (phantom demand must not reserve wire)", applied)
	}

	s.Leave(h)
	s.Advance(time.Millisecond)
	s.Reallocate(time.Millisecond)
	approx(t, s.groups[0].rate, 100e6, 1, "share after phantom leaves")
	if applied != 100_000_000 {
		t.Fatalf("applied fluid load = %d, want 100M", applied)
	}
}

// Repath moves a group's reservation to the newly resolved path.
func TestRepath(t *testing.T) {
	s := New(Config{})
	a := s.AddLink(100_000_000, nil)
	b := s.AddLink(100_000_000, nil)
	s.Advance(0)
	s.Admit(7, 1<<30, []LinkID{a}, 0, 0)
	s.Reallocate(0)

	s.Repath(func(id uint32) ([]LinkID, time.Duration, bool) {
		if id != 7 {
			t.Fatalf("repath representative = %d, want 7", id)
		}
		return []LinkID{b}, 0, true
	})
	s.Advance(time.Millisecond)
	s.Reallocate(time.Millisecond)
	if s.links[a].lastApplied != 0 || s.links[b].lastApplied != 100_000_000 {
		t.Fatalf("reservations after repath: a=%d b=%d, want 0/100M",
			s.links[a].lastApplied, s.links[b].lastApplied)
	}
}

// The same admission sequence produces bit-identical completions — the
// determinism contract the hybrid engine's artifacts rest on.
func TestDeterministicReplay(t *testing.T) {
	run := func() []Completion {
		s := New(Config{RateCapBps: 66_666_666})
		l1 := s.AddLink(200_000_000, nil)
		l2 := s.AddLink(200_000_000, nil)
		var out []Completion
		s.Advance(0)
		for i := uint32(1); i <= 500; i++ {
			path := []LinkID{l1}
			if i%3 == 0 {
				path = []LinkID{l1, l2}
			}
			at := time.Duration(i) * 17 * time.Microsecond
			s.Admit(i, int64(1000*i), path, time.Microsecond, at)
		}
		for now := 10 * time.Millisecond; now <= 12*time.Second; now += 10 * time.Millisecond {
			out = append(out, s.Advance(now)...)
			out = append(out, s.Reallocate(now)...)
		}
		return append([]Completion(nil), out...)
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) != 500 {
		t.Fatalf("replay lengths: %d vs %d (want 500 each)", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// A million concurrent members stay cheap: admission and completion are a
// heap push/pop each, not a timer each. This is a correctness smoke at
// scale, not a benchmark.
func TestMillionMembers(t *testing.T) {
	if testing.Short() {
		t.Skip("million-member smoke skipped in -short")
	}
	s := New(Config{RateCapBps: 66e6})
	l := s.AddLink(200_000_000, nil)
	path := []LinkID{l}
	s.Advance(0)
	const n = 1_000_000
	for i := uint32(1); i <= n; i++ {
		s.Admit(i, 1_000_000, path, 0, time.Duration(i)*time.Nanosecond)
	}
	s.Reallocate(0)
	if s.Active() != n || s.Peak() != n {
		t.Fatalf("active=%d peak=%d, want %d", s.Active(), s.Peak(), n)
	}
	// At 200 Mb/s shared by 10^6 flows each needing 1 MB, draining takes
	// 4*10^10 s; advance a slice and confirm ordering holds, then drain
	// explicitly by over-advancing.
	got := s.Advance(40_000 * time.Hour)
	if len(got) == 0 {
		t.Fatal("no completions after advancing")
	}
	// Equal thresholds tie-break by admission order, so IDs pop in
	// sequence — the determinism anchor at scale.
	for i, c := range got[:1000] {
		if c.ID != uint32(i+1) {
			t.Fatalf("completion %d has ID %d, want %d (admission-order tie-break)", i, c.ID, i+1)
		}
	}
}
