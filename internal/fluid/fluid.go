// Package fluid is the flow-level (fluid) half of the hybrid simulation
// engine: long-lived flows are modeled analytically instead of
// packet-by-packet. Each flow receives a max-min fair share of every link
// on its path (progressive filling, recomputed on an epoch cadence and on
// arrival/departure/topology events), and its completion time falls out of
// integrating the allocated rate — the standard reduction the flow-level
// evaluation literature (FatPaths, the multipathing surveys in PAPERS.md)
// uses to reach flow counts a packet simulator cannot.
//
// The solver is deliberately ignorant of the simulator: callers register
// directed link capacities with AddLink and receive committed fluid shares
// back through per-link apply callbacks; the workload engine drives
// Advance/Admit/Reallocate from control events on the virtual clock. All
// state is owned by those calls — the package does no synchronization and
// must only be touched from the engine's quiesce barrier.
//
// Scale comes from aggregation: flows sharing an identical resolved path
// form one *path group*. Rates, service curves and progressive filling run
// per group (a Clos fabric has few distinct paths), while per-flow state is
// one 32-byte heap entry — so a million concurrent flows cost one heap push
// and one pop each, not a million timers.
//
// Determinism: groups and links live in slices in creation order, maps are
// lookup-only (never ranged), and every float operation runs in a fixed
// order — the same admission sequence always produces bit-identical rates
// and completion times, on any shard count.
package fluid

import (
	"math"
	"time"

	"repro/internal/invariant"
)

// LinkID names one direction of one registered link.
type LinkID int32

// Handle identifies a phantom admission (a packet-path flow whose demand is
// modeled so fluid shares leave room for its real packets).
type Handle int32

// unconstrainedBps is the rate a flow gets when neither a link capacity nor
// the per-flow cap binds: effectively instantaneous completion.
const unconstrainedBps = 1e15

// Config parameterizes the solver.
type Config struct {
	// RateCapBps bounds any single flow's allocated rate — the packet
	// engine paces one packet per PacketInterval, so matching its FCT on
	// uncongested paths requires the same ceiling. 0 means uncapped.
	RateCapBps float64
}

// Completion reports one fluid flow finishing: the exact crossing instant
// of its byte threshold within the last rate epoch, and the flow completion
// time including the path's fixed latency offset.
type Completion struct {
	ID  uint32
	At  time.Duration
	FCT time.Duration
}

// member is one fluid flow inside a path group: the cumulative-service
// level at which it completes, keyed for the group's min-heap.
type member struct {
	threshold float64 // group service (bytes) at which this flow is done
	admitted  time.Duration
	id        uint32
	seq       uint32 // admission order, the deterministic tie-break
}

// group aggregates flows sharing one resolved path. Phantom groups model
// packet-path demand only: they join progressive filling but have no
// service curve and never reserve wire capacity.
type group struct {
	path    []LinkID
	latency time.Duration // fixed per-flow FCT offset (propagation + store-and-forward)
	phantom bool

	n       int     // active flows
	rate    float64 // per-flow bps from the last Reallocate
	service float64 // cumulative per-flow bytes served
	heap    []member

	frozen bool // progressive-filling scratch
}

// link is one registered direction with its allocation scratch state.
type link struct {
	capBps float64                           // 0 = unconstrained
	apply  func(bps int64, at time.Duration) // commits the fluid share to the wire
	groups []int32                           // indexes of groups routed over this link

	lastApplied int64
	// progressive-filling scratch
	resid float64
	nf    int
	fluid float64
}

// Solver owns the fluid links, path groups and rate allocation.
type Solver struct {
	cfg    Config
	links  []*link
	groups []*group
	index  map[string]int32 // path key -> group index (lookup only, never ranged)
	keyBuf []byte

	completions []Completion
	pending     []pendingAdmit
	resolved    []Completion // Reallocate's immediate completions (own buffer: the caller may still hold Advance's)
	active      int          // live fluid (non-phantom) flows
	peak        int
	seq         uint32
	lastNow     time.Duration
}

// New creates an empty solver.
func New(cfg Config) *Solver {
	return &Solver{cfg: cfg, index: make(map[string]int32)}
}

// AddLink registers one direction of capacity capBps. apply, when non-nil,
// is called with the committed aggregate fluid share whenever it changes
// (the simnet coupling: reserved bandwidth leaves the packet serializer its
// residual). capBps <= 0 registers an unconstrained direction.
func (s *Solver) AddLink(capBps int64, apply func(bps int64, at time.Duration)) LinkID {
	s.links = append(s.links, &link{capBps: float64(capBps), apply: apply})
	return LinkID(len(s.links) - 1)
}

// Active returns the number of live fluid flows.
func (s *Solver) Active() int { return s.active }

// Peak returns the high-water mark of Active since creation.
func (s *Solver) Peak() int { return s.peak }

// Groups returns the number of path groups created so far (phantom and
// fluid).
func (s *Solver) Groups() int { return len(s.groups) }

// pathKey renders a path (plus the phantom/fluid kind, which must never
// share a group) into the lookup key.
func (s *Solver) pathKey(path []LinkID, phantom bool) string {
	b := s.keyBuf[:0]
	if phantom {
		b = append(b, 'P')
	} else {
		b = append(b, 'F')
	}
	for _, id := range path {
		b = append(b, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}
	s.keyBuf = b
	return string(b)
}

// groupFor finds or creates the group owning (path, phantom).
func (s *Solver) groupFor(path []LinkID, latency time.Duration, phantom bool) (*group, int32) {
	key := s.pathKey(path, phantom)
	if gi, ok := s.index[key]; ok {
		return s.groups[gi], gi
	}
	g := &group{path: append([]LinkID(nil), path...), latency: latency, phantom: phantom}
	gi := int32(len(s.groups))
	s.groups = append(s.groups, g)
	s.index[key] = gi
	for _, lid := range path {
		s.links[lid].groups = append(s.links[lid].groups, gi)
	}
	return g, gi
}

// pendingAdmit is a flow admitted since the last Reallocate: it counts
// toward its group's demand immediately, but its completion threshold is
// resolved only after the next Reallocate, against the rate it actually
// receives.
type pendingAdmit struct {
	gi    int32
	bytes float64
	at    time.Duration
	id    uint32
}

// Admit adds a fluid flow of the given size at instant at (which must lie
// in the epoch ending at the last Advance). The flow joins its group's
// demand at once, but its service credit is resolved by the next Reallocate
// at its post-allocation rate: the packet engine it stands in for starts
// pacing at the arrival instant, not at the next rate epoch, so the credit
// backdates transmission to `at` — exact on idle paths, where the group's
// stale rate (zero) says nothing about what the flow will get.
func (s *Solver) Admit(id uint32, bytes int64, path []LinkID, latency, at time.Duration) {
	g, gi := s.groupFor(path, latency, false)
	s.pending = append(s.pending, pendingAdmit{gi: gi, bytes: float64(bytes), at: at, id: id})
	g.n++
	s.active++
	if s.active > s.peak {
		s.peak = s.active
	}
}

// AdmitPhantom adds a packet-path flow's demand to the allocation (hybrid
// mode: short and fault-window flows ride the packet engine, but their fair
// share must still squeeze fluid reservations, exactly as their real
// packets squeeze the residual serializer). The handle releases it.
func (s *Solver) AdmitPhantom(path []LinkID) Handle {
	g, gi := s.groupFor(path, 0, true)
	g.n++
	return Handle(gi)
}

// Leave releases one phantom admission.
func (s *Solver) Leave(h Handle) {
	g := s.groups[h]
	if invariant.Enabled {
		invariant.Assert(g.phantom && g.n > 0, "fluid: Leave on a non-phantom or empty group")
	}
	if g.n > 0 {
		g.n--
	}
}

// Advance integrates every group's service curve from the last epoch
// boundary to now (rates are piecewise-constant between Reallocate calls)
// and pops completions with their exact crossing instants. The returned
// slice is reused by the next Advance.
func (s *Solver) Advance(now time.Duration) []Completion {
	dt := (now - s.lastNow).Seconds()
	out := s.completions[:0]
	for _, g := range s.groups {
		if g.phantom || g.rate <= 0 {
			continue
		}
		prev := g.service
		if dt > 0 {
			g.service = prev + g.rate/8*dt
		}
		for len(g.heap) > 0 && g.heap[0].threshold <= g.service {
			m := g.heap[0]
			popMin(&g.heap)
			over := (m.threshold - prev) * 8 / g.rate // seconds into the epoch
			if over < 0 {
				over = 0
			}
			doneAt := s.lastNow + time.Duration(over*float64(time.Second))
			if doneAt > now {
				doneAt = now
			}
			out = append(out, Completion{ID: m.id, At: doneAt, FCT: doneAt - m.admitted + g.latency})
			g.n--
			s.active--
		}
	}
	s.lastNow = now
	s.completions = out
	return out
}

// Reallocate recomputes every group's per-flow rate by progressive filling
// — repeatedly freezing the groups crossing the currently tightest link at
// its fair share — with the per-flow cap applied, then commits each link's
// aggregate fluid share (phantom demand excluded) through its apply hook.
// Finally it resolves the thresholds of flows admitted since the last call;
// flows whose backdated credit says they already finished are returned as
// completions with their exact FCTs (the returned slice is reused).
func (s *Solver) Reallocate(now time.Duration) []Completion {
	unfrozen := 0
	for _, l := range s.links {
		l.resid = l.capBps
		l.nf = 0
	}
	for _, g := range s.groups {
		g.frozen = g.n == 0
		if g.frozen {
			g.rate = 0
			continue
		}
		unfrozen++
		for _, lid := range g.path {
			if l := s.links[lid]; l.capBps > 0 {
				l.nf += g.n
			}
		}
	}
	for unfrozen > 0 {
		minShare := math.Inf(1)
		minLink := -1
		for i, l := range s.links {
			if l.capBps <= 0 || l.nf == 0 {
				continue
			}
			if share := l.resid / float64(l.nf); share < minShare {
				minShare = share
				minLink = i
			}
		}
		if minLink < 0 || (s.cfg.RateCapBps > 0 && s.cfg.RateCapBps <= minShare) {
			// No link binds tighter than the per-flow cap (or nothing
			// binds at all): everything left freezes at the ceiling.
			r := s.cfg.RateCapBps
			if r <= 0 {
				r = unconstrainedBps
			}
			for _, g := range s.groups {
				if !g.frozen {
					g.rate = r
					s.freeze(g)
					unfrozen--
				}
			}
			break
		}
		if minShare < 0 {
			minShare = 0
		}
		before := unfrozen
		for _, gi := range s.links[minLink].groups {
			if g := s.groups[gi]; !g.frozen {
				g.rate = minShare
				s.freeze(g)
				unfrozen--
			}
		}
		if invariant.Enabled {
			invariant.Assert(unfrozen < before, "fluid: progressive filling made no progress")
		}
		if unfrozen >= before {
			break // defensive: a zero-share bottleneck with no groups left
		}
	}
	for _, l := range s.links {
		l.fluid = 0
	}
	for _, g := range s.groups {
		if g.phantom || g.n == 0 {
			continue
		}
		for _, lid := range g.path {
			s.links[lid].fluid += float64(g.n) * g.rate
		}
	}
	for _, l := range s.links {
		if invariant.Enabled && l.capBps > 0 {
			invariant.Assertf(l.fluid <= l.capBps*(1+1e-9)+1,
				"fluid: link over-allocated: %g bps of %g", l.fluid, l.capBps)
		}
		bps := int64(l.fluid)
		if bps != l.lastApplied {
			l.lastApplied = bps
			if l.apply != nil {
				l.apply(bps, now)
			}
		}
	}
	return s.resolvePending(now)
}

// resolvePending turns this epoch's admissions into heap members (or
// immediate completions) using the rates they were just allocated. The
// credit backdates service to the arrival instant at the allocated rate —
// on an otherwise-idle path this reproduces the packet engine's pacing
// start exactly: completion at `at + bytes*8/rate`, not at the epoch
// boundary plus the transfer.
func (s *Solver) resolvePending(now time.Duration) []Completion {
	out := s.resolved[:0]
	for _, p := range s.pending {
		g := s.groups[p.gi]
		credit := 0.0
		if g.rate > 0 && p.at < now {
			credit = g.rate / 8 * (now - p.at).Seconds()
		}
		threshold := g.service - credit + p.bytes
		if threshold <= g.service && g.rate > 0 {
			// Finished before this epoch boundary: exact analytic FCT.
			dur := time.Duration(p.bytes * 8 / g.rate * float64(time.Second))
			doneAt := p.at + dur
			if doneAt > now {
				doneAt = now
			}
			out = append(out, Completion{ID: p.id, At: doneAt, FCT: dur + g.latency})
			g.n--
			s.active--
			continue
		}
		s.seq++
		g.heap = append(g.heap, member{threshold: threshold, admitted: p.at, id: p.id, seq: s.seq})
		siftUp(g.heap, len(g.heap)-1)
	}
	s.pending = s.pending[:0]
	s.resolved = out
	return out
}

// freeze fixes g at its current rate and removes its demand from its path.
func (s *Solver) freeze(g *group) {
	g.frozen = true
	for _, lid := range g.path {
		l := s.links[lid]
		if l.capBps <= 0 {
			continue
		}
		l.resid -= float64(g.n) * g.rate
		if l.resid < 0 {
			l.resid = 0
		}
		l.nf -= g.n
	}
}

// Repath re-resolves every live fluid group's path through resolve (called
// with one representative member's flow ID) — the topology-event hook: a
// failure that moved the forwarding decision moves the group's reservation
// with it. Groups whose representative no longer resolves keep their stale
// path; the hybrid demotion window exists precisely so few fluid flows
// straddle such events (DESIGN.md §15, fidelity limits). The group's old
// path key is retired, so later admissions on either path form or join
// groups matching the tables they were resolved against.
func (s *Solver) Repath(resolve func(id uint32) (path []LinkID, latency time.Duration, ok bool)) {
	for gi, g := range s.groups {
		if g.phantom || len(g.heap) == 0 {
			continue
		}
		newPath, lat, ok := resolve(g.heap[0].id)
		if !ok || samePath(g.path, newPath) {
			continue
		}
		delete(s.index, s.pathKey(g.path, false))
		for _, lid := range g.path {
			s.links[lid].groups = removeGroup(s.links[lid].groups, int32(gi))
		}
		g.path = append(g.path[:0], newPath...)
		g.latency = lat
		for _, lid := range g.path {
			s.links[lid].groups = append(s.links[lid].groups, int32(gi))
		}
	}
}

func samePath(a, b []LinkID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func removeGroup(gs []int32, gi int32) []int32 {
	for i, g := range gs {
		if g == gi {
			return append(gs[:i], gs[i+1:]...)
		}
	}
	return gs
}

// --- member min-heap (threshold, then admission seq) ------------------------

func memberLess(a, b member) bool {
	if a.threshold != b.threshold {
		return a.threshold < b.threshold
	}
	return a.seq < b.seq
}

func siftUp(h []member, i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !memberLess(h[i], h[parent]) {
			return
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func popMin(h *[]member) {
	s := *h
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && memberLess(s[l], s[min]) {
			min = l
		}
		if r < n && memberLess(s[r], s[min]) {
			min = r
		}
		if min == i {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	*h = s
}
