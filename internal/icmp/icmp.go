// Package icmp implements the subset of ICMP (RFC 792) the reproduction
// needs: echo request/reply for reachability probes and time-exceeded for
// traceroute. Traceroute is the most vivid demonstration of the paper's
// architectural difference: a BGP folded-Clos is a chain of IP hops, while
// the MR-MTP fabric carries the packet opaquely and appears as a *single*
// hop between the two ToRs.
package icmp

import (
	"errors"

	"repro/internal/ipv4"
)

// ICMP message types used here.
const (
	TypeEchoReply    byte = 0
	TypeDestUnreach  byte = 3
	TypeEchoRequest  byte = 8
	TypeTimeExceeded byte = 11
)

// HeaderLen is the fixed ICMP header size.
const HeaderLen = 8

// Destination-unreachable codes used here.
const (
	CodeNetUnreach  byte = 0
	CodePortUnreach byte = 3
)

// Message is a decoded ICMP message. For echo messages, ID/Seq hold the
// identifier and sequence number; for errors, Payload holds the original
// IP header plus at least 8 bytes of its payload (RFC 792).
type Message struct {
	Type    byte
	Code    byte
	ID      uint16
	Seq     uint16
	Payload []byte
}

// ErrMalformed reports an undecodable ICMP message.
var ErrMalformed = errors.New("icmp: malformed message")

// Marshal renders the message with a valid checksum.
func (m *Message) Marshal() []byte {
	b := make([]byte, HeaderLen+len(m.Payload))
	b[0] = m.Type
	b[1] = m.Code
	b[4] = byte(m.ID >> 8)
	b[5] = byte(m.ID)
	b[6] = byte(m.Seq >> 8)
	b[7] = byte(m.Seq)
	copy(b[HeaderLen:], m.Payload)
	ck := ipv4.Checksum(b)
	b[2] = byte(ck >> 8)
	b[3] = byte(ck)
	return b
}

// Unmarshal parses and validates a message.
func Unmarshal(b []byte) (Message, error) {
	if len(b) < HeaderLen {
		return Message{}, ErrMalformed
	}
	if ipv4.Checksum(b) != 0 {
		return Message{}, ErrMalformed
	}
	return Message{
		Type:    b[0],
		Code:    b[1],
		ID:      uint16(b[4])<<8 | uint16(b[5]),
		Seq:     uint16(b[6])<<8 | uint16(b[7]),
		Payload: b[HeaderLen:],
	}, nil
}

// EchoRequest builds an echo request.
func EchoRequest(id, seq uint16, payload []byte) Message {
	return Message{Type: TypeEchoRequest, ID: id, Seq: seq, Payload: payload}
}

// EchoReplyTo builds the reply to a request.
func EchoReplyTo(req Message) Message {
	return Message{Type: TypeEchoReply, ID: req.ID, Seq: req.Seq, Payload: req.Payload}
}

// TimeExceeded builds the error a router sends when it drops a packet with
// an expired TTL. origIP is the wire-format packet being dropped; per
// RFC 792 the error quotes its header plus the first 8 payload bytes.
func TimeExceeded(origIP []byte) Message {
	return Message{Type: TypeTimeExceeded, Payload: quote(origIP)}
}

// DestUnreachable builds the no-route error (code 0: network unreachable).
func DestUnreachable(origIP []byte) Message {
	return Message{Type: TypeDestUnreach, Payload: quote(origIP)}
}

// PortUnreachable builds the error a host sends when a UDP datagram arrives
// for a port nobody listens on (code 3). For a UDP traceroute probe this is
// the "destination reached" signal: intermediate hops answer time-exceeded,
// the final hop answers port-unreachable.
func PortUnreachable(origIP []byte) Message {
	return Message{Type: TypeDestUnreach, Code: CodePortUnreach, Payload: quote(origIP)}
}

func quote(origIP []byte) []byte {
	n := ipv4.HeaderLen + 8
	if n > len(origIP) {
		n = len(origIP)
	}
	return append([]byte(nil), origIP[:n]...)
}

// QuotedEcho extracts the echo ID/Seq from an error message's quoted
// original packet, which is how traceroute matches a time-exceeded reply
// to the probe that triggered it.
func QuotedEcho(errMsg Message) (id, seq uint16, ok bool) {
	q := errMsg.Payload
	if len(q) < ipv4.HeaderLen {
		return 0, 0, false
	}
	ihl := int(q[0]&0x0f) * 4
	if q[9] != ipv4.ProtoICMP || len(q) < ihl+HeaderLen {
		return 0, 0, false
	}
	inner := q[ihl:]
	if inner[0] != TypeEchoRequest {
		return 0, 0, false
	}
	return uint16(inner[4])<<8 | uint16(inner[5]), uint16(inner[6])<<8 | uint16(inner[7]), true
}

// QuotedUDPProbe extracts the original IP ID and UDP ports from an error
// message quoting a UDP packet. A UDP traceroute prober encodes the probe
// slot in the IP ID and the flow label in the source port, so this is how a
// time-exceeded or port-unreachable reply is matched back to its probe.
func QuotedUDPProbe(errMsg Message) (ipID, srcPort, dstPort uint16, ok bool) {
	q := errMsg.Payload
	if len(q) < ipv4.HeaderLen {
		return 0, 0, 0, false
	}
	ihl := int(q[0]&0x0f) * 4
	// RFC 792 quotes the header plus >= 8 payload bytes, which for UDP
	// covers exactly src port, dst port, length, checksum.
	if q[9] != ipv4.ProtoUDP || ihl < ipv4.HeaderLen || len(q) < ihl+4 {
		return 0, 0, 0, false
	}
	ipID = uint16(q[4])<<8 | uint16(q[5])
	srcPort = uint16(q[ihl])<<8 | uint16(q[ihl+1])
	dstPort = uint16(q[ihl+2])<<8 | uint16(q[ihl+3])
	return ipID, srcPort, dstPort, true
}
