package icmp

import "testing"

func FuzzUnmarshal(f *testing.F) {
	req := EchoRequest(1, 2, []byte("ping"))
	f.Add(req.Marshal())
	te := TimeExceeded(make([]byte, 28))
	f.Add(te.Marshal())
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unmarshal(data)
		if err != nil {
			return
		}
		// Valid messages re-marshal to a checksum-valid form.
		if _, err := Unmarshal(m.Marshal()); err != nil {
			t.Fatalf("re-marshal broke validity: %v", err)
		}
		// QuotedEcho must never panic on arbitrary error payloads.
		_, _, _ = QuotedEcho(m)
	})
}
