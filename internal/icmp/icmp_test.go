package icmp

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/ipv4"
	"repro/internal/netaddr"
)

func TestEchoRoundTrip(t *testing.T) {
	f := func(id, seq uint16, payload []byte) bool {
		m := EchoRequest(id, seq, payload)
		out, err := Unmarshal(m.Marshal())
		return err == nil && out.Type == TypeEchoRequest &&
			out.ID == id && out.Seq == seq && bytes.Equal(out.Payload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEchoReply(t *testing.T) {
	req := EchoRequest(7, 3, []byte("ping"))
	rep := EchoReplyTo(req)
	if rep.Type != TypeEchoReply || rep.ID != 7 || rep.Seq != 3 || !bytes.Equal(rep.Payload, req.Payload) {
		t.Errorf("reply = %+v", rep)
	}
}

func TestChecksumValidation(t *testing.T) {
	m := EchoRequest(1, 1, []byte("x"))
	wire := m.Marshal()
	wire[4] ^= 0xff
	if _, err := Unmarshal(wire); err != ErrMalformed {
		t.Errorf("corrupted message err = %v", err)
	}
	if _, err := Unmarshal([]byte{1, 2}); err != ErrMalformed {
		t.Errorf("short message err = %v", err)
	}
}

func probePacket(t *testing.T, id, seq uint16) []byte {
	t.Helper()
	probe := EchoRequest(id, seq, []byte("trace"))
	pkt := ipv4.Packet{
		Header: ipv4.Header{TTL: 1, Protocol: ipv4.ProtoICMP,
			Src: netaddr.MakeIPv4(192, 168, 11, 1), Dst: netaddr.MakeIPv4(192, 168, 14, 1)},
		Payload: probe.Marshal(),
	}
	return pkt.Marshal()
}

func TestTimeExceededQuoting(t *testing.T) {
	orig := probePacket(t, 0x4d54, 5)
	te := TimeExceeded(orig)
	// RFC 792: header + 8 bytes.
	if len(te.Payload) != ipv4.HeaderLen+8 {
		t.Errorf("quoted %d bytes, want %d", len(te.Payload), ipv4.HeaderLen+8)
	}
	out, err := Unmarshal(te.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	id, seq, ok := QuotedEcho(out)
	if !ok || id != 0x4d54 || seq != 5 {
		t.Errorf("QuotedEcho = %d,%d,%v", id, seq, ok)
	}
}

func TestQuotedEchoRejectsNonEcho(t *testing.T) {
	// A quoted UDP packet must not match.
	pkt := ipv4.Packet{
		Header:  ipv4.Header{TTL: 1, Protocol: ipv4.ProtoUDP},
		Payload: make([]byte, 8),
	}
	te := TimeExceeded(pkt.Marshal())
	if _, _, ok := QuotedEcho(te); ok {
		t.Error("QuotedEcho matched a UDP quote")
	}
	if _, _, ok := QuotedEcho(Message{Payload: []byte{1}}); ok {
		t.Error("QuotedEcho matched a truncated quote")
	}
}

func TestDestUnreachable(t *testing.T) {
	orig := probePacket(t, 1, 1)
	m := DestUnreachable(orig)
	out, err := Unmarshal(m.Marshal())
	if err != nil || out.Type != TypeDestUnreach {
		t.Errorf("unreachable round trip: %+v %v", out, err)
	}
}

func TestShortQuote(t *testing.T) {
	// Quoting a packet shorter than header+8 must not panic.
	m := TimeExceeded([]byte{0x45, 0, 0, 20})
	if len(m.Payload) != 4 {
		t.Errorf("short quote = %d bytes", len(m.Payload))
	}
}

func TestPortUnreachableQuotedUDPProbe(t *testing.T) {
	// A UDP probe with a distinctive IP ID and ports must round-trip
	// through the port-unreachable quote and back out of the extractor.
	udpWire := []byte{0x82, 0x9b, 0x82, 0x9a, 0, 12, 0, 0, 1, 2, 3, 4}
	pkt := ipv4.Packet{
		Header:  ipv4.Header{ID: 0x1234, TTL: 7, Protocol: ipv4.ProtoUDP},
		Payload: udpWire,
	}
	m := PortUnreachable(pkt.Marshal())
	out, err := Unmarshal(m.Marshal())
	if err != nil || out.Type != TypeDestUnreach || out.Code != CodePortUnreach {
		t.Fatalf("port-unreachable round trip: %+v %v", out, err)
	}
	ipID, src, dst, ok := QuotedUDPProbe(out)
	if !ok || ipID != 0x1234 || src != 0x829b || dst != 0x829a {
		t.Errorf("QuotedUDPProbe = %#x,%#x,%#x,%v", ipID, src, dst, ok)
	}
	// Time-exceeded quotes of the same probe must match identically.
	te := TimeExceeded(pkt.Marshal())
	ipID, src, dst, ok = QuotedUDPProbe(te)
	if !ok || ipID != 0x1234 || src != 0x829b || dst != 0x829a {
		t.Errorf("QuotedUDPProbe(time-exceeded) = %#x,%#x,%#x,%v", ipID, src, dst, ok)
	}
}

func TestQuotedUDPProbeRejects(t *testing.T) {
	// An ICMP quote (echo probe) must not match the UDP extractor.
	echo := EchoRequest(1, 2, nil)
	pkt := ipv4.Packet{
		Header:  ipv4.Header{TTL: 1, Protocol: ipv4.ProtoICMP},
		Payload: echo.Marshal(),
	}
	if _, _, _, ok := QuotedUDPProbe(TimeExceeded(pkt.Marshal())); ok {
		t.Error("QuotedUDPProbe matched an ICMP quote")
	}
	if _, _, _, ok := QuotedUDPProbe(Message{Payload: []byte{0x45, 0, 0}}); ok {
		t.Error("QuotedUDPProbe matched a truncated quote")
	}
	// A quote cut off before the UDP ports must be rejected.
	short := ipv4.Packet{
		Header:  ipv4.Header{TTL: 1, Protocol: ipv4.ProtoUDP},
		Payload: []byte{1, 2},
	}
	if _, _, _, ok := QuotedUDPProbe(TimeExceeded(short.Marshal())); ok {
		t.Error("QuotedUDPProbe matched a quote without full UDP ports")
	}
}
