//go:build invariants

package invariant

// Enabled reports whether invariant checking is compiled in. This build
// (-tags invariants) runs every guarded check and panics on violation.
const Enabled = true
