//go:build !invariants

package invariant

import "testing"

func TestEnabledOffByDefault(t *testing.T) {
	if Enabled {
		t.Fatal("Enabled = true without the invariants build tag")
	}
}
