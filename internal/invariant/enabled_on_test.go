//go:build invariants

package invariant

import "testing"

func TestEnabledOnUnderTag(t *testing.T) {
	if !Enabled {
		t.Fatal("Enabled = false under -tags invariants")
	}
}
