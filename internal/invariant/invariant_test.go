package invariant

import (
	"strings"
	"testing"
)

func mustPanic(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, want) {
			t.Fatalf("panic = %v, want message containing %q", r, want)
		}
	}()
	fn()
}

func TestAssert(t *testing.T) {
	Assert(true, "unused")
	mustPanic(t, "heap out of order", func() { Assert(false, "heap out of order") })
}

func TestAssertf(t *testing.T) {
	Assertf(true, "unused %d", 1)
	mustPanic(t, "index 7", func() { Assertf(false, "index %d", 7) })
	mustPanic(t, "invariant violated", func() { Assertf(false, "anything") })
}
