// Package invariant provides build-tag-gated runtime assertions for the
// simulation's core data structures (DESIGN.md, "Determinism contract").
//
// Normal builds define Enabled = false and every check compiles away: call
// sites guard with
//
//	if invariant.Enabled {
//	    invariant.Assert(cond, "what broke")
//	}
//
// so the condition itself is dead code the compiler eliminates. Building
// with -tags invariants flips Enabled to true and a violated assertion
// panics with the message — the debugging build the paper's own authors
// would run before trusting a convergence number.
package invariant

import "fmt"

// Assert panics with msg if cond is false. Guard the call with
// invariant.Enabled so the check costs nothing in normal builds.
func Assert(cond bool, msg string) {
	if !cond {
		panic("invariant violated: " + msg)
	}
}

// Assertf is Assert with a formatted message. The format arguments are
// evaluated even when cond holds, so keep them cheap or pre-guard with
// Enabled (which call sites do anyway).
func Assertf(cond bool, format string, args ...any) {
	if !cond {
		panic(fmt.Sprintf("invariant violated: "+format, args...))
	}
}
