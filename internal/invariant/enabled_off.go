//go:build !invariants

package invariant

// Enabled reports whether invariant checking is compiled in. This is the
// default build: checks are disabled and guarded call sites compile to
// nothing. Build with -tags invariants to enable them.
const Enabled = false
