package udp

import (
	"bytes"
	"testing"

	"repro/internal/netaddr"
)

// Fuzzing fixes the pseudo-header addresses: the checksum covers them, so
// the decoder's behavior is only defined for a known src/dst pair.
var fuzzSrc = netaddr.MakeIPv4(10, 0, 0, 1)
var fuzzDst = netaddr.MakeIPv4(10, 0, 1, 1)

func FuzzUnmarshal(f *testing.F) {
	bfd := Datagram{SrcPort: 49152, DstPort: PortBFDControl, Payload: []byte{0x20, 0x40}}
	f.Add(bfd.Marshal(fuzzSrc, fuzzDst))
	f.Add((&Datagram{DstPort: 80}).Marshal(fuzzSrc, fuzzDst))
	f.Add([]byte{})
	f.Add(make([]byte, HeaderLen-1))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := Unmarshal(fuzzSrc, fuzzDst, data)
		if err != nil {
			return
		}
		// Re-marshal computes a fresh checksum (the input may have used
		// the zero "no checksum" form), so compare fields, not bytes.
		out := d.Marshal(fuzzSrc, fuzzDst)
		e, err := Unmarshal(fuzzSrc, fuzzDst, out)
		if err != nil {
			t.Fatalf("re-parse of remarshalled datagram failed: %v", err)
		}
		if e.SrcPort != d.SrcPort || e.DstPort != d.DstPort {
			t.Fatalf("round trip changed ports: %+v -> %+v", d, e)
		}
		if !bytes.Equal(e.Payload, d.Payload) {
			t.Fatal("round trip corrupted the payload")
		}
	})
}
