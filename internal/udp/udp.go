// Package udp implements the UDP header. In this reproduction UDP exists
// for one reason: BFD control packets ride in UDP datagrams (RFC 5881,
// destination port 3784), and the paper's overhead accounting charges BGP's
// fast failure detection for both BFD *and* UDP. The traffic generator also
// uses UDP so that the ECMP flow hash sees realistic 5-tuples.
package udp

import (
	"errors"

	"repro/internal/ipv4"
	"repro/internal/netaddr"
)

// HeaderLen is the UDP header size.
const HeaderLen = 8

// PortBFDControl is the RFC 5881 single-hop BFD control port.
const PortBFDControl = 3784

// Datagram is a UDP datagram.
type Datagram struct {
	SrcPort, DstPort uint16
	Payload          []byte
}

// ErrTruncated reports a buffer shorter than the UDP header or its claimed
// length.
var ErrTruncated = errors.New("udp: truncated datagram")

// ErrBadChecksum reports a checksum failure.
var ErrBadChecksum = errors.New("udp: bad checksum")

// Marshal renders the datagram, computing the checksum over the IPv4
// pseudo-header for the given addresses.
//
//simlint:hotpath
func (d *Datagram) Marshal(src, dst netaddr.IPv4) []byte {
	b := make([]byte, HeaderLen+len(d.Payload)) //simlint:alloc standalone datagram buffer; the TX fast path composes via PutHeader instead
	copy(b[HeaderLen:], d.Payload)
	d.PutHeader(src, dst, b)
	return b
}

// PutHeader writes the UDP header into b[:HeaderLen] and computes the
// checksum over b, whose tail must already hold the payload. It lets callers
// compose a datagram directly inside a larger frame buffer.
//
//simlint:hotpath
func (d *Datagram) PutHeader(src, dst netaddr.IPv4, b []byte) {
	b[0] = byte(d.SrcPort >> 8)
	b[1] = byte(d.SrcPort)
	b[2] = byte(d.DstPort >> 8)
	b[3] = byte(d.DstPort)
	l := uint16(len(b))
	b[4] = byte(l >> 8)
	b[5] = byte(l)
	b[6], b[7] = 0, 0
	ck := pseudoChecksum(src, dst, ipv4.ProtoUDP, b)
	if ck == 0 {
		ck = 0xffff // RFC 768: transmitted zero means "no checksum"
	}
	b[6] = byte(ck >> 8)
	b[7] = byte(ck)
}

// Unmarshal parses and validates a datagram carried between src and dst.
//
//simlint:hotpath
func Unmarshal(src, dst netaddr.IPv4, b []byte) (Datagram, error) {
	if len(b) < HeaderLen {
		return Datagram{}, ErrTruncated
	}
	l := int(uint16(b[4])<<8 | uint16(b[5]))
	if l < HeaderLen || l > len(b) {
		return Datagram{}, ErrTruncated
	}
	b = b[:l]
	if b[6] != 0 || b[7] != 0 { // checksum present
		if pseudoChecksum(src, dst, ipv4.ProtoUDP, b) != 0 {
			return Datagram{}, ErrBadChecksum
		}
	}
	return Datagram{
		SrcPort: uint16(b[0])<<8 | uint16(b[1]),
		DstPort: uint16(b[2])<<8 | uint16(b[3]),
		Payload: b[HeaderLen:],
	}, nil
}

// pseudoChecksum computes the transport checksum including the IPv4
// pseudo-header. Shared with package tcp via identical construction. The
// pseudo-header words are summed directly rather than materialized: this
// runs once per simulated packet, so it must not allocate.
//
//simlint:hotpath
func pseudoChecksum(src, dst netaddr.IPv4, proto byte, segment []byte) uint16 {
	sum := uint32(src[0])<<8 | uint32(src[1])
	sum += uint32(src[2])<<8 | uint32(src[3])
	sum += uint32(dst[0])<<8 | uint32(dst[1])
	sum += uint32(dst[2])<<8 | uint32(dst[3])
	sum += uint32(proto)
	sum += uint32(uint16(len(segment)))
	for i := 0; i+1 < len(segment); i += 2 {
		sum += uint32(segment[i])<<8 | uint32(segment[i+1])
	}
	if len(segment)%2 == 1 {
		sum += uint32(segment[len(segment)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// PseudoChecksum exposes the transport pseudo-header checksum for other
// transports (TCP uses the same construction with its own protocol number).
func PseudoChecksum(src, dst netaddr.IPv4, proto byte, segment []byte) uint16 {
	return pseudoChecksum(src, dst, proto, segment)
}
