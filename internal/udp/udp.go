// Package udp implements the UDP header. In this reproduction UDP exists
// for one reason: BFD control packets ride in UDP datagrams (RFC 5881,
// destination port 3784), and the paper's overhead accounting charges BGP's
// fast failure detection for both BFD *and* UDP. The traffic generator also
// uses UDP so that the ECMP flow hash sees realistic 5-tuples.
package udp

import (
	"errors"

	"repro/internal/ipv4"
	"repro/internal/netaddr"
)

// HeaderLen is the UDP header size.
const HeaderLen = 8

// PortBFDControl is the RFC 5881 single-hop BFD control port.
const PortBFDControl = 3784

// Datagram is a UDP datagram.
type Datagram struct {
	SrcPort, DstPort uint16
	Payload          []byte
}

// ErrTruncated reports a buffer shorter than the UDP header or its claimed
// length.
var ErrTruncated = errors.New("udp: truncated datagram")

// ErrBadChecksum reports a checksum failure.
var ErrBadChecksum = errors.New("udp: bad checksum")

// Marshal renders the datagram, computing the checksum over the IPv4
// pseudo-header for the given addresses.
func (d *Datagram) Marshal(src, dst netaddr.IPv4) []byte {
	b := make([]byte, HeaderLen+len(d.Payload))
	b[0] = byte(d.SrcPort >> 8)
	b[1] = byte(d.SrcPort)
	b[2] = byte(d.DstPort >> 8)
	b[3] = byte(d.DstPort)
	l := uint16(len(b))
	b[4] = byte(l >> 8)
	b[5] = byte(l)
	copy(b[HeaderLen:], d.Payload)
	ck := pseudoChecksum(src, dst, ipv4.ProtoUDP, b)
	if ck == 0 {
		ck = 0xffff // RFC 768: transmitted zero means "no checksum"
	}
	b[6] = byte(ck >> 8)
	b[7] = byte(ck)
	return b
}

// Unmarshal parses and validates a datagram carried between src and dst.
func Unmarshal(src, dst netaddr.IPv4, b []byte) (Datagram, error) {
	if len(b) < HeaderLen {
		return Datagram{}, ErrTruncated
	}
	l := int(uint16(b[4])<<8 | uint16(b[5]))
	if l < HeaderLen || l > len(b) {
		return Datagram{}, ErrTruncated
	}
	b = b[:l]
	if b[6] != 0 || b[7] != 0 { // checksum present
		if pseudoChecksum(src, dst, ipv4.ProtoUDP, b) != 0 {
			return Datagram{}, ErrBadChecksum
		}
	}
	return Datagram{
		SrcPort: uint16(b[0])<<8 | uint16(b[1]),
		DstPort: uint16(b[2])<<8 | uint16(b[3]),
		Payload: b[HeaderLen:],
	}, nil
}

// pseudoChecksum computes the transport checksum including the IPv4
// pseudo-header. Shared with package tcp via identical construction.
func pseudoChecksum(src, dst netaddr.IPv4, proto byte, segment []byte) uint16 {
	pseudo := make([]byte, 12, 12+len(segment)+1)
	copy(pseudo[0:4], src[:])
	copy(pseudo[4:8], dst[:])
	pseudo[9] = proto
	pseudo[10] = byte(len(segment) >> 8)
	pseudo[11] = byte(len(segment))
	pseudo = append(pseudo, segment...)
	return ipv4.Checksum(pseudo)
}

// PseudoChecksum exposes the transport pseudo-header checksum for other
// transports (TCP uses the same construction with its own protocol number).
func PseudoChecksum(src, dst netaddr.IPv4, proto byte, segment []byte) uint16 {
	return pseudoChecksum(src, dst, proto, segment)
}
