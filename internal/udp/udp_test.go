package udp

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/netaddr"
)

var (
	srcIP = netaddr.MakeIPv4(172, 16, 0, 1)
	dstIP = netaddr.MakeIPv4(172, 16, 0, 2)
)

func TestRoundTrip(t *testing.T) {
	f := func(sp, dp uint16, payload []byte) bool {
		d := Datagram{SrcPort: sp, DstPort: dp, Payload: payload}
		out, err := Unmarshal(srcIP, dstIP, d.Marshal(srcIP, dstIP))
		return err == nil && out.SrcPort == sp && out.DstPort == dp &&
			bytes.Equal(out.Payload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChecksumCoversAddresses(t *testing.T) {
	d := Datagram{SrcPort: 49152, DstPort: PortBFDControl, Payload: []byte("bfd")}
	b := d.Marshal(srcIP, dstIP)
	// Same bytes delivered between different addresses must fail: the
	// pseudo-header binds the datagram to its IP endpoints.
	if _, err := Unmarshal(srcIP, netaddr.MakeIPv4(172, 16, 0, 3), b); err != ErrBadChecksum {
		t.Errorf("err = %v, want ErrBadChecksum", err)
	}
}

func TestCorruptPayload(t *testing.T) {
	d := Datagram{SrcPort: 1, DstPort: 2, Payload: []byte("payload")}
	b := d.Marshal(srcIP, dstIP)
	b[len(b)-1] ^= 0x01
	if _, err := Unmarshal(srcIP, dstIP, b); err != ErrBadChecksum {
		t.Errorf("err = %v, want ErrBadChecksum", err)
	}
}

func TestTruncated(t *testing.T) {
	if _, err := Unmarshal(srcIP, dstIP, make([]byte, 4)); err != ErrTruncated {
		t.Errorf("err = %v, want ErrTruncated", err)
	}
	d := Datagram{SrcPort: 1, DstPort: 2, Payload: []byte("hello")}
	b := d.Marshal(srcIP, dstIP)
	if _, err := Unmarshal(srcIP, dstIP, b[:10]); err != ErrTruncated {
		t.Errorf("err = %v, want ErrTruncated", err)
	}
}

func TestBFDWireSize(t *testing.T) {
	// A 24-byte BFD control packet in UDP is 32 bytes; with IP (20) and
	// Ethernet (14) that is the 66-byte frame in the paper's Fig. 9.
	d := Datagram{SrcPort: 49152, DstPort: PortBFDControl, Payload: make([]byte, 24)}
	if got := len(d.Marshal(srcIP, dstIP)); got != 32 {
		t.Errorf("UDP datagram = %d bytes, want 32", got)
	}
}
