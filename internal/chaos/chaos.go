// Package chaos is a deterministic fault-injection campaign engine for the
// simulator. A campaign is a Spec: a named list of composable fault
// primitives — flap storms, gray (one-way) loss, hello corruption/delay,
// one-way carrier faults, correlated multi-link failures, and rolling
// maintenance drains — each scheduled at a virtual-time offset from the
// moment the spec is applied. Specs round-trip through JSON so campaigns
// can be checked in, diffed, and replayed; Apply resolves every target
// eagerly, schedules the faults as simulator events, and returns an
// Injector whose log records every action at the virtual time it fired.
//
// Everything is seed-reproducible: the package draws no randomness of its
// own (probabilistic behavior lives in simnet's impairment layer, which
// uses the simulation RNG), so the same spec on the same seed produces a
// byte-identical injector log and byte-identical protocol behavior.
package chaos

import (
	"encoding/json"
	"fmt"
	"time"
)

// Kind names a fault primitive.
type Kind string

// The scenario primitives.
const (
	// FlapStorm bounces one interface down/up repeatedly: Flaps cycles of
	// Period each, spending Duty of every period up. The interface ends
	// the storm up.
	FlapStorm Kind = "flap-storm"
	// GrayLoss drops a fraction (LossRate) of frames on the Device→Peer
	// direction of a link for Duration, leaving the reverse direction
	// clean — the asymmetric gray failure BFD and hello protocols
	// experience very differently.
	GrayLoss Kind = "gray-loss"
	// LinkImpair applies a compound impairment profile (LossRate,
	// CorruptRate, ExtraLatency, Jitter) to the Device→Peer direction for
	// Duration — corrupted and delayed hellos.
	LinkImpair Kind = "impair"
	// OneWay is a one-way fiber cut seen only by Device: frames from Peer
	// to Device blackhole and Device's optics raise a carrier alarm,
	// while Device's own transmitter keeps working and Peer sees nothing.
	OneWay Kind = "oneway"
	// Correlated fails the Device-side interface of every link in Links,
	// Stagger apart, restoring each Duration after it failed — a shared
	// risk group (power feed, line card) taking several links at once.
	Correlated Kind = "correlated"
	// Drain takes every interface of each node in Nodes down for
	// Duration, rolling through the list Stagger apart — the maintenance
	// workflow that reboots one switch at a time.
	Drain Kind = "drain"
)

// validKind reports whether k names a primitive. A switch rather than a
// package-level set keeps the package free of shared mutable state (the
// sharedstate lint rule).
func validKind(k Kind) bool {
	switch k {
	case FlapStorm, GrayLoss, LinkImpair, OneWay, Correlated, Drain:
		return true
	}
	return false
}

// Duration is a time.Duration that marshals to JSON as a human-readable
// string ("150ms") and unmarshals from either that form or integer
// nanoseconds.
type Duration time.Duration

// D converts to the standard library type.
func (d Duration) D() time.Duration { return time.Duration(d) }

// MarshalJSON renders the duration as a string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts "150ms" or integer nanoseconds.
func (d *Duration) UnmarshalJSON(data []byte) error {
	if len(data) > 0 && data[0] == '"' {
		var s string
		if err := json.Unmarshal(data, &s); err != nil {
			return err
		}
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("chaos: bad duration %q: %v", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var n int64
	if err := json.Unmarshal(data, &n); err != nil {
		return err
	}
	*d = Duration(n)
	return nil
}

// LinkRef names one direction-carrying endpoint of a link: the interface
// on Device that connects to Peer. For directional faults the impairment
// rides the Device→Peer transmit direction; for interface faults Device is
// the node executing the `ip link set down`.
type LinkRef struct {
	Device string `json:"device"`
	Peer   string `json:"peer"`
}

func (r LinkRef) String() string { return r.Device + "->" + r.Peer }

// Fault is one scheduled primitive. Kind selects the shape; the other
// fields parameterize it (see the Kind constants for which apply). Start
// is relative to the moment the spec is applied.
type Fault struct {
	Kind Kind `json:"kind"`

	// Link targets single-link kinds (flap-storm, gray-loss, impair,
	// oneway); Links targets correlated; Nodes targets drain.
	Link  LinkRef   `json:"link,omitempty"`
	Links []LinkRef `json:"links,omitempty"`
	Nodes []string  `json:"nodes,omitempty"`

	Start    Duration `json:"start"`
	Duration Duration `json:"duration,omitempty"`

	// Flap-storm shape: Flaps cycles of Period, up for Duty of each.
	Flaps  int      `json:"flaps,omitempty"`
	Period Duration `json:"period,omitempty"`
	Duty   float64  `json:"duty,omitempty"`

	// Impairment profile (gray-loss uses LossRate; impair uses all four).
	LossRate     float64  `json:"loss_rate,omitempty"`
	CorruptRate  float64  `json:"corrupt_rate,omitempty"`
	ExtraLatency Duration `json:"extra_latency,omitempty"`
	Jitter       Duration `json:"jitter,omitempty"`

	// Stagger spaces the elements of Links (correlated) or Nodes (drain).
	Stagger Duration `json:"stagger,omitempty"`
}

// End returns the fault's last scheduled action time (relative to apply).
func (f Fault) End() time.Duration {
	switch f.Kind {
	case FlapStorm:
		return f.Start.D() + time.Duration(f.Flaps)*f.Period.D()
	case Correlated:
		n := len(f.Links)
		if n == 0 {
			return f.Start.D()
		}
		return f.Start.D() + time.Duration(n-1)*f.Stagger.D() + f.Duration.D()
	case Drain:
		n := len(f.Nodes)
		if n == 0 {
			return f.Start.D()
		}
		return f.Start.D() + time.Duration(n-1)*f.Stagger.D() + f.Duration.D()
	default:
		return f.Start.D() + f.Duration.D()
	}
}

// Validate checks one fault's shape.
func (f Fault) Validate() error {
	if !validKind(f.Kind) {
		return fmt.Errorf("chaos: unknown fault kind %q", f.Kind)
	}
	if f.Start < 0 {
		return fmt.Errorf("chaos: %s: negative start %v", f.Kind, f.Start.D())
	}
	needLink := func() error {
		if f.Link.Device == "" || f.Link.Peer == "" {
			return fmt.Errorf("chaos: %s: link needs both device and peer", f.Kind)
		}
		return nil
	}
	needDuration := func() error {
		if f.Duration <= 0 {
			return fmt.Errorf("chaos: %s: duration must be positive", f.Kind)
		}
		return nil
	}
	rate := func(name string, v float64) error {
		if v < 0 || v > 1 {
			return fmt.Errorf("chaos: %s: %s %v outside [0,1]", f.Kind, name, v)
		}
		return nil
	}
	switch f.Kind {
	case FlapStorm:
		if err := needLink(); err != nil {
			return err
		}
		if f.Flaps < 1 {
			return fmt.Errorf("chaos: flap-storm needs at least one flap")
		}
		if f.Period <= 0 {
			return fmt.Errorf("chaos: flap-storm period must be positive")
		}
		if f.Duty <= 0 || f.Duty >= 1 {
			return fmt.Errorf("chaos: flap-storm duty %v outside (0,1)", f.Duty)
		}
	case GrayLoss:
		if err := needLink(); err != nil {
			return err
		}
		if err := needDuration(); err != nil {
			return err
		}
		if f.LossRate <= 0 || f.LossRate > 1 {
			return fmt.Errorf("chaos: gray-loss rate %v outside (0,1]", f.LossRate)
		}
	case LinkImpair:
		if err := needLink(); err != nil {
			return err
		}
		if err := needDuration(); err != nil {
			return err
		}
		if err := rate("loss_rate", f.LossRate); err != nil {
			return err
		}
		if err := rate("corrupt_rate", f.CorruptRate); err != nil {
			return err
		}
		if f.LossRate == 0 && f.CorruptRate == 0 && f.ExtraLatency == 0 && f.Jitter == 0 {
			return fmt.Errorf("chaos: impair fault has an empty profile")
		}
	case OneWay:
		if err := needLink(); err != nil {
			return err
		}
		if err := needDuration(); err != nil {
			return err
		}
	case Correlated:
		if len(f.Links) < 2 {
			return fmt.Errorf("chaos: correlated needs at least two links, got %d", len(f.Links))
		}
		for _, l := range f.Links {
			if l.Device == "" || l.Peer == "" {
				return fmt.Errorf("chaos: correlated link needs both device and peer")
			}
		}
		if err := needDuration(); err != nil {
			return err
		}
		if f.Stagger < 0 {
			return fmt.Errorf("chaos: correlated stagger must be non-negative")
		}
	case Drain:
		if len(f.Nodes) < 1 {
			return fmt.Errorf("chaos: drain needs at least one node")
		}
		for _, n := range f.Nodes {
			if n == "" {
				return fmt.Errorf("chaos: drain node name empty")
			}
		}
		if err := needDuration(); err != nil {
			return err
		}
		if f.Stagger < 0 {
			return fmt.Errorf("chaos: drain stagger must be non-negative")
		}
	}
	return nil
}

// Spec is a named fault campaign.
type Spec struct {
	Name   string  `json:"name"`
	Faults []Fault `json:"faults"`
}

// Validate checks every fault.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("chaos: spec needs a name")
	}
	if len(s.Faults) == 0 {
		return fmt.Errorf("chaos: spec %q has no faults", s.Name)
	}
	for i, f := range s.Faults {
		if err := f.Validate(); err != nil {
			return fmt.Errorf("%v (fault %d)", err, i)
		}
	}
	return nil
}

// Horizon returns the time of the campaign's last scheduled action,
// relative to the moment the spec is applied. Experiments typically run
// until Horizon plus a settle period.
func (s Spec) Horizon() time.Duration {
	var h time.Duration
	for _, f := range s.Faults {
		if end := f.End(); end > h {
			h = end
		}
	}
	return h
}

// Render produces the canonical JSON form of the spec.
func (s Spec) Render() ([]byte, error) {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// ParseSpec decodes and validates a JSON campaign.
func ParseSpec(data []byte) (Spec, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return Spec{}, fmt.Errorf("chaos: parsing spec: %v", err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}
