package chaos

import (
	"fmt"
	"time"

	"repro/internal/simnet"
)

// Event is one injector action, logged at the virtual time it fired.
type Event struct {
	At     time.Duration `json:"at"`
	Kind   Kind          `json:"kind"`
	Action string        `json:"action"`
	Target string        `json:"target"`
	Detail string        `json:"detail,omitempty"`
}

// Injector is a spec applied to a simulation: it owns the log of every
// fault action actually executed. Because actions are simulator events,
// the log is in virtual-time order and — for a given spec and seed —
// identical run to run.
type Injector struct {
	Spec Spec

	sim    simnet.Engine
	events []Event
}

// Events returns a copy of the injector log so far.
func (in *Injector) Events() []Event {
	return append([]Event(nil), in.events...)
}

func (in *Injector) record(k Kind, action, target, detail string) {
	in.events = append(in.events, Event{
		At: in.sim.Now(), Kind: k, Action: action, Target: target, Detail: detail,
	})
}

// resolvePort finds the interface on ref.Device wired to ref.Peer. Node
// port slices are in insertion order, so resolution is deterministic even
// when parallel links exist (the first is chosen).
func resolvePort(sim simnet.Engine, ref LinkRef) (*simnet.Port, error) {
	node := sim.Node(ref.Device)
	if node == nil {
		return nil, fmt.Errorf("chaos: no node %q", ref.Device)
	}
	for _, p := range node.Ports[1:] {
		if p.Link != nil && p.Peer().Node.Name == ref.Peer {
			return p, nil
		}
	}
	return nil, fmt.Errorf("chaos: %s has no link to %s", ref.Device, ref.Peer)
}

// Apply validates the spec, resolves every target against the simulation,
// and schedules all fault actions relative to the current virtual time.
// Resolution is eager: a spec naming a missing device or link fails here,
// before anything is scheduled. The returned Injector accumulates the
// action log as the simulation runs the campaign.
func Apply(sim simnet.Engine, spec Spec) (*Injector, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	in := &Injector{Spec: spec, sim: sim}
	for i := range spec.Faults {
		f := spec.Faults[i]
		var err error
		switch f.Kind {
		case FlapStorm:
			err = in.applyFlapStorm(f)
		case GrayLoss, LinkImpair:
			err = in.applyImpair(f)
		case OneWay:
			err = in.applyOneWay(f)
		case Correlated:
			err = in.applyCorrelated(f)
		case Drain:
			err = in.applyDrain(f)
		}
		if err != nil {
			return nil, fmt.Errorf("%v (fault %d)", err, i)
		}
	}
	return in, nil
}

func (in *Injector) applyFlapStorm(f Fault) error {
	port, err := resolvePort(in.sim, f.Link)
	if err != nil {
		return err
	}
	// Each cycle: down for (1-Duty)·Period, then up for the rest.
	down := time.Duration((1 - f.Duty) * float64(f.Period.D()))
	for i := 0; i < f.Flaps; i++ {
		at := f.Start.D() + time.Duration(i)*f.Period.D()
		flap := i + 1
		//simlint:shardsafe control event runs at the quiesce barrier with every shard idle; revisit under barrier-free sync
		in.sim.Schedule(at, func() {
			port.Fail()
			in.record(FlapStorm, "fail", port.Name(), fmt.Sprintf("flap %d/%d", flap, f.Flaps))
		})
		//simlint:shardsafe control event runs at the quiesce barrier with every shard idle; revisit under barrier-free sync
		in.sim.Schedule(at+down, func() {
			port.Restore()
			in.record(FlapStorm, "restore", port.Name(), fmt.Sprintf("flap %d/%d", flap, f.Flaps))
		})
	}
	return nil
}

// applyImpair covers both gray-loss and the compound impair profile: the
// difference is only which profile fields are populated.
func (in *Injector) applyImpair(f Fault) error {
	port, err := resolvePort(in.sim, f.Link)
	if err != nil {
		return err
	}
	imp := simnet.Impairment{
		LossRate:     f.LossRate,
		CorruptRate:  f.CorruptRate,
		ExtraLatency: f.ExtraLatency.D(),
		Jitter:       f.Jitter.D(),
	}
	detail := fmt.Sprintf("loss=%v corrupt=%v latency=%v jitter=%v",
		f.LossRate, f.CorruptRate, f.ExtraLatency.D(), f.Jitter.D())
	//simlint:shardsafe control event runs at the quiesce barrier with every shard idle; revisit under barrier-free sync
	in.sim.Schedule(f.Start.D(), func() {
		port.Link.Impair(port, imp)
		in.record(f.Kind, "impair", port.Name(), detail)
	})
	//simlint:shardsafe control event runs at the quiesce barrier with every shard idle; revisit under barrier-free sync
	in.sim.Schedule(f.Start.D()+f.Duration.D(), func() {
		port.Link.Impair(port, simnet.Impairment{})
		in.record(f.Kind, "clear", port.Name(), "")
	})
	return nil
}

func (in *Injector) applyOneWay(f Fault) error {
	// f.Link.Device is the victim: its receiver goes dark (frames from
	// Peer blackhole, its optics alarm) while its transmitter keeps
	// talking and the peer's interface stays clean.
	port, err := resolvePort(in.sim, f.Link)
	if err != nil {
		return err
	}
	peer := port.Peer()
	//simlint:shardsafe control event runs at the quiesce barrier with every shard idle; revisit under barrier-free sync
	in.sim.Schedule(f.Start.D(), func() {
		peer.Link.Impair(peer, simnet.Impairment{Down: true})
		port.CarrierFault()
		in.record(OneWay, "carrier-fault", port.Name(), "rx direction blackholed")
	})
	//simlint:shardsafe control event runs at the quiesce barrier with every shard idle; revisit under barrier-free sync
	in.sim.Schedule(f.Start.D()+f.Duration.D(), func() {
		peer.Link.Impair(peer, simnet.Impairment{})
		port.CarrierRestore()
		in.record(OneWay, "carrier-restore", port.Name(), "")
	})
	return nil
}

func (in *Injector) applyCorrelated(f Fault) error {
	ports := make([]*simnet.Port, len(f.Links))
	for i, ref := range f.Links {
		p, err := resolvePort(in.sim, ref)
		if err != nil {
			return err
		}
		ports[i] = p
	}
	for i, p := range ports {
		port := p
		at := f.Start.D() + time.Duration(i)*f.Stagger.D()
		//simlint:shardsafe control event runs at the quiesce barrier with every shard idle; revisit under barrier-free sync
		in.sim.Schedule(at, func() {
			port.Fail()
			in.record(Correlated, "fail", port.Name(), "")
		})
		//simlint:shardsafe control event runs at the quiesce barrier with every shard idle; revisit under barrier-free sync
		in.sim.Schedule(at+f.Duration.D(), func() {
			port.Restore()
			in.record(Correlated, "restore", port.Name(), "")
		})
	}
	return nil
}

func (in *Injector) applyDrain(f Fault) error {
	nodes := make([]*simnet.Node, len(f.Nodes))
	for i, name := range f.Nodes {
		n := in.sim.Node(name)
		if n == nil {
			return fmt.Errorf("chaos: no node %q", name)
		}
		nodes[i] = n
	}
	for i, n := range nodes {
		node := n
		at := f.Start.D() + time.Duration(i)*f.Stagger.D()
		//simlint:shardsafe control event runs at the quiesce barrier with every shard idle; revisit under barrier-free sync
		in.sim.Schedule(at, func() {
			for _, p := range node.Ports[1:] {
				p.Fail()
			}
			in.record(Drain, "drain", node.Name, fmt.Sprintf("%d ports", len(node.Ports)-1))
		})
		//simlint:shardsafe control event runs at the quiesce barrier with every shard idle; revisit under barrier-free sync
		in.sim.Schedule(at+f.Duration.D(), func() {
			for _, p := range node.Ports[1:] {
				p.Restore()
			}
			in.record(Drain, "undrain", node.Name, fmt.Sprintf("%d ports", len(node.Ports)-1))
		})
	}
	return nil
}
