package chaos

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/simnet"
)

// handler records port events with timestamps.
type handler struct {
	sim   *simnet.Sim
	downs []time.Duration
	ups   []time.Duration
	rx    int
}

func (h *handler) Start()                           {}
func (h *handler) PortDown(*simnet.Port)            { h.downs = append(h.downs, h.sim.Now()) }
func (h *handler) PortUp(*simnet.Port)              { h.ups = append(h.ups, h.sim.Now()) }
func (h *handler) HandleFrame(*simnet.Port, []byte) { h.rx++ }

// fabric builds a tiny three-node line a—b—c for target resolution tests.
func fabric(t *testing.T) (*simnet.Sim, map[string]*handler) {
	t.Helper()
	s := simnet.New(1)
	hs := map[string]*handler{}
	for _, name := range []string{"a", "b", "c"} {
		n := s.AddNode(name)
		h := &handler{sim: s}
		n.Handler = h
		hs[name] = h
	}
	s.Connect(s.Node("a").AddPort(), s.Node("b").AddPort())
	s.Connect(s.Node("b").AddPort(), s.Node("c").AddPort())
	return s, hs
}

func TestSpecJSONRoundTrip(t *testing.T) {
	spec := Spec{
		Name: "kitchen-sink",
		Faults: []Fault{
			{Kind: FlapStorm, Link: LinkRef{"a", "b"}, Start: Duration(time.Second),
				Flaps: 5, Period: Duration(400 * time.Millisecond), Duty: 0.25},
			{Kind: GrayLoss, Link: LinkRef{"b", "c"}, Start: Duration(2 * time.Second),
				Duration: Duration(3 * time.Second), LossRate: 0.3},
			{Kind: LinkImpair, Link: LinkRef{"a", "b"}, Start: 0,
				Duration: Duration(time.Second), CorruptRate: 0.25,
				ExtraLatency: Duration(30 * time.Millisecond), Jitter: Duration(10 * time.Millisecond)},
			{Kind: OneWay, Link: LinkRef{"c", "b"}, Start: Duration(time.Second),
				Duration: Duration(2 * time.Second)},
			{Kind: Correlated, Links: []LinkRef{{"a", "b"}, {"b", "c"}}, Start: 0,
				Duration: Duration(time.Second), Stagger: Duration(5 * time.Millisecond)},
			{Kind: Drain, Nodes: []string{"b", "c"}, Start: 0,
				Duration: Duration(time.Second), Stagger: Duration(3 * time.Second)},
		},
	}
	data, err := spec.Render()
	if err != nil {
		t.Fatalf("Render: %v", err)
	}
	got, err := ParseSpec(data)
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if !reflect.DeepEqual(spec, got) {
		t.Errorf("round trip changed spec:\nsent %+v\ngot  %+v", spec, got)
	}
	if !strings.Contains(string(data), `"400ms"`) {
		t.Errorf("durations should render human-readable, got:\n%s", data)
	}
}

func TestDurationUnmarshalForms(t *testing.T) {
	var d Duration
	if err := d.UnmarshalJSON([]byte(`"150ms"`)); err != nil || d.D() != 150*time.Millisecond {
		t.Errorf(`"150ms" -> %v, %v`, d.D(), err)
	}
	if err := d.UnmarshalJSON([]byte(`1000000`)); err != nil || d.D() != time.Millisecond {
		t.Errorf(`1000000 -> %v, %v`, d.D(), err)
	}
	if err := d.UnmarshalJSON([]byte(`"not-a-duration"`)); err == nil {
		t.Error("bad duration string accepted")
	}
}

func TestValidateRejectsBadFaults(t *testing.T) {
	cases := []struct {
		name string
		f    Fault
	}{
		{"unknown kind", Fault{Kind: "meteor-strike"}},
		{"missing link", Fault{Kind: FlapStorm, Flaps: 1, Period: Duration(time.Second), Duty: 0.5}},
		{"zero flaps", Fault{Kind: FlapStorm, Link: LinkRef{"a", "b"}, Period: Duration(time.Second), Duty: 0.5}},
		{"duty one", Fault{Kind: FlapStorm, Link: LinkRef{"a", "b"}, Flaps: 1, Period: Duration(time.Second), Duty: 1}},
		{"zero loss", Fault{Kind: GrayLoss, Link: LinkRef{"a", "b"}, Duration: Duration(time.Second)}},
		{"no duration", Fault{Kind: OneWay, Link: LinkRef{"a", "b"}}},
		{"empty profile", Fault{Kind: LinkImpair, Link: LinkRef{"a", "b"}, Duration: Duration(time.Second)}},
		{"one link correlated", Fault{Kind: Correlated, Links: []LinkRef{{"a", "b"}}, Duration: Duration(time.Second)}},
		{"no nodes", Fault{Kind: Drain, Duration: Duration(time.Second)}},
		{"negative start", Fault{Kind: OneWay, Link: LinkRef{"a", "b"}, Start: Duration(-time.Second), Duration: Duration(time.Second)}},
	}
	for _, c := range cases {
		if err := c.f.Validate(); err == nil {
			t.Errorf("%s: validated, want error", c.name)
		}
	}
}

func TestHorizon(t *testing.T) {
	spec := Spec{Name: "h", Faults: []Fault{
		{Kind: FlapStorm, Link: LinkRef{"a", "b"}, Start: Duration(time.Second),
			Flaps: 4, Period: Duration(500 * time.Millisecond), Duty: 0.5},
		{Kind: Drain, Nodes: []string{"a", "b", "c"}, Start: 0,
			Duration: Duration(time.Second), Stagger: Duration(2 * time.Second)},
	}}
	// Flap storm ends at 1s + 4·500ms = 3s; drain at 2·2s + 1s = 5s.
	if got, want := spec.Horizon(), 5*time.Second; got != want {
		t.Errorf("Horizon = %v, want %v", got, want)
	}
}

func TestApplyRejectsUnresolvableTargets(t *testing.T) {
	s, _ := fabric(t)
	for _, spec := range []Spec{
		{Name: "no-node", Faults: []Fault{{Kind: OneWay, Link: LinkRef{"zz", "b"}, Duration: Duration(time.Second)}}},
		{Name: "no-link", Faults: []Fault{{Kind: OneWay, Link: LinkRef{"a", "c"}, Duration: Duration(time.Second)}}},
		{Name: "no-drain-node", Faults: []Fault{{Kind: Drain, Nodes: []string{"zz"}, Duration: Duration(time.Second)}}},
	} {
		if _, err := Apply(s, spec); err == nil {
			t.Errorf("%s: applied, want resolution error", spec.Name)
		}
	}
}

func TestFlapStormSchedule(t *testing.T) {
	s, hs := fabric(t)
	spec := Spec{Name: "storm", Faults: []Fault{{
		Kind: FlapStorm, Link: LinkRef{"a", "b"}, Start: Duration(10 * time.Millisecond),
		Flaps: 3, Period: Duration(100 * time.Millisecond), Duty: 0.4,
	}}}
	in, err := Apply(s, spec)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	s.Start()
	s.RunFor(spec.Horizon() + 50*time.Millisecond)

	// Each cycle: down at start, up after (1-0.4)·100ms = 60ms.
	h := hs["a"]
	detect := s.LocalDetectDelay
	wantDowns := []time.Duration{10 * time.Millisecond, 110 * time.Millisecond, 210 * time.Millisecond}
	wantUps := []time.Duration{70 * time.Millisecond, 170 * time.Millisecond, 270 * time.Millisecond}
	if len(h.downs) != 3 || len(h.ups) != 3 {
		t.Fatalf("a saw %d downs / %d ups, want 3/3 (downs=%v ups=%v)", len(h.downs), len(h.ups), h.downs, h.ups)
	}
	for i := range wantDowns {
		if h.downs[i] != wantDowns[i]+detect {
			t.Errorf("down %d at %v, want %v", i, h.downs[i], wantDowns[i]+detect)
		}
		if h.ups[i] != wantUps[i]+detect {
			t.Errorf("up %d at %v, want %v", i, h.ups[i], wantUps[i]+detect)
		}
	}
	// The peer sees nothing at the physical layer.
	if len(hs["b"].downs) != 0 {
		t.Errorf("peer saw %v downs, want none", hs["b"].downs)
	}
	// The port ends the storm up.
	if !s.Node("a").Port(1).Up() {
		t.Error("port still down after the storm")
	}
	// Six actions logged, alternating fail/restore, in time order.
	evs := in.Events()
	if len(evs) != 6 {
		t.Fatalf("injector logged %d events, want 6: %+v", len(evs), evs)
	}
	for i, ev := range evs {
		wantAction := "fail"
		if i%2 == 1 {
			wantAction = "restore"
		}
		if ev.Action != wantAction || ev.Target != "a:eth1" || ev.Kind != FlapStorm {
			t.Errorf("event %d = %+v, want %s on a:eth1", i, ev, wantAction)
		}
		if i > 0 && ev.At < evs[i-1].At {
			t.Errorf("events out of order: %v after %v", ev.At, evs[i-1].At)
		}
	}
}

func TestGrayLossWindow(t *testing.T) {
	s, hs := fabric(t)
	spec := Spec{Name: "gray", Faults: []Fault{{
		Kind: GrayLoss, Link: LinkRef{"a", "b"}, Start: Duration(10 * time.Millisecond),
		Duration: Duration(100 * time.Millisecond), LossRate: 1,
	}}}
	if _, err := Apply(s, spec); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	a := s.Node("a").Port(1)
	// One frame before, one during, one after the loss window; the
	// reverse direction sends during the window and must get through.
	s.At(5*time.Millisecond, func() { a.Send([]byte("before")) })
	s.At(50*time.Millisecond, func() { a.Send([]byte("during")) })
	s.At(50*time.Millisecond, func() { s.Node("b").Port(1).Send([]byte("reverse")) })
	s.At(150*time.Millisecond, func() { a.Send([]byte("after")) })
	s.Start()
	s.RunFor(200 * time.Millisecond)

	if hs["b"].rx != 2 {
		t.Errorf("b received %d frames, want 2 (before+after)", hs["b"].rx)
	}
	if hs["a"].rx != 1 {
		t.Errorf("a received %d frames, want 1 (reverse direction clean)", hs["a"].rx)
	}
	if got := a.Link.Stats(a).Lost; got != 1 {
		t.Errorf("a->b Lost = %d, want 1", got)
	}
	if got := a.Link.Impaired(a); got != (simnet.Impairment{}) {
		t.Errorf("impairment still installed after window: %+v", got)
	}
}

func TestOneWayCarrierFault(t *testing.T) {
	s, hs := fabric(t)
	spec := Spec{Name: "oneway", Faults: []Fault{{
		Kind: OneWay, Link: LinkRef{"b", "c"}, Start: Duration(10 * time.Millisecond),
		Duration: Duration(100 * time.Millisecond),
	}}}
	in, err := Apply(s, spec)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	// During the fault: c->b blackholes, b->c still delivers.
	s.At(50*time.Millisecond, func() { s.Node("c").Port(1).Send([]byte("to-victim")) })
	s.At(50*time.Millisecond, func() { s.Node("b").Port(2).Send([]byte("from-victim")) })
	s.Start()
	s.RunFor(300 * time.Millisecond)

	// Only the victim hears carrier events; the peer hears nothing.
	if len(hs["b"].downs) != 1 || len(hs["b"].ups) != 1 {
		t.Errorf("victim downs=%v ups=%v, want one each", hs["b"].downs, hs["b"].ups)
	}
	if len(hs["c"].downs)+len(hs["c"].ups) != 0 {
		t.Errorf("peer saw carrier events: downs=%v ups=%v", hs["c"].downs, hs["c"].ups)
	}
	if hs["b"].rx != 0 {
		t.Errorf("victim received %d frames during one-way cut, want 0", hs["b"].rx)
	}
	if hs["c"].rx != 1 {
		t.Errorf("peer received %d frames, want 1 (victim TX unaffected)", hs["c"].rx)
	}
	evs := in.Events()
	if len(evs) != 2 || evs[0].Action != "carrier-fault" || evs[1].Action != "carrier-restore" {
		t.Errorf("injector log = %+v, want carrier-fault then carrier-restore", evs)
	}
}

func TestCorrelatedStagger(t *testing.T) {
	s, hs := fabric(t)
	spec := Spec{Name: "corr", Faults: []Fault{{
		Kind: Correlated, Links: []LinkRef{{"b", "a"}, {"b", "c"}},
		Start: Duration(10 * time.Millisecond), Duration: Duration(100 * time.Millisecond),
		Stagger: Duration(5 * time.Millisecond),
	}}}
	if _, err := Apply(s, spec); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	s.Start()
	s.RunFor(spec.Horizon() + 50*time.Millisecond)

	h := hs["b"]
	detect := s.LocalDetectDelay
	if len(h.downs) != 2 || len(h.ups) != 2 {
		t.Fatalf("b saw %d downs / %d ups, want 2/2", len(h.downs), len(h.ups))
	}
	if got, want := h.downs[1]-h.downs[0], 5*time.Millisecond; got != want {
		t.Errorf("stagger between failures = %v, want %v", got, want)
	}
	if got, want := h.ups[0], 110*time.Millisecond+detect; got != want {
		t.Errorf("first restore at %v, want %v", got, want)
	}
}

func TestDrainRollsThroughNodes(t *testing.T) {
	s, hs := fabric(t)
	spec := Spec{Name: "drain", Faults: []Fault{{
		Kind: Drain, Nodes: []string{"a", "c"}, Start: Duration(10 * time.Millisecond),
		Duration: Duration(50 * time.Millisecond), Stagger: Duration(200 * time.Millisecond),
	}}}
	in, err := Apply(s, spec)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	s.Start()
	s.RunFor(spec.Horizon() + 50*time.Millisecond)

	// a (1 port) drains at 10ms, c (1 port) at 210ms; never overlapping.
	if len(hs["a"].downs) != 1 || len(hs["a"].ups) != 1 {
		t.Errorf("a downs=%v ups=%v, want one each", hs["a"].downs, hs["a"].ups)
	}
	if len(hs["c"].downs) != 1 || len(hs["c"].ups) != 1 {
		t.Errorf("c downs=%v ups=%v, want one each", hs["c"].downs, hs["c"].ups)
	}
	if len(hs["a"].ups) == 1 && len(hs["c"].downs) == 1 && hs["c"].downs[0] < hs["a"].ups[0] {
		t.Errorf("drains overlap: c down at %v before a up at %v", hs["c"].downs[0], hs["a"].ups[0])
	}
	evs := in.Events()
	if len(evs) != 4 {
		t.Fatalf("injector logged %d events, want 4: %+v", len(evs), evs)
	}
	if evs[0].Action != "drain" || evs[0].Target != "a" || evs[1].Action != "undrain" {
		t.Errorf("unexpected log order: %+v", evs)
	}
}

// TestInjectorLogDeterminism applies the same multi-fault spec twice on
// fresh simulations with the same seed and requires identical logs.
func TestInjectorLogDeterminism(t *testing.T) {
	spec := Spec{Name: "combo", Faults: []Fault{
		{Kind: FlapStorm, Link: LinkRef{"a", "b"}, Start: Duration(5 * time.Millisecond),
			Flaps: 4, Period: Duration(40 * time.Millisecond), Duty: 0.5},
		{Kind: LinkImpair, Link: LinkRef{"b", "c"}, Start: 0,
			Duration: Duration(120 * time.Millisecond), CorruptRate: 0.5, Jitter: Duration(time.Millisecond)},
		{Kind: OneWay, Link: LinkRef{"c", "b"}, Start: Duration(20 * time.Millisecond),
			Duration: Duration(60 * time.Millisecond)},
	}}
	run := func() []Event {
		s, _ := fabric(t)
		in, err := Apply(s, spec)
		if err != nil {
			t.Fatalf("Apply: %v", err)
		}
		s.Start()
		s.RunFor(spec.Horizon() + 50*time.Millisecond)
		return in.Events()
	}
	first, second := run(), run()
	if !reflect.DeepEqual(first, second) {
		t.Errorf("injector logs diverged:\n%+v\n%+v", first, second)
	}
}
