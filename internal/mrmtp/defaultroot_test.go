package mrmtp

import (
	"testing"
	"time"

	"repro/internal/ethernet"
	"repro/internal/ipv4"
	"repro/internal/metrics"
	"repro/internal/netaddr"
	"repro/internal/simnet"
)

// These tests cover the DefaultRoot withdrawal: a device that loses its
// last live uplink has no VID entries naming the remote roots it served by
// hashed up-forwarding, so it withdraws the whole class with LOST{0} and
// restores it with FOUND{0} once an uplink returns.

func TestDefaultRootWithdrawnWhenLastUplinkDies(t *testing.T) {
	c := newColumn(t)
	if c.spine.lostSent[DefaultRoot] || c.tor.unreachable[1][DefaultRoot] {
		t.Fatal("up-default withdrawn in steady state")
	}

	// The column spine has a single uplink (port 3 to the top): failing it
	// leaves the spine with no up-path at all.
	c.spine.Node.Port(3).Fail()
	c.sim.RunFor(300 * time.Millisecond)
	if !c.spine.lostSent[DefaultRoot] {
		t.Error("spine did not withdraw its up-default after losing the last uplink")
	}
	if !c.tor.unreachable[1][DefaultRoot] {
		t.Error("tor did not mark the spine's up-default unreachable")
	}
	if !c.tor2.unreachable[1][DefaultRoot] {
		t.Error("tor2 did not mark the spine's up-default unreachable")
	}

	// Traffic for a root only the up-default could serve must now die at
	// the ToR instead of being hashed into the cut-off spine.
	spineRxBefore := c.spine.Stats.DataForwarded + c.spine.Stats.DataDropped
	torDropBefore := c.tor.Stats.DataDropped
	ip := ipv4.Packet{Header: ipv4.Header{Protocol: ipv4.ProtoUDP, TTL: 64,
		Src: rack(11).Host(1), Dst: netaddr.MakeIPv4(192, 168, 99, 1)}}
	f := ethernet.Frame{Dst: netaddr.Broadcast, Src: c.server.Port(1).MAC,
		EtherType: ethernet.TypeIPv4, Payload: ip.Marshal()}
	c.server.Port(1).Send(f.Marshal())
	c.sim.RunFor(10 * time.Millisecond)
	if c.tor.Stats.DataDropped != torDropBefore+1 {
		t.Errorf("tor dropped %d packets, want %d",
			c.tor.Stats.DataDropped, torDropBefore+1)
	}
	if got := c.spine.Stats.DataForwarded + c.spine.Stats.DataDropped; got != spineRxBefore {
		t.Error("tor hashed traffic into a spine with a withdrawn up-default")
	}
}

func TestDefaultRootRestoredWhenUplinkReturns(t *testing.T) {
	c := newColumn(t)
	c.spine.Node.Port(3).Fail()
	c.sim.RunFor(300 * time.Millisecond)
	if !c.tor.unreachable[1][DefaultRoot] {
		t.Fatal("withdrawal did not propagate")
	}

	// Restore: the adjacency re-passes Slow-to-Accept (3 hellos), then the
	// spine reevaluates its written-off roots and announces FOUND{0}.
	c.spine.Node.Port(3).Restore()
	c.sim.RunFor(time.Second)
	if c.spine.lostSent[DefaultRoot] {
		t.Error("spine kept its up-default withdrawn after uplink recovery")
	}
	if c.tor.unreachable[1][DefaultRoot] || c.tor2.unreachable[1][DefaultRoot] {
		t.Error("ToRs still mark the spine's up-default unreachable after FOUND")
	}
}

func TestSingleUplinkLossKeepsDefaultRoot(t *testing.T) {
	// A device that still has a live uplink must NOT withdraw: local
	// rehashing over the survivors is the paper's §III.C behavior and
	// needs no dissemination. The standard column spine has one uplink,
	// so build a variant with two tops.
	sim := simnet.New(29)
	log := &metrics.Log{}
	torN := sim.AddNode("tor")
	spineN := sim.AddNode("spine")
	topN := sim.AddNode("top")
	top2N := sim.AddNode("top2")
	sim.Connect(torN.AddPort(), spineN.AddPort())   // spine port 1 (down)
	sim.Connect(spineN.AddPort(), topN.AddPort())   // spine port 2 (up)
	sim.Connect(spineN.AddPort(), top2N.AddPort())  // spine port 3 (up)
	torCfg := DefaultConfig(1, 3)
	torCfg.RackSubnet = rack(11)
	tor := New(torN, torCfg, log)
	spine := New(spineN, DefaultConfig(2, 3), log)
	New(topN, DefaultConfig(3, 3), log)
	New(top2N, DefaultConfig(3, 3), log)
	sim.Start()
	sim.RunFor(2 * time.Second)

	spine.Node.Port(2).Fail()
	sim.RunFor(300 * time.Millisecond)
	if spine.lostSent[DefaultRoot] {
		t.Error("spine withdrew its up-default while a live uplink remained")
	}
	if tor.unreachable[1][DefaultRoot] {
		t.Error("tor marked the up-default despite a surviving spine uplink")
	}

	// The second uplink going too completes the withdrawal.
	spine.Node.Port(3).Fail()
	sim.RunFor(300 * time.Millisecond)
	if !spine.lostSent[DefaultRoot] {
		t.Error("spine kept its up-default after the last uplink died")
	}
	if !tor.unreachable[1][DefaultRoot] {
		t.Error("tor did not learn the withdrawal")
	}
}
