package mrmtp

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/netaddr"
)

// mustWire marshals a message the test knows is well-formed.
func mustWire(tb testing.TB, m Message) []byte {
	tb.Helper()
	b, err := m.Marshal()
	if err != nil {
		tb.Fatal(err)
	}
	return b
}

func TestHelloIsOneByte(t *testing.T) {
	m := Message{Type: TypeHello}
	b := mustWire(t, m)
	if len(b) != 1 || b[0] != 0x06 {
		t.Fatalf("hello = % x, want the single byte 06 of Fig. 10", b)
	}
	// Full frame: 15 bytes at layer 2 with broadcast addressing.
	fr := frame(netaddr.MAC{0x6a}, b)
	if len(fr) != 15 {
		t.Errorf("hello frame = %d bytes, want 15", len(fr))
	}
	if fr[12] != 0x88 || fr[13] != 0x50 {
		t.Errorf("ethertype = %02x%02x, want 8850 (paper §VII.F)", fr[12], fr[13])
	}
	if !bytes.Equal(fr[0:6], netaddr.Broadcast[:]) {
		t.Error("hello frame not broadcast-addressed")
	}
}

func TestControlRoundTrips(t *testing.T) {
	vids := []VID{{11}, {11, 1}, {12, 2, 1}}
	msgs := []Message{
		{Type: TypeAdvertise, Tier: 2, VIDs: vids},
		{Type: TypeJoin, VIDs: vids[:1]},
		{Type: TypeOffer, VIDs: vids[1:]},
		{Type: TypeAccept, VIDs: vids},
		{Type: TypeAck, VIDs: vids},
		{Type: TypeUpdate, Sub: UpdateLost, Roots: []byte{11, 12}},
		{Type: TypeUpdate, Sub: UpdateFound, Roots: []byte{11}},
		{Type: TypeHello},
	}
	for _, in := range msgs {
		out, err := ParseMessage(mustWire(t, in))
		if err != nil {
			t.Fatalf("%#02x: %v", in.Type, err)
		}
		if out.Type != in.Type || out.Tier != in.Tier || out.Sub != in.Sub {
			t.Errorf("%#02x: header mismatch: %+v", in.Type, out)
		}
		if len(out.VIDs) != len(in.VIDs) {
			t.Fatalf("%#02x: VIDs %d != %d", in.Type, len(out.VIDs), len(in.VIDs))
		}
		for i := range in.VIDs {
			if !out.VIDs[i].Equal(in.VIDs[i]) {
				t.Errorf("%#02x: VID %d mismatch", in.Type, i)
			}
		}
		if !bytes.Equal(out.Roots, in.Roots) {
			t.Errorf("%#02x: roots %v != %v", in.Type, out.Roots, in.Roots)
		}
	}
}

func TestAdvertiseRoundTripProperty(t *testing.T) {
	f := func(tier uint8, raw [][]byte) bool {
		if len(raw) > 12 {
			raw = raw[:12]
		}
		var vids []VID
		for _, b := range raw {
			if len(b) == 0 || len(b) > 12 {
				continue
			}
			vids = append(vids, VID(b))
		}
		in := Message{Type: TypeAdvertise, Tier: int(tier), VIDs: vids}
		wire, err := in.Marshal()
		if err != nil {
			return false
		}
		out, err := ParseMessage(wire)
		if err != nil || out.Tier != int(tier) || len(out.VIDs) != len(vids) {
			return false
		}
		for i := range vids {
			if !out.VIDs[i].Equal(vids[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := [][]byte{
		{},
		{0x99},                          // unknown type
		{TypeAdvertise},                 // missing tier
		{TypeJoin, 1},                   // count says 1, no VID
		{TypeJoin, 1, 0},                // zero-length VID
		{TypeJoin, 1, 5, 1},             // truncated VID
		{TypeUpdate, UpdateLost},        // missing count
		{TypeUpdate, UpdateLost, 2, 11}, // truncated roots
		{TypeUpdate, 9, 1, 11},          // unknown subtype
	}
	for _, b := range bad {
		if _, err := ParseMessage(b); err == nil {
			t.Errorf("ParseMessage(% x) succeeded, want error", b)
		}
	}
}

func TestMarshalUnknownType(t *testing.T) {
	// A type byte can arrive off the wire; encoding must reject what it
	// does not know instead of panicking (see panicpath in tools/analyzers).
	for _, typ := range []byte{0x00, 0x99, 0xff, TypeData} {
		m := Message{Type: typ}
		b, err := m.Marshal()
		if err == nil {
			t.Errorf("Marshal type %#02x = % x, want error", typ, b)
			continue
		}
		if !errors.Is(err, ErrMalformed) {
			t.Errorf("Marshal type %#02x error = %v, want ErrMalformed", typ, err)
		}
	}
}

func TestDataRoundTrip(t *testing.T) {
	ip := []byte{0x45, 0, 0, 20}
	b := MarshalData(11, 14, DataTTL, ip)
	if len(b) != DataHeaderLen+len(ip) {
		t.Fatalf("data payload = %d bytes", len(b))
	}
	h, got, err := ParseData(b)
	if err != nil {
		t.Fatal(err)
	}
	if h.SrcRoot != 11 || h.DstRoot != 14 || h.TTL != DataTTL {
		t.Errorf("header = %+v", h)
	}
	if !bytes.Equal(got, ip) {
		t.Error("payload corrupted")
	}
	if _, _, err := ParseData([]byte{TypeData}); err == nil {
		t.Error("truncated data accepted")
	}
	if _, _, err := ParseData(b[1:]); err == nil {
		t.Error("non-data payload accepted")
	}
}
