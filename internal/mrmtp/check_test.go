//go:build invariants

package mrmtp

import (
	"testing"

	"repro/internal/simnet"
)

func tableRouter() *Router {
	r := &Router{
		Node:    &simnet.Node{Name: "test"},
		entries: make(map[string]vidEntry),
		byRoot:  make(map[byte][]string),
		adjs:    make(map[int]*adjacency),
	}
	r.adjs[1] = &adjacency{state: adjUp}
	v := VID{11, 1}
	r.entries[v.Key()] = vidEntry{vid: v, port: 1}
	r.byRoot[v.Root()] = []string{v.Key()}
	return r
}

func wantTablePanic(t *testing.T, r *Router) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("inconsistent VID table passed the invariant check")
		}
	}()
	r.checkVIDTable()
}

// TestVIDTableCheckDetectsCorruption breaks each guarded property in turn.
func TestVIDTableCheckDetectsCorruption(t *testing.T) {
	tableRouter().checkVIDTable() // sanity: a consistent table passes

	r := tableRouter()
	delete(r.entries, VID{11, 1}.Key()) // byRoot lists a key the table lost
	wantTablePanic(t, r)

	r = tableRouter()
	keys := r.byRoot[11]
	r.byRoot[11] = append(keys, keys[0]) // duplicate index entry
	wantTablePanic(t, r)

	r = tableRouter()
	r.adjs[1].state = adjFailed // entry held via a dead port
	wantTablePanic(t, r)

	r = tableRouter()
	delete(r.byRoot, 11) // table entry the index no longer covers
	wantTablePanic(t, r)
}
