package mrmtp

import (
	"repro/internal/arp"
	"repro/internal/ethernet"
	"repro/internal/flowhash"
	"repro/internal/icmp"
	"repro/internal/ipv4"
	"repro/internal/netaddr"
	"repro/internal/simnet"
)

// This file is MR-MTP's data plane (paper §III.D): ToRs encapsulate server
// IP packets behind a (src VID, dst VID) header and the fabric forwards by
// VID table — down toward a known root, or up by hashed default. The ToR is
// the only device that ever parses IP, and the rack side keeps ordinary
// IP/ARP semantics so servers need no changes (backward compatibility).

// GatewayIP returns the address the ToR answers ARP for on the rack side.
func (r *Router) GatewayIP() netaddr.IPv4 { return r.Cfg.RackSubnet.Host(254) }

// handleRackFrame processes server-side traffic at a ToR.
//
//simlint:hotpath
func (r *Router) handleRackFrame(p *simnet.Port, f ethernet.Frame) {
	switch f.EtherType {
	case ethernet.TypeARP:
		r.handleRackARP(p, f)
	case ethernet.TypeIPv4:
		r.ingressIP(f.Payload)
	}
}

func (r *Router) handleRackARP(p *simnet.Port, f ethernet.Frame) {
	pkt, err := arp.Unmarshal(f.Payload)
	if err != nil {
		return
	}
	// Learn the sender either way.
	r.arpCache[pkt.SenderIP] = arpEntry{mac: pkt.SenderMAC, port: p.Index}
	r.flushRackPending(pkt.SenderIP)
	if pkt.Op != arp.OpRequest {
		return
	}
	// Answer for the gateway, and proxy-answer for other rack addresses:
	// servers hang off separate ToR ports, so sibling traffic flows
	// through the ToR's L3 switching path (deliverToRack).
	answer := pkt.TargetIP == r.GatewayIP() ||
		(r.Cfg.RackSubnet.Contains(pkt.TargetIP) && pkt.TargetIP != pkt.SenderIP)
	if answer {
		reply := arp.Packet{
			Op:        arp.OpReply,
			SenderMAC: p.MAC, SenderIP: pkt.TargetIP,
			TargetMAC: pkt.SenderMAC, TargetIP: pkt.SenderIP,
		}
		out := ethernet.Frame{Dst: pkt.SenderMAC, Src: p.MAC, EtherType: ethernet.TypeARP, Payload: reply.Marshal()}
		p.Send(out.Marshal())
	}
}

// ingressIP handles an IP packet entering the fabric from a server.
//
//simlint:hotpath
func (r *Router) ingressIP(ipWire []byte) {
	pkt, err := ipv4.Unmarshal(ipWire)
	if err != nil {
		return
	}
	dst := pkt.Header.Dst
	if r.Cfg.RackSubnet.Contains(dst) {
		// Intra-rack: stay in IP world.
		r.deliverToRack(ipWire, dst)
		return
	}
	// The entire fabric is one routed hop from IP's point of view: the
	// ingress ToR decrements the TTL once; spines never touch the inner
	// packet. An expired TTL gets the standard router treatment —
	// time-exceeded from the rack gateway address — which is why a
	// traceroute across MR-MTP shows a single hop (cf. the per-router
	// hops of the BGP fabric).
	//
	// The TTL decrement mutates the received frame in place: ownership of
	// a delivered frame passes to the handler, Forward leaves the buffer
	// untouched on the expiry path (TimeExceeded quotes the original
	// bytes), and MarshalData copies the packet into the encapsulation.
	if err := ipv4.Forward(ipWire); err != nil {
		r.Stats.DataDropped++
		reply := ipv4.Packet{
			Header: ipv4.Header{
				TTL: ipv4.DefaultTTL, Protocol: ipv4.ProtoICMP,
				Src: r.GatewayIP(), Dst: pkt.Header.Src,
			},
			Payload: marshalICMP(icmp.TimeExceeded(ipWire)),
		}
		r.deliverToRack(reply.Marshal(), pkt.Header.Src)
		return
	}
	// Paper §III.D: derive the destination ToR VID from the destination
	// IP address with the §III.A algorithm. The encapsulation buffer is
	// pooled: sendOn copies it into the outbound frame (and the drop paths
	// retain nothing), so it is reclaimed as soon as forwardData returns.
	dstRoot := byte(dst[2])
	enc := r.encapData(r.rootVID, dstRoot, DataTTL, ipWire)
	r.forwardData(enc, dstRoot, flowhash.FromIPPacket(ipWire))
	r.frames.Put(enc)
}

// encapData is MarshalData drawing from the frame pool: the 4-byte MR-MTP
// header followed by the raw IP packet.
func (r *Router) encapData(srcRoot, dstRoot, ttl byte, ipPacket []byte) []byte {
	b := r.frames.Get(DataHeaderLen + len(ipPacket))
	b[0] = TypeData
	b[1] = ttl
	b[2] = srcRoot
	b[3] = dstRoot
	copy(b[DataHeaderLen:], ipPacket)
	return b
}

// handleData forwards (or delivers) an encapsulated packet arriving on a
// fabric port. It reports whether the delivered frame is spent — every byte
// the router needed has been copied out, so the caller may recycle the
// buffer. Gateway-addressed and trace-reply dispositions return false: those
// paths hand aliasing slices to listeners that have not been audited for
// retention.
//
//simlint:hotpath
func (r *Router) handleData(p *simnet.Port, payload []byte) bool {
	h, ipWire, err := ParseData(payload)
	if err != nil {
		r.Stats.DataDropped++
		return true
	}
	if r.Cfg.Tier == 1 && h.DstRoot == r.rootVID {
		// Destination ToR: de-encapsulate and hand the IP packet to the
		// rack (paper §III.D final step).
		pkt, err := ipv4.Unmarshal(ipWire)
		if err != nil {
			r.Stats.DataDropped++
			return true
		}
		r.Stats.DataDelivered++
		if pkt.Header.Dst == r.GatewayIP() {
			// Addressed to the ToR itself: trace probes and their replies.
			r.handleLocal(ipWire, pkt) //simlint:alloc gateway-addressed control traffic, off the forwarding fast path
			return false
		}
		// deliverToRack copies ipWire (into the rack frame or the ARP
		// pending queue) before returning.
		r.deliverToRack(ipWire, pkt.Header.Dst)
		return true
	}
	if h.TTL <= 1 {
		r.Stats.DataDropped++
		// Expired probes earn a time-exceeded reply, like an IP router
		// (path tracing depends on it); other expiries stay silent drops.
		r.sendTraceReply(h, ipWire) //simlint:alloc TTL expiry is off the fast path; reply construction allocates
		return false
	}
	// In-place decrement: the delivered frame is ours, and sendOn copies
	// the payload into a fresh outbound frame.
	payload[1] = h.TTL - 1
	r.forwardData(payload, h.DstRoot, flowhash.FromIPPacket(ipWire))
	return true
}

// forwardData routes an encapsulated packet: down the tree when the VID
// table knows the root, otherwise up by load-balanced default.
//
//simlint:hotpath
func (r *Router) forwardData(payload []byte, dstRoot byte, key flowhash.Key) {
	// Downward: a VID entry's acquisition port points at the root.
	for _, vidKey := range r.byRoot[dstRoot] {
		e := r.entries[vidKey]
		adj := r.adjs[e.port]
		if adj != nil && adj.state == adjUp && adj.port.Up() {
			r.Stats.DataForwarded++
			r.sendOn(adj, payload)
			return
		}
	}
	// Upward: hash across live uplinks not marked unreachable for the
	// destination root (§III.C load balancing). A DefaultRoot mark means
	// the uplink's device withdrew its entire up-default, so it is out
	// for every root it cannot name.
	ups := r.uplinks()
	eligible := r.eligScratch[:0]
	for _, adj := range ups {
		marks := r.unreachable[adj.port.Index]
		if !marks[dstRoot] && !marks[DefaultRoot] {
			eligible = append(eligible, adj)
		}
	}
	r.eligScratch = eligible
	if len(eligible) == 0 || r.downstream[dstRoot] || (r.Cfg.Tier == 1 && dstRoot == r.rootVID) {
		r.Stats.DataDropped++
		return
	}
	adj := eligible[int(key.Hash())%len(eligible)]
	r.Stats.DataForwarded++
	r.sendOn(adj, payload)
}

// deliverToRack sends an IP packet to a server behind this ToR, resolving
// the server's MAC on demand.
func (r *Router) deliverToRack(ipWire []byte, dst netaddr.IPv4) {
	if e, ok := r.arpCache[dst]; ok {
		port := r.Node.Port(e.port)
		f := ethernet.Frame{Dst: e.mac, Src: port.MAC, EtherType: ethernet.TypeIPv4, Payload: ipWire}
		port.Send(f.Marshal())
		return
	}
	r.arpPending[dst] = append(r.arpPending[dst], append([]byte(nil), ipWire...)) //simlint:alloc ARP-miss slow path; the copy detaches the queued packet from the delivered frame
	for _, p := range r.Node.Ports[1:] {
		if !r.isServerPort(p.Index) {
			continue
		}
		req := arp.Packet{Op: arp.OpRequest, SenderMAC: p.MAC, SenderIP: r.GatewayIP(), TargetIP: dst}
		f := ethernet.Frame{Dst: netaddr.Broadcast, Src: p.MAC, EtherType: ethernet.TypeARP, Payload: req.Marshal()}
		p.Send(f.Marshal())
	}
}

func marshalICMP(m icmp.Message) []byte { return m.Marshal() }

func (r *Router) flushRackPending(ip netaddr.IPv4) {
	pending := r.arpPending[ip]
	if pending == nil {
		return
	}
	delete(r.arpPending, ip)
	e := r.arpCache[ip]
	port := r.Node.Port(e.port)
	for _, wire := range pending {
		f := ethernet.Frame{Dst: e.mac, Src: port.MAC, EtherType: ethernet.TypeIPv4, Payload: wire}
		port.Send(f.Marshal())
	}
}
