package mrmtp

import "repro/internal/invariant"

// checkVIDTable validates the VID table's cross-index consistency after a
// mutation batch (offer installation, neighbor loss, staged UPDATEs).
// Callers guard with invariant.Enabled. The invariants:
//
//   - entries and the byRoot index describe exactly the same key set, and
//     no root's key list contains a duplicate (a VID acquired twice);
//   - every indexed entry stores the VID its key claims, under the root
//     byRoot filed it under;
//   - every entry's port has a live (adjUp) adjacency: frames are only
//     processed on up adjacencies, and neighborDown must purge the port's
//     entries before it returns.
func (r *Router) checkVIDTable() {
	total := 0
	//simlint:deterministic diagnostic sweep in -tags invariants builds; assertions are order-independent
	for root, keys := range r.byRoot {
		invariant.Assertf(len(keys) > 0,
			"mrmtp %s: byRoot[%d] exists but is empty", r.Node.Name, root)
		seen := make(map[string]bool, len(keys))
		for _, key := range keys {
			invariant.Assertf(!seen[key],
				"mrmtp %s: byRoot[%d] lists VID %q twice", r.Node.Name, root, key)
			seen[key] = true
			e, ok := r.entries[key]
			invariant.Assertf(ok,
				"mrmtp %s: byRoot[%d] lists VID %q but the table does not hold it",
				r.Node.Name, root, key)
			if !ok {
				continue
			}
			invariant.Assertf(e.vid.Key() == key,
				"mrmtp %s: entry keyed %q stores VID %s", r.Node.Name, key, e.vid)
			invariant.Assertf(e.vid.Root() == root,
				"mrmtp %s: VID %s indexed under root %d", r.Node.Name, e.vid, root)
			adj := r.adjs[e.port]
			invariant.Assertf(adj != nil && adj.state == adjUp,
				"mrmtp %s: VID %s held via port %d, which has no live adjacency",
				r.Node.Name, e.vid, e.port)
		}
		total += len(keys)
	}
	invariant.Assertf(total == len(r.entries),
		"mrmtp %s: byRoot indexes %d keys, table holds %d", r.Node.Name, total, len(r.entries))
}
