// Package mrmtp implements the paper's contribution: the Multi-Root Meshed
// Tree Protocol for folded-Clos data center networks.
//
// Every Top-of-Rack switch roots a tree named by a Virtual ID derived from
// its rack subnet (192.168.11.0/24 → VID 11). Upstream devices join the
// tree and are assigned the parent's VID with the acquisition port number
// appended (11 → 11.1 → 11.1.2), so a VID *is* a loop-free path back to the
// root, and a table of (VID, acquisition port) pairs is the entire routing
// state. One layer-3 protocol replaces BGP, ECMP, BFD, TCP, UDP and IP
// inside the fabric (paper Fig. 1): messages ride raw Ethernet frames with
// ethertype 0x8850 addressed to the broadcast MAC (no ARP on point-to-point
// links), reliability is built into the join handshake
// (request-offer-accept-acknowledge), liveness is a 1-byte keep-alive, and
// failures are handled Quick-to-Detect (one missed hello) and
// Slow-to-Accept (three consecutive hellos to rejoin).
package mrmtp

import (
	"fmt"
	"strconv"
	"strings"
)

// VID is a Virtual ID: the root ToR's identifier followed by the port
// numbers along the tree path ("11.1.2"). Each element fits a byte: roots
// are the third octet of a /24 rack subnet and fabric devices have far
// fewer than 255 ports.
type VID []byte

// ParseVID parses the dotted form ("11.1.2").
func ParseVID(s string) (VID, error) {
	parts := strings.Split(s, ".")
	v := make(VID, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.ParseUint(p, 10, 8)
		if err != nil {
			return nil, fmt.Errorf("mrmtp: malformed VID %q", s)
		}
		v = append(v, byte(n))
	}
	if len(v) == 0 {
		return nil, fmt.Errorf("mrmtp: empty VID")
	}
	return v, nil
}

// String renders the dotted form.
func (v VID) String() string {
	var b strings.Builder
	for i, e := range v {
		if i > 0 {
			b.WriteByte('.')
		}
		b.WriteString(strconv.Itoa(int(e)))
	}
	return b.String()
}

// Root returns the tree root (the originating ToR's VID).
func (v VID) Root() byte {
	if len(v) == 0 {
		return 0
	}
	return v[0]
}

// Extend derives a child VID by appending a port number, the paper's §III.B
// assignment rule ("appending the port number on which the request arrived
// to its VID").
func (v VID) Extend(port int) VID {
	child := make(VID, len(v)+1)
	copy(child, v)
	child[len(v)] = byte(port)
	return child
}

// Equal reports element-wise equality.
func (v VID) Equal(w VID) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if v[i] != w[i] {
			return false
		}
	}
	return true
}

// Key returns a comparable map key for the VID.
func (v VID) Key() string { return string(v) }

// Depth returns the number of hops from the root (a root VID has depth 0).
func (v VID) Depth() int { return len(v) - 1 }

// HasPrefix reports whether p is an ancestor of (or equal to) v in the tree.
func (v VID) HasPrefix(p VID) bool {
	if len(p) > len(v) {
		return false
	}
	for i := range p {
		if v[i] != p[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy.
func (v VID) Clone() VID { return append(VID(nil), v...) }
