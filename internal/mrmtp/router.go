package mrmtp

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/ethernet"
	"repro/internal/invariant"
	"repro/internal/metrics"
	"repro/internal/netaddr"
	"repro/internal/simnet"
	"repro/internal/simnet/framepool"
	"repro/internal/topology"
)

// Config configures one MR-MTP router. The only fabric-wide inputs are the
// tier value and, for ToRs, the rack-facing port — exactly the contents of
// the paper's Listing 2 JSON file.
type Config struct {
	// Tier is the device's tier: 1 for ToRs, up to TopTier for the top
	// spines.
	Tier int
	// TopTier is the highest tier in the fabric (3 in the paper).
	TopTier int
	// ServerPort is the first rack-facing port on a ToR (uplinks are
	// numbered before it); 0 on spines.
	ServerPort int
	// RackSubnet is the ToR's server subnet, from which the VID is
	// derived (paper §III.A).
	RackSubnet netaddr.Prefix

	// Identity is the address a spine answers path-trace probes from
	// (the analogue of a router ID on a loopback). MR-MTP devices carry
	// no IP stack, so without an identity the fabric interior stays
	// invisible to traceroute; zero disables trace replies.
	Identity netaddr.IPv4

	// HelloInterval and DeadInterval implement Quick-to-Detect: the
	// paper runs 50 ms hellos with a 100 ms dead timer — a neighbor is
	// assumed down after a single missed hello.
	HelloInterval time.Duration
	DeadInterval  time.Duration
	// AcceptHellos implements Slow-to-Accept: consecutive keep-alives
	// required before a failed neighbor is believed up again (3 in the
	// paper).
	AcceptHellos int

	// Coalesce is the hold-down applied to received reachability
	// updates so that simultaneous LOST reports (one per meshed tree
	// branch) are processed as one batch.
	Coalesce time.Duration

	// JoinRetry is the retransmission interval for the join handshake
	// (the "request-response and accept-acknowledge" reliability of
	// §III.C).
	JoinRetry time.Duration

	// AdvertiseInterval is the period of the background re-ADVERTISE on
	// live adjacencies. One small frame per second makes tree formation
	// robust to frame loss without a reliable transport, completing the
	// §III.C reliability story.
	AdvertiseInterval time.Duration
}

// DefaultConfig returns the paper's timer profile for a device.
func DefaultConfig(tier, topTier int) Config {
	return Config{
		Tier:              tier,
		TopTier:           topTier,
		HelloInterval:     50 * time.Millisecond,
		DeadInterval:      100 * time.Millisecond,
		AcceptHellos:      3,
		Coalesce:          200 * time.Microsecond,
		JoinRetry:         200 * time.Millisecond,
		AdvertiseInterval: time.Second,
	}
}

// adjacency states.
type adjState int

const (
	adjDown   adjState = iota // never heard from
	adjUp                     // operational
	adjFailed                 // declared dead; Slow-to-Accept applies
)

// adjacency is the per-port neighbor state.
type adjacency struct {
	port         *simnet.Port
	state        adjState
	neighborTier int
	lastRx       time.Duration
	lastTx       time.Duration
	consecutive  int
	deadTimer    *simnet.Timer
	helloTimer   *simnet.Timer
	advTimer     *simnet.Timer

	// advertised is the latest VID set the neighbor offered to extend.
	advertised []VID
	// requested tracks parent VIDs we have an outstanding JOIN for.
	requested map[string]bool
	// offered tracks child VIDs we assigned over this port.
	offered map[string]bool
	// accepted tracks child VIDs the neighbor confirmed (tree children).
	accepted map[string]bool
}

// vidEntry is one VID table row: the VID and its acquisition port.
type vidEntry struct {
	vid  VID
	port int
}

// Stats counts router activity.
type Stats struct {
	HellosSent    uint64
	JoinsSent     uint64
	OffersSent    uint64
	UpdatesSent   uint64
	UpdatesRecv   uint64
	DataForwarded uint64
	DataDelivered uint64
	DataDropped   uint64
	TraceReplies  uint64
	NeighborsLost uint64

	// QDSA transition counters (chaos telemetry). NeighborsAccepted
	// counts adjacencies re-admitted through Slow-to-Accept after a
	// failure; HellosDampened counts frames received from a failed
	// neighbor that did not yet clear the accept threshold (each is a
	// reconvergence the dampening suppressed); AcceptResets counts
	// consecutive-hello streaks abandoned because of a gap longer than
	// the dead interval.
	NeighborsAccepted uint64
	HellosDampened    uint64
	AcceptResets      uint64
}

// Router is one MR-MTP device. It implements simnet.Handler directly on
// Ethernet frames: the protocol needs no IP stack in the fabric.
type Router struct {
	Node *simnet.Node
	Cfg  Config

	rec     metrics.Recorder
	rootVID byte

	entries map[string]vidEntry // VID table, keyed by VID
	byRoot  map[byte][]string   // root -> VID keys
	adjs    map[int]*adjacency
	// adjList holds the same adjacencies in ascending port order. Every
	// sweep over the neighbor set (uplink selection, re-advertise fan-out,
	// update propagation) iterates this slice, never the map: frame send
	// order must not depend on map iteration order.
	adjList []*adjacency

	// advWire caches the marshalled ADVERTISE (identical on every port),
	// invalidated whenever the VID table changes. The periodic
	// re-ADVERTISE on every adjacency makes this a steady-state hot path.
	advWire []byte

	// upScratch and eligScratch back uplinks() and forwardData's eligible
	// set, reused packet to packet so the data plane does not allocate.
	upScratch   []*adjacency
	eligScratch []*adjacency

	// unreachable[port][root] records "this port cannot be used for
	// traffic destined to this root VID" (the paper's §VII.B description
	// of what ToRs note after a failure update).
	unreachable map[int]map[byte]bool
	// downstream marks roots learned via lower-tier neighbors: they must
	// never be chased through the default up-forwarding path.
	downstream map[byte]bool
	// lostSent marks roots we have propagated LOST for and not yet
	// recovered.
	lostSent map[byte]bool

	// staged reachability updates awaiting coalesced processing.
	staged        []stagedUpdate
	coalesceTimer *simnet.Timer

	// ToR data-plane state (rack-side ARP).
	arpCache   map[netaddr.IPv4]arpEntry
	arpPending map[netaddr.IPv4][][]byte

	// icmpListeners receive ICMP messages addressed to the ToR's own
	// gateway address (path-trace replies), excluding echo requests,
	// which the ToR answers itself.
	icmpListeners []ICMPListener

	// frames is the owning simulation's frame-buffer pool: outbound frames
	// and encapsulation buffers come from it, and received data-plane
	// frames whose bytes have all been copied out go back (DESIGN.md §14).
	frames *framepool.Pool

	Stats Stats
}

type stagedUpdate struct {
	port int
	sub  byte
	root byte
}

type arpEntry struct {
	mac  netaddr.MAC
	port int
}

// New attaches an MR-MTP router to a node. For ToRs (tier 1) the config
// must carry ServerPort and RackSubnet; the VID is derived from the third
// byte of the rack subnet as in §III.A.
func New(node *simnet.Node, cfg Config, rec metrics.Recorder) *Router {
	if rec == nil {
		rec = metrics.Nop{}
	}
	r := &Router{
		Node:        node,
		Cfg:         cfg,
		rec:         rec,
		entries:     make(map[string]vidEntry),
		byRoot:      make(map[byte][]string),
		adjs:        make(map[int]*adjacency),
		unreachable: make(map[int]map[byte]bool),
		downstream:  make(map[byte]bool),
		lostSent:    make(map[byte]bool),
		arpCache:    make(map[netaddr.IPv4]arpEntry),
		arpPending:  make(map[netaddr.IPv4][][]byte),
		frames:      node.Sim.Frames(),
	}
	if cfg.Tier == 1 {
		r.rootVID = byte(topology.DeriveVID(cfg.RackSubnet))
	}
	node.Handler = r
	return r
}

// RootVID returns the ToR's derived VID (0 on spines).
func (r *Router) RootVID() byte { return r.rootVID }

func (r *Router) sim() *simnet.Sim { return r.Node.Sim }

func (r *Router) isServerPort(i int) bool {
	return r.Cfg.ServerPort > 0 && i >= r.Cfg.ServerPort
}

// Start implements simnet.Handler: announce on every fabric port and start
// the hello machinery.
func (r *Router) Start() {
	for _, p := range r.Node.Ports[1:] {
		if r.isServerPort(p.Index) {
			continue
		}
		adj := &adjacency{
			port:      p,
			requested: make(map[string]bool),
			offered:   make(map[string]bool),
			accepted:  make(map[string]bool),
		}
		r.adjs[p.Index] = adj
		r.adjList = append(r.adjList, adj) // Ports is index-ascending
		r.sendAdvertise(adj)
		r.scheduleHello(adj)
		r.scheduleAdvertise(adj)
	}
}

// scheduleAdvertise re-announces the joinable VID set periodically so that
// a lost ADVERTISE (or JOIN/OFFER) never wedges tree formation: the next
// announcement restarts the handshake.
func (r *Router) scheduleAdvertise(adj *adjacency) {
	if r.Cfg.AdvertiseInterval <= 0 {
		return
	}
	adj.advTimer = r.sim().After(r.Cfg.AdvertiseInterval, func() {
		if r.adjs[adj.port.Index] != adj {
			return
		}
		if adj.state == adjUp {
			r.sendAdvertise(adj)
		}
		adj.advTimer.Reset(r.Cfg.AdvertiseInterval)
	})
}

// --- transmission helpers -------------------------------------------------

// sendOn transmits an MR-MTP payload on an adjacency, stamping lastTx so the
// hello timer can suppress redundant keep-alives.
//
//simlint:hotpath
func (r *Router) sendOn(adj *adjacency, payload []byte) {
	adj.lastTx = r.sim().Now()
	// Build the broadcast-addressed frame (§VII.F) in a pooled buffer; the
	// payload is copied, so callers may reuse or recycle it afterwards.
	buf := r.frames.Get(ethernet.HeaderLen + len(payload))
	ethernet.PutHeader(buf, netaddr.Broadcast, adj.port.MAC, ethernet.TypeMRMTP)
	copy(buf[ethernet.HeaderLen:], payload)
	adj.port.Send(buf)
}

// sendMsg marshals and transmits a control message, dropping it if it
// cannot be encoded (impossible for the fixed-type messages the router
// builds, but dropping beats crashing the simulation). It returns the
// encoded payload for callers that record telemetry, or nil on a drop.
func (r *Router) sendMsg(adj *adjacency, m *Message) []byte {
	wire, err := m.Marshal()
	if err != nil {
		return nil
	}
	r.sendOn(adj, wire)
	return wire
}

func (r *Router) sendAdvertise(adj *adjacency) {
	if r.advWire == nil {
		m := Message{Type: TypeAdvertise, Tier: r.Cfg.Tier, VIDs: r.joinableVIDs()}
		wire, err := m.Marshal()
		if err != nil {
			return
		}
		r.advWire = wire
	}
	// sendOn copies the payload into the frame, so sharing the cached
	// message across ports and intervals is safe.
	r.sendOn(adj, r.advWire)
}

// joinableVIDs lists the VIDs this device extends to upper-tier joiners:
// the ToR's own root VID, or every acquired VID on a spine.
func (r *Router) joinableVIDs() []VID {
	if r.Cfg.Tier == 1 {
		return []VID{{r.rootVID}}
	}
	out := make([]VID, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e.vid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

func (r *Router) scheduleHello(adj *adjacency) {
	adj.helloTimer = r.sim().After(r.Cfg.HelloInterval, func() {
		if r.adjs[adj.port.Index] != adj {
			return
		}
		// Keep-alive only when nothing else was sent in the interval
		// (paper §IV.B: any MR-MTP message serves as a keep-alive).
		if r.sim().Now()-adj.lastTx >= r.Cfg.HelloInterval {
			r.Stats.HellosSent++
			r.sendOn(adj, []byte{TypeHello})
		}
		adj.helloTimer.Reset(r.Cfg.HelloInterval)
	})
}

func (r *Router) armDead(adj *adjacency) {
	if adj.deadTimer != nil {
		adj.deadTimer.Reset(r.Cfg.DeadInterval)
		return
	}
	adj.deadTimer = r.sim().After(r.Cfg.DeadInterval, func() {
		if adj.state == adjUp {
			r.neighborDown(adj)
		}
	})
}

// --- simnet.Handler -------------------------------------------------------

// PortDown implements simnet.Handler: local carrier loss is an immediate
// neighbor-down (no dead timer involved).
func (r *Router) PortDown(p *simnet.Port) {
	if adj := r.adjs[p.Index]; adj != nil && adj.state == adjUp {
		r.neighborDown(adj)
	}
}

// PortUp implements simnet.Handler. The adjacency still has to pass
// Slow-to-Accept via received hellos, so nothing happens here beyond
// resuming our own hellos (the hello scheduler never stopped).
func (r *Router) PortUp(p *simnet.Port) {}

// HandleFrame implements simnet.Handler.
func (r *Router) HandleFrame(p *simnet.Port, raw []byte) {
	f, err := ethernet.Unmarshal(raw)
	if err != nil {
		return
	}
	if r.isServerPort(p.Index) {
		// Every rack-side disposition copies what it keeps (encapsulation,
		// ARP learning, rack delivery), so the frame is spent on return.
		r.handleRackFrame(p, f)
		r.frames.Put(raw)
		return
	}
	if f.EtherType != ethernet.TypeMRMTP || len(f.Payload) == 0 {
		return
	}
	adj := r.adjs[p.Index]
	if adj == nil {
		return
	}
	now := r.sim().Now()
	switch adj.state {
	case adjDown:
		// First contact brings the adjacency up immediately.
		adj.lastRx = now
		r.adjacencyUp(adj)
	case adjFailed:
		// Slow-to-Accept: require AcceptHellos consecutive keep-alives
		// (any MR-MTP message counts; a gap restarts the count).
		if now-adj.lastRx > r.Cfg.DeadInterval {
			if adj.consecutive > 0 {
				r.Stats.AcceptResets++
			}
			adj.consecutive = 1
		} else {
			adj.consecutive++
		}
		adj.lastRx = now
		if adj.consecutive < r.Cfg.AcceptHellos {
			r.Stats.HellosDampened++
			// Not believed yet: act on nothing, but remember the
			// neighbor's advertisement so the tree re-join can start
			// the moment the neighbor is accepted (the advertise may
			// not be repeated once both ends are past dampening).
			if f.Payload[0] == TypeAdvertise {
				if m, err := ParseMessage(f.Payload); err == nil {
					adj.neighborTier = m.Tier
					adj.advertised = m.VIDs
				}
			}
			return
		}
		// The accepting frame itself is processed normally below — it is
		// often the neighbor's re-ADVERTISE, which restarts the tree join.
		r.Stats.NeighborsAccepted++
		r.adjacencyUp(adj)
	case adjUp:
		adj.lastRx = now
		r.armDead(adj)
	}

	if f.Payload[0] == TypeData {
		if r.handleData(p, f.Payload) {
			r.frames.Put(raw)
		}
		return
	}
	m, err := ParseMessage(f.Payload)
	if err != nil {
		return
	}
	r.handleControl(adj, m)
}

func (r *Router) adjacencyUp(adj *adjacency) {
	adj.state = adjUp
	adj.consecutive = 0
	r.armDead(adj)
	r.sendAdvertise(adj)
	// Act on any advertisement recorded while the neighbor was dampened.
	r.maybeJoin(adj)
	// Roots we had written off may be reachable again through this port.
	r.reevaluateLostRoots()
}

// neighborDown implements Quick-to-Detect failure handling: remove the VID
// table entries acquired through the port and propagate LOST updates for
// roots that are now unreachable from this device.
func (r *Router) neighborDown(adj *adjacency) {
	r.Stats.NeighborsLost++
	adj.state = adjFailed
	adj.consecutive = 0
	if adj.deadTimer != nil {
		adj.deadTimer.Stop()
	}
	adj.advertised = nil
	adj.requested = make(map[string]bool)
	adj.offered = make(map[string]bool)
	adj.accepted = make(map[string]bool)

	port := adj.port.Index
	affected := make(map[byte]bool)
	var doomed []string
	for key, e := range r.entries {
		if e.port == port {
			doomed = append(doomed, key)
		}
	}
	sort.Strings(doomed)
	for _, key := range doomed {
		affected[r.entries[key].vid.Root()] = true
		r.removeEntry(key)
	}
	// Marks recorded against the dead port are stale either way.
	//simlint:deterministic accumulates into the affected set; per-root outputs are sorted in applyReachability
	for root := range r.unreachable[port] {
		affected[root] = true
	}
	delete(r.unreachable, port)

	// Losing the last live uplink kills default up-forwarding for every
	// root this device cannot name: spines hold no VID entries for
	// remote-pod roots (they route up by hashed default), so the entry
	// sweep above finds nothing to withdraw. DefaultRoot stands in for
	// that whole class, producing the LOST that tells downstream devices
	// to stop hashing flows through us.
	wasUplink := adj.neighborTier > r.Cfg.Tier || adj.neighborTier == 0
	if wasUplink && !r.topTier() && len(r.uplinks()) == 0 {
		affected[DefaultRoot] = true
	}

	r.processReachability(affected, port, true)
	if invariant.Enabled {
		r.checkVIDTable()
	}
}

// --- VID table ------------------------------------------------------------

func (r *Router) addEntry(v VID, port int, fromTier int) bool {
	key := v.Key()
	if _, dup := r.entries[key]; dup {
		return false
	}
	r.entries[key] = vidEntry{vid: v.Clone(), port: port}
	r.byRoot[v.Root()] = append(r.byRoot[v.Root()], key)
	r.advWire = nil
	if fromTier < r.Cfg.Tier {
		r.downstream[v.Root()] = true
	}
	return true
}

func (r *Router) removeEntry(key string) {
	e, ok := r.entries[key]
	if !ok {
		return
	}
	delete(r.entries, key)
	r.advWire = nil
	// Allow a future re-JOIN of the parent tree through the same port
	// (recovery after Slow-to-Accept re-admits the neighbor).
	if adj := r.adjs[e.port]; adj != nil && len(e.vid) > 1 {
		delete(adj.requested, e.vid[:len(e.vid)-1].Key())
	}
	keys := r.byRoot[e.vid.Root()]
	for i, k := range keys {
		if k == key {
			r.byRoot[e.vid.Root()] = append(keys[:i], keys[i+1:]...)
			break
		}
	}
	if len(r.byRoot[e.vid.Root()]) == 0 {
		delete(r.byRoot, e.vid.Root())
	}
}

// VIDs returns the table contents sorted by VID (testing and Listing 5).
func (r *Router) VIDs() []string {
	out := make([]string, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e.vid.String())
	}
	sort.Strings(out)
	return out
}

// EntryPort returns the acquisition port for a VID, or 0.
func (r *Router) EntryPort(vid string) int {
	v, err := ParseVID(vid)
	if err != nil {
		return 0
	}
	if e, ok := r.entries[v.Key()]; ok {
		return e.port
	}
	return 0
}

// RenderVIDTable prints the table in the paper's Listing 5 layout: one row
// per port with the VIDs acquired on it.
func (r *Router) RenderVIDTable() string {
	byPort := make(map[int][]string)
	//simlint:deterministic groups entries by port; every per-port list is sorted before rendering
	for _, e := range r.entries {
		byPort[e.port] = append(byPort[e.port], e.vid.String())
	}
	ports := make([]int, 0, len(byPort))
	for p := range byPort {
		ports = append(ports, p)
	}
	sort.Ints(ports)
	var b strings.Builder
	for _, p := range ports {
		sort.Strings(byPort[p])
		fmt.Fprintf(&b, "eth%d\t%s\n", p, strings.Join(byPort[p], ", "))
	}
	return b.String()
}

// UnreachableVia reports whether traffic for root must avoid the port.
func (r *Router) UnreachableVia(port int, root byte) bool {
	return r.unreachable[port][root]
}

// TableSize returns the number of VID entries — the paper's routing-table
// size comparison (Listing 3 vs Listing 5).
func (r *Router) TableSize() int { return len(r.entries) }

// --- control plane --------------------------------------------------------

func (r *Router) handleControl(adj *adjacency, m Message) {
	switch m.Type {
	case TypeHello:
		// Liveness already refreshed.
	case TypeAdvertise:
		adj.neighborTier = m.Tier
		adj.advertised = m.VIDs
		r.maybeJoin(adj)
	case TypeJoin:
		r.handleJoin(adj, m.VIDs)
	case TypeOffer:
		r.handleOffer(adj, m.VIDs)
	case TypeAccept:
		r.handleAccept(adj, m.VIDs)
	case TypeAck:
		// Handshake complete; nothing further to record.
	case TypeUpdate:
		r.Stats.UpdatesRecv++
		r.stageUpdate(adj.port.Index, m.Sub, m.Roots)
	}
}

// maybeJoin requests membership in every tree the lower-tier neighbor
// advertises that we have not acquired through this port yet.
func (r *Router) maybeJoin(adj *adjacency) {
	if adj.neighborTier != r.Cfg.Tier-1 {
		return
	}
	var want []VID
	for _, v := range adj.advertised {
		if r.haveViaPort(v, adj.port.Index) || adj.requested[v.Key()] {
			continue
		}
		want = append(want, v)
		adj.requested[v.Key()] = true
	}
	if len(want) == 0 {
		return
	}
	r.Stats.JoinsSent++
	m := Message{Type: TypeJoin, VIDs: want}
	r.sendMsg(adj, &m)
	r.armJoinRetry(adj, want, maxJoinRetries)
}

// maxJoinRetries bounds JOIN retransmission; a fresh ADVERTISE restarts the
// handshake, so a parent that lost the tree meanwhile does not attract an
// endless retry stream.
const maxJoinRetries = 25

// haveViaPort reports whether we already hold a child VID of parent
// acquired on the port.
func (r *Router) haveViaPort(parent VID, port int) bool {
	for _, key := range r.byRoot[parent.Root()] {
		e := r.entries[key]
		if e.port == port && e.vid.HasPrefix(parent) && len(e.vid) == len(parent)+1 {
			return true
		}
	}
	return false
}

// armJoinRetry retransmits the JOIN if the OFFER never arrives (§III.C
// reliability).
func (r *Router) armJoinRetry(adj *adjacency, want []VID, budget int) {
	if budget <= 0 {
		for _, v := range want {
			delete(adj.requested, v.Key()) // give up; a new ADVERTISE may retry
		}
		return
	}
	r.sim().Schedule(r.Cfg.JoinRetry, func() {
		if adj.state != adjUp {
			return
		}
		var missing []VID
		for _, v := range want {
			if !r.haveViaPort(v, adj.port.Index) {
				missing = append(missing, v)
				adj.requested[v.Key()] = true
			}
		}
		if len(missing) == 0 {
			return
		}
		r.Stats.JoinsSent++
		m := Message{Type: TypeJoin, VIDs: missing}
		r.sendMsg(adj, &m)
		r.armJoinRetry(adj, missing, budget-1)
	})
}

// handleJoin answers a join request: derive each child VID by appending the
// arrival port number (§III.B) and offer it.
func (r *Router) handleJoin(adj *adjacency, parents []VID) {
	var offers []VID
	for _, parent := range parents {
		if !r.holds(parent) {
			continue
		}
		child := parent.Extend(adj.port.Index)
		offers = append(offers, child)
		adj.offered[child.Key()] = true
	}
	if len(offers) == 0 {
		return
	}
	r.Stats.OffersSent++
	m := Message{Type: TypeOffer, VIDs: offers}
	r.sendMsg(adj, &m)
}

// holds reports whether this device owns the VID (its root identity or an
// acquired entry).
func (r *Router) holds(v VID) bool {
	if r.Cfg.Tier == 1 {
		return len(v) == 1 && v[0] == r.rootVID
	}
	_, ok := r.entries[v.Key()]
	return ok
}

// handleOffer installs assigned VIDs and confirms with ACCEPT.
func (r *Router) handleOffer(adj *adjacency, vids []VID) {
	recovered := make(map[byte]bool)
	added := false
	for _, v := range vids {
		wasReachable := r.reachable(v.Root())
		if r.addEntry(v, adj.port.Index, adj.neighborTier) {
			added = true
			if !wasReachable {
				recovered[v.Root()] = true
			}
		}
		delete(adj.requested, v[:len(v)-1].Key())
	}
	m := Message{Type: TypeAccept, VIDs: vids}
	r.sendMsg(adj, &m)
	if added {
		// Our joinable set grew: tell upper tiers.
		for _, other := range r.adjList {
			if other != adj && other.state == adjUp {
				r.sendAdvertise(other)
			}
		}
	}
	if len(recovered) > 0 {
		r.processReachability(recovered, adj.port.Index, false)
	}
	if invariant.Enabled {
		r.checkVIDTable()
	}
}

// handleAccept finalizes the parent side of the handshake.
func (r *Router) handleAccept(adj *adjacency, vids []VID) {
	for _, v := range vids {
		if adj.offered[v.Key()] {
			adj.accepted[v.Key()] = true
		}
	}
	m := Message{Type: TypeAck, VIDs: vids}
	r.sendMsg(adj, &m)
}

// --- reachability ----------------------------------------------------------

// uplinks returns the live upper-tier adjacencies in port order. The result
// shares the router's scratch buffer — it is valid until the next call and
// must not be retained; this keeps the per-packet up-forwarding path
// allocation-free.
func (r *Router) uplinks() []*adjacency {
	if r.topTier() {
		return nil
	}
	// adjList is port-ascending, so the result needs no sorting — the
	// per-packet up-forwarding path stays allocation- and sort-free.
	out := r.upScratch[:0]
	for _, adj := range r.adjList {
		if adj.state != adjUp || !adj.port.Up() {
			continue
		}
		// neighborTier 0 means "not yet learned": optimistic, so early
		// traffic still flows during fabric bring-up.
		if adj.neighborTier > r.Cfg.Tier || adj.neighborTier == 0 {
			out = append(out, adj)
		}
	}
	r.upScratch = out
	return out
}

func (r *Router) topTier() bool { return r.Cfg.Tier >= r.Cfg.TopTier }

// reachable reports whether this device can still forward traffic for the
// root: it is the root itself, holds a live VID entry for it, or may use
// default up-forwarding (unless the root is downstream or every uplink is
// marked unreachable for it).
func (r *Router) reachable(root byte) bool {
	if r.Cfg.Tier == 1 && root == r.rootVID {
		return true
	}
	for _, key := range r.byRoot[root] {
		e := r.entries[key]
		if adj := r.adjs[e.port]; adj != nil && adj.state == adjUp && adj.port.Up() {
			return true
		}
	}
	if r.topTier() || r.downstream[root] {
		return false
	}
	for _, adj := range r.uplinks() {
		marks := r.unreachable[adj.port.Index]
		if !marks[root] && !marks[DefaultRoot] {
			return true
		}
	}
	return false
}

// stageUpdate queues a received reachability update for coalesced
// processing, so the LOST reports arriving from every meshed-tree branch of
// the same failure are evaluated as one event.
func (r *Router) stageUpdate(port int, sub byte, roots []byte) {
	for _, root := range roots {
		r.staged = append(r.staged, stagedUpdate{port: port, sub: sub, root: root})
	}
	if r.coalesceTimer == nil {
		r.coalesceTimer = r.sim().After(r.Cfg.Coalesce, r.processStaged)
	}
}

func (r *Router) processStaged() {
	r.coalesceTimer = nil
	staged := r.staged
	r.staged = nil

	affected := make(map[byte]bool)
	fromPorts := make(map[byte]map[int]bool)
	for _, u := range staged {
		affected[u.root] = true
		if fromPorts[u.root] == nil {
			fromPorts[u.root] = make(map[int]bool)
		}
		fromPorts[u.root][u.port] = true
		marks := r.unreachable[u.port]
		if u.sub == UpdateLost {
			if marks == nil {
				marks = make(map[byte]bool)
				r.unreachable[u.port] = marks
			}
			marks[u.root] = true
			// Entries for the root acquired via the reporting port are
			// dead branches of the broken tree.
			for _, key := range append([]string(nil), r.byRoot[u.root]...) {
				if r.entries[key].port == u.port {
					r.removeEntry(key)
				}
			}
		} else if marks != nil {
			delete(marks, u.root)
		}
	}
	r.applyReachability(affected, fromPorts)
	if invariant.Enabled {
		r.checkVIDTable()
	}
}

// processReachability handles locally detected changes (neighbor loss or
// recovery) for the affected roots.
func (r *Router) processReachability(affected map[byte]bool, sourcePort int, lost bool) {
	if len(affected) == 0 {
		return
	}
	fromPorts := make(map[byte]map[int]bool)
	//simlint:deterministic independent per-root map fill; no ordering escapes
	for root := range affected {
		fromPorts[root] = map[int]bool{sourcePort: true}
	}
	r.applyReachability(affected, fromPorts)
}

// applyReachability decides, per root, whether this device absorbs the
// change (it still has a usable path: a forwarding-table update the paper
// counts in the blast radius) or must propagate it (it became a relay with
// no choice of its own: "spines along the way only forward the update").
func (r *Router) applyReachability(affected map[byte]bool, fromPorts map[byte]map[int]bool) {
	var lostRoots, foundRoots []byte
	absorbed := false
	//simlint:deterministic per-root decisions are independent; the lost/found slices are sorted before any message is sent
	for root := range affected {
		nowReachable := r.reachable(root)
		wasLost := r.lostSent[root]
		switch {
		case !nowReachable && !wasLost:
			lostRoots = append(lostRoots, root)
			r.lostSent[root] = true
		case nowReachable && wasLost:
			foundRoots = append(foundRoots, root)
			delete(r.lostSent, root)
			absorbed = true
		case nowReachable:
			absorbed = true
		}
	}
	if absorbed && len(lostRoots) == 0 {
		r.rec.RouteUpdate(r.sim().Now(), r.Node.Name)
	}
	sort.Slice(lostRoots, func(i, j int) bool { return lostRoots[i] < lostRoots[j] })
	sort.Slice(foundRoots, func(i, j int) bool { return foundRoots[i] < foundRoots[j] })
	if len(lostRoots) > 0 {
		r.propagate(UpdateLost, lostRoots, fromPorts)
	}
	if len(foundRoots) > 0 {
		r.propagate(UpdateFound, foundRoots, fromPorts)
	}
}

// propagate sends an UPDATE on every live adjacency that did not itself
// report the change.
func (r *Router) propagate(sub byte, roots []byte, fromPorts map[byte]map[int]bool) {
	for _, adj := range r.adjList {
		if adj.state != adjUp || !adj.port.Up() {
			continue
		}
		var send []byte
		for _, root := range roots {
			if fromPorts[root][adj.port.Index] {
				continue
			}
			send = append(send, root)
		}
		if len(send) == 0 {
			continue
		}
		m := Message{Type: TypeUpdate, Sub: sub, Roots: send}
		payload := r.sendMsg(adj, &m)
		if payload == nil {
			continue
		}
		r.Stats.UpdatesSent++
		r.rec.ControlMessage(r.sim().Now(), r.Node.Name, ethernet.HeaderLen+len(payload))
	}
}

// reevaluateLostRoots checks, after an adjacency recovery, whether any
// written-off roots are reachable again and announces the recovery.
func (r *Router) reevaluateLostRoots() {
	recovered := make(map[byte]bool)
	//simlint:deterministic accumulates into the recovered set; processReachability sorts before sending
	for root := range r.lostSent {
		if r.reachable(root) {
			recovered[root] = true
		}
	}
	if len(recovered) > 0 {
		r.processReachability(recovered, 0, false)
	}
}

// NeighborState reports the adjacency state on a port ("down", "up",
// "failed"), the operational visibility a `show mtp neighbors` would give.
func (r *Router) NeighborState(port int) string {
	adj := r.adjs[port]
	if adj == nil {
		return "none"
	}
	switch adj.state {
	case adjUp:
		return "up"
	case adjFailed:
		return "failed"
	}
	return "down"
}
