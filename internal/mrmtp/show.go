package mrmtp

import (
	"fmt"
	"sort"
	"strings"
)

// RenderNeighbors prints the per-port adjacency table — the MR-MTP
// equivalent of `show ip bgp summary`, with Quick-to-Detect state instead
// of an FSM column.
func (r *Router) RenderNeighbors() string {
	ports := make([]int, 0, len(r.adjs))
	for p := range r.adjs {
		ports = append(ports, p)
	}
	sort.Ints(ports)
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-8s %-6s %-10s %-10s\n", "port", "state", "tier", "lastRx", "lastTx")
	for _, p := range ports {
		adj := r.adjs[p]
		tier := "?"
		if adj.neighborTier > 0 {
			tier = fmt.Sprint(adj.neighborTier)
		}
		fmt.Fprintf(&b, "eth%-3d %-8s %-6s %-10v %-10v\n",
			p, r.NeighborState(p), tier, adj.lastRx, adj.lastTx)
	}
	return b.String()
}

// RenderUnreachable prints the per-port avoid list: the records the paper
// describes as "a certain port cannot be used for traffic destined to
// VID 11" (§VII.B). Empty in a healthy fabric.
func (r *Router) RenderUnreachable() string {
	ports := make([]int, 0, len(r.unreachable))
	for p, marks := range r.unreachable {
		if len(marks) > 0 {
			ports = append(ports, p)
		}
	}
	if len(ports) == 0 {
		return "no unreachable VIDs recorded\n"
	}
	sort.Ints(ports)
	var b strings.Builder
	for _, p := range ports {
		roots := make([]int, 0, len(r.unreachable[p]))
		for root := range r.unreachable[p] {
			roots = append(roots, int(root))
		}
		sort.Ints(roots)
		parts := make([]string, len(roots))
		for i, root := range roots {
			parts[i] = fmt.Sprint(root)
		}
		fmt.Fprintf(&b, "eth%d\tcannot reach VIDs %s\n", p, strings.Join(parts, ", "))
	}
	return b.String()
}

// Summary returns a one-line state digest for dashboards and tests.
func (r *Router) Summary() string {
	up := 0
	for _, adj := range r.adjList {
		if adj.state == adjUp {
			up++
		}
	}
	role := fmt.Sprintf("tier-%d spine", r.Cfg.Tier)
	if r.Cfg.Tier == 1 {
		role = fmt.Sprintf("ToR VID %d (%s)", r.rootVID, r.Cfg.RackSubnet)
	}
	return fmt.Sprintf("%s: %s, %d VIDs, %d/%d neighbors up",
		r.Node.Name, role, r.TableSize(), up, len(r.adjs))
}
