package mrmtp

import (
	"strings"
	"testing"
	"time"
)

func TestRenderNeighbors(t *testing.T) {
	c := newColumn(t)
	out := c.spine.RenderNeighbors()
	for _, want := range []string{"eth1", "eth3", "up"} {
		if !strings.Contains(out, want) {
			t.Errorf("neighbors missing %q:\n%s", want, out)
		}
	}
	c.tor.Node.Port(1).Fail()
	c.sim.RunFor(300 * time.Millisecond)
	if !strings.Contains(c.spine.RenderNeighbors(), "failed") {
		t.Errorf("dead neighbor not shown:\n%s", c.spine.RenderNeighbors())
	}
}

func TestRenderUnreachable(t *testing.T) {
	c := newColumn(t)
	if got := c.top.RenderUnreachable(); !strings.Contains(got, "no unreachable") {
		t.Errorf("healthy fabric shows unreachable VIDs:\n%s", got)
	}
	// Break tree 11: tor2 learns "port 1 cannot reach VID 11"? No — the
	// column has a single path; the *top* spine loses it outright and the
	// spine records nothing (downstream). Check at tor2 after a LOST
	// reaches it: tor2's only uplink is marked.
	c.tor.Node.Port(1).Fail()
	c.sim.RunFor(300 * time.Millisecond)
	out := c.tor2.RenderUnreachable()
	if !strings.Contains(out, "eth1") || !strings.Contains(out, "11") {
		t.Errorf("tor2 should record VID 11 unreachable via eth1:\n%s", out)
	}
}

func TestSummaryLine(t *testing.T) {
	c := newColumn(t)
	torSum := c.tor.Summary()
	if !strings.Contains(torSum, "ToR VID 11") || !strings.Contains(torSum, "192.168.11.0/24") {
		t.Errorf("tor summary: %s", torSum)
	}
	spineSum := c.spine.Summary()
	if !strings.Contains(spineSum, "tier-2 spine") || !strings.Contains(spineSum, "2 VIDs") {
		t.Errorf("spine summary: %s", spineSum)
	}
	if !strings.Contains(spineSum, "3/3 neighbors up") {
		t.Errorf("spine adjacency count: %s", spineSum)
	}
}
