package mrmtp

import (
	"repro/internal/flowhash"
	"repro/internal/icmp"
	"repro/internal/ipv4"
	"repro/internal/netaddr"
	"repro/internal/udp"
)

// This file is the MR-MTP half of the in-fabric observability plane
// (DESIGN.md §12). The fabric is IP-opaque — spines never parse past the
// encapsulation header — so ordinary traceroute shows the whole fabric as a
// single hop. Path tracing instead steps the *data-plane* TTL: a probe is a
// server-format IP packet injected with a small encapsulation TTL, the
// spine where it expires answers time-exceeded from its configured
// Identity, and the destination ToR answers port-unreachable from its
// gateway address. The replies ride the fabric like any other packet.

// ICMPListener receives ICMP messages addressed to the ToR's gateway IP.
type ICMPListener func(src netaddr.IPv4, m icmp.Message)

// ListenICMP registers a listener for gateway-addressed ICMP (path-trace
// replies). Echo requests are answered by the ToR itself and not delivered.
func (r *Router) ListenICMP(h ICMPListener) {
	r.icmpListeners = append(r.icmpListeners, h)
}

// InjectData encapsulates a caller-built wire-format IP packet at this ToR
// with an explicit encapsulation TTL and forwards it into the fabric. This
// is the probe entry point: ttl selects the hop under test (1 = first
// spine), and the caller controls every inner header field, in particular
// the IP ID a reply quotes back and the UDP source port the fabric hashes.
func (r *Router) InjectData(ipWire []byte, ttl byte) {
	pkt, err := ipv4.Unmarshal(ipWire)
	if err != nil || r.Cfg.Tier != 1 {
		return
	}
	dstRoot := pkt.Header.Dst[2]
	r.forwardData(MarshalData(r.rootVID, dstRoot, ttl, ipWire), dstRoot, flowhash.FromIPPacket(ipWire))
}

// NextDataHop returns the port forwardData would choose for a packet to
// dstRoot carrying flow key — the same VID-table walk and uplink hash,
// without sending anything. ok is false when forwardData would drop. Path
// enumeration composes this across devices to predict a probe's hop
// sequence.
func (r *Router) NextDataHop(dstRoot byte, key flowhash.Key) (port int, ok bool) {
	for _, vidKey := range r.byRoot[dstRoot] {
		e := r.entries[vidKey]
		adj := r.adjs[e.port]
		if adj != nil && adj.state == adjUp && adj.port.Up() {
			return e.port, true
		}
	}
	ups := r.uplinks()
	eligible := r.eligScratch[:0]
	for _, adj := range ups {
		marks := r.unreachable[adj.port.Index]
		if !marks[dstRoot] && !marks[DefaultRoot] {
			eligible = append(eligible, adj)
		}
	}
	r.eligScratch = eligible
	if len(eligible) == 0 || r.downstream[dstRoot] || (r.Cfg.Tier == 1 && dstRoot == r.rootVID) {
		return 0, false
	}
	return eligible[int(key.Hash())%len(eligible)].port.Index, true
}

// handleLocal consumes a fabric-delivered IP packet addressed to the ToR's
// own gateway IP: echo requests are answered, unclaimed UDP earns
// port-unreachable (the "probe reached its destination" signal), and other
// ICMP — the trace replies — goes to the registered listeners.
func (r *Router) handleLocal(ipWire []byte, pkt ipv4.Packet) {
	switch pkt.Header.Protocol {
	case ipv4.ProtoICMP:
		m, err := icmp.Unmarshal(pkt.Payload)
		if err != nil {
			return
		}
		if m.Type == icmp.TypeEchoRequest {
			r.sendFromGateway(pkt.Header.Src, marshalICMP(icmp.EchoReplyTo(m)))
			return
		}
		for _, h := range r.icmpListeners {
			h(pkt.Header.Src, m)
		}
	case ipv4.ProtoUDP:
		if _, err := udp.Unmarshal(pkt.Header.Src, pkt.Header.Dst, pkt.Payload); err != nil {
			return
		}
		if !pkt.Header.Src.IsZero() {
			r.sendFromGateway(pkt.Header.Src, marshalICMP(icmp.PortUnreachable(ipWire)))
		}
	}
}

// sendFromGateway emits an ICMP message sourced from the ToR's gateway
// address: straight to the rack when the destination sits behind this ToR,
// encapsulated into the fabric otherwise. The destination root derives from
// the address exactly as ingressIP derives it (paper §III.A).
func (r *Router) sendFromGateway(dst netaddr.IPv4, icmpWire []byte) {
	reply := ipv4.Packet{
		Header: ipv4.Header{
			TTL: ipv4.DefaultTTL, Protocol: ipv4.ProtoICMP,
			Src: r.GatewayIP(), Dst: dst,
		},
		Payload: icmpWire,
	}
	wire := reply.Marshal()
	if r.Cfg.RackSubnet.Contains(dst) {
		r.deliverToRack(wire, dst)
		return
	}
	r.forwardData(MarshalData(r.rootVID, dst[2], DataTTL, wire), dst[2], flowhash.FromIPPacket(wire))
}

// sendTraceReply answers an encapsulation-TTL expiry with time-exceeded
// from the device's Identity, routed back toward the probe's source root.
// Only inner UDP and echo-request packets qualify: replying to an ICMP
// error could chain errors into a loop, and a zero Identity (a fabric not
// configured for tracing) keeps the silent-drop behavior.
func (r *Router) sendTraceReply(h DataHeader, ipWire []byte) {
	if r.Cfg.Identity.IsZero() {
		return
	}
	pkt, err := ipv4.Unmarshal(ipWire)
	if err != nil || pkt.Header.Src.IsZero() {
		return
	}
	switch pkt.Header.Protocol {
	case ipv4.ProtoUDP:
	case ipv4.ProtoICMP:
		if len(pkt.Payload) == 0 || pkt.Payload[0] != icmp.TypeEchoRequest {
			return
		}
	default:
		return
	}
	reply := ipv4.Packet{
		Header: ipv4.Header{
			TTL: ipv4.DefaultTTL, Protocol: ipv4.ProtoICMP,
			Src: r.Cfg.Identity, Dst: pkt.Header.Src,
		},
		Payload: marshalICMP(icmp.TimeExceeded(ipWire)),
	}
	wire := reply.Marshal()
	r.Stats.TraceReplies++
	r.forwardData(MarshalData(r.rootVID, h.SrcRoot, DataTTL, wire), h.SrcRoot, flowhash.FromIPPacket(wire))
}
