package mrmtp

import (
	"errors"
	"fmt"

	"repro/internal/ethernet"
	"repro/internal/netaddr"
)

// Message type bytes. HELLO is 0x06 so that the keep-alive frame carries
// the single byte 0x06, matching the paper's Fig. 10 Wireshark capture
// ("Data: 06, [Length: 1]").
const (
	TypeAdvertise byte = 0x01 // parent announces joinable VIDs + its tier
	TypeJoin      byte = 0x02 // child requests to join advertised trees
	TypeOffer     byte = 0x03 // parent assigns derived VIDs
	TypeAccept    byte = 0x04 // child confirms the assignment
	TypeAck       byte = 0x05 // parent acknowledges; handshake complete
	TypeHello     byte = 0x06 // 1-byte keep-alive
	TypeUpdate    byte = 0x07 // reachability change (lost/found roots)
	TypeData      byte = 0x08 // encapsulated IP packet
)

// Update subtypes.
const (
	UpdateLost  byte = 1
	UpdateFound byte = 2
)

// DefaultRoot is the sentinel root carried in UPDATE messages to withdraw
// (or restore) a device's default up-forwarding path as a whole. Spines
// keep no VID entries for remote-pod roots — traffic to them rides the
// hashed up-default — so when the last live uplink dies there is no root
// name to put in a LOST. Real roots derive from the 192.168.<vid>.0/24
// rack octet and are never zero, so the value cannot collide.
const DefaultRoot byte = 0

// DataHeaderLen is the encapsulation header: type, TTL, source root VID,
// destination root VID (paper §III.D: "an MR-MTP header with the source
// ToR VID = 11 and destination ToR VID = 14").
const DataHeaderLen = 4

// DataTTL bounds transient forwarding loops during reconvergence. The
// longest valley-free path in a 3-tier fabric is 4 hops; 16 leaves margin
// for multi-tier scale-out.
const DataTTL = 16

// ErrMalformed reports an undecodable MR-MTP message.
var ErrMalformed = errors.New("mrmtp: malformed message")

// Message is a decoded control message.
type Message struct {
	Type  byte
	Tier  int    // Advertise
	VIDs  []VID  // Advertise/Join/Offer/Accept/Ack
	Sub   byte   // Update subtype
	Roots []byte // Update root VIDs
}

// marshalVIDs appends count + length-prefixed VIDs.
func marshalVIDs(b []byte, vids []VID) []byte {
	b = append(b, byte(len(vids)))
	for _, v := range vids {
		b = append(b, byte(len(v)))
		b = append(b, v...)
	}
	return b
}

func parseVIDs(b []byte) ([]VID, []byte, error) {
	if len(b) < 1 {
		return nil, nil, ErrMalformed
	}
	n := int(b[0])
	b = b[1:]
	vids := make([]VID, 0, n)
	for i := 0; i < n; i++ {
		if len(b) < 1 {
			return nil, nil, ErrMalformed
		}
		l := int(b[0])
		if l == 0 || len(b) < 1+l {
			return nil, nil, ErrMalformed
		}
		vids = append(vids, VID(append([]byte(nil), b[1:1+l]...)))
		b = b[1+l:]
	}
	return vids, b, nil
}

// Marshal renders a control message body (the Ethernet payload). An
// unknown message type is an error, not a panic: the type byte can come
// from a parsed frame, and a router must drop what it cannot encode rather
// than take the simulation down.
func (m *Message) Marshal() ([]byte, error) {
	switch m.Type {
	case TypeHello:
		return []byte{TypeHello}, nil
	case TypeAdvertise:
		b := []byte{TypeAdvertise, byte(m.Tier)}
		return marshalVIDs(b, m.VIDs), nil
	case TypeJoin, TypeOffer, TypeAccept, TypeAck:
		return marshalVIDs([]byte{m.Type}, m.VIDs), nil
	case TypeUpdate:
		b := []byte{TypeUpdate, m.Sub, byte(len(m.Roots))}
		return append(b, m.Roots...), nil
	}
	return nil, fmt.Errorf("mrmtp: cannot marshal message type %#02x: %w", m.Type, ErrMalformed)
}

// ParseMessage decodes a control message body. Data frames (TypeData) are
// handled separately because their payload is an opaque IP packet.
func ParseMessage(b []byte) (Message, error) {
	if len(b) < 1 {
		return Message{}, ErrMalformed
	}
	m := Message{Type: b[0]}
	switch m.Type {
	case TypeHello:
		return m, nil
	case TypeAdvertise:
		if len(b) < 2 {
			return Message{}, ErrMalformed
		}
		m.Tier = int(b[1])
		vids, _, err := parseVIDs(b[2:])
		if err != nil {
			return Message{}, err
		}
		m.VIDs = vids
		return m, nil
	case TypeJoin, TypeOffer, TypeAccept, TypeAck:
		vids, _, err := parseVIDs(b[1:])
		if err != nil {
			return Message{}, err
		}
		m.VIDs = vids
		return m, nil
	case TypeUpdate:
		if len(b) < 3 || len(b) < 3+int(b[2]) {
			return Message{}, ErrMalformed
		}
		m.Sub = b[1]
		if m.Sub != UpdateLost && m.Sub != UpdateFound {
			return Message{}, ErrMalformed
		}
		m.Roots = append([]byte(nil), b[3:3+int(b[2])]...)
		return m, nil
	}
	return Message{}, fmt.Errorf("mrmtp: unknown message type %#02x", b[0])
}

// MarshalData builds a data frame payload: the 4-byte MR-MTP header
// followed by the raw IP packet. The hot TX path uses the pooled
// Router.encapData instead; this allocating variant serves tests and
// non-hot callers.
func MarshalData(srcRoot, dstRoot byte, ttl byte, ipPacket []byte) []byte {
	b := make([]byte, DataHeaderLen+len(ipPacket))
	b[0] = TypeData
	b[1] = ttl
	b[2] = srcRoot
	b[3] = dstRoot
	copy(b[DataHeaderLen:], ipPacket)
	return b
}

// DataHeader is the decoded encapsulation header.
type DataHeader struct {
	TTL              byte
	SrcRoot, DstRoot byte
}

// ParseData splits a data frame payload into header and IP packet.
func ParseData(b []byte) (DataHeader, []byte, error) {
	if len(b) < DataHeaderLen || b[0] != TypeData {
		return DataHeader{}, nil, ErrMalformed
	}
	return DataHeader{TTL: b[1], SrcRoot: b[2], DstRoot: b[3]}, b[DataHeaderLen:], nil
}

// frame wraps an MR-MTP payload in the broadcast-addressed Ethernet frame
// the paper uses (§VII.F: broadcast destination avoids ARP on the
// point-to-point links).
func frame(src netaddr.MAC, payload []byte) []byte {
	f := ethernet.Frame{
		Dst:       netaddr.Broadcast,
		Src:       src,
		EtherType: ethernet.TypeMRMTP,
		Payload:   payload,
	}
	return f.Marshal()
}
