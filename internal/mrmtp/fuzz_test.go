package mrmtp

import (
	"bytes"
	"testing"
)

func FuzzParseMessage(f *testing.F) {
	f.Add([]byte{TypeHello})
	f.Add(mustWire(f, Message{Type: TypeAdvertise, Tier: 2, VIDs: []VID{{11}, {12, 1}}}))
	f.Add(mustWire(f, Message{Type: TypeJoin, VIDs: []VID{{11}}}))
	f.Add(mustWire(f, Message{Type: TypeUpdate, Sub: UpdateLost, Roots: []byte{11, 12}}))
	f.Add([]byte{TypeJoin, 255, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ParseMessage(data)
		if err != nil {
			return
		}
		// Anything that parses must re-marshal and re-parse to the same
		// message (canonical wire form).
		out, err := m.Marshal()
		if err != nil {
			t.Fatalf("re-marshal of parsed message failed: %v", err)
		}
		m2, err := ParseMessage(out)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if m2.Type != m.Type || m2.Tier != m.Tier || m2.Sub != m.Sub ||
			len(m2.VIDs) != len(m.VIDs) || !bytes.Equal(m2.Roots, m.Roots) {
			t.Fatalf("round trip changed the message: %+v -> %+v", m, m2)
		}
	})
}

func FuzzParseData(f *testing.F) {
	f.Add(MarshalData(11, 14, DataTTL, []byte{0x45, 0, 0, 20}))
	f.Add([]byte{TypeData})
	f.Fuzz(func(t *testing.T, data []byte) {
		h, inner, err := ParseData(data)
		if err != nil {
			return
		}
		out := MarshalData(h.SrcRoot, h.DstRoot, h.TTL, inner)
		if !bytes.Equal(out, data) {
			t.Fatalf("data frame round trip diverged")
		}
	})
}

func FuzzParseVID(f *testing.F) {
	f.Add("11.1.2")
	f.Add("255")
	f.Add("11..2")
	f.Fuzz(func(t *testing.T, s string) {
		v, err := ParseVID(s)
		if err != nil {
			return
		}
		w, err := ParseVID(v.String())
		if err != nil || !w.Equal(v) {
			t.Fatalf("VID round trip diverged: %q -> %v -> %v (%v)", s, v, w, err)
		}
	})
}
