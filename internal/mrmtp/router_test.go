package mrmtp

import (
	"strings"
	"testing"
	"time"

	"repro/internal/ethernet"
	"repro/internal/ipv4"
	"repro/internal/metrics"
	"repro/internal/netaddr"
	"repro/internal/simnet"
)

// column builds the minimal three-tier column of the paper's Fig. 2:
//
//	server -- tor(11) -- spine -- top
//
// with a second ToR (12) on the spine so the spine has two trees.
type column struct {
	sim    *simnet.Sim
	log    *metrics.Log
	tor    *Router // L, VID 11
	tor2   *Router // VID 12
	spine  *Router
	top    *Router
	server *simnet.Node
}

func rack(vid byte) netaddr.Prefix {
	return netaddr.MakePrefix(netaddr.MakeIPv4(192, 168, vid, 0), 24)
}

func newColumn(t *testing.T) *column {
	t.Helper()
	c := &column{sim: simnet.New(13), log: &metrics.Log{}}
	torN := c.sim.AddNode("tor")
	tor2N := c.sim.AddNode("tor2")
	spineN := c.sim.AddNode("spine")
	topN := c.sim.AddNode("top")
	c.server = c.sim.AddNode("server")

	// tor: port1 uplink to spine, port2 rack.
	c.sim.Connect(torN.AddPort(), spineN.AddPort())  // spine port1 (down)
	c.sim.Connect(tor2N.AddPort(), spineN.AddPort()) // spine port2 (down)
	c.sim.Connect(spineN.AddPort(), topN.AddPort())  // spine port3 (up), top port1
	c.sim.Connect(torN.AddPort(), c.server.AddPort())

	torCfg := DefaultConfig(1, 3)
	torCfg.ServerPort = 2
	torCfg.RackSubnet = rack(11)
	c.tor = New(torN, torCfg, c.log)
	tor2Cfg := DefaultConfig(1, 3)
	tor2Cfg.ServerPort = 2
	tor2Cfg.RackSubnet = rack(12)
	c.tor2 = New(tor2N, tor2Cfg, c.log)
	c.spine = New(spineN, DefaultConfig(2, 3), c.log)
	c.top = New(topN, DefaultConfig(3, 3), c.log)
	c.sim.Start()
	c.sim.RunFor(2 * time.Second)
	return c
}

func TestColumnTreeFormation(t *testing.T) {
	c := newColumn(t)
	if got := c.tor.RootVID(); got != 11 {
		t.Fatalf("tor root VID = %d, want 11 (derived from 192.168.11.0/24)", got)
	}
	// The suffix is the port the JOIN arrived on at the *parent* (each
	// ToR's port 1), per §III.B.
	wantSpine := []string{"11.1", "12.1"}
	if got := c.spine.VIDs(); !equalStrings(got, wantSpine) {
		t.Errorf("spine VIDs = %v, want %v", got, wantSpine)
	}
	// The top's JOIN arrives on spine port 3: 11.1.3, 12.1.3.
	wantTop := []string{"11.1.3", "12.1.3"}
	if got := c.top.VIDs(); !equalStrings(got, wantTop) {
		t.Errorf("top VIDs = %v, want %v", got, wantTop)
	}
	if c.spine.TableSize() != 2 || c.top.TableSize() != 2 {
		t.Errorf("table sizes: spine=%d top=%d", c.spine.TableSize(), c.top.TableSize())
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestNeighborStates(t *testing.T) {
	c := newColumn(t)
	if got := c.tor.NeighborState(1); got != "up" {
		t.Errorf("tor uplink state = %s, want up", got)
	}
	if got := c.tor.NeighborState(2); got != "none" {
		t.Errorf("rack port adjacency state = %s, want none (no fabric adjacency)", got)
	}
	c.tor.Node.Port(1).Fail()
	c.sim.RunFor(50 * time.Millisecond)
	if got := c.tor.NeighborState(1); got != "failed" {
		t.Errorf("after local carrier loss: %s, want failed", got)
	}
	c.sim.RunFor(200 * time.Millisecond)
	if got := c.spine.NeighborState(1); got != "failed" {
		t.Errorf("spine after dead timer: %s, want failed", got)
	}
}

func TestQuickToDetectTiming(t *testing.T) {
	// The spine must declare the ToR dead within DeadInterval (plus hello
	// phase), i.e. after missing a *single* hello — 3x faster than a
	// typical 3-missed-hellos protocol.
	c := newColumn(t)
	before := c.spine.Stats.NeighborsLost
	c.tor.Node.Port(1).Fail()
	c.sim.RunFor(110 * time.Millisecond) // DeadInterval + margin
	if c.spine.Stats.NeighborsLost != before+1 {
		t.Errorf("spine did not detect within one dead interval")
	}
}

func TestSlowToAcceptCountsConsecutiveHellos(t *testing.T) {
	c := newColumn(t)
	c.tor.Node.Port(1).Fail()
	c.sim.RunFor(500 * time.Millisecond)
	c.tor.Node.Port(1).Restore()
	// After at most two hello intervals the spine must still distrust
	// the ToR (3 consecutive hellos needed).
	c.sim.RunFor(70 * time.Millisecond)
	if got := c.spine.NeighborState(1); got != "failed" {
		t.Errorf("spine accepted neighbor after %s, violating Slow-to-Accept", got)
	}
	c.sim.RunFor(500 * time.Millisecond)
	if got := c.spine.NeighborState(1); got != "up" {
		t.Errorf("spine never re-accepted the neighbor: %s", got)
	}
	// The tree must have re-formed.
	if got := c.spine.VIDs(); !equalStrings(got, []string{"11.1", "12.1"}) {
		t.Errorf("spine VIDs after recovery = %v", got)
	}
}

func TestFlappingInterfaceStaysDampened(t *testing.T) {
	// A link that drops every other hello must never be re-accepted:
	// Slow-to-Accept requires three *consecutive* keep-alives.
	c := newColumn(t)
	port := c.tor.Node.Port(1)
	port.Fail()
	c.sim.RunFor(300 * time.Millisecond)
	for i := 0; i < 20; i++ {
		port.Restore()
		c.sim.RunFor(60 * time.Millisecond) // one hello gets through
		port.Fail()
		c.sim.RunFor(150 * time.Millisecond) // then a gap
	}
	if got := c.spine.NeighborState(1); got != "failed" {
		t.Errorf("flapping neighbor state = %s, want failed (dampened)", got)
	}
}

func TestLostUpdateRemovesVIDs(t *testing.T) {
	c := newColumn(t)
	// Kill the ToR-spine link at the ToR side; the spine detects via dead
	// timer and must tell the top spine, which loses tree 11 entirely.
	c.tor.Node.Port(1).Fail()
	c.sim.RunFor(300 * time.Millisecond)
	if got := c.spine.VIDs(); !equalStrings(got, []string{"12.1"}) {
		t.Errorf("spine VIDs = %v, want [12.1]", got)
	}
	if got := c.top.VIDs(); !equalStrings(got, []string{"12.1.3"}) {
		t.Errorf("top VIDs = %v, want [12.1.3]", got)
	}
	if c.spine.Stats.UpdatesSent == 0 {
		t.Error("spine never sent a LOST update")
	}
}

func TestDataTTLExpires(t *testing.T) {
	// A data frame whose TTL runs out must be dropped, not forwarded.
	c := newColumn(t)
	ip := ipv4.Packet{Header: ipv4.Header{Protocol: ipv4.ProtoUDP, TTL: 64,
		Src: rack(12).Host(1), Dst: rack(11).Host(1)}}
	payload := MarshalData(12, 11, 1, ip.Marshal()) // TTL 1: expires here
	f := ethernet.Frame{Dst: netaddr.Broadcast, Src: c.top.Node.Port(1).MAC,
		EtherType: ethernet.TypeMRMTP, Payload: payload}
	before := c.spine.Stats.DataDropped
	c.top.Node.Port(1).Send(f.Marshal())
	c.sim.RunFor(10 * time.Millisecond)
	if c.spine.Stats.DataDropped != before+1 {
		t.Errorf("TTL-expired frame not dropped (dropped=%d)", c.spine.Stats.DataDropped)
	}
}

func TestUnknownRootDroppedAtTop(t *testing.T) {
	// The top tier has no default up-path: traffic for an unknown VID
	// must be dropped there (paper §III.D: top spines must have an entry).
	c := newColumn(t)
	ip := ipv4.Packet{Header: ipv4.Header{Protocol: ipv4.ProtoUDP, TTL: 64,
		Src: rack(11).Host(1), Dst: netaddr.MakeIPv4(192, 168, 99, 1)}}
	payload := MarshalData(11, 99, DataTTL, ip.Marshal())
	f := ethernet.Frame{Dst: netaddr.Broadcast, Src: c.spine.Node.Port(3).MAC,
		EtherType: ethernet.TypeMRMTP, Payload: payload}
	before := c.top.Stats.DataDropped
	c.spine.Node.Port(3).Send(f.Marshal())
	c.sim.RunFor(10 * time.Millisecond)
	if c.top.Stats.DataDropped != before+1 {
		t.Error("top spine forwarded a packet for an unknown root")
	}
}

func TestDownstreamRootNeverChasedUp(t *testing.T) {
	// After the spine loses tree 11, a packet for root 11 must not be
	// hashed upward (the root is downstream; sending it up would loop).
	c := newColumn(t)
	c.tor.Node.Port(1).Fail()
	c.sim.RunFor(300 * time.Millisecond)
	ip := ipv4.Packet{Header: ipv4.Header{Protocol: ipv4.ProtoUDP, TTL: 64,
		Src: rack(12).Host(1), Dst: rack(11).Host(1)}}
	payload := MarshalData(12, 11, DataTTL, ip.Marshal())
	f := ethernet.Frame{Dst: netaddr.Broadcast, Src: c.tor2.Node.Port(1).MAC,
		EtherType: ethernet.TypeMRMTP, Payload: payload}
	beforeDropped := c.spine.Stats.DataDropped
	beforeTopRx := c.top.Stats.DataForwarded + c.top.Stats.DataDropped
	c.tor2.Node.Port(1).Send(f.Marshal())
	c.sim.RunFor(10 * time.Millisecond)
	if c.spine.Stats.DataDropped != beforeDropped+1 {
		t.Error("spine did not drop traffic for an unreachable downstream root")
	}
	if c.top.Stats.DataForwarded+c.top.Stats.DataDropped != beforeTopRx {
		t.Error("spine leaked downstream-root traffic upward")
	}
}

func TestRackARPAndDelivery(t *testing.T) {
	// The ToR answers ARP for the gateway and resolves servers on demand.
	c := newColumn(t)
	type rxEvent struct {
		ethertype uint16
		payload   []byte
	}
	var events []rxEvent
	c.server.Handler = handlerFunc(func(p *simnet.Port, raw []byte) {
		f, err := ethernet.Unmarshal(raw)
		if err != nil {
			return
		}
		events = append(events, rxEvent{f.EtherType, append([]byte(nil), f.Payload...)})
	})
	// Encapsulated packet arrives for an unresolved server: ToR must ARP.
	ip := ipv4.Packet{Header: ipv4.Header{Protocol: ipv4.ProtoUDP, TTL: 64,
		Src: rack(12).Host(1), Dst: rack(11).Host(1)}}
	data := MarshalData(12, 11, DataTTL, ip.Marshal())
	f := ethernet.Frame{Dst: netaddr.Broadcast, Src: c.spine.Node.Port(1).MAC,
		EtherType: ethernet.TypeMRMTP, Payload: data}
	c.spine.Node.Port(1).Send(f.Marshal())
	c.sim.RunFor(10 * time.Millisecond)
	if len(events) != 1 || events[0].ethertype != ethernet.TypeARP {
		t.Fatalf("expected an ARP request at the server, got %d events", len(events))
	}
	// Server replies; the queued packet must then be delivered as IPv4.
	req, err := arpUnmarshal(events[0].payload)
	if err != nil {
		t.Fatal(err)
	}
	reply := arpReply(c.server.Port(1).MAC, rack(11).Host(1), req.SenderMAC, req.SenderIP)
	c.server.Port(1).Send(reply)
	c.sim.RunFor(10 * time.Millisecond)
	if len(events) != 2 || events[1].ethertype != ethernet.TypeIPv4 {
		t.Fatalf("queued packet not delivered after ARP reply: %d events", len(events))
	}
	if c.tor.Stats.DataDelivered != 1 {
		t.Errorf("DataDelivered = %d, want 1", c.tor.Stats.DataDelivered)
	}
}

func TestRenderVIDTable(t *testing.T) {
	c := newColumn(t)
	out := c.spine.RenderVIDTable()
	if !strings.Contains(out, "eth1\t11.1") || !strings.Contains(out, "eth2\t12.1") {
		t.Errorf("RenderVIDTable:\n%s", out)
	}
}

func TestHelloSuppressionByControlTraffic(t *testing.T) {
	// During tree formation (lots of control traffic), explicit hellos
	// stay rare; on an idle link they run at the hello rate.
	c := newColumn(t)
	start := c.tor.Stats.HellosSent
	c.sim.RunFor(time.Second)
	perSec := c.tor.Stats.HellosSent - start
	// One fabric port, 50ms interval: ~20/s.
	if perSec < 15 || perSec > 25 {
		t.Errorf("idle hello rate = %d/s, want ~20", perSec)
	}
}

// handlerFunc adapts a function to simnet.Handler for test servers.
type handlerFunc func(p *simnet.Port, frame []byte)

func (h handlerFunc) Start()                               {}
func (h handlerFunc) HandleFrame(p *simnet.Port, f []byte) { h(p, f) }
func (h handlerFunc) PortDown(p *simnet.Port)              {}
func (h handlerFunc) PortUp(p *simnet.Port)                {}

// Minimal ARP helpers so this package's tests need not import internal/arp
// wholesale logic.
func arpUnmarshal(b []byte) (struct {
	SenderMAC netaddr.MAC
	SenderIP  netaddr.IPv4
}, error) {
	var out struct {
		SenderMAC netaddr.MAC
		SenderIP  netaddr.IPv4
	}
	if len(b) < 28 {
		return out, ErrMalformed
	}
	copy(out.SenderMAC[:], b[8:14])
	copy(out.SenderIP[:], b[14:18])
	return out, nil
}

func arpReply(srcMAC netaddr.MAC, srcIP netaddr.IPv4, dstMAC netaddr.MAC, dstIP netaddr.IPv4) []byte {
	b := make([]byte, 28)
	b[1] = 1
	b[2] = 0x08
	b[4], b[5] = 6, 4
	b[7] = 2 // reply
	copy(b[8:14], srcMAC[:])
	copy(b[14:18], srcIP[:])
	copy(b[18:24], dstMAC[:])
	copy(b[24:28], dstIP[:])
	f := ethernet.Frame{Dst: dstMAC, Src: srcMAC, EtherType: ethernet.TypeARP, Payload: b}
	return f.Marshal()
}
