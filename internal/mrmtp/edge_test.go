package mrmtp

import (
	"testing"
	"time"

	"repro/internal/ethernet"
	"repro/internal/netaddr"
)

// sendControl injects a control message into the column as if it came from
// the device at the far end of the given port.
func sendControl(c *column, from *Router, port int, m Message) {
	p := from.Node.Port(port)
	payload, err := m.Marshal()
	if err != nil {
		panic(err)
	}
	f := ethernet.Frame{Dst: netaddr.Broadcast, Src: p.MAC,
		EtherType: ethernet.TypeMRMTP, Payload: payload}
	p.Send(f.Marshal())
}

func TestJoinForUnknownParentIgnored(t *testing.T) {
	// A JOIN for a VID the parent does not hold must produce no OFFER.
	c := newColumn(t)
	before := c.tor.Stats.OffersSent
	sendControl(c, c.spine, 1, Message{Type: TypeJoin, VIDs: []VID{{99}}})
	c.sim.RunFor(10 * time.Millisecond)
	if c.tor.Stats.OffersSent != before {
		t.Error("ToR offered an extension of a VID it does not hold")
	}
}

func TestUpdateForUnknownRootHarmless(t *testing.T) {
	// A LOST for a root nobody knows about must not corrupt state or
	// propagate forever.
	c := newColumn(t)
	spineUpdates := c.spine.Stats.UpdatesSent
	sendControl(c, c.top, 1, Message{Type: TypeUpdate, Sub: UpdateLost, Roots: []byte{200}})
	c.sim.RunFor(50 * time.Millisecond)
	// The spine marks its uplink, still reaches nothing new, and may
	// propagate once (200 was never reachable downstream); the fabric
	// must remain converged for real roots.
	if got := c.spine.VIDs(); !equalStrings(got, []string{"11.1", "12.1"}) {
		t.Errorf("spine VID table corrupted: %v", got)
	}
	_ = spineUpdates
}

func TestDuplicateOfferIdempotent(t *testing.T) {
	// Replaying an OFFER (a retransmission) must not duplicate entries.
	c := newColumn(t)
	if c.spine.TableSize() != 2 {
		t.Fatal("setup failed")
	}
	sendControl(c, c.tor, 1, Message{Type: TypeOffer, VIDs: []VID{{11, 1}}})
	c.sim.RunFor(10 * time.Millisecond)
	if c.spine.TableSize() != 2 {
		t.Errorf("replayed OFFER changed table size to %d", c.spine.TableSize())
	}
}

func TestStaleLostThenFound(t *testing.T) {
	// LOST followed by FOUND for the same root on the same port restores
	// the uplink's eligibility.
	c := newColumn(t)
	sendControl(c, c.top, 1, Message{Type: TypeUpdate, Sub: UpdateLost, Roots: []byte{12}})
	c.sim.RunFor(10 * time.Millisecond)
	if !c.spine.UnreachableVia(3, 12) {
		t.Fatal("LOST not recorded")
	}
	sendControl(c, c.top, 1, Message{Type: TypeUpdate, Sub: UpdateFound, Roots: []byte{12}})
	c.sim.RunFor(10 * time.Millisecond)
	if c.spine.UnreachableVia(3, 12) {
		t.Error("FOUND did not clear the unreachable mark")
	}
}

func TestMalformedFramesIgnored(t *testing.T) {
	// Garbage with the MR-MTP ethertype must not crash or change state.
	c := newColumn(t)
	p := c.tor.Node.Port(1)
	for _, payload := range [][]byte{{}, {0xff}, {TypeJoin, 9}, {TypeUpdate}, {TypeData}} {
		f := ethernet.Frame{Dst: netaddr.Broadcast, Src: p.MAC,
			EtherType: ethernet.TypeMRMTP, Payload: payload}
		p.Send(f.Marshal())
	}
	c.sim.RunFor(50 * time.Millisecond)
	if got := c.spine.VIDs(); !equalStrings(got, []string{"11.1", "12.1"}) {
		t.Errorf("garbage frames corrupted the VID table: %v", got)
	}
}

func TestCoalescingBatchesSimultaneousLost(t *testing.T) {
	// Two LOST reports arriving within the coalesce window must be
	// evaluated together (the blast-radius accounting depends on it).
	c := newColumn(t)
	// The spine's only uplink reports both roots lost in two messages.
	sendControl(c, c.top, 1, Message{Type: TypeUpdate, Sub: UpdateLost, Roots: []byte{11}})
	sendControl(c, c.top, 1, Message{Type: TypeUpdate, Sub: UpdateLost, Roots: []byte{12}})
	c.sim.RunFor(50 * time.Millisecond)
	if !c.spine.UnreachableVia(3, 11) || !c.spine.UnreachableVia(3, 12) {
		t.Error("coalesced batch lost a root")
	}
	// Both roots remain reachable downstream (they ARE this pod's own
	// trees), so nothing propagates to the ToRs.
	if c.tor.Stats.UpdatesRecv != 0 {
		t.Error("spine propagated a loss it could absorb")
	}
}

func TestDataFromUnadmittedNeighborDropped(t *testing.T) {
	// Frames from a dampened neighbor are not forwarded (Slow-to-Accept
	// covers the data plane too).
	c := newColumn(t)
	c.tor.Node.Port(1).Fail()
	c.sim.RunFor(300 * time.Millisecond) // spine declares the ToR dead
	c.tor.Node.Port(1).Restore()
	// Immediately inject data before three hellos have re-admitted us.
	before := c.spine.Stats.DataForwarded
	ipPkt := make([]byte, 20)
	ipPkt[0] = 0x45
	sendControl(c, c.tor, 1, Message{Type: TypeHello}) // 1st contact
	f := ethernet.Frame{Dst: netaddr.Broadcast, Src: c.tor.Node.Port(1).MAC,
		EtherType: ethernet.TypeMRMTP, Payload: MarshalData(11, 12, DataTTL, ipPkt)}
	c.tor.Node.Port(1).Send(f.Marshal())
	c.sim.RunFor(5 * time.Millisecond)
	if c.spine.Stats.DataForwarded != before {
		t.Error("spine forwarded data from a not-yet-re-admitted neighbor")
	}
}
