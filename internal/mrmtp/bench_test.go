package mrmtp

import (
	"testing"
	"time"

	"repro/internal/flowhash"
	"repro/internal/ipv4"
	"repro/internal/simnet"
)

func simNew() *simnet.Sim { return simnet.New(17) }

const benchWarm = 2 * time.Second

func BenchmarkMessageMarshalUpdate(b *testing.B) {
	m := Message{Type: TypeUpdate, Sub: UpdateLost, Roots: []byte{11, 12}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _ = m.Marshal()
	}
}

func BenchmarkMessageParseAdvertise(b *testing.B) {
	m := Message{Type: TypeAdvertise, Tier: 2, VIDs: []VID{{11, 1}, {12, 1}}}
	wire := mustWire(b, m)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseMessage(wire); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkForwardDataDown(b *testing.B) {
	// The spine data-plane hot path: VID-table hit, forward toward root.
	bc := newBenchColumn(b)
	ip := ipv4.Packet{Header: ipv4.Header{Protocol: ipv4.ProtoUDP, TTL: 64,
		Src: rack(12).Host(1), Dst: rack(11).Host(1)}}
	wire := ip.Marshal()
	payload := MarshalData(12, 11, DataTTL, wire)
	key := flowhash.FromIPPacket(wire)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bc.spine.forwardData(payload, 11, key)
	}
}

func BenchmarkForwardDataUpHash(b *testing.B) {
	// The ToR data-plane hot path: no table entry, hashed uplink pick.
	bc := newBenchColumn(b)
	ip := ipv4.Packet{Header: ipv4.Header{Protocol: ipv4.ProtoUDP, TTL: 64,
		Src: rack(11).Host(1), Dst: rack(12).Host(1)}}
	wire := ip.Marshal()
	payload := MarshalData(11, 12, DataTTL, wire)
	key := flowhash.FromIPPacket(wire)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bc.tor.forwardData(payload, 12, key)
	}
}

// TestForwardDataAllocs pins the fabric data plane's allocation budget:
// forwarding an encapsulated packet may allocate the outbound frame buffer
// and scheduling bookkeeping, but never a copy of the payload. A per-hop
// copy shows up here as one extra allocation per op.
func TestForwardDataAllocs(t *testing.T) {
	bc := newBenchColumn(t)
	ip := ipv4.Packet{Header: ipv4.Header{Protocol: ipv4.ProtoUDP, TTL: 64,
		Src: rack(12).Host(1), Dst: rack(11).Host(1)}}
	wire := ip.Marshal()
	payload := MarshalData(12, 11, DataTTL, wire)
	key := flowhash.FromIPPacket(wire)
	avg := testing.AllocsPerRun(200, func() {
		bc.spine.forwardData(payload, 11, key)
	})
	if avg > 3 {
		t.Errorf("forwardData allocates %.1f/op, want <= 3 (frame buffer + event bookkeeping)", avg)
	}
}

// TestIngressIPAllocs pins the ToR ingress budget: encapsulation decrements
// the TTL in the received packet in place instead of copying it first, so
// the path costs the test's own packet, the encapsulation buffer, the
// outbound frame, and event bookkeeping.
func TestIngressIPAllocs(t *testing.T) {
	bc := newBenchColumn(t)
	ip := ipv4.Packet{Header: ipv4.Header{Protocol: ipv4.ProtoUDP, TTL: 64,
		Src: rack(11).Host(1), Dst: rack(12).Host(1)}}
	avg := testing.AllocsPerRun(200, func() {
		// Marshal inside the loop (counted): ingressIP consumes the buffer
		// by design, mutating the TTL of the frame it was handed.
		bc.tor.ingressIP(ip.Marshal())
	})
	if avg > 5 {
		t.Errorf("ingressIP allocates %.1f/op, want <= 5 (no defensive packet copy)", avg)
	}
}

func BenchmarkVIDKey(b *testing.B) {
	v := VID{11, 1, 2, 3}
	for i := 0; i < b.N; i++ {
		_ = v.Key()
	}
}

// newBenchColumn reuses the test fabric for benchmarks and alloc tests.
func newBenchColumn(b testing.TB) *column {
	b.Helper()
	// The column helper takes *testing.T; rebuild inline.
	c := &column{sim: simNew()}
	torN := c.sim.AddNode("tor")
	tor2N := c.sim.AddNode("tor2")
	spineN := c.sim.AddNode("spine")
	topN := c.sim.AddNode("top")
	c.server = c.sim.AddNode("server")
	c.sim.Connect(torN.AddPort(), spineN.AddPort())
	c.sim.Connect(tor2N.AddPort(), spineN.AddPort())
	c.sim.Connect(spineN.AddPort(), topN.AddPort())
	c.sim.Connect(torN.AddPort(), c.server.AddPort())
	torCfg := DefaultConfig(1, 3)
	torCfg.ServerPort = 2
	torCfg.RackSubnet = rack(11)
	c.tor = New(torN, torCfg, nil)
	tor2Cfg := DefaultConfig(1, 3)
	tor2Cfg.ServerPort = 2
	tor2Cfg.RackSubnet = rack(12)
	c.tor2 = New(tor2N, tor2Cfg, nil)
	c.spine = New(spineN, DefaultConfig(2, 3), nil)
	c.top = New(topN, DefaultConfig(3, 3), nil)
	c.sim.Start()
	c.sim.RunFor(benchWarm)
	return c
}

// TestHelloKeepAliveAllocs pins the MR-MTP keep-alive budget: the paper's
// 1-byte raw-Ethernet hello (15 bytes at L2, Fig. 9) costs only the
// outbound frame buffer; event bookkeeping amortizes to zero once the
// simulator freelists warm up.
func TestHelloKeepAliveAllocs(t *testing.T) {
	bc := newBenchColumn(t)
	adj := bc.tor.adjs[1] // fabric uplink toward the spine
	if adj == nil || adj.state != adjUp {
		t.Fatal("uplink adjacency not up after warm-up")
	}
	hello := []byte{TypeHello}
	avg := testing.AllocsPerRun(200, func() {
		bc.tor.sendOn(adj, hello)
		// Run past the link latency so the delivery fires and its event
		// record recycles instead of queueing. (A full drain would never
		// return: the hello timers re-arm forever.)
		bc.sim.RunFor(300 * time.Microsecond)
	})
	if avg > 2 {
		t.Errorf("hello keep-alive allocates %.1f/op, want <= 2 (frame buffer + delivery slack)", avg)
	}
}
