package mrmtp

import (
	"testing"
	"testing/quick"
)

func TestVIDParseString(t *testing.T) {
	cases := []string{"11", "11.1", "11.2.2", "255.1.255"}
	for _, s := range cases {
		v, err := ParseVID(s)
		if err != nil {
			t.Fatalf("ParseVID(%q): %v", s, err)
		}
		if v.String() != s {
			t.Errorf("round trip %q -> %q", s, v.String())
		}
	}
}

func TestVIDParseErrors(t *testing.T) {
	for _, s := range []string{"", "11.", ".11", "256", "11.x", "11..2"} {
		if _, err := ParseVID(s); err == nil {
			t.Errorf("ParseVID(%q) succeeded, want error", s)
		}
	}
}

func TestVIDRoundTripProperty(t *testing.T) {
	f := func(elems []byte) bool {
		if len(elems) == 0 {
			elems = []byte{11}
		}
		if len(elems) > 8 {
			elems = elems[:8]
		}
		v := VID(elems)
		w, err := ParseVID(v.String())
		return err == nil && w.Equal(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVIDExtend(t *testing.T) {
	// Fig. 2: ToR VID 11 offers 11.1 on port 1; S1_1's 11.1 becomes
	// 11.1.2 on its port 2.
	root := VID{11}
	child := root.Extend(1)
	if child.String() != "11.1" {
		t.Errorf("Extend = %s, want 11.1", child)
	}
	grand := child.Extend(2)
	if grand.String() != "11.1.2" {
		t.Errorf("Extend = %s, want 11.1.2", grand)
	}
	if grand.Root() != 11 {
		t.Errorf("Root = %d, want 11", grand.Root())
	}
	if grand.Depth() != 2 {
		t.Errorf("Depth = %d, want 2", grand.Depth())
	}
	// Extend must not alias the parent.
	if child.String() != "11.1" {
		t.Error("Extend mutated the parent VID")
	}
}

func TestVIDExtendNoAliasing(t *testing.T) {
	// Two children of the same parent must not share memory.
	parent := VID{11, 1}
	a := parent.Extend(1)
	b := parent.Extend(2)
	if a.String() != "11.1.1" || b.String() != "11.1.2" {
		t.Errorf("children corrupted: %s %s", a, b)
	}
}

func TestVIDHasPrefix(t *testing.T) {
	v := VID{11, 1, 2}
	if !v.HasPrefix(VID{11}) || !v.HasPrefix(VID{11, 1}) || !v.HasPrefix(v) {
		t.Error("HasPrefix rejects true ancestors")
	}
	if v.HasPrefix(VID{12}) || v.HasPrefix(VID{11, 2}) || v.HasPrefix(VID{11, 1, 2, 3}) {
		t.Error("HasPrefix accepts non-ancestors")
	}
}

func TestVIDKeyUniqueness(t *testing.T) {
	f := func(a, b []byte) bool {
		va, vb := VID(a), VID(b)
		if va.Equal(vb) {
			return va.Key() == vb.Key()
		}
		return va.Key() != vb.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
