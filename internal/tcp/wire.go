// Package tcp implements a simplified but wire-accurate TCP used to carry
// BGP sessions, mirroring the paper's protocol-stack accounting (Fig. 1):
// BGP needs TCP, TCP needs IP, and every BGP keep-alive costs a TCP/IP
// envelope on the wire (85 bytes at layer 2 with the timestamp option, the
// figure the paper measured with Wireshark), while pure ACKs cost 66 bytes.
//
// The implementation provides reliable in-order byte streams with a
// three-way handshake, cumulative ACKs, go-back-N retransmission with an
// exponential RTO, and segmentation at the MSS. Flow control and congestion
// control are intentionally omitted: BGP control traffic in a DCN never
// approaches either limit, and the experiments measure timer-driven
// behaviour, not throughput.
package tcp

import (
	"errors"

	"repro/internal/ipv4"
	"repro/internal/netaddr"
	"repro/internal/udp"
)

// Flag bits.
const (
	FlagFIN = 1 << 0
	FlagSYN = 1 << 1
	FlagRST = 1 << 2
	FlagPSH = 1 << 3
	FlagACK = 1 << 4
)

// Wire sizes. Every non-SYN segment carries the RFC 7323 timestamp option
// (10 bytes padded to 12), as Linux does; SYNs additionally carry MSS.
const (
	baseHeaderLen = 20
	tsOptionLen   = 12 // NOP, NOP, TS(10)
	mssOptionLen  = 4
	// HeaderLen is the header size of a regular (non-SYN) segment.
	HeaderLen = baseHeaderLen + tsOptionLen
	// SynHeaderLen is the header size of SYN/SYN-ACK segments.
	SynHeaderLen = baseHeaderLen + mssOptionLen + tsOptionLen
)

// MSS is the maximum segment payload. 1460 matches Ethernet; BGP messages
// are far smaller, but segmentation is implemented and tested anyway.
const MSS = 1460

// Segment is a parsed TCP segment.
type Segment struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            byte
	Window           uint16
	MSSOption        uint16 // nonzero only on SYN segments
	TSVal, TSEcr     uint32
	Payload          []byte
}

var (
	// ErrTruncated reports a segment shorter than its data offset claims.
	ErrTruncated = errors.New("tcp: truncated segment")
	// ErrBadChecksum reports a pseudo-header checksum failure.
	ErrBadChecksum = errors.New("tcp: bad checksum")
)

// Marshal renders the segment, computing the checksum over the IPv4
// pseudo-header.
func (s *Segment) Marshal(src, dst netaddr.IPv4) []byte {
	optLen := tsOptionLen
	if s.Flags&FlagSYN != 0 {
		optLen += mssOptionLen
	}
	hlen := baseHeaderLen + optLen
	b := make([]byte, hlen+len(s.Payload))
	be16(b[0:], s.SrcPort)
	be16(b[2:], s.DstPort)
	be32(b[4:], s.Seq)
	be32(b[8:], s.Ack)
	b[12] = byte(hlen/4) << 4
	b[13] = s.Flags
	w := s.Window
	if w == 0 {
		w = 65535
	}
	be16(b[14:], w)
	o := baseHeaderLen
	if s.Flags&FlagSYN != 0 {
		mss := s.MSSOption
		if mss == 0 {
			mss = MSS
		}
		b[o], b[o+1] = 2, 4 // MSS option
		be16(b[o+2:], mss)
		o += mssOptionLen
	}
	b[o], b[o+1] = 1, 1 // NOP padding
	b[o+2], b[o+3] = 8, 10
	be32(b[o+4:], s.TSVal)
	be32(b[o+8:], s.TSEcr)
	copy(b[hlen:], s.Payload)
	ck := udp.PseudoChecksum(src, dst, ipv4.ProtoTCP, b)
	be16(b[16:], ck)
	return b
}

// Unmarshal parses and validates a segment carried between src and dst.
func Unmarshal(src, dst netaddr.IPv4, b []byte) (Segment, error) {
	if len(b) < baseHeaderLen {
		return Segment{}, ErrTruncated
	}
	hlen := int(b[12]>>4) * 4
	if hlen < baseHeaderLen || hlen > len(b) {
		return Segment{}, ErrTruncated
	}
	if udp.PseudoChecksum(src, dst, ipv4.ProtoTCP, b) != 0 {
		return Segment{}, ErrBadChecksum
	}
	var s Segment
	s.SrcPort = u16(b[0:])
	s.DstPort = u16(b[2:])
	s.Seq = u32(b[4:])
	s.Ack = u32(b[8:])
	s.Flags = b[13]
	s.Window = u16(b[14:])
	// Walk options.
	opts := b[baseHeaderLen:hlen]
	for len(opts) > 0 {
		switch opts[0] {
		case 0: // end of options
			opts = nil
		case 1: // NOP
			opts = opts[1:]
		default:
			if len(opts) < 2 || int(opts[1]) > len(opts) || opts[1] < 2 {
				return Segment{}, ErrTruncated
			}
			body := opts[:opts[1]]
			switch opts[0] {
			case 2:
				if len(body) == 4 {
					s.MSSOption = u16(body[2:])
				}
			case 8:
				if len(body) == 10 {
					s.TSVal = u32(body[2:])
					s.TSEcr = u32(body[6:])
				}
			}
			opts = opts[opts[1]:]
		}
	}
	s.Payload = b[hlen:]
	return s, nil
}

func be16(b []byte, v uint16) { b[0] = byte(v >> 8); b[1] = byte(v) }
func be32(b []byte, v uint32) {
	b[0] = byte(v >> 24)
	b[1] = byte(v >> 16)
	b[2] = byte(v >> 8)
	b[3] = byte(v)
}
func u16(b []byte) uint16 { return uint16(b[0])<<8 | uint16(b[1]) }
func u32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

// seqLT reports a < b in 32-bit sequence space.
func seqLT(a, b uint32) bool { return int32(a-b) < 0 }

// seqLEQ reports a <= b in 32-bit sequence space.
func seqLEQ(a, b uint32) bool { return int32(a-b) <= 0 }
