package tcp

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/netaddr"
	"repro/internal/simnet"
)

var (
	ipA = netaddr.MakeIPv4(172, 16, 0, 1)
	ipB = netaddr.MakeIPv4(172, 16, 0, 2)
)

// wirePair connects two endpoints through the simulator with a drop hook.
type wirePair struct {
	sim  *simnet.Sim
	a, b *Endpoint
	// drop, when non-nil, discards matching segments (loss injection).
	drop func(from netaddr.IPv4, segment []byte) bool
	cut  bool // when true, all segments are lost
}

func newWirePair(t *testing.T) *wirePair {
	t.Helper()
	w := &wirePair{sim: simnet.New(7)}
	deliver := func(to *Endpoint) func(src, dst netaddr.IPv4, seg []byte) {
		return func(src, dst netaddr.IPv4, seg []byte) {
			if w.cut || (w.drop != nil && w.drop(src, seg)) {
				return
			}
			cp := append([]byte(nil), seg...)
			w.sim.After(100*time.Microsecond, func() { to.Input(src, dst, cp) })
		}
	}
	w.a = NewEndpoint(w.sim, nil, nil)
	w.b = NewEndpoint(w.sim, nil, nil)
	w.a.output = deliver(w.b)
	w.b.output = deliver(w.a)
	return w
}

func TestWireRoundTrip(t *testing.T) {
	f := func(sp, dp uint16, seq, ack uint32, payload []byte, syn bool) bool {
		s := Segment{SrcPort: sp, DstPort: dp, Seq: seq, Ack: ack, Flags: FlagACK, TSVal: 1, TSEcr: 2, Payload: payload}
		if syn {
			s.Flags |= FlagSYN
			s.MSSOption = MSS
		}
		out, err := Unmarshal(ipA, ipB, s.Marshal(ipA, ipB))
		if err != nil {
			return false
		}
		ok := out.SrcPort == sp && out.DstPort == dp && out.Seq == seq && out.Ack == ack &&
			out.TSVal == 1 && out.TSEcr == 2 && bytes.Equal(out.Payload, payload)
		if syn {
			ok = ok && out.MSSOption == MSS
		}
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWireChecksumBindsAddresses(t *testing.T) {
	s := Segment{SrcPort: 179, DstPort: 49153, Flags: FlagACK}
	b := s.Marshal(ipA, ipB)
	if _, err := Unmarshal(ipA, netaddr.MakeIPv4(9, 9, 9, 9), b); err != ErrBadChecksum {
		t.Errorf("err = %v, want ErrBadChecksum", err)
	}
}

func TestBGPKeepAliveWireSize(t *testing.T) {
	// A 19-byte BGP KEEPALIVE in a data segment: 32 (TCP+TS) + 19 = 51;
	// with IP (20) and Ethernet (14) that is the 85-byte frame of Fig. 9.
	s := Segment{Flags: FlagACK | FlagPSH, Payload: make([]byte, 19)}
	if got := len(s.Marshal(ipA, ipB)); got != 51 {
		t.Errorf("segment = %d bytes, want 51", got)
	}
	// A pure ACK is 32 bytes => 66 at layer 2.
	ack := Segment{Flags: FlagACK}
	if got := len(ack.Marshal(ipA, ipB)); got != 32 {
		t.Errorf("pure ACK = %d bytes, want 32", got)
	}
}

func TestSeqArithmetic(t *testing.T) {
	f := func(a uint32, delta uint16) bool {
		b := a + uint32(delta)
		if delta == 0 {
			return seqLEQ(a, b) && seqLEQ(b, a) && !seqLT(a, b)
		}
		return seqLT(a, b) && seqLEQ(a, b) && !seqLT(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Wraparound explicitly.
	if !seqLT(0xffffff00, 0x10) {
		t.Error("seqLT should handle wraparound")
	}
}

func TestHandshakeAndData(t *testing.T) {
	w := newWirePair(t)
	var got []byte
	var serverConn *Conn
	w.b.Listen(179, func(c *Conn) {
		serverConn = c
		c.OnData(func(d []byte) { got = append(got, d...) })
	})
	c := w.a.Dial(ipA, ipB, 179)
	var established bool
	c.OnState(func(s State) {
		if s == StateEstablished {
			established = true
		}
	})
	w.sim.RunFor(10 * time.Millisecond)
	if !established {
		t.Fatal("client never established")
	}
	if serverConn == nil || serverConn.State() != StateEstablished {
		t.Fatal("server never established")
	}
	c.Send([]byte("OPEN"))
	c.Send([]byte("KEEPALIVE"))
	w.sim.RunFor(10 * time.Millisecond)
	if string(got) != "OPENKEEPALIVE" {
		t.Errorf("server got %q, want OPENKEEPALIVE", got)
	}
}

func TestDataBeforeEstablishedIsQueued(t *testing.T) {
	w := newWirePair(t)
	var got []byte
	w.b.Listen(179, func(c *Conn) {
		c.OnData(func(d []byte) { got = append(got, d...) })
	})
	c := w.a.Dial(ipA, ipB, 179)
	c.Send([]byte("early")) // before handshake completes
	w.sim.RunFor(20 * time.Millisecond)
	if string(got) != "early" {
		t.Errorf("got %q, want early", got)
	}
}

func TestSegmentationAboveMSS(t *testing.T) {
	w := newWirePair(t)
	var got []byte
	w.b.Listen(179, func(c *Conn) {
		c.OnData(func(d []byte) { got = append(got, d...) })
	})
	c := w.a.Dial(ipA, ipB, 179)
	big := make([]byte, 3*MSS+100)
	for i := range big {
		big[i] = byte(i)
	}
	c.Send(big)
	w.sim.RunFor(50 * time.Millisecond)
	if !bytes.Equal(got, big) {
		t.Fatalf("reassembled %d bytes, want %d (content match: %v)", len(got), len(big), bytes.Equal(got, big))
	}
}

func TestRetransmissionRecoversLoss(t *testing.T) {
	w := newWirePair(t)
	var got []byte
	w.b.Listen(179, func(c *Conn) {
		c.OnData(func(d []byte) { got = append(got, d...) })
	})
	c := w.a.Dial(ipA, ipB, 179)
	w.sim.RunFor(10 * time.Millisecond)
	// Drop the next two data segments from A.
	drops := 2
	w.drop = func(from netaddr.IPv4, seg []byte) bool {
		s, err := Unmarshal(ipA, ipB, seg)
		if err != nil || from != ipA || len(s.Payload) == 0 {
			return false
		}
		if drops > 0 {
			drops--
			return true
		}
		return false
	}
	c.Send([]byte("lost-then-recovered"))
	w.sim.RunFor(5 * time.Second)
	if string(got) != "lost-then-recovered" {
		t.Errorf("got %q after loss, want full data", got)
	}
	if w.a.Stats.Retransmits == 0 {
		t.Error("expected at least one retransmission")
	}
}

func TestSynRetransmission(t *testing.T) {
	w := newWirePair(t)
	accepted := false
	w.b.Listen(179, func(c *Conn) { accepted = true })
	drops := 1
	w.drop = func(from netaddr.IPv4, seg []byte) bool {
		if from == ipA && drops > 0 {
			drops--
			return true
		}
		return false
	}
	c := w.a.Dial(ipA, ipB, 179)
	w.sim.RunFor(2 * time.Second)
	if c.State() != StateEstablished || !accepted {
		t.Errorf("state=%v accepted=%v after SYN loss; handshake should recover", c.State(), accepted)
	}
}

func TestConnectionFailsAfterMaxRetries(t *testing.T) {
	w := newWirePair(t)
	w.b.Listen(179, func(c *Conn) {})
	c := w.a.Dial(ipA, ipB, 179)
	w.sim.RunFor(10 * time.Millisecond)
	if c.State() != StateEstablished {
		t.Fatal("setup failed")
	}
	w.cut = true
	var closed bool
	c.OnState(func(s State) {
		if s == StateClosed {
			closed = true
		}
	})
	c.Send([]byte("doomed"))
	w.sim.RunFor(5 * time.Minute)
	if !closed {
		t.Error("connection did not fail after retransmission exhaustion")
	}
}

func TestCloseSendsRSTAndPeerTearsDown(t *testing.T) {
	w := newWirePair(t)
	var serverConn *Conn
	w.b.Listen(179, func(c *Conn) { serverConn = c })
	c := w.a.Dial(ipA, ipB, 179)
	w.sim.RunFor(10 * time.Millisecond)
	var serverClosed bool
	serverConn.OnState(func(s State) {
		if s == StateClosed {
			serverClosed = true
		}
	})
	c.Close()
	w.sim.RunFor(10 * time.Millisecond)
	if c.State() != StateClosed {
		t.Error("client not closed")
	}
	if !serverClosed {
		t.Error("server did not tear down on RST")
	}
}

func TestNoListenerGetsRST(t *testing.T) {
	w := newWirePair(t)
	c := w.a.Dial(ipA, ipB, 4444) // nothing listening
	var closed bool
	c.OnState(func(s State) {
		if s == StateClosed {
			closed = true
		}
	})
	w.sim.RunFor(time.Second)
	if !closed {
		t.Error("dial to closed port did not get reset")
	}
}

func TestDuplicateDataNotDeliveredTwice(t *testing.T) {
	w := newWirePair(t)
	var got []byte
	w.b.Listen(179, func(c *Conn) {
		c.OnData(func(d []byte) { got = append(got, d...) })
	})
	c := w.a.Dial(ipA, ipB, 179)
	w.sim.RunFor(10 * time.Millisecond)
	// Drop the ACK for the data once so the sender retransmits a segment
	// the receiver already has.
	dropped := false
	w.drop = func(from netaddr.IPv4, seg []byte) bool {
		s, err := Unmarshal(ipB, ipA, seg)
		if err != nil || from != ipB || s.Flags&FlagACK == 0 || dropped {
			return false
		}
		dropped = true
		return true
	}
	c.Send([]byte("once"))
	w.sim.RunFor(5 * time.Second)
	if string(got) != "once" {
		t.Errorf("got %q, want exactly one delivery", got)
	}
}
