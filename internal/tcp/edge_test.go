package tcp

import (
	"testing"
	"time"

	"repro/internal/netaddr"
)

func TestISSUnpredictablePerConnection(t *testing.T) {
	w := newWirePair(t)
	w.b.Listen(179, func(c *Conn) {})
	c1 := w.a.Dial(ipA, ipB, 179)
	c2 := w.a.Dial(ipA, ipB, 179)
	if c1.iss == c2.iss {
		t.Error("two connections share an initial sequence number")
	}
}

func TestSendAfterCloseIgnored(t *testing.T) {
	w := newWirePair(t)
	var got []byte
	w.b.Listen(179, func(c *Conn) {
		c.OnData(func(d []byte) { got = append(got, d...) })
	})
	c := w.a.Dial(ipA, ipB, 179)
	w.sim.RunFor(10 * time.Millisecond)
	c.Close()
	c.Send([]byte("too late"))
	w.sim.RunFor(time.Second)
	if len(got) != 0 {
		t.Errorf("data delivered after close: %q", got)
	}
}

func TestRelistenAfterReset(t *testing.T) {
	// A listener must accept a *new* connection after the previous one
	// was reset.
	w := newWirePair(t)
	accepts := 0
	w.b.Listen(179, func(c *Conn) { accepts++ })
	c1 := w.a.Dial(ipA, ipB, 179)
	w.sim.RunFor(10 * time.Millisecond)
	c1.Close()
	w.sim.RunFor(10 * time.Millisecond)
	c2 := w.a.Dial(ipA, ipB, 179)
	w.sim.RunFor(10 * time.Millisecond)
	if accepts != 2 {
		t.Errorf("accepts = %d, want 2", accepts)
	}
	if c2.State() != StateEstablished {
		t.Errorf("second connection state = %v", c2.State())
	}
}

func TestInterleavedBidirectionalStreams(t *testing.T) {
	w := newWirePair(t)
	var serverGot, clientGot []byte
	var serverConn *Conn
	w.b.Listen(179, func(c *Conn) {
		serverConn = c
		c.OnData(func(d []byte) {
			serverGot = append(serverGot, d...)
			c.Send([]byte("ack:" + string(d)))
		})
	})
	c := w.a.Dial(ipA, ipB, 179)
	c.OnData(func(d []byte) { clientGot = append(clientGot, d...) })
	w.sim.RunFor(10 * time.Millisecond)
	for i := 0; i < 5; i++ {
		c.Send([]byte{byte('a' + i)})
		w.sim.RunFor(5 * time.Millisecond)
	}
	if string(serverGot) != "abcde" {
		t.Errorf("server got %q", serverGot)
	}
	if string(clientGot) != "ack:aack:back:cack:dack:e" {
		t.Errorf("client got %q", clientGot)
	}
	_ = serverConn
}

func TestTimestampOptionEchoes(t *testing.T) {
	// Every non-SYN segment carries a timestamp: verify the wire has it
	// and the value tracks virtual time (the 85-byte keepalive depends on
	// this option's 12 bytes).
	w := newWirePair(t)
	var lastTS uint32
	seen := 0
	w.drop = func(from netaddr.IPv4, seg []byte) bool {
		s, err := Unmarshal(ipA, ipB, seg)
		if err == nil && from == ipA && s.Flags&FlagSYN == 0 {
			lastTS = s.TSVal
			seen++
		}
		return false
	}
	w.b.Listen(179, func(c *Conn) {})
	c := w.a.Dial(ipA, ipB, 179)
	w.sim.RunFor(10 * time.Millisecond)
	c.Send([]byte("x"))
	w.sim.RunFor(5 * time.Second)
	c.Send([]byte("y"))
	w.sim.RunFor(10 * time.Millisecond)
	if seen < 2 {
		t.Fatalf("observed %d data segments", seen)
	}
	if lastTS < 5000 {
		t.Errorf("timestamp %d does not track virtual milliseconds", lastTS)
	}
}
