package tcp

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/netaddr"
	"repro/internal/simnet"
)

// State is a TCP connection state (a condensed RFC 793 machine).
type State int

// Connection states.
const (
	StateClosed State = iota
	StateSynSent
	StateSynReceived
	StateEstablished
)

func (s State) String() string {
	switch s {
	case StateClosed:
		return "CLOSED"
	case StateSynSent:
		return "SYN-SENT"
	case StateSynReceived:
		return "SYN-RECEIVED"
	case StateEstablished:
		return "ESTABLISHED"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Retransmission parameters. The RTO is fixed rather than RTT-estimated:
// simulated DCN RTTs are sub-millisecond and constant, so an adaptive
// estimator would converge to a floor anyway.
const (
	initialRTO = 200 * time.Millisecond
	maxRetries = 8
	maxRTO     = 10 * time.Second
)

// Endpoint is the per-node TCP instance. The owning IP stack feeds it
// received segments via Input and provides the outbound path via the output
// function handed to NewEndpoint.
type Endpoint struct {
	sim    *simnet.Sim
	rng    *rand.Rand
	output func(src, dst netaddr.IPv4, segment []byte)

	listeners map[uint16]func(*Conn)
	conns     map[connKey]*Conn
	portSeq   uint16

	// Stats counts segments for the overhead experiments.
	Stats struct {
		SegmentsSent uint64
		SegmentsRecv uint64
		Retransmits  uint64
		PureAcksSent uint64
	}
}

type connKey struct {
	localIP    netaddr.IPv4
	localPort  uint16
	remoteIP   netaddr.IPv4
	remotePort uint16
}

// NewEndpoint creates a TCP endpoint that transmits segments through output.
// rng supplies initial sequence numbers; the owning stack passes its node's
// stream so draws are independent of global event interleaving (required
// for sequential/partitioned engine identity). A nil rng falls back to the
// sim's control stream.
func NewEndpoint(sim *simnet.Sim, rng *rand.Rand, output func(src, dst netaddr.IPv4, segment []byte)) *Endpoint {
	if rng == nil {
		rng = sim.Rand()
	}
	return &Endpoint{
		sim:       sim,
		rng:       rng,
		output:    output,
		listeners: make(map[uint16]func(*Conn)),
		conns:     make(map[connKey]*Conn),
		portSeq:   49152, // ephemeral range
	}
}

// Listen registers an accept callback for a local port. The callback runs
// when a new connection reaches ESTABLISHED.
func (e *Endpoint) Listen(port uint16, accept func(*Conn)) {
	e.listeners[port] = accept
}

// Dial opens a connection from local to remote:remotePort. The returned
// conn reports readiness through OnState.
func (e *Endpoint) Dial(local, remote netaddr.IPv4, remotePort uint16) *Conn {
	e.portSeq++
	c := e.newConn(connKey{local, e.portSeq, remote, remotePort})
	c.state = StateSynSent
	c.sndNxt = c.iss + 1
	c.sendSegment(FlagSYN, c.iss, 0, nil)
	c.armRetransmit()
	return c
}

func (e *Endpoint) newConn(k connKey) *Conn {
	c := &Conn{
		ep:  e,
		key: k,
		iss: uint32(e.rng.Int63()),
	}
	c.sndUna = c.iss
	e.conns[k] = c
	return c
}

// Input feeds a received TCP segment (IP payload) into the endpoint.
func (e *Endpoint) Input(src, dst netaddr.IPv4, payload []byte) {
	seg, err := Unmarshal(src, dst, payload)
	if err != nil {
		return // corrupt segments are silently dropped, as in a kernel
	}
	e.Stats.SegmentsRecv++
	k := connKey{dst, seg.DstPort, src, seg.SrcPort}
	c := e.conns[k]
	if c == nil {
		if seg.Flags&FlagSYN != 0 && seg.Flags&FlagACK == 0 {
			if accept, ok := e.listeners[seg.DstPort]; ok {
				c = e.newConn(k)
				c.acceptFn = accept
				c.state = StateSynReceived
				c.rcvNxt = seg.Seq + 1
				c.sndNxt = c.iss + 1
				c.sendSegment(FlagSYN|FlagACK, c.iss, c.rcvNxt, nil)
				c.armRetransmit()
				return
			}
		}
		// No listener and no connection: RST anything but an RST.
		if seg.Flags&FlagRST == 0 {
			e.sendRST(dst, src, seg)
		}
		return
	}
	c.input(seg)
}

func (e *Endpoint) sendRST(src, dst netaddr.IPv4, in Segment) {
	rst := Segment{
		SrcPort: in.DstPort, DstPort: in.SrcPort,
		Seq: in.Ack, Ack: in.Seq + uint32(len(in.Payload)),
		Flags: FlagRST | FlagACK,
	}
	e.Stats.SegmentsSent++
	e.output(src, dst, rst.Marshal(src, dst))
}

// Conn is one TCP connection.
type Conn struct {
	ep       *Endpoint
	key      connKey
	state    State
	acceptFn func(*Conn)

	iss    uint32
	sndUna uint32 // oldest unacknowledged byte
	sndNxt uint32 // next sequence number to send
	rcvNxt uint32 // next expected receive sequence

	unacked []byte // bytes in [sndUna, sndNxt) awaiting acknowledgement
	pending []byte // bytes not yet transmitted (window beyond go-back-N burst)

	retransTimer *simnet.Timer
	retries      int

	onData  func([]byte)
	onState func(State)
}

// LocalAddr returns the connection's local IP.
func (c *Conn) LocalAddr() netaddr.IPv4 { return c.key.localIP }

// RemoteAddr returns the connection's remote IP.
func (c *Conn) RemoteAddr() netaddr.IPv4 { return c.key.remoteIP }

// State returns the connection state.
func (c *Conn) State() State { return c.state }

// OnData registers the in-order stream delivery callback.
func (c *Conn) OnData(fn func([]byte)) { c.onData = fn }

// OnState registers a callback invoked on every state transition
// (ESTABLISHED on success, CLOSED on reset, failure, or close).
func (c *Conn) OnState(fn func(State)) { c.onState = fn }

func (c *Conn) setState(s State) {
	if c.state == s {
		return
	}
	c.state = s
	if s == StateEstablished && c.acceptFn != nil {
		fn := c.acceptFn
		c.acceptFn = nil
		fn(c)
	}
	if c.onState != nil {
		c.onState(s)
	}
}

// Send queues application data for reliable delivery. Data sent before the
// connection is established is transmitted once the handshake completes.
func (c *Conn) Send(data []byte) {
	if c.state == StateClosed {
		return
	}
	c.pending = append(c.pending, data...)
	if c.state == StateEstablished {
		c.pushPending()
	}
}

func (c *Conn) pushPending() {
	for len(c.pending) > 0 {
		n := len(c.pending)
		if n > MSS {
			n = MSS
		}
		chunk := c.pending[:n]
		c.sendSegment(FlagACK|FlagPSH, c.sndNxt, c.rcvNxt, chunk)
		c.unacked = append(c.unacked, chunk...)
		c.sndNxt += uint32(n)
		c.pending = c.pending[n:]
	}
	c.armRetransmit()
}

// Close aborts the connection with a RST. BGP sessions in the experiments
// end either by failure or by teardown, so the simplified machine does not
// model the FIN exchange; NOTIFICATION-then-RST is how FRR behaves when a
// session is administratively cleared anyway.
func (c *Conn) Close() {
	if c.state == StateClosed {
		return
	}
	seg := Segment{SrcPort: c.key.localPort, DstPort: c.key.remotePort,
		Seq: c.sndNxt, Ack: c.rcvNxt, Flags: FlagRST | FlagACK}
	c.ep.Stats.SegmentsSent++
	c.ep.output(c.key.localIP, c.key.remoteIP, seg.Marshal(c.key.localIP, c.key.remoteIP))
	c.teardown()
}

func (c *Conn) teardown() {
	if c.retransTimer != nil {
		c.retransTimer.Stop()
	}
	delete(c.ep.conns, c.key)
	c.setState(StateClosed)
}

func (c *Conn) sendSegment(flags byte, seq, ack uint32, payload []byte) {
	seg := Segment{
		SrcPort: c.key.localPort, DstPort: c.key.remotePort,
		Seq: seq, Ack: ack, Flags: flags,
		TSVal:   uint32(c.ep.sim.Now() / time.Millisecond),
		Payload: payload,
	}
	c.ep.Stats.SegmentsSent++
	if flags&FlagACK != 0 && len(payload) == 0 && flags&(FlagSYN|FlagRST) == 0 {
		c.ep.Stats.PureAcksSent++
	}
	c.ep.output(c.key.localIP, c.key.remoteIP, seg.Marshal(c.key.localIP, c.key.remoteIP))
}

func (c *Conn) armRetransmit() {
	if len(c.unacked) == 0 && c.state != StateSynSent && c.state != StateSynReceived {
		if c.retransTimer != nil {
			c.retransTimer.Stop()
		}
		return
	}
	rto := initialRTO << uint(c.retries)
	if rto > maxRTO {
		rto = maxRTO
	}
	if c.retransTimer != nil {
		c.retransTimer.Reset(rto)
		return
	}
	c.retransTimer = c.ep.sim.After(rto, c.retransmit)
}

func (c *Conn) retransmit() {
	if c.state == StateClosed {
		return
	}
	c.retries++
	if c.retries > maxRetries {
		c.teardown()
		return
	}
	c.ep.Stats.Retransmits++
	switch c.state {
	case StateSynSent:
		c.sendSegment(FlagSYN, c.iss, 0, nil)
	case StateSynReceived:
		c.sendSegment(FlagSYN|FlagACK, c.iss, c.rcvNxt, nil)
	default:
		// Go-back-N: resend everything from sndUna in MSS chunks.
		for off := 0; off < len(c.unacked); off += MSS {
			end := off + MSS
			if end > len(c.unacked) {
				end = len(c.unacked)
			}
			c.sendSegment(FlagACK|FlagPSH, c.sndUna+uint32(off), c.rcvNxt, c.unacked[off:end])
		}
	}
	c.armRetransmit()
}

func (c *Conn) input(seg Segment) {
	if seg.Flags&FlagRST != 0 {
		// Accept any RST with a plausible sequence; this is a control
		// plane simulation, not an attack surface.
		c.teardown()
		return
	}
	switch c.state {
	case StateSynSent:
		if seg.Flags&FlagSYN != 0 && seg.Flags&FlagACK != 0 && seg.Ack == c.iss+1 {
			c.rcvNxt = seg.Seq + 1
			c.sndUna = seg.Ack
			c.retries = 0
			c.sendSegment(FlagACK, c.sndNxt, c.rcvNxt, nil)
			c.setState(StateEstablished)
			c.pushPending()
			c.armRetransmit()
		}
	case StateSynReceived:
		if seg.Flags&FlagACK != 0 && seg.Ack == c.iss+1 {
			c.sndUna = seg.Ack
			c.retries = 0
			c.setState(StateEstablished)
			c.pushPending()
			c.armRetransmit()
			// The handshake ACK may already carry data.
			if len(seg.Payload) > 0 {
				c.acceptData(seg)
			}
		}
	case StateEstablished:
		c.processAck(seg)
		if len(seg.Payload) > 0 {
			c.acceptData(seg)
		}
	}
}

func (c *Conn) processAck(seg Segment) {
	if seg.Flags&FlagACK == 0 {
		return
	}
	if seqLT(c.sndUna, seg.Ack) && seqLEQ(seg.Ack, c.sndNxt) {
		advanced := seg.Ack - c.sndUna
		c.unacked = c.unacked[advanced:]
		c.sndUna = seg.Ack
		c.retries = 0
		c.armRetransmit()
	}
}

func (c *Conn) acceptData(seg Segment) {
	if seg.Seq != c.rcvNxt {
		// Out-of-order (a retransmission gap): discard and re-ACK what we
		// have. The go-back-N sender will resend from the gap.
		c.sendSegment(FlagACK, c.sndNxt, c.rcvNxt, nil)
		return
	}
	c.rcvNxt += uint32(len(seg.Payload))
	c.sendSegment(FlagACK, c.sndNxt, c.rcvNxt, nil)
	if c.onData != nil {
		data := append([]byte(nil), seg.Payload...)
		c.onData(data)
	}
}
