//go:build invariants

package simnet

import (
	"testing"
	"time"
)

// The invariants build poisons released event records (kind = evFreed) and
// asserts the poison on both sides of the freelist. These tests corrupt the
// lifecycle on purpose and expect each assertion to fire.

func TestFreelistDoubleReleasePanics(t *testing.T) {
	s := New(1)
	ev := s.alloc()
	ev.kind = evFunc
	s.release(ev)
	mustPanic(t, func() { s.release(ev) })
}

func TestFreelistDetectsWriteAfterRelease(t *testing.T) {
	s := New(1)
	ev := s.alloc()
	ev.kind = evFunc
	s.release(ev)
	ev.kind = evFunc // simulated write through a stale pointer
	mustPanic(t, func() { s.alloc() })
}

func TestFreelistReleaseWhileQueuedPanics(t *testing.T) {
	s := New(1)
	tm := s.After(time.Millisecond, func() {})
	mustPanic(t, func() { s.release(tm.ev) }) // still in the heap (idx >= 0)
}
