//go:build invariants

package simnet

import (
	"testing"
	"time"
)

func mustPanic(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("corrupted heap passed the invariant check")
		}
	}()
	fn()
}

// TestHeapCheckDetectsCorruption breaks the two properties checkHeap
// guards — ordering and back-pointers — and expects a panic for each.
func TestHeapCheckDetectsCorruption(t *testing.T) {
	build := func() *Sim {
		s := New(1)
		for i := 0; i < 8; i++ {
			s.After(time.Duration(i)*time.Millisecond, func() {})
		}
		return s
	}

	s := build()
	s.checkHeap(0) // sanity: a fresh heap passes

	s.queue[0].at = time.Hour // root now later than its children
	mustPanic(t, func() { s.checkHeap(0) })

	s = build()
	s.queue[3].ev.idx = 0 // stale back-pointer
	mustPanic(t, func() { s.checkHeap(3) })
}
