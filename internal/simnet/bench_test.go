package simnet

import (
	"testing"
	"time"
)

func BenchmarkEventLoop(b *testing.B) {
	// Raw scheduling throughput: the ceiling on everything the
	// experiments can simulate per wall-clock second.
	s := New(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.After(time.Microsecond, func() {})
		s.Step()
	}
}

func BenchmarkFrameDelivery(b *testing.B) {
	s := New(1)
	na, nb := s.AddNode("a"), s.AddNode("b")
	h := &echoHandler{}
	nb.Handler = h
	s.Connect(na.AddPort(), nb.AddPort())
	frame := make([]byte, 85) // a BGP keepalive's worth
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		na.Port(1).Send(frame)
		s.Step()
		h.frames = h.frames[:0]
	}
}

func BenchmarkTimerResetChurn(b *testing.B) {
	// Dead-timer re-arming is the hottest timer pattern in the fabric
	// (every received frame resets a timer).
	s := New(1)
	t := s.After(time.Millisecond, func() {})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Reset(time.Millisecond)
		if i%1024 == 1023 {
			// Drain the cancelled events like a real run would.
			s.RunFor(2 * time.Millisecond)
			t = s.After(time.Millisecond, func() {})
		}
	}
}
