package simnet

import (
	"testing"
	"time"
)

// TestFreelistLIFOReuseAcrossTimerReset pins the freelist discipline: the
// record released when a timer fires is the first one handed back out, and
// recycling bumps its generation so stale handles cannot match it.
func TestFreelistLIFOReuseAcrossTimerReset(t *testing.T) {
	s := New(1)
	var fired []time.Duration
	tm := s.After(time.Millisecond, func() { fired = append(fired, s.Now()) })
	rec := tm.ev
	gen := rec.gen

	s.RunFor(2 * time.Millisecond)
	if len(fired) != 1 {
		t.Fatalf("fired %d times, want 1", len(fired))
	}

	tm.Reset(time.Millisecond) // re-arm at absolute 3ms
	if tm.ev != rec {
		t.Fatal("Reset after fire did not reuse the LIFO head of the freelist")
	}
	if tm.ev.gen == gen {
		t.Fatal("recycled record kept its generation; stale handles could still match")
	}

	s.RunFor(2 * time.Millisecond)
	if len(fired) != 2 || fired[1] != 3*time.Millisecond {
		t.Fatalf("refire = %v, want exactly one more firing at 3ms", fired)
	}
}

// TestCancelledTimerReArmedSameTick stops a pending timer from another event
// at the same virtual instant and re-arms it for that same instant: the
// record cycles through the freelist within one tick, and the timer must
// fire exactly once, at the tick, with the re-armed callback.
func TestCancelledTimerReArmedSameTick(t *testing.T) {
	s := New(1)
	var fired []time.Duration
	var b *Timer
	s.At(time.Millisecond, func() {
		if !b.Stop() {
			t.Error("B should still be pending when A runs")
		}
		b.Reset(0) // same virtual instant: the record was just released
	})
	b = s.At(time.Millisecond, func() { fired = append(fired, s.Now()) })

	s.RunFor(2 * time.Millisecond)
	if len(fired) != 1 || fired[0] != time.Millisecond {
		t.Fatalf("fired = %v, want exactly once at 1ms", fired)
	}
}
