package simnet

import (
	"fmt"
	"time"

	"repro/internal/invariant"
	"repro/internal/simnet/framepool"
)

// The scheduling core is an indexed binary min-heap of recycled event
// records. Three properties keep the hot paths (hello/BFD timer churn, frame
// delivery) allocation-free and the heap small:
//
//   - Every event knows its heap index, so Timer.Stop removes it from the
//     heap immediately and Timer.Reset re-times it in place (sift-up/down)
//     instead of abandoning a tombstone that would sit in the queue until
//     its original deadline.
//   - Fired and cancelled events go on a freelist and are reused; a
//     generation counter on each record invalidates stale Timer handles.
//   - Frame delivery and egress-queue bookkeeping are dedicated event kinds
//     carrying their operands in the record itself, so Port.Send schedules
//     no closures.
//
// The heap itself stores (at, seq) inline next to the event pointer, so the
// sift comparisons stay within the contiguous slice instead of dereferencing
// a pointer per compared element.

type eventKind uint8

const (
	evFunc      eventKind = iota // run fn
	evFrame                      // deliver frame from src to dst over link
	evQueueFree                  // decrement dir.queued (egress serialization)

	// evFreed poisons records sitting on the freelist. Every alloc caller
	// assigns a real kind, so under -tags invariants a record dispatched or
	// released while still poisoned is a freelist-discipline bug (the
	// dynamic complement to the lifetime analyzer, DESIGN.md §14).
	evFreed eventKind = 0xFF
)

// event is a scheduled occurrence's payload. Its timing lives in the heap
// entry; the record only tracks where it sits (idx) and which incarnation it
// is (gen).
type event struct {
	idx int32  // position in Sim.queue, -1 when not scheduled
	gen uint32 // bumped on release; validates Timer handles

	kind eventKind
	fn   func() // evFunc

	// evFrame operands; dir doubles as the evQueueFree operand.
	src, dst *Port
	link     *Link
	frame    []byte
	dir      *dirState

	// fh is the frame's pool generation at transmit time (zero-sized in
	// release builds): Step asserts the buffer was not recycled while the
	// delivery was in flight. Cross-partition deliveries leave it zero —
	// the buffer's generation lives in the sending shard's pool.
	fh framepool.Handle
}

// heapEntry is one slot of the scheduling heap. Events are totally ordered
// by (at, prio, tie, seq) — a key chosen so the space-partitioned engine
// (partition.go) reproduces the sequential engine's event order exactly:
//
//   - prio encodes the owning node and event class: 0 for control events
//     (scheduled from outside any node's context — harness code, chaos
//     closures, the partitioned coordinator), (node+1)<<2|1 for a node's
//     local events (timers, egress bookkeeping), (node+1)<<2|2 for frame
//     deliveries to the node. At one instant, control runs first, then each
//     node's locals before its frame arrivals, nodes in ID order.
//   - tie breaks frame-vs-frame ties by the engine-independent transmit key
//     (source node, source port, per-direction transmit counter), so two
//     frames reaching one node at the same instant from different partitions
//     order identically however they were enqueued.
//   - seq (per-Sim scheduling order) breaks what remains; by construction
//     the remaining collisions are same-node same-class events, whose
//     relative scheduling order is engine-independent.
type heapEntry struct {
	at   time.Duration
	prio uint32
	tie  uint64
	seq  uint64
	ev   *event
}

// Event classes within prio (low two bits).
const (
	classControl = 0 // prio is exactly 0
	classLocal   = 1
	classFrame   = 2
)

// nodePrio builds the prio key for a node-owned event of the given class.
func nodePrio(node int32, class uint32) uint32 {
	return uint32(node+1)<<2 | class
}

func entryLess(a, b *heapEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.prio != b.prio {
		return a.prio < b.prio
	}
	if a.tie != b.tie {
		return a.tie < b.tie
	}
	return a.seq < b.seq
}

// alloc takes an event record off the freelist (or makes one).
func (s *Sim) alloc() *event {
	if n := len(s.free); n > 0 {
		ev := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		if invariant.Enabled {
			invariant.Assert(ev.kind == evFreed, "simnet: freelist record not poisoned (released twice or written after release)")
		}
		return ev
	}
	return &event{idx: -1} //simlint:alloc freelist warm-up; steady state recycles records
}

// release recycles a record that is no longer scheduled. The generation bump
// invalidates any Timer still holding it.
func (s *Sim) release(ev *event) {
	if invariant.Enabled {
		invariant.Assert(ev.kind != evFreed, "simnet: double release of event record")
		invariant.Assert(ev.idx < 0, "simnet: releasing an event still in the heap")
	}
	ev.gen++
	ev.kind = evFreed
	ev.fn = nil
	ev.src, ev.dst, ev.link, ev.frame, ev.dir = nil, nil, nil, nil, nil
	ev.fh = framepool.Handle{}
	s.free = append(s.free, ev) //simlint:alloc freelist growth is amortized; capacity stabilizes at peak in-flight events
}

// ctxPrio derives the prio key for an event scheduled in the current
// execution context: a node's local class while dispatching that node's
// events (or running its Handler.Start), the control class otherwise.
func (s *Sim) ctxPrio() uint32 {
	if s.curOwner < 0 {
		return classControl
	}
	return nodePrio(s.curOwner, classLocal)
}

// schedule allocates and enqueues an event at absolute time at, keyed to the
// current execution context. Scheduling in the past is a programming error
// and panics.
func (s *Sim) schedule(at time.Duration) *event {
	return s.scheduleKeyed(at, s.ctxPrio(), 0)
}

// scheduleKeyed allocates and enqueues an event with an explicit ordering
// key (frame deliveries carry the dst node's frame class and a transmit tie
// key instead of the sender's context).
func (s *Sim) scheduleKeyed(at time.Duration, prio uint32, tie uint64) *event {
	if at < s.now {
		panic(fmt.Sprintf("simnet: scheduling event at %v before now %v", at, s.now)) //simlint:alloc unreachable except on programmer error; the panic path may allocate
	}
	ev := s.alloc()
	s.seq++
	s.heapPush(heapEntry{at: at, prio: prio, tie: tie, seq: s.seq, ev: ev})
	return ev
}

// --- indexed min-heap -------------------------------------------------------

func (s *Sim) heapPush(e heapEntry) {
	e.ev.idx = int32(len(s.queue))
	s.queue = append(s.queue, e) //simlint:alloc heap growth is amortized; capacity stabilizes at peak queue depth
	s.siftUp(int(e.ev.idx))
	if invariant.Enabled {
		s.checkHeap(int(e.ev.idx))
	}
}

func (s *Sim) siftUp(i int) {
	q := s.queue
	e := q[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !entryLess(&e, &q[parent]) {
			break
		}
		q[i] = q[parent]
		q[i].ev.idx = int32(i)
		i = parent
	}
	q[i] = e
	e.ev.idx = int32(i)
}

func (s *Sim) siftDown(i int) {
	q := s.queue
	n := len(q)
	e := q[i]
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		c := l
		if r := l + 1; r < n && entryLess(&q[r], &q[l]) {
			c = r
		}
		if !entryLess(&q[c], &e) {
			break
		}
		q[i] = q[c]
		q[i].ev.idx = int32(i)
		i = c
	}
	q[i] = e
	e.ev.idx = int32(i)
}

// heapFix restores heap order after the entry at index i was re-timed.
func (s *Sim) heapFix(i int) {
	ev := s.queue[i].ev
	s.siftDown(i)
	if int(ev.idx) == i {
		s.siftUp(i)
	}
	if invariant.Enabled {
		s.checkHeap(int(ev.idx))
	}
}

// heapPop removes and returns the earliest entry.
func (s *Sim) heapPop() heapEntry {
	q := s.queue
	e := q[0]
	last := len(q) - 1
	q[0] = q[last]
	q[last] = heapEntry{}
	s.queue = q[:last]
	if last > 0 {
		s.siftDown(0)
	}
	e.ev.idx = -1
	if invariant.Enabled {
		s.checkHeap(0)
	}
	return e
}

// heapRemove removes the entry at index i.
func (s *Sim) heapRemove(i int) {
	q := s.queue
	last := len(q) - 1
	ev := q[i].ev
	if i != last {
		moved := q[last].ev
		q[i] = q[last]
		moved.idx = int32(i)
		q[last] = heapEntry{}
		s.queue = q[:last]
		s.siftDown(i)
		if int(moved.idx) == i {
			s.siftUp(i)
		}
	} else {
		q[last] = heapEntry{}
		s.queue = q[:last]
	}
	ev.idx = -1
	if invariant.Enabled {
		s.checkHeap(i)
	}
}

// --- public scheduling API --------------------------------------------------

// At schedules fn at absolute virtual time t and returns a cancellable,
// re-armable handle.
func (s *Sim) At(t time.Duration, fn func()) *Timer {
	ev := s.schedule(t)
	ev.kind = evFunc
	ev.fn = fn
	return &Timer{sim: s, ev: ev, gen: ev.gen, fn: fn}
}

// After schedules fn d from now and returns a cancellable timer.
func (s *Sim) After(d time.Duration, fn func()) *Timer {
	return s.At(s.now+d, fn)
}

// Schedule runs fn d from now. It is the fire-and-forget variant of After
// for callers that never stop or re-arm the event: no handle is allocated.
func (s *Sim) Schedule(d time.Duration, fn func()) {
	ev := s.schedule(s.now + d)
	ev.kind = evFunc
	ev.fn = fn
}

// Timer is a handle to a scheduled event. The callback is retained by the
// handle, so Reset re-arms correctly whether the event is pending, already
// fired, or was stopped.
type Timer struct {
	sim *Sim
	ev  *event
	gen uint32
	fn  func()
}

// pending reports whether the timer's event is still scheduled (the record
// may have been recycled for an unrelated event; the generation check
// detects that).
func (t *Timer) pending() bool {
	return t.ev != nil && t.ev.gen == t.gen && t.ev.idx >= 0
}

// Stop cancels the timer if it has not fired, removing its event from the
// queue at once. It reports whether the call prevented the timer from
// firing.
//
//simlint:hotpath
func (t *Timer) Stop() bool {
	if t == nil || !t.pending() {
		return false
	}
	ev := t.ev
	t.ev = nil
	t.sim.heapRemove(int(ev.idx))
	t.sim.release(ev)
	return true
}

// Reset re-arms the timer to fire d from now with the original callback. A
// pending event is re-timed in place (no allocation, no heap garbage); a
// fired or stopped timer is scheduled afresh.
//
//simlint:hotpath
func (t *Timer) Reset(d time.Duration) {
	s := t.sim
	at := s.now + d
	if at < s.now {
		panic(fmt.Sprintf("simnet: resetting timer to %v before now %v", at, s.now)) //simlint:alloc unreachable except on programmer error; the panic path may allocate
	}
	if t.pending() {
		i := int(t.ev.idx)
		s.seq++
		s.queue[i].at = at
		s.queue[i].prio = s.ctxPrio()
		s.queue[i].tie = 0
		s.queue[i].seq = s.seq
		s.heapFix(i)
		return
	}
	ev := s.schedule(at)
	ev.kind = evFunc
	ev.fn = t.fn
	t.ev = ev
	t.gen = ev.gen
}

// --- event loop -------------------------------------------------------------

// Step processes the next event. It reports false when the queue is empty.
//
//simlint:hotpath
func (s *Sim) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	e := s.heapPop()
	ev := e.ev
	s.now = e.at
	s.events++
	// Attribute the dispatch to the event's owning node so everything it
	// schedules inherits that node's ordering key.
	prev := s.curOwner
	if e.prio == classControl {
		s.curOwner = -1
	} else {
		s.curOwner = int32(e.prio>>2) - 1
	}
	switch ev.kind {
	case evFunc:
		fn := ev.fn
		s.release(ev)
		fn()
	case evFrame:
		src, dst, link, frame := ev.src, ev.dst, ev.link, ev.frame
		if invariant.Enabled {
			s.frames.Check(ev.fh)
		}
		s.release(ev)
		s.deliver(src, dst, link, frame)
	case evQueueFree:
		dir := ev.dir
		s.release(ev)
		dir.queued--
	default:
		if invariant.Enabled {
			invariant.Assert(false, "simnet: dispatching event with unknown kind (freed record left in heap?)")
		}
	}
	s.curOwner = prev
	return true
}

// RunUntil processes every event scheduled at or before t, then advances the
// clock to exactly t.
func (s *Sim) RunUntil(t time.Duration) {
	for len(s.queue) > 0 && s.queue[0].at <= t {
		s.Step()
	}
	if t > s.now {
		s.now = t
	}
}

// runBefore processes every event scheduled strictly before t, then
// advances the clock to exactly t. It is the partitioned engine's window
// step: events at the window boundary belong to the next window (they may
// still be racing cross-partition arrivals carrying the same timestamp).
func (s *Sim) runBefore(t time.Duration) {
	for len(s.queue) > 0 && s.queue[0].at < t {
		s.Step()
	}
	if t > s.now {
		s.now = t
	}
}

// RunFor advances the simulation by d.
func (s *Sim) RunFor(d time.Duration) { s.RunUntil(s.now + d) }

// RunUntilIdle drains the event queue, but never past the maxTime horizon
// (protocol keep-alives re-arm forever, so a pure drain would not finish).
func (s *Sim) RunUntilIdle(maxTime time.Duration) {
	s.RunUntil(maxTime)
}
