// Package simnet is a deterministic discrete-event network simulator.
//
// It stands in for the FABRIC testbed used in the paper: nodes are virtual
// machines, ports are their network interfaces, and links are the
// point-to-point fiber connections between them. Time is virtual — the event
// loop advances a microsecond-resolution clock from event to event — so a
// three-second BGP hold timer costs nothing to simulate and every run with
// the same seed is bit-for-bit reproducible.
//
// The failure model mirrors the paper's method of failing an interface with
// a script executed on the target node (`ip link set X down`): the node that
// owns the failed interface observes carrier-down after a small local
// detection delay, while the peer's interface stays up and the peer learns
// of the failure only through protocol timers. This asymmetry is what makes
// the paper's TC1/TC3 failure points behave differently from TC2/TC4.
package simnet

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/netaddr"
)

// Handler is the protocol stack attached to a node. All methods are invoked
// from the simulator's event loop; implementations never block and schedule
// future work through the node's simulator.
type Handler interface {
	// Start runs when the simulation begins (or when the handler is
	// attached to an already-running simulation).
	Start()
	// HandleFrame delivers a received Ethernet frame. The slice is owned
	// by the receiver.
	HandleFrame(p *Port, frame []byte)
	// PortDown reports local carrier loss on p (admin-down or failure
	// injection on this node). It is NOT called on the remote peer.
	PortDown(p *Port)
	// PortUp reports local carrier restoration on p.
	PortUp(p *Port)
}

// Sim is a single simulation instance. It is not safe for concurrent use;
// all protocol code runs on the event loop goroutine.
type Sim struct {
	now       time.Duration
	queue     []heapEntry // indexed min-heap ordered by (at, seq)
	free      []*event    // recycled event records
	seq       uint64
	rng       *rand.Rand
	nodes     map[string]*Node
	nodeOrder []*Node // insertion order, for deterministic iteration
	links     []*Link
	macSeq    uint32

	// LocalDetectDelay is the time between an interface failure and the
	// owning node's PortDown callback (carrier-loss interrupt latency).
	LocalDetectDelay time.Duration

	// DefaultLatency is the one-way propagation delay applied to links
	// created without an explicit latency.
	DefaultLatency time.Duration

	// Trace, when non-nil, receives a line for every noteworthy event
	// (frame drops, failures). Used by examples and debugging.
	Trace func(at time.Duration, format string, args ...any)

	events uint64 // total events processed, for stats
}

// New creates a simulator seeded for deterministic runs.
func New(seed int64) *Sim {
	return &Sim{
		rng:              rand.New(rand.NewSource(seed)),
		nodes:            make(map[string]*Node),
		LocalDetectDelay: 1 * time.Millisecond,
		DefaultLatency:   100 * time.Microsecond,
	}
}

// Now returns the current virtual time (time since simulation start).
func (s *Sim) Now() time.Duration { return s.now }

// Rand exposes the simulation's deterministic random source.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// Events returns the number of events processed so far.
func (s *Sim) Events() uint64 { return s.events }

func (s *Sim) tracef(format string, args ...any) {
	if s.Trace != nil {
		s.Trace(s.now, format, args...)
	}
}

// Node is one device: a router, switch, or server.
type Node struct {
	Name    string
	Sim     *Sim
	Ports   []*Port // index 0 unused; ports are 1-based like the paper's VID port numbers
	Handler Handler

	// Meta carries harness-level labels (tier, pod, VID) without the
	// simulator depending on topology types.
	Meta map[string]string
}

// AddNode creates a node. Names must be unique.
func (s *Sim) AddNode(name string) *Node {
	if _, dup := s.nodes[name]; dup {
		panic("simnet: duplicate node name " + name)
	}
	n := &Node{Name: name, Sim: s, Ports: []*Port{nil}, Meta: make(map[string]string)}
	s.nodes[name] = n
	s.nodeOrder = append(s.nodeOrder, n)
	return n
}

// Node returns a node by name, or nil.
func (s *Sim) Node(name string) *Node { return s.nodes[name] }

// Nodes returns every node in insertion order, so iteration (trace output,
// harness sweeps) is reproducible run to run.
func (s *Sim) Nodes() []*Node {
	return append([]*Node(nil), s.nodeOrder...)
}

// AddPort appends a new port to the node and returns it. Port indices start
// at 1 to match the paper's VID construction ("append the port number on
// which the request arrived").
func (n *Node) AddPort() *Port {
	n.Sim.macSeq++
	p := &Port{
		Node:  n,
		Index: len(n.Ports),
		MAC:   netaddr.MAC{0x02, 0x00, byte(n.Sim.macSeq >> 16), byte(n.Sim.macSeq >> 8), byte(n.Sim.macSeq), 0x01},
		up:    true,
	}
	n.Ports = append(n.Ports, p)
	return p
}

// Port returns the i-th (1-based) port. It panics on a bad index because
// topology wiring is static.
func (n *Node) Port(i int) *Port {
	if i < 1 || i >= len(n.Ports) {
		panic(fmt.Sprintf("simnet: node %s has no port %d", n.Name, i))
	}
	return n.Ports[i]
}

// Start invokes Start on every attached handler. Call once after wiring.
func (s *Sim) Start() {
	// Deterministic order: nodes sorted by name.
	sorted := s.Nodes()
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	for _, n := range sorted {
		if n.Handler != nil {
			n.Handler.Start()
		}
	}
}

// PortCounters tracks per-port frame statistics.
type PortCounters struct {
	TxFrames  uint64
	TxBytes   uint64
	RxFrames  uint64
	RxBytes   uint64
	TxDropped uint64 // transmit attempts while the port or link was down
	RxDropped uint64 // frames arriving at a down port
}

// Port is a network interface on a node.
type Port struct {
	Node  *Node
	Index int
	MAC   netaddr.MAC
	Link  *Link
	up    bool

	Counters PortCounters
}

// Name renders the paper-style interface name ("T-1:eth2").
func (p *Port) Name() string { return fmt.Sprintf("%s:eth%d", p.Node.Name, p.Index) }

// Up reports local carrier status.
func (p *Port) Up() bool { return p.up }

// Peer returns the port at the other end of the link, or nil when unwired.
func (p *Port) Peer() *Port {
	if p.Link == nil {
		return nil
	}
	if p.Link.A == p {
		return p.Link.B
	}
	return p.Link.A
}

// Send transmits an Ethernet frame out the port. Frames hitting a down port
// or unwired port are counted and dropped; otherwise delivery is scheduled
// after the link latency and checked against the receiving port's status at
// arrival time (frames in flight when a failure hits are lost).
//
// Send takes ownership of frame: the slice rides in the scheduled delivery
// event, so the caller must neither retain nor modify it afterwards (the
// framealias lint rule).
//
//simlint:hotpath
func (p *Port) Send(frame []byte) {
	sim := p.Node.Sim
	if !p.up || p.Link == nil {
		p.Counters.TxDropped++
		// The Trace-nil guard sits out here so the disabled-tracing fast
		// path neither renders the port name nor boxes the arguments.
		if sim.Trace != nil {
			sim.tracef("%s: tx drop (port down), %d bytes", p.Name(), len(frame)) //simlint:alloc trace-only, guarded by Trace != nil
		}
		return
	}
	p.Counters.TxFrames++
	p.Counters.TxBytes += uint64(len(frame))
	link := p.Link
	for _, tap := range link.taps {
		tap(sim.now, p, frame)
	}
	if link.lossRate > 0 && sim.rng.Float64() < link.lossRate {
		link.Lost++
		if sim.Trace != nil {
			sim.tracef("%s: frame lost in transit (%d bytes)", p.Name(), len(frame)) //simlint:alloc trace-only, guarded by Trace != nil
		}
		return
	}
	// Serialization and queueing: with finite bandwidth the frame waits
	// behind earlier frames, then occupies the wire for its bit time.
	delay := link.Latency
	if link.bandwidth > 0 {
		d := link.dir(p)
		if link.maxQueue > 0 && d.queued >= link.maxQueue {
			link.Overflowed++
			d.overflows++
			d.overflowBytes += uint64(len(frame))
			if sim.Trace != nil {
				sim.tracef("%s: egress queue overflow (%d bytes)", p.Name(), len(frame)) //simlint:alloc trace-only, guarded by Trace != nil
			}
			return
		}
		txTime := time.Duration(int64(len(frame)) * 8 * int64(time.Second) / link.bandwidth)
		start := sim.now
		if d.busyUntil > start {
			start = d.busyUntil
		}
		d.busyUntil = start + txTime
		d.queued++
		delay = d.busyUntil - sim.now + link.Latency
		free := sim.schedule(d.busyUntil)
		free.kind = evQueueFree
		free.dir = d
	}
	ev := sim.schedule(sim.now + delay)
	ev.kind = evFrame
	ev.src = p
	ev.dst = p.Peer()
	ev.link = link
	ev.frame = frame
}

// deliver completes a frame's flight: the receiving port's status is checked
// at arrival time, so frames in flight when a failure hits are lost.
//
//simlint:hotpath
func (s *Sim) deliver(src, dst *Port, link *Link, frame []byte) {
	if !dst.up || !src.up || src.Link != link {
		dst.Counters.RxDropped++
		if s.Trace != nil {
			s.tracef("%s: rx drop (port down at arrival), %d bytes", dst.Name(), len(frame)) //simlint:alloc trace-only, guarded by Trace != nil
		}
		return
	}
	dst.Counters.RxFrames++
	dst.Counters.RxBytes += uint64(len(frame))
	if dst.Node.Handler != nil {
		dst.Node.Handler.HandleFrame(dst, frame)
	}
}

// Fail injects an interface failure on this port, as the paper's bash
// script does with `ip link set down` on the target node: the local node
// gets PortDown after the simulator's LocalDetectDelay; the peer notices
// nothing at the physical layer.
func (p *Port) Fail() {
	if !p.up {
		return
	}
	p.up = false
	sim := p.Node.Sim
	sim.tracef("%s: interface FAILED", p.Name())
	sim.Schedule(sim.LocalDetectDelay, func() {
		if p.Node.Handler != nil && !p.up {
			p.Node.Handler.PortDown(p)
		}
	})
}

// Restore brings a failed port back up and notifies the local handler.
func (p *Port) Restore() {
	if p.up {
		return
	}
	p.up = true
	sim := p.Node.Sim
	sim.tracef("%s: interface restored", p.Name())
	sim.Schedule(sim.LocalDetectDelay, func() {
		if p.Node.Handler != nil && p.up {
			p.Node.Handler.PortUp(p)
		}
	})
}

// CaptureFunc observes a frame at transmit time: the timestamped capture
// hook used by the tshark-equivalent in internal/capture.
type CaptureFunc func(at time.Duration, from *Port, frame []byte)

// Link is a full-duplex point-to-point connection between two ports.
type Link struct {
	A, B    *Port
	Latency time.Duration
	taps    []CaptureFunc

	// lossRate is the probability of dropping each frame in flight
	// (fault injection for protocol-robustness tests).
	lossRate float64
	// Lost counts frames dropped by loss injection.
	Lost uint64

	// bandwidth, when nonzero, serializes frames at this many bits per
	// second per direction; frames queue FIFO behind the transmitter.
	bandwidth int64
	// maxQueue bounds the per-direction egress queue in frames; beyond
	// it frames tail-drop (counted in Overflowed). 0 means unbounded.
	maxQueue int
	// Overflowed counts tail-dropped frames.
	Overflowed uint64

	// Per-direction transmitter state, keyed by the sending port.
	dirA, dirB dirState
}

type dirState struct {
	busyUntil     time.Duration
	queued        int
	overflows     uint64
	overflowBytes uint64
}

// LinkStats is a snapshot of one transmit direction of a link: the egress
// queue owned by the sending port. The workload telemetry samples it over
// time; the counters are cumulative since the link was created.
type LinkStats struct {
	// Queued is the number of frames waiting in (or occupying) the
	// serializer right now.
	Queued int
	// Overflows counts frames tail-dropped because the egress queue was
	// full, and OverflowBytes their total size.
	Overflows     uint64
	OverflowBytes uint64
}

// Stats returns the egress counters for the direction transmitting from p.
// Links without a bandwidth cap never queue or drop, so their stats stay
// zero.
func (l *Link) Stats(from *Port) LinkStats {
	d := l.dir(from)
	return LinkStats{Queued: d.queued, Overflows: d.overflows, OverflowBytes: d.overflowBytes}
}

// Bandwidth returns the link's per-direction capacity in bits per second
// (0 for an ideal, unshaped link).
func (l *Link) Bandwidth() int64 { return l.bandwidth }

// SetLossRate makes the link drop each frame with probability p (0..1).
func (l *Link) SetLossRate(p float64) { l.lossRate = p }

// SetBandwidth models link capacity: frames serialize at bps bits per
// second per direction and queue FIFO (tail-dropping beyond maxQueue
// frames; maxQueue 0 leaves the queue unbounded). bps 0 restores the
// ideal infinite-capacity link.
func (l *Link) SetBandwidth(bps int64, maxQueue int) {
	l.bandwidth = bps
	l.maxQueue = maxQueue
}

func (l *Link) dir(from *Port) *dirState {
	if from == l.A {
		return &l.dirA
	}
	return &l.dirB
}

// Connect wires two ports with the default latency.
func (s *Sim) Connect(a, b *Port) *Link { return s.ConnectLatency(a, b, s.DefaultLatency) }

// ConnectLatency wires two ports with an explicit one-way latency.
func (s *Sim) ConnectLatency(a, b *Port, latency time.Duration) *Link {
	if a.Link != nil || b.Link != nil {
		panic(fmt.Sprintf("simnet: port already wired: %s <-> %s", a.Name(), b.Name()))
	}
	if a.Node == b.Node {
		panic("simnet: cannot connect a node to itself")
	}
	l := &Link{A: a, B: b, Latency: latency}
	a.Link = l
	b.Link = l
	s.links = append(s.links, l)
	return l
}

// Links returns every link created so far.
func (s *Sim) Links() []*Link { return s.links }

// Tap registers a capture hook on the link; it sees frames from both
// directions at their transmit timestamps.
func (l *Link) Tap(fn CaptureFunc) { l.taps = append(l.taps, fn) }

// Other returns the port opposite p on this link.
func (l *Link) Other(p *Port) *Port {
	if l.A == p {
		return l.B
	}
	return l.A
}
