// Package simnet is a deterministic discrete-event network simulator.
//
// It stands in for the FABRIC testbed used in the paper: nodes are virtual
// machines, ports are their network interfaces, and links are the
// point-to-point fiber connections between them. Time is virtual — the event
// loop advances a microsecond-resolution clock from event to event — so a
// three-second BGP hold timer costs nothing to simulate and every run with
// the same seed is bit-for-bit reproducible.
//
// The failure model mirrors the paper's method of failing an interface with
// a script executed on the target node (`ip link set X down`): the node that
// owns the failed interface observes carrier-down after a small local
// detection delay, while the peer's interface stays up and the peer learns
// of the failure only through protocol timers. This asymmetry is what makes
// the paper's TC1/TC3 failure points behave differently from TC2/TC4.
package simnet

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/invariant"
	"repro/internal/netaddr"
	"repro/internal/simnet/framepool"
)

// Handler is the protocol stack attached to a node. All methods are invoked
// from the simulator's event loop; implementations never block and schedule
// future work through the node's simulator.
type Handler interface {
	// Start runs when the simulation begins (or when the handler is
	// attached to an already-running simulation).
	Start()
	// HandleFrame delivers a received Ethernet frame. The slice is owned
	// by the receiver.
	HandleFrame(p *Port, frame []byte)
	// PortDown reports local carrier loss on p (admin-down or failure
	// injection on this node). It is NOT called on the remote peer.
	PortDown(p *Port)
	// PortUp reports local carrier restoration on p.
	PortUp(p *Port)
}

// Sim is a single simulation instance. It is not safe for concurrent use;
// all protocol code runs on the event loop goroutine.
type Sim struct {
	now       time.Duration
	queue     []heapEntry // indexed min-heap ordered by (at, prio, tie, seq)
	free      []*event    // recycled event records
	seq       uint64
	seed      int64 // base seed; derives the per-node and per-direction streams
	rng       *rand.Rand
	nodes     map[string]*Node
	nodeOrder []*Node // insertion order, for deterministic iteration
	links     []*Link

	// frames recycles frame buffers on the TX/RX paths. Buffers are zeroed
	// on Get, so a pooled buffer is indistinguishable from a fresh make and
	// recycling cannot perturb simulation output (shard bit-identity).
	frames *framepool.Pool

	// curOwner is the node whose event is being dispatched (-1 outside
	// dispatch, i.e. control context). Schedules inherit it as their
	// ordering key so the partitioned engine can reproduce sequential
	// same-instant ordering.
	curOwner int32

	// LocalDetectDelay is the time between an interface failure and the
	// owning node's PortDown callback (carrier-loss interrupt latency).
	LocalDetectDelay time.Duration

	// DefaultLatency is the one-way propagation delay applied to links
	// created without an explicit latency.
	DefaultLatency time.Duration

	// Trace, when non-nil, receives a line for every noteworthy event
	// (frame drops, failures). Used by examples and debugging.
	Trace func(at time.Duration, format string, args ...any)

	events uint64 // total events processed, for stats
}

// New creates a simulator seeded for deterministic runs.
func New(seed int64) *Sim {
	return &Sim{
		seed:             seed,
		rng:              rand.New(rand.NewSource(seed)),
		nodes:            make(map[string]*Node),
		frames:           framepool.New(),
		LocalDetectDelay: 1 * time.Millisecond,
		DefaultLatency:   100 * time.Microsecond,
		curOwner:         -1,
	}
}

// streamSeed derives an independent deterministic stream seed from the
// simulation seed and a stable name (FNV-1a). Per-node and per-direction
// streams make random draws independent of global event interleaving, so a
// partitioned run consumes randomness identically to a sequential one.
func streamSeed(base int64, name string, salt uint64) int64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	h ^= salt * 0x9e3779b97f4a7c15
	return base ^ int64(h)
}

// Now returns the current virtual time (time since simulation start).
func (s *Sim) Now() time.Duration { return s.now }

// Rand exposes the simulation's deterministic random source.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// Events returns the number of events processed so far.
func (s *Sim) Events() uint64 { return s.events }

// Frames returns the simulation's frame-buffer pool. Protocol stacks draw
// TX buffers from it and return provably-dead buffers; the ownership rules
// are enforced by the lifetime analyzer (DESIGN.md §14).
func (s *Sim) Frames() *framepool.Pool { return s.frames }

// FrameStats reports the frame pool's occupancy counters.
func (s *Sim) FrameStats() framepool.Stats { return s.frames.Stats() }

func (s *Sim) tracef(format string, args ...any) {
	if s.Trace != nil {
		s.Trace(s.now, format, args...)
	}
}

// Node is one device: a router, switch, or server.
type Node struct {
	Name    string
	Sim     *Sim
	Ports   []*Port // index 0 unused; ports are 1-based like the paper's VID port numbers
	Handler Handler

	// Meta carries harness-level labels (tier, pod, VID) without the
	// simulator depending on topology types.
	Meta map[string]string

	// id is the node's rank within its owning Sim (heap ordering key); gid
	// is its rank across the whole fabric. They coincide on a plain Sim; on
	// a partitioned Cluster, id is shard-local while gid is global (used in
	// frame tie keys and MAC derivation, which must match the sequential
	// engine bit for bit).
	id, gid int32

	rng *rand.Rand // lazily built per-node stream (see Rand)
}

// AddNode creates a node. Names must be unique.
func (s *Sim) AddNode(name string) *Node {
	if _, dup := s.nodes[name]; dup {
		panic("simnet: duplicate node name " + name)
	}
	id := int32(len(s.nodeOrder))
	n := &Node{Name: name, Sim: s, Ports: []*Port{nil}, Meta: make(map[string]string), id: id, gid: id}
	s.nodes[name] = n
	s.nodeOrder = append(s.nodeOrder, n)
	return n
}

// Rand returns the node's private deterministic random stream, derived from
// the simulation seed and the node name. Protocol code (BFD jitter, TCP
// initial sequence numbers) draws from it instead of the simulation-wide
// source, so draw sequences depend only on the node's own event order — a
// requirement for partitioned runs to stay bit-identical to sequential
// ones.
func (n *Node) Rand() *rand.Rand {
	if n.rng == nil {
		n.rng = rand.New(rand.NewSource(streamSeed(n.Sim.seed, n.Name, 0)))
	}
	return n.rng
}

// Node returns a node by name, or nil.
func (s *Sim) Node(name string) *Node { return s.nodes[name] }

// Nodes returns every node in insertion order, so iteration (trace output,
// harness sweeps) is reproducible run to run.
func (s *Sim) Nodes() []*Node {
	return append([]*Node(nil), s.nodeOrder...)
}

// AddPort appends a new port to the node and returns it. Port indices start
// at 1 to match the paper's VID construction ("append the port number on
// which the request arrived"). The MAC derives from the node's global rank
// and the port index — not a simulator-wide counter — so a fabric built
// shard by shard assigns the same addresses as a sequential build.
func (n *Node) AddPort() *Port {
	idx := len(n.Ports)
	p := &Port{
		Node:  n,
		Index: idx,
		MAC:   netaddr.MAC{0x02, byte(uint32(n.gid) >> 8), byte(uint32(n.gid)), byte(idx >> 8), byte(idx), 0x01},
		up:    true,
	}
	n.Ports = append(n.Ports, p)
	return p
}

// Port returns the i-th (1-based) port. It panics on a bad index because
// topology wiring is static.
func (n *Node) Port(i int) *Port {
	if i < 1 || i >= len(n.Ports) {
		panic(fmt.Sprintf("simnet: node %s has no port %d", n.Name, i))
	}
	return n.Ports[i]
}

// Start invokes Start on every attached handler. Call once after wiring.
func (s *Sim) Start() {
	// Deterministic order: nodes sorted by name. Each handler starts in its
	// own node's context so its initial timers carry that node's key.
	sorted := s.Nodes()
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	for _, n := range sorted {
		if n.Handler != nil {
			s.curOwner = n.id
			n.Handler.Start()
		}
	}
	s.curOwner = -1
}

// PortCounters tracks per-port frame statistics.
type PortCounters struct {
	TxFrames  uint64
	TxBytes   uint64
	RxFrames  uint64
	RxBytes   uint64
	TxDropped uint64 // transmit attempts while the port or link was down
	RxDropped uint64 // frames arriving at a down port
}

// Port is a network interface on a node.
type Port struct {
	Node  *Node
	Index int
	MAC   netaddr.MAC
	Link  *Link
	up    bool

	Counters PortCounters
}

// Name renders the paper-style interface name ("T-1:eth2").
func (p *Port) Name() string { return fmt.Sprintf("%s:eth%d", p.Node.Name, p.Index) }

// Up reports local carrier status.
func (p *Port) Up() bool { return p.up }

// Peer returns the port at the other end of the link, or nil when unwired.
func (p *Port) Peer() *Port {
	if p.Link == nil {
		return nil
	}
	if p.Link.A == p {
		return p.Link.B
	}
	return p.Link.A
}

// Send transmits an Ethernet frame out the port. Frames hitting a down port
// or unwired port are counted and dropped; otherwise delivery is scheduled
// after the link latency and checked against the receiving port's status at
// arrival time (frames in flight when a failure hits are lost).
//
// Send takes ownership of frame: the slice rides in the scheduled delivery
// event, so the caller must neither retain nor modify it afterwards (the
// framealias lint rule).
//
//simlint:hotpath
func (p *Port) Send(frame []byte) {
	sim := p.Node.Sim
	if !p.up || p.Link == nil {
		p.Counters.TxDropped++
		// The Trace-nil guard sits out here so the disabled-tracing fast
		// path neither renders the port name nor boxes the arguments.
		if sim.Trace != nil {
			sim.tracef("%s: tx drop (port down), %d bytes", p.Name(), len(frame)) //simlint:alloc trace-only, guarded by Trace != nil
		}
		sim.frames.Put(frame) // dropped at the transmitter: no one else holds it
		return
	}
	p.Counters.TxFrames++
	p.Counters.TxBytes += uint64(len(frame))
	link := p.Link
	d := link.dir(p)
	for _, tap := range link.taps {
		tap(sim.now, p, frame)
	}
	if link.lossRate > 0 && d.rand(p).Float64() < link.lossRate {
		d.lost++
		if sim.Trace != nil {
			sim.tracef("%s: frame lost in transit (%d bytes)", p.Name(), len(frame)) //simlint:alloc trace-only, guarded by Trace != nil
		}
		sim.frames.Put(frame) // taps copy what they keep; the lost frame is dead
		return
	}
	// Per-direction impairments (fault injection beyond uniform loss): the
	// flag check keeps the unimpaired TX path free of extra RNG draws, so
	// clean runs consume no randomness at all. Draws come from the
	// direction's private stream, so loss decisions depend only on this
	// direction's transmit order — not on global event interleaving.
	jitter := time.Duration(0)
	if d.impaired {
		if d.imp.Down {
			d.lost++
			if sim.Trace != nil {
				sim.tracef("%s: frame lost (one-way carrier down), %d bytes", p.Name(), len(frame)) //simlint:alloc trace-only, guarded by Trace != nil
			}
			sim.frames.Put(frame)
			return
		}
		if d.imp.LossRate > 0 && d.rand(p).Float64() < d.imp.LossRate {
			d.lost++
			if sim.Trace != nil {
				sim.tracef("%s: frame lost (impairment), %d bytes", p.Name(), len(frame)) //simlint:alloc trace-only, guarded by Trace != nil
			}
			sim.frames.Put(frame)
			return
		}
		if d.imp.CorruptRate > 0 && d.rand(p).Float64() < d.imp.CorruptRate {
			// Flip one random byte: the receiver sees a parseable-or-not
			// frame, exactly as a gray link delivers bit errors past a
			// checksumless MAC.
			frame[d.rand(p).Intn(len(frame))] ^= 0xFF
			d.corrupted++
			if sim.Trace != nil {
				sim.tracef("%s: frame corrupted in transit (%d bytes)", p.Name(), len(frame)) //simlint:alloc trace-only, guarded by Trace != nil
			}
		}
		jitter = d.imp.ExtraLatency
		if d.imp.Jitter > 0 {
			jitter += time.Duration(d.rand(p).Int63n(int64(d.imp.Jitter)))
		}
	}
	// Serialization and queueing: with finite bandwidth the frame waits
	// behind earlier frames, then occupies the wire for its bit time.
	delay := link.Latency + jitter
	if link.bandwidth > 0 {
		if link.maxQueue > 0 && d.queued >= link.maxQueue {
			d.overflows++
			d.overflowBytes += uint64(len(frame))
			if sim.Trace != nil {
				sim.tracef("%s: egress queue overflow (%d bytes)", p.Name(), len(frame)) //simlint:alloc trace-only, guarded by Trace != nil
			}
			sim.frames.Put(frame)
			return
		}
		// The serializer runs on the capacity left after the fluid
		// engine's reservation (hybrid runs only; fluidBps is 0
		// otherwise, keeping pure packet runs bit-identical). The floor
		// keeps a fully reserved direction trickling instead of
		// dividing by zero: the fluid solver models packet demand too,
		// so a reservation this tight means the allocator was told of
		// no packet flows here.
		bps := link.bandwidth
		if d.fluidBps > 0 {
			bps -= d.fluidBps
			if floor := link.bandwidth >> 7; bps < floor {
				bps = floor
			}
			if bps < 1 {
				bps = 1
			}
		}
		txTime := time.Duration(int64(len(frame)) * 8 * int64(time.Second) / bps)
		start := sim.now
		if d.busyUntil > start {
			start = d.busyUntil
		}
		d.busyUntil = start + txTime
		d.queued++
		delay = d.busyUntil - sim.now + link.Latency + jitter
		free := sim.schedule(d.busyUntil)
		free.kind = evQueueFree
		free.dir = d
	}
	// The delivery's ordering key is engine-independent: the dst node's
	// frame class, tied by (src gid, src port, per-direction tx counter).
	d.txSeq++
	tie := uint64(uint32(p.Node.gid))<<40 | uint64(uint16(p.Index))<<32 | uint64(d.txSeq)
	dst := p.Peer()
	if d.cross != nil {
		// Cross-partition link: hand the delivery to the destination
		// shard's inbox instead of the local heap. The queue is SPSC —
		// written only by this shard's worker, drained by the destination's
		// worker after the next barrier.
		d.cross.buf = append(d.cross.buf, crossFrame{ //simlint:alloc outbox growth is amortized; capacity stabilizes at peak in-flight cross frames
			at: sim.now + delay, prio: nodePrio(dst.Node.id, classFrame), tie: tie,
			src: p, dst: dst, link: link, frame: frame,
		})
		return
	}
	ev := sim.scheduleKeyed(sim.now+delay, nodePrio(dst.Node.id, classFrame), tie)
	ev.kind = evFrame
	ev.src = p
	ev.dst = dst
	ev.link = link
	ev.frame = frame
	if invariant.Enabled {
		// Snapshot the buffer's pool generation: Step re-checks it at
		// delivery time, catching a Put while the frame was in flight.
		ev.fh = sim.frames.Handle(frame)
	}
}

// deliver completes a frame's flight: the receiving port's status is checked
// at arrival time, so frames in flight when a failure hits are lost.
//
//simlint:hotpath
func (s *Sim) deliver(src, dst *Port, link *Link, frame []byte) {
	if !dst.up || !src.up || src.Link != link {
		dst.Counters.RxDropped++
		if s.Trace != nil {
			s.tracef("%s: rx drop (port down at arrival), %d bytes", dst.Name(), len(frame)) //simlint:alloc trace-only, guarded by Trace != nil
		}
		s.frames.Put(frame)
		return
	}
	dst.Counters.RxFrames++
	dst.Counters.RxBytes += uint64(len(frame))
	if dst.Node.Handler != nil {
		dst.Node.Handler.HandleFrame(dst, frame)
	}
}

// Fail injects an interface failure on this port, as the paper's bash
// script does with `ip link set down` on the target node: the local node
// gets PortDown after the simulator's LocalDetectDelay; the peer notices
// nothing at the physical layer.
func (p *Port) Fail() {
	if !p.up {
		return
	}
	p.up = false
	sim := p.Node.Sim
	sim.tracef("%s: interface FAILED", p.Name())
	sim.Schedule(sim.LocalDetectDelay, func() {
		if p.Node.Handler != nil && !p.up {
			p.Node.Handler.PortDown(p)
		}
	})
}

// Restore brings a failed port back up and notifies the local handler.
func (p *Port) Restore() {
	if p.up {
		return
	}
	p.up = true
	sim := p.Node.Sim
	sim.tracef("%s: interface restored", p.Name())
	sim.Schedule(sim.LocalDetectDelay, func() {
		if p.Node.Handler != nil && p.up {
			p.Node.Handler.PortUp(p)
		}
	})
}

// CarrierFault reports carrier loss to the owning node's handler WITHOUT
// administratively downing the port: the node reacts as if the interface
// died (its receiver lost light) while its own transmitter keeps working
// and the peer sees nothing. Combined with a Down impairment on the
// peer-to-here direction this models a one-way fiber cut that only this
// endpoint can see — the gray failure mode where protocols relying on
// symmetric liveness (one-way hellos) diverge from ones that echo state
// (BFD). A port that is already administratively down reports nothing.
func (p *Port) CarrierFault() {
	sim := p.Node.Sim
	sim.tracef("%s: one-way carrier fault", p.Name())
	sim.Schedule(sim.LocalDetectDelay, func() {
		if p.Node.Handler != nil && p.up {
			p.Node.Handler.PortDown(p)
		}
	})
}

// CarrierRestore reports carrier recovery after a CarrierFault.
func (p *Port) CarrierRestore() {
	sim := p.Node.Sim
	sim.tracef("%s: one-way carrier restored", p.Name())
	sim.Schedule(sim.LocalDetectDelay, func() {
		if p.Node.Handler != nil && p.up {
			p.Node.Handler.PortUp(p)
		}
	})
}

// CaptureFunc observes a frame at transmit time: the timestamped capture
// hook used by the tshark-equivalent in internal/capture.
type CaptureFunc func(at time.Duration, from *Port, frame []byte)

// Link is a full-duplex point-to-point connection between two ports.
type Link struct {
	A, B    *Port
	Latency time.Duration
	taps    []CaptureFunc

	// lossRate is the probability of dropping each frame in flight
	// (fault injection for protocol-robustness tests).
	lossRate float64

	// bandwidth, when nonzero, serializes frames at this many bits per
	// second per direction; frames queue FIFO behind the transmitter.
	bandwidth int64
	// maxQueue bounds the per-direction egress queue in frames; beyond
	// it frames tail-drop (counted per direction). 0 means unbounded.
	maxQueue int

	// Per-direction transmitter state, keyed by the sending port. Loss,
	// corruption and overflow counters live per direction — on a link
	// crossing a partition boundary each direction is written by a
	// different shard, so a combined counter would be a data race.
	dirA, dirB dirState
}

// Lost counts frames dropped by loss injection (uniform and per-direction),
// both directions combined.
func (l *Link) Lost() uint64 { return l.dirA.lost + l.dirB.lost }

// Corrupted counts frames that had a byte flipped by a corruption
// impairment, both directions combined.
func (l *Link) Corrupted() uint64 { return l.dirA.corrupted + l.dirB.corrupted }

// Overflowed counts tail-dropped frames, both directions combined.
func (l *Link) Overflowed() uint64 { return l.dirA.overflows + l.dirB.overflows }

type dirState struct {
	busyUntil     time.Duration
	queued        int
	overflows     uint64
	overflowBytes uint64

	// imp is the direction's fault profile; impaired caches imp != zero so
	// the clean TX path pays one flag test and no extra RNG draws.
	imp       Impairment
	impaired  bool
	lost      uint64
	corrupted uint64

	// fluidBps is the bandwidth currently reserved by the fluid engine's
	// aggregate share on this direction; the packet serializer runs on
	// the residual. fluidBytes integrates the bytes the reservation
	// carried up to fluidAt (rates are piecewise-constant, so the
	// integral is exact). Written only from control events at the quiesce
	// barrier; read by the owning shard's transmit path mid-window — the
	// barrier provides the happens-before edge, exactly as for
	// impairments.
	fluidBps   int64
	fluidBytes uint64
	fluidAt    time.Duration

	// rng is the direction's private stream for loss/corruption/jitter
	// draws, lazily derived from (sim seed, sending port).
	rng *rand.Rand
	// txSeq counts scheduled transmissions: the per-direction component of
	// the frame tie key.
	txSeq uint32
	// cross, when non-nil, is the outbox toward the partition owning the
	// far end (partitioned engine only).
	cross *crossQueue
}

// rand returns the direction's private stream, creating it on first use.
func (d *dirState) rand(from *Port) *rand.Rand {
	if d.rng == nil {
		d.rng = rand.New(rand.NewSource(streamSeed(from.Node.Sim.seed, from.Node.Name, uint64(from.Index)+1))) //simlint:alloc one-time per-direction stream setup; only impaired/lossy paths reach it
	}
	return d.rng
}

// Impairment is a per-direction fault profile: every field applies to
// frames transmitted in one direction of a link, leaving the reverse
// direction untouched. The zero value is a clean wire.
type Impairment struct {
	// LossRate drops each frame with this probability (asymmetric gray
	// loss when set on one direction only).
	LossRate float64
	// CorruptRate flips one random byte of each surviving frame with this
	// probability (bit errors past a checksumless MAC).
	CorruptRate float64
	// ExtraLatency delays every frame by this much on top of the link
	// latency.
	ExtraLatency time.Duration
	// Jitter adds a uniform random delay in [0, Jitter) per frame; enough
	// of it reorders frames.
	Jitter time.Duration
	// Down blackholes the direction entirely: a one-way fiber cut. Both
	// ports stay administratively up, so neither endpoint sees a
	// carrier event — pair with Port.CarrierFault on the receiving end
	// for the variant where that endpoint's optics raise an alarm.
	Down bool
}

// active reports whether any fault is configured.
func (i Impairment) active() bool { return i != Impairment{} }

// Impair installs the fault profile on the direction transmitting from p.
// The zero Impairment clears the direction.
func (l *Link) Impair(from *Port, imp Impairment) {
	d := l.dir(from)
	d.imp = imp
	d.impaired = imp.active()
}

// Impaired returns the direction's current fault profile.
func (l *Link) Impaired(from *Port) Impairment { return l.dir(from).imp }

// ClearImpairments restores both directions to a clean wire.
func (l *Link) ClearImpairments() {
	l.Impair(l.A, Impairment{})
	l.Impair(l.B, Impairment{})
}

// LinkStats is a snapshot of one transmit direction of a link: the egress
// queue owned by the sending port. The workload telemetry samples it over
// time; the counters are cumulative since the link was created.
type LinkStats struct {
	// Queued is the number of frames waiting in (or occupying) the
	// serializer right now.
	Queued int
	// Overflows counts frames tail-dropped because the egress queue was
	// full, and OverflowBytes their total size.
	Overflows     uint64
	OverflowBytes uint64
	// Lost counts frames dropped in this direction by loss injection
	// (uniform link loss, asymmetric impairment loss, or a one-way Down).
	Lost uint64
	// Corrupted counts frames that had a byte flipped in this direction.
	Corrupted uint64
	// FluidBps is the bandwidth currently reserved by the fluid engine on
	// this direction (0 in pure packet runs).
	FluidBps int64
}

// Stats returns the egress counters for the direction transmitting from p.
// Links without a bandwidth cap never queue or tail-drop, so those fields
// stay zero; Lost and Corrupted count loss/corruption injection and move
// on any link carrying an impairment.
func (l *Link) Stats(from *Port) LinkStats {
	d := l.dir(from)
	return LinkStats{
		Queued: d.queued, Overflows: d.overflows, OverflowBytes: d.overflowBytes,
		Lost: d.lost, Corrupted: d.corrupted, FluidBps: d.fluidBps,
	}
}

// Bandwidth returns the link's per-direction capacity in bits per second
// (0 for an ideal, unshaped link).
func (l *Link) Bandwidth() int64 { return l.bandwidth }

// SetLossRate makes the link drop each frame with probability p (0..1).
func (l *Link) SetLossRate(p float64) { l.lossRate = p }

// SetBandwidth models link capacity: frames serialize at bps bits per
// second per direction and queue FIFO (tail-dropping beyond maxQueue
// frames; maxQueue 0 leaves the queue unbounded). bps 0 restores the
// ideal infinite-capacity link.
func (l *Link) SetBandwidth(bps int64, maxQueue int) {
	l.bandwidth = bps
	l.maxQueue = maxQueue
}

// SetFluidLoad reserves bps of this direction's capacity for the fluid
// engine's aggregate share: the packet serializer runs on the residual
// (see Send), and the reservation's carried bytes integrate into
// FluidBytes. at is the engine's control-clock instant of the change —
// passed in rather than read from a clock so the accounting lives entirely
// in the control domain regardless of shard count. Call only from control
// events (the quiesce barrier orders the write against shard transmits).
func (l *Link) SetFluidLoad(from *Port, bps int64, at time.Duration) {
	d := l.dir(from)
	d.integrateFluid(at)
	d.fluidBps = bps
}

// FluidLoad returns the direction's current fluid reservation in bits per
// second.
func (l *Link) FluidLoad(from *Port) int64 { return l.dir(from).fluidBps }

// FluidBytes returns the bytes the direction's fluid reservation has
// carried up to the control instant at (monotone in at).
func (l *Link) FluidBytes(from *Port, at time.Duration) uint64 {
	d := l.dir(from)
	d.integrateFluid(at)
	return d.fluidBytes
}

// integrateFluid folds the interval since the last change at the previous
// (piecewise-constant) rate into the byte integral.
func (d *dirState) integrateFluid(at time.Duration) {
	if at <= d.fluidAt {
		return
	}
	if d.fluidBps > 0 {
		d.fluidBytes += uint64(int64(at-d.fluidAt) * d.fluidBps / (8 * int64(time.Second)))
	}
	d.fluidAt = at
}

func (l *Link) dir(from *Port) *dirState {
	if from == l.A {
		return &l.dirA
	}
	return &l.dirB
}

// Connect wires two ports with the default latency.
func (s *Sim) Connect(a, b *Port) *Link { return s.ConnectLatency(a, b, s.DefaultLatency) }

// ConnectLatency wires two ports with an explicit one-way latency.
func (s *Sim) ConnectLatency(a, b *Port, latency time.Duration) *Link {
	if a.Link != nil || b.Link != nil {
		panic(fmt.Sprintf("simnet: port already wired: %s <-> %s", a.Name(), b.Name()))
	}
	if a.Node == b.Node {
		panic("simnet: cannot connect a node to itself")
	}
	l := &Link{A: a, B: b, Latency: latency}
	a.Link = l
	b.Link = l
	s.links = append(s.links, l)
	return l
}

// Links returns every link created so far.
func (s *Sim) Links() []*Link { return s.links }

// Tap registers a capture hook on the link; it sees frames from both
// directions at their transmit timestamps.
func (l *Link) Tap(fn CaptureFunc) { l.taps = append(l.taps, fn) }

// Other returns the port opposite p on this link.
func (l *Link) Other(p *Port) *Port {
	if l.A == p {
		return l.B
	}
	return l.A
}
