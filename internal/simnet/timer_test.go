package simnet

import (
	"testing"
	"time"
)

// The tests in this file pin the stop/reset/fire orderings of the Timer
// API. The seed engine dropped the callback when an event fired, so the
// first Reset on a fired timer silently scheduled a no-op — exactly the
// pattern every keep-alive protocol uses (fire, then re-arm from inside or
// outside the callback).

func TestTimerResetAfterFire(t *testing.T) {
	s := New(1)
	count := 0
	tm := s.After(time.Millisecond, func() { count++ })
	s.RunFor(5 * time.Millisecond)
	if count != 1 {
		t.Fatalf("timer fired %d times, want 1", count)
	}
	tm.Reset(time.Millisecond)
	s.RunFor(5 * time.Millisecond)
	if count != 2 {
		t.Errorf("after Reset on fired timer, count = %d, want 2 (callback lost)", count)
	}
}

func TestTimerResetAfterStop(t *testing.T) {
	s := New(1)
	count := 0
	tm := s.After(time.Millisecond, func() { count++ })
	tm.Stop()
	tm.Reset(time.Millisecond)
	s.RunFor(5 * time.Millisecond)
	if count != 1 {
		t.Errorf("after Stop then Reset, count = %d, want 1", count)
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	s := New(1)
	count := 0
	tm := s.After(time.Millisecond, func() { count++ })
	s.RunFor(5 * time.Millisecond)
	if tm.Stop() {
		t.Error("Stop() = true on a fired timer")
	}
	if count != 1 {
		t.Errorf("count = %d, want 1", count)
	}
}

// TestTimerStaleHandleDoesNotCancelRecycledEvent pins the generation check:
// once a timer's event record is recycled for an unrelated event, the old
// handle must become inert rather than cancel the new owner's event.
func TestTimerStaleHandleDoesNotCancelRecycledEvent(t *testing.T) {
	s := New(1)
	tm := s.After(time.Millisecond, func() {})
	s.RunFor(5 * time.Millisecond) // fires; record goes to the freelist
	count := 0
	// The freelist is LIFO, so this timer reuses tm's record.
	s.After(time.Millisecond, func() { count++ })
	if tm.Stop() {
		t.Error("stale handle Stop() = true")
	}
	tm.Reset(20 * time.Millisecond) // re-arms tm afresh, must not re-time the other event
	s.RunFor(5 * time.Millisecond)
	if count != 1 {
		t.Errorf("recycled event fired %d times, want 1 (stale handle interfered)", count)
	}
}

func TestTimerResetPendingKeepsSingleFiring(t *testing.T) {
	s := New(1)
	var fires []time.Duration
	var tm *Timer
	tm = s.After(time.Millisecond, func() {
		fires = append(fires, s.Now())
		if len(fires) < 3 {
			tm.Reset(time.Millisecond) // re-arm from inside the callback
		}
	})
	s.RunFor(10 * time.Millisecond)
	want := []time.Duration{time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond}
	if len(fires) != len(want) {
		t.Fatalf("fired %d times, want %d", len(fires), len(want))
	}
	for i := range want {
		if fires[i] != want[i] {
			t.Errorf("fire %d at %v, want %v", i, fires[i], want[i])
		}
	}
}

// TestTimerResetReordersAgainstPeers checks the in-place re-timing: a reset
// timer must fire in (time, scheduling order) position relative to other
// pending events, not in its original heap position.
func TestTimerResetReordersAgainstPeers(t *testing.T) {
	s := New(1)
	var order []string
	tm := s.After(time.Millisecond, func() { order = append(order, "reset") })
	s.After(2*time.Millisecond, func() { order = append(order, "fixed") })
	tm.Reset(3 * time.Millisecond) // was earliest, now latest
	s.RunFor(10 * time.Millisecond)
	if len(order) != 2 || order[0] != "fixed" || order[1] != "reset" {
		t.Errorf("order = %v, want [fixed reset]", order)
	}
}

func TestNodesDeterministicOrder(t *testing.T) {
	s := New(1)
	names := []string{"zeta", "alpha", "mid", "beta"}
	for _, n := range names {
		s.AddNode(n)
	}
	for trial := 0; trial < 3; trial++ {
		got := s.Nodes()
		if len(got) != len(names) {
			t.Fatalf("Nodes() returned %d nodes, want %d", len(got), len(names))
		}
		for i, n := range got {
			if n.Name != names[i] {
				t.Fatalf("Nodes()[%d] = %s, want %s (insertion order)", i, n.Name, names[i])
			}
		}
	}
}
