package framepool

import (
	"testing"
)

func TestGetReturnsZeroedExactLength(t *testing.T) {
	p := New()
	b := p.Get(85)
	if len(b) != 85 {
		t.Fatalf("len = %d, want 85", len(b))
	}
	for i := range b {
		b[i] = 0xAA
	}
	p.Put(b)
	c := p.Get(85)
	if len(c) != 85 {
		t.Fatalf("recycled len = %d, want 85", len(c))
	}
	for i, v := range c {
		if v != 0 {
			t.Fatalf("recycled buffer not zeroed at %d: %#x", i, v)
		}
	}
	if s := p.Stats(); s.Recycled != 1 {
		t.Errorf("Recycled = %d, want 1 (stats %+v)", s.Recycled, s)
	}
}

func TestRecycleAcrossSizesWithinClass(t *testing.T) {
	p := New()
	b := p.Get(100) // class 128
	p.Put(b)
	c := p.Get(128) // same class, larger length
	if len(c) != 128 || cap(c) < 128 {
		t.Fatalf("len=%d cap=%d, want 128/≥128", len(c), cap(c))
	}
	if s := p.Stats(); s.Recycled != 1 {
		t.Errorf("Recycled = %d, want 1", s.Recycled)
	}
}

func TestOversizedBypassesBuckets(t *testing.T) {
	p := New()
	b := p.Get(10000)
	if len(b) != 10000 {
		t.Fatalf("len = %d", len(b))
	}
	p.Put(b) // cap ≥ 4096: lands in the largest class
	c := p.Get(4096)
	if s := p.Stats(); s.Recycled != 1 {
		t.Errorf("oversized buffer not recycled into largest class: %+v", s)
	}
	_ = c
}

func TestForeignAndNilPut(t *testing.T) {
	p := New()
	p.Put(nil)              // no-op
	p.Put(make([]byte, 10)) // cap below every class: rejected
	if s := p.Stats(); s.Returned != 0 || s.InUse != 0 {
		t.Errorf("tiny/nil Put should be rejected: %+v", s)
	}
	p.Put(make([]byte, 200)) // foreign but poolable
	if s := p.Stats(); s.Returned != 1 || s.InUse != -1 {
		t.Errorf("foreign Put: %+v", s)
	}
	b := p.Get(64) // class 64: the cap-200 buffer entered the 128 class, so this misses
	_ = b
}

func TestOccupancyStats(t *testing.T) {
	p := New()
	a := p.Get(64)
	b := p.Get(64)
	if s := p.Stats(); s.InUse != 2 || s.Peak != 2 || s.Fresh != 2 {
		t.Fatalf("after two Gets: %+v", s)
	}
	p.Put(a)
	if s := p.Stats(); s.InUse != 1 || s.Peak != 2 || s.Returned != 1 {
		t.Fatalf("after one Put: %+v", s)
	}
	p.Put(b)
	c := p.Get(64)
	if s := p.Stats(); s.InUse != 1 || s.Peak != 2 || s.Recycled != 1 {
		t.Fatalf("after recycle: %+v", s)
	}
	p.Put(c)
}

func TestGetZero(t *testing.T) {
	p := New()
	if b := p.Get(0); b != nil {
		t.Errorf("Get(0) = %v, want nil", b)
	}
	if s := p.Stats(); s.InUse != 0 {
		t.Errorf("Get(0) counted: %+v", s)
	}
}

func BenchmarkGetPut(b *testing.B) {
	p := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := p.Get(85)
		p.Put(buf)
	}
}
