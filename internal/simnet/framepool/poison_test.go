//go:build invariants

package framepool

import "testing"

// The corruption-detection tests only exist under -tags invariants: release
// builds carry no generation bookkeeping to violate.

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", what)
		}
	}()
	fn()
}

func TestDoublePutPanics(t *testing.T) {
	p := New()
	b := p.Get(64)
	p.Put(b)
	mustPanic(t, "double Put", func() { p.Put(b) })
}

func TestDoublePutOfAliasPanics(t *testing.T) {
	// Two slices over the same backing array are the same buffer: returning
	// both is the aliasing bug the generation map must catch.
	p := New()
	b := p.Get(128)
	alias := b[:64]
	p.Put(b)
	mustPanic(t, "Put of an alias of a returned buffer", func() { p.Put(alias) })
}

func TestStaleHandleCheckPanics(t *testing.T) {
	p := New()
	b := p.Get(64)
	h := p.Handle(b) // snapshot while the buffer is legitimately in flight
	p.Check(h)       // still current: must not panic
	p.Put(b)
	mustPanic(t, "Check of a handle taken before Put", func() { p.Check(h) })
}

func TestHandleTracksRecycledGeneration(t *testing.T) {
	p := New()
	b := p.Get(64)
	p.Put(b)
	c := p.Get(64) // same backing array, new generation
	h := p.Handle(c)
	p.Check(h) // current generation: clean
	p.Put(c)
	mustPanic(t, "Check across a recycle", func() { p.Check(h) })
}

func TestZeroHandleChecksClean(t *testing.T) {
	p := New()
	p.Check(Handle{})      // zero handle: no-op
	p.Check(p.Handle(nil)) // nil buffer: no-op
}
