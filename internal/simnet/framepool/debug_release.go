//go:build !invariants

package framepool

// Release builds carry no per-buffer bookkeeping: the tracking hooks are
// empty and inline away, and Handle/Check shrink to no-ops so call sites
// can stay unconditional behind an invariant.Enabled guard.

type debugState struct{}

func newDebugState() *debugState { return nil }

func (p *Pool) trackGet(b []byte) {}
func (p *Pool) trackPut(b []byte) {}

// Handle is a no-op staleness token in release builds.
type Handle struct{}

// Handle returns the zero token; generation tracking needs -tags invariants.
func (p *Pool) Handle(b []byte) Handle { return Handle{} }

// Check is a no-op in release builds.
func (p *Pool) Check(h Handle) {}
