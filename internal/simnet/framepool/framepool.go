// Package framepool recycles frame buffers for the packet hot path.
//
// The simulator's TX paths compose each frame into a single []byte whose
// ownership then flows through Port.Send into the delivery event and on to
// the receiving handler (DESIGN.md §7). Those buffers die constantly — a
// transit router copies the payload onward and the received frame is spent;
// a dropped frame dies inside the simulator — and at workload scale the
// churn is pure garbage-collector pressure. The pool gives dead buffers
// back to the next transmission instead.
//
// Get returns a zeroed buffer of exactly the requested length, so a pooled
// buffer is indistinguishable from a fresh make([]byte, n): recycling can
// never change simulation output, only allocation counts. That property is
// what keeps partitioned runs bit-identical to sequential ones regardless
// of per-shard pool hit patterns.
//
// The discipline — every Get is balanced by exactly one Put once the buffer
// is provably dead, never while an alias can still be read — is enforced
// statically by the lifetime analyzer (tools/analyzers/lifetime, DESIGN.md
// §14) and dynamically by generation poisoning under -tags invariants.
package framepool

// classSizes are the bucket capacities, chosen around the repo's frame
// population: control keep-alives sit at 66–100 bytes, workload MTUs at
// 1500, encapsulated jumbo cases below 4 KiB. Larger requests bypass the
// pool entirely.
var classSizes = [...]int{64, 128, 256, 512, 1024, 2048, 4096}

// Stats is a snapshot of pool occupancy, surfaced in the workload telemetry
// CSV so a leak-on-path regression is visible at runtime too.
type Stats struct {
	// InUse is Gets minus Puts: the number of lent buffers not yet
	// returned. Frames that end their life outside the simulator (local
	// delivery hands ownership to protocol handlers, which may retain the
	// payload) are never Put, so a busy run holds a steady nonzero level;
	// a monotonic climb on a closed workload is a leak. Foreign buffers
	// entering via Put can push it below zero.
	InUse int
	// Peak is the high-water mark of InUse.
	Peak int
	// Recycled counts Gets served from a bucket instead of the allocator.
	Recycled uint64
	// Fresh counts Gets that fell through to a real allocation.
	Fresh uint64
	// Returned counts accepted Puts.
	Returned uint64
}

// Pool is a size-bucketed freelist of frame buffers. It is not safe for
// concurrent use; each simulation shard owns its own pool, and buffers may
// migrate between shards (allocated by the sender, returned to the
// receiver) because Get normalizes every buffer it hands out.
//
//simlint:pool acquire=Get release=Put
type Pool struct {
	buckets [len(classSizes)][][]byte
	stats   Stats
	dbg     *debugState // non-nil only under -tags invariants
}

// New creates an empty pool.
func New() *Pool {
	return &Pool{dbg: newDebugState()}
}

// classFor returns the smallest bucket whose capacity holds n, or -1 when n
// exceeds every class.
func classFor(n int) int {
	for i, s := range classSizes {
		if n <= s {
			return i
		}
	}
	return -1
}

// putClass returns the largest bucket whose capacity the buffer satisfies,
// or -1 when the buffer is smaller than every class. Buckets therefore only
// ever hold buffers with cap ≥ the class size, which is what makes a
// bucket hit in Get safe to slice to any n ≤ class size.
func putClass(c int) int {
	for i := len(classSizes) - 1; i >= 0; i-- {
		if c >= classSizes[i] {
			return i
		}
	}
	return -1
}

// Get returns a zeroed buffer of length n, recycling a returned one when
// the size class has stock. The caller owns the buffer until it hands it
// off (Port.Send takes ownership) or returns it with Put.
//
//simlint:hotpath
func (p *Pool) Get(n int) []byte {
	if n <= 0 {
		return nil
	}
	p.stats.InUse++
	if p.stats.InUse > p.stats.Peak {
		p.stats.Peak = p.stats.InUse
	}
	if ci := classFor(n); ci >= 0 {
		if bs := p.buckets[ci]; len(bs) > 0 {
			b := bs[len(bs)-1][:n]
			bs[len(bs)-1] = nil
			p.buckets[ci] = bs[:len(bs)-1]
			for i := range b {
				b[i] = 0
			}
			p.stats.Recycled++
			p.trackGet(b)
			return b
		}
		p.stats.Fresh++
		b := make([]byte, n, classSizes[ci]) //simlint:alloc bucket warm-up; steady state recycles buffers
		p.trackGet(b)
		return b
	}
	p.stats.Fresh++
	b := make([]byte, n) //simlint:alloc oversized frames bypass the pool by design
	p.trackGet(b)
	return b
}

// Put returns a dead buffer to the pool. The caller must hold the only
// live reference: returning a buffer that a scheduled event, a pending
// queue, or a protocol handler can still read is the corruption the
// lifetime analyzer exists to reject. Put accepts foreign buffers (ones
// born from make rather than Get) and nil (a no-op), so drop paths need
// not track a buffer's origin.
//
//simlint:hotpath
func (p *Pool) Put(b []byte) {
	if cap(b) == 0 {
		return
	}
	ci := putClass(cap(b))
	if ci < 0 {
		return
	}
	p.trackPut(b)
	p.stats.InUse--
	p.stats.Returned++
	p.buckets[ci] = append(p.buckets[ci], b[:0]) //simlint:alloc bucket growth is amortized; capacity stabilizes at peak dead-buffer churn
}

// Stats returns a snapshot of the pool's occupancy counters.
func (p *Pool) Stats() Stats { return p.stats }
