//go:build invariants

package framepool

import "repro/internal/invariant"

// Under -tags invariants every buffer the pool has ever touched carries a
// generation counter, bumped each time it is returned. A stale handle — a
// reference taken before a Put — no longer matches the buffer's current
// generation, and Check panics instead of letting the reuse silently
// corrupt a frame in flight. This is the dynamic complement to the static
// lifetime analyzer (DESIGN.md §14).

type debugState struct {
	free map[*byte]bool   // buffers currently sitting in a bucket
	gen  map[*byte]uint32 // bumped on every Put
}

func newDebugState() *debugState {
	return &debugState{free: map[*byte]bool{}, gen: map[*byte]uint32{}}
}

// base identifies a buffer by its backing array's first element, valid for
// any slice with nonzero capacity.
func base(b []byte) *byte { return &b[:cap(b)][0] }

func (p *Pool) trackGet(b []byte) {
	delete(p.dbg.free, base(b))
}

func (p *Pool) trackPut(b []byte) {
	k := base(b)
	invariant.Assert(!p.dbg.free[k], "framepool: double Put of the same buffer")
	p.dbg.free[k] = true
	p.dbg.gen[k]++
}

// Handle captures a buffer's identity and generation for a later staleness
// check.
type Handle struct {
	base *byte
	gen  uint32
}

// Handle snapshots b's current generation. The zero Handle checks clean.
func (p *Pool) Handle(b []byte) Handle {
	if cap(b) == 0 {
		return Handle{}
	}
	k := base(b)
	return Handle{base: k, gen: p.dbg.gen[k]}
}

// Check asserts that the buffer behind h has not been returned to the pool
// since the handle was taken: a mismatch means someone Put a buffer that
// was still in flight (use-after-Put).
func (p *Pool) Check(h Handle) {
	if h.base == nil {
		return
	}
	invariant.Assert(p.dbg.gen[h.base] == h.gen,
		"framepool: buffer recycled while still in flight (use-after-Put)")
}
