package simnet

import (
	"fmt"
	"reflect"
	"testing"
	"time"
)

// traceHandler bounces every frame back n times and records each receipt as
// "(time) node<-frame". Each handler keeps its own trace: the engine's
// identity contract is per-node event order (cross-shard handlers at one
// instant run concurrently), so traces are compared node by node.
type traceHandler struct {
	trace   []string
	bounces int
}

func (h *traceHandler) Start() {}
func (h *traceHandler) PortDown(p *Port) {
	h.trace = append(h.trace, fmt.Sprintf("(%v) %s down%d", p.Node.Sim.Now(), p.Node.Name, p.Index))
}
func (h *traceHandler) PortUp(p *Port) {}
func (h *traceHandler) HandleFrame(p *Port, f []byte) {
	h.trace = append(h.trace, fmt.Sprintf("(%v) %s<-%s", p.Node.Sim.Now(), p.Node.Name, f))
	if h.bounces > 0 {
		h.bounces--
		p.Send(append([]byte(nil), f...))
	}
}

// traceOf collects each node's trace by name.
func traceOf(nodes []*Node) map[string][]string {
	out := make(map[string][]string, len(nodes))
	for _, n := range nodes {
		out[n.Name] = n.Handler.(*traceHandler).trace
	}
	return out
}

// buildLine wires a four-node line a-b-c-d on any engine. On a 2-shard
// cluster, {a,b} land on shard 0 and {c,d} on shard 1, making b-c the one
// cross-partition link (latency = the lookahead).
func buildLine(addNode func(string, int) *Node, connect func(a, b *Port, lat time.Duration) *Link) []*Node {
	names := []string{"a", "b", "c", "d"}
	nodes := make([]*Node, len(names))
	for i, nm := range names {
		nodes[i] = addNode(nm, i/2)
		nodes[i].Handler = &traceHandler{bounces: 3}
	}
	connect(nodes[0].AddPort(), nodes[1].AddPort(), 0)                    // zero-latency intra-partition
	connect(nodes[1].AddPort(), nodes[2].AddPort(), 100*time.Microsecond) // cross-partition: the lookahead
	connect(nodes[2].AddPort(), nodes[3].AddPort(), 40*time.Microsecond)
	return nodes
}

// TestClusterSequentialIdentity pins the core contract on a hand-built
// fabric: the partitioned trace — including deliveries over a zero-latency
// intra-partition link — is identical to the sequential engine's.
func TestClusterSequentialIdentity(t *testing.T) {
	seq := New(7)
	seqNodes := buildLine(func(nm string, _ int) *Node { return seq.AddNode(nm) }, seq.ConnectLatency)

	cl := NewCluster(7, 2)
	parNodes := buildLine(cl.AddNode, cl.ConnectLatency)

	if got := cl.Lookahead(); got != 100*time.Microsecond {
		t.Fatalf("lookahead = %v, want 100µs (the one cross-partition link)", got)
	}
	if got := cl.CrossLinks(); got != 1 {
		t.Fatalf("cross links = %d, want 1", got)
	}

	kick := func(nodes []*Node) {
		nodes[0].Port(1).Send([]byte("ab"))
		nodes[1].Port(2).Send([]byte("bc"))
		nodes[3].Port(1).Send([]byte("dc"))
	}
	seq.Start()
	cl.Start()
	kick(seqNodes)
	kick(parNodes)
	seq.RunUntil(5 * time.Millisecond)
	cl.RunUntil(5 * time.Millisecond)

	seqTrace, parTrace := traceOf(seqNodes), traceOf(parNodes)
	empty := true
	for name, want := range seqTrace {
		if len(want) > 0 {
			empty = false
		}
		if !reflect.DeepEqual(parTrace[name], want) {
			t.Errorf("node %s trace differs:\nsequential:  %v\npartitioned: %v", name, want, parTrace[name])
		}
	}
	if empty {
		t.Fatal("sequential traces empty; fabric did not run")
	}
	if seq.Now() != cl.Now() {
		t.Errorf("clocks differ: sequential %v, partitioned %v", seq.Now(), cl.Now())
	}
}

// TestClusterTimerOnLookaheadHorizon exercises the window-boundary edge: a
// control event scheduled exactly at tmin + L (the end of a synchronization
// window) and a frame arriving at that same instant must interleave exactly
// as the sequential engine interleaves them (control class first).
func TestClusterTimerOnLookaheadHorizon(t *testing.T) {
	build := func(addNode func(string, int) *Node, connect func(a, b *Port, lat time.Duration) *Link) []*Node {
		nodes := []*Node{addNode("a", 0), addNode("b", 1)}
		for _, n := range nodes {
			n.Handler = &traceHandler{}
		}
		connect(nodes[0].AddPort(), nodes[1].AddPort(), 100*time.Microsecond)
		return nodes
	}
	run := func(eng Engine, nodes []*Node) *traceHandler {
		// The control marker is appended to b's own trace so the test can
		// see the interleave; the window barrier sequences the coordinator's
		// append against b's handler, so this is race-free.
		hb := nodes[1].Handler.(*traceHandler)
		eng.Start()
		// The frame sent at 0 arrives at 100µs == 0 + L, exactly on the
		// first window's horizon; the control timer lands on the same
		// instant.
		nodes[0].Port(1).Send([]byte("x"))
		eng.At(100*time.Microsecond, func() {
			hb.trace = append(hb.trace, fmt.Sprintf("(%v) ctrl", eng.Now()))
		})
		eng.RunUntil(time.Millisecond)
		return hb
	}

	seq := New(3)
	seqTrace := run(seq, build(func(nm string, _ int) *Node { return seq.AddNode(nm) }, seq.ConnectLatency)).trace

	cl := NewCluster(3, 2)
	parTrace := run(cl, build(cl.AddNode, cl.ConnectLatency)).trace

	want := []string{"(100µs) ctrl", "(100µs) b<-x"}
	if !reflect.DeepEqual(seqTrace, want) {
		t.Fatalf("sequential trace = %v, want %v", seqTrace, want)
	}
	if !reflect.DeepEqual(parTrace, seqTrace) {
		t.Errorf("partitioned trace = %v, sequential %v", parTrace, seqTrace)
	}
}

// TestClusterRejectsZeroLatencyCrossLink pins the lookahead precondition: a
// zero-latency link may not cross a partition boundary (it would collapse
// the synchronization window to nothing).
func TestClusterRejectsZeroLatencyCrossLink(t *testing.T) {
	cl := NewCluster(1, 2)
	a, b := cl.AddNode("a", 0), cl.AddNode("b", 1)
	defer func() {
		if recover() == nil {
			t.Error("zero-latency cross-partition link did not panic")
		}
	}()
	cl.ConnectLatency(a.AddPort(), b.AddPort(), 0)
}

// TestClusterImpairedCrossLink drops one direction of the only
// cross-partition link mid-run via a control event: deliveries in flight
// keep their arrival times, later sends are lost, and the sequential twin
// agrees bit for bit. (The lookahead never changes — impairing a link does
// not shrink its latency.)
func TestClusterImpairedCrossLink(t *testing.T) {
	build := func(addNode func(string, int) *Node, connect func(a, b *Port, lat time.Duration) *Link) []*Node {
		nodes := []*Node{addNode("a", 0), addNode("b", 1)}
		for _, n := range nodes {
			n.Handler = &traceHandler{bounces: 10}
		}
		connect(nodes[0].AddPort(), nodes[1].AddPort(), 50*time.Microsecond)
		return nodes
	}
	run := func(eng Engine, nodes []*Node) {
		eng.Start()
		nodes[0].Port(1).Send([]byte("p"))
		link := eng.Links()[0]
		eng.At(120*time.Microsecond, func() { link.SetLossRate(1.0) })
		eng.RunUntil(time.Millisecond)
	}

	seq := New(5)
	seqNodes := build(func(nm string, _ int) *Node { return seq.AddNode(nm) }, seq.ConnectLatency)
	run(seq, seqNodes)

	cl := NewCluster(5, 2)
	parNodes := build(cl.AddNode, cl.ConnectLatency)
	run(cl, parNodes)

	seqTrace, parTrace := traceOf(seqNodes), traceOf(parNodes)
	if len(seqTrace["b"]) == 0 {
		t.Fatal("sequential trace empty")
	}
	for name, want := range seqTrace {
		if !reflect.DeepEqual(parTrace[name], want) {
			t.Errorf("node %s trace under impairment:\nsequential:  %v\npartitioned: %v", name, want, parTrace[name])
		}
	}
	if sl, pl := seq.Links()[0].Lost(), cl.Links()[0].Lost(); sl != pl || sl == 0 {
		t.Errorf("loss counters: sequential %d, partitioned %d (want equal and nonzero)", sl, pl)
	}
}
