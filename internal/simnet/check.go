package simnet

import "repro/internal/invariant"

// smallHeapScan is the queue size up to which a heap check verifies every
// entry. Larger queues get a bounded check (the touched index's ancestor
// chain and children) so -tags invariants builds stay usable on the big
// fabric scenarios.
const smallHeapScan = 64

// checkHeap validates the scheduling heap after a mutation that settled
// around index i. Callers guard with invariant.Enabled; the checks are:
//
//   - parent ≤ child under entryLess for every inspected pair,
//   - every inspected entry's event back-pointer (ev.idx) matches its slot.
func (s *Sim) checkHeap(i int) {
	q := s.queue
	n := len(q)
	if n == 0 {
		return
	}
	if n <= smallHeapScan {
		for j := 0; j < n; j++ {
			s.checkEntry(j)
		}
		return
	}
	if i >= n {
		// The mutation shrank the queue past i (heapPop of the last
		// element); fall back to the root.
		i = 0
	}
	// Ancestor chain: O(log n) pairs ending at the root.
	for j := i; j > 0; {
		parent := (j - 1) / 2
		s.checkEntry(j)
		j = parent
	}
	s.checkEntry(0)
	// And one level below the touched slot.
	if l := 2*i + 1; l < n {
		s.checkEntry(l)
	}
	if r := 2*i + 2; r < n {
		s.checkEntry(r)
	}
}

// checkEntry validates slot j's back-pointer and its ordering against its
// parent. The failure paths are split out so the hot success path does not
// allocate (Assertf boxes its variadic arguments unconditionally, which
// would break the allocation-bound forwarding tests under -tags invariants).
func (s *Sim) checkEntry(j int) {
	q := s.queue
	if int(q[j].ev.idx) != j {
		//simlint:alloc invariant failure path; boxes only when the heap is already corrupt
		invariant.Assertf(false,
			"simnet: heap entry %d back-pointer is %d (at=%v seq=%d)",
			j, q[j].ev.idx, q[j].at, q[j].seq)
	}
	if j > 0 {
		parent := (j - 1) / 2
		if entryLess(&q[j], &q[parent]) {
			//simlint:alloc invariant failure path; boxes only when the heap is already corrupt
			invariant.Assertf(false,
				"simnet: heap order broken: entry %d (at=%v seq=%d) < parent %d (at=%v seq=%d)",
				j, q[j].at, q[j].seq, parent, q[parent].at, q[parent].seq)
		}
	}
}
