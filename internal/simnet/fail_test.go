package simnet

import (
	"testing"
	"time"
)

// TestFailLosesFramesInFlight checks that frames already in flight when the
// receiving port fails are dropped at arrival time, matching a real NIC
// losing frames the instant the interface goes down.
func TestFailLosesFramesInFlight(t *testing.T) {
	s, a, b, _, hb := pair(t)
	a.Port(1).Send([]byte("doomed"))
	// Fail the destination before the frame's 100µs flight completes.
	s.RunFor(10 * time.Microsecond)
	b.Port(1).Fail()
	s.RunFor(time.Millisecond)
	if len(hb.frames) != 0 {
		t.Errorf("frame delivered to failed port: %q", hb.frames)
	}
	if got := b.Port(1).Counters.RxDropped; got != 1 {
		t.Errorf("RxDropped = %d, want 1", got)
	}
}

// TestFailLosesFramesInFlightFromFailedSender checks the symmetric case:
// a frame in flight is also lost when the *sending* port fails before it
// lands (the wire died under it).
func TestFailLosesFramesInFlightFromFailedSender(t *testing.T) {
	s, a, _, _, hb := pair(t)
	a.Port(1).Send([]byte("doomed"))
	s.RunFor(10 * time.Microsecond)
	a.Port(1).Fail()
	s.RunFor(time.Millisecond)
	if len(hb.frames) != 0 {
		t.Errorf("frame delivered from failed sender: %q", hb.frames)
	}
}

// TestFailIdempotent checks that failing an already-failed port is a no-op:
// exactly one PortDown reaches the handler, and one Restore undoes it.
func TestFailIdempotent(t *testing.T) {
	s, _, b, _, hb := pair(t)
	b.Port(1).Fail()
	b.Port(1).Fail()
	b.Port(1).Fail()
	s.RunFor(s.LocalDetectDelay + time.Millisecond)
	if len(hb.downs) != 1 {
		t.Errorf("downs = %v, want exactly one PortDown", hb.downs)
	}
	b.Port(1).Restore()
	b.Port(1).Restore()
	s.RunFor(s.LocalDetectDelay + time.Millisecond)
	if len(hb.ups) != 1 {
		t.Errorf("ups = %v, want exactly one PortUp", hb.ups)
	}
}

// TestRestoreBeforeDetectDelaySuppressesPortDown checks a blip shorter than
// LocalDetectDelay: the Fail callback finds the port back up and stays
// silent, the Restore callback reports PortUp. The handler never hears
// about the blip as a failure — the detection delay is a debounce.
func TestRestoreBeforeDetectDelaySuppressesPortDown(t *testing.T) {
	s, _, b, _, hb := pair(t)
	b.Port(1).Fail()
	s.RunFor(s.LocalDetectDelay / 2)
	b.Port(1).Restore()
	s.RunFor(2 * s.LocalDetectDelay)
	if len(hb.downs) != 0 {
		t.Errorf("downs = %v, want none for a sub-detect-delay blip", hb.downs)
	}
	if len(hb.ups) != 1 {
		t.Errorf("ups = %v, want one PortUp", hb.ups)
	}
}

// TestRestoreOrderingVsPendingDelivery pins the arrival-time semantics of
// port status: a frame arriving inside the down window is dropped and a
// later Restore does not resurrect it, while a frame launched during the
// blip whose flight outlives the blip is delivered, because only the
// status at arrival matters.
func TestRestoreOrderingVsPendingDelivery(t *testing.T) {
	s := New(1)
	a, b := s.AddNode("a"), s.AddNode("b")
	hb := &echoHandler{}
	b.Handler = hb
	// A long wire so the failure window fits inside one flight.
	s.ConnectLatency(a.AddPort(), b.AddPort(), time.Millisecond)

	// Launched before the blip, arrives at 1ms — inside the 900µs..1.1ms
	// down window — so it is lost for good.
	a.Port(1).Send([]byte("arrives-mid-blip"))
	s.RunFor(900 * time.Microsecond)
	b.Port(1).Fail()
	s.RunFor(150 * time.Microsecond)
	// Launched during the blip, arrives at ~2.05ms, after the restore:
	// delivered, even though the destination was down at launch time.
	a.Port(1).Send([]byte("outlives-the-blip"))
	s.RunFor(50 * time.Microsecond)
	b.Port(1).Restore()
	s.RunFor(10 * time.Millisecond)

	if len(hb.frames) != 1 || hb.frames[0] != "outlives-the-blip" {
		t.Errorf("delivered %q, want exactly [outlives-the-blip]", hb.frames)
	}
	if got := b.Port(1).Counters.RxDropped; got != 1 {
		t.Errorf("RxDropped = %d, want 1 (the frame that arrived mid-blip)", got)
	}
}

// TestSendWhileDownCountsTxDrop checks that transmitting out a failed port
// is booked as a TX drop and nothing is scheduled.
func TestSendWhileDownCountsTxDrop(t *testing.T) {
	s, a, _, _, hb := pair(t)
	a.Port(1).Fail()
	a.Port(1).Send([]byte("nope"))
	s.RunFor(time.Millisecond)
	if len(hb.frames) != 0 {
		t.Errorf("delivered %q from a down port", hb.frames)
	}
	if got := a.Port(1).Counters.TxDropped; got != 1 {
		t.Errorf("TxDropped = %d, want 1", got)
	}
}
