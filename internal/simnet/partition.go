package simnet

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"repro/internal/invariant"
	"repro/internal/simnet/framepool"
)

// This file implements the space-parallel engine: one fabric partitioned
// across worker goroutines, each owning a shard of the devices and their
// event heap, synchronized conservatively on the minimum inter-partition
// link latency (the lookahead window).
//
// The algorithm is the classic synchronous conservative PDES loop
// ("Modeling Extreme-Scale Interconnection Networks", PAPERS.md):
//
//  1. The coordinator computes the global lower bound tmin — the earliest
//     unprocessed event across every shard heap and every in-flight
//     cross-partition frame.
//  2. Every shard may safely process events strictly before tmin + L, where
//     L is the minimum latency of any cross-partition link: a frame sent by
//     another shard at or after tmin cannot arrive before tmin + L.
//  3. Shards run their windows in parallel. Frames crossing a partition
//     boundary are appended to per-(src shard, dst shard) SPSC outboxes —
//     the only shared structures — and handed to the destination shard at
//     the next barrier.
//
// Determinism does not come from the barriers (they only bound how far a
// shard may run ahead) but from the total event order (at, prio, tie, seq)
// established in event.go: every event carries an engine-independent key,
// so each shard's heap pops its events in exactly the relative order the
// sequential engine would, whatever the wall-clock interleaving.
//
// Control events — everything scheduled through the Cluster itself rather
// than through a node (harness failure injection, chaos campaign closures,
// workload launches, telemetry sampling) — live on a dedicated control Sim
// owned by the coordinator. They run at their exact virtual time with every
// shard quiesced, which makes arbitrary cross-shard mutation (failing
// ports, installing impairments, reading counters) race-free by
// construction. The sequential engine gives control-class events the lowest
// prio at an instant, so both engines interleave them identically.

// Engine is the scheduling surface shared by the sequential *Sim and the
// partitioned *Cluster: everything the harness, chaos injector, workload
// generator and telemetry need to drive a fabric.
type Engine interface {
	Now() time.Duration
	Rand() *rand.Rand
	Events() uint64
	Start()
	RunUntil(t time.Duration)
	RunFor(d time.Duration)
	RunUntilIdle(maxTime time.Duration)
	Node(name string) *Node
	Nodes() []*Node
	Links() []*Link
	At(t time.Duration, fn func()) *Timer
	After(d time.Duration, fn func()) *Timer
	Schedule(d time.Duration, fn func())
	FrameStats() framepool.Stats
}

var (
	_ Engine = (*Sim)(nil)
	_ Engine = (*Cluster)(nil)
)

// maxDur is the "no event" sentinel time.
const maxDur = time.Duration(math.MaxInt64)

// crossFrame is one frame delivery in flight between partitions, carrying
// its full ordering key so the destination shard enqueues it exactly where
// the sequential engine would have.
type crossFrame struct {
	at    time.Duration
	prio  uint32
	tie   uint64
	src   *Port
	dst   *Port
	link  *Link
	frame []byte
}

// crossQueue is the outbox for one directed (src shard, dst shard) pair.
// It is single-producer (the source shard appends during its window) and
// single-consumer (the coordinator swaps it out at the barrier); the barrier
// itself provides the happens-before edges, so no lock is needed.
type crossQueue struct {
	buf []crossFrame
}

// ShardStats is one partition's accounting.
type ShardStats struct {
	// Nodes is the number of devices assigned to the shard.
	Nodes int
	// Events is the number of events the shard processed.
	Events uint64
	// Busy is the wall-clock time the shard's worker spent processing
	// windows (perf accounting; virtual results never depend on it).
	Busy time.Duration
}

// Cluster is a fabric partitioned across shards, presented behind the same
// Engine surface as a sequential Sim. Build it with NewCluster, place every
// node with AddNode, wire links with Connect/ConnectLatency, then use it
// exactly like a Sim. Runs are bit-identical to a sequential Sim built in
// the same order with the same seed.
type Cluster struct {
	shards   []*Sim
	shardOf  map[*Sim]int
	ctrl     *Sim // control-event queue + the Rand() stream
	nodes    map[string]*Node
	order    []*Node
	links    []*Link
	crossCnt int

	queues  [][]*crossQueue // [src shard][dst shard] outboxes
	pending [][]crossFrame  // frames awaiting injection, per dst shard
	busy    []time.Duration // per-shard wall-clock accounting

	// lookahead is the minimum cross-partition link latency L.
	lookahead time.Duration

	// OnQuiesce, when non-nil, runs at the end of every RunUntil with all
	// shards quiesced — the harness uses it to merge per-shard metric logs.
	OnQuiesce func()

	started bool
}

// NewCluster creates a partitioned engine with the given shard count. Every
// shard is seeded identically to a sequential Sim, so per-node and
// per-direction random streams match a sequential run bit for bit.
func NewCluster(seed int64, shards int) *Cluster {
	if shards < 1 {
		panic(fmt.Sprintf("simnet: cluster needs at least 1 shard, got %d", shards))
	}
	c := &Cluster{
		shardOf:   make(map[*Sim]int, shards),
		ctrl:      New(seed),
		nodes:     make(map[string]*Node),
		queues:    make([][]*crossQueue, shards),
		pending:   make([][]crossFrame, shards),
		busy:      make([]time.Duration, shards),
		lookahead: maxDur,
	}
	for i := 0; i < shards; i++ {
		sh := New(seed)
		c.shards = append(c.shards, sh)
		c.shardOf[sh] = i
		c.queues[i] = make([]*crossQueue, shards)
	}
	return c
}

// Shards returns the shard count.
func (c *Cluster) Shards() int { return len(c.shards) }

// FrameStats sums the frame-pool occupancy counters across every shard
// (cross-partition deliveries are adopted by the receiving shard's pool, so
// the aggregate stays balanced). Peak is summed per shard, an upper bound on
// the true simultaneous peak.
func (c *Cluster) FrameStats() framepool.Stats {
	var agg framepool.Stats
	for _, sh := range c.shards {
		s := sh.FrameStats()
		agg.InUse += s.InUse
		agg.Peak += s.Peak
		agg.Recycled += s.Recycled
		agg.Fresh += s.Fresh
		agg.Returned += s.Returned
	}
	return agg
}

// Lookahead returns the synchronization window L (the minimum
// cross-partition link latency), or 0 when no link crosses a boundary.
func (c *Cluster) Lookahead() time.Duration {
	if c.lookahead == maxDur {
		return 0
	}
	return c.lookahead
}

// AddNode creates a node on the given shard. Nodes must be added in the
// same (sorted-name) order as the equivalent sequential build: the global
// rank assigned here feeds MAC addresses and frame tie keys.
func (c *Cluster) AddNode(name string, shard int) *Node {
	if shard < 0 || shard >= len(c.shards) {
		panic(fmt.Sprintf("simnet: node %s assigned to shard %d of %d", name, shard, len(c.shards)))
	}
	if _, dup := c.nodes[name]; dup {
		panic("simnet: duplicate node name " + name)
	}
	n := c.shards[shard].AddNode(name)
	n.gid = int32(len(c.order))
	c.nodes[name] = n
	c.order = append(c.order, n)
	return n
}

// Node returns a node by name, or nil.
func (c *Cluster) Node(name string) *Node { return c.nodes[name] }

// Nodes returns every node in insertion order.
func (c *Cluster) Nodes() []*Node { return append([]*Node(nil), c.order...) }

// ShardOf returns the shard index owning the node.
func (c *Cluster) ShardOf(n *Node) int { return c.shardOf[n.Sim] }

// Connect wires two ports with the control Sim's default latency.
func (c *Cluster) Connect(a, b *Port) *Link {
	return c.ConnectLatency(a, b, c.ctrl.DefaultLatency)
}

// ConnectLatency wires two ports with an explicit one-way latency. A link
// whose endpoints live on different shards becomes a cross-partition link:
// its latency must be positive (it is the engine's lookahead) and its
// per-direction state routes deliveries through the shard-pair outboxes.
func (c *Cluster) ConnectLatency(a, b *Port, latency time.Duration) *Link {
	sa, oka := c.shardOf[a.Node.Sim]
	sb, okb := c.shardOf[b.Node.Sim]
	if !oka || !okb {
		panic(fmt.Sprintf("simnet: cluster connect of foreign ports %s <-> %s", a.Name(), b.Name()))
	}
	if sa == sb {
		l := c.shards[sa].ConnectLatency(a, b, latency)
		c.links = append(c.links, l)
		return l
	}
	if latency <= 0 {
		panic(fmt.Sprintf("simnet: cross-partition link %s <-> %s needs positive latency (it bounds the lookahead window)", a.Name(), b.Name()))
	}
	if a.Link != nil || b.Link != nil {
		panic(fmt.Sprintf("simnet: port already wired: %s <-> %s", a.Name(), b.Name()))
	}
	l := &Link{A: a, B: b, Latency: latency}
	a.Link = l
	b.Link = l
	l.dirA.cross = c.queue(sa, sb)
	l.dirB.cross = c.queue(sb, sa)
	c.links = append(c.links, l)
	c.crossCnt++
	if latency < c.lookahead {
		c.lookahead = latency
	}
	return l
}

// queue returns (creating on demand) the outbox for the directed shard pair.
func (c *Cluster) queue(from, to int) *crossQueue {
	if c.queues[from][to] == nil {
		c.queues[from][to] = &crossQueue{}
	}
	return c.queues[from][to]
}

// Links returns every link in creation order.
func (c *Cluster) Links() []*Link { return c.links }

// CrossLinks returns how many links cross a partition boundary.
func (c *Cluster) CrossLinks() int { return c.crossCnt }

// Now returns the current virtual time.
func (c *Cluster) Now() time.Duration { return c.ctrl.Now() }

// Rand exposes the deterministic control random stream — the same stream a
// sequential Sim hands out, consumed by the same (single-threaded) harness
// code, so draws match sequential runs exactly.
func (c *Cluster) Rand() *rand.Rand { return c.ctrl.Rand() }

// Events returns the number of events processed across all shards and the
// control queue.
func (c *Cluster) Events() uint64 {
	total := c.ctrl.Events()
	for _, sh := range c.shards {
		total += sh.Events()
	}
	return total
}

// At schedules fn at absolute virtual time t as a control event: it runs on
// the coordinator with every shard quiesced at exactly t, and may therefore
// touch any node, port or link in the fabric.
func (c *Cluster) At(t time.Duration, fn func()) *Timer { return c.ctrl.At(t, fn) }

// After schedules fn d from now as a control event.
func (c *Cluster) After(d time.Duration, fn func()) *Timer { return c.ctrl.After(d, fn) }

// Schedule runs fn d from now as a control event (no handle).
func (c *Cluster) Schedule(d time.Duration, fn func()) { c.ctrl.Schedule(d, fn) }

// Start invokes Start on every attached handler, shard by shard. Within a
// shard, handlers start in sorted-name order; because every initial event
// carries its owning node's key, the start order across shards is
// immaterial to the event order.
func (c *Cluster) Start() {
	if c.started {
		return
	}
	c.started = true
	for _, sh := range c.shards {
		sh.Start()
	}
}

// ShardTimings returns per-shard accounting (device count, events
// processed, wall-clock busy time).
func (c *Cluster) ShardTimings() []ShardStats {
	out := make([]ShardStats, len(c.shards))
	for i, sh := range c.shards {
		out[i] = ShardStats{Nodes: len(sh.nodeOrder), Events: sh.Events(), Busy: c.busy[i]}
	}
	return out
}

// ctrlNext returns the next pending control event's time.
func (c *Cluster) ctrlNext() time.Duration {
	if len(c.ctrl.queue) == 0 {
		return maxDur
	}
	return c.ctrl.queue[0].at
}

// nextEventTime returns the earliest unprocessed shard event, including
// cross-partition frames awaiting injection (their arrival times are not
// monotone within an outbox — jitter reorders them — so the pending sets
// are scanned).
func (c *Cluster) nextEventTime() time.Duration {
	min := maxDur
	for _, sh := range c.shards {
		if len(sh.queue) > 0 && sh.queue[0].at < min {
			min = sh.queue[0].at
		}
	}
	for _, pend := range c.pending {
		for i := range pend {
			if pend[i].at < min {
				min = pend[i].at
			}
		}
	}
	return min
}

// setShardNow advances every shard's clock to t (never backwards). Safe
// only at quiescent points with no unprocessed shard event before t.
func (c *Cluster) setShardNow(t time.Duration) {
	for _, sh := range c.shards {
		if t > sh.now {
			sh.now = t
		}
	}
}

// collectOutboxes drains every shard-pair outbox into the per-destination
// pending sets. Runs only on the coordinator with all workers idle (the
// window barrier provides the happens-before edge), so no lock is needed.
// It must run before each window computation: frames buffered by handler
// Start calls, control closures, or the previous window are otherwise
// invisible to nextEventTime.
func (c *Cluster) collectOutboxes() {
	for i := range c.queues {
		for j, q := range c.queues[i] {
			if q != nil && len(q.buf) > 0 {
				c.pending[j] = append(c.pending[j], q.buf...)
				for k := range q.buf {
					q.buf[k] = crossFrame{} // drop frame references
				}
				q.buf = q.buf[:0]
			}
		}
	}
}

// step runs one synchronized window on every shard in parallel: each worker
// first injects the cross-partition frames collected for it, then processes
// events strictly before end (or through end when inclusive).
func (c *Cluster) step(end time.Duration, inclusive bool) {
	var wg sync.WaitGroup
	panics := make([]any, len(c.shards))
	for i, sh := range c.shards {
		wg.Add(1)
		go func(i int, sh *Sim, pend []crossFrame) {
			defer wg.Done()
			defer func() { panics[i] = recover() }()
			start := time.Now() //simlint:deterministic wall-clock perf accounting; virtual results never read it
			for k := range pend {
				sh.injectFrame(pend[k])
			}
			if inclusive {
				sh.RunUntil(end)
			} else {
				sh.runBefore(end)
			}
			c.busy[i] += time.Since(start) //simlint:deterministic wall-clock perf accounting; virtual results never read it
		}(i, sh, c.pending[i])
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
	for i := range c.pending {
		c.pending[i] = c.pending[i][:0]
	}
}

// RunUntil processes every event scheduled at or before t across all
// shards, then advances every clock to exactly t. The result is
// bit-identical to a sequential Sim's RunUntil over the same fabric.
func (c *Cluster) RunUntil(t time.Duration) {
	for {
		c.collectOutboxes()
		tc := c.ctrlNext()
		tmin := c.nextEventTime()
		if tc > t && tmin > t {
			break
		}
		if tc <= tmin {
			// Control events run first at their instant: shards are
			// quiesced strictly before tc, their clocks moved to tc so
			// anything the closures schedule lands at the right time.
			c.setShardNow(tc)
			c.ctrl.RunUntil(tc)
			continue
		}
		// Window [tmin, end): safe because no cross-partition frame sent at
		// or after tmin can arrive before tmin + L, and no control event
		// fires before end ≤ tc.
		end := tmin + c.lookahead
		if end < tmin { // overflow (no cross links: lookahead is maxDur)
			end = maxDur
		}
		if tc < end {
			end = tc
		}
		if t < end {
			// Final step: every event at or before t is safe to process
			// (cross arrivals generated inside land strictly after t), and
			// t < tc so no control event is skipped.
			c.step(t, true)
			break
		}
		c.step(end, false)
	}
	c.setShardNow(t)
	c.ctrl.RunUntil(t)
	if invariant.Enabled {
		c.checkQuiesced(t)
	}
	if c.OnQuiesce != nil {
		c.OnQuiesce()
	}
}

// RunFor advances the whole fabric by d.
func (c *Cluster) RunFor(d time.Duration) { c.RunUntil(c.ctrl.Now() + d) }

// RunUntilIdle drains the fabric up to the maxTime horizon.
func (c *Cluster) RunUntilIdle(maxTime time.Duration) { c.RunUntil(maxTime) }

// checkQuiesced asserts the post-RunUntil contract under -tags invariants:
// every clock sits exactly at t and no unprocessed event is at or before t.
func (c *Cluster) checkQuiesced(t time.Duration) {
	invariant.Assertf(c.ctrl.now == t, "simnet: control clock %v after RunUntil(%v)", c.ctrl.now, t)
	for i, sh := range c.shards {
		invariant.Assertf(sh.now == t, "simnet: shard %d clock %v after RunUntil(%v)", i, sh.now, t)
		if len(sh.queue) > 0 {
			invariant.Assertf(sh.queue[0].at > t, "simnet: shard %d event at %v unprocessed after RunUntil(%v)", i, sh.queue[0].at, t)
		}
	}
	for i, pend := range c.pending {
		for k := range pend {
			invariant.Assertf(pend[k].at > t, "simnet: pending cross frame at %v for shard %d after RunUntil(%v)", pend[k].at, i, t)
		}
	}
}

// injectFrame enqueues a cross-partition delivery handed over at a barrier.
func (s *Sim) injectFrame(f crossFrame) {
	if f.at < s.now {
		panic(fmt.Sprintf("simnet: cross frame at %v injected before now %v", f.at, s.now))
	}
	ev := s.alloc()
	ev.kind = evFrame
	ev.src, ev.dst, ev.link, ev.frame = f.src, f.dst, f.link, f.frame
	s.seq++
	s.heapPush(heapEntry{at: f.at, prio: f.prio, tie: f.tie, seq: s.seq, ev: ev})
}
