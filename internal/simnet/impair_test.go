package simnet

import (
	"bytes"
	"testing"
	"time"
)

// TestImpairAsymmetricLoss checks that a LossRate impairment on one
// direction blackholes only that direction and books the drops on the
// right per-direction counter.
func TestImpairAsymmetricLoss(t *testing.T) {
	s, a, b, ha, hb := pair(t)
	link := a.Port(1).Link
	link.Impair(a.Port(1), Impairment{LossRate: 1})

	a.Port(1).Send([]byte("to-b"))
	b.Port(1).Send([]byte("to-a"))
	s.RunFor(time.Millisecond)

	if len(hb.frames) != 0 {
		t.Errorf("impaired direction delivered %q, want nothing", hb.frames)
	}
	if len(ha.frames) != 1 || ha.frames[0] != "to-a" {
		t.Errorf("clean reverse direction got %q, want [to-a]", ha.frames)
	}
	if got := link.Stats(a.Port(1)).Lost; got != 1 {
		t.Errorf("Stats(a).Lost = %d, want 1", got)
	}
	if got := link.Stats(b.Port(1)).Lost; got != 0 {
		t.Errorf("Stats(b).Lost = %d, want 0", got)
	}
	if link.Lost() != 1 {
		t.Errorf("link.Lost() = %d, want 1", link.Lost())
	}
}

// TestImpairCorruption checks that CorruptRate flips exactly one byte of
// the delivered frame and counts it per direction.
func TestImpairCorruption(t *testing.T) {
	s, a, b, ha, hb := pair(t)
	link := a.Port(1).Link
	link.Impair(a.Port(1), Impairment{CorruptRate: 1})

	orig := []byte{0x10, 0x20, 0x30, 0x40}
	a.Port(1).Send(append([]byte(nil), orig...))
	b.Port(1).Send(append([]byte(nil), orig...))
	s.RunFor(time.Millisecond)

	if len(hb.frames) != 1 {
		t.Fatalf("corrupted direction delivered %d frames, want 1", len(hb.frames))
	}
	diff := 0
	got := []byte(hb.frames[0])
	for i := range orig {
		if got[i] != orig[i] {
			diff++
			if got[i] != orig[i]^0xFF {
				t.Errorf("byte %d = %#x, want %#x (single-bit-error model flips the whole byte)", i, got[i], orig[i]^0xFF)
			}
		}
	}
	if diff != 1 {
		t.Errorf("%d bytes differ, want exactly 1 (got % x, sent % x)", diff, got, orig)
	}
	if len(ha.frames) != 1 || !bytes.Equal([]byte(ha.frames[0]), orig) {
		t.Errorf("clean reverse direction got %q, want pristine frame", ha.frames)
	}
	if got := link.Stats(a.Port(1)).Corrupted; got != 1 {
		t.Errorf("Stats(a).Corrupted = %d, want 1", got)
	}
	if got := link.Stats(b.Port(1)).Corrupted; got != 0 {
		t.Errorf("Stats(b).Corrupted = %d, want 0", got)
	}
	if link.Corrupted() != 1 {
		t.Errorf("link.Corrupted() = %d, want 1", link.Corrupted())
	}
}

// TestImpairExtraLatency checks the deterministic delay component: arrival
// is link latency plus ExtraLatency exactly.
func TestImpairExtraLatency(t *testing.T) {
	s, a, _, _, hb := pair(t)
	link := a.Port(1).Link
	link.Impair(a.Port(1), Impairment{ExtraLatency: 2 * time.Millisecond})

	var arrived time.Duration
	hb.onRx = func(*Port, []byte) { arrived = s.Now() }
	a.Port(1).Send([]byte("x"))
	s.RunFor(10 * time.Millisecond)

	want := link.Latency + 2*time.Millisecond
	if arrived != want {
		t.Errorf("arrival at %v, want %v", arrived, want)
	}
}

// TestImpairJitterBoundsAndDeterminism checks that jitter delays each frame
// by a value in [0, Jitter) and that the same seed reproduces the same
// arrival times.
func TestImpairJitterBoundsAndDeterminism(t *testing.T) {
	run := func(seed int64) []time.Duration {
		s := New(seed)
		a, b := s.AddNode("a"), s.AddNode("b")
		hb := &echoHandler{}
		b.Handler = hb
		link := s.Connect(a.AddPort(), b.AddPort())
		link.Impair(a.Port(1), Impairment{Jitter: time.Millisecond})
		var arrivals []time.Duration
		hb.onRx = func(*Port, []byte) { arrivals = append(arrivals, s.Now()) }
		for i := 0; i < 32; i++ {
			at := time.Duration(i) * 2 * time.Millisecond
			s.At(at, func() { a.Port(1).Send([]byte("j")) })
		}
		s.RunFor(100 * time.Millisecond)
		if len(arrivals) != 32 {
			t.Fatalf("delivered %d frames, want 32", len(arrivals))
		}
		for i, at := range arrivals {
			base := time.Duration(i)*2*time.Millisecond + s.DefaultLatency
			if at < base || at >= base+time.Millisecond {
				t.Errorf("frame %d arrived at %v, want in [%v, %v)", i, at, base, base+time.Millisecond)
			}
		}
		return arrivals
	}
	first, second := run(42), run(42)
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("same seed diverged: frame %d arrived at %v then %v", i, first[i], second[i])
		}
	}
}

// TestImpairDownAndClear checks that Down blackholes a direction while the
// ports stay administratively up, and that ClearImpairments restores a
// clean wire.
func TestImpairDownAndClear(t *testing.T) {
	s, a, b, ha, hb := pair(t)
	link := a.Port(1).Link
	link.Impair(a.Port(1), Impairment{Down: true})

	if got := link.Impaired(a.Port(1)); !got.Down {
		t.Errorf("Impaired(a) = %+v, want Down", got)
	}
	a.Port(1).Send([]byte("eaten"))
	b.Port(1).Send([]byte("reverse"))
	s.RunFor(time.Millisecond)
	if len(hb.frames) != 0 {
		t.Errorf("one-way down direction delivered %q", hb.frames)
	}
	if len(ha.frames) != 1 {
		t.Errorf("reverse direction got %q, want [reverse]", ha.frames)
	}
	// Neither endpoint saw a carrier event: the ports are still up.
	if len(ha.downs)+len(hb.downs) != 0 {
		t.Errorf("one-way Down raised port events: a=%v b=%v", ha.downs, hb.downs)
	}
	if got := link.Stats(a.Port(1)).Lost; got != 1 {
		t.Errorf("Stats(a).Lost = %d, want 1", got)
	}

	link.ClearImpairments()
	a.Port(1).Send([]byte("healed"))
	s.RunFor(time.Millisecond)
	if len(hb.frames) != 1 || hb.frames[0] != "healed" {
		t.Errorf("after ClearImpairments got %q, want [healed]", hb.frames)
	}
}

// TestCarrierFaultOneSided checks the one-way fiber-cut model: only the
// local handler hears PortDown, the port stays administratively up so its
// transmitter keeps working, and CarrierRestore reports recovery.
func TestCarrierFaultOneSided(t *testing.T) {
	s, _, b, ha, hb := pair(t)

	b.Port(1).CarrierFault()
	s.RunFor(s.LocalDetectDelay + time.Millisecond)
	if len(hb.downs) != 1 {
		t.Fatalf("victim downs = %v, want one PortDown", hb.downs)
	}
	if len(ha.downs) != 0 {
		t.Errorf("peer downs = %v, want none (one-way fault)", ha.downs)
	}
	// The victim's transmitter still works: frames b->a deliver.
	b.Port(1).Send([]byte("still-talking"))
	s.RunFor(time.Millisecond)
	if len(ha.frames) != 1 || ha.frames[0] != "still-talking" {
		t.Errorf("victim TX after carrier fault got %q, want [still-talking]", ha.frames)
	}

	b.Port(1).CarrierRestore()
	s.RunFor(s.LocalDetectDelay + time.Millisecond)
	if len(hb.ups) != 1 {
		t.Errorf("victim ups = %v, want one PortUp", hb.ups)
	}
	if len(ha.ups) != 0 {
		t.Errorf("peer ups = %v, want none", ha.ups)
	}
}

// TestCarrierFaultOnDownPort checks that a port that is administratively
// down reports neither carrier loss nor carrier recovery.
func TestCarrierFaultOnDownPort(t *testing.T) {
	s, _, b, _, hb := pair(t)
	b.Port(1).Fail()
	s.RunFor(s.LocalDetectDelay + time.Millisecond)
	hb.downs, hb.ups = nil, nil

	b.Port(1).CarrierFault()
	b.Port(1).CarrierRestore()
	s.RunFor(s.LocalDetectDelay + time.Millisecond)
	if len(hb.downs) != 0 || len(hb.ups) != 0 {
		t.Errorf("admin-down port reported carrier events: downs=%v ups=%v", hb.downs, hb.ups)
	}
}

// TestImpairPreservesCleanRNGOrder checks the determinism contract behind
// the impaired flag: installing and clearing an impairment on one link must
// not shift the RNG draw sequence of unrelated clean-link traffic.
func TestImpairPreservesCleanRNGOrder(t *testing.T) {
	run := func(touchImpairment bool) []string {
		s := New(7)
		a, b := s.AddNode("a"), s.AddNode("b")
		ha, hb := &echoHandler{}, &echoHandler{}
		a.Handler, b.Handler = ha, hb
		link := s.Connect(a.AddPort(), b.AddPort())
		// A lossy link makes delivery depend on the RNG stream.
		link.SetLossRate(0.5)
		if touchImpairment {
			other := s.Connect(a.AddPort(), b.AddPort())
			other.Impair(a.Port(2), Impairment{LossRate: 0.9, CorruptRate: 0.9, Jitter: time.Millisecond})
			other.ClearImpairments()
		}
		for i := 0; i < 64; i++ {
			at := time.Duration(i) * time.Millisecond
			s.At(at, func() {
				// Interleaved traffic over the second (clean, previously
				// impaired) link must not consume RNG draws.
				if touchImpairment {
					a.Port(2).Send([]byte("noise"))
				}
				a.Port(1).Send([]byte{byte(i)})
			})
		}
		s.RunFor(200 * time.Millisecond)
		var survivors []string
		for _, f := range hb.frames {
			if f != "noise" {
				survivors = append(survivors, f)
			}
		}
		return survivors
	}
	clean, touched := run(false), run(true)
	if len(clean) != len(touched) {
		t.Fatalf("survivor count changed: %d vs %d", len(clean), len(touched))
	}
	for i := range clean {
		if clean[i] != touched[i] {
			t.Fatalf("survivor %d differs: %q vs %q", i, clean[i], touched[i])
		}
	}
}
