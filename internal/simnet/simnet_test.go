package simnet

import (
	"testing"
	"testing/quick"
	"time"
)

// echoHandler records frames and port events for assertions.
type echoHandler struct {
	frames []string
	downs  []int
	ups    []int
	onRx   func(p *Port, frame []byte)
}

func (h *echoHandler) Start()           {}
func (h *echoHandler) PortDown(p *Port) { h.downs = append(h.downs, p.Index) }
func (h *echoHandler) PortUp(p *Port)   { h.ups = append(h.ups, p.Index) }
func (h *echoHandler) HandleFrame(p *Port, f []byte) {
	h.frames = append(h.frames, string(f))
	if h.onRx != nil {
		h.onRx(p, f)
	}
}

func pair(t *testing.T) (*Sim, *Node, *Node, *echoHandler, *echoHandler) {
	t.Helper()
	s := New(1)
	a := s.AddNode("a")
	b := s.AddNode("b")
	ha, hb := &echoHandler{}, &echoHandler{}
	a.Handler, b.Handler = ha, hb
	s.Connect(a.AddPort(), b.AddPort())
	return s, a, b, ha, hb
}

func TestFrameDelivery(t *testing.T) {
	s, a, _, _, hb := pair(t)
	a.Port(1).Send([]byte("hello"))
	s.RunFor(time.Millisecond)
	if len(hb.frames) != 1 || hb.frames[0] != "hello" {
		t.Fatalf("frames = %q, want [hello]", hb.frames)
	}
	if got := a.Port(1).Counters.TxFrames; got != 1 {
		t.Errorf("TxFrames = %d, want 1", got)
	}
}

func TestDeliveryLatency(t *testing.T) {
	s := New(1)
	a, b := s.AddNode("a"), s.AddNode("b")
	hb := &echoHandler{}
	b.Handler = hb
	var arrived time.Duration
	hb.onRx = func(*Port, []byte) { arrived = s.Now() }
	s.ConnectLatency(a.AddPort(), b.AddPort(), 250*time.Microsecond)
	a.Port(1).Send([]byte("x"))
	s.RunFor(time.Millisecond)
	if arrived != 250*time.Microsecond {
		t.Errorf("arrival at %v, want 250µs", arrived)
	}
}

func TestEventOrderingFIFOAtSameTime(t *testing.T) {
	s := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(time.Millisecond, func() { order = append(order, i) })
	}
	s.RunFor(2 * time.Millisecond)
	for i, v := range order {
		if v != i {
			t.Fatalf("events at same timestamp fired out of order: %v", order)
		}
	}
}

func TestEventOrderingByTime(t *testing.T) {
	// Property: regardless of scheduling order, callbacks fire in
	// non-decreasing time order.
	f := func(delays []uint16) bool {
		s := New(1)
		var fired []time.Duration
		for _, d := range delays {
			s.After(time.Duration(d)*time.Microsecond, func() { fired = append(fired, s.Now()) })
		}
		s.RunFor(time.Second)
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(delays)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTimerStop(t *testing.T) {
	s := New(1)
	fired := false
	tm := s.After(time.Millisecond, func() { fired = true })
	if !tm.Stop() {
		t.Error("Stop() = false on pending timer")
	}
	if tm.Stop() {
		t.Error("second Stop() = true")
	}
	s.RunFor(10 * time.Millisecond)
	if fired {
		t.Error("stopped timer fired")
	}
}

func TestTimerReset(t *testing.T) {
	s := New(1)
	var firedAt time.Duration
	tm := s.After(time.Millisecond, func() { firedAt = s.Now() })
	s.RunFor(500 * time.Microsecond)
	tm.Reset(2 * time.Millisecond) // now fires at 2.5ms
	s.RunFor(10 * time.Millisecond)
	if firedAt != 2500*time.Microsecond {
		t.Errorf("fired at %v, want 2.5ms", firedAt)
	}
}

func TestTimerResetRepeated(t *testing.T) {
	s := New(1)
	count := 0
	tm := s.After(time.Millisecond, func() { count++ })
	for i := 0; i < 5; i++ {
		tm.Reset(time.Millisecond)
	}
	s.RunFor(10 * time.Millisecond)
	if count != 1 {
		t.Errorf("timer fired %d times after repeated Reset, want 1", count)
	}
}

func TestPortFailLocalNotificationOnly(t *testing.T) {
	s, a, _, ha, hb := pair(t)
	a.Port(1).Fail()
	s.RunFor(10 * time.Millisecond)
	if len(ha.downs) != 1 || ha.downs[0] != 1 {
		t.Errorf("local node downs = %v, want [1]", ha.downs)
	}
	if len(hb.downs) != 0 {
		t.Errorf("peer got PortDown %v; the paper's failure model keeps the peer unaware", hb.downs)
	}
}

func TestFailedPortDropsTxAndRx(t *testing.T) {
	s, a, b, _, hb := pair(t)
	a.Port(1).Fail()
	s.RunFor(10 * time.Millisecond)
	a.Port(1).Send([]byte("into the void"))
	b.Port(1).Send([]byte("to a dead port"))
	s.RunFor(10 * time.Millisecond)
	if len(hb.frames) != 0 {
		t.Errorf("frames delivered from failed port: %v", hb.frames)
	}
	if a.Port(1).Counters.TxDropped != 1 {
		t.Errorf("TxDropped = %d, want 1", a.Port(1).Counters.TxDropped)
	}
	if a.Port(1).Counters.RxDropped != 1 {
		t.Errorf("RxDropped = %d, want 1", a.Port(1).Counters.RxDropped)
	}
}

func TestFrameInFlightLostOnFailure(t *testing.T) {
	s, a, b, _, hb := pair(t)
	a.Port(1).Send([]byte("racing the failure"))
	b.Port(1).Fail() // frame is in flight; receiving port dies first
	s.RunFor(10 * time.Millisecond)
	if len(hb.frames) != 0 {
		t.Errorf("in-flight frame delivered to failed port: %v", hb.frames)
	}
}

func TestRestore(t *testing.T) {
	s, a, _, ha, hb := pair(t)
	a.Port(1).Fail()
	s.RunFor(10 * time.Millisecond)
	a.Port(1).Restore()
	s.RunFor(10 * time.Millisecond)
	if len(ha.ups) != 1 {
		t.Errorf("ups = %v, want one PortUp", ha.ups)
	}
	a.Port(1).Send([]byte("back"))
	s.RunFor(10 * time.Millisecond)
	if len(hb.frames) != 1 {
		t.Errorf("restored port did not deliver: %v", hb.frames)
	}
}

func TestLinkTap(t *testing.T) {
	s, a, b, _, _ := pair(t)
	var taps int
	var bytes int
	a.Port(1).Link.Tap(func(at time.Duration, from *Port, frame []byte) {
		taps++
		bytes += len(frame)
	})
	a.Port(1).Send([]byte("one"))
	b.Port(1).Send([]byte("two2"))
	s.RunFor(time.Millisecond)
	if taps != 2 || bytes != 7 {
		t.Errorf("taps=%d bytes=%d, want 2 and 7", taps, bytes)
	}
}

func TestDuplicateNodePanics(t *testing.T) {
	s := New(1)
	s.AddNode("x")
	defer func() {
		if recover() == nil {
			t.Error("duplicate AddNode did not panic")
		}
	}()
	s.AddNode("x")
}

func TestDoubleWirePanics(t *testing.T) {
	s := New(1)
	a, b, c := s.AddNode("a"), s.AddNode("b"), s.AddNode("c")
	pa := a.AddPort()
	s.Connect(pa, b.AddPort())
	defer func() {
		if recover() == nil {
			t.Error("wiring an already-wired port did not panic")
		}
	}()
	s.Connect(pa, c.AddPort())
}

func TestSchedulePastPanics(t *testing.T) {
	s := New(1)
	s.After(time.Millisecond, func() {})
	s.RunFor(time.Millisecond)
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past did not panic")
		}
	}()
	s.At(0, func() {})
}

func TestRunUntilAdvancesClock(t *testing.T) {
	s := New(1)
	s.RunUntil(3 * time.Second)
	if s.Now() != 3*time.Second {
		t.Errorf("Now = %v, want 3s", s.Now())
	}
}

func TestPortNamesAndPeers(t *testing.T) {
	_, a, b, _, _ := pair(t)
	if got, want := a.Port(1).Name(), "a:eth1"; got != want {
		t.Errorf("Name = %q, want %q", got, want)
	}
	if a.Port(1).Peer() != b.Port(1) {
		t.Error("Peer mismatch")
	}
	if a.Port(1).Link.Other(a.Port(1)) != b.Port(1) {
		t.Error("Other mismatch")
	}
}

func TestUniqueMACs(t *testing.T) {
	s := New(1)
	seen := make(map[string]bool)
	for i := 0; i < 4; i++ {
		n := s.AddNode(string(rune('a' + i)))
		for j := 0; j < 8; j++ {
			mac := n.AddPort().MAC.String()
			if seen[mac] {
				t.Fatalf("duplicate MAC %s", mac)
			}
			seen[mac] = true
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []string {
		s := New(42)
		a, b := s.AddNode("a"), s.AddNode("b")
		ha, hb := &echoHandler{}, &echoHandler{}
		a.Handler, b.Handler = ha, hb
		s.Connect(a.AddPort(), b.AddPort())
		for i := 0; i < 50; i++ {
			d := time.Duration(s.Rand().Intn(1000)) * time.Microsecond
			msg := []byte{byte(i)}
			s.After(d, func() { a.Port(1).Send(msg) })
		}
		s.RunFor(time.Second)
		return hb.frames
	}
	r1, r2 := run(), run()
	if len(r1) != len(r2) {
		t.Fatalf("nondeterministic run lengths: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("nondeterministic delivery order at %d", i)
		}
	}
}
