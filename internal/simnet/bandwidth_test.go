package simnet

import (
	"testing"
	"time"
)

func TestSerializationDelay(t *testing.T) {
	s := New(1)
	a, b := s.AddNode("a"), s.AddNode("b")
	h := &echoHandler{}
	b.Handler = h
	var arrived []time.Duration
	h.onRx = func(*Port, []byte) { arrived = append(arrived, s.Now()) }
	link := s.ConnectLatency(a.AddPort(), b.AddPort(), 100*time.Microsecond)
	link.SetBandwidth(8_000_000, 0) // 8 Mb/s: a 1000-byte frame takes 1ms
	a.Port(1).Send(make([]byte, 1000))
	s.RunFor(10 * time.Millisecond)
	if len(arrived) != 1 {
		t.Fatalf("arrived %d frames", len(arrived))
	}
	// 1ms serialization + 100µs propagation.
	if arrived[0] != 1100*time.Microsecond {
		t.Errorf("arrival at %v, want 1.1ms", arrived[0])
	}
}

func TestQueueingBehindEarlierFrames(t *testing.T) {
	s := New(1)
	a, b := s.AddNode("a"), s.AddNode("b")
	h := &echoHandler{}
	b.Handler = h
	var arrived []time.Duration
	h.onRx = func(*Port, []byte) { arrived = append(arrived, s.Now()) }
	link := s.ConnectLatency(a.AddPort(), b.AddPort(), 0)
	link.SetBandwidth(8_000_000, 0)
	for i := 0; i < 3; i++ {
		a.Port(1).Send(make([]byte, 1000)) // 1ms each, back to back
	}
	s.RunFor(10 * time.Millisecond)
	want := []time.Duration{time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond}
	if len(arrived) != 3 {
		t.Fatalf("arrived %d frames", len(arrived))
	}
	for i := range want {
		if arrived[i] != want[i] {
			t.Errorf("frame %d at %v, want %v", i, arrived[i], want[i])
		}
	}
}

func TestThroughputCap(t *testing.T) {
	// Offer 2x the link rate for one second; delivered bytes must match
	// the configured bandwidth, not the offered load.
	s := New(1)
	a, b := s.AddNode("a"), s.AddNode("b")
	h := &echoHandler{}
	b.Handler = h
	link := s.ConnectLatency(a.AddPort(), b.AddPort(), 0)
	link.SetBandwidth(8_000_000, 0) // 1 MB/s
	var offered func()
	frame := make([]byte, 1000)
	offered = func() {
		a.Port(1).Send(frame)
		a.Port(1).Send(frame) // 2x rate
		s.After(time.Millisecond, offered)
	}
	offered()
	s.RunFor(time.Second)
	got := b.Port(1).Counters.RxBytes
	if got < 990_000 || got > 1_010_000 {
		t.Errorf("delivered %d bytes in 1s over a 1MB/s link", got)
	}
}

func TestQueueOverflowTailDrops(t *testing.T) {
	s := New(1)
	a, b := s.AddNode("a"), s.AddNode("b")
	b.Handler = &echoHandler{}
	link := s.ConnectLatency(a.AddPort(), b.AddPort(), 0)
	link.SetBandwidth(8_000_000, 4) // at most 4 frames queued
	for i := 0; i < 10; i++ {
		a.Port(1).Send(make([]byte, 1000))
	}
	s.RunFor(time.Second)
	if link.Overflowed() != 6 {
		t.Errorf("overflowed = %d, want 6 (10 offered, 4 queue slots)", link.Overflowed())
	}
	if got := b.Port(1).Counters.RxFrames; got != 4 {
		t.Errorf("delivered = %d, want 4", got)
	}
}

func TestLinkStatsPerDirection(t *testing.T) {
	// Overflow one direction only; the per-direction stats must attribute
	// every drop to the congested sender while the reverse direction and
	// the link-wide total stay consistent.
	s := New(1)
	a, b := s.AddNode("a"), s.AddNode("b")
	a.Handler = &echoHandler{}
	b.Handler = &echoHandler{}
	link := s.ConnectLatency(a.AddPort(), b.AddPort(), 0)
	link.SetBandwidth(8_000_000, 4)
	for i := 0; i < 10; i++ {
		a.Port(1).Send(make([]byte, 1000)) // 6 of these tail-drop
	}
	b.Port(1).Send(make([]byte, 1000)) // reverse direction, no congestion

	mid := link.Stats(a.Port(1))
	if mid.Queued == 0 {
		t.Error("forward direction shows an empty queue while frames are serializing")
	}

	s.RunFor(time.Second)
	fwd := link.Stats(a.Port(1))
	rev := link.Stats(b.Port(1))
	if fwd.Overflows != 6 {
		t.Errorf("forward overflows = %d, want 6", fwd.Overflows)
	}
	if fwd.OverflowBytes != 6000 {
		t.Errorf("forward overflow bytes = %d, want 6000", fwd.OverflowBytes)
	}
	if rev.Overflows != 0 || rev.OverflowBytes != 0 {
		t.Errorf("reverse direction counted overflows: %+v", rev)
	}
	if fwd.Queued != 0 || rev.Queued != 0 {
		t.Errorf("queues not drained: fwd=%d rev=%d", fwd.Queued, rev.Queued)
	}
	if link.Overflowed() != fwd.Overflows+rev.Overflows {
		t.Errorf("link total %d != sum of directions %d", link.Overflowed(), fwd.Overflows+rev.Overflows)
	}
	if got := link.Bandwidth(); got != 8_000_000 {
		t.Errorf("Bandwidth() = %d, want 8000000", got)
	}
}

func TestZeroBandwidthIsIdeal(t *testing.T) {
	// Default links have no serialization delay: delivery at exactly the
	// propagation latency regardless of frame size.
	s := New(1)
	a, b := s.AddNode("a"), s.AddNode("b")
	h := &echoHandler{}
	b.Handler = h
	var at time.Duration
	h.onRx = func(*Port, []byte) { at = s.Now() }
	s.ConnectLatency(a.AddPort(), b.AddPort(), 250*time.Microsecond)
	a.Port(1).Send(make([]byte, 9000))
	s.RunFor(time.Millisecond)
	if at != 250*time.Microsecond {
		t.Errorf("ideal link delivered at %v", at)
	}
}

func TestFluidResidualSerialization(t *testing.T) {
	// Reserving half the direction for the fluid engine doubles the
	// packet serialization time; the reverse direction is untouched.
	s := New(1)
	a, b := s.AddNode("a"), s.AddNode("b")
	h := &echoHandler{}
	b.Handler = h
	var arrived []time.Duration
	h.onRx = func(*Port, []byte) { arrived = append(arrived, s.Now()) }
	link := s.ConnectLatency(a.AddPort(), b.AddPort(), 100*time.Microsecond)
	link.SetBandwidth(8_000_000, 0)
	link.SetFluidLoad(a.Port(1), 4_000_000, 0) // residual 4 Mb/s: 1000B takes 2ms
	a.Port(1).Send(make([]byte, 1000))
	s.RunFor(10 * time.Millisecond)
	if len(arrived) != 1 || arrived[0] != 2100*time.Microsecond {
		t.Fatalf("arrived %v, want one frame at 2.1ms", arrived)
	}
	if got := link.Stats(a.Port(1)).FluidBps; got != 4_000_000 {
		t.Errorf("Stats FluidBps = %d, want 4M", got)
	}
	if got := link.Stats(b.Port(1)).FluidBps; got != 0 {
		t.Errorf("reverse-direction FluidBps = %d, want 0", got)
	}
}

func TestFluidLoadFloorKeepsPacketsTrickling(t *testing.T) {
	// A reservation covering the whole link must not freeze the packet
	// path: the serializer floors at 1/128th of capacity.
	s := New(1)
	a, b := s.AddNode("a"), s.AddNode("b")
	h := &echoHandler{}
	b.Handler = h
	delivered := 0
	h.onRx = func(*Port, []byte) { delivered++ }
	link := s.ConnectLatency(a.AddPort(), b.AddPort(), 0)
	link.SetBandwidth(128_000_000, 0)
	link.SetFluidLoad(a.Port(1), 128_000_000, 0) // floor: 1 Mb/s residual
	a.Port(1).Send(make([]byte, 1000))           // 8ms at the floor
	s.RunFor(10 * time.Millisecond)
	if delivered != 1 {
		t.Fatalf("delivered %d frames through a fully reserved link, want 1", delivered)
	}
}

func TestFluidBytesIntegration(t *testing.T) {
	// Bytes carried by the reservation integrate exactly over the
	// piecewise-constant rate segments.
	s := New(1)
	a, b := s.AddNode("a"), s.AddNode("b")
	link := s.ConnectLatency(a.AddPort(), b.AddPort(), 0)
	link.SetBandwidth(8_000_000, 0)
	from := a.Port(1)
	link.SetFluidLoad(from, 8_000_000, 0)                    // 1 MB/s
	link.SetFluidLoad(from, 4_000_000, 100*time.Millisecond) // 100 KB so far
	if got := link.FluidBytes(from, 300*time.Millisecond); got != 200_000 {
		t.Fatalf("FluidBytes(300ms) = %d, want 200000", got)
	}
	// Reads are idempotent and monotone.
	if got := link.FluidBytes(from, 300*time.Millisecond); got != 200_000 {
		t.Fatalf("second read = %d, want 200000", got)
	}
	link.SetFluidLoad(from, 0, 500*time.Millisecond)
	if got := link.FluidBytes(from, time.Second); got != 300_000 {
		t.Fatalf("FluidBytes(1s) = %d, want 300000", got)
	}
	if got := link.FluidLoad(from); got != 0 {
		t.Fatalf("FluidLoad = %d, want 0", got)
	}
}
