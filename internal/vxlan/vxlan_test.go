package vxlan

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestMarshalUnmarshal(t *testing.T) {
	f := func(vniSeed uint32, inner []byte) bool {
		vni := vniSeed & 0xffffff
		gotVNI, gotInner, err := Unmarshal(Marshal(vni, inner))
		return err == nil && gotVNI == vni && bytes.Equal(gotInner, inner)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, _, err := Unmarshal([]byte{1, 2, 3}); err != ErrMalformed {
		t.Errorf("short: %v", err)
	}
	b := Marshal(5, nil)
	b[0] = 0 // I bit clear
	if _, _, err := Unmarshal(b); err != ErrMalformed {
		t.Errorf("no VNI flag: %v", err)
	}
}

func TestHeaderSize(t *testing.T) {
	// RFC 7348: 8-byte VXLAN header; total outer overhead over the inner
	// frame is 8 (VXLAN) + 8 (UDP) + 20 (IP) + 14 (Ethernet) = 50 bytes,
	// the figure the paper's §IX overhead discussion needs.
	if got := len(Marshal(1, nil)); got != 8 {
		t.Errorf("header = %d bytes, want 8", got)
	}
}
