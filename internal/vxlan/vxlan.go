// Package vxlan implements the VXLAN encapsulation (RFC 7348) the paper
// assumes for inter-rack VM communication (§III.A): VM-to-VM Ethernet
// frames ride in a VXLAN/UDP/IP envelope whose outer addresses are the
// *server* addresses — which is exactly what lets the ToR derive the
// destination ToR VID from the outer destination IP's third byte. This
// package provides the envelope plus a minimal VTEP (VXLAN tunnel
// endpoint) so the tests can run the paper's full encapsulation chain:
// VM frame → VXLAN/UDP/IP → MR-MTP → fabric.
package vxlan

import (
	"errors"

	"repro/internal/ethernet"
	"repro/internal/ipstack"
	"repro/internal/netaddr"
	"repro/internal/udp"
)

// Port is the IANA-assigned VXLAN UDP port.
const Port = 4789

// HeaderLen is the VXLAN header size.
const HeaderLen = 8

// flagVNIValid is the I bit (RFC 7348 §5.1).
const flagVNIValid = 0x08

// ErrMalformed reports an undecodable VXLAN packet.
var ErrMalformed = errors.New("vxlan: malformed packet")

// Marshal wraps an inner Ethernet frame under a VNI.
func Marshal(vni uint32, innerFrame []byte) []byte {
	b := make([]byte, HeaderLen+len(innerFrame))
	b[0] = flagVNIValid
	b[4] = byte(vni >> 16)
	b[5] = byte(vni >> 8)
	b[6] = byte(vni)
	copy(b[HeaderLen:], innerFrame)
	return b
}

// Unmarshal splits a VXLAN packet into VNI and inner frame.
func Unmarshal(b []byte) (vni uint32, innerFrame []byte, err error) {
	if len(b) < HeaderLen || b[0]&flagVNIValid == 0 {
		return 0, nil, ErrMalformed
	}
	vni = uint32(b[4])<<16 | uint32(b[5])<<8 | uint32(b[6])
	return vni, b[HeaderLen:], nil
}

// VTEP is a minimal VXLAN tunnel endpoint on a server: it maps VM MAC
// addresses to remote server IPs (a static forwarding database, as a
// controller would program) and hands decapsulated frames to the local
// virtual switch.
type VTEP struct {
	stack *ipstack.Stack
	local netaddr.IPv4
	vni   uint32

	// fdb maps inner destination MACs to the server hosting the VM.
	fdb map[netaddr.MAC]netaddr.IPv4
	// OnInnerFrame receives decapsulated VM frames.
	OnInnerFrame func(inner ethernet.Frame)

	// Stats for the overhead discussion in the paper's §IX.
	Stats struct {
		Encapsulated uint64
		Decapsulated uint64
		Unknown      uint64
	}
}

// NewVTEP attaches a tunnel endpoint to a server stack.
func NewVTEP(stack *ipstack.Stack, local netaddr.IPv4, vni uint32) *VTEP {
	v := &VTEP{
		stack: stack,
		local: local,
		vni:   vni,
		fdb:   make(map[netaddr.MAC]netaddr.IPv4),
	}
	stack.ListenUDP(Port, func(src, dst netaddr.IPv4, dg udp.Datagram) {
		gotVNI, inner, err := Unmarshal(dg.Payload)
		if err != nil || gotVNI != v.vni {
			return
		}
		f, err := ethernet.Unmarshal(inner)
		if err != nil {
			return
		}
		v.Stats.Decapsulated++
		if v.OnInnerFrame != nil {
			v.OnInnerFrame(f)
		}
	})
	return v
}

// Learn programs the forwarding database: VM mac lives behind server ip.
func (v *VTEP) Learn(mac netaddr.MAC, server netaddr.IPv4) { v.fdb[mac] = server }

// SendInner encapsulates a VM frame toward the server hosting its
// destination MAC. It reports whether the destination was known.
func (v *VTEP) SendInner(inner ethernet.Frame) bool {
	server, ok := v.fdb[inner.Dst]
	if !ok {
		v.Stats.Unknown++
		return false
	}
	v.Stats.Encapsulated++
	v.stack.SendUDP(v.local, server, Port, Port, Marshal(v.vni, inner.Marshal()))
	return true
}
