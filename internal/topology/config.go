package topology

import (
	"encoding/json"
	"fmt"
	"sort"
)

// ConfigFile is the whole-fabric MR-MTP configuration of the paper's
// Listing 2: a single JSON document that tells every node its tier and
// tells the ToRs which interface faces the server rack, from which they
// derive their VIDs. This is the entire configuration an MR-MTP fabric
// needs — the comparison against per-router BGP configuration (Listing 1)
// is one of the paper's headline simplicity claims.
type ConfigFile struct {
	Topology ConfigTopology `json:"topology"`
}

// ConfigTopology mirrors Listing 2's structure.
type ConfigTopology struct {
	Leaves                []string          `json:"leaves"`
	LeavesNetworkPortDict map[string]string `json:"leavesNetworkPortDict"`
	TopSpines             []string          `json:"topSpines"`
	Pods                  []ConfigPod       `json:"pods"`
}

// ConfigPod lists the tier-2 spines of one pod.
type ConfigPod struct {
	TopSpines []string `json:"topSpines"` // Listing 2 reuses the key name for pod spines
}

// MRMTPConfig renders the Listing-2 configuration for the fabric.
func (t *Topology) MRMTPConfig() ConfigFile {
	cfg := ConfigFile{}
	cfg.Topology.LeavesNetworkPortDict = make(map[string]string, len(t.Leaves))
	for _, leaf := range t.Leaves {
		cfg.Topology.Leaves = append(cfg.Topology.Leaves, leaf.Name)
		cfg.Topology.LeavesNetworkPortDict[leaf.Name] = fmt.Sprintf("eth%d", leaf.ServerPort)
	}
	for _, top := range t.Tops {
		cfg.Topology.TopSpines = append(cfg.Topology.TopSpines, top.Name)
	}
	maxPod := 0
	for _, sp := range t.Spines {
		if sp.Pod > maxPod {
			maxPod = sp.Pod
		}
	}
	for pod := 1; pod <= maxPod; pod++ {
		var p ConfigPod
		for _, sp := range t.Spines {
			if sp.Pod == pod {
				p.TopSpines = append(p.TopSpines, sp.Name)
			}
		}
		cfg.Topology.Pods = append(cfg.Topology.Pods, p)
	}
	return cfg
}

// MarshalJSON-friendly rendering with stable ordering.
func (c ConfigFile) Render() ([]byte, error) {
	return json.MarshalIndent(c, "", "  ")
}

// ParseConfig reads a Listing-2 JSON document.
func ParseConfig(data []byte) (ConfigFile, error) {
	var c ConfigFile
	if err := json.Unmarshal(data, &c); err != nil {
		return ConfigFile{}, fmt.Errorf("topology: bad config: %w", err)
	}
	if len(c.Topology.Leaves) == 0 {
		return ConfigFile{}, fmt.Errorf("topology: config lists no leaves")
	}
	for _, leaf := range c.Topology.Leaves {
		if _, ok := c.Topology.LeavesNetworkPortDict[leaf]; !ok {
			return ConfigFile{}, fmt.Errorf("topology: leaf %s missing from leavesNetworkPortDict", leaf)
		}
	}
	return c, nil
}

// BGPConfig renders the FRR-style per-router configuration of Listing 1 for
// one device. The experiments use it to quantify the configuration burden:
// BGP needs this block on every router, growing with its neighbor count,
// while MR-MTP needs only the fabric-wide JSON above.
func (t *Topology) BGPConfig(name string, withBFD bool) (string, error) {
	d := t.Devices[name]
	if d == nil {
		return "", fmt.Errorf("topology: no device %s", name)
	}
	if d.Tier == TierServer {
		return "", fmt.Errorf("topology: %s is a server, not a BGP router", name)
	}
	var out []byte
	app := func(format string, args ...any) {
		out = append(out, fmt.Sprintf(format+"\n", args...)...)
	}
	app("frr version 10.0")
	app("frr defaults datacenter")
	app("hostname %s", d.Name)
	app("log file /var/log/frr/bgpd.log")
	app("log timestamp precision 3")
	app("no ipv6 forwarding")
	app("!")
	app("router bgp %d", d.ASN)
	app(" timers bgp 1 3")
	type nb struct {
		ip  string
		asn uint32
	}
	var neighbors []nb
	for _, p := range d.Ports[1:] {
		peer := p.Peer.Device
		if peer.Tier == TierServer {
			continue
		}
		neighbors = append(neighbors, nb{p.Peer.IP.String(), peer.ASN})
	}
	sort.Slice(neighbors, func(i, j int) bool { return neighbors[i].ip < neighbors[j].ip })
	for _, n := range neighbors {
		app(" neighbor %s remote-as %d", n.ip, n.asn)
		if withBFD {
			app(" neighbor %s bfd", n.ip)
		}
	}
	if d.Tier == TierLeaf {
		app(" address-family ipv4 unicast")
		app("  network %s", d.ServerSubnet)
		app(" exit-address-family")
	}
	app("!")
	if withBFD {
		app("bfd")
		app(" profile lowerIntervals")
		app("  transmit-interval 100")
		app("  receive-interval 100")
		app(" exit")
		for _, n := range neighbors {
			app(" peer %s", n.ip)
			app("  profile lowerIntervals")
			app(" exit")
		}
		app("exit")
		app("!")
	}
	return string(out), nil
}

// ConfigSizes summarizes the configuration burden for the whole fabric:
// total rendered bytes and lines for BGP (sum over routers) versus the
// single MR-MTP JSON. Used by the Listing 1-vs-2 experiment.
type ConfigSizes struct {
	BGPBytes   int
	BGPLines   int
	MRMTPBytes int
	MRMTPLines int
	Routers    int
}

// MeasureConfigs computes ConfigSizes for the fabric.
func (t *Topology) MeasureConfigs(withBFD bool) (ConfigSizes, error) {
	var cs ConfigSizes
	for _, d := range t.Routers() {
		cfg, err := t.BGPConfig(d.Name, withBFD)
		if err != nil {
			return cs, err
		}
		cs.BGPBytes += len(cfg)
		cs.BGPLines += countLines(cfg)
		cs.Routers++
	}
	blob, err := t.MRMTPConfig().Render()
	if err != nil {
		return cs, err
	}
	cs.MRMTPBytes = len(blob)
	cs.MRMTPLines = countLines(string(blob))
	return cs, nil
}

func countLines(s string) int {
	n := 0
	for _, c := range s {
		if c == '\n' {
			n++
		}
	}
	return n
}
