package topology

import "fmt"

// FailureCase identifies one of the paper's four interface-failure test
// points (Fig. 3). All four sit on the L-1-1 / S-1-1 / T-1 column; TC1/TC2
// are the two ends of the leaf↔spine link and TC3/TC4 the two ends of the
// spine↔top link. The *end* matters: the device owning the failed interface
// detects it immediately, the other end only via protocol timers.
type FailureCase int

// The paper's failure test cases.
const (
	TC1 FailureCase = iota + 1 // L-1-1's uplink interface to S-1-1
	TC2                        // S-1-1's downlink interface to L-1-1
	TC3                        // S-1-1's uplink interface to T-1
	TC4                        // T-1's downlink interface to S-1-1
)

func (c FailureCase) String() string {
	if c < TC1 || c > TC4 {
		return fmt.Sprintf("FailureCase(%d)", int(c))
	}
	return fmt.Sprintf("TC%d", int(c))
}

// AllFailureCases lists TC1..TC4 in order.
func AllFailureCases() []FailureCase { return []FailureCase{TC1, TC2, TC3, TC4} }

// FailurePoint names the interface a test case brings down.
type FailurePoint struct {
	Device string // node executing the `ip link set down`
	Port   int    // 1-based interface index on that node
}

// FailurePoint resolves a test case against this fabric.
func (t *Topology) FailurePoint(c FailureCase) (FailurePoint, error) {
	leaf := t.Devices["L-1-1"]
	spine := t.Devices["S-1-1"]
	top := t.Devices["T-1"]
	if leaf == nil || spine == nil || top == nil {
		return FailurePoint{}, fmt.Errorf("topology: fabric lacks the L-1-1/S-1-1/T-1 column")
	}
	find := func(from *Device, to *Device) (int, error) {
		for _, p := range from.Ports[1:] {
			if p.Peer.Device == to {
				return p.Index, nil
			}
		}
		return 0, fmt.Errorf("topology: %s has no link to %s", from.Name, to.Name)
	}
	switch c {
	case TC1:
		idx, err := find(leaf, spine)
		return FailurePoint{leaf.Name, idx}, err
	case TC2:
		idx, err := find(spine, leaf)
		return FailurePoint{spine.Name, idx}, err
	case TC3:
		idx, err := find(spine, top)
		return FailurePoint{spine.Name, idx}, err
	case TC4:
		idx, err := find(top, spine)
		return FailurePoint{top.Name, idx}, err
	}
	return FailurePoint{}, fmt.Errorf("topology: unknown failure case %d", int(c))
}
