package topology

import (
	"fmt"
	"strings"

	"repro/internal/netaddr"
)

// This file implements the paper's §IX scaling direction ("Scaling the DCN
// to multiple tiers"): a four-tier folded-Clos in which pods are grouped
// into zones. The same plane-preserving wiring recursion used between
// tiers 1-3 extends upward:
//
//	tier 4: super spines  T-k            (one per zone plane × fanout)
//	tier 3: zone spines   A-z-g          (g = 1..SpinesPerPod×UplinksPerSpine)
//	tier 2: pod spines    S-z-p-s
//	tier 1: leaves        L-z-p-l
//	tier 0: servers       H-z-p-l-i
//
// MR-MTP needs nothing new: VIDs simply grow one element deeper
// (11 → 11.1 → 11.1.1 → 11.1.1.2) and devices are configured with their
// tier number alone, exactly as the paper claims ("the scheme can easily
// scale to any number of spine tiers", §III.B).

// MultiTierSpec describes a four-tier fabric.
type MultiTierSpec struct {
	Zones           int
	PodsPerZone     int
	LeavesPerPod    int
	SpinesPerPod    int
	UplinksPerSpine int // tier-2 -> tier-3 fanout
	UplinksPerZone  int // tier-3 -> tier-4 fanout
	ServersPerLeaf  int
}

// ZoneSpines returns the tier-3 device count per zone.
func (s MultiTierSpec) ZoneSpines() int { return s.SpinesPerPod * s.UplinksPerSpine }

// SuperSpines returns the tier-4 device count.
func (s MultiTierSpec) SuperSpines() int { return s.ZoneSpines() * s.UplinksPerZone }

// Validate rejects impossible specs.
func (s MultiTierSpec) Validate() error {
	switch {
	case s.Zones < 2:
		return fmt.Errorf("topology: a multi-tier fabric needs >= 2 zones, got %d", s.Zones)
	case s.PodsPerZone < 1, s.LeavesPerPod < 1, s.SpinesPerPod < 1,
		s.UplinksPerSpine < 1, s.UplinksPerZone < 1:
		return fmt.Errorf("topology: multi-tier spec has a non-positive dimension: %+v", s)
	case s.ServersPerLeaf < 0:
		return fmt.Errorf("topology: negative servers per leaf")
	case s.Zones*s.PodsPerZone*s.LeavesPerPod > 245:
		return fmt.Errorf("topology: %d leaves exceed the single-byte VID space",
			s.Zones*s.PodsPerZone*s.LeavesPerPod)
	}
	return nil
}

// ASN plan extension for tier 3: zone spines share one ASN per zone.
const baseASNZone uint32 = 64700

// BuildMultiTier constructs and verifies a four-tier fabric.
func BuildMultiTier(spec MultiTierSpec) (*Topology, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	t := &Topology{
		Spec: Spec{
			Pods:            spec.Zones * spec.PodsPerZone,
			LeavesPerPod:    spec.LeavesPerPod,
			SpinesPerPod:    spec.SpinesPerPod,
			UplinksPerSpine: spec.UplinksPerSpine,
			ServersPerLeaf:  spec.ServersPerLeaf,
		},
		Devices: make(map[string]*Device),
	}
	add := func(d *Device, level int) *Device {
		d.Ports = []*Port{nil}
		d.Level = level
		t.Devices[d.Name] = d
		return d
	}
	newPort := func(d *Device) *Port {
		p := &Port{Device: d, Index: len(d.Ports)}
		d.Ports = append(d.Ports, p)
		return p
	}
	wire := func(a, b *Port) {
		a.Peer, b.Peer = b, a
		subnet := netaddr.MakePrefix(netaddr.MakeIPv4(172, byte(16+t.linkCount/256), byte(t.linkCount%256), 0), 24)
		t.linkCount++
		b.IP = subnet.Host(1)
		a.IP = subnet.Host(2)
		a.Subnet, b.Subnet = subnet, subnet
		t.Links = append(t.Links, Link{A: a, B: b})
	}

	// Tier 4: super spines, one downlink per zone.
	for k := 1; k <= spec.SuperSpines(); k++ {
		top := add(&Device{Name: fmt.Sprintf("T-%d", k), Tier: TierTop, Index: k, ASN: BaseASNTop}, 4)
		for z := 1; z <= spec.Zones; z++ {
			newPort(top)
		}
		t.Tops = append(t.Tops, top)
	}

	leafCount := 0
	globalPod := 0
	for z := 1; z <= spec.Zones; z++ {
		// Tier 3: zone spines. Uplink v of zone spine g reaches super
		// spine g+(v-1)·ZoneSpines; then one downlink per pod in the zone.
		for g := 1; g <= spec.ZoneSpines(); g++ {
			agg := add(&Device{
				Name: fmt.Sprintf("A-%d-%d", z, g), Tier: TierSpine,
				Pod: 0, Index: g, ASN: baseASNZone + uint32(z),
			}, 3)
			for v := 1; v <= spec.UplinksPerZone; v++ {
				top := t.Tops[g+(v-1)*spec.ZoneSpines()-1]
				wire(newPort(agg), top.Ports[z])
			}
			for p := 1; p <= spec.PodsPerZone; p++ {
				newPort(agg) // downlink to pod p, wired below
			}
			t.Aggs = append(t.Aggs, agg)
		}
		for p := 1; p <= spec.PodsPerZone; p++ {
			globalPod++
			// Tier 2: pod spines. Uplink u of spine s reaches zone spine
			// s+(u-1)·SpinesPerPod (plane rule), then leaf downlinks.
			for s := 1; s <= spec.SpinesPerPod; s++ {
				sp := add(&Device{
					Name: fmt.Sprintf("S-%d-%d-%d", z, p, s), Tier: TierSpine,
					Pod: globalPod, Index: s, ASN: BaseASNTop + uint32(globalPod),
				}, 2)
				for u := 1; u <= spec.UplinksPerSpine; u++ {
					agg := t.Aggs[(z-1)*spec.ZoneSpines()+s+(u-1)*spec.SpinesPerPod-1]
					wire(newPort(sp), agg.Ports[spec.UplinksPerZone+p])
				}
				for i := 0; i < spec.LeavesPerPod; i++ {
					newPort(sp)
				}
				t.Spines = append(t.Spines, sp)
			}
			for lf := 1; lf <= spec.LeavesPerPod; lf++ {
				leafCount++
				vid := 10 + leafCount
				leaf := add(&Device{
					Name: fmt.Sprintf("L-%d-%d-%d", z, p, lf), Tier: TierLeaf,
					Pod: globalPod, Index: lf,
					ASN:          BaseASNLeaf + uint32(leafCount-1),
					VID:          vid,
					ServerSubnet: netaddr.MakePrefix(netaddr.MakeIPv4(192, 168, byte(vid), 0), 24),
				}, 1)
				for s := 1; s <= spec.SpinesPerPod; s++ {
					sp := t.Devices[fmt.Sprintf("S-%d-%d-%d", z, p, s)]
					wire(newPort(leaf), sp.Ports[spec.UplinksPerSpine+lf])
				}
				leaf.ServerPort = spec.SpinesPerPod + 1
				t.Leaves = append(t.Leaves, leaf)
				for i := 1; i <= spec.ServersPerLeaf; i++ {
					srv := add(&Device{
						Name: fmt.Sprintf("H-%d-%d-%d-%d", z, p, lf, i), Tier: TierServer,
						Pod: globalPod, Index: i,
						IP: leaf.ServerSubnet.Host(uint32(i)),
					}, 0)
					sp := newPort(srv)
					lp := newPort(leaf)
					sp.Peer, lp.Peer = lp, sp
					sp.Subnet, lp.Subnet = leaf.ServerSubnet, leaf.ServerSubnet
					sp.IP = srv.IP
					lp.IP = LeafGatewayIP(leaf)
					t.Links = append(t.Links, Link{A: sp, B: lp})
					t.Servers = append(t.Servers, srv)
				}
			}
		}
	}
	if err := t.verifyMultiTier(spec); err != nil {
		return nil, err
	}
	return t, nil
}

// verifyMultiTier checks the four-tier structural invariants.
func (t *Topology) verifyMultiTier(spec MultiTierSpec) error {
	if got, want := len(t.Tops), spec.SuperSpines(); got != want {
		return fmt.Errorf("topology: %d super spines, want %d", got, want)
	}
	if got, want := len(t.Aggs), spec.Zones*spec.ZoneSpines(); got != want {
		return fmt.Errorf("topology: %d zone spines, want %d", got, want)
	}
	if got, want := len(t.Spines), spec.Zones*spec.PodsPerZone*spec.SpinesPerPod; got != want {
		return fmt.Errorf("topology: %d pod spines, want %d", got, want)
	}
	if got, want := len(t.Leaves), spec.Zones*spec.PodsPerZone*spec.LeavesPerPod; got != want {
		return fmt.Errorf("topology: %d leaves, want %d", got, want)
	}
	for _, d := range t.sortedDevices() {
		for _, p := range d.Ports[1:] {
			switch {
			case p.Peer == nil:
				return fmt.Errorf("topology: unwired port %s", p.Name())
			case p.Peer.Peer != p:
				return fmt.Errorf("topology: asymmetric wiring at %s", p.Name())
			case p.Peer.Device == d:
				return fmt.Errorf("topology: self-loop at %s", p.Name())
			}
		}
	}
	// Levels differ by exactly one across every router-router link.
	for _, l := range t.Links {
		if l.A.Device.Tier == TierServer {
			continue
		}
		if diff := l.B.Device.Level - l.A.Device.Level; diff != 1 {
			return fmt.Errorf("topology: link %s-%s spans levels %d-%d",
				l.A.Name(), l.B.Name(), l.A.Device.Level, l.B.Device.Level)
		}
	}
	// Every super spine reaches exactly one zone spine per zone.
	for _, top := range t.Tops {
		zonesSeen := make(map[string]bool)
		for _, p := range top.Ports[1:] {
			z := strings.SplitN(p.Peer.Device.Name, "-", 3)[1]
			if zonesSeen[z] {
				return fmt.Errorf("topology: %s reaches zone %s twice", top.Name, z)
			}
			zonesSeen[z] = true
		}
	}
	return nil
}
