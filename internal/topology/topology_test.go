package topology

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/netaddr"
)

func build(t *testing.T, spec Spec) *Topology {
	t.Helper()
	topo, err := Build(spec)
	if err != nil {
		t.Fatalf("Build(%+v): %v", spec, err)
	}
	return topo
}

func TestFig3Topologies(t *testing.T) {
	two := build(t, TwoPodSpec())
	if got := len(two.Routers()); got != 12 {
		t.Errorf("2-PoD routers = %d, want 12 (paper Fig. 3)", got)
	}
	four := build(t, FourPodSpec())
	if got := len(four.Routers()); got != 20 {
		t.Errorf("4-PoD routers = %d, want 20 (paper §VII.B: '15 of the 20 routers')", got)
	}
	if got := len(four.Leaves); got != 8 {
		t.Errorf("4-PoD leaves = %d, want 8", got)
	}
	if got := len(four.Tops); got != 4 {
		t.Errorf("4-PoD top spines = %d, want 4", got)
	}
}

func TestToRVIDsMatchFig2(t *testing.T) {
	topo := build(t, TwoPodSpec())
	want := map[string]int{"L-1-1": 11, "L-1-2": 12, "L-2-1": 13, "L-2-2": 14}
	for name, vid := range want {
		leaf := topo.Device(name)
		if leaf == nil || leaf.VID != vid {
			t.Errorf("%s VID = %v, want %d", name, leaf, vid)
		}
		wantSubnet := netaddr.MakePrefix(netaddr.MakeIPv4(192, 168, byte(vid), 0), 24)
		if leaf.ServerSubnet != wantSubnet {
			t.Errorf("%s subnet = %s, want %s", name, leaf.ServerSubnet, wantSubnet)
		}
	}
}

func TestPlaneWiringMatchesFig2(t *testing.T) {
	// Fig. 2: S1_1 (our S-1-1) assigns 11.1.1 to S2_1 (T-1) on uplink 1
	// and 11.1.2 to S2_3 (T-3) on uplink 2; S1_2 reaches T-2 and T-4.
	topo := build(t, TwoPodSpec())
	cases := []struct {
		spine  string
		uplink int
		top    string
	}{
		{"S-1-1", 1, "T-1"}, {"S-1-1", 2, "T-3"},
		{"S-1-2", 1, "T-2"}, {"S-1-2", 2, "T-4"},
		{"S-2-1", 1, "T-1"}, {"S-2-1", 2, "T-3"},
	}
	for _, c := range cases {
		got := topo.Device(c.spine).Ports[c.uplink].Peer.Device.Name
		if got != c.top {
			t.Errorf("%s uplink %d reaches %s, want %s", c.spine, c.uplink, got, c.top)
		}
	}
}

func TestLeafUplinkPortNumbers(t *testing.T) {
	// MR-MTP offers VID <tor>.<port>; ToR port 1 must face S-p-1 so S1_1
	// acquires 11.1 as in Fig. 2.
	topo := build(t, TwoPodSpec())
	leaf := topo.Device("L-1-1")
	if leaf.Ports[1].Peer.Device.Name != "S-1-1" || leaf.Ports[2].Peer.Device.Name != "S-1-2" {
		t.Errorf("L-1-1 uplinks: port1->%s port2->%s, want S-1-1, S-1-2",
			leaf.Ports[1].Peer.Device.Name, leaf.Ports[2].Peer.Device.Name)
	}
	if leaf.ServerPort != 3 {
		t.Errorf("server port = %d, want 3", leaf.ServerPort)
	}
}

func TestASNPlanMatchesListing1(t *testing.T) {
	topo := build(t, FourPodSpec())
	if topo.Device("T-1").ASN != 64512 {
		t.Errorf("T-1 ASN = %d, want 64512", topo.Device("T-1").ASN)
	}
	// T-1's four neighbors are the plane-1 spines of pods 1..4 with ASNs
	// 64513..64516, exactly the remote-as lines of Listing 1.
	seen := make(map[uint32]bool)
	for _, p := range topo.Device("T-1").Ports[1:] {
		seen[p.Peer.Device.ASN] = true
	}
	for asn := uint32(64513); asn <= 64516; asn++ {
		if !seen[asn] {
			t.Errorf("T-1 neighbors lack ASN %d (Listing 1)", asn)
		}
	}
	// Leaf ASNs unique.
	leafASN := make(map[uint32]string)
	for _, l := range topo.Leaves {
		if prev := leafASN[l.ASN]; prev != "" {
			t.Errorf("leaf ASN %d shared by %s and %s", l.ASN, prev, l.Name)
		}
		leafASN[l.ASN] = l.Name
	}
}

func TestLinkAddressing(t *testing.T) {
	topo := build(t, TwoPodSpec())
	// Spot-check the .1-upper/.2-lower rule on a leaf uplink.
	leaf := topo.Device("L-1-1")
	up := leaf.Ports[1]
	if up.IP != up.Subnet.Host(2) || up.Peer.IP != up.Subnet.Host(1) {
		t.Errorf("leaf %s IP=%s peer=%s subnet=%s; want leaf .2, spine .1", leaf.Name, up.IP, up.Peer.IP, up.Subnet)
	}
	if !up.IsUplink() || up.Peer.IsUplink() {
		t.Error("IsUplink misclassifies leaf-spine link")
	}
}

func TestServersShareLeafSubnet(t *testing.T) {
	topo := build(t, TwoPodSpec())
	srv := topo.Device("H-1-1-1")
	leaf := topo.Device("L-1-1")
	if srv == nil {
		t.Fatal("no server H-1-1-1")
	}
	if !leaf.ServerSubnet.Contains(srv.IP) {
		t.Errorf("server IP %s outside rack subnet %s", srv.IP, leaf.ServerSubnet)
	}
	if srv.IP != netaddr.MakeIPv4(192, 168, 11, 1) {
		t.Errorf("server IP = %s, want 192.168.11.1 (paper §III.D example)", srv.IP)
	}
	if gw := LeafGatewayIP(leaf); gw != netaddr.MakeIPv4(192, 168, 11, 254) {
		t.Errorf("gateway = %s, want 192.168.11.254", gw)
	}
}

func TestVIDDerivation(t *testing.T) {
	// Paper §III.A: third byte of the rack subnet.
	if got := DeriveVID(netaddr.MakePrefix(netaddr.MakeIPv4(192, 168, 11, 0), 24)); got != 11 {
		t.Errorf("DeriveVID = %d, want 11", got)
	}
	if got := DeriveVIDFromIP(netaddr.MakeIPv4(192, 168, 14, 1)); got != 14 {
		t.Errorf("DeriveVIDFromIP = %d, want 14", got)
	}
}

func TestFailurePoints(t *testing.T) {
	topo := build(t, TwoPodSpec())
	cases := map[FailureCase]FailurePoint{
		TC1: {"L-1-1", 1}, // leaf's port 1 faces S-1-1
		TC2: {"S-1-1", 3}, // spine downlinks start after its 2 uplinks
		TC3: {"S-1-1", 1}, // spine's uplink 1 faces T-1
		TC4: {"T-1", 1},   // top's port 1 faces pod 1
	}
	for tc, want := range cases {
		got, err := topo.FailurePoint(tc)
		if err != nil || got != want {
			t.Errorf("FailurePoint(%v) = %+v, %v; want %+v", tc, got, err, want)
		}
	}
	// The two ends of a TC pair must be the same physical link.
	p1, _ := topo.FailurePoint(TC1)
	p2, _ := topo.FailurePoint(TC2)
	a := topo.Device(p1.Device).Ports[p1.Port]
	b := topo.Device(p2.Device).Ports[p2.Port]
	if a.Peer != b {
		t.Error("TC1 and TC2 are not two ends of the same link")
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []Spec{
		{},
		{Pods: 0, LeavesPerPod: 2, SpinesPerPod: 2, UplinksPerSpine: 2},
		{Pods: 2, LeavesPerPod: 0, SpinesPerPod: 2, UplinksPerSpine: 2},
		{Pods: 2, LeavesPerPod: 2, SpinesPerPod: 0, UplinksPerSpine: 2},
		{Pods: 2, LeavesPerPod: 2, SpinesPerPod: 2, UplinksPerSpine: 0},
		{Pods: 130, LeavesPerPod: 2, SpinesPerPod: 2, UplinksPerSpine: 2}, // VID overflow
	}
	for _, s := range bad {
		if _, err := Build(s); err == nil {
			t.Errorf("Build(%+v) succeeded, want error", s)
		}
	}
}

func TestBuildPropertyAnySaneSpecVerifies(t *testing.T) {
	f := func(pods, leaves, spines, uplinks uint8) bool {
		spec := Spec{
			Pods:            int(pods%6) + 1,
			LeavesPerPod:    int(leaves%4) + 1,
			SpinesPerPod:    int(spines%3) + 1,
			UplinksPerSpine: int(uplinks%3) + 1,
			ServersPerLeaf:  1,
		}
		topo, err := Build(spec)
		if err != nil {
			return false
		}
		return topo.Verify() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMRMTPConfigMatchesListing2Shape(t *testing.T) {
	topo := build(t, FourPodSpec())
	cfg := topo.MRMTPConfig()
	if len(cfg.Topology.Leaves) != 8 {
		t.Errorf("config leaves = %d, want 8", len(cfg.Topology.Leaves))
	}
	if len(cfg.Topology.TopSpines) != 4 {
		t.Errorf("config top spines = %d, want 4", len(cfg.Topology.TopSpines))
	}
	if len(cfg.Topology.Pods) != 4 {
		t.Errorf("config pods = %d, want 4", len(cfg.Topology.Pods))
	}
	if port := cfg.Topology.LeavesNetworkPortDict["L-1-1"]; port != "eth3" {
		t.Errorf("L-1-1 rack port = %s, want eth3", port)
	}
	blob, err := cfg.Render()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseConfig(blob)
	if err != nil {
		t.Fatalf("ParseConfig: %v", err)
	}
	if len(parsed.Topology.Leaves) != 8 {
		t.Error("round-trip lost leaves")
	}
}

func TestParseConfigErrors(t *testing.T) {
	if _, err := ParseConfig([]byte("{")); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := ParseConfig([]byte(`{"topology":{}}`)); err == nil {
		t.Error("empty topology accepted")
	}
	if _, err := ParseConfig([]byte(`{"topology":{"leaves":["L-1-1"],"leavesNetworkPortDict":{}}}`)); err == nil {
		t.Error("missing port dict entry accepted")
	}
}

func TestBGPConfigMatchesListing1Shape(t *testing.T) {
	topo := build(t, FourPodSpec())
	cfg, err := topo.BGPConfig("T-1", true)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"frr defaults datacenter",
		"router bgp 64512",
		"timers bgp 1 3",
		"remote-as 64513",
		"remote-as 64516",
		"transmit-interval 100",
		"profile lowerIntervals",
	} {
		if !strings.Contains(cfg, want) {
			t.Errorf("T-1 config missing %q:\n%s", want, cfg)
		}
	}
	noBFD, err := topo.BGPConfig("T-1", false)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(noBFD, "bfd") {
		t.Error("BFD lines present in non-BFD config")
	}
	if _, err := topo.BGPConfig("H-1-1-1", false); err == nil {
		t.Error("server accepted as BGP router")
	}
	if _, err := topo.BGPConfig("nope", false); err == nil {
		t.Error("unknown device accepted")
	}
}

func TestLeafConfigAdvertisesSubnet(t *testing.T) {
	topo := build(t, TwoPodSpec())
	cfg, err := topo.BGPConfig("L-1-1", false)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(cfg, "network 192.168.11.0/24") {
		t.Errorf("leaf config does not originate its rack subnet:\n%s", cfg)
	}
}

func TestMeasureConfigs(t *testing.T) {
	topo := build(t, FourPodSpec())
	cs, err := topo.MeasureConfigs(true)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Routers != 20 {
		t.Errorf("routers = %d, want 20", cs.Routers)
	}
	if cs.BGPBytes <= cs.MRMTPBytes {
		t.Errorf("BGP config (%d B) should exceed the single MR-MTP JSON (%d B)", cs.BGPBytes, cs.MRMTPBytes)
	}
}

func TestLeafByVID(t *testing.T) {
	topo := build(t, TwoPodSpec())
	if l := topo.LeafByVID(14); l == nil || l.Name != "L-2-2" {
		t.Errorf("LeafByVID(14) = %v, want L-2-2", l)
	}
	if topo.LeafByVID(99) != nil {
		t.Error("LeafByVID(99) should be nil")
	}
}

func TestScaleOutFabric(t *testing.T) {
	// The paper's future work scales PoDs and tiers; make sure a larger
	// fabric builds and verifies.
	spec := Spec{Pods: 8, LeavesPerPod: 4, SpinesPerPod: 4, UplinksPerSpine: 2, ServersPerLeaf: 2}
	topo := build(t, spec)
	if got, want := len(topo.Routers()), 8*4+8*4+8; got != want {
		t.Errorf("routers = %d, want %d", got, want)
	}
}
