// Package topology builds the folded-Clos fabrics of the paper's Fig. 2 and
// Fig. 3 and generalizes them to any number of PoDs (the paper's §IX future
// work scales the same construction).
//
// A fabric has three router tiers plus servers:
//
//	tier 3: top spines  T-1 .. T-k      (k = SpinesPerPod × UplinksPerSpine)
//	tier 2: pod spines  S-p-s           (s = 1..SpinesPerPod per pod p)
//	tier 1: leaves/ToRs L-p-t           (t = 1..LeavesPerPod per pod p)
//	tier 0: servers     H-p-t-i
//
// Wiring follows the paper exactly: leaf uplink port u connects pod spine u;
// pod spine uplink port u connects top spine s+(u-1)·SpinesPerPod (the
// "plane" wiring that gives S1_1 → {S2_1, S2_3} in Fig. 2); top spine t's
// downlink port p connects pod p. Uplink ports are numbered first on every
// device because MR-MTP derives child VIDs from parent port numbers.
//
// The package is pure data — no simulator dependency — so the same
// description drives the MR-MTP fabric, the BGP fabric, configuration
// rendering (Listings 1 and 2), and verification.
package topology

import (
	"fmt"
	"sort"

	"repro/internal/netaddr"
)

// Tier identifies a device's layer in the folded-Clos fabric. The paper
// counts servers as tier 0 and ToRs as tier 1.
type Tier int

// Fabric tiers.
const (
	TierServer Tier = iota
	TierLeaf
	TierSpine
	TierTop
)

func (t Tier) String() string {
	switch t {
	case TierServer:
		return "server"
	case TierLeaf:
		return "leaf"
	case TierSpine:
		return "spine"
	case TierTop:
		return "top-spine"
	}
	return fmt.Sprintf("Tier(%d)", int(t))
}

// AS numbering per RFC 7938 as captured in the paper's Listing 1: the top
// spines share one ASN, the spines of pod p share BaseASNTop+p, and every
// leaf gets a unique ASN.
const (
	BaseASNTop  uint32 = 64512
	BaseASNLeaf uint32 = 64601
)

// Spec describes a fabric to build.
type Spec struct {
	Pods            int // number of PoDs
	LeavesPerPod    int // ToRs per pod
	SpinesPerPod    int // tier-2 spines per pod
	UplinksPerSpine int // uplinks from each pod spine (top spines = SpinesPerPod × this)
	ServersPerLeaf  int // hosts per rack (1 on FABRIC, per the paper)
}

// TwoPodSpec is the paper's 2-PoD test topology (12 routers).
func TwoPodSpec() Spec {
	return Spec{Pods: 2, LeavesPerPod: 2, SpinesPerPod: 2, UplinksPerSpine: 2, ServersPerLeaf: 1}
}

// FourPodSpec is the paper's 4-PoD test topology (20 routers).
func FourPodSpec() Spec {
	return Spec{Pods: 4, LeavesPerPod: 2, SpinesPerPod: 2, UplinksPerSpine: 2, ServersPerLeaf: 1}
}

// TopSpines returns the number of tier-3 devices implied by the spec.
func (s Spec) TopSpines() int { return s.SpinesPerPod * s.UplinksPerSpine }

// Validate rejects impossible specs.
func (s Spec) Validate() error {
	switch {
	case s.Pods < 1:
		return fmt.Errorf("topology: need at least one pod, got %d", s.Pods)
	case s.LeavesPerPod < 1:
		return fmt.Errorf("topology: need at least one leaf per pod, got %d", s.LeavesPerPod)
	case s.SpinesPerPod < 1:
		return fmt.Errorf("topology: need at least one spine per pod, got %d", s.SpinesPerPod)
	case s.UplinksPerSpine < 1:
		return fmt.Errorf("topology: need at least one uplink per spine, got %d", s.UplinksPerSpine)
	case s.ServersPerLeaf < 0:
		return fmt.Errorf("topology: negative servers per leaf")
	case s.Pods*s.LeavesPerPod > 245:
		// ToR VIDs are derived from the third byte of 192.168.x.0/24
		// (paper §III.A) starting at 11, so 245 leaves fit.
		return fmt.Errorf("topology: %d leaves exceed the single-byte VID space", s.Pods*s.LeavesPerPod)
	}
	return nil
}

// Device is one node in the fabric.
type Device struct {
	Name string
	Tier Tier
	// Level is the numeric tier: 0 servers, 1 ToRs, counting up to the
	// fabric's top. It equals int(Tier) in three-tier fabrics and is set
	// explicitly by the multi-tier builder.
	Level int
	Pod   int // 1-based; 0 for top spines
	Index int // 1-based within (tier, pod)
	ASN   uint32

	// Leaf-only fields.
	VID          int            // ToR VID derived from the server subnet (paper §III.A)
	ServerSubnet netaddr.Prefix // 192.168.<VID>.0/24
	ServerPort   int            // first port facing the rack (the leavesNetworkPortDict entry)

	// Server-only field: the host's address inside its rack subnet.
	IP netaddr.IPv4

	Ports []*Port // 1-based; Ports[0] is nil
}

// Port is one interface of a device, with the BGP point-to-point addressing
// that the paper's Listings 1 and 3 show (the MR-MTP fabric ignores the IPs
// on router-to-router links — spines need no addresses at all).
type Port struct {
	Device *Device
	Index  int
	Peer   *Port
	IP     netaddr.IPv4   // this end's address on the link subnet
	Subnet netaddr.Prefix // /24 per link, matching Listing 3
}

// Name renders the paper-style interface name ("S-1-1:eth3").
func (p *Port) Name() string { return fmt.Sprintf("%s:eth%d", p.Device.Name, p.Index) }

// IsUplink reports whether the port faces a higher tier.
func (p *Port) IsUplink() bool { return p.Peer != nil && p.Peer.Device.Level > p.Device.Level }

// Link is an undirected edge (reported once, A at the lower tier).
type Link struct {
	A, B *Port
}

// Topology is a fully wired fabric.
type Topology struct {
	Spec    Spec
	Devices map[string]*Device
	Links   []Link

	// Ordered device lists for deterministic iteration. Aggs (zone
	// spines) exist only in multi-tier fabrics.
	Leaves    []*Device
	Spines    []*Device
	Aggs      []*Device
	Tops      []*Device
	Servers   []*Device
	linkCount int
}

// Routers returns every non-server device in deterministic order.
func (t *Topology) Routers() []*Device {
	out := make([]*Device, 0, len(t.Leaves)+len(t.Spines)+len(t.Aggs)+len(t.Tops))
	out = append(out, t.Leaves...)
	out = append(out, t.Spines...)
	out = append(out, t.Aggs...)
	out = append(out, t.Tops...)
	return out
}

// Device returns a device by name, or nil.
func (t *Topology) Device(name string) *Device { return t.Devices[name] }

// sortedDevices returns every device in name order, so full-fabric sweeps
// (wiring verification, for one) behave identically run to run.
func (t *Topology) sortedDevices() []*Device {
	names := make([]string, 0, len(t.Devices))
	for name := range t.Devices {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]*Device, len(names))
	for i, name := range names {
		out[i] = t.Devices[name]
	}
	return out
}

// LeafByVID returns the ToR with the given VID, or nil.
func (t *Topology) LeafByVID(vid int) *Device {
	for _, l := range t.Leaves {
		if l.VID == vid {
			return l
		}
	}
	return nil
}

// Build constructs and verifies a fabric from the spec.
func Build(spec Spec) (*Topology, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	t := &Topology{Spec: spec, Devices: make(map[string]*Device)}

	add := func(d *Device) *Device {
		d.Ports = []*Port{nil}
		d.Level = int(d.Tier)
		t.Devices[d.Name] = d
		return d
	}
	newPort := func(d *Device) *Port {
		p := &Port{Device: d, Index: len(d.Ports)}
		d.Ports = append(d.Ports, p)
		return p
	}
	// wire connects lower-tier a to higher-tier b, numbering the link
	// subnet 172.16.<n>.0/24 with the *higher* tier at .1 (Listing 1/3).
	wire := func(a, b *Port) {
		a.Peer, b.Peer = b, a
		subnet := netaddr.MakePrefix(netaddr.MakeIPv4(172, byte(16+t.linkCount/256), byte(t.linkCount%256), 0), 24)
		t.linkCount++
		b.IP = subnet.Host(1)
		a.IP = subnet.Host(2)
		a.Subnet, b.Subnet = subnet, subnet
		t.Links = append(t.Links, Link{A: a, B: b})
	}

	// Top spines.
	for k := 1; k <= spec.TopSpines(); k++ {
		top := add(&Device{Name: fmt.Sprintf("T-%d", k), Tier: TierTop, Index: k, ASN: BaseASNTop})
		for p := 1; p <= spec.Pods; p++ {
			newPort(top) // downlink port p faces pod p, wired below
		}
		t.Tops = append(t.Tops, top)
	}

	leafCount := 0
	for pod := 1; pod <= spec.Pods; pod++ {
		// Pod spines: uplinks first (ports 1..U), then leaf downlinks.
		for s := 1; s <= spec.SpinesPerPod; s++ {
			sp := add(&Device{
				Name: fmt.Sprintf("S-%d-%d", pod, s), Tier: TierSpine,
				Pod: pod, Index: s, ASN: BaseASNTop + uint32(pod),
			})
			for u := 1; u <= spec.UplinksPerSpine; u++ {
				topIndex := s + (u-1)*spec.SpinesPerPod
				top := t.Tops[topIndex-1]
				wire(newPort(sp), top.Ports[pod])
			}
			for i := 0; i < spec.LeavesPerPod; i++ {
				newPort(sp) // downlink ports, wired when leaves appear
			}
			t.Spines = append(t.Spines, sp)
		}
		// Leaves: uplink ports 1..SpinesPerPod, then server ports.
		for lf := 1; lf <= spec.LeavesPerPod; lf++ {
			leafCount++
			vid := 10 + leafCount
			leaf := add(&Device{
				Name: fmt.Sprintf("L-%d-%d", pod, lf), Tier: TierLeaf,
				Pod: pod, Index: lf,
				ASN:          BaseASNLeaf + uint32(leafCount-1),
				VID:          vid,
				ServerSubnet: netaddr.MakePrefix(netaddr.MakeIPv4(192, 168, byte(vid), 0), 24),
			})
			for s := 1; s <= spec.SpinesPerPod; s++ {
				sp := t.Devices[fmt.Sprintf("S-%d-%d", pod, s)]
				wire(newPort(leaf), sp.Ports[spec.UplinksPerSpine+lf])
			}
			leaf.ServerPort = spec.SpinesPerPod + 1
			t.Leaves = append(t.Leaves, leaf)
			// Servers in the rack share the leaf's subnet; the leaf
			// itself answers on .254 as the rack gateway.
			for i := 1; i <= spec.ServersPerLeaf; i++ {
				srv := add(&Device{
					Name: fmt.Sprintf("H-%d-%d-%d", pod, lf, i), Tier: TierServer,
					Pod: pod, Index: i,
					IP: leaf.ServerSubnet.Host(uint32(i)),
				})
				sp := newPort(srv)
				lp := newPort(leaf)
				sp.Peer, lp.Peer = lp, sp
				sp.Subnet, lp.Subnet = leaf.ServerSubnet, leaf.ServerSubnet
				sp.IP = srv.IP
				lp.IP = LeafGatewayIP(leaf)
				t.Links = append(t.Links, Link{A: sp, B: lp})
				t.Servers = append(t.Servers, srv)
			}
		}
	}
	if err := t.Verify(); err != nil {
		return nil, err
	}
	return t, nil
}

// LeafGatewayIP returns the address a ToR answers on inside its rack subnet.
func LeafGatewayIP(leaf *Device) netaddr.IPv4 { return leaf.ServerSubnet.Host(254) }

// DeriveVID implements the paper's §III.A VID derivation: the third byte of
// the subnet IP the ToR shares with its servers.
func DeriveVID(subnet netaddr.Prefix) int { return int(subnet.IP[2]) }

// DeriveVIDFromIP maps a server address to its ToR's VID, the lookup a
// source ToR performs for every packet it encapsulates (paper §III.D).
func DeriveVIDFromIP(ip netaddr.IPv4) int { return int(ip[2]) }
