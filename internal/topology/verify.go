package topology

import (
	"fmt"
)

// Verify checks the structural invariants of a folded-Clos fabric. It is
// the in-process equivalent of the paper's topology-verification scripts
// (item 7 of their automation suite): every experiment starts from a fabric
// that has been proven well-formed.
func (t *Topology) Verify() error {
	spec := t.Spec
	if got, want := len(t.Tops), spec.TopSpines(); got != want {
		return fmt.Errorf("topology: %d top spines, want %d", got, want)
	}
	if got, want := len(t.Spines), spec.Pods*spec.SpinesPerPod; got != want {
		return fmt.Errorf("topology: %d pod spines, want %d", got, want)
	}
	if got, want := len(t.Leaves), spec.Pods*spec.LeavesPerPod; got != want {
		return fmt.Errorf("topology: %d leaves, want %d", got, want)
	}
	if got, want := len(t.Servers), spec.Pods*spec.LeavesPerPod*spec.ServersPerLeaf; got != want {
		return fmt.Errorf("topology: %d servers, want %d", got, want)
	}

	// Every port wired exactly once, both directions agreeing.
	for _, d := range t.sortedDevices() {
		for _, p := range d.Ports[1:] {
			if p.Peer == nil {
				return fmt.Errorf("topology: unwired port %s", p.Name())
			}
			if p.Peer.Peer != p {
				return fmt.Errorf("topology: asymmetric wiring at %s", p.Name())
			}
			if p.Peer.Device == d {
				return fmt.Errorf("topology: self-loop at %s", p.Name())
			}
		}
	}

	// Leaves: uplink ports 1..SpinesPerPod reach each pod spine once, in
	// spine order (MR-MTP's VID suffixes depend on this numbering).
	for _, leaf := range t.Leaves {
		for s := 1; s <= spec.SpinesPerPod; s++ {
			peer := leaf.Ports[s].Peer.Device
			want := fmt.Sprintf("S-%d-%d", leaf.Pod, s)
			if peer.Name != want {
				return fmt.Errorf("topology: %s port %d reaches %s, want %s", leaf.Name, s, peer.Name, want)
			}
		}
		if leaf.ServerPort != spec.SpinesPerPod+1 {
			return fmt.Errorf("topology: %s server port %d, want %d", leaf.Name, leaf.ServerPort, spec.SpinesPerPod+1)
		}
		if DeriveVID(leaf.ServerSubnet) != leaf.VID {
			return fmt.Errorf("topology: %s VID %d does not match subnet %s", leaf.Name, leaf.VID, leaf.ServerSubnet)
		}
	}

	// Pod spines: uplink u reaches top spine s+(u-1)·SpinesPerPod (the
	// plane wiring of Fig. 2); downlinks reach every leaf in the pod.
	for _, sp := range t.Spines {
		for u := 1; u <= spec.UplinksPerSpine; u++ {
			want := fmt.Sprintf("T-%d", sp.Index+(u-1)*spec.SpinesPerPod)
			if got := sp.Ports[u].Peer.Device.Name; got != want {
				return fmt.Errorf("topology: %s uplink %d reaches %s, want %s", sp.Name, u, got, want)
			}
		}
		for lf := 1; lf <= spec.LeavesPerPod; lf++ {
			want := fmt.Sprintf("L-%d-%d", sp.Pod, lf)
			if got := sp.Ports[spec.UplinksPerSpine+lf].Peer.Device.Name; got != want {
				return fmt.Errorf("topology: %s downlink %d reaches %s, want %s", sp.Name, lf, got, want)
			}
		}
	}

	// Top spines: port p reaches pod p, always the same spine plane.
	for _, top := range t.Tops {
		plane := (top.Index-1)%spec.SpinesPerPod + 1
		for p := 1; p <= spec.Pods; p++ {
			peer := top.Ports[p].Peer.Device
			if peer.Pod != p || peer.Index != plane {
				return fmt.Errorf("topology: %s port %d reaches %s, want S-%d-%d", top.Name, p, peer.Name, p, plane)
			}
		}
	}

	// Addressing: router-to-router link subnets unique; higher tier is .1.
	subnets := make(map[string]string)
	vids := make(map[int]string)
	for _, l := range t.Links {
		if l.A.Device.Tier == TierServer {
			continue
		}
		key := l.A.Subnet.String()
		if prev, dup := subnets[key]; dup {
			return fmt.Errorf("topology: subnet %s reused by %s and %s", key, prev, l.A.Name())
		}
		subnets[key] = l.A.Name()
		if l.B.IP != l.A.Subnet.Host(1) || l.A.IP != l.A.Subnet.Host(2) {
			return fmt.Errorf("topology: link %s-%s addressing violates the .1-upper/.2-lower rule", l.A.Name(), l.B.Name())
		}
	}
	for _, leaf := range t.Leaves {
		if prev, dup := vids[leaf.VID]; dup {
			return fmt.Errorf("topology: VID %d reused by %s and %s", leaf.VID, prev, leaf.Name)
		}
		vids[leaf.VID] = leaf.Name
	}

	// ASN plan (Listing 1): top spines share, pods share per pod, leaves unique.
	asn := make(map[uint32]string)
	for _, leaf := range t.Leaves {
		if prev, dup := asn[leaf.ASN]; dup {
			return fmt.Errorf("topology: leaf ASN %d reused by %s and %s", leaf.ASN, prev, leaf.Name)
		}
		asn[leaf.ASN] = leaf.Name
	}
	for _, sp := range t.Spines {
		if want := BaseASNTop + uint32(sp.Pod); sp.ASN != want {
			return fmt.Errorf("topology: %s ASN %d, want %d", sp.Name, sp.ASN, want)
		}
	}
	for _, top := range t.Tops {
		if top.ASN != BaseASNTop {
			return fmt.Errorf("topology: %s ASN %d, want %d", top.Name, top.ASN, BaseASNTop)
		}
	}
	return nil
}
