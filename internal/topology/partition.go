package topology

import "fmt"

// Partition assigns every device of a fabric to one shard of the
// space-parallel engine (simnet.Cluster). The assignment is pure policy:
// any placement is bit-identical to sequential by construction, but a good
// one keeps most traffic intra-shard so the lookahead windows carry real
// work. See DESIGN.md §11.
type Partition struct {
	Shards int
	shard  map[string]int
}

// Shard returns the shard index for a device name.
func (p *Partition) Shard(name string) (int, bool) {
	s, ok := p.shard[name]
	return s, ok
}

// PartitionByPod splits a fabric by PoD: the PoD count must divide evenly
// by the shard count, each shard owns a contiguous block of PoDs (leaves,
// pod spines and servers follow their PoD), and the PoD-less top tier is
// dealt round-robin by device index — top spine T-k goes to shard
// (k-1) mod shards. Every leaf–spine and server–leaf link is therefore
// intra-shard; only spine–top links cross partitions, and their latency
// becomes the engine's lookahead window.
func PartitionByPod(t *Topology, shards int) (*Partition, error) {
	if shards < 1 {
		return nil, fmt.Errorf("topology: need at least 1 partition, got %d", shards)
	}
	pods := 0
	devices := t.sortedDevices()
	for _, d := range devices {
		if d.Pod > pods {
			pods = d.Pod
		}
	}
	if pods == 0 {
		return nil, fmt.Errorf("topology: no PoDs to partition")
	}
	if pods%shards != 0 {
		return nil, fmt.Errorf("topology: %d partitions do not divide the %d-PoD fabric evenly; pick a divisor of the PoD count so no shard is left with a remainder", shards, pods)
	}
	podsPerShard := pods / shards
	p := &Partition{Shards: shards, shard: make(map[string]int, len(t.Devices))}
	for _, d := range devices {
		if d.Pod > 0 {
			p.shard[d.Name] = (d.Pod - 1) / podsPerShard
		} else {
			// Top tier (and multi-tier super/zone spines): round-robin.
			p.shard[d.Name] = (d.Index - 1) % shards
		}
	}
	return p, nil
}
